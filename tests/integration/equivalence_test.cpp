// Cross-configuration equivalence properties.
//
// The core soundness argument of in-circuit ABV is that instrumentation
// must not change application behaviour (the paper's "transparency").
// These property tests enforce it mechanically: for a family of
// generated programs, the application's outputs are identical across
//  - assertion configurations (NDEBUG / unoptimized / every optimized
//    combination), as long as no assertion fires, and
//  - scheduler configurations (chain depth, memory ports, stream-write
//    occupancy), which may only change cycle counts, never values.
#include <gtest/gtest.h>

#include <sstream>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/simulator.h"
#include "support/str.h"

namespace hlsav {
namespace {

using assertions::Options;
using hlsav::testing::compile;

/// Deterministically generates a small stream-processing program:
/// a mix of arithmetic, array traffic, control flow and assertions that
/// always hold for inputs in [1, 50].
std::string generate_program(std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::ostringstream os;
  os << "void f(stream_in<32> in, stream_out<32> out) {\n"
     << "  uint32 buf[16];\n"
     << "  uint32 acc;\n"
     << "  acc = 0;\n"
     << "  for (uint32 i = 0; i < 8; i++) {\n"
     << "    uint32 v;\n"
     << "    v = stream_read(in);\n"
     << "    assert(v > 0);\n";
  // A few random arithmetic statements.
  const char* ops[] = {"+", "^", "|"};
  for (int s = 0; s < 3; ++s) {
    os << "    acc = acc " << ops[rng.next_below(3)] << " (v "
       << (rng.next_below(2) == 0 ? "+" : "^") << " " << 1 + rng.next_below(9) << ");\n";
  }
  os << "    buf[i & 15] = acc;\n";
  if (rng.next_below(2) == 0) {
    os << "    if (acc > " << 100 + rng.next_below(400) << ") {\n"
       << "      acc = acc - " << 1 + rng.next_below(50) << ";\n"
       << "    }\n";
  }
  os << "    assert(buf[i & 15] == acc || acc != buf[i & 15] - 0);\n"
     << "    stream_write(out, acc + buf[i & 15]);\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

std::vector<std::uint64_t> run_config(const ir::Design& lowered, const Options& aopt,
                                      const sched::SchedOptions& sopt,
                                      const std::vector<std::uint64_t>& input,
                                      sim::RunStatus* status = nullptr) {
  ir::Design d = lowered.clone();
  assertions::synthesize(d, aopt);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d, sopt);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("f.in", input);
  sim::RunResult r = s.run();
  if (status != nullptr) *status = r.status;
  EXPECT_EQ(r.status, sim::RunStatus::kCompleted);
  return s.received("f.out");
}

class EquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceProperty, OutputsInvariantAcrossAssertionConfigs) {
  std::string src = generate_program(GetParam());
  auto c = compile(src);
  SplitMix64 rng(GetParam() * 7 + 1);
  std::vector<std::uint64_t> input;
  for (int i = 0; i < 8; ++i) input.push_back(1 + rng.next_below(50));

  std::vector<std::uint64_t> baseline = run_config(c->design, Options::ndebug(), {}, input);
  ASSERT_EQ(baseline.size(), 8u);

  std::vector<Options> configs;
  configs.push_back(Options::unoptimized());
  configs.push_back(Options::optimized());
  {
    Options o;
    o.parallelize = true;
    configs.push_back(o);
  }
  {
    Options o;
    o.share_channels = true;
    configs.push_back(o);
  }
  {
    Options o;
    o.parallelize = true;
    o.group_checkers = true;
    configs.push_back(o);
  }
  for (const Options& o : configs) {
    EXPECT_EQ(run_config(c->design, o, {}, input), baseline);
  }
}

TEST_P(EquivalenceProperty, OutputsInvariantAcrossSchedules) {
  std::string src = generate_program(GetParam());
  auto c = compile(src);
  SplitMix64 rng(GetParam() * 13 + 5);
  std::vector<std::uint64_t> input;
  for (int i = 0; i < 8; ++i) input.push_back(1 + rng.next_below(50));

  std::vector<std::uint64_t> baseline =
      run_config(c->design, Options::optimized(), {}, input);

  for (unsigned chain : {1u, 2u, 8u}) {
    for (unsigned ports : {1u, 2u}) {
      sched::SchedOptions so;
      so.chain_depth = chain;
      so.mem_ports = ports;
      EXPECT_EQ(run_config(c->design, Options::optimized(), so, input), baseline)
          << "chain=" << chain << " ports=" << ports;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

// Latency monotonicity: optimized assertions never cost more passing-path
// states than unoptimized ones, on the same generated program.
class LatencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyProperty, OptimizedNeverSlower) {
  std::string src = generate_program(GetParam());
  auto c = compile(src);
  auto states_of = [&](const Options& o) {
    ir::Design d = c->design.clone();
    assertions::synthesize(d, o);
    ir::verify(d);
    sched::ProcessSchedule s = sched::schedule_process(d, *d.find_process("f"), {});
    return sched::passing_path_states(*d.find_process("f"), s);
  };
  unsigned base = states_of(Options::ndebug());
  unsigned unopt = states_of(Options::unoptimized());
  unsigned opt = states_of(Options::optimized());
  EXPECT_GE(unopt, base);
  EXPECT_GE(opt, base);
  EXPECT_LE(opt, unopt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace hlsav
