// Bounded priority job queue: back-pressure, ordering, shutdown.
#include "serve/queue.h"

#include <gtest/gtest.h>

#include <thread>

namespace hlsav::serve {
namespace {

Job make_job(std::uint64_t id, int priority = 0) {
  Job j;
  j.id = id;
  j.spec.priority = priority;
  return j;
}

TEST(JobQueue, FullQueueRejectsWithTypedUnavailable) {
  JobQueue q(2);
  EXPECT_TRUE(q.push(make_job(1)).ok());
  EXPECT_TRUE(q.push(make_job(2)).ok());
  Status st = q.push(make_job(3));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("queue full (cap 2)"), std::string::npos) << st.message();
}

TEST(JobQueue, HigherPriorityPopsFirstFifoWithin) {
  JobQueue q(8);
  ASSERT_TRUE(q.push(make_job(1, 0)).ok());
  ASSERT_TRUE(q.push(make_job(2, 5)).ok());
  ASSERT_TRUE(q.push(make_job(3, 5)).ok());
  ASSERT_TRUE(q.push(make_job(4, 0)).ok());
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) order.push_back(q.pop()->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 3, 1, 4}));
}

TEST(JobQueue, CloseDrainsPendingAndWakesBlockedPop) {
  JobQueue q(4);
  ASSERT_TRUE(q.push(make_job(7)).ok());
  ASSERT_TRUE(q.push(make_job(8)).ok());
  std::vector<Job> drained = q.close();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 7u);  // submission order for the abort replies
  EXPECT_EQ(drained[1].id, 8u);
  EXPECT_FALSE(q.pop().has_value());
  Status st = q.push(make_job(9));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shutting down"), std::string::npos);
}

TEST(JobQueue, PopBlocksUntilPushArrives) {
  JobQueue q(4);
  std::optional<Job> got;
  std::thread consumer([&] { got = q.pop(); });
  ASSERT_TRUE(q.push(make_job(42)).ok());
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 42u);
}

}  // namespace
}  // namespace hlsav::serve
