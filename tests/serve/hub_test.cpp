// ProgressHub unit tests: bounded-buffer coalescing under
// back-pressure, critical-frame delivery guarantees, and the
// snapshot-then-tail contract for late subscribers.
#include "serve/hub.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace hlsav::serve {
namespace {

JobView make_view(std::uint64_t id) {
  JobView v;
  v.id = id;
  v.design = "/tmp/clamp.c";
  return v;
}

WatchFrame progress_frame(std::uint64_t done) {
  WatchFrame f;
  f.cls = WatchFrame::Cls::kProgress;
  f.line = "{\"type\":\"progress\",\"done\":" + std::to_string(done) + "}";
  return f;
}

WatchFrame site_frame(std::uint64_t site) {
  WatchFrame f;
  f.cls = WatchFrame::Cls::kSite;
  f.line = "{\"type\":\"site-done\",\"site\":" + std::to_string(site) + "}";
  return f;
}

WatchFrame critical_frame(const std::string& line, const std::string& payload = "") {
  WatchFrame f;
  f.cls = WatchFrame::Cls::kCritical;
  f.line = line;
  f.payload = payload;
  return f;
}

/// Drains every frame currently reachable for `sub` until end-of-stream
/// or timeout.
std::vector<WatchFrame> drain(ProgressHub& hub, const std::shared_ptr<ProgressHub::Subscription>& sub) {
  std::vector<WatchFrame> frames;
  for (;;) {
    std::optional<WatchFrame> f = hub.next(sub, 200);
    if (!f.has_value()) {
      if (sub->finished()) break;
      break;  // timeout: nothing more is coming in this test
    }
    frames.push_back(std::move(*f));
  }
  return frames;
}

TEST(ProgressHub, SubscribeToUnknownJobIsTyped) {
  ProgressHub hub;
  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub.subscribe(42);
  EXPECT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProgressHub, FramesFlowInOrderToAnActiveSubscriber) {
  ProgressHub hub;
  hub.open_job(make_view(1));
  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub.subscribe(1);
  ASSERT_TRUE(sub.ok());

  hub.publish(1, progress_frame(1));
  hub.publish(1, critical_frame("{\"type\":\"state\",\"state\":\"running\"}"));
  hub.publish(1, progress_frame(2));
  hub.close_job(1);

  std::vector<WatchFrame> frames = drain(hub, *sub);
  // snapshot + 3 published frames, in publish order.
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_NE(frames[0].line.find("\"type\":\"snapshot\""), std::string::npos) << frames[0].line;
  EXPECT_NE(frames[1].line.find("\"done\":1"), std::string::npos);
  EXPECT_NE(frames[2].line.find("\"state\":\"running\""), std::string::npos);
  EXPECT_NE(frames[3].line.find("\"done\":2"), std::string::npos);
  EXPECT_TRUE((*sub)->finished());
}

TEST(ProgressHub, SlowSubscriberCoalescesProgressButKeepsEveryCriticalFrame) {
  // Tiny coalesce threshold so the buffer saturates fast.
  ProgressHub hub(/*coalesce_after=*/4);
  hub.open_job(make_view(1));
  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub.subscribe(1);
  ASSERT_TRUE(sub.ok());

  // A subscriber that never reads while 100 progress ticks, 100 site
  // heartbeats, and 10 critical frames land.
  for (int i = 0; i < 100; ++i) {
    hub.publish(1, progress_frame(static_cast<std::uint64_t>(i)));
    hub.publish(1, site_frame(static_cast<std::uint64_t>(i)));
  }
  std::vector<std::string> critical_lines;
  for (int i = 0; i < 10; ++i) {
    std::string line = "{\"type\":\"worker-crashed\",\"n\":" + std::to_string(i) + "}";
    critical_lines.push_back(line);
    hub.publish(1, critical_frame(line));
  }
  hub.publish(1, critical_frame("{\"type\":\"done\",\"job\":1,\"status\":\"ok\"}"));
  hub.close_job(1);

  std::vector<WatchFrame> frames = drain(hub, *sub);
  EXPECT_TRUE((*sub)->finished());
  // The buffer never grew past snapshot + coalesce_after + criticals:
  // progress collapsed onto the newest same-class frame.
  EXPECT_LE(frames.size(), 1u + 4u + 11u);
  EXPECT_GT((*sub)->coalesced(), 0u);
  EXPECT_GT(hub.coalesced_total(), 0u);

  // The *latest* progress and site values survived.
  bool saw_latest_progress = false;
  bool saw_latest_site = false;
  std::size_t criticals_seen = 0;
  for (const WatchFrame& f : frames) {
    if (f.line.find("\"done\":99") != std::string::npos) saw_latest_progress = true;
    if (f.line.find("\"site\":99") != std::string::npos) saw_latest_site = true;
    if (f.cls == WatchFrame::Cls::kCritical) ++criticals_seen;
  }
  EXPECT_TRUE(saw_latest_progress);
  EXPECT_TRUE(saw_latest_site);
  // snapshot + 10 crash frames + done: every critical, byte-identical.
  EXPECT_EQ(criticals_seen, 12u);
  for (const std::string& line : critical_lines) {
    bool found = false;
    for (const WatchFrame& f : frames) {
      if (f.line == line) found = true;
    }
    EXPECT_TRUE(found) << "lost critical frame " << line;
  }
}

TEST(ProgressHub, LateSubscriberOfAClosedJobGetsSnapshotThenTerminalFrames) {
  ProgressHub hub;
  hub.open_job(make_view(7));
  hub.update_job(7, [](JobView& v) {
    v.state = "done";
    v.done = 19;
    v.total = 19;
  });
  // Report (critical, with payload) then done, as the service publishes.
  hub.publish(7, critical_frame("{\"type\":\"report\",\"job\":7,\"bytes\":11}", "report body"));
  hub.publish(7, critical_frame("{\"type\":\"done\",\"job\":7,\"status\":\"ok\"}"));
  hub.close_job(7);

  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub.subscribe(7);
  ASSERT_TRUE(sub.ok());
  std::vector<WatchFrame> frames = drain(hub, *sub);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_NE(frames[0].line.find("\"type\":\"snapshot\""), std::string::npos);
  EXPECT_NE(frames[0].line.find("\"state\":\"done\""), std::string::npos) << frames[0].line;
  EXPECT_NE(frames[1].line.find("\"type\":\"report\""), std::string::npos);
  EXPECT_EQ(frames[1].payload, "report body");
  EXPECT_NE(frames[2].line.find("\"type\":\"done\""), std::string::npos);
  EXPECT_TRUE((*sub)->finished());
}

TEST(ProgressHub, PublishNeverBlocksOnAStuckSubscriber) {
  ProgressHub hub(/*coalesce_after=*/2);
  hub.open_job(make_view(1));
  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub.subscribe(1);
  ASSERT_TRUE(sub.ok());

  // 10k publishes against a subscriber that never reads must finish
  // promptly; a blocking or unbounded hub would hang or balloon here.
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10000; ++i) hub.publish(1, progress_frame(static_cast<std::uint64_t>(i)));
  double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(ms, 5000.0);
  EXPECT_EQ(hub.published_total(), 10000u);
  hub.close_job(1);
}

TEST(ProgressHub, ShutdownWakesABlockedNextCall) {
  ProgressHub hub;
  hub.open_job(make_view(1));
  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub.subscribe(1);
  ASSERT_TRUE(sub.ok());
  // Eat the snapshot so the next call actually waits.
  (void)hub.next(*sub, 200);

  std::atomic<bool> done{false};
  std::thread waiter([&] {
    while (!(*sub)->finished()) {
      if (!hub.next(*sub, 10'000).has_value() && (*sub)->finished()) break;
    }
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hub.shutdown();
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(ProgressHub, UnsubscribeDropsTheSubscriberFromFanout) {
  ProgressHub hub;
  hub.open_job(make_view(1));
  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub.subscribe(1);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(hub.subscriber_count(), 1u);
  hub.unsubscribe(*sub);
  EXPECT_EQ(hub.subscriber_count(), 0u);
  hub.publish(1, progress_frame(1));  // must not crash or enqueue
  hub.close_job(1);
}

}  // namespace
}  // namespace hlsav::serve
