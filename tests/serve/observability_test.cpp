// End-to-end observability tests against a real hlsavd daemon:
// concurrent watchers (including a deliberately slow one) that must
// never perturb the campaign, byte-identical report fan-out, Chrome
// trace export, the metrics snapshot, and the append-only event log.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "metrics/chrometrace.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "support/subprocess.h"

#ifndef HLSAVD_PATH
#define HLSAVD_PATH "hlsavd"
#endif

namespace hlsav::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_obs_" + name;
}

std::string write_temp(const std::string& name, const std::string& contents) {
  std::string path = temp_path(name);
  std::ofstream out(path);
  out << contents;
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

const char* kClampSrc = R"(
void clamp(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 6; i++) {
    uint32 v = stream_read(in);
    uint32 y = v;
    if (y > 255) { y = 255; }
    assert(y <= 255);
    stream_write(out, y);
  }
}
)";

/// A live hlsavd daemon for one test (same shape as service_test's).
struct Daemon {
  explicit Daemon(std::vector<std::string> extra_flags = {}) {
    socket = temp_path("obs_" + std::to_string(counter_++) + ".sock");
    work_dir = temp_path("obswork_" + std::to_string(counter_));
    std::vector<std::string> argv = {HLSAVD_PATH, "serve", "--socket=" + socket,
                                     "--work-dir=" + work_dir};
    for (std::string& f : extra_flags) argv.push_back(std::move(f));
    StatusOr<Subprocess> p = Subprocess::spawn(argv, /*capture_stdout=*/false);
    EXPECT_TRUE(p.ok()) << p.status().to_string();
    if (p.ok()) proc.emplace(std::move(*p));
    for (int i = 0; i < 500 && !std::filesystem::exists(socket); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(std::filesystem::exists(socket)) << "daemon never bound " << socket;
  }

  ~Daemon() {
    if (!proc.has_value()) return;
    if (!proc->poll().has_value()) {
      (void)request_shutdown(socket);
      for (int i = 0; i < 500 && !proc->poll().has_value(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (!proc->poll().has_value()) proc->kill(SIGKILL);
    (void)proc->wait();
  }

  std::string socket;
  std::string work_dir;
  std::optional<Subprocess> proc;
  static int counter_;
};

int Daemon::counter_ = 0;

CampaignSpec clamp_spec(const std::string& design_path) {
  CampaignSpec spec;
  spec.design_path = design_path;
  spec.feeds = "clamp.in=1,2,3,300,5,6";
  spec.seed = 7;
  return spec;
}

/// First integer value of `key` in a flat-ish JSON string ("key": N or
/// "key":N), or -1 when absent.
long long json_int(const std::string& text, const std::string& key) {
  std::size_t pos = text.find("\"" + key + "\":");
  if (pos == std::string::npos) return -1;
  pos += key.size() + 3;
  while (pos < text.size() && text[pos] == ' ') ++pos;
  long long v = 0;
  bool any = false;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    v = v * 10 + (text[pos] - '0');
    ++pos;
    any = true;
  }
  return any ? v : -1;
}

std::size_t count_events(const std::string& jsonl, const std::string& event) {
  std::istringstream in(jsonl);
  std::string line;
  std::size_t n = 0;
  std::string needle = "\"event\":\"" + event + "\"";
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(Observability, ConcurrentWatchersIncludingASlowOneGetByteIdenticalReports) {
  std::string design = write_temp("obs_clamp.c", kClampSrc);
  Daemon d;
  CampaignSpec spec = clamp_spec(design);
  spec.workers = 2;

  // Watcher-less reference run: job 1.
  std::string ref_out = temp_path("obs_ref.txt");
  ASSERT_EQ(submit_job(d.socket, spec, ref_out, /*quiet=*/true), 0);
  std::string ref = slurp(ref_out);
  ASSERT_NE(ref.find("Fault-injection campaign"), std::string::npos) << ref;

  // Job 2 runs with three concurrent watchers attached before it is
  // even submitted (wait_ms lets them win the race), one of which
  // deliberately refuses to read for longer than the whole campaign.
  std::vector<std::string> watch_outs = {temp_path("obs_w0.txt"), temp_path("obs_w1.txt"),
                                         temp_path("obs_w2.txt")};
  std::vector<int> watch_rcs(3, -1);
  std::vector<std::thread> watchers;
  for (int i = 0; i < 3; ++i) {
    watchers.emplace_back([&, i] {
      WatchOptions wopt;
      wopt.wait_ms = 10'000;
      wopt.quiet = true;
      wopt.out_path = watch_outs[static_cast<std::size_t>(i)];
      if (i == 2) wopt.stall_reads_ms = 4000;  // the slow reader
      watch_rcs[static_cast<std::size_t>(i)] = watch_job(d.socket, 2, wopt);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::string out = temp_path("obs_watched.txt");
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(submit_job(d.socket, spec, out, /*quiet=*/true), 0);
  double campaign_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  for (std::thread& t : watchers) t.join();

  // The slow watcher (4s stall) never stalled the campaign itself.
  EXPECT_LT(campaign_ms, 3500.0);
  // The watched run's report is byte-identical to the watcher-less one,
  // and every watcher -- slow reader included -- got those same bytes.
  EXPECT_EQ(slurp(out), ref);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(watch_rcs[static_cast<std::size_t>(i)], 0) << "watcher " << i;
    EXPECT_EQ(slurp(watch_outs[static_cast<std::size_t>(i)]), ref) << "watcher " << i;
  }
}

TEST(Observability, LateWatcherOfAFinishedJobReplaysSnapshotAndReport) {
  std::string design = write_temp("obs_late.c", kClampSrc);
  Daemon d;
  std::string out = temp_path("obs_late_ref.txt");
  ASSERT_EQ(submit_job(d.socket, clamp_spec(design), out, /*quiet=*/true), 0);

  WatchOptions wopt;
  wopt.quiet = true;
  wopt.out_path = temp_path("obs_late_watch.txt");
  EXPECT_EQ(watch_job(d.socket, 1, wopt), 0);
  EXPECT_EQ(slurp(wopt.out_path), slurp(out));

  // A job id the daemon never saw stays a typed failure.
  WatchOptions missing;
  missing.quiet = true;
  missing.out_path = temp_path("obs_late_missing.txt");
  EXPECT_EQ(watch_job(d.socket, 99, missing), 1);
}

TEST(Observability, TraceExportValidatesAndCoversTheJobLifecycle) {
  std::string design = write_temp("obs_trace.c", kClampSrc);
  Daemon d({"--backoff-base-ms=1", "--backoff-cap-ms=10"});
  CampaignSpec spec = clamp_spec(design);
  spec.workers = 2;
  spec.crash_at = {3};  // one worker dies mid-sweep: a respawn must trace
  ASSERT_EQ(submit_job(d.socket, spec, temp_path("obs_trace_report.txt"), /*quiet=*/true), 0);

  StatusOr<std::string> trace = fetch_trace(d.socket, 1);
  ASSERT_TRUE(trace.ok()) << trace.status().to_string();
  metrics::ChromeTraceCheck chk = metrics::validate_chrome_trace(*trace);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_GT(chk.events, 5u);
  // The lifecycle is fully spanned: submit instant, queued/run spans,
  // compile -> shard -> merge phases, and the crash's respawn marker.
  for (const char* name : {"\"submit\"", "\"queued\"", "\"run\"", "\"compile\"", "\"shard\"",
                           "\"merge\"", "respawn site s3"}) {
    EXPECT_NE(trace->find(name), std::string::npos) << "missing " << name;
  }

  // job 0 = the fleet view; unknown jobs are typed rejections.
  StatusOr<std::string> fleet = fetch_trace(d.socket, 0);
  ASSERT_TRUE(fleet.ok());
  EXPECT_TRUE(metrics::validate_chrome_trace(*fleet).ok);
  EXPECT_FALSE(fetch_trace(d.socket, 42).ok());
}

TEST(Observability, MetricsSnapshotReconcilesWithTheEventLog) {
  std::string design = write_temp("obs_metrics.c", kClampSrc);
  std::string events = temp_path("obs_events.jsonl");
  {
    Daemon d({"--events-out=" + events, "--backoff-base-ms=1", "--backoff-cap-ms=10"});
    CampaignSpec spec = clamp_spec(design);
    ASSERT_EQ(submit_job(d.socket, spec, temp_path("obs_m1.txt"), /*quiet=*/true), 0);
    CampaignSpec crash = clamp_spec(design);
    crash.workers = 2;
    crash.crash_at = {3};
    ASSERT_EQ(submit_job(d.socket, crash, temp_path("obs_m2.txt"), /*quiet=*/true), 0);

    WatchOptions wopt;
    wopt.quiet = true;
    wopt.out_path = temp_path("obs_m_watch.txt");
    ASSERT_EQ(watch_job(d.socket, 2, wopt), 0);

    StatusOr<std::string> snap = query_metrics(d.socket);
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();
    EXPECT_EQ(json_int(*snap, "jobs_submitted"), 2);
    EXPECT_EQ(json_int(*snap, "jobs_completed"), 2);
    EXPECT_EQ(json_int(*snap, "jobs_failed"), 0);
    EXPECT_GE(json_int(*snap, "worker_respawns"), 1);
    EXPECT_GE(json_int(*snap, "sites_done"), 1);
    EXPECT_GT(json_int(*snap, "journal_bytes"), 0);
    EXPECT_GE(json_int(*snap, "watch_subscribers"), 1);
    EXPECT_GT(json_int(*snap, "watch_frames_sent"), 0);
    EXPECT_GE(json_int(*snap, "events_logged"), 1);

    // The counters agree with the flight recorder while it is live.
    std::string text = slurp(events);
    EXPECT_EQ(count_events(text, "job-submitted"),
              static_cast<std::size_t>(json_int(*snap, "jobs_submitted")));
    EXPECT_EQ(count_events(text, "job-completed"),
              static_cast<std::size_t>(json_int(*snap, "jobs_completed")));
    EXPECT_EQ(count_events(text, "worker-crashed"),
              static_cast<std::size_t>(json_int(*snap, "worker_respawns")));
  }
  // Daemon gone: the log ends with daemon-stop and seq stays monotonic.
  std::string text = slurp(events);
  EXPECT_EQ(count_events(text, "daemon-start"), 1u);
  EXPECT_EQ(count_events(text, "daemon-stop"), 1u);
  std::istringstream in(text);
  std::string line;
  long long prev_seq = 0;
  while (std::getline(in, line)) {
    long long seq = json_int(line, "seq");
    EXPECT_EQ(seq, prev_seq + 1) << line;
    prev_seq = seq;
  }
  EXPECT_GE(prev_seq, 6);
}

TEST(Observability, StatusReportsQueueDepthsAndWorkerTallies) {
  std::string design = write_temp("obs_status.c", kClampSrc);
  // One executor so queued jobs are observable; quick respawns.
  Daemon d({"--jobs=1", "--workers=1", "--heartbeat-timeout-ms=1500", "--backoff-base-ms=1",
            "--backoff-cap-ms=10"});

  // A crashing job leaves per-worker respawn tallies behind.
  CampaignSpec crash = clamp_spec(design);
  crash.workers = 1;
  crash.crash_at = {3};
  ASSERT_EQ(submit_job(d.socket, crash, temp_path("obs_s1.txt"), /*quiet=*/true), 0);

  // Pin the executor with a stalled job, then queue two more at
  // distinct priorities so the per-priority depths are visible.
  CampaignSpec stall = clamp_spec(design);
  stall.workers = 1;
  stall.stall_at = {0};
  int rc1 = -1, rc2 = -1, rc3 = -1;
  std::thread j1([&] { rc1 = submit_job(d.socket, stall, temp_path("obs_s2.txt"), true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  CampaignSpec queued_hi = clamp_spec(design);
  queued_hi.priority = 5;
  CampaignSpec queued_lo = clamp_spec(design);
  queued_lo.priority = -1;
  std::thread j2([&] { rc2 = submit_job(d.socket, queued_hi, temp_path("obs_s3.txt"), true); });
  std::thread j3([&] { rc3 = submit_job(d.socket, queued_lo, temp_path("obs_s4.txt"), true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  StatusOr<std::string> status = query_status(d.socket);
  ASSERT_TRUE(status.ok()) << status.status().to_string();
  // Historic first line intact, then the new depth/tally detail.
  EXPECT_NE(status->find("queued=2"), std::string::npos) << *status;
  EXPECT_NE(status->find("priority 5: depth 1"), std::string::npos) << *status;
  EXPECT_NE(status->find("priority -1: depth 1"), std::string::npos) << *status;
  EXPECT_NE(status->find("respawns="), std::string::npos) << *status;

  j1.join();
  j2.join();
  j3.join();
  EXPECT_EQ(rc1, 0);
  EXPECT_EQ(rc2, 0);
  EXPECT_EQ(rc3, 0);
}

}  // namespace
}  // namespace hlsav::serve
