// ServiceTracer + EventLog unit tests: span trees that validate as
// Chrome trace JSON, crash-tolerant worker tracks, and the monotonic
// append-only event log.
#include "serve/tracer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "metrics/chrometrace.h"
#include "serve/events.h"

namespace hlsav::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(ServiceTracer, LifecycleSpansExportAsAValidChromeTrace) {
  ServiceTracer tracer;
  tracer.name_job(1, "job 1 clamp.c");
  tracer.begin_span(1, ServiceTracer::kLifecycleTid, "queued");
  tracer.end_span(1, ServiceTracer::kLifecycleTid, "queued");
  tracer.begin_span(1, ServiceTracer::kLifecycleTid, "run");
  tracer.begin_span(1, ServiceTracer::kLifecycleTid, "compile");
  tracer.end_span(1, ServiceTracer::kLifecycleTid, "compile");
  tracer.begin_span(1, ServiceTracer::kWorkerTidBase + 0, "s0");
  tracer.instant(1, ServiceTracer::kWorkerTidBase + 0, "respawn site s0");
  tracer.end_span(1, ServiceTracer::kWorkerTidBase + 0, "s0");
  tracer.end_span(1, ServiceTracer::kLifecycleTid, "run");

  StatusOr<std::string> json = tracer.export_json(1);
  ASSERT_TRUE(json.ok()) << json.status().to_string();
  metrics::ChromeTraceCheck chk = metrics::validate_chrome_trace(*json);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_NE(json->find("\"name\": \"queued\""), std::string::npos);
  EXPECT_NE(json->find("\"name\": \"run\""), std::string::npos);
  EXPECT_NE(json->find("\"name\": \"compile\""), std::string::npos);
  EXPECT_NE(json->find("\"name\": \"respawn site s0\""), std::string::npos);
  EXPECT_NE(json->find("job 1 clamp.c"), std::string::npos);
  EXPECT_EQ(tracer.span_count(), 4u);
}

TEST(ServiceTracer, UnknownJobIsTypedAndJobZeroMeansEverything) {
  ServiceTracer tracer;
  StatusOr<std::string> missing = tracer.export_json(99);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  tracer.begin_span(1, ServiceTracer::kLifecycleTid, "run");
  tracer.begin_span(2, ServiceTracer::kLifecycleTid, "run");
  StatusOr<std::string> all = tracer.export_json(0);
  ASSERT_TRUE(all.ok());
  // Both jobs appear as separate trace processes.
  EXPECT_NE(all->find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(all->find("\"pid\": 2"), std::string::npos);
  metrics::ChromeTraceCheck chk = metrics::validate_chrome_trace(*all);
  EXPECT_TRUE(chk.ok) << chk.error;
}

TEST(ServiceTracer, OpenSpansCloseAtExportAndCrashEatenEndsAreRepaired) {
  ServiceTracer tracer;
  // A worker crash eats the end event of s3; the next site on the same
  // track must implicitly close it instead of nesting forever.
  tracer.begin_span(1, ServiceTracer::kWorkerTidBase + 2, "s3");
  tracer.begin_span(1, ServiceTracer::kWorkerTidBase + 2, "s4");
  // "run" stays open: the export renders it as running-up-to-now.
  tracer.begin_span(1, ServiceTracer::kLifecycleTid, "run");

  StatusOr<std::string> json = tracer.export_json(1);
  ASSERT_TRUE(json.ok());
  metrics::ChromeTraceCheck chk = metrics::validate_chrome_trace(*json);
  EXPECT_TRUE(chk.ok) << chk.error;
  // Every span made it out as a complete X event (dur present >= 0).
  EXPECT_NE(json->find("\"name\": \"s3\""), std::string::npos);
  EXPECT_NE(json->find("\"name\": \"s4\""), std::string::npos);
  EXPECT_NE(json->find("\"name\": \"run\""), std::string::npos);
}

TEST(ServiceTracer, ClockIsMonotonic) {
  ServiceTracer tracer;
  std::uint64_t a = tracer.now_us();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::uint64_t b = tracer.now_us();
  EXPECT_GT(b, a);
}

TEST(EventLog, RecordsMonotonicSequencesAndFlushesPerLine) {
  EventLog log;
  std::string path = temp_path("events_basic.jsonl");
  ASSERT_TRUE(log.open(path).ok());
  log.record(1000, "daemon-start", {EventLog::Field::str("socket", "/tmp/x.sock")});
  log.record(2500, "job-submitted",
             {EventLog::Field::num("job", 1), EventLog::Field::str("design", "clamp.c")});
  log.record(9000, "job-completed",
             {EventLog::Field::num("job", 1), EventLog::Field::str("status", "ok")});
  EXPECT_EQ(log.sequence(), 3u);
  // Flushed per line: visible before close.
  std::string before_close = slurp(path);
  EXPECT_NE(before_close.find("\"seq\":3"), std::string::npos);
  log.close();

  std::istringstream in(slurp(path));
  std::string line;
  std::uint64_t expect_seq = 1;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"seq\":" + std::to_string(expect_seq) + ","), std::string::npos) << line;
    EXPECT_NE(line.find("\"event\":"), std::string::npos) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++expect_seq;
  }
  EXPECT_EQ(expect_seq, 4u);
}

TEST(EventLog, AppendModeExtendsAcrossIncarnations) {
  std::string path = temp_path("events_append.jsonl");
  {
    EventLog log;
    ASSERT_TRUE(log.open(path).ok());
    log.record(10, "daemon-start", {});
  }
  {
    EventLog log;
    ASSERT_TRUE(log.open(path).ok());
    log.record(20, "daemon-start", {});
    log.record(30, "daemon-stop", {});
  }
  std::istringstream in(slurp(path));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // 1 from the first incarnation, 2 from the second
}

TEST(EventLog, ClosedLogIgnoresRecords) {
  EventLog log;
  log.record(10, "never-lands", {});
  EXPECT_EQ(log.sequence(), 0u);
  EXPECT_FALSE(log.is_open());
}

TEST(EventLog, StringFieldsAreEscaped) {
  EventLog log;
  std::string path = temp_path("events_escape.jsonl");
  ASSERT_TRUE(log.open(path).ok());
  log.record(10, "job-submitted", {EventLog::Field::str("design", "a\"b\\c\n")});
  log.close();
  std::string text = slurp(path);
  // The jsonl dialect escapes quotes/backslashes and renders control
  // characters as \uXXXX.
  EXPECT_NE(text.find("a\\\"b\\\\c\\u000a"), std::string::npos) << text;
}

}  // namespace
}  // namespace hlsav::serve
