// Write-ahead job spool (serve/spool.h): header/state round trips and
// the crash-shaped load edge cases -- header-only entries, torn tails,
// duplicate keys across incarnations, unreadable entries.
#include "serve/spool.h"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

namespace hlsav::serve {
namespace {

std::string fresh_dir(const std::string& name) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "spool_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++) + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

SpoolEntry entry(std::uint64_t job, const std::string& key) {
  SpoolEntry e;
  e.job = job;
  e.key = key;
  e.submit_line = "{\"type\":\"submit\",\"design\":\"d.c\",\"key\":\"" + key + "\"}";
  e.priority = 2;
  e.deadline_ms = 1500;
  e.submitted_unix_ms = 1754600000000ull;
  return e;
}

TEST(Spool, EmptyDirectoryScansToNothing) {
  StatusOr<JobSpool> spool = JobSpool::open(fresh_dir("empty"));
  ASSERT_TRUE(spool.ok()) << spool.status().to_string();
  StatusOr<SpoolScan> scan = spool->scan();
  ASSERT_TRUE(scan.ok()) << scan.status().to_string();
  EXPECT_TRUE(scan->entries.empty());
  EXPECT_EQ(scan->quarantined, 0u);
  EXPECT_EQ(scan->torn_tails, 0u);
}

TEST(Spool, AcceptedThenStateTransitionsRoundTrip) {
  StatusOr<JobSpool> spool = JobSpool::open(fresh_dir("roundtrip"));
  ASSERT_TRUE(spool.ok());
  ASSERT_TRUE(spool->record_accepted(entry(3, "key-a")).ok());
  ASSERT_TRUE(spool->record_state(3, "running").ok());
  ASSERT_TRUE(spool->record_state(3, "done").ok());

  StatusOr<SpoolScan> scan = spool->scan();
  ASSERT_TRUE(scan.ok()) << scan.status().to_string();
  ASSERT_EQ(scan->entries.size(), 1u);
  const SpoolEntry& e = scan->entries[0];
  EXPECT_EQ(e.job, 3u);
  EXPECT_EQ(e.key, "key-a");
  EXPECT_EQ(e.submit_line, entry(3, "key-a").submit_line);
  EXPECT_EQ(e.priority, 2);
  EXPECT_EQ(e.deadline_ms, 1500u);
  EXPECT_EQ(e.submitted_unix_ms, 1754600000000ull);
  EXPECT_EQ(e.state, "done");
  EXPECT_TRUE(e.terminal());
}

TEST(Spool, HeaderOnlyEntryIsAQueuedJob) {
  // The daemon died between spooling and running: no state record at
  // all. Recovery must treat that as queued, not as corruption.
  StatusOr<JobSpool> spool = JobSpool::open(fresh_dir("headeronly"));
  ASSERT_TRUE(spool.ok());
  ASSERT_TRUE(spool->record_accepted(entry(1, "key-h")).ok());
  StatusOr<SpoolScan> scan = spool->scan();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->entries.size(), 1u);
  EXPECT_EQ(scan->entries[0].state, "queued");
  EXPECT_FALSE(scan->entries[0].terminal());
}

TEST(Spool, TornTailRecordIsTruncatedAwayNotFatal) {
  StatusOr<JobSpool> spool = JobSpool::open(fresh_dir("torn"));
  ASSERT_TRUE(spool.ok());
  ASSERT_TRUE(spool->record_accepted(entry(5, "key-t")).ok());
  ASSERT_TRUE(spool->record_state(5, "running").ok());
  StatusOr<SpoolScan> before = spool->scan();
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->entries.size(), 1u);
  const std::string path = before->entries[0].path;
  const std::string intact = slurp(path);

  // A crash mid-append leaves half a record (newline present but the
  // JSON mangled): the loader must keep "running" and drop the tail.
  append_raw(path, "{\"type\":\"st\",\"sta");
  StatusOr<SpoolScan> scan = spool->scan();
  ASSERT_TRUE(scan.ok()) << scan.status().to_string();
  ASSERT_EQ(scan->entries.size(), 1u);
  EXPECT_EQ(scan->entries[0].state, "running");
  EXPECT_EQ(scan->torn_tails, 1u);
  // Truncated back to the durable prefix, so the next append is clean.
  EXPECT_EQ(slurp(path), intact);
  ASSERT_TRUE(spool->record_state(5, "done").ok());
  StatusOr<SpoolScan> after = spool->scan();
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->entries.size(), 1u);
  EXPECT_EQ(after->entries[0].state, "done");
  EXPECT_EQ(after->torn_tails, 0u);
}

TEST(Spool, DuplicateKeysAcrossIncarnationsAllLoad) {
  // Two incarnations of the daemon may have spooled different jobs
  // under the same idempotency key (e.g. a requeue after a crash).
  // The spool itself loads both, sorted by job id -- first-wins policy
  // belongs to the service layer, not the loader.
  StatusOr<JobSpool> spool = JobSpool::open(fresh_dir("dupkeys"));
  ASSERT_TRUE(spool.ok());
  ASSERT_TRUE(spool->record_accepted(entry(9, "shared-key")).ok());
  ASSERT_TRUE(spool->record_accepted(entry(2, "shared-key")).ok());
  StatusOr<SpoolScan> scan = spool->scan();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->entries.size(), 2u);
  EXPECT_EQ(scan->entries[0].job, 2u);
  EXPECT_EQ(scan->entries[1].job, 9u);
  EXPECT_EQ(scan->entries[0].key, scan->entries[1].key);
}

TEST(Spool, CorruptEntryIsQuarantinedWithAReasonNeverABootFailure) {
  std::string dir = fresh_dir("corrupt");
  StatusOr<JobSpool> spool = JobSpool::open(dir);
  ASSERT_TRUE(spool.ok());
  ASSERT_TRUE(spool->record_accepted(entry(1, "key-ok")).ok());
  {
    std::ofstream bad(dir + "/job_00000002.spool", std::ios::binary);
    bad << "this is not a spool header\n{\"type\":\"st\",\"state\":\"running\"}\n";
  }
  {
    std::ofstream headerless(dir + "/job_00000003.spool", std::ios::binary);
    headerless << "no newline at all";
  }
  StatusOr<SpoolScan> scan = spool->scan();
  ASSERT_TRUE(scan.ok()) << scan.status().to_string();
  ASSERT_EQ(scan->entries.size(), 1u);
  EXPECT_EQ(scan->entries[0].key, "key-ok");
  EXPECT_EQ(scan->quarantined, 2u);
  // Both bad entries moved aside with a reason, out of future scans.
  EXPECT_FALSE(std::filesystem::exists(dir + "/job_00000002.spool"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine/job_00000002.spool"));
  std::string reason = slurp(dir + "/quarantine/job_00000002.spool.reason");
  EXPECT_NE(reason.find("header"), std::string::npos) << reason;
  EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine/job_00000003.spool"));
  StatusOr<SpoolScan> again = spool->scan();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->quarantined, 0u);
  EXPECT_EQ(again->entries.size(), 1u);
}

TEST(Spool, TempSiblingsAndForeignFilesAreIgnored) {
  std::string dir = fresh_dir("foreign");
  StatusOr<JobSpool> spool = JobSpool::open(dir);
  ASSERT_TRUE(spool.ok());
  ASSERT_TRUE(spool->record_accepted(entry(4, "key-f")).ok());
  {
    std::ofstream tmp(dir + "/job_00000005.spool.tmp123", std::ios::binary);
    tmp << "interrupted atomic write";
  }
  {
    std::ofstream notes(dir + "/README", std::ios::binary);
    notes << "hands off";
  }
  StatusOr<SpoolScan> scan = spool->scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->entries.size(), 1u);
  EXPECT_EQ(scan->quarantined, 0u);
}

TEST(Spool, TerminalStateVocabulary) {
  for (const char* s : {"done", "error", "aborted", "drained", "deadline-expired"}) {
    EXPECT_TRUE(JobSpool::state_terminal(s)) << s;
  }
  for (const char* s : {"queued", "running", "merging", ""}) {
    EXPECT_FALSE(JobSpool::state_terminal(s)) << s;
  }
}

}  // namespace
}  // namespace hlsav::serve
