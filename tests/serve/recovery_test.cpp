// Daemon crash recovery end-to-end: a real hlsavd killed by -9 at
// every interesting phase of a job's life, restarted on the same
// socket/work/spool dirs, and the idempotent-resubmit contract -- the
// retried submit must yield a report byte-identical to an uninterrupted
// single-process run, and a duplicate key must never double-run.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "support/subprocess.h"

#ifndef HLSAVD_PATH
#define HLSAVD_PATH "hlsavd"
#endif
#ifndef HLSAVC_PATH
#define HLSAVC_PATH "hlsavc"
#endif

namespace hlsav::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string write_temp(const std::string& name, const std::string& contents) {
  std::string path = temp_path(name);
  std::ofstream out(path);
  out << contents;
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

const char* kClampSrc = R"(
void clamp(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 6; i++) {
    uint32 v = stream_read(in);
    uint32 y = v;
    if (y > 255) { y = 255; }
    assert(y <= 255);
    stream_write(out, y);
  }
}
)";

std::string run_hlsavc(const std::string& args) {
  std::string cmd = std::string(HLSAVC_PATH) + " " + args + " 2>/dev/null";
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) out += buf.data();
  pclose(pipe);
  return out;
}

CampaignSpec clamp_spec(const std::string& design_path) {
  CampaignSpec spec;
  spec.design_path = design_path;
  spec.feeds = "clamp.in=1,2,3,300,5,6";
  spec.seed = 7;
  return spec;
}

/// A daemon meant to die and come back: fixed socket/work/spool paths
/// so a restart resumes the same state. Readiness is a status round
/// trip, never the socket file -- a stale socket survives kill -9.
struct CrashDaemon {
  explicit CrashDaemon(const std::string& tag, std::vector<std::string> extra_flags = {})
      : flags(std::move(extra_flags)) {
    socket = temp_path("rec_" + tag + ".sock");
    work_dir = temp_path("recwork_" + tag);
    start();
  }

  void start() {
    std::vector<std::string> argv = {HLSAVD_PATH, "serve", "--socket=" + socket,
                                     "--work-dir=" + work_dir};
    for (const std::string& f : flags) argv.push_back(f);
    StatusOr<Subprocess> p = Subprocess::spawn(argv, /*capture_stdout=*/false);
    EXPECT_TRUE(p.ok()) << p.status().to_string();
    if (p.ok()) proc.emplace(std::move(*p));
    bool ready = false;
    for (int i = 0; i < 1000 && !ready; ++i) {
      ready = query_status(socket).ok();
      if (!ready) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(ready) << "daemon never answered status on " << socket;
  }

  /// Blocks until the daemon's self-inflicted SIGKILL lands.
  ExitInfo wait_killed() {
    for (int i = 0; i < 3000 && !proc->poll().has_value(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(proc->poll().has_value()) << "daemon outlived its --die-at phase";
    if (!proc->poll().has_value()) proc->kill(SIGKILL);
    return proc->wait();
  }

  /// New incarnation, identical flags: the durable die-at token makes
  /// it immune to the phase that killed its predecessor.
  void restart() {
    (void)proc->wait();
    start();
  }

  ~CrashDaemon() {
    if (!proc.has_value()) return;
    if (!proc->poll().has_value()) {
      (void)request_shutdown(socket);
      for (int i = 0; i < 500 && !proc->poll().has_value(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (!proc->poll().has_value()) proc->kill(SIGKILL);
    (void)proc->wait();
  }

  std::string socket;
  std::string work_dir;
  std::vector<std::string> flags;
  std::optional<Subprocess> proc;
};

/// The core property: kill -9 at `phase`, restart, blindly resubmit the
/// same idempotency key with --retry semantics, and the report must be
/// byte-identical to the uninterrupted single-process reference.
void crash_and_recover(const std::string& phase, bool job_spooled_before_death) {
  std::string design = write_temp("rec_clamp_" + phase + ".c", kClampSrc);
  std::string ref =
      run_hlsavc("faultsim " + design + " --campaign --seed=7 --feed clamp.in=1,2,3,300,5,6");
  ASSERT_NE(ref.find("Fault-injection campaign"), std::string::npos) << ref;

  CrashDaemon d("phase_" + phase,
                {"--die-at=" + phase, "--backoff-base-ms=1", "--backoff-cap-ms=10"});
  CampaignSpec spec = clamp_spec(design);
  spec.key = "crash-" + phase;

  SubmitOptions once;
  once.quiet = true;
  once.out_path = temp_path("rec_first_" + phase + ".txt");
  int rc1 = submit_job(d.socket, spec, once);
  EXPECT_NE(rc1, 0) << "the daemon was supposed to die under this submit";

  ExitInfo death = d.wait_killed();
  EXPECT_TRUE(death.signaled) << death.describe();
  EXPECT_EQ(death.value, SIGKILL) << death.describe();

  d.restart();

  SubmitOptions retry;
  retry.quiet = true;
  retry.retries = 5;
  retry.retry_base_ms = 20;
  retry.retry_cap_ms = 200;
  retry.out_path = temp_path("rec_retry_" + phase + ".txt");
  int rc2 = submit_job(d.socket, spec, retry);
  EXPECT_EQ(rc2, 0);
  EXPECT_EQ(slurp(retry.out_path), ref);

  StatusOr<std::string> status = query_status(d.socket);
  ASSERT_TRUE(status.ok()) << status.status().to_string();
  EXPECT_NE(status->find("incarnation"), std::string::npos) << *status;
  if (job_spooled_before_death) {
    EXPECT_NE(status->find("recovered 1 job(s) at boot"), std::string::npos) << *status;
  }
  EXPECT_TRUE(std::filesystem::exists(d.work_dir + "/spool"));
}

TEST(Recovery, DieAtAcceptThenRetriedSubmitMatchesReference) {
  // Death before the spool write: nothing to recover, the retry simply
  // runs the job fresh under the same key.
  crash_and_recover("accept", /*job_spooled_before_death=*/false);
}

TEST(Recovery, DieAtSpooledThenRestartReAdoptsAndMatchesReference) {
  crash_and_recover("spooled", /*job_spooled_before_death=*/true);
}

TEST(Recovery, DieAtShardSpawnedThenRestartResumesShardsByteIdentically) {
  crash_and_recover("shard-spawned", /*job_spooled_before_death=*/true);
}

TEST(Recovery, DieAtPreMergeThenRestartReplaysJournalsByteIdentically) {
  crash_and_recover("pre-merge", /*job_spooled_before_death=*/true);
}

TEST(Recovery, DieAtPreDoneThenRestartStillYieldsTheExactReport) {
  crash_and_recover("pre-done", /*job_spooled_before_death=*/true);
}

TEST(Recovery, DuplicateSubmitNeverDoubleRunsAndReplaysTheReport) {
  std::string design = write_temp("rec_dup.c", kClampSrc);
  std::string ref =
      run_hlsavc("faultsim " + design + " --campaign --seed=7 --feed clamp.in=1,2,3,300,5,6");
  ASSERT_NE(ref.find("Fault-injection campaign"), std::string::npos) << ref;

  CrashDaemon d("dup");
  CampaignSpec spec = clamp_spec(design);
  spec.key = "dup-key";

  SubmitOptions opt;
  opt.quiet = true;
  opt.out_path = temp_path("rec_dup1.txt");
  EXPECT_EQ(submit_job(d.socket, spec, opt), 0);
  EXPECT_EQ(slurp(opt.out_path), ref);

  opt.out_path = temp_path("rec_dup2.txt");
  EXPECT_EQ(submit_job(d.socket, spec, opt), 0);
  EXPECT_EQ(slurp(opt.out_path), ref);

  // One completion, not two: the second submit was a replay.
  StatusOr<std::string> status = query_status(d.socket);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("completed=1"), std::string::npos) << *status;
}

TEST(Recovery, SameKeyWithADifferentSpecIsATypedRejection) {
  std::string design = write_temp("rec_dupbad.c", kClampSrc);
  CrashDaemon d("dupbad");
  CampaignSpec spec = clamp_spec(design);
  spec.key = "contested-key";
  SubmitOptions opt;
  opt.quiet = true;
  opt.out_path = temp_path("rec_dupbad1.txt");
  EXPECT_EQ(submit_job(d.socket, spec, opt), 0);

  CampaignSpec other = spec;
  other.seed = 99;  // same key, different job: refuse, never guess
  opt.out_path = temp_path("rec_dupbad2.txt");
  EXPECT_EQ(submit_job(d.socket, other, opt), 7);
}

TEST(Recovery, DeadlineExpiredWhileQueuedExitsEight) {
  std::string design = write_temp("rec_deadline.c", kClampSrc);
  // One executor, deterministically busy: job 1 stalls its worker on
  // site 0 until the 3s heartbeat watchdog clears it.
  CrashDaemon d("deadline", {"--jobs=1", "--workers=1", "--heartbeat-timeout-ms=3000",
                             "--backoff-base-ms=1", "--backoff-cap-ms=10"});
  CampaignSpec stall = clamp_spec(design);
  stall.workers = 1;
  stall.stall_at = {0};

  std::thread j1([&] {
    SubmitOptions opt;
    opt.quiet = true;
    opt.out_path = temp_path("rec_deadline1.txt");
    EXPECT_EQ(submit_job(d.socket, stall, opt), 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  CampaignSpec late = clamp_spec(design);
  late.key = "too-late";
  late.deadline_ms = 500;  // expires long before the executor frees up
  SubmitOptions opt;
  opt.quiet = true;
  opt.out_path = temp_path("rec_deadline2.txt");
  EXPECT_EQ(submit_job(d.socket, late, opt), 8);
  j1.join();
}

TEST(Recovery, NoSpoolPreservesThePlainInMemoryBehavior) {
  std::string design = write_temp("rec_nospool.c", kClampSrc);
  std::string ref =
      run_hlsavc("faultsim " + design + " --campaign --seed=7 --feed clamp.in=1,2,3,300,5,6");
  ASSERT_NE(ref.find("Fault-injection campaign"), std::string::npos) << ref;

  CrashDaemon d("nospool", {"--no-spool"});
  CampaignSpec spec = clamp_spec(design);
  SubmitOptions opt;
  opt.quiet = true;
  opt.out_path = temp_path("rec_nospool.txt");
  EXPECT_EQ(submit_job(d.socket, spec, opt), 0);
  EXPECT_EQ(slurp(opt.out_path), ref);
  EXPECT_FALSE(std::filesystem::exists(d.work_dir + "/spool"));

  StatusOr<std::string> status = query_status(d.socket);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("recovered 0 job(s) at boot"), std::string::npos) << *status;
}

}  // namespace
}  // namespace hlsav::serve
