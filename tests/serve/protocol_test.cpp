// hlsavd wire protocol: submit round-trip, feed specs, reply lines.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "support/jsonl.h"

namespace hlsav::serve {
namespace {

TEST(Protocol, SubmitRoundTripsEveryField) {
  CampaignSpec spec;
  spec.design_path = "/tmp/some dir/clamp.c";
  spec.feeds = "f.in=1,2,3;f.other=9";
  spec.assertions = "unoptimized";
  spec.seed = 42;
  spec.max_faults = 10;
  spec.max_cycles = 123456;
  spec.site_wall_ms = 2.5;
  spec.workers = 3;
  spec.priority = -2;
  spec.crash_at = {7, 11};
  spec.crash_limit = 4;
  spec.stall_at = {5};

  StatusOr<CampaignSpec> back = decode_submit(encode_submit(spec));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->design_path, spec.design_path);
  EXPECT_EQ(back->feeds, spec.feeds);
  EXPECT_EQ(back->assertions, spec.assertions);
  EXPECT_EQ(back->seed, spec.seed);
  EXPECT_EQ(back->max_faults, spec.max_faults);
  EXPECT_EQ(back->max_cycles, spec.max_cycles);
  EXPECT_EQ(back->site_wall_ms, spec.site_wall_ms);
  EXPECT_EQ(back->workers, spec.workers);
  EXPECT_EQ(back->priority, spec.priority);
  EXPECT_EQ(back->crash_at, spec.crash_at);
  EXPECT_EQ(back->crash_limit, spec.crash_limit);
  EXPECT_EQ(back->stall_at, spec.stall_at);
}

TEST(Protocol, SubmitDefaultsSurviveMinimalLine) {
  CampaignSpec spec;
  spec.design_path = "design.c";
  StatusOr<CampaignSpec> back = decode_submit(encode_submit(spec));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->assertions, "optimized");
  EXPECT_EQ(back->seed, 1u);
  EXPECT_EQ(back->priority, 0);
  EXPECT_TRUE(back->crash_at.empty());
}

TEST(Protocol, SubmitWithoutDesignIsInvalid) {
  StatusOr<CampaignSpec> back = decode_submit("{\"type\":\"submit\"}");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(Protocol, SubmitWithBogusAssertionModeIsInvalid) {
  CampaignSpec spec;
  spec.design_path = "d.c";
  spec.assertions = "sometimes";
  StatusOr<CampaignSpec> back = decode_submit(encode_submit(spec));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(Protocol, FeedSpecParsesMultipleStreams) {
  StatusOr<std::map<std::string, std::vector<std::uint64_t>>> feeds =
      parse_feed_spec("f.in=1,2,3;f.sel=0");
  ASSERT_TRUE(feeds.ok()) << feeds.status().to_string();
  ASSERT_EQ(feeds->size(), 2u);
  EXPECT_EQ(feeds->at("f.in"), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(feeds->at("f.sel"), (std::vector<std::uint64_t>{0}));
}

TEST(Protocol, EmptyFeedSpecMeansNoFeeds) {
  StatusOr<std::map<std::string, std::vector<std::uint64_t>>> feeds = parse_feed_spec("");
  ASSERT_TRUE(feeds.ok());
  EXPECT_TRUE(feeds->empty());
}

TEST(Protocol, MalformedFeedSpecIsInvalid) {
  EXPECT_FALSE(parse_feed_spec("noequals").ok());
  EXPECT_FALSE(parse_feed_spec("f.in=1,notanumber").ok());
}

TEST(Protocol, RejectedReplyCarriesCodeAndMessage) {
  std::string line = encode_rejected(Status::unavailable("queue full (cap 4)"));
  std::string type, code, message;
  ASSERT_TRUE(jsonl::parse_string(line, "type", type));
  ASSERT_TRUE(jsonl::parse_string(line, "code", code));
  ASSERT_TRUE(jsonl::parse_string(line, "message", message));
  EXPECT_EQ(type, "rejected");
  EXPECT_EQ(code, "unavailable");
  EXPECT_EQ(message, "queue full (cap 4)");
}

TEST(Protocol, WorkerHeartbeatLinesParse) {
  std::string starting = encode_worker_starting(17);
  std::string site = encode_worker_site(17, "detected");
  std::string type, outcome;
  std::uint64_t s = 0;
  ASSERT_TRUE(jsonl::parse_string(starting, "type", type));
  EXPECT_EQ(type, "starting");
  ASSERT_TRUE(jsonl::parse_u64(starting, "site", s));
  EXPECT_EQ(s, 17u);
  ASSERT_TRUE(jsonl::parse_string(site, "type", type));
  EXPECT_EQ(type, "site");
  ASSERT_TRUE(jsonl::parse_string(site, "outcome", outcome));
  EXPECT_EQ(outcome, "detected");
}

}  // namespace
}  // namespace hlsav::serve
