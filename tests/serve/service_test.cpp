// End-to-end service tests: a real hlsavd daemon subprocess, jobs
// submitted through the client library, workers killed mid-sweep, and
// the byte-identity + back-pressure + graceful-shutdown contracts.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "support/subprocess.h"

#ifndef HLSAVD_PATH
#define HLSAVD_PATH "hlsavd"
#endif
#ifndef HLSAVC_PATH
#define HLSAVC_PATH "hlsavc"
#endif

namespace hlsav::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string write_temp(const std::string& name, const std::string& contents) {
  std::string path = temp_path(name);
  std::ofstream out(path);
  out << contents;
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

const char* kClampSrc = R"(
void clamp(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 6; i++) {
    uint32 v = stream_read(in);
    uint32 y = v;
    if (y > 255) { y = 255; }
    assert(y <= 255);
    stream_write(out, y);
  }
}
)";

/// Runs hlsavc and captures stdout+stderr (the single-process campaign
/// reference the service must match byte for byte).
std::string run_hlsavc(const std::string& args) {
  std::string cmd = std::string(HLSAVC_PATH) + " " + args + " 2>/dev/null";
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) out += buf.data();
  pclose(pipe);
  return out;
}

/// A live hlsavd daemon for one test: spawned on construction, torn
/// down (gracefully if possible, SIGKILL as a backstop) on destruction.
struct Daemon {
  explicit Daemon(std::vector<std::string> extra_flags = {}) {
    socket = temp_path("svc_" + std::to_string(counter_++) + ".sock");
    work_dir = temp_path("svcwork_" + std::to_string(counter_));
    std::vector<std::string> argv = {HLSAVD_PATH, "serve", "--socket=" + socket,
                                     "--work-dir=" + work_dir};
    for (std::string& f : extra_flags) argv.push_back(std::move(f));
    StatusOr<Subprocess> p = Subprocess::spawn(argv, /*capture_stdout=*/false);
    EXPECT_TRUE(p.ok()) << p.status().to_string();
    if (p.ok()) proc.emplace(std::move(*p));
    // The daemon prints its listening line after binding; the socket
    // file appearing is the readiness signal.
    for (int i = 0; i < 500 && !std::filesystem::exists(socket); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(std::filesystem::exists(socket)) << "daemon never bound " << socket;
  }

  ~Daemon() {
    if (!proc.has_value()) return;
    if (!proc->poll().has_value()) {
      (void)request_shutdown(socket);
      for (int i = 0; i < 500 && !proc->poll().has_value(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (!proc->poll().has_value()) proc->kill(SIGKILL);
    (void)proc->wait();
  }

  /// Graceful shutdown; returns the daemon's own exit info.
  ExitInfo shutdown() {
    EXPECT_TRUE(request_shutdown(socket).ok());
    return proc->wait();
  }

  std::string socket;
  std::string work_dir;
  std::optional<Subprocess> proc;
  static int counter_;
};

int Daemon::counter_ = 0;

CampaignSpec clamp_spec(const std::string& design_path) {
  CampaignSpec spec;
  spec.design_path = design_path;
  spec.feeds = "clamp.in=1,2,3,300,5,6";
  spec.seed = 7;
  return spec;
}

TEST(Service, CrashedWorkersAreContainedAndTheReportStaysByteIdentical) {
  std::string design = write_temp("svc_clamp.c", kClampSrc);
  // Single-process reference sweep: the identical design *path* matters
  // (the report names it), so both runs use the same string.
  std::string ref = run_hlsavc("faultsim " + design +
                               " --campaign --seed=7 --feed clamp.in=1,2,3,300,5,6");
  ASSERT_NE(ref.find("Fault-injection campaign"), std::string::npos) << ref;

  Daemon d;
  CampaignSpec spec = clamp_spec(design);
  spec.workers = 2;
  spec.crash_at = {3, 7};  // two workers die by SIGKILL mid-sweep
  std::string out = temp_path("svc_crash_report.txt");
  int rc = submit_job(d.socket, spec, out, /*quiet=*/true);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(slurp(out), ref);
}

TEST(Service, QuarantineClassifiesARepeatKillerAsWorkerCrashed) {
  std::string design = write_temp("svc_clamp_q.c", kClampSrc);
  Daemon d({"--quarantine-cap=2", "--backoff-base-ms=1", "--backoff-cap-ms=10"});
  CampaignSpec spec = clamp_spec(design);
  spec.workers = 2;
  spec.crash_at = {4};
  spec.crash_limit = 10;  // far past the cap: the site can never succeed
  std::string out = temp_path("svc_quarantine_report.txt");
  int rc = submit_job(d.socket, spec, out, /*quiet=*/true);
  EXPECT_EQ(rc, 0);
  std::string report = slurp(out);
  EXPECT_NE(report.find("worker-crashed"), std::string::npos) << report;
}

TEST(Service, OverloadIsATypedRejectionNeverAHang) {
  std::string design = write_temp("svc_busy.c", kClampSrc);
  // One executor, queue of one. Job 1 stalls its worker on site 0 until
  // the 3s heartbeat watchdog clears it -- a deterministic window in
  // which the executor is provably busy.
  Daemon d({"--queue-cap=1", "--jobs=1", "--workers=1", "--heartbeat-timeout-ms=3000",
            "--backoff-base-ms=1", "--backoff-cap-ms=10"});

  CampaignSpec stall = clamp_spec(design);
  stall.workers = 1;
  stall.stall_at = {0};
  CampaignSpec spec = clamp_spec(design);

  // Job 1 occupies the single executor; job 2 fills the cap-1 queue;
  // job 3 must bounce with the typed queue-full message.
  std::thread j1([&] {
    int rc = submit_job(d.socket, stall, temp_path("svc_busy1.txt"), true);
    EXPECT_EQ(rc, 0) << rc;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::thread j2([&] {
    int rc = submit_job(d.socket, spec, temp_path("svc_busy2.txt"), true);
    EXPECT_EQ(rc, 0) << rc;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  int rc3 = submit_job(d.socket, spec, temp_path("svc_busy3.txt"), true);
  EXPECT_EQ(rc3, 7);  // rejected: typed back-pressure, instantly

  j1.join();
  j2.join();
}

TEST(Service, StatusCountsAndShutdownExitsCleanly) {
  std::string design = write_temp("svc_clamp_s.c", kClampSrc);
  Daemon d;
  StatusOr<std::string> before = query_status(d.socket);
  ASSERT_TRUE(before.ok()) << before.status().to_string();
  EXPECT_NE(before->find("completed=0"), std::string::npos) << *before;

  CampaignSpec spec = clamp_spec(design);
  EXPECT_EQ(submit_job(d.socket, spec, temp_path("svc_status_report.txt"), true), 0);

  StatusOr<std::string> after = query_status(d.socket);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("completed=1"), std::string::npos) << *after;

  ExitInfo info = d.shutdown();
  EXPECT_TRUE(info.clean()) << info.describe();
  // A clean shutdown removes the socket: no stale file to confuse the
  // next daemon or a probing client.
  EXPECT_FALSE(std::filesystem::exists(d.socket));
}

TEST(Service, ShutdownMidJobDrainsInsteadOfDropping) {
  std::string design = write_temp("svc_busy_d.c", kClampSrc);
  // The stalled worker pins the job mid-sweep; SIGTERM-based drain
  // degrades it gracefully (the watchdog bounds how long the stalled
  // site can hold the shutdown hostage).
  Daemon d({"--workers=1", "--heartbeat-timeout-ms=2000"});
  CampaignSpec spec = clamp_spec(design);
  spec.workers = 1;
  spec.stall_at = {0};

  int rc = -1;
  std::thread job([&] { rc = submit_job(d.socket, spec, temp_path("svc_drain.txt"), true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ExitInfo info = d.shutdown();
  job.join();
  EXPECT_TRUE(info.clean()) << info.describe();
  // Drained (6): the shutdown landed while the worker was stalled, the
  // journaled prefix was kept, and the client got a typed outcome.
  EXPECT_EQ(rc, 6) << rc;
}

TEST(Service, SubmittingAMissingDesignFailsTheJobNotTheDaemon) {
  Daemon d;
  CampaignSpec spec;
  spec.design_path = temp_path("svc_never_written.c");
  int rc = submit_job(d.socket, spec, temp_path("svc_missing.txt"), true);
  EXPECT_EQ(rc, 1);
  // The daemon survives the failed job and keeps serving.
  StatusOr<std::string> st = query_status(d.socket);
  ASSERT_TRUE(st.ok()) << st.status().to_string();
  EXPECT_NE(st->find("completed="), std::string::npos);
}

}  // namespace
}  // namespace hlsav::serve
