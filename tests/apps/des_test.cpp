// DES/Triple-DES: golden model vs published test vectors, and the
// generated HLS-C decryptor vs the golden model through the simulator.
#include <gtest/gtest.h>

#include "apps/appbuild.h"
#include "apps/des.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sim/simulator.h"
#include "support/str.h"

namespace hlsav::apps::des {
namespace {

// The classic worked example (Stallings / FIPS walkthrough).
TEST(DesGolden, ClassicTestVector) {
  std::uint64_t key = 0x133457799BBCDFF1ull;
  std::uint64_t pt = 0x0123456789ABCDEFull;
  EXPECT_EQ(des_block(pt, key, false), 0x85E813540F0AB405ull);
  EXPECT_EQ(des_block(0x85E813540F0AB405ull, key, true), pt);
}

// NBS/NIST known-answer vector: key 0x10316E028C8F3B4A, plaintext 0,
// ciphertext 0x82DCBAFBDEAB6602.
TEST(DesGolden, NistKnownAnswer) {
  EXPECT_EQ(des_block(0, 0x10316E028C8F3B4Aull, false), 0x82DCBAFBDEAB6602ull);
}

// Weak-key property: encrypting twice with a weak key is the identity.
TEST(DesGolden, WeakKeyDoubleEncryptIsIdentity) {
  std::uint64_t weak = 0x0101010101010101ull;
  std::uint64_t pt = 0xDEADBEEFCAFEF00Dull;
  EXPECT_EQ(des_block(des_block(pt, weak, false), weak, false), pt);
}

TEST(DesGolden, KeyScheduleFirstSubkey) {
  // From the classic walkthrough: K1 = 000110110000001011101111111111000111000001110010.
  auto ks = key_schedule(0x133457799BBCDFF1ull);
  EXPECT_EQ(ks[0], 0x1B02EFFC7072ull);
  EXPECT_EQ(ks[15], 0xCB3D8B0E17F5ull);
}

TEST(DesGolden, EncryptDecryptRoundTrip) {
  hlsav::SplitMix64 rng(99);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t key = rng.next();
    std::uint64_t pt = rng.next();
    std::uint64_t ct = des_block(pt, key, false);
    EXPECT_EQ(des_block(ct, key, true), pt);
  }
}

TEST(TripleDes, RoundTrip) {
  std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                       0x456789ABCDEF0123ull};
  hlsav::SplitMix64 rng(7);
  for (int i = 0; i < 20; ++i) {
    std::uint64_t pt = rng.next();
    EXPECT_EQ(triple_des_decrypt(triple_des_encrypt(pt, keys), keys), pt);
  }
}

TEST(TripleDes, DegeneratesToSingleDesWithEqualKeys) {
  std::array<std::uint64_t, 3> keys = {0x133457799BBCDFF1ull, 0x133457799BBCDFF1ull,
                                       0x133457799BBCDFF1ull};
  std::uint64_t pt = 0x0123456789ABCDEFull;
  EXPECT_EQ(triple_des_encrypt(pt, keys), des_block(pt, keys[0], false));
}

TEST(TripleDes, TextPacking) {
  std::string text = "The quick brown fox";
  auto blocks = pack_text(text);
  EXPECT_EQ(blocks.size(), 3u);  // 19 chars -> 3 blocks, space padded
  std::string back = unpack_text(blocks);
  EXPECT_EQ(back.substr(0, text.size()), text);
  EXPECT_EQ(back.size(), 24u);
  EXPECT_EQ(back[23], ' ');
}

// ---------------------------------------------------- HLS-C decryptor --

struct DesHarness {
  std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                       0x456789ABCDEF0123ull};
  std::unique_ptr<CompiledApp> app;
  ir::Design design;
  sched::DesignSchedule schedule;
  sim::ExternRegistry externs;

  explicit DesHarness(const assertions::Options& opt) {
    app = compile_app("triple_des", "des3.c", hlsc_decrypt_source(keys));
    design = app->design.clone();
    assertions::synthesize(design, opt);
    ir::verify(design);
    schedule = sched::schedule_design(design);
  }

  sim::RunResult decrypt(const std::string& text, std::vector<std::uint64_t>* out_chars) {
    std::vector<std::uint64_t> blocks = pack_text(text);
    std::vector<std::uint64_t> cipher;
    for (std::uint64_t b : blocks) cipher.push_back(triple_des_encrypt(b, keys));
    sim::Simulator s(design, schedule, externs, {});
    s.feed("des3.in", to_word_stream(cipher));
    sim::RunResult r = s.run();
    if (out_chars != nullptr) *out_chars = s.received("des3.txt");
    return r;
  }
};

TEST(TripleDesHlsc, DecryptsTextCorrectly) {
  DesHarness h(assertions::Options::ndebug());
  std::string text = "In-circuit ABV!!";
  std::vector<std::uint64_t> chars;
  sim::RunResult r = h.decrypt(text, &chars);
  ASSERT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  std::string out;
  for (std::uint64_t c : chars) out.push_back(static_cast<char>(c));
  EXPECT_EQ(out, text);
}

TEST(TripleDesHlsc, AssertionsPassOnAsciiText) {
  DesHarness h(assertions::Options::optimized());
  std::vector<std::uint64_t> chars;
  sim::RunResult r = h.decrypt("Plain ASCII text, 32 chars total", &chars);
  EXPECT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  EXPECT_TRUE(r.failures.empty());
}

TEST(TripleDesHlsc, CorruptedCiphertextTripsAssertions) {
  DesHarness h(assertions::Options::optimized());
  // Feed garbage ciphertext: decryption yields non-ASCII bytes.
  sim::Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("des3.in", to_word_stream({0xDEADBEEFCAFEF00Dull}));
  sim::RunResult r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::kAborted);
  ASSERT_GE(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].message.find("des3.c"), std::string::npos);
}

TEST(TripleDesHlsc, UnoptimizedAlsoDecryptsCorrectly) {
  DesHarness h(assertions::Options::unoptimized());
  std::vector<std::uint64_t> chars;
  sim::RunResult r = h.decrypt("same answer", &chars);
  ASSERT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  std::string out;
  for (std::uint64_t c : chars) out.push_back(static_cast<char>(c));
  EXPECT_EQ(out.substr(0, 11), "same answer");
}

}  // namespace
}  // namespace hlsav::apps::des
