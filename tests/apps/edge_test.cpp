// Edge detection: BMP round trips, golden model sanity, and the HLS-C
// kernel vs the golden model through the simulator -- including the
// image-size assertion scenario from the paper's Table 2 case study.
#include <gtest/gtest.h>

#include "apps/appbuild.h"
#include "apps/edge.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sim/simulator.h"

namespace hlsav::apps::edge {
namespace {

TEST(Bmp, EncodeDecodeRoundTrip) {
  img::Image im = img::synthetic_image(31, 17, 5);  // odd width: stride padding
  auto bytes = img::encode_bmp(im);
  img::Image back = img::decode_bmp(bytes);
  ASSERT_TRUE(back.valid());
  EXPECT_EQ(back.width, im.width);
  EXPECT_EQ(back.height, im.height);
  EXPECT_EQ(back.pixels, im.pixels);
}

TEST(Bmp, RejectsGarbage) {
  EXPECT_FALSE(img::decode_bmp({}).valid());
  EXPECT_FALSE(img::decode_bmp({'B', 'M', 0, 0}).valid());
  std::vector<std::uint8_t> not_bmp(200, 0x42);
  EXPECT_FALSE(img::decode_bmp(not_bmp).valid());
}

TEST(Bmp, SyntheticImageDeterministic) {
  img::Image a = img::synthetic_image(16, 16, 3);
  img::Image b = img::synthetic_image(16, 16, 3);
  EXPECT_EQ(a.pixels, b.pixels);
  img::Image c = img::synthetic_image(16, 16, 4);
  EXPECT_NE(a.pixels, c.pixels);
}

TEST(EdgeGolden, FlatImageHasNoInteriorEdges) {
  img::Image flat;
  flat.width = 16;
  flat.height = 16;
  flat.pixels.assign(256, 100);
  img::Image out = golden_edge(flat);
  // Away from the warm-up border the response must be zero.
  for (unsigned y = 6; y < 16; ++y) {
    for (unsigned x = 6; x < 16; ++x) {
      EXPECT_EQ(out.at(x, y), 0u) << x << "," << y;
    }
  }
}

TEST(EdgeGolden, StepEdgeDetected) {
  img::Image im;
  im.width = 20;
  im.height = 12;
  im.pixels.assign(20 * 12, 0);
  for (unsigned y = 0; y < 12; ++y) {
    for (unsigned x = 10; x < 20; ++x) im.set(x, y, 200);
  }
  img::Image out = golden_edge(im);
  // Response near the vertical step (window center trails by 2).
  bool found = false;
  for (unsigned y = 6; y < 12; ++y) {
    for (unsigned x = 8; x < 15; ++x) found |= out.at(x, y) > 0;
  }
  EXPECT_TRUE(found);
}

struct EdgeHarness {
  unsigned width;
  unsigned height;
  std::unique_ptr<CompiledApp> app;
  ir::Design design;
  sched::DesignSchedule schedule;
  sim::ExternRegistry externs;

  EdgeHarness(unsigned w, unsigned h, const assertions::Options& opt) : width(w), height(h) {
    app = compile_app("edge_detect", "edge.c", hlsc_source(w, h));
    design = app->design.clone();
    assertions::synthesize(design, opt);
    ir::verify(design);
    schedule = sched::schedule_design(design);
  }
};

TEST(EdgeHlsc, MatchesGoldenModel) {
  EdgeHarness h(24, 16, assertions::Options::ndebug());
  img::Image input = img::synthetic_image(24, 16, 11);
  sim::Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("edge.in", to_word_stream(input));
  sim::RunResult r = s.run();
  ASSERT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  img::Image hw = from_word_stream(s.received("edge.out"), 24, 16);
  img::Image gold = golden_edge(input);
  EXPECT_EQ(hw.pixels, gold.pixels);
}

TEST(EdgeHlsc, SizeAssertionsPassOnMatchingImage) {
  EdgeHarness h(24, 16, assertions::Options::optimized());
  img::Image input = img::synthetic_image(24, 16, 2);
  sim::Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("edge.in", to_word_stream(input));
  sim::RunResult r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  EXPECT_TRUE(r.failures.empty());
}

TEST(EdgeHlsc, WrongImageSizeTripsAssertion) {
  // Hardware configured for 24x16, image claims 32x16: the paper's
  // exact verification scenario.
  EdgeHarness h(24, 16, assertions::Options::optimized());
  img::Image wrong = img::synthetic_image(32, 16, 2);
  sim::Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("edge.in", to_word_stream(wrong));
  sim::RunResult r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::kAborted);
  ASSERT_GE(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].message.find("width == 24"), std::string::npos);
}

TEST(EdgeHlsc, PipelinedInnerLoop) {
  EdgeHarness h(16, 8, assertions::Options::ndebug());
  const ir::Process& p = *h.design.find_process("edge");
  ASSERT_EQ(p.loops.size(), 1u);
  sched::LoopPerf perf = sched::loop_perf(*h.schedule.find("edge"), p.loops[0].body);
  // Four line buffers each see one load + one store per pixel: II = 2.
  EXPECT_EQ(perf.rate, 2u);
}

}  // namespace
}  // namespace hlsav::apps::edge
