// Loopback generator: chain wiring, functional pass-through, and the
// per-process assertion behaviour that Figs. 4-5 scale up.
#include <gtest/gtest.h>

#include "apps/loopback.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sim/simulator.h"

namespace hlsav::apps::loopback {
namespace {

TEST(Loopback, SourceHasOneProcessPerStage) {
  std::string src = hlsc_source(4, 8);
  EXPECT_NE(src.find("void stage0"), std::string::npos);
  EXPECT_NE(src.find("void stage3"), std::string::npos);
  EXPECT_EQ(src.find("void stage4"), std::string::npos);
}

TEST(Loopback, ChainPassesDataThrough) {
  auto app = build(4, 8);
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::ndebug());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  std::vector<std::uint64_t> data = {5, 6, 7, 8, 9, 10, 11, 12};
  s.feed(input_stream(4), data);
  sim::RunResult r = s.run();
  ASSERT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  EXPECT_EQ(s.received(output_stream(4)), data);
}

TEST(Loopback, OneAssertionPerProcess) {
  auto app = build(8, 4);
  EXPECT_EQ(app->design.assertions.size(), 8u);
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_EQ(app->design.assertions[k].process, "stage" + std::to_string(k));
  }
}

TEST(Loopback, UnsharedGetsOneFailStreamPerProcess) {
  auto app = build(6, 4);
  ir::Design d = app->design.clone();
  assertions::SynthesisReport rep = synthesize(d, assertions::Options::unoptimized());
  EXPECT_EQ(rep.fail_streams_created, 6u);
  ir::verify(d);
}

TEST(Loopback, SharedChannelsPack32PerStream) {
  auto app = build(64, 4);
  ir::Design d = app->design.clone();
  assertions::Options opt;
  opt.share_channels = true;
  assertions::SynthesisReport rep = synthesize(d, opt);
  EXPECT_EQ(rep.collector_processes, 2u);  // 64 assertions / 32 per stream
  EXPECT_EQ(rep.fail_streams_created, 2u);
  ir::verify(d);
}

TEST(Loopback, MidChainAssertionFailureAborts) {
  auto app = build(3, 4);
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::unoptimized());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed(input_stream(3), {4, 0, 5, 6});  // the zero violates w > 0
  sim::RunResult r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::kAborted);
  ASSERT_GE(r.failures.size(), 1u);
  EXPECT_EQ(d.find_assertion(r.failures[0].assertion_id)->process, "stage0");
}

}  // namespace
}  // namespace hlsav::apps::loopback
