// Parameterized sweeps over the application generators: every generated
// configuration must compile, verify, schedule and simulate correctly.
#include <gtest/gtest.h>

#include "apps/appbuild.h"
#include "apps/des.h"
#include "apps/edge.h"
#include "apps/loopback.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sim/simulator.h"
#include "support/str.h"

namespace hlsav::apps {
namespace {

// ------------------------------------------------------ loopback sweep --

class LoopbackSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(LoopbackSweep, BuildsAndPassesDataThrough) {
  const unsigned n = GetParam();
  auto app = loopback::build(n, 4);
  EXPECT_EQ(app->design.assertions.size(), n);
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::optimized());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  std::vector<std::uint64_t> data = {11, 22, 33, 44};
  s.feed(loopback::input_stream(n), data);
  sim::RunResult r = s.run();
  ASSERT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  EXPECT_EQ(s.received(loopback::output_stream(n)), data);
  EXPECT_TRUE(r.failures.empty());
}

TEST_P(LoopbackSweep, SharedChannelCountMatchesGroups) {
  const unsigned n = GetParam();
  auto app = loopback::build(n, 4);
  ir::Design d = app->design.clone();
  assertions::Options o;
  o.share_channels = true;
  assertions::SynthesisReport rep = assertions::synthesize(d, o);
  EXPECT_EQ(rep.collector_processes, (n + 31) / 32);
  ir::verify(d);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LoopbackSweep, ::testing::Values(1u, 2u, 5u, 16u, 33u));

// ---------------------------------------------------------- edge sweep --

struct EdgeCase {
  unsigned width;
  unsigned height;
};

class EdgeSweep : public ::testing::TestWithParam<EdgeCase> {};

TEST_P(EdgeSweep, MatchesGoldenAtEverySize) {
  const EdgeCase ec = GetParam();
  auto app = compile_app("edge_sweep", "edge.c", edge::hlsc_source(ec.width, ec.height));
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::optimized());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  img::Image input = img::synthetic_image(ec.width, ec.height, 3 + ec.width);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("edge.in", edge::to_word_stream(input));
  sim::RunResult r = s.run();
  ASSERT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  img::Image hw = edge::from_word_stream(s.received("edge.out"), ec.width, ec.height);
  EXPECT_EQ(hw.pixels, edge::golden_edge(input).pixels);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EdgeSweep,
                         ::testing::Values(EdgeCase{5, 5}, EdgeCase{8, 16}, EdgeCase{17, 9},
                                           EdgeCase{32, 8}));

// ----------------------------------------------------------- DES sweep --

class DesKeySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesKeySweep, HlscMatchesGoldenForRandomKeys) {
  SplitMix64 rng(GetParam());
  std::array<std::uint64_t, 3> keys = {rng.next(), rng.next(), rng.next()};
  auto app = compile_app("des_sweep", "des3.c", des::hlsc_decrypt_source(keys));
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::ndebug());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);

  std::string text = "keysweep";
  std::vector<std::uint64_t> cipher = {des::triple_des_encrypt(des::pack_text(text)[0], keys)};
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("des3.in", des::to_word_stream(cipher));
  sim::RunResult r = s.run();
  ASSERT_EQ(r.status, sim::RunStatus::kCompleted) << r.hang_report;
  std::string out;
  for (std::uint64_t c : s.received("des3.txt")) out.push_back(static_cast<char>(c));
  EXPECT_EQ(out, text);
}

INSTANTIATE_TEST_SUITE_P(Keys, DesKeySweep, ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace hlsav::apps
