// Instrumentation tests: a mined invariant becomes a real tagged
// kAssert slice that verifies, synthesizes through the parallelized
// checker path, stays silent on conforming runs and fires on
// violating ones.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "mine/instrument.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

namespace hlsav::mine {
namespace {

using hlsav::testing::compile;

const char* kSource = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      uint32 v = stream_read(in);
      stream_write(out, v);
    }
  }
)";

ir::RegId reg_id(const ir::Process& p, std::string_view name) {
  for (const ir::Register& r : p.regs) {
    if (r.name == name) return r.id;
  }
  ADD_FAILURE() << "no register " << name;
  return ir::kNoReg;
}

/// Synthesize + schedule + run the instrumented design on `feed`.
sim::RunResult run_instrumented(ir::Design& design, const std::vector<std::uint64_t>& feed) {
  assertions::synthesize(design, assertions::Options::optimized());
  ir::verify(design);
  sched::DesignSchedule schedule = sched::schedule_design(design);
  sim::ExternRegistry externs;
  sim::Simulator s(design, schedule, externs, {});
  s.feed("f.in", feed);
  return s.run();
}

Invariant range_over_v(const ir::Design& design, std::uint64_t lo, std::uint64_t hi) {
  Invariant inv;
  inv.kind = InvariantKind::kRange;
  inv.proc = 0;
  inv.process = "f";
  inv.reg_a = reg_id(*design.processes[0], "v");
  inv.lo = BitVector::from_u64(32, lo);
  inv.hi = BitVector::from_u64(32, hi);
  inv.text = std::to_string(lo) + " <= v && v <= " + std::to_string(hi);
  return inv;
}

TEST(Instrument, RangeCheckerVerifiesAndStaysSilentInBounds) {
  auto c = compile(kSource);
  ir::Design design = c->design.clone();
  Invariant inv = range_over_v(design, 1, 8);
  auto id = instrument_invariant(design, inv);
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  ir::verify(design);  // throws on a malformed slice
  ASSERT_EQ(design.assertions.size(), 1u);
  EXPECT_EQ(design.assertions.back().id, *id);
  EXPECT_EQ(design.assertions.back().condition_text, inv.text);

  sim::RunResult r = run_instrumented(design, {1, 2, 3, 8});
  EXPECT_TRUE(r.completed());
  EXPECT_TRUE(r.failures.empty());
}

TEST(Instrument, RangeCheckerFiresOnViolation) {
  auto c = compile(kSource);
  ir::Design design = c->design.clone();
  Invariant inv = range_over_v(design, 1, 8);
  ASSERT_TRUE(instrument_invariant(design, inv).ok());
  sim::RunResult r = run_instrumented(design, {1, 2, 300, 4});
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures.front().message.find("1 <= v && v <= 8"), std::string::npos)
      << r.failures.front().message;
}

TEST(Instrument, ConstCheckerFiresWhenValueMoves) {
  auto c = compile(kSource);
  ir::Design design = c->design.clone();
  Invariant inv;
  inv.kind = InvariantKind::kConst;
  inv.proc = 0;
  inv.process = "f";
  inv.reg_a = reg_id(*design.processes[0], "v");
  inv.lo = BitVector::from_u64(32, 7);
  inv.hi = inv.lo;
  inv.text = "v == 7";
  ASSERT_TRUE(instrument_invariant(design, inv).ok());

  ir::Design clean = design.clone();
  EXPECT_TRUE(run_instrumented(clean, {7, 7, 7, 7}).failures.empty());
  EXPECT_FALSE(run_instrumented(design, {7, 9, 7, 7}).failures.empty());
}

TEST(Instrument, StreamOrderedCheckerTracksPreviousWord) {
  auto c = compile(kSource);
  ir::Design design = c->design.clone();
  Invariant inv;
  inv.kind = InvariantKind::kStreamOrdered;
  inv.proc = 0;
  inv.process = "f";
  inv.reg_a = reg_id(*design.processes[0], "v");
  for (const ir::Stream& s : design.streams) {
    if (s.name == "f.in") inv.stream = s.id;
  }
  inv.at_push = false;  // observed at the pop side
  inv.lo = BitVector::from_u64(32, 0);
  inv.hi = BitVector::from_u64(32, 0);
  inv.text = "'f.in' nondecreasing (pop)";
  ASSERT_TRUE(instrument_invariant(design, inv).ok());
  ir::verify(design);

  ir::Design clean = design.clone();
  sim::RunResult ok = run_instrumented(clean, {1, 2, 2, 9});
  EXPECT_TRUE(ok.failures.empty());

  sim::RunResult bad = run_instrumented(design, {5, 3, 6, 7});
  ASSERT_FALSE(bad.failures.empty());
  EXPECT_NE(bad.failures.front().message.find("nondecreasing"), std::string::npos);
}

TEST(Instrument, TypedErrorsOnBrokenHypotheses) {
  auto c = compile(kSource);

  // Process index out of range.
  {
    ir::Design d = c->design.clone();
    Invariant inv = range_over_v(d, 1, 8);
    inv.proc = 9;
    auto r = instrument_invariant(d, inv);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Bounds width does not match the register width.
  {
    ir::Design d = c->design.clone();
    Invariant inv = range_over_v(d, 1, 8);
    inv.lo = BitVector::from_u64(16, 1);
    inv.hi = BitVector::from_u64(16, 8);
    auto r = instrument_invariant(d, inv);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("width"), std::string::npos);
  }
  // Stream invariant whose handshake carried no register.
  {
    ir::Design d = c->design.clone();
    Invariant inv;
    inv.kind = InvariantKind::kStreamRange;
    inv.proc = 0;
    inv.reg_a = ir::kNoReg;
    inv.stream = 0;
    auto r = instrument_invariant(d, inv);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Instrument, FreshAssertionIdsNeverCollide) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 4; i++) {
        uint32 v = stream_read(in);
        assert(v > 0);
        stream_write(out, v);
      }
    }
  )");
  ir::Design design = c->design.clone();
  ASSERT_EQ(design.assertions.size(), 1u);
  Invariant a = range_over_v(design, 1, 8);
  Invariant b = range_over_v(design, 0, 9);
  b.text = "v <= 9";
  auto ia = instrument_invariant(design, a);
  auto ib = instrument_invariant(design, b);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  EXPECT_NE(*ia, *ib);
  EXPECT_NE(*ia, design.assertions.front().id);
  ir::verify(design);
  EXPECT_TRUE(run_instrumented(design, {1, 2, 3, 4}).failures.empty());
}

}  // namespace
}  // namespace hlsav::mine
