// Miner unit tests: hand-built golden windows in, candidate invariants
// out. Windows here are synthetic -- the miner only contracts that the
// records describe the design's signals, not that they came from a
// live run -- which makes every hypothesis class easy to stage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_util.h"
#include "mine/miner.h"
#include "support/bitvector.h"
#include "trace/trace.h"

namespace hlsav::mine {
namespace {

using hlsav::testing::compile;

ir::RegId reg_id(const ir::Process& p, std::string_view name) {
  for (const ir::Register& r : p.regs) {
    if (r.name == name) return r.id;
  }
  ADD_FAILURE() << "no register " << name;
  return ir::kNoReg;
}

ir::StreamId stream_id(const ir::Design& d, std::string_view name) {
  for (const ir::Stream& s : d.streams) {
    if (s.name == name) return s.id;
  }
  ADD_FAILURE() << "no stream " << name;
  return ir::kNoStream;
}

trace::TraceRecord reg_write(std::uint64_t cycle, std::uint16_t proc, ir::RegId reg,
                             std::uint64_t value, unsigned width = 32) {
  trace::TraceRecord r;
  r.cycle = cycle;
  r.kind = trace::TraceEventKind::kRegWrite;
  r.proc = proc;
  r.subject = reg;
  r.value = BitVector::from_u64(width, value);
  return r;
}

trace::TraceRecord stream_push(std::uint64_t cycle, ir::StreamId s, std::uint64_t value,
                               unsigned width = 32) {
  trace::TraceRecord r;
  r.cycle = cycle;
  r.kind = trace::TraceEventKind::kStreamPush;
  r.subject = s;
  r.value = BitVector::from_u64(width, value);
  return r;
}

const char* kSource = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 a = stream_read(in);
    uint32 b = a;
    stream_write(out, b);
  }
)";

const Invariant* find_text(const MineResult& m, const std::string& text) {
  for (const Invariant& c : m.candidates) {
    if (c.text == text) return &c;
  }
  return nullptr;
}

TEST(Miner, ConstantAndRangeOverRegisterWrites) {
  auto c = compile(kSource);
  ir::RegId a = reg_id(c->process("f"), "a");
  ir::RegId b = reg_id(c->process("f"), "b");

  std::vector<trace::TraceRecord> window;
  for (std::uint64_t i = 0; i < 4; ++i) window.push_back(reg_write(i, 0, a, 5));
  for (std::uint64_t i = 0; i < 4; ++i) window.push_back(reg_write(i, 0, b, i + 1));
  MineOptions opt;
  opt.relations = false;
  MineResult m = mine_invariants(c->design, window, opt);

  const Invariant* ka = find_text(m, "a == 5");
  ASSERT_NE(ka, nullptr);
  EXPECT_EQ(ka->kind, InvariantKind::kConst);
  EXPECT_EQ(ka->support, 4u);
  EXPECT_TRUE(ka->lo.eq(BitVector::from_u64(32, 5)));

  const Invariant* kb = find_text(m, "1 <= b && b <= 4");
  ASSERT_NE(kb, nullptr);
  EXPECT_EQ(kb->kind, InvariantKind::kRange);
  EXPECT_TRUE(kb->lo.eq(BitVector::from_u64(32, 1)));
  EXPECT_TRUE(kb->hi.eq(BitVector::from_u64(32, 4)));
}

TEST(Miner, MinSupportSuppressesThinHypotheses) {
  auto c = compile(kSource);
  ir::RegId a = reg_id(c->process("f"), "a");
  std::vector<trace::TraceRecord> window;
  for (std::uint64_t i = 0; i < 3; ++i) window.push_back(reg_write(i, 0, a, 7));

  MineOptions opt;
  opt.min_support = 5;
  EXPECT_TRUE(mine_invariants(c->design, window, opt).candidates.empty());
  opt.min_support = 3;
  EXPECT_NE(find_text(mine_invariants(c->design, window, opt), "a == 7"), nullptr);
}

TEST(Miner, PairRelationsEqualityAndOrdering) {
  auto c = compile(kSource);
  ir::RegId a = reg_id(c->process("f"), "a");
  ir::RegId b = reg_id(c->process("f"), "b");

  // a always strictly below b: an ordering, never an equality.
  std::vector<trace::TraceRecord> window;
  for (std::uint64_t i = 0; i < 4; ++i) {
    window.push_back(reg_write(2 * i, 0, a, i + 1));
    window.push_back(reg_write(2 * i + 1, 0, b, i + 10));
  }
  MineResult m = mine_invariants(c->design, window);
  const Invariant* order = find_text(m, "a <= b");
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(order->kind, InvariantKind::kOrdering);
  EXPECT_EQ(find_text(m, "a == b"), nullptr);

  // Lock-step identical values, a written first each step. Relations
  // sample against the partner's LAST-SEEN value, so a's write at step
  // i compares against b's stale step-(i-1) value: b trails a at every
  // sample, which is the ordering "b <= a" -- never a spurious "a == b".
  window.clear();
  for (std::uint64_t i = 0; i < 4; ++i) {
    window.push_back(reg_write(2 * i, 0, a, i));
    window.push_back(reg_write(2 * i + 1, 0, b, i));
  }
  m = mine_invariants(c->design, window);
  EXPECT_EQ(find_text(m, "a == b"), nullptr);
  const Invariant* trail = find_text(m, "b <= a");
  ASSERT_NE(trail, nullptr);
  EXPECT_EQ(trail->kind, InvariantKind::kOrdering);
}

TEST(Miner, StreamRangeAndOrdering) {
  auto c = compile(kSource);
  ir::StreamId out = stream_id(c->design, "f.out");

  std::vector<trace::TraceRecord> window;
  for (std::uint64_t i = 0; i < 5; ++i) window.push_back(stream_push(i, out, i + 1));
  MineResult m = mine_invariants(c->design, window);
  EXPECT_EQ(m.stream_signals, 1u);

  bool saw_ordered = false;
  for (const Invariant& inv : m.candidates) {
    if (inv.kind == InvariantKind::kStreamOrdered) {
      saw_ordered = true;
      EXPECT_EQ(inv.stream, out);
      EXPECT_TRUE(inv.at_push);
      EXPECT_EQ(inv.text, "'f.out' nondecreasing (push)");
    }
  }
  EXPECT_TRUE(saw_ordered);

  // One out-of-order word retracts the ordering but not the range.
  window.push_back(stream_push(9, out, 2));
  m = mine_invariants(c->design, window);
  for (const Invariant& inv : m.candidates) {
    EXPECT_NE(inv.kind, InvariantKind::kStreamOrdered) << inv.describe();
  }
  bool saw_range = false;
  for (const Invariant& inv : m.candidates) {
    saw_range = saw_range || inv.kind == InvariantKind::kStreamRange;
  }
  EXPECT_TRUE(saw_range);
}

TEST(Miner, FullWidthRangeIsVacuousAndDropped) {
  auto c = compile(kSource);
  ir::RegId a = reg_id(c->process("f"), "a");
  std::vector<trace::TraceRecord> window;
  window.push_back(reg_write(0, 0, a, 0));
  window.push_back(reg_write(1, 0, a, 0xFFFFFFFFull));
  MineResult m = mine_invariants(c->design, window);
  for (const Invariant& inv : m.candidates) {
    EXPECT_NE(inv.reg_a, a) << inv.describe();
  }
}

TEST(Miner, TwoRunsOverTheSameWindowAreByteIdentical) {
  auto c = compile(kSource);
  ir::RegId a = reg_id(c->process("f"), "a");
  ir::RegId b = reg_id(c->process("f"), "b");
  ir::StreamId out = stream_id(c->design, "f.out");
  std::vector<trace::TraceRecord> window;
  for (std::uint64_t i = 0; i < 6; ++i) {
    window.push_back(reg_write(3 * i, 0, a, i + 1));
    window.push_back(reg_write(3 * i + 1, 0, b, i + 2));
    window.push_back(stream_push(3 * i + 2, out, i + 2));
  }
  MineResult m1 = mine_invariants(c->design, window);
  MineResult m2 = mine_invariants(c->design, window);
  ASSERT_EQ(m1.candidates.size(), m2.candidates.size());
  ASSERT_FALSE(m1.candidates.empty());
  for (std::size_t i = 0; i < m1.candidates.size(); ++i) {
    EXPECT_EQ(m1.candidates[i].describe(), m2.candidates[i].describe());
  }
}

}  // namespace
}  // namespace hlsav::mine
