// End-to-end mining driver tests on a buffered loopback: golden
// capture -> mine -> instrument -> synthesize -> golden filter ->
// sharded fault campaign -> ranked report. This is where the ISSUE's
// acceptance criteria live: at least one candidate survives, at least
// one mined checker detects a fault site the hand-written baseline
// missed, and the ranking is byte-identical across thread counts.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "mine/miner.h"
#include "mine/score.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hlsav::mine {
namespace {

using hlsav::testing::compile;

// The hand-written assert(v > 0) is deliberately weak: a high-bit flip
// on writes to `buf` turns stored words into huge values it never
// sees, while a mined range over `w` (the read-back) does.
const char* kBuffered = R"(
  void loop(stream_in<32> in, stream_out<32> out) {
    uint32 buf[8];
    for (uint32 i = 0; i < 8; i++) {
      uint32 v = stream_read(in);
      assert(v > 0);
      buf[i & 7] = v;
    }
    for (uint32 j = 0; j < 8; j++) {
      uint32 w = buf[j & 7];
      stream_write(out, w);
    }
  }
)";

struct Mined {
  ir::Design design;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
  MineResult mined;
};

Mined mine_buffered() {
  auto c = compile(kBuffered);
  Mined m;
  m.design = c->design.clone();
  m.feeds = {{"loop.in", {1, 2, 3, 4, 5, 6, 7, 8}}};

  // Golden capture of the pre-synthesis design, exactly as `hlsavc
  // mine` does it.
  sched::DesignSchedule schedule = sched::schedule_design(m.design);
  trace::TraceConfig tc;
  tc.capacity = 1 << 14;
  trace::TraceEngine engine(m.design, tc);
  sim::SimOptions so;
  so.mode = sim::SimMode::kSoftware;
  so.ela = &engine;
  sim::ExternRegistry externs;
  sim::Simulator s(m.design, schedule, externs, so);
  for (const auto& [name, values] : m.feeds) s.feed(name, values);
  sim::RunResult r = s.run();
  EXPECT_TRUE(r.completed());
  EXPECT_TRUE(r.failures.empty());
  EXPECT_EQ(engine.dropped(), 0u);

  m.mined = mine_invariants(m.design, engine.window());
  EXPECT_FALSE(m.mined.candidates.empty());
  return m;
}

TEST(Score, MinedCheckerDetectsSitesTheBaselineMisses) {
  Mined m = mine_buffered();
  sim::ExternRegistry externs;
  ScoreOptions opt;
  auto rep = score_candidates(m.design, externs, m.feeds, m.mined.candidates, opt);
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();

  EXPECT_GT(rep->baseline_sites, 0u);
  ASSERT_GE(rep->survivors(), 1u);

  // The acceptance criterion: some mined checker catches a fault the
  // hand-written assertion set missed.
  std::size_t best_new = 0;
  for (const CandidateScore& c : rep->ranked) {
    if (c.survived) best_new = std::max(best_new, c.newly_detected);
  }
  EXPECT_GE(best_new, 1u);

  // Survivors lead the ranking, ordered by measured gain per area.
  bool seen_filtered = false;
  double last_gain = 0.0;
  bool first = true;
  for (const CandidateScore& c : rep->ranked) {
    if (!c.survived) {
      seen_filtered = true;
      EXPECT_FALSE(c.skip_reason.empty());
      continue;
    }
    ASSERT_FALSE(seen_filtered) << "survivor ranked after a filtered candidate";
    if (!first) {
      EXPECT_LE(c.gain_per_cost(), last_gain);
    }
    last_gain = c.gain_per_cost();
    first = false;
    EXPECT_GE(c.cost_units(), 1.0);
  }
  // The top of the ranking is a survivor; it maximizes gain per area
  // unit, which need not be the raw newly_detected maximum.
  EXPECT_TRUE(rep->ranked.front().survived);
  EXPECT_GE(rep->ranked.front().newly_detected, 1u);
}

TEST(Score, UnsoundHypothesesDieInTheGoldenFilter) {
  Mined m = mine_buffered();
  // `i == 1` style constants over loop counters are observed-constant
  // only per write; the miner proposes `t` temps that change across the
  // run and the golden filter must kill every checker that fires on the
  // clean input. Survivors, by construction, never fire.
  sim::ExternRegistry externs;
  auto rep = score_candidates(m.design, externs, m.feeds, m.mined.candidates, {});
  ASSERT_TRUE(rep.ok());
  for (const CandidateScore& c : rep->ranked) {
    if (c.survived) {
      EXPECT_TRUE(c.skip_reason.empty());
      EXPECT_TRUE(c.instrumented);
    }
  }
}

TEST(Score, RankingIsByteIdenticalAcrossRunsAndThreads) {
  Mined m = mine_buffered();
  sim::ExternRegistry externs;
  ScoreOptions st;
  st.threads = 1;
  ScoreOptions mt;
  mt.threads = 4;
  auto a = score_candidates(m.design, externs, m.feeds, m.mined.candidates, st);
  auto b = score_candidates(m.design, externs, m.feeds, m.mined.candidates, st);
  auto c = score_candidates(m.design, externs, m.feeds, m.mined.candidates, mt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->render(), b->render());
  EXPECT_EQ(a->render(), c->render());
}

TEST(Score, MaxCandidatesCapsTheSweep) {
  Mined m = mine_buffered();
  ASSERT_GE(m.mined.candidates.size(), 3u);
  sim::ExternRegistry externs;
  ScoreOptions opt;
  opt.max_candidates = 2;
  auto rep = score_candidates(m.design, externs, m.feeds, m.mined.candidates, opt);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->ranked.size(), 2u);
}

}  // namespace
}  // namespace hlsav::mine
