// --emit tests: surviving candidates become assert() lines inserted at
// their anchors; anything not expressible at source level is skipped
// with a reason; the rewritten program still compiles.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "mine/emit.h"
#include "mine/miner.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hlsav::mine {
namespace {

using hlsav::testing::compile;

const std::string kSource = R"(void loop(stream_in<32> in, stream_out<32> out) {
  uint32 buf[8];
  for (uint32 i = 0; i < 8; i++) {
    uint32 v = stream_read(in);
    buf[i & 7] = v;
  }
  for (uint32 j = 0; j < 8; j++) {
    uint32 w = buf[j & 7];
    stream_write(out, w);
  }
}
)";

/// Mines real candidates (so anchors and texts come from the actual
/// flow) and marks them all survivors in miner order.
std::vector<CandidateScore> mined_as_survivors(const ir::Design& design,
                                               std::vector<trace::TraceRecord> window) {
  MineResult m = mine_invariants(design, window);
  std::vector<CandidateScore> ranked;
  for (std::size_t i = 0; i < m.candidates.size(); ++i) {
    CandidateScore cs;
    cs.inv = m.candidates[i];
    cs.index = i;
    cs.instrumented = true;
    cs.survived = true;
    ranked.push_back(std::move(cs));
  }
  return ranked;
}

std::vector<trace::TraceRecord> capture(ir::Design& design,
                                        const std::map<std::string, std::vector<std::uint64_t>>& feeds) {
  sched::DesignSchedule schedule = sched::schedule_design(design);
  trace::TraceConfig tc;
  tc.capacity = 1 << 14;
  trace::TraceEngine engine(design, tc);
  sim::SimOptions so;
  so.mode = sim::SimMode::kSoftware;
  so.ela = &engine;
  sim::ExternRegistry externs;
  sim::Simulator s(design, schedule, externs, so);
  for (const auto& [name, values] : feeds) s.feed(name, values);
  EXPECT_TRUE(s.run().completed());
  return engine.window();
}

TEST(Emit, InsertsAssertsAtAnchorsAndSkipsTemporaries) {
  auto c = compile(kSource, true, "loop.c");
  ir::Design design = c->design.clone();
  std::vector<trace::TraceRecord> window =
      capture(design, {{"loop.in", {1, 2, 3, 4, 5, 6, 7, 8}}});
  std::vector<CandidateScore> ranked = mined_as_survivors(design, window);
  ASSERT_FALSE(ranked.empty());

  EmitResult out = emit_assertions(kSource, design, ranked, ranked.size());
  EXPECT_GE(out.emitted, 1u);
  EXPECT_NE(out.source.find("assert(1 <= w && w <= 8);"), std::string::npos) << out.source;

  // Compiler temporaries cannot be referenced from source; they must be
  // skipped with the reason recorded, not silently dropped.
  bool temp_skip = false;
  for (const std::string& s : out.skipped) {
    temp_skip = temp_skip || s.find("compiler temporary") != std::string::npos;
  }
  EXPECT_TRUE(temp_skip);

  // The rewritten program still compiles and carries real assertions.
  auto re = compile(out.source, true, "loop.c");
  EXPECT_GE(re->design.assertions.size(), 1u);
}

TEST(Emit, IndentationFollowsTheAnchorLine) {
  auto c = compile(kSource, true, "loop.c");
  ir::Design design = c->design.clone();
  std::vector<trace::TraceRecord> window =
      capture(design, {{"loop.in", {1, 2, 3, 4, 5, 6, 7, 8}}});
  std::vector<CandidateScore> ranked = mined_as_survivors(design, window);
  EmitResult out = emit_assertions(kSource, design, ranked, ranked.size());
  // Anchor `uint32 w = buf[j & 7];` sits at two-level indent.
  EXPECT_NE(out.source.find("\n    assert(1 <= w && w <= 8);"), std::string::npos)
      << out.source;
}

TEST(Emit, TopZeroAndDuplicateSuppression) {
  auto c = compile(kSource, true, "loop.c");
  ir::Design design = c->design.clone();
  std::vector<trace::TraceRecord> window =
      capture(design, {{"loop.in", {1, 2, 3, 4, 5, 6, 7, 8}}});
  std::vector<CandidateScore> ranked = mined_as_survivors(design, window);

  EmitResult none = emit_assertions(kSource, design, ranked, 0);
  EXPECT_EQ(none.emitted, 0u);
  EXPECT_EQ(none.source, kSource);

  // Re-emitting over an already-annotated source inserts nothing new.
  EmitResult once = emit_assertions(kSource, design, ranked, ranked.size());
  ASSERT_GE(once.emitted, 1u);
  EmitResult twice = emit_assertions(once.source, design, ranked, ranked.size());
  EXPECT_EQ(twice.emitted, 0u) << twice.source;
}

TEST(Emit, ForeignAnchorsAreSkipped) {
  auto c = compile(kSource, true, "loop.c");
  ir::Design design = c->design.clone();
  std::vector<trace::TraceRecord> window =
      capture(design, {{"loop.in", {1, 2, 3, 4, 5, 6, 7, 8}}});
  std::vector<CandidateScore> ranked = mined_as_survivors(design, window);
  for (CandidateScore& cs : ranked) cs.inv.anchor.line = 10'000;  // outside the file
  EmitResult out = emit_assertions(kSource, design, ranked, ranked.size());
  EXPECT_EQ(out.emitted, 0u);
  EXPECT_FALSE(out.skipped.empty());
}

}  // namespace
}  // namespace hlsav::mine
