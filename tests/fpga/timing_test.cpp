// Timing (Fmax) model tests: the structural effects Figure 4 depends on.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "fpga/timing.h"
#include "rtl/netlist.h"

namespace hlsav::fpga {
namespace {

using hlsav::testing::compile;

rtl::Netlist netlist_of(hlsav::testing::Compiled& c, const assertions::Options& opt,
                        const sched::SchedOptions& so = {}) {
  ir::Design d = c.design.clone();
  assertions::synthesize(d, opt);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d, so);
  return rtl::build_netlist(d, sch);
}

TimingModel no_noise() {
  TimingModel m;
  m.enable_noise = false;
  return m;
}

const char* kChainSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 x;
    x = stream_read(in);
    stream_write(out, x + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10 + 11);
  }
)";

TEST(TimingModel, DeeperChainingLowersFmax) {
  auto c = compile(kChainSrc);
  Device dev = Device::ep2s180();
  sched::SchedOptions shallow;
  shallow.chain_depth = 2;
  sched::SchedOptions deep;
  deep.chain_depth = 10;
  TimingReport f_shallow = estimate_fmax(
      netlist_of(*c, assertions::Options::ndebug(), shallow), dev, no_noise());
  TimingReport f_deep = estimate_fmax(
      netlist_of(*c, assertions::Options::ndebug(), deep), dev, no_noise());
  EXPECT_GT(f_shallow.fmax_mhz, f_deep.fmax_mhz);
}

TEST(TimingModel, MultiplierSlowsClock) {
  auto add = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x + x);
    }
  )");
  auto mul = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x * x);
    }
  )");
  Device dev = Device::ep2s180();
  TimingReport fa =
      estimate_fmax(netlist_of(*add, assertions::Options::ndebug()), dev, no_noise());
  TimingReport fm =
      estimate_fmax(netlist_of(*mul, assertions::Options::ndebug()), dev, no_noise());
  EXPECT_GT(fa.fmax_mhz, fm.fmax_mhz);
}

TEST(TimingModel, GlobalStreamsCongestTheClock) {
  // One assertion per process adds one CPU-facing failure stream each
  // (unshared): Fmax must drop relative to the assertion-free design.
  auto c = compile(R"(
    void a(stream_in<32> in) { uint32 x; x = stream_read(in); assert(x > 0); }
    void b(stream_in<32> in) { uint32 x2; x2 = stream_read(in); assert(x2 > 0); }
    void c(stream_in<32> in) { uint32 x3; x3 = stream_read(in); assert(x3 > 0); }
    void d(stream_in<32> in) { uint32 x4; x4 = stream_read(in); assert(x4 > 0); }
  )");
  Device dev = Device::ep2s180();
  TimingReport orig =
      estimate_fmax(netlist_of(*c, assertions::Options::ndebug()), dev, no_noise());
  TimingReport unopt =
      estimate_fmax(netlist_of(*c, assertions::Options::unoptimized()), dev, no_noise());
  EXPECT_GT(orig.congestion_factor, 1.0);
  EXPECT_GT(unopt.congestion_factor, orig.congestion_factor);
  EXPECT_GT(orig.fmax_mhz, unopt.fmax_mhz);
}

TEST(TimingModel, NoiseIsDeterministic) {
  auto c = compile(kChainSrc);
  Device dev = Device::ep2s180();
  rtl::Netlist nl = netlist_of(*c, assertions::Options::ndebug());
  TimingReport a = estimate_fmax(nl, dev);
  TimingReport b = estimate_fmax(nl, dev);
  EXPECT_DOUBLE_EQ(a.fmax_mhz, b.fmax_mhz);
  EXPECT_EQ(a.noise, b.noise);
  TimingModel m;
  EXPECT_LE(std::abs(a.noise), m.noise_amplitude);
}

TEST(TimingModel, CriticalProcessNamed) {
  auto c = compile(kChainSrc);
  rtl::Netlist nl = netlist_of(*c, assertions::Options::ndebug());
  TimingReport t = estimate_fmax(nl, Device::ep2s180(), no_noise());
  EXPECT_EQ(t.critical_process, "f");
  EXPECT_GT(t.critical_path_ns, 0.0);
}

}  // namespace
}  // namespace hlsav::fpga
