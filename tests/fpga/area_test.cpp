// Area model tests: monotonicity and the structural facts the paper's
// deltas depend on (the 576-bit assertion stream, M4K column widths,
// role-aware process bases).
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "fpga/area.h"
#include "rtl/netlist.h"

namespace hlsav::fpga {
namespace {

using hlsav::testing::compile;

rtl::Netlist netlist_of(hlsav::testing::Compiled& c, const assertions::Options& opt) {
  ir::Design d = c.design.clone();
  assertions::synthesize(d, opt);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  return rtl::build_netlist(d, sch);
}

TEST(AreaModel, M4kColumnRounding) {
  EXPECT_EQ(m4k_width(1), 9u);
  EXPECT_EQ(m4k_width(8), 9u);
  EXPECT_EQ(m4k_width(9), 9u);
  EXPECT_EQ(m4k_width(16), 18u);
  EXPECT_EQ(m4k_width(32), 36u);
  EXPECT_EQ(m4k_width(36), 36u);
  EXPECT_EQ(m4k_width(64), 72u);
}

TEST(AreaModel, AssertionStreamCosts576BramBits) {
  // 16-deep 32-bit FIFO -> 16 * m4k_width(36) = 576: the exact BRAM
  // delta in the paper's Tables 1 and 2.
  CostModel m;
  EXPECT_EQ(static_cast<std::uint64_t>(m.stream_fifo_depth) * m4k_width(32 + 4), 576u);
}

const char* kSimpleSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 x;
    x = stream_read(in);
    assert(x > 0);
    stream_write(out, x + 1);
  }
)";

TEST(AreaModel, AssertionsOnlyAddArea) {
  auto c = compile(kSimpleSrc);
  AreaReport base = estimate_area(netlist_of(*c, assertions::Options::ndebug()));
  AreaReport with = estimate_area(netlist_of(*c, assertions::Options::unoptimized()));
  EXPECT_GT(with.aluts, base.aluts);
  EXPECT_GT(with.registers, base.registers);
  EXPECT_GT(with.bram_bits, base.bram_bits);
  EXPECT_GT(with.interconnect, base.interconnect);
  EXPECT_GT(with.logic, base.logic);
}

TEST(AreaModel, WiderDatapathCostsMore) {
  auto narrow = compile(R"(
    void f(stream_in<8> in, stream_out<8> out) {
      uint8 x;
      x = stream_read(in);
      stream_write(out, x + 1);
    }
  )");
  auto wide = compile(R"(
    void f(stream_in<64> in, stream_out<64> out) {
      uint64 x;
      x = stream_read(in);
      stream_write(out, x + 1);
    }
  )");
  AreaReport n = estimate_area(netlist_of(*narrow, assertions::Options::ndebug()));
  AreaReport w = estimate_area(netlist_of(*wide, assertions::Options::ndebug()));
  EXPECT_GT(w.aluts, n.aluts);
  EXPECT_GT(w.registers, n.registers);
}

TEST(AreaModel, RomCostsBramNotAluts) {
  auto with_rom = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      const uint32 lut[64] = {0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
                              0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
                              0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
                              0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15};
      uint32 k;
      k = stream_read(in);
      stream_write(out, lut[k & 63]);
    }
  )");
  AreaReport r = estimate_area(netlist_of(*with_rom, assertions::Options::ndebug()));
  // 64 x m4k_width(32)=36 bits, plus the two stream FIFOs.
  EXPECT_GE(r.bram_bits, 64u * 36u);
}

TEST(AreaModel, PercentagesAgainstEp2s180) {
  Device d = Device::ep2s180();
  AreaReport r;
  r.aluts = 14352;  // exactly 10%
  EXPECT_DOUBLE_EQ(r.aluts_pct(d), 10.0);
  r.bram_bits = d.bram_bits;
  EXPECT_DOUBLE_EQ(r.bram_pct(d), 100.0);
}

TEST(AreaModel, CheckerProcessesAreCheaperThanApplications) {
  // The same comparator logic in a checker-role process costs less base
  // overhead than a full Impulse-C wrapper process.
  CostModel m;
  EXPECT_LT(m.alut_assert_proc_base, m.alut_process_base);
  EXPECT_LT(m.reg_assert_proc_base, m.reg_process_base);
}

TEST(AreaModel, ToStringMentionsEveryResource) {
  auto c = compile(kSimpleSrc);
  AreaReport r = estimate_area(netlist_of(*c, assertions::Options::ndebug()));
  std::string s = r.to_string(Device::ep2s180());
  for (const char* key : {"logic", "aluts", "regs", "bram", "interconnect"}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace hlsav::fpga
