// ELA overhead model: ring-buffer BRAM bits with M4K column rounding,
// trigger/mux ALUT costs, and the device-relative report.
#include <gtest/gtest.h>

#include "fpga/ela.h"

namespace hlsav::fpga {
namespace {

struct Rig {
  ir::Design design;

  Rig() {
    design.name = "rig";
    ir::Process& a = design.add_process("a");
    ir::Process& b = design.add_process("b");
    a.add_reg("x", 32, false);
    b.add_reg("y", 8, false);
    design.add_stream("a.out", 32);
    ir::AssertionRecord rec;
    rec.id = 0;
    rec.process = "a";
    rec.condition_text = "x < 10";
    design.assertions.push_back(rec);
  }
};

TEST(Ela, BramBitsAreCapacityTimesRoundedRecordWidth) {
  Rig rig;
  trace::TraceConfig cfg;
  cfg.capacity = 256;
  trace::TraceEngine eng(rig.design, cfg);
  ElaReport r = estimate_ela(eng);

  EXPECT_EQ(r.buffers, eng.num_buffers());
  EXPECT_EQ(r.capacity, 256u);
  EXPECT_EQ(r.entry_bits, eng.record_bits());
  // M4K columns are 9 bits wide: the stored width rounds up.
  EXPECT_EQ(r.entry_bits_m4k % 9, 0u);
  EXPECT_GE(r.entry_bits_m4k, r.entry_bits);
  EXPECT_LT(r.entry_bits_m4k - r.entry_bits, 9u);
  EXPECT_EQ(r.bram_bits,
            static_cast<std::uint64_t>(r.buffers) * r.capacity * r.entry_bits_m4k);
  EXPECT_GT(r.aluts, 0u);
  EXPECT_GT(r.registers, 0u);
}

TEST(Ela, NarrowerFilterCostsLess) {
  Rig rig;
  trace::TraceEngine full(rig.design);
  trace::TraceConfig cfg;
  cfg.filter.processes = {"b"};
  cfg.filter.streams = false;
  cfg.filter.asserts = false;
  trace::TraceEngine narrow(rig.design, cfg);

  ElaReport rf = estimate_ela(full);
  ElaReport rn = estimate_ela(narrow);
  EXPECT_LT(rn.buffers, rf.buffers);
  EXPECT_LT(rn.bram_bits, rf.bram_bits);
  EXPECT_LT(rn.aluts, rf.aluts);
}

TEST(Ela, ReportRendersDevicePercentage) {
  Rig rig;
  trace::TraceEngine eng(rig.design);
  ElaReport r = estimate_ela(eng);
  Device d = Device::ep2s180();
  EXPECT_GT(r.bram_pct(d), 0.0);
  std::string text = r.to_string(d);
  EXPECT_NE(text.find("ela:"), std::string::npos);
  EXPECT_NE(text.find("bram"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
}

TEST(Ela, DeeperBuffersScaleBramLinearly) {
  Rig rig;
  trace::TraceConfig shallow;
  shallow.capacity = 128;
  trace::TraceConfig deep;
  deep.capacity = 1024;
  trace::TraceEngine a(rig.design, shallow);
  trace::TraceEngine b(rig.design, deep);
  ElaReport ra = estimate_ela(a);
  ElaReport rb = estimate_ela(b);
  EXPECT_EQ(rb.bram_bits, ra.bram_bits * 8);
  // Logic cost is depth-independent (pointers aside, which the model
  // folds into the per-buffer base).
  EXPECT_EQ(ra.aluts, rb.aluts);
}

}  // namespace
}  // namespace hlsav::fpga
