// End-to-end tests of the hlsavc command-line driver (subprocess).
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#ifndef HLSAVC_PATH
#define HLSAVC_PATH "hlsavc"
#endif

namespace {

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CmdResult run_cmd(const std::string& args) {
  std::string cmd = std::string(HLSAVC_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buf{};
  CmdResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    r.output += buf.data();
  }
  int status = pclose(pipe);
  r.exit_code = WEXITSTATUS(status);
  return r;
}

/// Pid-unique path in the shared TempDir. ctest runs every test as its
/// own process in parallel; a fixed name would let one process read a
/// file another is mid-truncating.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string write_temp(const std::string& name, const std::string& contents) {
  std::string path = temp_path(name);
  std::ofstream out(path);
  out << contents;
  return path;
}

const char* kGoodSrc = R"(
void f(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 3; i++) {
    uint32 v;
    v = stream_read(in);
    assert(v < 50);
    stream_write(out, v + 1);
  }
}
)";

TEST(Hlsavc, CompileReportsAreaAndFmax) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("compile " + f);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("area:"), std::string::npos);
  EXPECT_NE(r.output.find("fmax:"), std::string::npos);
  EXPECT_NE(r.output.find("assertions synthesized: 1"), std::string::npos);
}

TEST(Hlsavc, SimulatePassing) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("simulate " + f + " --feed f.in=1,2,3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("completed in"), std::string::npos);
  EXPECT_NE(r.output.find("f.out: 2 3 4"), std::string::npos);
}

TEST(Hlsavc, SimulateFailingAssertionPrintsAnsiMessage) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("simulate " + f + " --feed f.in=1,99,3");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("Assertion `v < 50' failed."), std::string::npos);
  EXPECT_NE(r.output.find("aborted"), std::string::npos);
}

TEST(Hlsavc, NabortContinues) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("simulate " + f + " --nabort --feed f.in=1,99,3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Assertion `v < 50' failed."), std::string::npos);
  EXPECT_NE(r.output.find("f.out: 2 100 4"), std::string::npos);
}

TEST(Hlsavc, NdebugStripsAssertions) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("simulate " + f + " --assertions=ndebug --feed f.in=1,99,3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("Assertion"), std::string::npos);
}

TEST(Hlsavc, VerilogEmission) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("verilog " + f);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("module f ("), std::string::npos);
  EXPECT_NE(r.output.find("endmodule"), std::string::npos);
}

TEST(Hlsavc, IrAndScheduleDumps) {
  std::string f = write_temp("good.c", kGoodSrc);
  EXPECT_NE(run_cmd("ir " + f).output.find("process f("), std::string::npos);
  EXPECT_NE(run_cmd("schedule " + f).output.find("schedule f"), std::string::npos);
}

TEST(Hlsavc, OptimizeFlagReports) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("compile " + f + " --optimize");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("optimizer:"), std::string::npos);
}

TEST(Hlsavc, SyntaxErrorHasDiagnostic) {
  std::string f = write_temp("bad.c", "void f(stream_in<32> in) { uint32 x = ; }");
  CmdResult r = run_cmd("compile " + f);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  EXPECT_NE(r.output.find("bad.c:"), std::string::npos);
}

TEST(Hlsavc, MissingFile) {
  CmdResult r = run_cmd("compile /nonexistent/nope.c");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

TEST(Hlsavc, UsageOnBadArgs) {
  CmdResult r = run_cmd("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Hlsavc, SoftwareSimulationMode) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("simulate " + f + " --sw --feed f.in=1,2,3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("f.out: 2 3 4"), std::string::npos);
}

// ---- exit-code contract: 0 ok, 2 usage, 3 assertion abort, 4 hang ----

TEST(Hlsavc, HelpExitsZeroAndDocumentsTrace) {
  CmdResult r = run_cmd("--help");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  EXPECT_NE(r.output.find("trace"), std::string::npos);
  EXPECT_NE(r.output.find("--trace-nonbenign"), std::string::npos);
  EXPECT_NE(r.output.find("exit codes"), std::string::npos);
}

TEST(Hlsavc, AssertionAbortExitsThree) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("simulate " + f + " --feed f.in=1,99,3");
  EXPECT_EQ(r.exit_code, 3) << r.output;
}

TEST(Hlsavc, HangExitsFour) {
  std::string f = write_temp("good.c", kGoodSrc);
  // Two words for a three-iteration loop: the read starves.
  CmdResult r = run_cmd("simulate " + f + " --feed f.in=1,2");
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("hang"), std::string::npos);
}

TEST(Hlsavc, UnknownOptionExitsTwo) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("simulate " + f + " --no-such-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

// ---- trace command ----

TEST(Hlsavc, TraceWritesVcdReplayAndElaReport) {
  std::string f = write_temp("good.c", kGoodSrc);
  std::string vcd = temp_path("good_trace.vcd");
  CmdResult r = run_cmd("trace " + f + " --feed f.in=1,99,3 --vcd=" + vcd);
  EXPECT_EQ(r.exit_code, 3) << r.output;  // run aborted on the assertion
  EXPECT_NE(r.output.find("vcd: " + vcd), std::string::npos);
  EXPECT_NE(r.output.find("source-level replay:"), std::string::npos);
  EXPECT_NE(r.output.find("implicated assertion: #0 `v < 50'"), std::string::npos);
  EXPECT_NE(r.output.find("ela:"), std::string::npos);
  EXPECT_NE(r.output.find("bram"), std::string::npos);

  std::ifstream in(vcd);
  ASSERT_TRUE(in.good()) << "trace did not write " << vcd;
  std::string doc((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(doc.find("assert_0_fail"), std::string::npos);
}

TEST(Hlsavc, FaultsimTraceSiteEmitsArtifactsForNonBenignSite) {
  std::string f = write_temp("good.c", kGoodSrc);
  std::string dir = temp_path("hlsavc_traces");
  // Site s1 (stream-drop on f.out) is silent corruption in this design.
  CmdResult r = run_cmd("faultsim " + f + " --feed f.in=1,2,3 --trace-site=1 --trace-dir=" + dir);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("source-level replay:"), std::string::npos);
  EXPECT_NE(r.output.find(".vcd"), std::string::npos);
}

TEST(Hlsavc, CampaignTraceNonbenignListsTracedSites) {
  std::string f = write_temp("good.c", kGoodSrc);
  std::string dir = temp_path("hlsavc_campaign_traces");
  CmdResult r = run_cmd("faultsim " + f +
                        " --feed f.in=1,2,3 --campaign --trace-nonbenign --threads=2 "
                        "--trace-max-sites=2 --trace-dir=" +
                        dir);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("traced 2 non-benign site(s)"), std::string::npos);
  EXPECT_NE(r.output.find("source-level replay:"), std::string::npos);
}

// ---- provenance ----

TEST(Hlsavc, VersionPrintsShaAndBuildType) {
  CmdResult r = run_cmd("--version");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // One line: "hlsavc <sha> (<build type>)".
  EXPECT_EQ(r.output.rfind("hlsavc ", 0), 0u) << r.output;
  EXPECT_NE(r.output.find('('), std::string::npos);
  EXPECT_NE(r.output.find(')'), std::string::npos);
  EXPECT_EQ(r.output.find('\n'), r.output.size() - 1) << r.output;
}

// ---- profile command ----

TEST(Hlsavc, ProfilePrintsTablesAndWritesValidTrace) {
  std::string f = write_temp("good.c", kGoodSrc);
  std::string trace = temp_path("profile.trace.json");
  CmdResult r = run_cmd("profile " + f + " --feed f.in=1,2,3 --trace-out=" + trace);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Cycle attribution"), std::string::npos);
  EXPECT_NE(r.output.find("Hottest FSM states"), std::string::npos);
  EXPECT_NE(r.output.find("Assertion activity"), std::string::npos);
  // Hottest states resolve to the HLS-C source, assertions to their text.
  EXPECT_NE(r.output.find("good.c:"), std::string::npos);
  EXPECT_NE(r.output.find("'v < 50'"), std::string::npos);
  // The emitted trace passes the driver's own validator round-trip.
  CmdResult check = run_cmd("checktrace " + trace);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  EXPECT_NE(check.output.find("valid Chrome trace"), std::string::npos);
}

TEST(Hlsavc, ProfileJsonDumpContainsAttribution) {
  std::string f = write_temp("good.c", kGoodSrc);
  std::string trace = temp_path("pj.trace.json");
  std::string json = temp_path("pj.profile.json");
  CmdResult r = run_cmd("profile " + f + " --feed f.in=1,2,3 --trace-out=" + trace +
                        " --profile-json=" + json);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(json);
  ASSERT_TRUE(in.good()) << "profile did not write " << json;
  std::string doc((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"run_cycles\""), std::string::npos);
  EXPECT_NE(doc.find("\"attribution_exact\": true"), std::string::npos);
}

TEST(Hlsavc, ProfileKeepsExitCodeContractOnAbort) {
  std::string f = write_temp("good.c", kGoodSrc);
  std::string trace = temp_path("abort.trace.json");
  CmdResult r = run_cmd("profile " + f + " --feed f.in=1,99,3 --trace-out=" + trace);
  EXPECT_EQ(r.exit_code, 3) << r.output;  // aborted run still profiles
  EXPECT_NE(r.output.find("Cycle attribution"), std::string::npos);
  EXPECT_EQ(run_cmd("checktrace " + trace).exit_code, 0);
}

// ---- checktrace command ----

TEST(Hlsavc, ChecktraceRejectsMalformedFile) {
  std::string bad = write_temp("bad.trace.json", "{\"traceEvents\": [");
  CmdResult r = run_cmd("checktrace " + bad);
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

TEST(Hlsavc, ChecktraceMissingFileExitsOne) {
  CmdResult r = run_cmd("checktrace /nonexistent/nope.trace.json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

// ---- campaign progress & profile flags ----

TEST(Hlsavc, CampaignProgressEmitsHeartbeat) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("faultsim " + f + " --feed f.in=1,2,3 --campaign --progress");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The final site always emits, whatever the interval.
  EXPECT_NE(r.output.find("campaign: "), std::string::npos);
  EXPECT_NE(r.output.find("benign"), std::string::npos);
}

TEST(Hlsavc, CampaignProfileShowsDeltas) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("faultsim " + f + " --feed f.in=1,2,3 --campaign --profile");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("profile deltas vs golden"), std::string::npos);
}

// ---- robustness: every malformed input exits with a diagnostic ----

TEST(Hlsavc, MultipleSyntaxErrorsReportedInOneRun) {
  std::string f = write_temp("multi.c", R"(
void f(stream_in<32> in, stream_out<32> out) {
  uint32 a = ;
  uint32 b = stream_read(in);
  uint32 c = ;
  stream_write(out, b);
}
)");
  CmdResult r = run_cmd("compile " + f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("multi.c:3:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("multi.c:5:"), std::string::npos) << r.output;
}

TEST(Hlsavc, OverWideLiteralIsDiagnosedNotCrashed) {
  std::string f = write_temp("wide.c",
                             "void f(stream_in<32> in) { uint64 x; "
                             "x = 99999999999999999999999999; }");
  CmdResult r = run_cmd("compile " + f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

TEST(Hlsavc, MalformedFlagValueExitsTwo) {
  std::string f = write_temp("good.c", kGoodSrc);
  for (const char* flag :
       {"--seed=banana", "--max-cycles=12potatoes", "--threads=", "--site-wall-ms=abc",
        "--feed f.in=1,banana,3", "--site-wall-ms=-5"}) {
    CmdResult r = run_cmd("faultsim " + f + " --campaign --feed f.in=1,2,3 " + flag);
    EXPECT_EQ(r.exit_code, 2) << flag << ": " << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << flag;
  }
}

TEST(Hlsavc, BinaryGarbageInputNeverCrashes) {
  // Every non-NUL byte value (NUL reads as end-of-input and yields an
  // empty -- vacuously valid -- program): diagnostics, never a signal.
  std::string garbage;
  for (int i = 1; i < 256; ++i) garbage += static_cast<char>(i);
  std::string f = write_temp("garbage.c", garbage);
  CmdResult r = run_cmd("compile " + f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error"), std::string::npos) << r.output;
}

// ---- watchdog budget: exit code 5 ----

TEST(Hlsavc, ExpiredBudgetExitsFive) {
  std::string f = write_temp("good.c", kGoodSrc);
  // A zero-millisecond budget expires before the first cycle: the
  // deterministic path through RunStatus::kDeadline.
  CmdResult r = run_cmd("simulate " + f + " --feed f.in=1,2,3 --site-wall-ms=0.000001");
  EXPECT_EQ(r.exit_code, 5) << r.output;
  EXPECT_NE(r.output.find("budget"), std::string::npos) << r.output;
}

TEST(Hlsavc, HelpDocumentsJournalResumeAndBudget) {
  CmdResult r = run_cmd("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--journal"), std::string::npos);
  EXPECT_NE(r.output.find("--resume"), std::string::npos);
  EXPECT_NE(r.output.find("--site-wall-ms"), std::string::npos);
  EXPECT_NE(r.output.find("5"), std::string::npos);
}

// ---- campaign journal / resume via the CLI ----

TEST(Hlsavc, CampaignJournalResumeMatchesUninterrupted) {
  std::string f = write_temp("good.c", kGoodSrc);
  std::string journal = temp_path("cli_resume.jsonl");
  CmdResult full = run_cmd("faultsim " + f + " --feed f.in=1,2,3 --campaign --journal=" + journal);
  EXPECT_EQ(full.exit_code, 0) << full.output;

  // Keep the header and the first two result lines: a kill mid-sweep.
  std::ifstream in(journal);
  ASSERT_TRUE(in.good());
  std::string line, prefix;
  for (int i = 0; i < 3 && std::getline(in, line); ++i) prefix += line + "\n";
  in.close();
  {
    std::ofstream out(journal, std::ios::trunc);
    out << prefix << "{\"site\":9,\"torn";  // plus a torn tail
  }

  CmdResult resumed = run_cmd("faultsim " + f + " --feed f.in=1,2,3 --campaign --resume " +
                              "--journal=" + journal);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_EQ(resumed.output, full.output);

  // Parallel resume over the now-complete journal is also identical.
  CmdResult par = run_cmd("faultsim " + f + " --feed f.in=1,2,3 --campaign --resume " +
                          "--threads=4 --journal=" + journal);
  EXPECT_EQ(par.exit_code, 0) << par.output;
  EXPECT_EQ(par.output, full.output);
}

TEST(Hlsavc, CampaignSigintFlushesJournalAndExitsSix) {
  // A campaign slow enough that SIGINT lands mid-sweep: the inner
  // compute loop makes every site run ~a million cycles while the feed
  // stays short (a whole-campaign run takes seconds).
  std::string src = "void f(stream_in<32> in, stream_out<32> out) {\n"
                    "  for (uint32 i = 0; i < 50; i++) {\n"
                    "    uint32 v = stream_read(in);\n"
                    "    uint32 acc = 0;\n"
                    "    for (uint32 j = 0; j < 20000; j++) {\n"
                    "      acc = acc + v;\n"
                    "    }\n"
                    "    assert(acc >= v);\n"
                    "    stream_write(out, acc);\n"
                    "  }\n"
                    "}\n";
  std::string f = write_temp("slow_sigint.c", src);
  std::string feed = "f.in=";
  for (unsigned i = 0; i < 50; ++i) feed += (i == 0 ? "1" : ",1");
  std::string feed_file = write_temp("slow_sigint_feed.txt", feed);
  std::string journal = temp_path("sigint.jsonl");
  std::string out_file = temp_path("sigint_out.txt");

  // Launch the campaign, interrupt it shortly after, and capture its
  // real exit code through the shell (popen only sees the last one).
  std::string cmd = std::string("sh -c '") + HLSAVC_PATH + " faultsim " + f +
                    " --campaign --journal=" + journal + " --feed \"$(cat " + feed_file +
                    ")\" > " + out_file + " 2>&1 & pid=$!; sleep 0.15; " +
                    "kill -INT $pid; wait $pid; echo rc=$?'";
  std::array<char, 4096> buf{};
  std::string shell_out;
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    shell_out += buf.data();
  }
  pclose(pipe);

  std::ifstream captured(out_file);
  std::string output{std::istreambuf_iterator<char>(captured),
                     std::istreambuf_iterator<char>()};
  if (shell_out.find("rc=6") == std::string::npos) {
    // The sweep won the race and finished first -- fine on a fast
    // machine, nothing more to assert.
    EXPECT_NE(shell_out.find("rc=0"), std::string::npos) << shell_out << output;
    return;
  }
  // Exit 6 = interrupted: the journal is flushed and the hint names it.
  EXPECT_NE(output.find("campaign interrupted by signal"), std::string::npos) << output;
  EXPECT_NE(output.find(journal), std::string::npos) << output;
  EXPECT_NE(output.find("--resume"), std::string::npos) << output;

  // The flushed journal resumes to a clean finish.
  CmdResult resumed = run_cmd("faultsim " + f + " --campaign --resume --journal=" + journal +
                              " --feed \"$(cat " + feed_file + ")\"");
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("Fault-injection campaign"), std::string::npos)
      << resumed.output;
}

TEST(Hlsavc, JournalInUnwritableDirectoryFailsCleanly) {
  std::string f = write_temp("good.c", kGoodSrc);
  CmdResult r = run_cmd("faultsim " + f +
                        " --feed f.in=1,2,3 --campaign --journal=/nonexistent_dir/j.jsonl");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("hlsavc:"), std::string::npos) << r.output;
}

}  // namespace
