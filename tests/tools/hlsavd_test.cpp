// hlsavd binary surface: usage contract, the standalone worker
// entrypoint (heartbeats + shard journal), and the test-only crash
// flags that make crash containment deterministically exercisable.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/journal.h"

#ifndef HLSAVD_PATH
#define HLSAVD_PATH "hlsavd"
#endif
#ifndef HLSAVC_PATH
#define HLSAVC_PATH "hlsavc"
#endif

namespace {

struct CmdResult {
  int exit_code = -1;    // WEXITSTATUS, or 128+sig via `sh` convention
  std::string output;    // stdout + stderr
};

CmdResult run_raw(const std::string& cmd) {
  std::array<char, 4096> buf{};
  CmdResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    r.output += buf.data();
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.exit_code = 128 + WTERMSIG(status);
  }
  return r;
}

CmdResult run_hlsavd(const std::string& args) {
  return run_raw(std::string(HLSAVD_PATH) + " " + args);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string write_temp(const std::string& name, const std::string& contents) {
  std::string path = temp_path(name);
  std::ofstream out(path);
  out << contents;
  return path;
}

const char* kClampSrc = R"(
void clamp(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 6; i++) {
    uint32 v = stream_read(in);
    uint32 y = v;
    if (y > 255) { y = 255; }
    assert(y <= 255);
    stream_write(out, y);
  }
}
)";

constexpr const char* kFeed = "clamp.in=1,2,3,300,5,6";

/// Builds the full-campaign reference journal with hlsavc, so worker
/// invocations can be handed the resolved backstops the supervisor
/// would pass them.
hlsav::sim::JournalContents reference_journal(const std::string& design,
                                              const std::string& journal) {
  CmdResult r = run_raw(std::string(HLSAVC_PATH) + " faultsim " + design +
                        " --campaign --feed " + kFeed + " --journal=" + journal);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  auto loaded = hlsav::sim::load_journal(journal);
  EXPECT_TRUE(loaded.ok()) << loaded.status().to_string();
  return loaded.ok() ? *std::move(loaded) : hlsav::sim::JournalContents{};
}

std::string worker_args(const std::string& design, const std::string& journal,
                        const std::string& sites, const hlsav::sim::JournalHeader& h) {
  return "worker --design=" + design + " --journal=" + journal + " --sites=" + sites +
         " --seed=" + std::to_string(h.seed) +
         " --max-cycles=" + std::to_string(h.max_cycles) +
         " --golden-cycles=" + std::to_string(h.golden_cycles) + " --feed " + kFeed;
}

TEST(Hlsavd, NoArgumentsPrintsUsageAndExits2) {
  CmdResult r = run_hlsavd("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: hlsavd"), std::string::npos);
  EXPECT_NE(r.output.find("exit codes:"), std::string::npos);
}

TEST(Hlsavd, VersionExitsZero) {
  CmdResult r = run_hlsavd("--version");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("hlsavd"), std::string::npos);
}

TEST(Hlsavd, WorkerSweepsItsShardAndHeartbeats) {
  std::string design = write_temp("wrk_clamp.c", kClampSrc);
  hlsav::sim::JournalContents ref =
      reference_journal(design, temp_path("wrk_ref.jsonl"));
  ASSERT_GE(ref.results.size(), 3u);

  std::string shard = temp_path("wrk_shard.jsonl");
  CmdResult r = run_hlsavd(worker_args(design, shard, "0,1,2", ref.header));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Heartbeat contract: "starting" before each site (the supervisor's
  // blame target), "site" once it is durably journaled.
  EXPECT_NE(r.output.find("{\"type\":\"starting\",\"site\":0}"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"type\":\"site\""), std::string::npos) << r.output;

  auto loaded = hlsav::sim::load_journal(shard);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  // The shard journal carries the FULL campaign's fingerprint -- that is
  // what makes shards mergeable and resumable interchangeably.
  EXPECT_EQ(loaded->header.fingerprint(), ref.header.fingerprint());
  ASSERT_EQ(loaded->results.size(), 3u);
  for (std::uint32_t id : {0u, 1u, 2u}) {
    ASSERT_EQ(loaded->results.count(id), 1u);
    EXPECT_EQ(hlsav::sim::journal_line(loaded->results.at(id)),
              hlsav::sim::journal_line(ref.results.at(id)));
  }
}

TEST(Hlsavd, WorkerCrashFlagDiesBySigkillAfterDurableToken) {
  std::string design = write_temp("wrk_crash.c", kClampSrc);
  hlsav::sim::JournalContents ref =
      reference_journal(design, temp_path("wrk_crash_ref.jsonl"));

  std::string token_dir = temp_path("wrk_tokens");
  ASSERT_EQ(::mkdir(token_dir.c_str(), 0755), 0);
  std::string shard = temp_path("wrk_crash_shard.jsonl");
  CmdResult r = run_hlsavd(worker_args(design, shard, "0,1,2", ref.header) +
                           " --crash-at-site=1 --fault-token-dir=" + token_dir);
  EXPECT_EQ(r.exit_code, 128 + SIGKILL) << r.output;
  // Site 0 was journaled before the kill; site 1 announced "starting"
  // but never landed -- exactly the state the supervisor recovers from.
  EXPECT_NE(r.output.find("{\"type\":\"starting\",\"site\":1}"), std::string::npos)
      << r.output;
  auto loaded = hlsav::sim::load_journal(shard);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->results.count(0), 1u);
  EXPECT_EQ(loaded->results.count(1), 0u);

  // The trigger token survived the SIGKILL (written + fsync'd first):
  // the respawned worker runs the site instead of crashing forever.
  std::ifstream token(token_dir + "/crash_1.token");
  ASSERT_TRUE(token.good());
  int count = 0;
  token >> count;
  EXPECT_EQ(count, 1);

  CmdResult again = run_hlsavd(worker_args(design, shard, "0,1,2", ref.header) +
                               " --crash-at-site=1 --fault-token-dir=" + token_dir);
  EXPECT_EQ(again.exit_code, 0) << again.output;
}

TEST(Hlsavd, WorkerRefusesAGoldenCyclesMismatch) {
  std::string design = write_temp("wrk_mismatch.c", kClampSrc);
  hlsav::sim::JournalContents ref =
      reference_journal(design, temp_path("wrk_mismatch_ref.jsonl"));
  hlsav::sim::JournalHeader wrong = ref.header;
  wrong.golden_cycles += 1;
  std::string shard = temp_path("wrk_mismatch_shard.jsonl");
  CmdResult r = run_hlsavd(worker_args(design, shard, "0", wrong));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("nondeterministic"), std::string::npos) << r.output;
}

TEST(Hlsavd, SubmitWithoutSocketIsUsage) {
  CmdResult r = run_hlsavd("submit --design=x.c");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Hlsavd, SubmitToADeadSocketIsAnErrorNotAHang) {
  CmdResult r = run_hlsavd("submit --socket=" + temp_path("no_daemon.sock") +
                           " --design=" + temp_path("nothing.c"));
  EXPECT_EQ(r.exit_code, 1);
}

}  // namespace
