#include <gtest/gtest.h>

#include "support/table.h"

namespace hlsav {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("Demo");
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"long-name", "22"});
  std::string s = t.render();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22    |"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"x"});
  std::string s = t.render();
  EXPECT_NE(s.find("| x |   |   |"), std::string::npos);
}

TEST(TextTable, Separator) {
  TextTable t;
  t.row({"x"});
  t.separator();
  t.row({"y"});
  std::string s = t.render();
  // 4 separators total: top, bottom, and the explicit one (no header line).
  int count = 0;
  for (std::size_t p = s.find("+--"); p != std::string::npos; p = s.find("+--", p + 1)) ++count;
  EXPECT_EQ(count, 3);
}

TEST(Formatters, Doubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(Formatters, CountPct) {
  EXPECT_EQ(fmt_count_pct(13677, 9.53), "13677 (9.53%)");
}

TEST(Formatters, Overhead) {
  EXPECT_EQ(fmt_overhead(174, 0.12), "+174 (+0.12%)");
  EXPECT_EQ(fmt_overhead(-5, -2.54), "-5 (-2.54%)");
}

}  // namespace
}  // namespace hlsav
