// Subprocess supervision primitives: spawn, poll, kill, classify.
#include "support/subprocess.h"

#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <thread>

namespace hlsav {
namespace {

TEST(Subprocess, CleanExitIsClassified) {
  StatusOr<Subprocess> p = Subprocess::spawn({"true"}, /*capture_stdout=*/false);
  ASSERT_TRUE(p.ok()) << p.status().to_string();
  ExitInfo info = p->wait();
  EXPECT_TRUE(info.clean());
  EXPECT_EQ(info.describe(), "exit 0");
}

TEST(Subprocess, NonzeroExitCodeIsReported) {
  StatusOr<Subprocess> p = Subprocess::spawn({"sh", "-c", "exit 3"}, false);
  ASSERT_TRUE(p.ok());
  ExitInfo info = p->wait();
  EXPECT_FALSE(info.clean());
  EXPECT_FALSE(info.signaled);
  EXPECT_EQ(info.value, 3);
}

TEST(Subprocess, SignalDeathIsClassifiedAsSignal) {
  StatusOr<Subprocess> p = Subprocess::spawn({"sleep", "30"}, false);
  ASSERT_TRUE(p.ok());
  p->kill(SIGKILL);
  ExitInfo info = p->wait();
  EXPECT_TRUE(info.signaled);
  EXPECT_EQ(info.value, SIGKILL);
  EXPECT_NE(info.describe().find("signal 9"), std::string::npos) << info.describe();
}

TEST(Subprocess, ExecFailureSurfacesAsExit127) {
  StatusOr<Subprocess> p =
      Subprocess::spawn({"/nonexistent/binary/definitely-not-here"}, false);
  ASSERT_TRUE(p.ok());  // the fork succeeds; exec failure is the child's exit
  ExitInfo info = p->wait();
  EXPECT_FALSE(info.signaled);
  EXPECT_EQ(info.value, 127);
}

TEST(Subprocess, CapturedStdoutIsReadable) {
  StatusOr<Subprocess> p = Subprocess::spawn({"sh", "-c", "printf 'a\\nb\\n'"}, true);
  ASSERT_TRUE(p.ok());
  ASSERT_GE(p->stdout_fd(), 0);
  std::string buf;
  // Drain until EOF; the pipe outlives the child, so everything written
  // before death is recoverable.
  while (p->read_stdout(buf)) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(buf, "a\nb\n");
  EXPECT_TRUE(p->wait().clean());
}

TEST(Subprocess, PollReportsRunningThenExit) {
  StatusOr<Subprocess> p = Subprocess::spawn({"sh", "-c", "sleep 0.1"}, false);
  ASSERT_TRUE(p.ok());
  // Either still running or already done; once done, poll() stays done.
  std::optional<ExitInfo> info;
  for (int i = 0; i < 500 && !info.has_value(); ++i) {
    info = p->poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->clean());
  EXPECT_TRUE(p->poll().has_value());  // cached after the reap
}

}  // namespace
}  // namespace hlsav
