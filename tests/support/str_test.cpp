#include <gtest/gtest.h>

#include "support/str.h"

namespace hlsav {
namespace {

TEST(Str, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("pragma HLS", "pragma"));
  EXPECT_FALSE(starts_with("prag", "pragma"));
}

TEST(Str, JoinAndLower) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_lower("HLS Pipeline"), "hls pipeline");
}

TEST(Str, Fnv1aDeterministic) {
  constexpr std::uint64_t h = fnv1a("triple_des");
  static_assert(h != 0);
  EXPECT_EQ(fnv1a("triple_des"), h);
  EXPECT_NE(fnv1a("triple_des"), fnv1a("triple_dss"));
}

TEST(SplitMix, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DoubleRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix, NextBelow) {
  SplitMix64 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.next_below(10), 10u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

}  // namespace
}  // namespace hlsav
