// Diagnostic rendering: caret placement, range underlining, and the
// multi-error output the parser's recovery mode produces.
#include <gtest/gtest.h>

#include <string>

#include "lang/parser.h"
#include "support/diagnostics.h"

namespace hlsav {
namespace {

TEST(Diagnostics, RenderPointsCaretAtColumn) {
  SourceManager sm;
  FileId f = sm.add_buffer("t.c", "uint32 x = ;\n");
  DiagnosticEngine diags(&sm);
  diags.error(SourceLoc{f, 1, 12}, "expected expression");
  std::string out = diags.render();
  EXPECT_NE(out.find("t.c:1:12: error: expected expression"), std::string::npos) << out;
  // Caret under column 12 of the echoed source line.
  EXPECT_NE(out.find("  uint32 x = ;"), std::string::npos) << out;
  std::string caret_line = "\n  " + std::string(11, ' ') + "^";  // 11 pads: columns 1..11
  EXPECT_NE(out.find(caret_line), std::string::npos) << out;
}

TEST(Diagnostics, RangeRendersCaretPlusTildes) {
  SourceManager sm;
  FileId f = sm.add_buffer("t.c", "uint99 value = 0;\n");
  DiagnosticEngine diags(&sm);
  diags.error_range(SourceLoc{f, 1, 1}, 6, "unknown type 'uint99'");
  std::string out = diags.render();
  EXPECT_NE(out.find("^~~~~~"), std::string::npos) << out;  // 6 columns: ^ + 5 tildes
}

TEST(Diagnostics, RangeClipsAtEndOfLine) {
  SourceManager sm;
  FileId f = sm.add_buffer("t.c", "x\n");
  DiagnosticEngine diags(&sm);
  diags.error_range(SourceLoc{f, 1, 1}, 40, "oops");
  std::string out = diags.render();
  // The underline stops at the end of the 1-char line: no tilde run-off.
  EXPECT_EQ(out.find("^~"), std::string::npos) << out;
}

TEST(Diagnostics, TabsPreservedInCaretLine) {
  SourceManager sm;
  FileId f = sm.add_buffer("t.c", "\tuint32 x = ;\n");
  DiagnosticEngine diags(&sm);
  diags.error(SourceLoc{f, 1, 13}, "expected expression");
  std::string out = diags.render();
  // The pad mirrors the tab so the caret lines up in any tab width.
  EXPECT_NE(out.find("\n  \t"), std::string::npos) << out;
}

TEST(Diagnostics, UnknownLocationOmitsExcerpt) {
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  diags.error(SourceLoc{}, "design has no processes");
  EXPECT_EQ(diags.render(), "error: design has no processes\n");
}

TEST(Diagnostics, ParserRecoveryReportsMultipleErrorsInOneRun) {
  // Two independent statement-level mistakes: synchronize-on-';' must
  // surface both, each with its own excerpt, in source order.
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  auto prog = lang::parse_source(sm, diags, "multi.c", R"(
void f(stream_in<32> in, stream_out<32> out) {
  uint32 a = ;
  uint32 b = stream_read(in);
  uint32 c = ;
  stream_write(out, b);
}
)");
  ASSERT_NE(prog, nullptr);
  EXPECT_GE(diags.error_count(), 2u) << diags.render();
  std::string out = diags.render();
  std::size_t first = out.find("multi.c:3:");
  std::size_t second = out.find("multi.c:5:");
  EXPECT_NE(first, std::string::npos) << out;
  EXPECT_NE(second, std::string::npos) << out;
  EXPECT_LT(first, second) << out;
}

TEST(Diagnostics, RecoverySkipsToNextStatementNotNextToken) {
  // The garbage run between errors must not produce an error cascade:
  // one diagnostic per broken statement, not one per bad token.
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  (void)lang::parse_source(sm, diags, "cascade.c", R"(
void f(stream_in<32> in) {
  uint32 a = + + + + + + ;
  uint32 b = stream_read(in);
}
)");
  EXPECT_GE(diags.error_count(), 1u);
  EXPECT_LE(diags.error_count(), 3u) << diags.render();
}

}  // namespace
}  // namespace hlsav
