#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace hlsav {
namespace {

TEST(SourceManager, AddAndQuery) {
  SourceManager sm;
  FileId id = sm.add_buffer("test.c", "line one\nline two\nline three");
  EXPECT_EQ(sm.name(id), "test.c");
  EXPECT_EQ(sm.line_text(id, 1), "line one");
  EXPECT_EQ(sm.line_text(id, 3), "line three");
  EXPECT_EQ(sm.line_text(id, 4), "");
  EXPECT_EQ(sm.line_text(id, 0), "");
}

TEST(SourceManager, InvalidIds) {
  SourceManager sm;
  EXPECT_EQ(sm.name(0), "<unknown>");
  EXPECT_EQ(sm.name(99), "<unknown>");
  EXPECT_TRUE(sm.text(99).empty());
}

TEST(SourceManager, StripsCrLf) {
  SourceManager sm;
  FileId id = sm.add_buffer("f", "a\r\nb\r\n");
  EXPECT_EQ(sm.line_text(id, 1), "a");
  EXPECT_EQ(sm.line_text(id, 2), "b");
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({}, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error({}, "e1");
  diags.error({}, "e2");
  EXPECT_EQ(diags.error_count(), 2u);
}

TEST(Diagnostics, RendersWithCaret) {
  SourceManager sm;
  FileId id = sm.add_buffer("f.c", "int x = oops;\n");
  DiagnosticEngine diags(&sm);
  diags.error(SourceLoc{id, 1, 9}, "unknown identifier");
  std::string out = diags.render();
  EXPECT_NE(out.find("f.c:1:9: error: unknown identifier"), std::string::npos);
  EXPECT_NE(out.find("int x = oops;"), std::string::npos);
  EXPECT_NE(out.find("        ^"), std::string::npos);
}

TEST(Diagnostics, Clear) {
  DiagnosticEngine diags;
  diags.error({}, "e");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Diagnostics, InternalErrorThrows) {
  EXPECT_THROW(internal_error("file.cpp", 10, "boom"), InternalError);
  try {
    HLSAV_CHECK(false, "invariant");
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
    return;
  }
  FAIL() << "HLSAV_CHECK did not throw";
}

}  // namespace
}  // namespace hlsav
