// Shared flat-JSONL emit/parse primitives (support/jsonl.h).
#include "support/jsonl.h"

#include <gtest/gtest.h>

namespace hlsav::jsonl {
namespace {

TEST(Jsonl, EscapedStringRoundTrips) {
  std::string line = "{\"name\":";
  append_escaped(line, "we\"ird\\str\ning\x01");
  line += "}";
  std::string out;
  ASSERT_TRUE(parse_string(line, "name", out));
  EXPECT_EQ(out, "we\"ird\\str\ning\x01");
}

TEST(Jsonl, NumbersAndBoolsRoundTrip) {
  std::string line = "{\"a\":18446744073709551615,\"b\":" + format_double(0.1) +
                     ",\"c\":true,\"d\":false}";
  std::uint64_t a = 0;
  double b = 0;
  bool c = false, d = true;
  ASSERT_TRUE(parse_u64(line, "a", a));
  ASSERT_TRUE(parse_double(line, "b", b));
  ASSERT_TRUE(parse_bool(line, "c", c));
  ASSERT_TRUE(parse_bool(line, "d", d));
  EXPECT_EQ(a, 18446744073709551615ull);
  EXPECT_EQ(b, 0.1);  // %.17g survives the round trip exactly
  EXPECT_TRUE(c);
  EXPECT_FALSE(d);
}

TEST(Jsonl, ListsRoundTrip) {
  std::string line = "{\"ids\":";
  append_u32_list(line, {3, 1, 4, 1, 5});
  line += ",\"empty\":";
  append_u64_list(line, {});
  line += "}";
  std::vector<std::uint32_t> ids;
  std::vector<std::uint64_t> empty{7};
  ASSERT_TRUE(parse_u32_list(line, "ids", ids));
  ASSERT_TRUE(parse_u64_list(line, "empty", empty));
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{3, 1, 4, 1, 5}));
  EXPECT_TRUE(empty.empty());
}

TEST(Jsonl, MissingAndMalformedKeysFailCleanly) {
  std::string line = "{\"a\":1,\"s\":\"unterminated";
  std::uint64_t v = 0;
  std::string s;
  EXPECT_FALSE(parse_u64(line, "missing", v));
  EXPECT_FALSE(parse_string(line, "s", s));
  EXPECT_FALSE(parse_string(line, "a", s));  // number where a string is wanted
}

}  // namespace
}  // namespace hlsav::jsonl
