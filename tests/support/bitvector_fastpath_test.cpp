// Regression tests for the small-width (<= 64 bit) BitVector fast path.
//
// The fast path and the 4-word wide path must agree bit-exactly: every
// test here either pins behaviour at the width boundaries where the
// implementation switches representation (1, 63, 64, 65, 255, 256), or
// cross-checks a narrow operation against the same operation performed
// at a wide width on extended operands.
#include <gtest/gtest.h>

#include <cstdint>

#include "support/bitvector.h"

namespace hlsav {
namespace {

constexpr unsigned kBoundaryWidths[] = {1, 63, 64, 65, 255, 256};

std::uint64_t mask_for(unsigned w) {
  return w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
}

// Deterministic xorshift64* so the property tests are reproducible.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dull;
  }
};

TEST(BitVectorFastPath, MaskingInvariantAtBoundaryWidths) {
  for (unsigned w : kBoundaryWidths) {
    BitVector ones = BitVector::all_ones(w);
    // Adding 1 to all-ones must wrap to zero at every width; any excess
    // bit left set would surface here as a nonzero result.
    BitVector wrapped = ones.add(BitVector::from_u64(w, 1));
    EXPECT_TRUE(wrapped.is_zero()) << "width " << w;
    // Doubling all-ones shifts in a zero at the bottom: 0b111..10.
    BitVector doubled = ones.add(ones);
    EXPECT_FALSE(doubled.bit(0)) << "width " << w;
    if (w > 1) EXPECT_TRUE(doubled.bit(w - 1)) << "width " << w;
    // neg(1) is all-ones in two's complement.
    EXPECT_TRUE(BitVector::from_u64(w, 1).neg() == ones) << "width " << w;
  }
}

TEST(BitVectorFastPath, SignBitAtBoundaryWidths) {
  for (unsigned w : kBoundaryWidths) {
    BitVector top(w);
    top.set_bit(w - 1, true);
    EXPECT_TRUE(top.sign_bit()) << "width " << w;
    EXPECT_TRUE(top.to_i64() < 0 || w > 64) << "width " << w;
    EXPECT_FALSE(BitVector::all_ones(w).lshr(1).sign_bit()) << "width " << w;
    EXPECT_EQ(BitVector::from_i64(w, -1), BitVector::all_ones(w)) << "width " << w;
  }
}

TEST(BitVectorFastPath, DivRemByZeroContract) {
  for (unsigned w : kBoundaryWidths) {
    BitVector x = BitVector::from_u64(w, 0xdeadbeefcafef00dull);
    BitVector z(w);
    // Division by zero models the hardware divider's all-ones output;
    // remainder by zero passes the dividend through. Signed ops follow
    // the same contract.
    EXPECT_EQ(x.udiv(z), BitVector::all_ones(w)) << "width " << w;
    EXPECT_EQ(x.sdiv(z), BitVector::all_ones(w)) << "width " << w;
    EXPECT_EQ(x.urem(z), x) << "width " << w;
    EXPECT_EQ(x.srem(z), x) << "width " << w;
  }
}

TEST(BitVectorFastPath, SignedDivisionMinByMinusOneWraps) {
  // INT_MIN / -1 overflows in native C++; the hardware divider wraps to
  // INT_MIN. Exercise the widths where the fast path uses native 64-bit
  // arithmetic (63, 64) and one wide width.
  for (unsigned w : {63u, 64u, 65u}) {
    BitVector min(w);
    min.set_bit(w - 1, true);  // 100...0 = most negative value
    BitVector minus_one = BitVector::all_ones(w);
    EXPECT_EQ(min.sdiv(minus_one), min) << "width " << w;
    EXPECT_TRUE(min.srem(minus_one).is_zero()) << "width " << w;
  }
}

TEST(BitVectorFastPath, ShiftsAtAndBeyondWidth) {
  for (unsigned w : kBoundaryWidths) {
    BitVector ones = BitVector::all_ones(w);
    for (unsigned amount : {w, w + 1, 2 * w, 1000u}) {
      EXPECT_TRUE(ones.shl(amount).is_zero()) << "width " << w << " shl " << amount;
      EXPECT_TRUE(ones.lshr(amount).is_zero()) << "width " << w << " lshr " << amount;
      // ashr of a negative value saturates to all-ones, of a positive
      // value to zero.
      EXPECT_EQ(ones.ashr(amount), ones) << "width " << w << " ashr " << amount;
      EXPECT_TRUE(ones.lshr(1).ashr(amount).is_zero())
          << "width " << w << " ashr " << amount;
    }
    // One below the width keeps exactly the edge bit.
    if (w > 1) {
      EXPECT_EQ(BitVector::from_u64(w, 1).shl(w - 1).lshr(w - 1).to_u64(), 1u)
          << "width " << w;
    }
  }
}

TEST(BitVectorFastPath, UleSleAgreeWithUltEqAtBoundaries) {
  // ule/sle are single-pass implementations, not (ult || eq); pin the
  // equality and off-by-one boundary cases where a double-evaluation bug
  // would hide.
  for (unsigned w : kBoundaryWidths) {
    BitVector zero(w);
    BitVector one = BitVector::from_u64(w, 1);
    BitVector ones = BitVector::all_ones(w);  // unsigned max, signed -1
    BitVector min(w);
    min.set_bit(w - 1, true);  // signed minimum

    // Reflexive: x <= x, never x < x.
    for (const BitVector& x : {zero, one, ones, min}) {
      EXPECT_TRUE(x.ule(x)) << "width " << w;
      EXPECT_TRUE(x.sle(x)) << "width " << w;
      EXPECT_FALSE(x.ult(x)) << "width " << w;
      EXPECT_FALSE(x.slt(x)) << "width " << w;
    }
    // Unsigned ordering boundaries.
    EXPECT_TRUE(zero.ule(one)) << "width " << w;
    EXPECT_FALSE(one.ule(zero)) << "width " << w;
    EXPECT_TRUE(one.ule(ones)) << "width " << w;
    // Signed ordering: min < -1 < 0 < 1 (for w > 1; at w == 1 the only
    // values are 0 and -1).
    if (w > 1) {
      EXPECT_TRUE(min.sle(ones)) << "width " << w;
      EXPECT_TRUE(ones.sle(zero)) << "width " << w;
      EXPECT_TRUE(zero.sle(one)) << "width " << w;
      EXPECT_FALSE(one.sle(ones)) << "width " << w;
    } else {
      EXPECT_TRUE(ones.sle(zero));
      EXPECT_FALSE(zero.sle(ones));
    }
    // Consistency with the strict form everywhere we pinned.
    EXPECT_EQ(zero.ule(one), zero.ult(one) || zero.eq(one)) << "width " << w;
    EXPECT_EQ(ones.sle(zero), ones.slt(zero) || ones.eq(zero)) << "width " << w;
  }
}

// Property test: a narrow (fast path) operation must equal the same
// operation done on the wide path with the operands zero-/sign-extended
// to 128 bits and the result truncated back.
TEST(BitVectorFastPath, FastAndWidePathsAgreeOnRandomInputs) {
  Rng rng;
  constexpr unsigned kWide = 128;
  for (unsigned w : {1u, 7u, 32u, 63u, 64u}) {
    for (int iter = 0; iter < 200; ++iter) {
      std::uint64_t xa = rng.next() & mask_for(w);
      std::uint64_t xb = rng.next() & mask_for(w);
      BitVector a = BitVector::from_u64(w, xa);
      BitVector b = BitVector::from_u64(w, xb);
      BitVector wa = a.zext(kWide);
      BitVector wb = b.zext(kWide);
      BitVector sa = a.sext(kWide);
      BitVector sb = b.sext(kWide);

      EXPECT_EQ(a.add(b), wa.add(wb).trunc(w)) << "add w" << w;
      EXPECT_EQ(a.sub(b), wa.sub(wb).trunc(w)) << "sub w" << w;
      EXPECT_EQ(a.mul(b), wa.mul(wb).trunc(w)) << "mul w" << w;
      EXPECT_EQ(a.band(b), wa.band(wb).trunc(w)) << "and w" << w;
      EXPECT_EQ(a.bor(b), wa.bor(wb).trunc(w)) << "or w" << w;
      EXPECT_EQ(a.bxor(b), wa.bxor(wb).trunc(w)) << "xor w" << w;
      EXPECT_EQ(a.bnot(), wa.bnot().trunc(w)) << "not w" << w;
      EXPECT_EQ(a.neg(), sa.neg().trunc(w)) << "neg w" << w;
      if (xb != 0) {
        EXPECT_EQ(a.udiv(b), wa.udiv(wb).trunc(w)) << "udiv w" << w;
        EXPECT_EQ(a.urem(b), wa.urem(wb).trunc(w)) << "urem w" << w;
        EXPECT_EQ(a.sdiv(b), sa.sdiv(sb).trunc(w)) << "sdiv w" << w;
        EXPECT_EQ(a.srem(b), sa.srem(sb).trunc(w)) << "srem w" << w;
      }
      // Comparisons: narrow result must match the comparison of the
      // extended values (zext preserves unsigned order, sext signed).
      EXPECT_EQ(a.eq(b), wa.eq(wb)) << "eq w" << w;
      EXPECT_EQ(a.ult(b), wa.ult(wb)) << "ult w" << w;
      EXPECT_EQ(a.ule(b), wa.ule(wb)) << "ule w" << w;
      EXPECT_EQ(a.slt(b), sa.slt(sb)) << "slt w" << w;
      EXPECT_EQ(a.sle(b), sa.sle(sb)) << "sle w" << w;

      unsigned amount = static_cast<unsigned>(rng.next() % (w + 4));
      EXPECT_EQ(a.shl(amount), wa.shl(amount).trunc(w).shl(0)) << "shl w" << w;
      if (amount < w) {
        EXPECT_EQ(a.lshr(amount), wa.lshr(amount).trunc(w)) << "lshr w" << w;
        EXPECT_EQ(a.ashr(amount), sa.ashr(amount).trunc(w)) << "ashr w" << w;
      }
    }
  }
}

// The same property through eval_bin's inline dispatch is covered by the
// IR constant-folding and simulator tests; here we pin that wide widths
// (> 64) round-trip through arithmetic identities on random values.
TEST(BitVectorFastPath, WideArithmeticIdentitiesOnRandomInputs) {
  Rng rng;
  for (unsigned w : {65u, 127u, 255u, 256u}) {
    for (int iter = 0; iter < 100; ++iter) {
      BitVector a = BitVector::from_u64(w, rng.next()).shl(static_cast<unsigned>(
          rng.next() % (w - 60)));  // spread bits into the upper words
      BitVector b = BitVector::from_u64(w, rng.next());
      EXPECT_EQ(a.add(b).sub(b), a) << "add/sub w" << w;
      EXPECT_EQ(a.sub(a.add(a)), a.neg()) << "neg identity w" << w;
      EXPECT_EQ(a.bxor(b).bxor(b), a) << "xor w" << w;
      EXPECT_TRUE(a.sub(a).is_zero()) << "sub self w" << w;
      if (!b.is_zero()) {
        // n == q*d + r, with r < d (unsigned).
        BitVector q = a.udiv(b);
        BitVector r = a.urem(b);
        EXPECT_EQ(q.mul(b).add(r), a) << "divmod w" << w;
        EXPECT_TRUE(r.ult(b)) << "rem bound w" << w;
      }
    }
  }
}

}  // namespace
}  // namespace hlsav
