// Atomic artifact writes: temp sibling + fsync + rename.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "support/io.h"

namespace hlsav {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(Io, TempSiblingIsPidUniqueAndSameDirectory) {
  std::string t = temp_sibling_path("/some/dir/report.json");
  EXPECT_EQ(t.rfind("/some/dir/report.json.tmp.", 0), 0u) << t;
  EXPECT_NE(t.find(std::to_string(::getpid())), std::string::npos) << t;
}

TEST(Io, WriteCreatesFileWithExactContent) {
  std::string path = temp_path("io_create.txt");
  Status s = write_file_atomic(path, "hello\nworld\n");
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(slurp(path), "hello\nworld\n");
  // No temp residue.
  EXPECT_FALSE(fs::exists(temp_sibling_path(path)));
}

TEST(Io, WriteReplacesExistingFileAtomically) {
  std::string path = temp_path("io_replace.txt");
  ASSERT_TRUE(write_file_atomic(path, "old old old").ok());
  ASSERT_TRUE(write_file_atomic(path, "new").ok());
  EXPECT_EQ(slurp(path), "new");
}

TEST(Io, WriteHandlesBinaryContent) {
  std::string path = temp_path("io_binary.bin");
  std::string blob("\x00\x01\xff\x7f with embedded\nnewlines\0too", 31);
  ASSERT_TRUE(write_file_atomic(path, blob).ok());
  EXPECT_EQ(slurp(path), blob);
}

TEST(Io, UnwritableDirectoryYieldsIoErrorNotThrow) {
  Status s = write_file_atomic("/nonexistent_dir_hlsav/x.json", "data");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_FALSE(s.message().empty());
}

TEST(Io, FailedWriteLeavesTargetUntouched) {
  // The target must survive a failed rewrite attempt towards a bad temp
  // location -- here the failure mode is an unwritable directory, so
  // the original from a *different* directory is untouched by design;
  // what we can check directly: failure does not create the target.
  std::string missing = "/nonexistent_dir_hlsav/never.json";
  (void)write_file_atomic(missing, "data");
  EXPECT_FALSE(fs::exists(missing));
}

}  // namespace
}  // namespace hlsav
