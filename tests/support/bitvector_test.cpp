// BitVector unit + property tests: the simulator's value type must match
// two's-complement hardware semantics exactly, so we check it against
// native 64-bit arithmetic over many widths and random operand pairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "support/bitvector.h"
#include "support/str.h"

namespace hlsav {
namespace {

TEST(BitVector, ConstructionAndMasking) {
  BitVector v = BitVector::from_u64(8, 0x1ff);
  EXPECT_EQ(v.to_u64(), 0xffu);
  EXPECT_EQ(v.width(), 8u);

  BitVector w = BitVector::from_u64(5, 22);
  EXPECT_EQ(w.to_u64(), 22u);
  EXPECT_EQ(BitVector::from_u64(5, 32).to_u64(), 0u);
}

TEST(BitVector, SignedConstruction) {
  BitVector v = BitVector::from_i64(8, -1);
  EXPECT_EQ(v.to_u64(), 0xffu);
  EXPECT_EQ(v.to_i64(), -1);
  EXPECT_TRUE(v.sign_bit());

  BitVector w = BitVector::from_i64(16, -300);
  EXPECT_EQ(w.to_i64(), -300);
}

TEST(BitVector, AllOnes) {
  EXPECT_EQ(BitVector::all_ones(7).to_u64(), 0x7fu);
  EXPECT_EQ(BitVector::all_ones(64).to_u64(), ~std::uint64_t{0});
  BitVector big = BitVector::all_ones(100);
  EXPECT_TRUE(big.bit(99));
  EXPECT_EQ(big.to_u64(), ~std::uint64_t{0});
}

TEST(BitVector, BitAccess) {
  BitVector v(65);
  v.set_bit(64, true);
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.any());
  v.set_bit(64, false);
  EXPECT_TRUE(v.is_zero());
}

TEST(BitVector, WideAddCarry) {
  // 2^64 - 1 + 1 carries into the second word.
  BitVector a = BitVector::from_u64(128, ~std::uint64_t{0});
  BitVector one = BitVector::from_u64(128, 1);
  BitVector sum = a.add(one);
  EXPECT_EQ(sum.to_u64(), 0u);
  EXPECT_TRUE(sum.bit(64));
}

TEST(BitVector, MulTruncates) {
  BitVector a = BitVector::from_u64(8, 200);
  BitVector b = BitVector::from_u64(8, 3);
  EXPECT_EQ(a.mul(b).to_u64(), (200u * 3u) & 0xffu);
}

TEST(BitVector, DivByZeroConventions) {
  BitVector a = BitVector::from_u64(8, 42);
  BitVector z(8);
  EXPECT_EQ(a.udiv(z).to_u64(), 0xffu);  // all ones
  EXPECT_EQ(a.urem(z).to_u64(), 42u);    // unchanged
}

TEST(BitVector, ShiftBeyondWidth) {
  BitVector a = BitVector::from_u64(8, 0x80);
  EXPECT_EQ(a.shl(8).to_u64(), 0u);
  EXPECT_EQ(a.lshr(8).to_u64(), 0u);
  EXPECT_EQ(a.ashr(8).to_u64(), 0xffu);  // sign fill
  BitVector p = BitVector::from_u64(8, 0x40);
  EXPECT_EQ(p.ashr(8).to_u64(), 0u);
}

TEST(BitVector, ExtensionAndTruncation) {
  BitVector v = BitVector::from_i64(8, -2);
  EXPECT_EQ(v.sext(16).to_i64(), -2);
  EXPECT_EQ(v.zext(16).to_u64(), 0xfeu);
  EXPECT_EQ(v.trunc(4).to_u64(), 0xeu);
  EXPECT_EQ(v.resize(16, true).to_i64(), -2);
  EXPECT_EQ(v.resize(16, false).to_u64(), 0xfeu);
}

TEST(BitVector, Extract) {
  BitVector v = BitVector::from_u64(32, 0xdeadbeef);
  EXPECT_EQ(v.extract(0, 8).to_u64(), 0xefu);
  EXPECT_EQ(v.extract(16, 16).to_u64(), 0xdeadu);
}

TEST(BitVector, DecimalStrings) {
  EXPECT_EQ(BitVector::from_u64(32, 4294967286u).to_string_dec(false), "4294967286");
  EXPECT_EQ(BitVector::from_i64(32, -10).to_string_dec(true), "-10");
  EXPECT_EQ(BitVector(8).to_string_dec(false), "0");
  // Beyond 64 bits: 2^64 = 18446744073709551616.
  BitVector big = BitVector::from_u64(65, 1).shl(64);
  EXPECT_EQ(big.to_string_dec(false), "18446744073709551616");
}

TEST(BitVector, HexStrings) {
  EXPECT_EQ(BitVector::from_u64(32, 0xdeadbeef).to_string_hex(), "0xdeadbeef");
  EXPECT_EQ(BitVector::from_u64(5, 22).to_string_hex(), "0x16");
}

TEST(BitVector, PaperNarrowCompareExample) {
  // The paper's §5.1 bug: 4294967286 > 4294967296 is false at 64 bits but
  // the erroneously narrowed 5-bit comparison 22 > 0 is true.
  BitVector c2 = BitVector::from_u64(64, 4294967286ull);
  BitVector c1 = BitVector::from_u64(64, 4294967296ull);
  EXPECT_FALSE(c1.ult(c2));  // c2 > c1 is false
  BitVector n2 = c2.trunc(5);
  BitVector n1 = c1.trunc(5);
  EXPECT_EQ(n2.to_u64(), 22u);
  EXPECT_EQ(n1.to_u64(), 0u);
  EXPECT_TRUE(n1.ult(n2));  // narrowed compare flips the verdict
}

// ------------------------- property tests vs native 64-bit reference --

struct WidthCase {
  unsigned width;
};

class BitVectorProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVectorProperty, MatchesNative64) {
  const unsigned w = GetParam();
  const std::uint64_t mask = w == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
  SplitMix64 rng(0x1234 + w);

  auto sext64 = [&](std::uint64_t x) -> std::int64_t {
    if (w == 64) return static_cast<std::int64_t>(x);
    std::uint64_t sign = std::uint64_t{1} << (w - 1);
    return static_cast<std::int64_t>((x ^ sign) - sign);
  };

  for (int iter = 0; iter < 300; ++iter) {
    std::uint64_t xa = rng.next() & mask;
    std::uint64_t xb = rng.next() & mask;
    BitVector a = BitVector::from_u64(w, xa);
    BitVector b = BitVector::from_u64(w, xb);

    EXPECT_EQ(a.add(b).to_u64(), (xa + xb) & mask);
    EXPECT_EQ(a.sub(b).to_u64(), (xa - xb) & mask);
    EXPECT_EQ(a.mul(b).to_u64(), (xa * xb) & mask);
    EXPECT_EQ(a.band(b).to_u64(), xa & xb);
    EXPECT_EQ(a.bor(b).to_u64(), xa | xb);
    EXPECT_EQ(a.bxor(b).to_u64(), xa ^ xb);
    EXPECT_EQ(a.bnot().to_u64(), ~xa & mask);
    EXPECT_EQ(a.neg().to_u64(), (~xa + 1) & mask);

    EXPECT_EQ(a.eq(b), xa == xb);
    EXPECT_EQ(a.ult(b), xa < xb);
    EXPECT_EQ(a.ule(b), xa <= xb);
    EXPECT_EQ(a.slt(b), sext64(xa) < sext64(xb));
    EXPECT_EQ(a.sle(b), sext64(xa) <= sext64(xb));

    if (xb != 0) {
      EXPECT_EQ(a.udiv(b).to_u64(), xa / xb);
      EXPECT_EQ(a.urem(b).to_u64(), xa % xb);
      std::int64_t sa = sext64(xa);
      std::int64_t sb = sext64(xb);
      if (!(sa == std::numeric_limits<std::int64_t>::min() && sb == -1) && sb != 0) {
        EXPECT_EQ(a.sdiv(b).to_i64(), sext64(static_cast<std::uint64_t>(sa / sb) & mask));
        EXPECT_EQ(a.srem(b).to_i64(), sext64(static_cast<std::uint64_t>(sa % sb) & mask));
      }
    }

    unsigned sh = static_cast<unsigned>(rng.next_below(w));
    EXPECT_EQ(a.shl(sh).to_u64(), (xa << sh) & mask);
    EXPECT_EQ(a.lshr(sh).to_u64(), xa >> sh);
    EXPECT_EQ(a.ashr(sh).to_i64(), sext64(static_cast<std::uint64_t>(sext64(xa) >> sh) & mask));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorProperty,
                         ::testing::Values(1u, 5u, 8u, 13u, 16u, 31u, 32u, 47u, 63u, 64u));

/// Wide-width consistency: 128-bit ops agree with two independent 64-bit
/// halves for the bitwise operators and shifting by 64.
TEST(BitVectorProperty, WideConsistency) {
  SplitMix64 rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    std::uint64_t lo = rng.next();
    std::uint64_t hi = rng.next();
    BitVector v = BitVector::from_u64(128, hi).shl(64).bor(BitVector::from_u64(128, lo));
    EXPECT_EQ(v.extract(0, 64).to_u64(), lo);
    EXPECT_EQ(v.extract(64, 64).to_u64(), hi);
    EXPECT_EQ(v.lshr(64).to_u64(), hi);
    EXPECT_EQ(v.shl(64).extract(64, 64).to_u64(), lo);
  }
}

}  // namespace
}  // namespace hlsav
