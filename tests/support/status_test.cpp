// Status / StatusOr: the recoverable-error currency of the pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "support/status.h"

namespace hlsav {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeMessageAndLocation) {
  SourceLoc loc;
  loc.file = 1;
  loc.line = 3;
  loc.column = 7;
  Status s = Status::error(StatusCode::kSemaError, "undeclared variable 'x'", loc);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kSemaError);
  EXPECT_EQ(s.message(), "undeclared variable 'x'");
  EXPECT_EQ(s.loc().line, 3u);
  // to_string names the code and renders the location.
  EXPECT_NE(s.to_string().find("sema-error"), std::string::npos);
  EXPECT_NE(s.to_string().find("3:7"), std::string::npos);
  EXPECT_NE(s.to_string().find("undeclared variable"), std::string::npos);
}

TEST(Status, LocationlessErrorOmitsPosition) {
  Status s = Status::io_error("cannot open 'x.c'");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.to_string().find(" at "), std::string::npos);
  EXPECT_EQ(s.to_string(), "io-error: cannot open 'x.c'");
}

TEST(Status, CopiesShareTheRep) {
  Status a = Status::internal("boom");
  Status b = a;  // shared_ptr copy: cheap, same payload
  EXPECT_EQ(b.code(), StatusCode::kInternal);
  EXPECT_EQ(b.message(), a.message());
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    const char* name = status_code_name(static_cast<StatusCode>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "");
  }
}

TEST(Status, FromDiagnosticsSummarizesFirstError) {
  SourceManager sm;
  FileId f = sm.add_buffer("t.c", "uint32 x = ;\n");
  DiagnosticEngine diags(&sm);
  SourceLoc loc;
  loc.file = f;
  loc.line = 1;
  loc.column = 12;
  diags.error(loc, "expected expression");
  diags.error(loc, "second problem");
  Status s = Status::from_diagnostics(StatusCode::kParseError, diags, "parse");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("parse"), std::string::npos);
  // Summarizes the count so callers know the engine holds more detail.
  EXPECT_NE(s.message().find("2"), std::string::npos);
}

TEST(StatusOr, HoldsValueOnSuccess) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsStatusOnFailure) {
  StatusOr<std::string> v = Status::invalid_argument("bad flag");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, MoveOnlyPayloadsWork) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(CatchInternal, ConvertsInternalErrorToStatus) {
  Status s = catch_internal([] { throw InternalError("invariant broken"); });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("invariant broken"), std::string::npos);
}

TEST(CatchInternal, ConvertsForeignExceptionsToo) {
  Status s = catch_internal([] { throw std::runtime_error("third-party"); });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("third-party"), std::string::npos);
}

TEST(CatchInternal, PassesThroughOnSuccess) {
  int ran = 0;
  Status s = catch_internal([&] { ran = 1; });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(ran, 1);
}

Status needs_positive(int v) {
  if (v <= 0) return Status::invalid_argument("must be positive");
  return Status::ok_status();
}

Status uses_return_if_error(int v, bool* reached_end) {
  HLSAV_RETURN_IF_ERROR(needs_positive(v));
  *reached_end = true;
  return Status::ok_status();
}

TEST(ReturnIfError, ShortCircuitsOnError) {
  bool reached = false;
  Status s = uses_return_if_error(-1, &reached);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(reached);
  EXPECT_TRUE(uses_return_if_error(1, &reached).ok());
  EXPECT_TRUE(reached);
}

}  // namespace
}  // namespace hlsav
