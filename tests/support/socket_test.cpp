// Unix-socket line transport (support/socket.h).
#include "support/socket.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

namespace hlsav {
namespace {

std::string temp_socket_path() {
  static int counter = 0;
  return ::testing::TempDir() + "hlsav_sock_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++);
}

TEST(Socket, LineRoundTripOverUnixSocket) {
  std::string path = temp_socket_path();
  StatusOr<int> listen_fd = unix_listen(path);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().to_string();

  std::thread client([&] {
    StatusOr<int> fd = unix_connect(path);
    ASSERT_TRUE(fd.ok()) << fd.status().to_string();
    ASSERT_TRUE(send_line(*fd, "hello").ok());
    LineReader reader(*fd);
    StatusOr<std::string> reply = reader.read_line(/*timeout_ms=*/5000);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    EXPECT_EQ(*reply, "world");
    ::close(*fd);
  });

  StatusOr<int> conn = unix_accept(*listen_fd, /*timeout_ms=*/5000);
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  ASSERT_GE(*conn, 0);
  LineReader reader(*conn);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/5000);
  ASSERT_TRUE(line.ok()) << line.status().to_string();
  EXPECT_EQ(*line, "hello");
  EXPECT_TRUE(send_line(*conn, "world").ok());
  client.join();
  ::close(*conn);
  ::close(*listen_fd);
  ::unlink(path.c_str());
}

TEST(Socket, AcceptTimeoutIsAnAnswerNotAnError) {
  std::string path = temp_socket_path();
  StatusOr<int> listen_fd = unix_listen(path);
  ASSERT_TRUE(listen_fd.ok());
  StatusOr<int> conn = unix_accept(*listen_fd, /*timeout_ms=*/20);
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  EXPECT_EQ(*conn, -1);  // timeout: the caller polls its shutdown flag
  ::close(*listen_fd);
  ::unlink(path.c_str());
}

TEST(Socket, ReadBytesDeliversSizedPayloadAcrossLineBoundary) {
  std::string path = temp_socket_path();
  StatusOr<int> listen_fd = unix_listen(path);
  ASSERT_TRUE(listen_fd.ok());
  std::thread client([&] {
    StatusOr<int> fd = unix_connect(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(send_line(*fd, "header").ok());
    ASSERT_TRUE(send_bytes(*fd, "raw\npayload\nwith\nnewlines").ok());
    ::close(*fd);
  });
  StatusOr<int> conn = unix_accept(*listen_fd, 5000);
  ASSERT_TRUE(conn.ok());
  LineReader reader(*conn);
  StatusOr<std::string> header = reader.read_line(5000);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(*header, "header");
  StatusOr<std::string> payload = reader.read_bytes(25, 5000);
  ASSERT_TRUE(payload.ok()) << payload.status().to_string();
  EXPECT_EQ(*payload, "raw\npayload\nwith\nnewlines");
  client.join();
  ::close(*conn);
  ::close(*listen_fd);
  ::unlink(path.c_str());
}

TEST(Socket, PeerCloseSurfacesAsUnavailable) {
  std::string path = temp_socket_path();
  StatusOr<int> listen_fd = unix_listen(path);
  ASSERT_TRUE(listen_fd.ok());
  std::thread client([&] {
    StatusOr<int> fd = unix_connect(path);
    ASSERT_TRUE(fd.ok());
    ::close(*fd);  // vanish without a word
  });
  StatusOr<int> conn = unix_accept(*listen_fd, 5000);
  ASSERT_TRUE(conn.ok());
  client.join();
  LineReader reader(*conn);
  StatusOr<std::string> line = reader.read_line(5000);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kUnavailable);
  ::close(*conn);
  ::close(*listen_fd);
  ::unlink(path.c_str());
}

TEST(Socket, MidLineCloseIsATornFrameNotACleanEnd) {
  // The peer dies after writing half a line. A clean close with an
  // empty buffer is kUnavailable (orderly end of stream); a close with
  // a partial line buffered must surface as kIoError so callers never
  // mistake a torn frame for the peer simply being done.
  std::string path = temp_socket_path();
  StatusOr<int> listen_fd = unix_listen(path);
  ASSERT_TRUE(listen_fd.ok());
  std::thread client([&] {
    StatusOr<int> fd = unix_connect(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(send_bytes(*fd, "half a frame with no newline").ok());
    ::close(*fd);
  });
  StatusOr<int> conn = unix_accept(*listen_fd, 5000);
  ASSERT_TRUE(conn.ok());
  client.join();
  LineReader reader(*conn);
  StatusOr<std::string> line = reader.read_line(5000);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kIoError) << line.status().to_string();
  EXPECT_NE(line.status().message().find("mid-line"), std::string::npos)
      << line.status().to_string();
  EXPECT_NE(line.status().message().find("28 bytes"), std::string::npos)
      << line.status().to_string();
  ::close(*conn);
  ::close(*listen_fd);
  ::unlink(path.c_str());
}

TEST(Socket, MidLineTimeoutStaysTypedAndNamesTheBufferedBytes) {
  // A stalled peer with a partial line buffered: still kBudgetExceeded
  // (the caller may poll a stop flag and try again -- the bytes are not
  // lost), but the message says a partial line is pending.
  std::string path = temp_socket_path();
  StatusOr<int> listen_fd = unix_listen(path);
  ASSERT_TRUE(listen_fd.ok());
  StatusOr<int> client_fd = unix_connect(path);
  ASSERT_TRUE(client_fd.ok());
  StatusOr<int> conn = unix_accept(*listen_fd, 5000);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(send_bytes(*client_fd, "stalled").ok());
  LineReader reader(*conn);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/50);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kBudgetExceeded) << line.status().to_string();
  EXPECT_NE(line.status().message().find("partial line"), std::string::npos)
      << line.status().to_string();
  // The line completes on retry: nothing was dropped by the timeout.
  ASSERT_TRUE(send_line(*client_fd, " but alive").ok());
  StatusOr<std::string> whole = reader.read_line(5000);
  ASSERT_TRUE(whole.ok()) << whole.status().to_string();
  EXPECT_EQ(*whole, "stalled but alive");
  ::close(*client_fd);
  ::close(*conn);
  ::close(*listen_fd);
  ::unlink(path.c_str());
}

TEST(Socket, MidPayloadCloseNamesTheShortfall) {
  std::string path = temp_socket_path();
  StatusOr<int> listen_fd = unix_listen(path);
  ASSERT_TRUE(listen_fd.ok());
  std::thread client([&] {
    StatusOr<int> fd = unix_connect(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(send_bytes(*fd, "12345").ok());
    ::close(*fd);  // promised more, delivered 5
  });
  StatusOr<int> conn = unix_accept(*listen_fd, 5000);
  ASSERT_TRUE(conn.ok());
  client.join();
  LineReader reader(*conn);
  StatusOr<std::string> payload = reader.read_bytes(64, 5000);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kIoError) << payload.status().to_string();
  EXPECT_NE(payload.status().message().find("5 of 64 bytes"), std::string::npos)
      << payload.status().to_string();
  ::close(*conn);
  ::close(*listen_fd);
  ::unlink(path.c_str());
}

TEST(Socket, ConnectToMissingSocketFails) {
  StatusOr<int> fd = unix_connect(temp_socket_path() + "_never_bound");
  EXPECT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kIoError);
}

TEST(Socket, OverlongPathIsRejected) {
  StatusOr<int> fd = unix_listen(std::string(200, 'x'));
  EXPECT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hlsav
