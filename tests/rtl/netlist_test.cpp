// Netlist construction tests: FUs, register fan-in muxes, FSM sizing,
// pipeline stage registers, memory/stream inventory.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "rtl/netlist.h"

namespace hlsav::rtl {
namespace {

using hlsav::testing::compile;

Netlist netlist_of(hlsav::testing::Compiled& c,
                   const assertions::Options& opt = assertions::Options::ndebug()) {
  ir::Design d = c.design.clone();
  assertions::synthesize(d, opt);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  static ir::Design keep;  // keep the design alive for the netlist build
  keep = std::move(d);
  return build_netlist(keep, sch);
}

TEST(Netlist, CountsFunctionalUnits) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x + 1);
    }
  )");
  Netlist n = netlist_of(*c);
  const ProcessNetlist* p = n.find_process("f");
  ASSERT_NE(p, nullptr);
  // stream read + add + stream write (copies are wiring).
  unsigned adds = 0;
  unsigned stream_ops = 0;
  for (const FuInst& fu : p->fus) {
    if (fu.kind == ir::OpKind::kBin && fu.bin == ir::BinKind::kAdd) ++adds;
    if (fu.kind == ir::OpKind::kStreamRead || fu.kind == ir::OpKind::kStreamWrite) ++stream_ops;
  }
  EXPECT_EQ(adds, 1u);
  EXPECT_EQ(stream_ops, 2u);
}

TEST(Netlist, RegisterFaninCountsWriters) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      if (x > 5) {
        x = 5;
      }
      stream_write(out, x);
    }
  )");
  Netlist n = netlist_of(*c);
  const ProcessNetlist* p = n.find_process("f");
  ASSERT_NE(p, nullptr);
  const RegInst* xreg = nullptr;
  for (const RegInst& r : p->regs) {
    if (r.name == "x") xreg = &r;
  }
  ASSERT_NE(xreg, nullptr);
  EXPECT_EQ(xreg->fanin, 2u);  // two copy sites write x
}

TEST(Netlist, MemoriesAndRoles) {
  auto c = compile(R"(
    void f(stream_in<16> in, stream_out<16> out) {
      const uint16 rom[4] = {1, 2, 3, 4};
      uint16 buf[8];
      uint16 k;
      k = stream_read(in);
      buf[0] = rom[k & 3];
      stream_write(out, buf[0]);
    }
  )");
  Netlist n = netlist_of(*c);
  ASSERT_EQ(n.memories.size(), 2u);
  EXPECT_TRUE(n.memories[0].is_rom);
  EXPECT_EQ(n.memories[0].width, 16u);
  EXPECT_EQ(n.memories[0].size, 4u);
  EXPECT_FALSE(n.memories[1].is_rom);
}

TEST(Netlist, ReplicaMarked) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      #pragma HLS replicate
      uint32 b[16];
      uint32 x;
      x = stream_read(in);
      #pragma HLS pipeline
      for (uint32 i = 0; i < 16; i++) {
        acc = acc + b[i];
        b[i] = x;
        assert(b[i] < 500);
      }
      stream_write(out, acc);
    }
  )");
  Netlist n = netlist_of(*c, assertions::Options::optimized());
  bool replica = false;
  for (const MemInst& m : n.memories) replica |= m.is_replica;
  EXPECT_TRUE(replica);
}

TEST(Netlist, PipelineStageRegistersAccounted) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[32];
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 32; i++) {
        acc = acc + buf[i];
        buf[i] = x + i;
      }
      stream_write(out, acc);
    }
  )");
  Netlist n = netlist_of(*c);
  const ProcessNetlist* p = n.find_process("f");
  ASSERT_NE(p, nullptr);
  // The loaded value crosses a stage boundary (sync read): stage
  // registers must be non-zero.
  EXPECT_GT(p->pipeline_stage_reg_bits, 0u);
}

TEST(Netlist, DeadStreamsExcluded) {
  auto c = compile(R"(
    void p1(stream_in<32> in, stream_out<32> link) {
      stream_write(link, stream_read(in));
    }
    void p2(stream_in<32> link, stream_out<32> out) {
      stream_write(out, stream_read(link));
    }
  )");
  ir::Design d = c->design.clone();
  ir::StreamId link = d.find_process("p1")->find_port("link")->stream;
  d.connect_consumer(link, "p2", "link");
  assertions::synthesize(d, assertions::Options::ndebug());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  Netlist n = build_netlist(d, sch);
  // 4 streams were auto-created; one died in the rewire: 3 remain.
  EXPECT_EQ(n.streams.size(), 3u);
  for (const StreamInst& s : n.streams) {
    EXPECT_NE(s.name, "p2.link");  // the dead placeholder
  }
}

TEST(Netlist, DescribeListsProcesses) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      stream_write(out, stream_read(in));
    }
  )");
  Netlist n = netlist_of(*c);
  std::string s = describe(n);
  EXPECT_NE(s.find("f:"), std::string::npos);
  EXPECT_NE(s.find("states="), std::string::npos);
}

}  // namespace
}  // namespace hlsav::rtl
