// Verilog emitter smoke tests: structure, declarations, state machine.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "rtl/verilog.h"

namespace hlsav::rtl {
namespace {

using hlsav::testing::compile;

std::string emit(hlsav::testing::Compiled& c,
                 const assertions::Options& opt = assertions::Options::ndebug()) {
  ir::Design d = c.design.clone();
  assertions::synthesize(d, opt);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  return emit_verilog(d, sch);
}

const char* kSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 buf[8];
    uint32 x;
    x = stream_read(in);
    buf[0] = x;
    assert(x > 0);
    stream_write(out, buf[0] + 1);
  }
)";

TEST(Verilog, EmitsModulePerProcess) {
  auto c = compile(kSrc);
  std::string v = emit(*c, assertions::Options::optimized());
  EXPECT_NE(v.find("module f ("), std::string::npos);
  EXPECT_NE(v.find("module chk_f_a0"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, DeclaresRegistersWithWidths) {
  auto c = compile(kSrc);
  std::string v = emit(*c);
  EXPECT_NE(v.find("reg [31:0] x;"), std::string::npos);
  EXPECT_NE(v.find("reg ["), std::string::npos);
}

TEST(Verilog, EmitsMemoryModulesWithInit) {
  auto c = compile(R"(
    void f(stream_in<8> in, stream_out<8> out) {
      const uint8 lut[2] = {42, 43};
      uint8 k;
      k = stream_read(in);
      stream_write(out, lut[k & 1]);
    }
  )");
  std::string v = emit(*c);
  EXPECT_NE(v.find("module f_lut_mem"), std::string::npos);
  EXPECT_NE(v.find("mem[0] = 8'd42;"), std::string::npos);
  EXPECT_NE(v.find("mem[1] = 8'd43;"), std::string::npos);
}

TEST(Verilog, FsmCaseStructure) {
  auto c = compile(kSrc);
  std::string v = emit(*c);
  EXPECT_NE(v.find("case (state)"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

TEST(Verilog, TopLevelInstantiatesProcesses) {
  auto c = compile(kSrc);
  std::string v = emit(*c);
  EXPECT_NE(v.find("_top ("), std::string::npos);
  EXPECT_NE(v.find("u_f (.clk(clk), .rst(rst));"), std::string::npos);
}

TEST(Verilog, PipelinedLoopAnnotated) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      uint32 x;
      x = stream_read(in);
      #pragma HLS pipeline
      for (uint32 i = 0; i < 8; i++) {
        acc = acc + x;
      }
      stream_write(out, acc);
    }
  )");
  std::string v = emit(*c);
  EXPECT_NE(v.find("pipelined, II="), std::string::npos);
}

TEST(Verilog, FifoModulesForLiveStreams) {
  auto c = compile(kSrc);
  std::string v = emit(*c, assertions::Options::unoptimized());
  EXPECT_NE(v.find("module f_in_fifo"), std::string::npos);
  EXPECT_NE(v.find("module f_assert_fail_fifo"), std::string::npos);
}

}  // namespace
}  // namespace hlsav::rtl
