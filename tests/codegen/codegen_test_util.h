// Shared rig for the compiled-engine test suite: build one design +
// schedule + compiled module, run it under both engines, and assert
// every externally observable artifact -- RunResult status, cycle
// count, decoded failures, hang report, CPU-received words -- is
// bit-identical. This is the differential contract SimOptions::engine
// documents; every workload test routes through expect_engines_agree.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "codegen/engine.h"
#include "common/test_util.h"
#include "sim/simulator.h"

// Every compiled-engine test starts with this: without a host C
// compiler there is nothing to differentiate, so skip (the fallback
// paths that must work *without* a compiler don't use it).
#define HLSAV_REQUIRE_COMPILER()                                         \
  do {                                                                   \
    if (hlsav::codegen::find_compiler().empty()) {                       \
      GTEST_SKIP() << "no host C compiler on PATH (and HLSAV_CC unset)"; \
    }                                                                    \
  } while (0)

namespace hlsav::codegen {

/// Per-test-process cache directory so the suite neither reuses nor
/// pollutes the developer's real module cache.
inline const std::string& test_cache_dir() {
  static const std::string dir =
      ::testing::TempDir() + "hlsav-codegen-test-" + std::to_string(::getpid());
  return dir;
}

/// A design prepared for both engines. `compiled` is null when prepare
/// failed; tests that expect compilation assert `prep_error` is empty.
struct DiffRig {
  ir::Design design;
  sched::DesignSchedule schedule;
  sim::ExternRegistry externs;
  std::unique_ptr<CompiledDesign> compiled;
  std::string prep_error;

  void prepare_compiled() {
    PrepareOptions popt;
    popt.cache_dir = test_cache_dir();
    StatusOr<std::unique_ptr<CompiledDesign>> prep = prepare(design, schedule, popt);
    if (prep.ok()) {
      compiled = std::move(*prep);
    } else {
      prep_error = prep.status().message();
    }
  }
};

/// compile -> synthesize(aopt) -> verify -> schedule -> AOT-compile.
[[nodiscard]] inline DiffRig make_rig(const std::string& src, const assertions::Options& aopt) {
  auto c = hlsav::testing::compile(src);
  DiffRig rig;
  rig.design = c->design.clone();
  assertions::synthesize(rig.design, aopt);
  ir::verify(rig.design);
  rig.schedule = sched::schedule_design(rig.design);
  rig.prepare_compiled();
  return rig;
}

/// Everything one engine run can observe from the outside.
struct EngineRun {
  sim::RunResult result;
  std::map<std::string, std::vector<std::uint64_t>> outputs;
  bool engine_active = false;
  std::string engine_note;
  std::string rendered_trace;
};

[[nodiscard]] inline EngineRun run_engine(
    const DiffRig& rig, sim::SimEngine engine,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const std::vector<std::string>& outputs, sim::SimOptions base = {}) {
  base.engine = engine;
  if (engine != sim::SimEngine::kInterpreter && rig.compiled != nullptr) {
    base.compiled = rig.compiled->handle();
  }
  sim::Simulator s(rig.design, rig.schedule, rig.externs, base);
  for (const auto& [name, words] : feeds) s.feed(name, words);
  EngineRun er;
  er.result = s.run();
  er.engine_active = s.engine_active();
  er.engine_note = s.engine_note();
  if (base.trace) er.rendered_trace = s.render_trace();
  for (const std::string& name : outputs) er.outputs[name] = s.received(name);
  return er;
}

/// The differential contract, field by field.
inline void expect_identical(const EngineRun& a, const EngineRun& b) {
  EXPECT_EQ(a.result.status, b.result.status);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.hang_report, b.result.hang_report);
  ASSERT_EQ(a.result.failures.size(), b.result.failures.size());
  for (std::size_t i = 0; i < a.result.failures.size(); ++i) {
    EXPECT_EQ(a.result.failures[i].assertion_id, b.result.failures[i].assertion_id)
        << "failure " << i;
    EXPECT_EQ(a.result.failures[i].message, b.result.failures[i].message) << "failure " << i;
    EXPECT_EQ(a.result.failures[i].cycle, b.result.failures[i].cycle) << "failure " << i;
  }
  EXPECT_EQ(a.outputs, b.outputs);
}

/// Runs the rig under both engines and checks the full contract. The
/// compiled run must have actually engaged the compiled engine (a
/// silent fallback would make the comparison vacuous).
inline void expect_engines_agree(const DiffRig& rig,
                                 const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                                 const std::vector<std::string>& outputs,
                                 sim::SimOptions base = {}) {
  ASSERT_EQ(rig.prep_error, "");
  EngineRun interp = run_engine(rig, sim::SimEngine::kInterpreter, feeds, outputs, base);
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, outputs, base);
  EXPECT_TRUE(comp.engine_active) << "compiled engine fell back: " << comp.engine_note;
  expect_identical(interp, comp);
}

}  // namespace hlsav::codegen
