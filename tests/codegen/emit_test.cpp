// Emitter and module-cache unit tests: deterministic C emission, the
// registry/ABI symbols every module must export, decline reasons,
// content-addressed cache keys, cache hits, and corrupt-entry repair.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "codegen/codegen_test_util.h"
#include "codegen/emit.h"
#include "codegen/jit.h"

namespace hlsav::codegen {
namespace {

using assertions::Options;

const char* kSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      uint32 v;
      v = stream_read(in);
      assert(v < 1000);
      stream_write(out, v + 1);
    }
  }
)";

DiffRig lowered_rig(const std::string& src, const Options& aopt) {
  auto c = hlsav::testing::compile(src);
  DiffRig rig;
  rig.design = c->design.clone();
  assertions::synthesize(rig.design, aopt);
  ir::verify(rig.design);
  rig.schedule = sched::schedule_design(rig.design);
  return rig;
}

TEST(Emit, DeterministicSource) {
  DiffRig rig = lowered_rig(kSrc, Options::optimized());
  EmitResult a = emit_design(rig.design, rig.schedule);
  EmitResult b = emit_design(rig.design, rig.schedule);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.compiled_count(), b.compiled_count());
}

TEST(Emit, SourceExportsAbiAndRegistry) {
  DiffRig rig = lowered_rig(kSrc, Options::unoptimized());
  EmitResult e = emit_design(rig.design, rig.schedule);
  ASSERT_EQ(e.compiled_count(), 1u);
  EXPECT_EQ(e.procs[0].process, "f");
  EXPECT_TRUE(e.procs[0].compiled());
  // The loader contract: ABI stamp, entry registry, per-process symbol.
  EXPECT_NE(e.source.find("hlsav_abi"), std::string::npos);
  EXPECT_NE(e.source.find("hlsav_entries"), std::string::npos);
  EXPECT_NE(e.source.find("hlsav_entry_count"), std::string::npos);
  EXPECT_NE(e.source.find(e.procs[0].symbol), std::string::npos);
}

TEST(Emit, PipelinedLoopEmitsIterationStructure) {
  DiffRig rig = lowered_rig(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 10; i++) {
        acc = acc + x + i;
      }
      stream_write(out, acc);
    }
  )",
                            Options::ndebug());
  EmitResult e = emit_design(rig.design, rig.schedule);
  ASSERT_EQ(e.compiled_count(), 1u);
  EXPECT_NE(e.source.find("_loop"), std::string::npos);
}

TEST(Emit, WideRegisterDeclinedWithReason) {
  DiffRig rig = lowered_rig(kSrc, Options::ndebug());
  rig.design.find_process("f")->add_reg("wide_scratch", 128, false);
  EmitResult e = emit_design(rig.design, rig.schedule);
  EXPECT_EQ(e.compiled_count(), 0u);
  ASSERT_EQ(e.procs.size(), 1u);
  EXPECT_FALSE(e.procs[0].compiled());
  EXPECT_NE(e.procs[0].decline_reason.find("64"), std::string::npos)
      << e.procs[0].decline_reason;
}

TEST(Jit, ContentKeyStableAndSensitive) {
  std::string a = content_key("int x;", "/usr/bin/cc");
  EXPECT_EQ(a, content_key("int x;", "/usr/bin/cc"));
  EXPECT_NE(a, content_key("int y;", "/usr/bin/cc"));
  EXPECT_NE(a, content_key("int x;", "/usr/bin/clang"));
}

// A trivial but complete module: correct ABI stamp, empty registry.
std::string stub_module_source() {
  return "typedef unsigned int u32;\n"
         "const u32 hlsav_abi = " +
         std::to_string(sim::kCompiledAbiVersion) +
         ";\n"
         "typedef struct { const char* name; void* fn; } hlsav_entry_t;\n"
         "const hlsav_entry_t hlsav_entries[] = {{0, 0}};\n"
         "const u32 hlsav_entry_count = 0;\n";
}

TEST(Jit, SecondBuildHitsCache) {
  HLSAV_REQUIRE_COMPILER();
  CompileOptions opt;
  opt.cache_dir = test_cache_dir() + "/hit-" + std::to_string(::getpid());
  StatusOr<LoadedModule> first = compile_module(stub_module_source(), opt);
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_FALSE(first->from_cache);
  StatusOr<LoadedModule> second = compile_module(stub_module_source(), opt);
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(first->key, second->key);
  EXPECT_EQ(first->path, second->path);
}

TEST(Jit, KeepSourceLeavesGeneratedC) {
  HLSAV_REQUIRE_COMPILER();
  CompileOptions opt;
  opt.cache_dir = test_cache_dir() + "/keep-" + std::to_string(::getpid());
  opt.keep_source = true;
  StatusOr<LoadedModule> m = compile_module(stub_module_source(), opt);
  ASSERT_TRUE(m.ok()) << m.status().message();
  std::string c_path = m->path.substr(0, m->path.size() - 3) + ".c";
  EXPECT_TRUE(std::filesystem::exists(c_path)) << c_path;
}

TEST(Jit, CorruptCacheEntryIsRebuilt) {
  HLSAV_REQUIRE_COMPILER();
  CompileOptions opt;
  opt.cache_dir = test_cache_dir() + "/corrupt-" + std::to_string(::getpid());
  std::string so_path;
  {
    StatusOr<LoadedModule> m = compile_module(stub_module_source(), opt);
    ASSERT_TRUE(m.ok()) << m.status().message();
    so_path = m->path;
  }  // dlclose before stomping the file
  {
    std::ofstream out(so_path, std::ios::trunc | std::ios::binary);
    out << "not an ELF file";
  }
  StatusOr<LoadedModule> again = compile_module(stub_module_source(), opt);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_FALSE(again->from_cache);  // the bad entry was dropped and rebuilt
}

TEST(Jit, CompilerErrorSurfacesDiagnostics) {
  HLSAV_REQUIRE_COMPILER();
  CompileOptions opt;
  opt.cache_dir = test_cache_dir() + "/err-" + std::to_string(::getpid());
  StatusOr<LoadedModule> m = compile_module("this is not C at all @@@;\n", opt);
  ASSERT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("compiler exited"), std::string::npos)
      << m.status().message();
}

}  // namespace
}  // namespace hlsav::codegen
