// Compiled-vs-interpreter differential suite.
//
// The compiled engine's whole contract is "bit-identical, just
// faster": same RunResult, same cycle counts, same decoded failure
// list, same CPU-received words, same hang diagnosis. These tests
// enforce that over the paper's workloads (loopback, Triple-DES,
// edge detection), over every assertion configuration, over pipelined
// and stalling control flow, over aborts/hangs/cycle limits, over a
// randomized program family, and over fault-campaign coverage tables.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/appbuild.h"
#include "apps/bmp.h"
#include "apps/des.h"
#include "apps/edge.h"
#include "codegen/codegen_test_util.h"
#include "sim/campaign.h"
#include "support/str.h"

namespace hlsav::codegen {
namespace {

using assertions::Options;
using hlsav::testing::compile;

const char* kLoopbackSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      uint32 v;
      v = stream_read(in);
      assert(v < 1000);
      stream_write(out, v + 1);
    }
  }
)";

TEST(Differential, LoopbackAcrossAssertionConfigs) {
  HLSAV_REQUIRE_COMPILER();
  std::vector<Options> configs;
  configs.push_back(Options::ndebug());
  configs.push_back(Options::unoptimized());
  configs.push_back(Options::optimized());
  Options par = Options::unoptimized();
  par.parallelize = true;
  configs.push_back(par);
  for (const Options& o : configs) {
    DiffRig rig = make_rig(kLoopbackSrc, o);
    expect_engines_agree(rig, {{"f.in", {10, 20, 30, 40}}}, {"f.out"});
  }
}

TEST(Differential, FailingAssertionSameFailureSameCycle) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(kLoopbackSrc, Options::unoptimized());
  // Third word trips the assert; both engines must abort on the same
  // cycle with the same rendered ANSI-C message.
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20, 3000, 40}}};
  expect_engines_agree(rig, feeds, {"f.out"});
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, {"f.out"});
  EXPECT_EQ(comp.result.status, sim::RunStatus::kAborted);
  ASSERT_EQ(comp.result.failures.size(), 1u);
}

TEST(Differential, NabortCollectsIdenticalFailureList) {
  HLSAV_REQUIRE_COMPILER();
  Options o = Options::unoptimized();
  o.nabort = true;
  DiffRig rig = make_rig(kLoopbackSrc, o);
  // Two of four words fail; NABORT keeps going, so both engines must
  // collect the same two failures in the same order.
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {5000, 20, 3000, 40}}};
  expect_engines_agree(rig, feeds, {"f.out"});
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, {"f.out"});
  EXPECT_EQ(comp.result.status, sim::RunStatus::kCompleted);
  EXPECT_EQ(comp.result.failures.size(), 2u);
}

TEST(Differential, ArithmeticTorture) {
  HLSAV_REQUIRE_COMPILER();
  // Division, remainder, shifts, comparisons and narrow signed types:
  // every generated C helper (hlsav_sdiv/srem/shl/lshr/ashr/sx) against
  // the interpreter's BitVector semantics.
  DiffRig rig = make_rig(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        uint32 v;
        v = stream_read(in);
        uint32 q;
        q = v / 7;
        uint32 r;
        r = v % 7;
        int32 s;
        s = 100 - v;
        int32 sq;
        sq = s / 3;
        int32 sr;
        sr = s % 3;
        uint32 sh;
        sh = (v << 3) ^ (v >> 2);
        uint32 cmp;
        cmp = 0;
        if (s < sq) { cmp = cmp + 1; }
        if (v >= q) { cmp = cmp + 2; }
        int16 narrow;
        narrow = s * 3;
        stream_write(out, q + r + sh + cmp + (sq ^ sr) + narrow);
      }
    }
  )",
                         Options::ndebug());
  expect_engines_agree(rig, {{"f.in", {0, 1, 7, 99, 250, 4294967295ull & 0xffffffffull}}},
                       {"f.out"});
}

TEST(Differential, MemoryTraffic) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[16];
      for (uint32 i = 0; i < 16; i++) {
        buf[i] = stream_read(in) * 3;
      }
      uint32 acc;
      acc = 0;
      for (uint32 j = 0; j < 16; j++) {
        acc = acc + buf[15 - j];
        assert(acc >= buf[15 - j]);
      }
      stream_write(out, acc);
    }
  )",
                         Options::optimized());
  std::vector<std::uint64_t> input;
  for (std::uint64_t i = 0; i < 16; ++i) input.push_back(i * 17 + 1);
  expect_engines_agree(rig, {{"f.in", input}}, {"f.out"});
}

TEST(Differential, PipelinedLoopCycleParity) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 25; i++) {
        acc = acc + x + i;
      }
      stream_write(out, acc);
    }
  )",
                         Options::unoptimized());
  expect_engines_agree(rig, {{"f.in", {3}}}, {"f.out"});
}

/// Rewires producer.link -> consumer.link so the consumer's pipelined
/// stream reads genuinely stall mid-iteration on the producer's pace.
DiffRig make_linked_rig(const std::string& src, const Options& aopt) {
  auto c = compile(src);
  DiffRig rig;
  rig.design = c->design.clone();
  ir::StreamId link = rig.design.find_process("producer")->find_port("link")->stream;
  rig.design.connect_consumer(link, "consumer", "link");
  assertions::synthesize(rig.design, aopt);
  ir::verify(rig.design);
  rig.schedule = sched::schedule_design(rig.design);
  rig.prepare_compiled();
  return rig;
}

TEST(Differential, PipelinedConsumerStallsOnProducer) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_linked_rig(R"(
    void producer(stream_in<32> in, stream_out<32> link) {
      uint32 seed;
      seed = stream_read(in);
      for (uint32 i = 0; i < 12; i++) {
        stream_write(link, seed + i * i);
      }
    }
    void consumer(stream_in<32> link, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 12; i++) {
        acc = acc + stream_read(link);
      }
      stream_write(out, acc);
    }
  )",
                                Options::unoptimized());
  expect_engines_agree(rig, {{"producer.in", {7}}}, {"consumer.out"});
}

TEST(Differential, TimingAssertionParity) {
  HLSAV_REQUIRE_COMPILER();
  const char* src = R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 n;
      n = stream_read(in);
      assert_cycles(2);
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < n; i++) {
        acc = acc + i;
      }
      assert_cycles(40);
      stream_write(out, acc);
    }
  )";
  DiffRig rig = make_rig(src, Options::unoptimized());
  // Small n: both timing windows hold. Large n: the 40-cycle budget
  // blows, and both engines must report it at the same local time.
  expect_engines_agree(rig, {{"f.in", {3}}}, {"f.out"});
  expect_engines_agree(rig, {{"f.in", {60}}}, {"f.out"});
}

TEST(Differential, StarvationHangParity) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(kLoopbackSrc, Options::ndebug());
  // Two words fed, four reads: the run starves. The structured hang
  // diagnosis (process, stream, cycle, waits-on) must match too --
  // expect_engines_agree compares the rendered report.
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20}}};
  expect_engines_agree(rig, feeds, {"f.out"});
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, {"f.out"});
  EXPECT_EQ(comp.result.status, sim::RunStatus::kHung);
  EXPECT_FALSE(comp.result.hang_report.empty());
}

TEST(Differential, CycleLimitParity) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < 100000; i++) {
        acc = acc + x;
      }
      stream_write(out, acc);
    }
  )",
                        Options::ndebug());
  sim::SimOptions base;
  base.max_cycles = 500;  // livelock backstop fires mid-loop
  expect_engines_agree(rig, {{"f.in", {1}}}, {"f.out"}, base);
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, {{"f.in", {1}}}, {"f.out"}, base);
  EXPECT_EQ(comp.result.status, sim::RunStatus::kHung);
}

TEST(Differential, PipelinedCycleLimitParity) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 100000; i++) {
        acc = acc + x;
      }
      stream_write(out, acc);
    }
  )",
                        Options::ndebug());
  sim::SimOptions base;
  base.max_cycles = 300;
  expect_engines_agree(rig, {{"f.in", {1}}}, {"f.out"}, base);
}

/// Same family as the integration equivalence suite: arithmetic, array
/// traffic, data-dependent control flow and always-true assertions.
std::string generated_program(std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::ostringstream os;
  os << "void f(stream_in<32> in, stream_out<32> out) {\n"
     << "  uint32 buf[16];\n"
     << "  uint32 acc;\n"
     << "  acc = 0;\n"
     << "  for (uint32 i = 0; i < 8; i++) {\n"
     << "    uint32 v;\n"
     << "    v = stream_read(in);\n"
     << "    assert(v > 0);\n";
  const char* ops[] = {"+", "^", "|"};
  for (int s = 0; s < 3; ++s) {
    os << "    acc = acc " << ops[rng.next_below(3)] << " (v "
       << (rng.next_below(2) == 0 ? "+" : "^") << " " << 1 + rng.next_below(9) << ");\n";
  }
  os << "    buf[i & 15] = acc;\n";
  if (rng.next_below(2) == 0) {
    os << "    if (acc > " << 100 + rng.next_below(400) << ") {\n"
       << "      acc = acc - " << 1 + rng.next_below(50) << ";\n"
       << "    }\n";
  }
  os << "    assert(buf[i & 15] == acc || acc != buf[i & 15] - 0);\n"
     << "    stream_write(out, acc + buf[i & 15]);\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

class DifferentialProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialProperty, GeneratedProgramsAgree) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(generated_program(GetParam()), Options::optimized());
  SplitMix64 rng(GetParam() * 7 + 1);
  std::vector<std::uint64_t> input;
  for (int i = 0; i < 8; ++i) input.push_back(1 + rng.next_below(50));
  expect_engines_agree(rig, {{"f.in", input}}, {"f.out"});
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------- paper workloads --

TEST(Differential, TripleDesDecryptor) {
  HLSAV_REQUIRE_COMPILER();
  std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                       0x456789ABCDEF0123ull};
  auto app = apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(keys));
  DiffRig rig;
  rig.design = app->design.clone();
  assertions::synthesize(rig.design, Options::optimized());
  ir::verify(rig.design);
  rig.schedule = sched::schedule_design(rig.design);
  rig.prepare_compiled();

  std::vector<std::uint64_t> blocks = apps::des::pack_text("Differential ABV");
  std::vector<std::uint64_t> cipher;
  for (std::uint64_t b : blocks) cipher.push_back(apps::des::triple_des_encrypt(b, keys));
  std::map<std::string, std::vector<std::uint64_t>> feeds{
      {"des3.in", apps::des::to_word_stream(cipher)}};
  expect_engines_agree(rig, feeds, {"des3.txt"});

  // And the decrypted text is actually right (not just "both wrong").
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, {"des3.txt"});
  std::string out;
  for (std::uint64_t c : comp.outputs["des3.txt"]) out.push_back(static_cast<char>(c));
  EXPECT_EQ(out, "Differential ABV");
}

TEST(Differential, EdgeDetector) {
  HLSAV_REQUIRE_COMPILER();
  auto app = apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(16, 12));
  DiffRig rig;
  rig.design = app->design.clone();
  assertions::synthesize(rig.design, Options::optimized());
  ir::verify(rig.design);
  rig.schedule = sched::schedule_design(rig.design);
  rig.prepare_compiled();

  apps::img::Image input = apps::img::synthetic_image(16, 12, 11);
  std::map<std::string, std::vector<std::uint64_t>> feeds{
      {"edge.in", apps::edge::to_word_stream(input)}};
  expect_engines_agree(rig, feeds, {"edge.out"});

  // Wrong-size image: the paper's Table 2 abort scenario, under both
  // engines, with identical failure text.
  apps::img::Image wrong = apps::img::synthetic_image(24, 12, 11);
  std::map<std::string, std::vector<std::uint64_t>> bad{
      {"edge.in", apps::edge::to_word_stream(wrong)}};
  expect_engines_agree(rig, bad, {"edge.out"});
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, bad, {"edge.out"});
  EXPECT_EQ(comp.result.status, sim::RunStatus::kAborted);
}

// ------------------------------------------- campaign coverage parity --

TEST(Differential, CampaignCoverageTablesIdentical) {
  HLSAV_REQUIRE_COMPILER();
  // A campaign with the compiled engine attached runs its golden pass
  // compiled and every faulted site interpreted (fault injection makes
  // the engine decline per-run). The classification table, coverage
  // attribution and cycle columns must match a fully interpreted
  // campaign byte for byte.
  DiffRig rig = make_rig(kLoopbackSrc, Options::optimized());
  ASSERT_EQ(rig.prep_error, "");
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20, 30, 40}}};

  sim::CampaignOptions interp_opt;
  interp_opt.max_faults = 10;
  interp_opt.threads = 1;
  sim::CampaignReport interp =
      sim::run_campaign(rig.design, rig.schedule, rig.externs, feeds, interp_opt);

  sim::CampaignOptions comp_opt = interp_opt;
  comp_opt.sim.engine = sim::SimEngine::kAuto;
  comp_opt.sim.compiled = rig.compiled->handle();
  sim::CampaignReport comp =
      sim::run_campaign(rig.design, rig.schedule, rig.externs, feeds, comp_opt);

  EXPECT_EQ(interp.golden_cycles, comp.golden_cycles);
  ASSERT_EQ(interp.results.size(), comp.results.size());
  for (std::size_t i = 0; i < interp.results.size(); ++i) {
    EXPECT_EQ(interp.results[i].outcome, comp.results[i].outcome) << "site " << i;
    EXPECT_EQ(interp.results[i].cycles, comp.results[i].cycles) << "site " << i;
    EXPECT_EQ(interp.results[i].detected_by, comp.results[i].detected_by) << "site " << i;
  }
  EXPECT_EQ(interp.render(rig.design), comp.render(rig.design));
}

}  // namespace
}  // namespace hlsav::codegen
