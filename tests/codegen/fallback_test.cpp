// The graceful-fallback contract: a compiled-engine request must never
// turn a runnable design into an error. Whatever goes wrong -- no host
// compiler, unwritable cache, a construct codegen declines, an armed
// observability feature that needs interpreter hooks -- the simulator
// interprets, reports why in engine_note(), and produces the exact
// result the interpreter always produced. The hlsavc driver maps the
// same contract onto the CLI: a logged reason on stderr, exit code
// unchanged.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/codegen_test_util.h"
#include "metrics/profile.h"
#include "sim/fault.h"
#include "trace/trace.h"
#include "trace/vcd.h"

#ifndef HLSAVC_PATH
#define HLSAVC_PATH "hlsavc"
#endif

namespace hlsav::codegen {
namespace {

using assertions::Options;

const char* kSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      uint32 v;
      v = stream_read(in);
      assert(v < 1000);
      stream_write(out, v + 1);
    }
  }
)";

// --------------------------------------------- prepare()-level errors --

TEST(Fallback, MissingCompilerIsAStatusNotACrash) {
  DiffRig rig = make_rig(kSrc, Options::unoptimized());
  PrepareOptions popt;
  popt.compiler = "/nonexistent/hlsav-cc-for-tests";
  popt.cache_dir = test_cache_dir() + "/missing-cc";
  StatusOr<std::unique_ptr<CompiledDesign>> prep = prepare(rig.design, rig.schedule, popt);
  ASSERT_FALSE(prep.ok());
  EXPECT_NE(prep.status().message().find("compiler"), std::string::npos)
      << prep.status().message();
}

TEST(Fallback, UnwritableCacheDirIsAStatusNotACrash) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(kSrc, Options::unoptimized());
  PrepareOptions popt;
  // /proc rejects mkdir for everyone, root included.
  popt.cache_dir = "/proc/hlsav-definitely-not-writable/cache";
  StatusOr<std::unique_ptr<CompiledDesign>> prep = prepare(rig.design, rig.schedule, popt);
  ASSERT_FALSE(prep.ok());
  EXPECT_NE(prep.status().message().find("cache"), std::string::npos) << prep.status().message();
}

TEST(Fallback, WideRegisterDeclinesWithReason) {
  // A >64-bit register is outside the compiled ABI; codegen must
  // decline the process (here: every process, so prepare errors) and
  // say which construct it balked at.
  auto c = hlsav::testing::compile(kSrc);
  DiffRig rig;
  rig.design = c->design.clone();
  assertions::synthesize(rig.design, Options::ndebug());
  ir::verify(rig.design);
  rig.schedule = sched::schedule_design(rig.design);
  rig.design.find_process("f")->add_reg("wide_scratch", 128, false);
  PrepareOptions popt;
  popt.cache_dir = test_cache_dir();
  StatusOr<std::unique_ptr<CompiledDesign>> prep = prepare(rig.design, rig.schedule, popt);
  ASSERT_FALSE(prep.ok());
  EXPECT_NE(prep.status().message().find("64"), std::string::npos) << prep.status().message();
}

// ------------------------------------- simulator-level fallback paths --

TEST(Fallback, CompiledRequestWithoutHandleInterprets) {
  DiffRig rig = make_rig(kSrc, Options::unoptimized());
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20, 30, 40}}};
  // No handle attached at all: run_engine leaves base.compiled null
  // when rig.compiled is null, but here we force the situation even if
  // a compiler exists by not preparing a module.
  DiffRig bare;
  bare.design = rig.design.clone();
  bare.schedule = sched::schedule_design(bare.design);
  EngineRun interp = run_engine(bare, sim::SimEngine::kInterpreter, feeds, {"f.out"});
  EngineRun comp = run_engine(bare, sim::SimEngine::kCompiled, feeds, {"f.out"});
  EXPECT_FALSE(comp.engine_active);
  EXPECT_NE(comp.engine_note.find("no compiled design"), std::string::npos) << comp.engine_note;
  expect_identical(interp, comp);
  // kAuto without a handle is the quiet everyday path: interpret, no
  // complaint needed but a note is still recorded.
  EngineRun aut = run_engine(bare, sim::SimEngine::kAuto, feeds, {"f.out"});
  EXPECT_FALSE(aut.engine_active);
  expect_identical(interp, aut);
}

TEST(Fallback, MixedDesignCompilesWhatItCanInterpretsTheRest) {
  HLSAV_REQUIRE_COMPILER();
  // Two processes; one gets a >64-bit scratch register post-schedule,
  // so codegen declines it. prepare() must still succeed, the run must
  // execute the good process compiled and the wide one interpreted,
  // and the results must match full interpretation.
  auto c = hlsav::testing::compile(R"(
    void producer(stream_in<32> in, stream_out<32> link) {
      for (uint32 i = 0; i < 6; i++) {
        stream_write(link, stream_read(in) * 2);
      }
    }
    void consumer(stream_in<32> link, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        stream_write(out, stream_read(link) + 1);
      }
    }
  )");
  DiffRig rig;
  rig.design = c->design.clone();
  ir::StreamId link = rig.design.find_process("producer")->find_port("link")->stream;
  rig.design.connect_consumer(link, "consumer", "link");
  assertions::synthesize(rig.design, Options::ndebug());
  ir::verify(rig.design);
  rig.schedule = sched::schedule_design(rig.design);
  rig.design.find_process("consumer")->add_reg("wide_scratch", 96, false);
  rig.prepare_compiled();
  ASSERT_EQ(rig.prep_error, "");
  ASSERT_NE(rig.compiled, nullptr);

  bool saw_decline = false;
  for (const ProcEmit& pe : rig.compiled->procs()) {
    if (pe.process == "consumer") {
      EXPECT_FALSE(pe.compiled());
      EXPECT_FALSE(pe.decline_reason.empty());
      saw_decline = true;
    }
    if (pe.process == "producer") EXPECT_TRUE(pe.compiled());
  }
  EXPECT_TRUE(saw_decline);

  std::map<std::string, std::vector<std::uint64_t>> feeds{{"producer.in", {1, 2, 3, 4, 5, 6}}};
  EngineRun interp = run_engine(rig, sim::SimEngine::kInterpreter, feeds, {"consumer.out"});
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, {"consumer.out"});
  EXPECT_TRUE(comp.engine_active) << comp.engine_note;
  expect_identical(interp, comp);
}

TEST(Fallback, TraceArmedDeclinesAndTracesIdentically) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(kSrc, Options::unoptimized());
  ASSERT_EQ(rig.prep_error, "");
  sim::SimOptions base;
  base.trace = true;
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20, 30, 40}}};
  EngineRun interp = run_engine(rig, sim::SimEngine::kInterpreter, feeds, {"f.out"}, base);
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, {"f.out"}, base);
  EXPECT_FALSE(comp.engine_active);
  EXPECT_NE(comp.engine_note.find("trace"), std::string::npos) << comp.engine_note;
  expect_identical(interp, comp);
  EXPECT_EQ(interp.rendered_trace, comp.rendered_trace);
  EXPECT_FALSE(comp.rendered_trace.empty());
}

TEST(Fallback, ElaArmedDeclinesAndVcdBytesIdentical) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(kSrc, Options::unoptimized());
  ASSERT_EQ(rig.prep_error, "");
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20, 30, 40}}};

  auto vcd_of = [&](sim::SimEngine engine, bool* active, std::string* note) {
    trace::TraceEngine ela(rig.design);
    sim::SimOptions base;
    base.ela = &ela;
    EngineRun er = run_engine(rig, engine, feeds, {"f.out"}, base);
    *active = er.engine_active;
    *note = er.engine_note;
    trace::VcdWriter w(rig.design, ela.config().filter);
    std::ostringstream os;
    w.write(os, ela.window());
    return os.str();
  };

  bool active = false;
  std::string note;
  std::string interp_vcd = vcd_of(sim::SimEngine::kInterpreter, &active, &note);
  EXPECT_FALSE(active);
  std::string comp_vcd = vcd_of(sim::SimEngine::kCompiled, &active, &note);
  EXPECT_FALSE(active);
  EXPECT_NE(note.find("ELA"), std::string::npos) << note;
  EXPECT_FALSE(interp_vcd.empty());
  EXPECT_EQ(interp_vcd, comp_vcd);
}

TEST(Fallback, ProfilerArmedDeclines) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(kSrc, Options::unoptimized());
  ASSERT_EQ(rig.prep_error, "");
  metrics::Profiler prof(rig.design, rig.schedule);
  sim::SimOptions base;
  base.profile = &prof;
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20, 30, 40}}};
  EngineRun comp = run_engine(rig, sim::SimEngine::kCompiled, feeds, {"f.out"}, base);
  EXPECT_FALSE(comp.engine_active);
  EXPECT_NE(comp.engine_note.find("profiler"), std::string::npos) << comp.engine_note;
  EXPECT_EQ(comp.result.status, sim::RunStatus::kCompleted);
}

TEST(Fallback, FaultInjectionArmedDeclinesWithIdenticalResult) {
  HLSAV_REQUIRE_COMPILER();
  DiffRig rig = make_rig(kSrc, Options::unoptimized());
  ASSERT_EQ(rig.prep_error, "");
  ir::StreamId out = rig.design.find_process("f")->find_port("out")->stream;
  std::map<std::string, std::vector<std::uint64_t>> feeds{{"f.in", {10, 20, 30, 40}}};

  auto faulted = [&](sim::SimEngine engine) {
    sim::SimOptions base;
    base.faults.add(sim::FaultSpec::stream_drop(out, 1));
    return run_engine(rig, engine, feeds, {"f.out"}, base);
  };
  EngineRun interp = faulted(sim::SimEngine::kInterpreter);
  EngineRun comp = faulted(sim::SimEngine::kCompiled);
  EXPECT_FALSE(comp.engine_active);
  EXPECT_NE(comp.engine_note.find("fault"), std::string::npos) << comp.engine_note;
  expect_identical(interp, comp);
}

// ----------------------------------------------- CLI fallback contract --

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CmdResult run_cmd(const std::string& env_and_args) {
  std::string cmd = env_and_args + " 2>&1";
  std::array<char, 4096> buf{};
  CmdResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    r.output += buf.data();
  }
  r.exit_code = WEXITSTATUS(pclose(pipe));
  return r;
}

TEST(Fallback, CliCompiledEngineWithoutCompilerExitsZero) {
  // The satellite contract verbatim: missing cc falls back to the
  // interpreter with a logged reason -- never an error exit.
  const std::string src_path =
      ::testing::TempDir() + "hlsav-fallback-" + std::to_string(::getpid()) + ".c";
  {
    std::ofstream out(src_path);
    out << kSrc;
  }
  CmdResult r = run_cmd(std::string("HLSAV_CC=/nonexistent/hlsav-cc ") + HLSAVC_PATH +
                        " simulate " + src_path + " --engine=compiled --feed f.in=10,20,30,40");
  ::unlink(src_path.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("interpreting"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("11"), std::string::npos) << r.output;
}

}  // namespace
}  // namespace hlsav::codegen
