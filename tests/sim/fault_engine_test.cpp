// FaultEngine: site enumeration determinism and the observable effect
// of each fault kind, both at the query-hook level and end-to-end
// through the simulator.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
};

H make(const std::string& src, const assertions::Options& aopt = assertions::Options::ndebug()) {
  auto c = compile(src);
  H h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, aopt);
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  return h;
}

const char* kEchoSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 ram[8];
    for (uint32 i = 0; i < 4; i++) {
      uint32 v = stream_read(in);
      ram[i] = v;
      stream_write(out, ram[i]);
    }
  }
)";

TEST(FaultEngine, EnumerationIsDeterministicAndDenselyNumbered) {
  H h = make(kEchoSrc, assertions::Options::optimized());
  std::vector<FaultSpec> a = enumerate_fault_sites(h.design, h.schedule);
  std::vector<FaultSpec> b = enumerate_fault_sites(h.design, h.schedule);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].describe(h.design), b[i].describe(h.design));
  }
}

TEST(FaultEngine, StreamHookDropDupAndStuck) {
  FaultEngine e;
  e.add(FaultSpec::stream_drop(ir::StreamId{2}, 1));
  BitVector v = BitVector::from_u64(32, 7);
  EXPECT_EQ(e.on_stream_write(ir::StreamId{2}, 0, v), FaultEngine::StreamAction::kPass);
  EXPECT_EQ(e.on_stream_write(ir::StreamId{2}, 1, v), FaultEngine::StreamAction::kDrop);
  EXPECT_EQ(e.on_stream_write(ir::StreamId{3}, 1, v), FaultEngine::StreamAction::kPass);

  FaultEngine dup;
  dup.add(FaultSpec::stream_dup(ir::StreamId{2}, 0));
  EXPECT_EQ(dup.on_stream_write(ir::StreamId{2}, 0, v), FaultEngine::StreamAction::kDup);

  FaultEngine stuck;
  stuck.add(FaultSpec::stream_stuck(ir::StreamId{2}, 1, 0xAB));
  BitVector w = BitVector::from_u64(32, 7);
  EXPECT_EQ(stuck.on_stream_write(ir::StreamId{2}, 0, w), FaultEngine::StreamAction::kPass);
  EXPECT_EQ(w.to_u64(), 7u);  // before the fault window: untouched
  EXPECT_EQ(stuck.on_stream_write(ir::StreamId{2}, 5, w), FaultEngine::StreamAction::kPass);
  EXPECT_EQ(w.to_u64(), 0xABu);  // from word 1 on: replaced
}

TEST(FaultEngine, BramHooksFlipAndStick) {
  FaultEngine e;
  e.add(FaultSpec::bram_bit_flip(ir::MemId{0}, 3));
  BitVector v = BitVector::from_u64(32, 0);
  e.on_bram_write(ir::MemId{0}, 5, v);
  EXPECT_EQ(v.to_u64(), 8u);
  e.on_bram_write(ir::MemId{1}, 5, v);  // other memory: untouched
  EXPECT_EQ(v.to_u64(), 8u);

  FaultEngine stuck;
  FaultSpec f = FaultSpec::bram_stuck_at(ir::MemId{0}, 0, true);
  f.addr_lo = 2;
  f.addr_hi = 3;
  stuck.add(f);
  BitVector w = BitVector::from_u64(32, 0);
  stuck.on_bram_write(ir::MemId{0}, 1, w);  // outside the address range
  EXPECT_EQ(w.to_u64(), 0u);
  stuck.on_bram_write(ir::MemId{0}, 2, w);
  EXPECT_EQ(w.to_u64(), 1u);
}

TEST(FaultEngine, FsmAndChannelHooks) {
  FaultEngine e;
  e.add(FaultSpec::fsm_skip_block("p", ir::BlockId{2}));
  e.add(FaultSpec::fsm_stuck_branch("p", ir::BlockId{3}, false));
  e.add(FaultSpec::channel_corrupt(1, 4));
  EXPECT_TRUE(e.skip_block("p", ir::BlockId{2}));
  EXPECT_FALSE(e.skip_block("p", ir::BlockId{3}));
  EXPECT_FALSE(e.skip_block("q", ir::BlockId{2}));
  const bool* forced = e.forced_branch("p", ir::BlockId{3});
  ASSERT_NE(forced, nullptr);
  EXPECT_FALSE(*forced);
  EXPECT_EQ(e.forced_branch("p", ir::BlockId{2}), nullptr);

  BitVector v = BitVector::from_u64(32, 0);
  e.on_channel_word(0, v);
  EXPECT_EQ(v.to_u64(), 0u);
  e.on_channel_word(1, v);
  EXPECT_EQ(v.to_u64(), 16u);
}

TEST(FaultEngine, StreamDropChangesReceivedWords) {
  H h = make(kEchoSrc);
  ir::StreamId out = h.design.find_process("f")->find_port("out")->stream;

  SimOptions so;
  so.faults.add(FaultSpec::stream_drop(out, 1));
  Simulator s(h.design, h.schedule, h.externs, so);
  s.feed("f.in", {10, 20, 30, 40});
  RunResult r = s.run();
  ASSERT_EQ(r.status, RunStatus::kCompleted) << r.hang_report;
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{10, 30, 40}));
}

TEST(FaultEngine, BramFaultCorruptsReadBack) {
  H h = make(kEchoSrc);
  ASSERT_FALSE(h.design.memories.empty());

  SimOptions so;
  so.faults.add(FaultSpec::bram_bit_flip(ir::MemId{0}, 7));
  Simulator s(h.design, h.schedule, h.externs, so);
  s.feed("f.in", {1, 2, 3, 4});
  RunResult r = s.run();
  ASSERT_EQ(r.status, RunStatus::kCompleted) << r.hang_report;
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{129, 130, 131, 132}));
}

TEST(FaultEngine, EmptyEngineLeavesRunIdentical) {
  H h = make(kEchoSrc);
  auto run = [&](SimOptions so) {
    Simulator s(h.design, h.schedule, h.externs, so);
    s.feed("f.in", {10, 20, 30, 40});
    RunResult r = s.run();
    EXPECT_EQ(r.status, RunStatus::kCompleted);
    return std::make_pair(r.cycles, s.received("f.out"));
  };
  auto base = run({});
  SimOptions with_engine;  // engine constructed but empty: must cost nothing
  auto faulted = run(with_engine);
  EXPECT_EQ(base, faulted);
}

}  // namespace
}  // namespace hlsav::sim
