// Simulator edge cases: FIFO backpressure, cycle limits, wide values,
// multi-process fairness, and feed/receive plumbing.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/simulator.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
  SimOptions opts;
};

H make(const std::string& src, const assertions::Options& aopt = assertions::Options::ndebug()) {
  auto c = compile(src);
  H h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, aopt);
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  return h;
}

TEST(SimEdge, FifoBackpressureBlocksProducer) {
  // The producer bursts 64 words into a depth-16 link before the
  // consumer pops any; backpressure must stall it, not lose data.
  auto c = compile(R"(
    void producer(stream_in<32> in, stream_out<32> link) {
      uint32 seed;
      seed = stream_read(in);
      for (uint32 i = 0; i < 64; i++) {
        stream_write(link, seed + i);
      }
    }
    void consumer(stream_in<32> link, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < 64; i++) {
        acc = acc + stream_read(link);
      }
      stream_write(out, acc);
    }
  )");
  ir::Design d = c->design.clone();
  ir::StreamId link = d.find_process("producer")->find_port("link")->stream;
  d.connect_consumer(link, "consumer", "link");
  assertions::synthesize(d, assertions::Options::ndebug());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  ExternRegistry ext;
  Simulator s(d, sch, ext, {});
  s.feed("producer.in", {100});
  RunResult r = s.run();
  ASSERT_EQ(r.status, RunStatus::kCompleted) << r.hang_report;
  // sum(100 + i) for i in 0..63 = 6400 + 2016.
  EXPECT_EQ(s.received("consumer.out"), (std::vector<std::uint64_t>{8416}));
}

TEST(SimEdge, CycleLimitStopsRunawayLoop) {
  H h = make(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      while (1) {
        x = x + 1;
      }
    }
  )");
  h.opts.max_cycles = 10'000;
  Simulator s(h.design, h.schedule, h.externs, h.opts);
  s.feed("f.in", {1});
  RunResult r = s.run();
  EXPECT_EQ(r.status, RunStatus::kHung);
  EXPECT_NE(r.hang_report.find("cycle limit"), std::string::npos);
}

TEST(SimEdge, SixtyFourBitValues) {
  H h = make(R"(
    void f(stream_in<64> in, stream_out<64> out) {
      uint64 v;
      v = stream_read(in);
      stream_write(out, v + 1);
    }
  )");
  Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("f.in", {0xfffffffffffffffeull});
  RunResult r = s.run();
  ASSERT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{0xffffffffffffffffull}));
}

TEST(SimEdge, OverWideFeedIsRejected) {
  // Silent truncation would let a bad harness input masquerade as a
  // hardware fault; feed() must reject values that do not fit.
  H h = make(R"(
    void f(stream_in<8> in, stream_out<8> out) {
      stream_write(out, stream_read(in));
    }
  )");
  Simulator s(h.design, h.schedule, h.externs, {});
  EXPECT_THROW(s.feed("f.in", {0x1ff}), InternalError);  // 9 bits into 8
  s.feed("f.in", {0xff});  // exact width still fits
  (void)s.run();
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{0xff}));
}

TEST(SimEdge, ThreeStageChainOrdering) {
  auto c = compile(R"(
    void s0(stream_in<32> in, stream_out<32> l0) {
      for (uint32 i = 0; i < 4; i++) { stream_write(l0, stream_read(in) + 1); }
    }
    void s1(stream_in<32> l0, stream_out<32> l1) {
      for (uint32 i = 0; i < 4; i++) { stream_write(l1, stream_read(l0) * 2); }
    }
    void s2(stream_in<32> l1, stream_out<32> out) {
      for (uint32 i = 0; i < 4; i++) { stream_write(out, stream_read(l1) + 10); }
    }
  )");
  ir::Design d = c->design.clone();
  d.connect_consumer(d.find_process("s0")->find_port("l0")->stream, "s1", "l0");
  d.connect_consumer(d.find_process("s1")->find_port("l1")->stream, "s2", "l1");
  assertions::synthesize(d, assertions::Options::ndebug());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  ExternRegistry ext;
  Simulator s(d, sch, ext, {});
  s.feed("s0.in", {1, 2, 3, 4});
  RunResult r = s.run();
  ASSERT_EQ(r.status, RunStatus::kCompleted) << r.hang_report;
  EXPECT_EQ(s.received("s2.out"), (std::vector<std::uint64_t>{14, 16, 18, 20}));
}

TEST(SimEdge, DownstreamTimestampsRespectProducerClock) {
  // The consumer's completion time cannot precede the producer's send
  // times: local clocks must couple through FIFO entry stamps.
  auto c = compile(R"(
    void slow(stream_in<32> in, stream_out<32> link) {
      uint32 acc;
      acc = stream_read(in);
      for (uint32 i = 0; i < 50; i++) {
        acc = acc + i;
      }
      stream_write(link, acc);
    }
    void fast(stream_in<32> link, stream_out<32> out) {
      stream_write(out, stream_read(link));
    }
  )");
  ir::Design d = c->design.clone();
  d.connect_consumer(d.find_process("slow")->find_port("link")->stream, "fast", "link");
  assertions::synthesize(d, assertions::Options::ndebug());
  sched::DesignSchedule sch = sched::schedule_design(d);
  ExternRegistry ext;
  Simulator s(d, sch, ext, {});
  s.feed("slow.in", {1});
  RunResult r = s.run();
  ASSERT_EQ(r.status, RunStatus::kCompleted);
  // The 50-iteration loop costs at least 50 cycles; `fast` cannot have
  // finished earlier than that.
  EXPECT_GE(r.cycles, 50u);
}

TEST(SimEdge, FeedUnknownStreamThrows) {
  H h = make(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      stream_write(out, stream_read(in));
    }
  )");
  Simulator s(h.design, h.schedule, h.externs, {});
  EXPECT_THROW(s.feed("nope.in", {1}), InternalError);
}

TEST(SimEdge, UnboundExternThrows) {
  H h = make(R"(
    extern uint32 mystery(uint32 v);
    void f(stream_in<32> in, stream_out<32> out) {
      stream_write(out, mystery(stream_read(in)));
    }
  )");
  Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("f.in", {1});
  EXPECT_THROW((void)s.run(), InternalError);
}

TEST(SimEdge, ZeroIterationLoop) {
  H h = make(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 n;
      n = stream_read(in);
      uint32 acc;
      acc = 7;
      #pragma HLS pipeline
      for (uint32 i = 0; i < n; i++) {
        acc = acc + 1;
      }
      stream_write(out, acc);
    }
  )");
  Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("f.in", {0});
  RunResult r = s.run();
  ASSERT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{7}));
}

TEST(SimEdge, SignedArithmetic) {
  H h = make(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      int32 v;
      v = stream_read(in);
      int32 r;
      r = 0 - v;
      if (r < 0) {
        r = 0 - r;
      }
      stream_write(out, r);
    }
  )");
  Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("f.in", {5});
  (void)s.run();
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{5}));
}

}  // namespace
}  // namespace hlsav::sim
