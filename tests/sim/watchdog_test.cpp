// Per-site wall-clock watchdog: the Deadline plumbing through the
// simulator, its campaign classification, and the bounded buffers that
// keep a pathological site from exhausting memory.
#include <gtest/gtest.h>

#include <string>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/campaign.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
};

H make_clamp() {
  auto c = compile(R"(
    void clamp(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        uint32 v = stream_read(in);
        uint32 y = v;
        if (y > 255) { y = 255; }
        assert(y <= 255);
        stream_write(out, y);
      }
    }
  )");
  H h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, assertions::Options::optimized());
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  h.feeds = {{"clamp.in", {1, 2, 3, 300, 5, 6}}};
  return h;
}

TEST(Watchdog, ExpiredDeadlineStopsRunDeterministically) {
  H h = make_clamp();
  SimOptions so;
  Deadline dl = Deadline::in_ms(0.0);  // already expired: checked at entry
  so.deadline = &dl;
  Simulator simulator(h.design, h.schedule, h.externs, so);
  for (const auto& [stream, values] : h.feeds) {
    ASSERT_TRUE(simulator.try_feed(stream, values).ok());
  }
  RunResult r = simulator.run();
  EXPECT_EQ(r.status, RunStatus::kDeadline);
  EXPECT_EQ(r.cycles, 0u);
}

TEST(Watchdog, GenerousDeadlineDoesNotPerturbTheRun) {
  H h = make_clamp();
  RunResult plain;
  {
    Simulator simulator(h.design, h.schedule, h.externs, {});
    for (const auto& [stream, values] : h.feeds) {
      ASSERT_TRUE(simulator.try_feed(stream, values).ok());
    }
    plain = simulator.run();
  }
  SimOptions so;
  Deadline dl = Deadline::in_ms(60'000.0);
  so.deadline = &dl;
  Simulator simulator(h.design, h.schedule, h.externs, so);
  for (const auto& [stream, values] : h.feeds) {
    ASSERT_TRUE(simulator.try_feed(stream, values).ok());
  }
  RunResult r = simulator.run();
  EXPECT_EQ(r.status, plain.status);
  EXPECT_EQ(r.cycles, plain.cycles);
}

TEST(Watchdog, CampaignClassifiesExpiredBudgetAsBudgetExceeded) {
  H h = make_clamp();
  GoldenRef golden = golden_run(h.design, h.schedule, h.externs, h.feeds, {});
  std::vector<FaultSpec> sites = enumerate_fault_sites(h.design, h.schedule);
  ASSERT_FALSE(sites.empty());
  // A 1e-9 ms budget has expired before the run starts: the watchdog
  // fires at the entry check, so the classification is deterministic.
  FaultResult r = run_fault(h.design, h.schedule, h.externs, h.feeds, golden, sites[0], {},
                            100'000, nullptr, 1e-9);
  EXPECT_EQ(r.outcome, FaultOutcome::kBudgetExceeded);
  EXPECT_EQ(r.cycles, 0u);
}

TEST(Watchdog, CampaignReportRendersBudgetTally) {
  H h = make_clamp();
  CampaignOptions opt;
  opt.site_wall_ms = 1e-9;  // every site blows the budget immediately
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  EXPECT_EQ(r.count(FaultOutcome::kBudgetExceeded), r.results.size());
  std::string rendered = r.render(h.design);
  EXPECT_NE(rendered.find("budget-exceeded"), std::string::npos) << rendered;
}

TEST(Watchdog, BudgetedCampaignIsDeterministicAcrossThreads) {
  H h = make_clamp();
  CampaignOptions serial;
  serial.site_wall_ms = 1e-9;
  serial.threads = 1;
  CampaignOptions par = serial;
  par.threads = 4;
  CampaignReport a = run_campaign(h.design, h.schedule, h.externs, h.feeds, serial);
  CampaignReport b = run_campaign(h.design, h.schedule, h.externs, h.feeds, par);
  b.threads = a.threads;
  EXPECT_EQ(a.render(h.design), b.render(h.design));
}

TEST(Watchdog, OutcomeNameIsStable) {
  // The journal serializes outcomes by name; renaming breaks resume.
  EXPECT_STREQ(fault_outcome_name(FaultOutcome::kBudgetExceeded), "budget-exceeded");
}

TEST(Watchdog, TraceEngineCapacityIsHardCapped) {
  trace::TraceConfig cfg;
  cfg.capacity = trace::TraceEngine::kMaxCapacity * 4;  // absurd request
  H h = make_clamp();
  trace::TraceEngine engine(h.design, cfg);
  EXPECT_TRUE(engine.capacity_clamped());
  EXPECT_EQ(engine.config().capacity, trace::TraceEngine::kMaxCapacity);

  trace::TraceConfig sane;
  sane.capacity = 64;
  trace::TraceEngine ok_engine(h.design, sane);
  EXPECT_FALSE(ok_engine.capacity_clamped());
  EXPECT_EQ(ok_engine.config().capacity, 64u);
}

TEST(Watchdog, DeadlineInMsIsMonotonicFutureInstant) {
  Deadline near = Deadline::in_ms(0.0);
  EXPECT_TRUE(near.expired());
  Deadline far = Deadline::in_ms(60'000.0);
  EXPECT_FALSE(far.expired());
}

}  // namespace
}  // namespace hlsav::sim
