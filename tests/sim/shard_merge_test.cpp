// Property test for shard-merge: splitting a campaign journal across K
// worker shards -- any assignment, any per-shard ordering, torn tails
// included -- must merge back to byte-identical coverage tables and
// reports versus the single-process sweep.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <iterator>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/campaign.h"
#include "sim/fault.h"
#include "sim/journal.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
};

H make_clamp() {
  auto c = compile(R"(
    void clamp(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        uint32 v = stream_read(in);
        uint32 y = v;
        if (y > 255) { y = 255; }
        assert(y <= 255);
        stream_write(out, y);
      }
    }
  )");
  H h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, assertions::Options::optimized());
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  h.feeds = {{"clamp.in", {1, 2, 3, 300, 5, 6}}};
  return h;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_shard(const std::string& path, const std::string& header,
                 const std::vector<std::string>& site_lines, bool torn_tail) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << header << "\n";
  for (const std::string& l : site_lines) out << l << "\n";
  // A torn tail is what a kill mid-append leaves behind: a partial line
  // with no newline. The loader must truncate it, never fail.
  if (torn_tail) out << "{\"site\":99,\"outco";
}

/// Rebuilds a CampaignReport from a merge result the way the supervisor
/// does: header identity + results in site order with FaultSpecs
/// re-attached from the deterministic enumeration.
CampaignReport report_from_merge(const ShardMergeResult& merged,
                                 const std::vector<FaultSpec>& sites) {
  CampaignReport rep;
  rep.seed = merged.header.seed;
  rep.sites_total = merged.header.sites_total;
  rep.golden_cycles = merged.header.golden_cycles;
  rep.threads = 1;
  for (const auto& [id, r] : merged.results) {
    FaultResult full = r;
    full.site = sites.at(id);
    rep.results.push_back(std::move(full));
  }
  return rep;
}

TEST(ShardMerge, AnyShardingOfAJournalMergesByteIdentically) {
  H h = make_clamp();
  std::vector<FaultSpec> sites = enumerate_fault_sites(h.design, h.schedule);

  std::string ref_journal = temp_path("shardprop_ref.jsonl");
  CampaignOptions opt;
  opt.seed = 7;
  opt.journal = ref_journal;
  CampaignReport ref = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  std::string ref_render = ref.render(h.design);

  std::vector<std::string> lines = read_lines(ref_journal);
  ASSERT_GT(lines.size(), 1u);
  std::string header = lines.front();
  std::vector<std::string> site_lines(lines.begin() + 1, lines.end());

  // Property sweep: shard counts x random assignments x random per-shard
  // orderings x torn tails, all from seeded generators.
  for (std::size_t shards : {2u, 3u, 5u}) {
    for (std::uint32_t trial = 0; trial < 4; ++trial) {
      std::mt19937 rng(1000 * static_cast<std::uint32_t>(shards) + trial);
      std::vector<std::vector<std::string>> assigned(shards);
      for (const std::string& l : site_lines) {
        assigned[rng() % shards].push_back(l);
      }
      std::vector<std::string> paths;
      for (std::size_t s = 0; s < shards; ++s) {
        std::shuffle(assigned[s].begin(), assigned[s].end(), rng);
        std::string p = temp_path("shardprop_" + std::to_string(shards) + "_" +
                                  std::to_string(trial) + "_" + std::to_string(s) +
                                  ".jsonl");
        write_shard(p, header, assigned[s], /*torn_tail=*/rng() % 2 == 0);
        paths.push_back(p);
      }

      StatusOr<ShardMergeResult> merged = merge_journal_shards(paths);
      ASSERT_TRUE(merged.ok()) << merged.status().to_string();
      EXPECT_EQ(merged->shards_loaded, shards);
      ASSERT_EQ(merged->results.size(), ref.results.size());

      CampaignReport rebuilt = report_from_merge(*merged, sites);
      EXPECT_EQ(rebuilt.render(h.design), ref_render)
          << "shards=" << shards << " trial=" << trial;
    }
  }
}

TEST(ShardMerge, DuplicateSitesAreFineIffByteIdentical) {
  H h = make_clamp();
  std::string ref_journal = temp_path("sharddup_ref.jsonl");
  CampaignOptions opt;
  opt.journal = ref_journal;
  CampaignReport ref = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  std::vector<std::string> lines = read_lines(ref_journal);
  ASSERT_GT(lines.size(), 2u);
  std::string header = lines.front();
  std::vector<std::string> site_lines(lines.begin() + 1, lines.end());

  // The same site landing in two shards happens when a worker died after
  // the append but before the supervisor saw the heartbeat, and the site
  // was reassigned. Identical bytes merge fine.
  std::string a = temp_path("sharddup_a.jsonl"), b = temp_path("sharddup_b.jsonl");
  write_shard(a, header, site_lines, false);
  write_shard(b, header, {site_lines.front()}, false);
  StatusOr<ShardMergeResult> merged = merge_journal_shards({a, b});
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_EQ(merged->results.size(), ref.results.size());

  // A *disagreeing* duplicate means the determinism contract broke --
  // that is an error, never a silent pick-one.
  std::string tampered = site_lines.front();
  std::size_t pos = tampered.rfind("\"cycles\":");
  ASSERT_NE(pos, std::string::npos) << tampered;
  tampered.insert(pos + 9, "9");
  std::string c = temp_path("sharddup_c.jsonl");
  write_shard(c, header, {tampered}, false);
  StatusOr<ShardMergeResult> bad = merge_journal_shards({a, c});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("disagree"), std::string::npos)
      << bad.status().message();
}

TEST(ShardMerge, ForeignShardIsRejectedByFingerprint) {
  H h = make_clamp();
  std::string ja = temp_path("shardfp_a.jsonl"), jb = temp_path("shardfp_b.jsonl");
  CampaignOptions a, b;
  a.journal = ja;
  b.journal = jb;
  b.seed = 99;
  b.max_faults = 3;  // different campaign identity
  (void)run_campaign(h.design, h.schedule, h.externs, h.feeds, a);
  (void)run_campaign(h.design, h.schedule, h.externs, h.feeds, b);
  StatusOr<ShardMergeResult> merged = merge_journal_shards({ja, jb});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardMerge, AllTornShardsWithNothingRecoveredIsIoError) {
  H h = make_clamp();
  std::string ref_journal = temp_path("shardtorn_ref.jsonl");
  CampaignOptions opt;
  opt.journal = ref_journal;
  (void)run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  std::vector<std::string> lines = read_lines(ref_journal);
  ASSERT_GT(lines.size(), 1u);
  std::string header = lines.front();

  // Every worker crashed mid-append of its *first* site: all tails
  // torn, zero sites recovered. An "ok, 0 sites" merge would silently
  // discard the campaign; the contract is a typed kIoError.
  std::string a = temp_path("shardtorn_a.jsonl"), b = temp_path("shardtorn_b.jsonl");
  write_shard(a, header, {}, /*torn_tail=*/true);
  write_shard(b, header, {}, /*torn_tail=*/true);
  StatusOr<ShardMergeResult> merged = merge_journal_shards({a, b});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kIoError);
  EXPECT_NE(merged.status().message().find("torn"), std::string::npos)
      << merged.status().message();

  // One torn shard next to a shard that did land a site is partial
  // recovery, not total loss: the merge succeeds and reports the torn
  // count so the supervisor can resume the missing sites.
  std::string c = temp_path("shardtorn_c.jsonl");
  write_shard(c, header, {lines[1]}, /*torn_tail=*/false);
  StatusOr<ShardMergeResult> partial = merge_journal_shards({a, c});
  ASSERT_TRUE(partial.ok()) << partial.status().to_string();
  EXPECT_EQ(partial->results.size(), 1u);
  EXPECT_EQ(partial->shards_loaded, 2u);
  EXPECT_EQ(partial->torn_shards, 1u);
}

TEST(ShardMerge, HeaderOnlyUntornShardsMergeToOkEmpty) {
  H h = make_clamp();
  std::string ref_journal = temp_path("shardempty_ref.jsonl");
  CampaignOptions opt;
  opt.journal = ref_journal;
  (void)run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  std::string header = read_lines(ref_journal).front();

  // A campaign drained before classifying its first site leaves a
  // header-only journal with a clean tail -- a real, resumable state,
  // not an error.
  std::string a = temp_path("shardempty_a.jsonl"), b = temp_path("shardempty_b.jsonl");
  write_shard(a, header, {}, /*torn_tail=*/false);
  write_shard(b, header, {}, /*torn_tail=*/false);
  StatusOr<ShardMergeResult> merged = merge_journal_shards({a, b});
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_TRUE(merged->results.empty());
  EXPECT_EQ(merged->shards_loaded, 2u);
  EXPECT_EQ(merged->torn_shards, 0u);
}

TEST(ShardMerge, NoShardsIsInvalidAndMissingShardIsIoError) {
  StatusOr<ShardMergeResult> none = merge_journal_shards({});
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);

  StatusOr<ShardMergeResult> gone =
      merge_journal_shards({temp_path("never_written.jsonl")});
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace hlsav::sim
