// Campaign journal: header fingerprints, torn-tail recovery, and
// kill -> resume determinism at multiple thread counts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/campaign.h"
#include "sim/journal.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

JournalHeader make_header() {
  JournalHeader h;
  h.design = "test_design";
  h.seed = 7;
  h.sites_total = 12;
  h.max_faults = 0;
  h.max_cycles = 10'000;
  h.golden_cycles = 42;
  h.site_wall_ms = 0.0;
  h.profile = false;
  return h;
}

TEST(Journal, FingerprintIsCanonicalAndSensitive) {
  JournalHeader a = make_header();
  JournalHeader b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.seed = 8;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.site_wall_ms = 1.5;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.design = "other";
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

FaultResult sample_result(std::uint32_t site, FaultOutcome outcome) {
  FaultResult r;
  r.site.id = site;
  r.outcome = outcome;
  r.cycles = 100 + site;
  if (outcome == FaultOutcome::kDetected) r.detected_by = {0, 3};
  return r;
}

TEST(Journal, AppendedLinesRoundTripThroughLoad) {
  std::string path = temp_path("journal_rt.jsonl");
  JournalHeader h = make_header();
  StatusOr<std::unique_ptr<CampaignJournal>> j = CampaignJournal::create(path, h);
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  ASSERT_TRUE((*j)->append(sample_result(0, FaultOutcome::kBenign)).ok());
  ASSERT_TRUE((*j)->append(sample_result(5, FaultOutcome::kDetected)).ok());
  ASSERT_TRUE((*j)->append(sample_result(2, FaultOutcome::kBudgetExceeded)).ok());
  j->reset();  // close the fd before reading

  StatusOr<JournalContents> loaded = load_journal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->header.fingerprint(), h.fingerprint());
  ASSERT_EQ(loaded->results.size(), 3u);
  EXPECT_EQ(loaded->results.at(0).outcome, FaultOutcome::kBenign);
  EXPECT_EQ(loaded->results.at(5).outcome, FaultOutcome::kDetected);
  EXPECT_EQ(loaded->results.at(5).detected_by, (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(loaded->results.at(2).outcome, FaultOutcome::kBudgetExceeded);
  EXPECT_EQ(loaded->results.at(2).cycles, 102u);
  EXPECT_EQ(loaded->valid_bytes, std::filesystem::file_size(path));
}

TEST(Journal, ProfileSummaryRoundTrips) {
  std::string path = temp_path("journal_prof.jsonl");
  JournalHeader h = make_header();
  h.profile = true;
  FaultResult r = sample_result(1, FaultOutcome::kDetected);
  r.profile.emplace();
  r.profile->run_cycles = 321;
  r.profile->compute_cycles = 200;
  r.profile->stall_cycles = 100;
  {
    StatusOr<std::unique_ptr<CampaignJournal>> j = CampaignJournal::create(path, h);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append(r).ok());
  }
  StatusOr<JournalContents> loaded = load_journal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_TRUE(loaded->results.at(1).profile.has_value());
  EXPECT_EQ(loaded->results.at(1).profile->run_cycles, 321u);
  EXPECT_EQ(loaded->results.at(1).profile->compute_cycles, 200u);
  EXPECT_EQ(loaded->results.at(1).profile->stall_cycles, 100u);
}

TEST(Journal, TornTrailingLineIsDroppedNotFatal) {
  std::string path = temp_path("journal_torn.jsonl");
  {
    StatusOr<std::unique_ptr<CampaignJournal>> j =
        CampaignJournal::create(path, make_header());
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append(sample_result(0, FaultOutcome::kBenign)).ok());
    ASSERT_TRUE((*j)->append(sample_result(1, FaultOutcome::kDetected)).ok());
  }
  std::uint64_t intact = std::filesystem::file_size(path);
  {
    // A kill mid-append: half a JSON object, no trailing newline.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"site\":2,\"outco";
  }
  StatusOr<JournalContents> loaded = load_journal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->results.size(), 2u);
  EXPECT_EQ(loaded->valid_bytes, intact);

  // append_to() must truncate the torn bytes before writing more.
  {
    StatusOr<std::unique_ptr<CampaignJournal>> j =
        CampaignJournal::append_to(path, loaded->valid_bytes);
    ASSERT_TRUE(j.ok()) << j.status().to_string();
    ASSERT_TRUE((*j)->append(sample_result(2, FaultOutcome::kBenign)).ok());
  }
  StatusOr<JournalContents> reloaded = load_journal(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->results.size(), 3u);
  EXPECT_EQ(slurp(path).find("outco\""), std::string::npos);  // torn bytes gone
}

TEST(Journal, GarbageHeaderIsInvalidArgument) {
  std::string path = temp_path("journal_garbage.jsonl");
  {
    std::ofstream out(path);
    out << "this is not a journal\n";
  }
  StatusOr<JournalContents> loaded = load_journal(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(Journal, MissingFileIsIoError) {
  StatusOr<JournalContents> loaded = load_journal("/nonexistent/journal.jsonl");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------ campaign integration --

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
};

H make_clamp() {
  auto c = compile(R"(
    void clamp(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        uint32 v = stream_read(in);
        uint32 y = v;
        if (y > 255) { y = 255; }
        assert(y <= 255);
        stream_write(out, y);
      }
    }
  )");
  H h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, assertions::Options::optimized());
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  h.feeds = {{"clamp.in", {1, 2, 3, 300, 5, 6}}};
  return h;
}

/// Chops `path` down to the header plus the first `keep` complete
/// result lines, plus optional torn garbage -- the on-disk state an
/// abrupt SIGKILL leaves behind.
void simulate_kill(const std::string& path, std::size_t keep, bool torn_tail) {
  std::string data = slurp(path);
  std::size_t pos = data.find('\n');  // end of header
  ASSERT_NE(pos, std::string::npos);
  for (std::size_t i = 0; i < keep; ++i) {
    pos = data.find('\n', pos + 1);
    ASSERT_NE(pos, std::string::npos) << "journal has fewer than " << keep << " lines";
  }
  std::string prefix = data.substr(0, pos + 1);
  if (torn_tail) prefix += "{\"site\":99,\"outc";
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << prefix;
}

void expect_same_report(const CampaignReport& a, CampaignReport b, const ir::Design& design) {
  b.threads = a.threads;  // renders embed the worker count
  EXPECT_EQ(a.render(design), b.render(design));
}

TEST(Journal, KillThenResumeRendersByteIdentical) {
  H h = make_clamp();
  for (unsigned resume_threads : {1u, 4u}) {
    SCOPED_TRACE("resume threads " + std::to_string(resume_threads));
    std::string path =
        temp_path("journal_resume_" + std::to_string(resume_threads) + ".jsonl");

    CampaignOptions opt;
    opt.journal = path;
    CampaignReport uninterrupted = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
    ASSERT_GT(uninterrupted.results.size(), 4u);

    // Keep half the sites, leave a torn line: the SIGKILL disk state.
    simulate_kill(path, uninterrupted.results.size() / 2, /*torn_tail=*/true);

    CampaignOptions res = opt;
    res.resume = true;
    res.threads = resume_threads;
    CampaignReport resumed = run_campaign(h.design, h.schedule, h.externs, h.feeds, res);
    expect_same_report(uninterrupted, resumed, h.design);

    // The journal now holds every site again (restored + re-run).
    StatusOr<JournalContents> final_state = load_journal(path);
    ASSERT_TRUE(final_state.ok());
    EXPECT_EQ(final_state->results.size(), uninterrupted.results.size());
  }
}

TEST(Journal, ResumeSkipsCompletedSites) {
  H h = make_clamp();
  std::string path = temp_path("journal_skip.jsonl");
  CampaignOptions opt;
  opt.journal = path;
  opt.progress = true;
  opt.progress_interval_s = 0;  // one heartbeat line per site
  std::vector<std::string> lines;
  opt.progress_sink = [&](const std::string& s) { lines.push_back(s); };
  CampaignReport full = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_EQ(lines.size(), full.results.size());

  // Resume over a complete journal: every site restores, none re-runs,
  // and the heartbeat still walks all of them (restored counts shown).
  lines.clear();
  CampaignOptions res = opt;
  res.resume = true;
  CampaignReport resumed = run_campaign(h.design, h.schedule, h.externs, h.feeds, res);
  expect_same_report(full, resumed, h.design);
  EXPECT_EQ(lines.size(), full.results.size());
}

TEST(Journal, ResumeRejectsMismatchedCampaign) {
  H h = make_clamp();
  std::string path = temp_path("journal_mismatch.jsonl");
  CampaignOptions opt;
  opt.journal = path;
  (void)run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);

  // Same journal, different seed + sampling: the fingerprint differs,
  // so resume must start the campaign over rather than splice in
  // results from a different site selection.
  CampaignOptions other = opt;
  other.resume = true;
  other.seed = 99;
  other.max_faults = 3;
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, other);
  EXPECT_EQ(r.results.size(), 3u);

  // And the journal was restarted for the new campaign.
  StatusOr<JournalContents> reloaded = load_journal(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->header.seed, 99u);
  EXPECT_EQ(reloaded->results.size(), 3u);
}

TEST(Journal, ProfiledCampaignResumesWithProfiles) {
  H h = make_clamp();
  std::string path = temp_path("journal_profiled.jsonl");
  CampaignOptions opt;
  opt.journal = path;
  opt.profile = true;
  CampaignReport full = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  simulate_kill(path, full.results.size() / 2, /*torn_tail=*/false);
  CampaignOptions res = opt;
  res.resume = true;
  CampaignReport resumed = run_campaign(h.design, h.schedule, h.externs, h.feeds, res);
  for (const FaultResult& f : resumed.results) {
    EXPECT_TRUE(f.profile.has_value()) << "site " << f.site.id;
  }
  expect_same_report(full, resumed, h.design);
}

}  // namespace
}  // namespace hlsav::sim
