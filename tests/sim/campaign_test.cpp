// Campaign runner: deterministic reports, seed-independent site lists,
// and sane outcome classification against the golden run.
#include <gtest/gtest.h>

#include <filesystem>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/campaign.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
};

H make_clamp(const assertions::Options& aopt) {
  auto c = compile(R"(
    void clamp(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        uint32 v = stream_read(in);
        uint32 y = v;
        if (y > 255) { y = 255; }
        assert(y <= 255);
        stream_write(out, y);
      }
    }
  )");
  H h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, aopt);
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  h.feeds = {{"clamp.in", {1, 2, 3, 300, 5, 6}}};
  return h;
}

TEST(Campaign, EverySiteIsClassified) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, {});
  EXPECT_GT(r.sites_total, 0u);
  // max_faults = 0 runs the whole site list: nothing left unclassified.
  EXPECT_EQ(r.results.size(), r.sites_total);
  for (std::size_t i = 0; i < r.results.size(); ++i) {
    EXPECT_EQ(r.results[i].site.id, i);
  }
}

TEST(Campaign, SameSeedGivesByteIdenticalReport) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions opt;
  opt.seed = 42;
  opt.max_faults = 5;  // force the sampling path
  CampaignReport a = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  CampaignReport b = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  EXPECT_EQ(a.render(h.design), b.render(h.design));
}

TEST(Campaign, SeedOnlySelectsSitesNeverRenumbersThem) {
  H h = make_clamp(assertions::Options::optimized());
  std::vector<FaultSpec> sites = enumerate_fault_sites(h.design, h.schedule);

  CampaignOptions a_opt, b_opt;
  a_opt.seed = 1;
  b_opt.seed = 2;
  a_opt.max_faults = b_opt.max_faults = 4;
  CampaignReport a = run_campaign(h.design, h.schedule, h.externs, h.feeds, a_opt);
  CampaignReport b = run_campaign(h.design, h.schedule, h.externs, h.feeds, b_opt);

  // Different seeds may pick different subsets...
  EXPECT_EQ(a.results.size(), 4u);
  EXPECT_EQ(b.results.size(), 4u);
  // ...but both draw from the identical enumerated list: every sampled
  // site id resolves to the same FaultSpec description.
  for (const CampaignReport* rep : {&a, &b}) {
    EXPECT_EQ(rep->sites_total, sites.size());
    for (const FaultResult& f : rep->results) {
      ASSERT_LT(f.site.id, sites.size());
      EXPECT_EQ(f.site.describe(h.design), sites[f.site.id].describe(h.design));
    }
  }
}

TEST(Campaign, ClassifiesDetectionAndAttributesAssertion) {
  H h = make_clamp(assertions::Options::optimized());
  // Skipping the clamp's 'then' block leaves y == 300 at the assert:
  // the campaign must classify it detected and name the assertion.
  std::vector<FaultSpec> sites = enumerate_fault_sites(h.design, h.schedule);
  const FaultSpec* skip_then = nullptr;
  for (const FaultSpec& f : sites) {
    if (f.kind == FaultKind::kFsmSkipBlock &&
        f.describe(h.design).find("then") != std::string::npos) {
      skip_then = &f;
    }
  }
  ASSERT_NE(skip_then, nullptr);

  GoldenRef golden = golden_run(h.design, h.schedule, h.externs, h.feeds, {});
  FaultResult r =
      run_fault(h.design, h.schedule, h.externs, h.feeds, golden, *skip_then, {}, 100'000);
  EXPECT_EQ(r.outcome, FaultOutcome::kDetected);
  ASSERT_EQ(r.detected_by.size(), 1u);
  EXPECT_FALSE(h.design.assertions.empty());
}

TEST(Campaign, ClassifiesSilentCorruption) {
  // With assertions stripped (ndebug) the same output-corrupting fault
  // has nothing to catch it: silent corruption.
  H h = make_clamp(assertions::Options::ndebug());
  ir::StreamId out = h.design.find_process("clamp")->find_port("out")->stream;
  GoldenRef golden = golden_run(h.design, h.schedule, h.externs, h.feeds, {});
  FaultResult r = run_fault(h.design, h.schedule, h.externs, h.feeds, golden,
                            FaultSpec::stream_stuck(out, 0, 99), {}, 100'000);
  EXPECT_EQ(r.outcome, FaultOutcome::kSilentCorruption);
  EXPECT_TRUE(r.detected_by.empty());
}

TEST(Campaign, GoldenRunMustBeClean) {
  H h = make_clamp(assertions::Options::optimized());
  h.feeds["clamp.in"] = {1, 2, 3};  // starves the loop: golden hangs
  EXPECT_THROW(golden_run(h.design, h.schedule, h.externs, h.feeds, {}), InternalError);
}

TEST(Campaign, ParallelWorkersMatchSerialByteForByte) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions par;
  par.threads = 4;
  CampaignReport a = run_campaign(h.design, h.schedule, h.externs, h.feeds, serial);
  CampaignReport b = run_campaign(h.design, h.schedule, h.externs, h.feeds, par);
  EXPECT_EQ(a.threads, 1u);
  EXPECT_GT(b.threads, 1u);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].site.id, b.results[i].site.id);
    EXPECT_EQ(a.results[i].outcome, b.results[i].outcome) << "site " << i;
    EXPECT_EQ(a.results[i].detected_by, b.results[i].detected_by) << "site " << i;
    EXPECT_EQ(a.results[i].cycles, b.results[i].cycles) << "site " << i;
  }
  // The rendered report only differs in the worker count, so renders
  // compare equal once that is held fixed.
  b.threads = a.threads;
  EXPECT_EQ(a.render(h.design), b.render(h.design));
}

TEST(Campaign, ZeroThreadsMeansHardwareConcurrency) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions opt;
  opt.threads = 0;
  opt.max_faults = 3;
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  EXPECT_GE(r.threads, 1u);
  EXPECT_EQ(r.results.size(), 3u);
}

TEST(Campaign, ProgressHeartbeatIsOffByDefault) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions opt;
  std::vector<std::string> lines;
  // A sink alone must not enable the heartbeat: progress gates it.
  opt.progress_sink = [&](const std::string& s) { lines.push_back(s); };
  (void)run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  EXPECT_TRUE(lines.empty());
}

TEST(Campaign, ProgressHeartbeatReportsEverySiteWhenIntervalIsZero) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions opt;
  opt.progress = true;
  opt.progress_interval_s = 0;  // deterministic: one line per site
  std::vector<std::string> lines;
  opt.progress_sink = [&](const std::string& s) { lines.push_back(s); };
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_EQ(lines.size(), r.results.size());
  std::string total = "/" + std::to_string(r.results.size()) + " sites";
  for (const std::string& l : lines) {
    EXPECT_NE(l.find("campaign: "), std::string::npos) << l;
    EXPECT_NE(l.find(total), std::string::npos) << l;
  }
  // The last line carries the final classification tallies.
  const std::string& last = lines.back();
  EXPECT_NE(last.find("benign " + std::to_string(r.count(FaultOutcome::kBenign))),
            std::string::npos)
      << last;
  EXPECT_NE(last.find("detected " + std::to_string(r.count(FaultOutcome::kDetected))),
            std::string::npos)
      << last;
}

TEST(Campaign, ProgressHeartbeatCoversParallelSweep) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions opt;
  opt.threads = 4;
  opt.progress = true;
  opt.progress_interval_s = 0;
  std::vector<std::string> lines;
  opt.progress_sink = [&](const std::string& s) { lines.push_back(s); };
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  EXPECT_EQ(lines.size(), r.results.size());
}

TEST(Campaign, HeartbeatEtaIsClampedBeforeAnyRateExists) {
  // Regression: the first tick fires with elapsed == 0 (or no completed
  // sites), where done/elapsed is 0 and remaining/rate divides by zero.
  // The ETA must render as the unknown marker, never "inf"/"nan".
  std::size_t tally[kNumFaultOutcomes] = {0};
  std::string first = format_campaign_heartbeat(0, 12, 0.0, tally);
  EXPECT_NE(first.find("ETA --:--"), std::string::npos) << first;
  EXPECT_EQ(first.find("inf"), std::string::npos) << first;
  EXPECT_EQ(first.find("nan"), std::string::npos) << first;
  // Zero completed sites after measurable elapsed time: still no rate.
  std::string stalled = format_campaign_heartbeat(0, 12, 2.5, tally);
  EXPECT_NE(stalled.find("ETA --:--"), std::string::npos) << stalled;
  EXPECT_EQ(stalled.find("inf"), std::string::npos) << stalled;
}

TEST(Campaign, HeartbeatEtaAppearsOnceARateExists) {
  std::size_t tally[kNumFaultOutcomes] = {0};
  tally[static_cast<std::size_t>(FaultOutcome::kBenign)] = 6;
  // 6 sites in 2s = 3 sites/s; 6 remaining -> ETA 2s.
  std::string line = format_campaign_heartbeat(6, 12, 2.0, tally);
  EXPECT_NE(line.find("6/12 sites"), std::string::npos) << line;
  EXPECT_NE(line.find("3.0 sites/s"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA 2s"), std::string::npos) << line;
  EXPECT_EQ(line.find("--:--"), std::string::npos) << line;
  EXPECT_NE(line.find("benign 6"), std::string::npos) << line;
}

TEST(Campaign, ProfiledCampaignAnnotatesNonBenignSites) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions opt;
  opt.profile = true;
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_TRUE(r.golden_profile.has_value());
  EXPECT_EQ(r.golden_profile->run_cycles, r.golden_cycles);
  EXPECT_GT(r.golden_profile->compute_cycles, 0u);
  std::size_t nonbenign = 0;
  for (const FaultResult& f : r.results) {
    ASSERT_TRUE(f.profile.has_value()) << "site " << f.site.id;
    EXPECT_EQ(f.profile->run_cycles, f.cycles) << "site " << f.site.id;
    if (f.outcome != FaultOutcome::kBenign) ++nonbenign;
  }
  ASSERT_GT(nonbenign, 0u);
  std::string rendered = r.render(h.design);
  EXPECT_NE(rendered.find("profile deltas vs golden"), std::string::npos);
  // Every non-benign site gets exactly one delta line.
  std::size_t delta_lines = 0;
  for (std::size_t pos = rendered.find("): cycles "); pos != std::string::npos;
       pos = rendered.find("): cycles ", pos + 1)) {
    ++delta_lines;
  }
  EXPECT_EQ(delta_lines, nonbenign);
}

TEST(Campaign, UnprofiledCampaignCarriesNoProfiles) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions opt;
  opt.max_faults = 3;
  CampaignReport r = run_campaign(h.design, h.schedule, h.externs, h.feeds, opt);
  EXPECT_FALSE(r.golden_profile.has_value());
  for (const FaultResult& f : r.results) EXPECT_FALSE(f.profile.has_value());
  EXPECT_EQ(r.render(h.design).find("profile deltas"), std::string::npos);
}

TEST(Campaign, ProfiledParallelMatchesSerial) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignOptions serial;
  serial.profile = true;
  serial.threads = 1;
  CampaignOptions par = serial;
  par.threads = 4;
  CampaignReport a = run_campaign(h.design, h.schedule, h.externs, h.feeds, serial);
  CampaignReport b = run_campaign(h.design, h.schedule, h.externs, h.feeds, par);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_TRUE(a.results[i].profile.has_value());
    ASSERT_TRUE(b.results[i].profile.has_value());
    EXPECT_EQ(a.results[i].profile->compute_cycles, b.results[i].profile->compute_cycles)
        << "site " << i;
    EXPECT_EQ(a.results[i].profile->stall_cycles, b.results[i].profile->stall_cycles)
        << "site " << i;
    EXPECT_EQ(a.results[i].profile->tail_cycles, b.results[i].profile->tail_cycles)
        << "site " << i;
  }
  b.threads = a.threads;
  EXPECT_EQ(a.render(h.design), b.render(h.design));
}

TEST(Campaign, TraceRerunsProduceArtifactsForNonBenignSites) {
  H h = make_clamp(assertions::Options::optimized());
  CampaignReport report = run_campaign(h.design, h.schedule, h.externs, h.feeds, {});
  std::size_t nonbenign = report.results.size() - report.count(FaultOutcome::kBenign);
  ASSERT_GT(nonbenign, 0u);

  TraceRerunOptions topt;
  topt.dir = ::testing::TempDir() + "campaign_traces";
  topt.stem = "clamp";
  topt.write_binary = true;
  std::vector<TraceArtifact> arts =
      trace_nonbenign_sites(h.design, h.schedule, h.externs, h.feeds, report, {}, topt);
  ASSERT_EQ(arts.size(), nonbenign);
  for (const TraceArtifact& a : arts) {
    EXPECT_NE(a.outcome, FaultOutcome::kBenign);
    EXPECT_TRUE(std::filesystem::exists(a.vcd_path)) << a.vcd_path;
    EXPECT_TRUE(std::filesystem::exists(a.bin_path)) << a.bin_path;
    // The replay names the site, its outcome, and the capture story.
    EXPECT_NE(a.replay.find("s" + std::to_string(a.site.id)), std::string::npos);
    EXPECT_NE(a.replay.find(fault_outcome_name(a.outcome)), std::string::npos);
    EXPECT_NE(a.replay.find("source-level replay:"), std::string::npos);
    // Detected sites implicate the assertion that caught them.
    if (a.outcome == FaultOutcome::kDetected) {
      EXPECT_NE(a.replay.find("implicated assertion:"), std::string::npos);
    }
  }
  // max_sites caps the rerun list in site order.
  topt.max_sites = 1;
  std::vector<TraceArtifact> one =
      trace_nonbenign_sites(h.design, h.schedule, h.externs, h.feeds, report, {}, topt);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].site.id, arts[0].site.id);
}

}  // namespace
}  // namespace hlsav::sim
