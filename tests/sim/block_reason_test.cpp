// Regression tests for the typed BlockReason scheduler state.
//
// The run loop used to decide "never re-step this process" by substring
// matching the human-readable blocked-why text against "cycle limit". A
// stream whose *name* contains that phrase would make any process that
// momentarily blocked on it look permanently cycle-limited, turning a
// routine stall into a spurious hang. The reason is now a typed enum
// (the text is only rendered for hang reports), so adversarial stream
// names must not affect scheduling.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/simulator.h"

namespace hlsav::sim {
namespace {

using assertions::Options;
using hlsav::testing::compile;

// consumer is declared (and therefore scheduled) first, so its first
// step blocks on the still-empty link stream before producer has run.
const char* kTwoStageSrc = R"(
  void consumer(stream_in<32> from_a, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      stream_write(out, stream_read(from_a) + 1);
    }
  }
  void producer(stream_in<32> in, stream_out<32> to_b) {
    for (uint32 i = 0; i < 4; i++) {
      stream_write(to_b, stream_read(in) * 2);
    }
  }
)";

ir::Design two_stage_design(const std::string& link_name) {
  auto c = compile(kTwoStageSrc);
  ir::Design d = c->design.clone();
  ir::StreamId link = d.find_process("producer")->find_port("to_b")->stream;
  d.connect_consumer(link, "consumer", "from_a");
  d.stream(link).name = link_name;
  assertions::synthesize(d, Options::ndebug());
  ir::verify(d);
  return d;
}

TEST(BlockReason, StreamNamedCycleLimitDoesNotStallTheScheduler) {
  ir::Design d = two_stage_design("cycle limit exceeded (just a stream name)");
  sched::DesignSchedule sch = sched::schedule_design(d);
  ExternRegistry ext;
  Simulator sim(d, sch, ext, {});
  sim.feed("producer.in", {1, 2, 3, 4});
  RunResult r = sim.run();
  // consumer blocks once on the adversarially named stream, then must be
  // re-stepped normally once producer fills it.
  EXPECT_EQ(r.status, RunStatus::kCompleted) << r.hang_report;
  EXPECT_EQ(sim.received("consumer.out"), (std::vector<std::uint64_t>{3, 5, 7, 9}));
}

TEST(BlockReason, HangReportStillNamesTheBlockedStream) {
  ir::Design d = two_stage_design("cycle limit exceeded (just a stream name)");
  sched::DesignSchedule sch = sched::schedule_design(d);
  ExternRegistry ext;
  Simulator sim(d, sch, ext, {});
  sim.feed("producer.in", {1, 2});  // two of four: both processes starve
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kHung);
  EXPECT_NE(r.hang_report.find("process 'producer' stuck"), std::string::npos);
  EXPECT_NE(
      r.hang_report.find("stream_read on 'cycle limit exceeded (just a stream name)' (empty)"),
      std::string::npos)
      << r.hang_report;
}

TEST(BlockReason, GenuineCycleLimitStillReported) {
  // An infinite pipelined loop trips the cycle limit; the report wording
  // is pinned because tools grep for it.
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < 1000000; i++) {
        acc = acc + x;
      }
      stream_write(out, acc);
    }
  )");
  ir::Design d = c->design.clone();
  assertions::synthesize(d, Options::ndebug());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  ExternRegistry ext;
  SimOptions opts;
  opts.max_cycles = 5'000;
  Simulator sim(d, sch, ext, opts);
  sim.feed("f.in", {1});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kHung);
  EXPECT_NE(r.hang_report.find("cycle limit exceeded"), std::string::npos) << r.hang_report;
}

}  // namespace
}  // namespace hlsav::sim
