// Robustness surface of run_campaign_st: shard filters, cooperative
// cancellation, per-site hooks, and journal IO-failure containment via
// the injectable write/fsync hooks.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <string>
#include <vector>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/campaign.h"
#include "sim/journal.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
};

H make_clamp() {
  auto c = compile(R"(
    void clamp(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        uint32 v = stream_read(in);
        uint32 y = v;
        if (y > 255) { y = 255; }
        assert(y <= 255);
        stream_write(out, y);
      }
    }
  )");
  H h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, assertions::Options::optimized());
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  h.feeds = {{"clamp.in", {1, 2, 3, 300, 5, 6}}};
  return h;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

TEST(CampaignRobustness, OnlySitesRestrictsTheSweepToTheShard) {
  H h = make_clamp();
  CampaignOptions full;
  StatusOr<CampaignReport> all =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, full);
  ASSERT_TRUE(all.ok()) << all.status().to_string();
  ASSERT_GE(all->results.size(), 3u);

  CampaignOptions shard;
  shard.only_sites = {all->results[0].site.id, all->results[2].site.id};
  StatusOr<CampaignReport> part =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, shard);
  ASSERT_TRUE(part.ok()) << part.status().to_string();
  ASSERT_EQ(part->results.size(), 2u);
  // Shard results are the same classifications the full sweep produced:
  // the shard boundary never changes an outcome.
  EXPECT_EQ(part->results[0].site.id, all->results[0].site.id);
  EXPECT_EQ(part->results[0].outcome, all->results[0].outcome);
  EXPECT_EQ(part->results[1].site.id, all->results[2].site.id);
  EXPECT_EQ(part->results[1].outcome, all->results[2].outcome);
  // sites_total stays the full campaign's count -- shard journals must
  // carry the full-campaign identity.
  EXPECT_EQ(part->sites_total, all->sites_total);
}

TEST(CampaignRobustness, OnlySitesOutsideTheSampleIsInvalid) {
  H h = make_clamp();
  CampaignOptions opt;
  opt.only_sites = {1u << 30};
  StatusOr<CampaignReport> r =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CampaignRobustness, CancelMidSweepReturnsInterruptedPartial) {
  H h = make_clamp();
  std::atomic<bool> cancel{false};
  std::atomic<int> started{0};
  CampaignOptions opt;
  opt.cancel = &cancel;
  // Trip the flag from inside the sweep: after two sites have started,
  // no further site may start.
  opt.site_start_hook = [&](std::uint32_t) {
    if (++started == 2) cancel = true;
  };
  StatusOr<CampaignReport> r =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r->interrupted);
  EXPECT_EQ(r->results.size(), 2u);
  EXPECT_GT(r->sites_total, r->results.size());
}

TEST(CampaignRobustness, SiteSinkFiresOncePerSiteAfterJournaling) {
  H h = make_clamp();
  std::string journal = temp_path("sink.jsonl");
  std::vector<std::uint32_t> started, sunk;
  CampaignOptions opt;
  opt.journal = journal;
  opt.site_start_hook = [&](std::uint32_t id) { started.push_back(id); };
  opt.site_sink = [&](const FaultResult& r) {
    sunk.push_back(r.site.id);
    // The sink contract: by the time it fires, the site is durable.
    StatusOr<JournalContents> j = load_journal(journal);
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(j->results.count(r.site.id), 1u);
  };
  StatusOr<CampaignReport> r =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(started.size(), r->results.size());
  EXPECT_EQ(sunk.size(), r->results.size());
  EXPECT_EQ(started, sunk);  // serial sweep: start order == journal order
}

TEST(CampaignRobustness, ResumedSitesDoNotRefireTheSink) {
  H h = make_clamp();
  std::string journal = temp_path("resink.jsonl");
  CampaignOptions first;
  first.journal = journal;
  StatusOr<CampaignReport> a =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, first);
  ASSERT_TRUE(a.ok());

  int sunk = 0;
  CampaignOptions again;
  again.journal = journal;
  again.resume = true;
  again.site_sink = [&](const FaultResult&) { ++sunk; };
  StatusOr<CampaignReport> b =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, again);
  ASSERT_TRUE(b.ok()) << b.status().to_string();
  EXPECT_EQ(sunk, 0);  // everything was restored, nothing freshly run
  EXPECT_EQ(b->results.size(), a->results.size());
}

// ---------------------------------------------- journal IO fault injection --

ssize_t enospc_write(int, const void*, std::size_t) {
  errno = ENOSPC;
  return -1;
}

ssize_t short_then_eio_write(int fd, const void* buf, std::size_t count) {
  static thread_local bool first = true;
  if (first) {
    first = false;
    return ::write(fd, buf, count > 4 ? 4 : count);  // short write, then...
  }
  errno = EIO;
  return -1;
}

int failing_fsync(int) {
  errno = EIO;
  return -1;
}

struct HookGuard {
  explicit HookGuard(const JournalIoHooks* hooks) { set_journal_io_hooks_for_test(hooks); }
  ~HookGuard() { set_journal_io_hooks_for_test(nullptr); }
};

TEST(CampaignRobustness, JournalEnospcSurfacesAsStatusNamingThePath) {
  H h = make_clamp();
  std::string journal = temp_path("enospc.jsonl");
  static JournalIoHooks hooks{enospc_write, nullptr};
  HookGuard guard(&hooks);

  CampaignOptions opt;
  opt.journal = journal;
  StatusOr<CampaignReport> r =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // The operator needs to know *which* file and *why*: path + errno text.
  EXPECT_NE(r.status().message().find(journal), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("No space left on device"), std::string::npos)
      << r.status().message();
}

TEST(CampaignRobustness, JournalShortWriteThenEioIsContained) {
  H h = make_clamp();
  std::string journal = temp_path("eio.jsonl");
  static JournalIoHooks hooks{short_then_eio_write, nullptr};
  HookGuard guard(&hooks);

  CampaignOptions opt;
  opt.journal = journal;
  StatusOr<CampaignReport> r =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("Input/output error"), std::string::npos)
      << r.status().message();
}

TEST(CampaignRobustness, JournalFsyncFailureIsAnErrorNotSilentDataLoss) {
  H h = make_clamp();
  std::string journal = temp_path("fsyncfail.jsonl");
  static JournalIoHooks hooks{nullptr, failing_fsync};
  HookGuard guard(&hooks);

  CampaignOptions opt;
  opt.journal = journal;
  StatusOr<CampaignReport> r =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find(journal), std::string::npos)
      << r.status().message();
}

TEST(CampaignRobustness, UnopenableJournalDirectoryIsATypedError) {
  H h = make_clamp();
  CampaignOptions opt;
  opt.journal = "/nonexistent-dir-zzz/campaign.jsonl";
  StatusOr<CampaignReport> r =
      run_campaign_st(h.design, h.schedule, h.externs, h.feeds, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("/nonexistent-dir-zzz/campaign.jsonl"),
            std::string::npos)
      << r.status().message();
}

}  // namespace
}  // namespace hlsav::sim
