// Wait-for-graph deadlock detection: true stream deadlocks must be
// proven (cycle reported) the moment progress stops -- in O(cycles to
// block), never by burning down SimOptions::max_cycles -- and
// starvation or slow-but-live designs must not be misreported.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/simulator.h"

namespace hlsav::sim {
namespace {

using hlsav::testing::compile;

struct H {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
};

/// Compiles, applies `wire` to cross-connect process ports, then
/// synthesizes (ndebug keeps the process set minimal) and schedules.
template <typename WireFn>
H make(const std::string& src, WireFn&& wire) {
  auto c = compile(src);
  H h;
  h.design = c->design.clone();
  wire(h.design);
  assertions::synthesize(h.design, assertions::Options::ndebug());
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  return h;
}

TEST(Deadlock, TwoProcessReadReadCycle) {
  // p0 reads from p1's output before writing, p1 reads from p0's
  // output before writing: both block on empty FIFOs forever.
  H h = make(R"(
    void p0(stream_in<32> a, stream_out<32> b) {
      uint32 v = stream_read(a);
      stream_write(b, v + 1);
    }
    void p1(stream_in<32> c, stream_out<32> d) {
      uint32 v = stream_read(c);
      stream_write(d, v + 2);
    }
  )",
           [](ir::Design& d) {
             d.connect_consumer(d.find_process("p0")->find_port("b")->stream, "p1", "c");
             d.connect_consumer(d.find_process("p1")->find_port("d")->stream, "p0", "a");
           });
  SimOptions so;
  so.max_cycles = 50'000'000;  // the detector must not need the backstop
  Simulator s(h.design, h.schedule, h.externs, so);
  RunResult r = s.run();

  ASSERT_EQ(r.status, RunStatus::kHung);
  ASSERT_TRUE(r.hang.has_value());
  EXPECT_EQ(r.hang->kind, HangKind::kDeadlockCycle);
  EXPECT_EQ(r.hang->cycle.size(), 2u);
  // Both processes block at their very first op: O(cycles-to-block).
  EXPECT_LT(r.cycles, 100u);
  EXPECT_NE(r.hang_report.find("deadlock cycle:"), std::string::npos) << r.hang_report;
  EXPECT_NE(r.hang_report.find("p0 waits read"), std::string::npos) << r.hang_report;
  EXPECT_NE(r.hang_report.find("p1 waits read"), std::string::npos) << r.hang_report;
}

TEST(Deadlock, TwoProcessWriteWriteFullCycle) {
  // Each process floods its output (past the FIFO depth) before ever
  // reading: both end up blocked on a full FIFO whose consumer is the
  // other blocked process.
  H h = make(R"(
    void p0(stream_in<32> a, stream_out<32> b) {
      for (uint32 i = 0; i < 64; i++) { stream_write(b, i); }
      for (uint32 j = 0; j < 64; j++) { uint32 v = stream_read(a); }
    }
    void p1(stream_in<32> c, stream_out<32> d) {
      for (uint32 i = 0; i < 64; i++) { stream_write(d, i); }
      for (uint32 j = 0; j < 64; j++) { uint32 v = stream_read(c); }
    }
  )",
           [](ir::Design& d) {
             d.connect_consumer(d.find_process("p0")->find_port("b")->stream, "p1", "c");
             d.connect_consumer(d.find_process("p1")->find_port("d")->stream, "p0", "a");
           });
  SimOptions so;
  so.max_cycles = 50'000'000;
  Simulator s(h.design, h.schedule, h.externs, so);
  RunResult r = s.run();

  ASSERT_EQ(r.status, RunStatus::kHung);
  ASSERT_TRUE(r.hang.has_value());
  EXPECT_EQ(r.hang->kind, HangKind::kDeadlockCycle);
  EXPECT_EQ(r.hang->cycle.size(), 2u);
  // Blocks as soon as both FIFOs fill, far below the 64-word burst.
  EXPECT_LT(r.cycles, 1000u);
  EXPECT_NE(r.hang_report.find("deadlock cycle:"), std::string::npos) << r.hang_report;
  EXPECT_NE(r.hang_report.find("waits write"), std::string::npos) << r.hang_report;
}

TEST(Deadlock, ThreeProcessRing) {
  // p0 -> p1 -> p2 -> p0, everyone reads first: a 3-cycle.
  H h = make(R"(
    void p0(stream_in<32> a, stream_out<32> b) {
      uint32 v = stream_read(a);
      stream_write(b, v);
    }
    void p1(stream_in<32> a, stream_out<32> b) {
      uint32 v = stream_read(a);
      stream_write(b, v);
    }
    void p2(stream_in<32> a, stream_out<32> b) {
      uint32 v = stream_read(a);
      stream_write(b, v);
    }
  )",
           [](ir::Design& d) {
             d.connect_consumer(d.find_process("p0")->find_port("b")->stream, "p1", "a");
             d.connect_consumer(d.find_process("p1")->find_port("b")->stream, "p2", "a");
             d.connect_consumer(d.find_process("p2")->find_port("b")->stream, "p0", "a");
           });
  SimOptions so;
  so.max_cycles = 50'000'000;
  Simulator s(h.design, h.schedule, h.externs, so);
  RunResult r = s.run();

  ASSERT_EQ(r.status, RunStatus::kHung);
  ASSERT_TRUE(r.hang.has_value());
  EXPECT_EQ(r.hang->kind, HangKind::kDeadlockCycle);
  EXPECT_EQ(r.hang->cycle.size(), 3u);
  EXPECT_LT(r.cycles, 100u);
  // The rendered cycle closes back on its first process.
  EXPECT_NE(r.hang_report.find("deadlock cycle:"), std::string::npos) << r.hang_report;
}

TEST(Deadlock, StarvationIsNotACycle) {
  // A process waiting on a CPU-fed stream that simply ran dry is
  // starved, not deadlocked: no cycle may be claimed.
  H h = make(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 8; i++) { stream_write(out, stream_read(in)); }
    }
  )",
           [](ir::Design&) {});
  SimOptions so;
  so.max_cycles = 50'000'000;
  Simulator s(h.design, h.schedule, h.externs, so);
  s.feed("f.in", {1, 2, 3});  // 5 words short
  RunResult r = s.run();

  ASSERT_EQ(r.status, RunStatus::kHung);
  ASSERT_TRUE(r.hang.has_value());
  EXPECT_EQ(r.hang->kind, HangKind::kStarvation);
  EXPECT_TRUE(r.hang->cycle.empty());
  EXPECT_LT(r.cycles, 100u);
  EXPECT_EQ(r.hang_report.find("deadlock cycle:"), std::string::npos) << r.hang_report;
  EXPECT_NE(r.hang_report.find("stream_read on 'f.in' (empty)"), std::string::npos)
      << r.hang_report;
}

TEST(Deadlock, NoFalsePositiveWhileAPeerStillProgresses) {
  // The consumer spends most of the run blocked on its input while the
  // slow producer grinds through per-word work; the design is live and
  // must complete without any hang report.
  H h = make(R"(
    void slow(stream_in<32> in, stream_out<32> link) {
      for (uint32 i = 0; i < 4; i++) {
        uint32 v = stream_read(in);
        uint32 acc = 0;
        for (uint32 j = 0; j < 50; j++) { acc = acc + v; }
        stream_write(link, acc);
      }
    }
    void sink(stream_in<32> link, stream_out<32> out) {
      for (uint32 i = 0; i < 4; i++) { stream_write(out, stream_read(link)); }
    }
  )",
           [](ir::Design& d) {
             d.connect_consumer(d.find_process("slow")->find_port("link")->stream, "sink",
                                "link");
           });
  Simulator s(h.design, h.schedule, h.externs, {});
  s.feed("slow.in", {1, 2, 3, 4});
  RunResult r = s.run();

  ASSERT_EQ(r.status, RunStatus::kCompleted) << r.hang_report;
  EXPECT_FALSE(r.hang.has_value());
  EXPECT_EQ(s.received("sink.out"), (std::vector<std::uint64_t>{50, 100, 150, 200}));
}

TEST(Deadlock, CycleLimitIsReportedAsBackstop) {
  // A genuine livelock (infinite self-loop, no stream involvement) can
  // only be caught by the max_cycles backstop; that must be labelled
  // kCycleLimit, not passed off as a proven deadlock.
  H h = make(R"(
    void spin(stream_in<32> in, stream_out<32> out) {
      uint32 v = stream_read(in);
      while (v > 0) { v = v | 1; }
      stream_write(out, v);
    }
  )",
           [](ir::Design&) {});
  SimOptions so;
  so.max_cycles = 2'000;
  Simulator s(h.design, h.schedule, h.externs, so);
  s.feed("spin.in", {7});
  RunResult r = s.run();

  ASSERT_EQ(r.status, RunStatus::kHung);
  ASSERT_TRUE(r.hang.has_value());
  EXPECT_EQ(r.hang->kind, HangKind::kCycleLimit);
  EXPECT_NE(r.hang_report.find("cycle limit exceeded"), std::string::npos) << r.hang_report;
}

}  // namespace
}  // namespace hlsav::sim
