// Simulator tests: functional correctness, cycle accounting, blocking
// streams, hang detection, and the full §5.1 divergence scenarios
// (software simulation passes, in-circuit execution fails).
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/simulator.h"

namespace hlsav::sim {
namespace {

using assertions::Options;
using hlsav::testing::compile;

struct Harness {
  ir::Design design;
  sched::DesignSchedule schedule;
  ExternRegistry externs;
  SimOptions opts;

  Simulator make() { return Simulator(design, schedule, externs, opts); }
};

Harness harness(const std::string& src, const Options& assert_opt, SimMode mode = SimMode::kHardware) {
  auto c = compile(src);
  Harness h;
  h.design = c->design.clone();
  assertions::synthesize(h.design, assert_opt);
  ir::verify(h.design);
  h.schedule = sched::schedule_design(h.design);
  h.opts.mode = mode;
  return h;
}

const char* kLoopbackSrc = R"(
  void loopback(stream_in<32> in, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      uint32 v;
      v = stream_read(in);
      stream_write(out, v + 1);
    }
  }
)";

TEST(Simulator, LoopbackRoundTrip) {
  Harness h = harness(kLoopbackSrc, Options::ndebug());
  Simulator sim = h.make();
  sim.feed("loopback.in", {10, 20, 30, 40});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(sim.received("loopback.out"), (std::vector<std::uint64_t>{11, 21, 31, 41}));
  EXPECT_GT(r.cycles, 0u);
}

TEST(Simulator, CycleAccountingMatchesSchedule) {
  Harness h = harness(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x + 1);
    }
  )", Options::ndebug());
  Simulator sim = h.make();
  sim.feed("f.in", {5});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  // The schedule's passing-path states bound the run (single execution).
  const ir::Process& p = *h.design.find_process("f");
  unsigned expect = sched::passing_path_states(p, *h.schedule.find("f"));
  EXPECT_EQ(r.cycles, expect);
}

TEST(Simulator, ProcessToProcessStreams) {
  auto c = compile(R"(
    void producer(stream_in<32> in, stream_out<32> to_b) {
      for (uint32 i = 0; i < 4; i++) {
        stream_write(to_b, stream_read(in) * 2);
      }
    }
    void consumer(stream_in<32> from_a, stream_out<32> out) {
      for (uint32 i = 0; i < 4; i++) {
        stream_write(out, stream_read(from_a) + 1);
      }
    }
  )");
  ir::Design d = c->design.clone();
  // Rewire producer.to_b -> consumer.from_a through one stream.
  ir::StreamId link = d.find_process("producer")->find_port("to_b")->stream;
  d.connect_consumer(link, "consumer", "from_a");
  assertions::synthesize(d, Options::ndebug());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  ExternRegistry ext;
  Simulator sim(d, sch, ext, {});
  sim.feed("producer.in", {1, 2, 3, 4});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(sim.received("consumer.out"), (std::vector<std::uint64_t>{3, 5, 7, 9}));
}

TEST(Simulator, PipelinedLoopCycleModel) {
  Harness h = harness(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 10; i++) {
        acc = acc + x + i;
      }
      stream_write(out, acc);
    }
  )", Options::ndebug());
  Simulator sim = h.make();
  sim.feed("f.in", {3});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  // acc = sum(3 + i) = 30 + 45.
  EXPECT_EQ(sim.received("f.out"), (std::vector<std::uint64_t>{75}));
  const ir::Process& p = *h.design.find_process("f");
  sched::LoopPerf perf = sched::loop_perf(*h.schedule.find("f"), p.loops[0].body);
  // 10 iterations: latency + 9 * rate cycles inside the loop.
  EXPECT_EQ(perf.rate, 1u);
  EXPECT_GE(r.cycles, perf.latency + 9 * perf.rate);
}

TEST(Simulator, HangDetectionWithReport) {
  Harness h = harness(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 8; i++) {
        stream_write(out, stream_read(in));
      }
    }
  )", Options::ndebug());
  Simulator sim = h.make();
  sim.feed("f.in", {1, 2});  // two of eight: the read on iteration 3 hangs
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kHung);
  EXPECT_NE(r.hang_report.find("process 'f' stuck"), std::string::npos);
  EXPECT_NE(r.hang_report.find("stream_read"), std::string::npos);
}

// ------------------------------------------------ assertion reporting --

const char* kAssertSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      uint32 v;
      v = stream_read(in);
      assert(v < 100);
      stream_write(out, v);
    }
  }
)";

TEST(Simulator, UnoptimizedAssertionPassesCleanly) {
  Harness h = harness(kAssertSrc, Options::unoptimized());
  Simulator sim = h.make();
  sim.feed("f.in", {1, 2, 3, 4});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_TRUE(r.failures.empty());
}

TEST(Simulator, UnoptimizedAssertionFailureAborts) {
  Harness h = harness(kAssertSrc, Options::unoptimized());
  Simulator sim = h.make();
  sim.feed("f.in", {1, 200, 3, 4});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kAborted);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].message.find("Assertion `v < 100' failed."), std::string::npos);
}

TEST(Simulator, ParallelizedCheckerDetectsFailure) {
  Options opt;
  opt.parallelize = true;
  Harness h = harness(kAssertSrc, opt);
  Simulator sim = h.make();
  sim.feed("f.in", {1, 200, 3, 4});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kAborted);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].assertion_id, 0u);
}

TEST(Simulator, SharedChannelFailureDecoded) {
  Options opt;
  opt.share_channels = true;
  Harness h = harness(kAssertSrc, opt);
  Simulator sim = h.make();
  sim.feed("f.in", {1, 200, 3, 4});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kAborted);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].message.find("v < 100"), std::string::npos);
}

TEST(Simulator, FullyOptimizedAssertions) {
  Harness h = harness(kAssertSrc, Options::optimized());
  Simulator sim = h.make();
  sim.feed("f.in", {1, 2, 300, 4});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kAborted);
  ASSERT_EQ(r.failures.size(), 1u);
}

TEST(Simulator, NabortContinuesAndCollectsAll) {
  Options opt = Options::unoptimized();
  opt.nabort = true;
  Harness h = harness(kAssertSrc, opt);
  Simulator sim = h.make();
  sim.feed("f.in", {200, 2, 300, 4});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(r.failures.size(), 2u);
  EXPECT_EQ(sim.received("f.out"), (std::vector<std::uint64_t>{200, 2, 300, 4}));
}

TEST(Simulator, AssertZeroTraceMarkers) {
  // The paper's §5.1 hang-tracing idiom: assert(0) markers + NABORT.
  Options opt = Options::unoptimized();
  opt.nabort = true;
  Harness h = harness(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 v;
      v = stream_read(in);
      assert(0);
      stream_write(out, v);
      assert(0);
    }
  )", opt);
  Simulator sim = h.make();
  sim.feed("f.in", {7});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  ASSERT_EQ(r.failures.size(), 2u);  // both markers reached
  EXPECT_EQ(r.failures[0].assertion_id, 0u);
  EXPECT_EQ(r.failures[1].assertion_id, 1u);
}

TEST(Simulator, ReplicatedArrayAssertionCoherent) {
  Options opt = Options::optimized();
  Harness h = harness(R"(
    void k(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      uint32 b[16];
      #pragma HLS pipeline
      for (uint32 i = 0; i < 16; i++) {
        acc = acc + b[i];
        b[i] = x + i;
        assert(b[i] < 50);
      }
      stream_write(out, acc);
    }
  )", opt);
  {
    Simulator sim = h.make();
    sim.feed("k.in", {10});  // max written value 10+15=25 < 50: passes
    RunResult r = sim.run();
    EXPECT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_TRUE(r.failures.empty());
  }
  {
    Simulator sim = h.make();
    sim.feed("k.in", {40});  // 40+10=50 fails at i=10
    RunResult r = sim.run();
    EXPECT_EQ(r.status, RunStatus::kAborted);
    ASSERT_EQ(r.failures.size(), 1u);
  }
}

// --------------------------------------------- §5.1 divergence studies --

const char* kNarrowCompareSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 mem[32];
    uint32 addr;
    uint64 c1;
    uint64 c2;
    c1 = 4294967296;
    c2 = stream_read(in);
    addr = 0;
    if (c2 > c1) {
      addr = 31;
    }
    assert(addr < 32);
    mem[addr] = 1;
    stream_write(out, mem[addr] + addr);
  }
)";

TEST(Simulator, NarrowCompareFaultDivergence) {
  // Software simulation: source semantics, assertion passes.
  {
    auto c = compile(kNarrowCompareSrc);
    ir::Design d = c->design.clone();
    ir::verify(d);
    sched::DesignSchedule sch = sched::schedule_design(d);
    ExternRegistry ext;
    SimOptions so;
    so.mode = SimMode::kSoftware;
    Simulator sim(d, sch, ext, so);
    sim.feed("f.in", {4294967286u});
    RunResult r = sim.run();
    EXPECT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_TRUE(r.failures.empty());
  }
  // In-circuit execution with the Impulse-C narrowing fault injected:
  // 4294967286 > 4294967296 becomes 22 > 0 at 5 bits -> addr = 31, but
  // let's assert something the bug violates.
  {
    auto c = compile(R"(
      void f(stream_in<32> in, stream_out<32> out) {
        uint64 c1;
        uint64 c2;
        c1 = 4294967296;
        c2 = stream_read(in);
        uint32 addr;
        addr = 0;
        if (c2 > c1) {
          addr = 99;
        }
        assert(addr == 0);
        stream_write(out, addr);
      }
    )");
    ir::Design d = c->design.clone();
    assertions::synthesize(d, assertions::Options::unoptimized());
    ir::verify(d);
    sched::DesignSchedule sch = sched::schedule_design(d);
    ExternRegistry ext;
    SimOptions so;
    so.mode = SimMode::kHardware;
    so.faults.add_narrow_compare("f", 0, 5);
    Simulator sim(d, sch, ext, so);
    sim.feed("f.in", {4294967286u});
    RunResult r = sim.run();
    EXPECT_EQ(r.status, RunStatus::kAborted);
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_NE(r.failures[0].message.find("addr == 0"), std::string::npos);
  }
}

TEST(Simulator, ExternHdlModelDivergence) {
  // The C model and the HDL behaviour disagree (paper §5.1, second
  // example): software simulation passes, the circuit fails.
  const char* src = R"(
    extern uint32 accel(uint32 v);
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 r;
      r = accel(stream_read(in));
      assert(r < 100);
      stream_write(out, r);
    }
  )";
  ExternRegistry ext;
  ext.add("accel",
          [](const std::vector<BitVector>& a) {  // C model: halves
            return BitVector::from_u64(32, a[0].to_u64() / 2);
          },
          [](const std::vector<BitVector>& a) {  // HDL: doubles (buggy core)
            return BitVector::from_u64(32, a[0].to_u64() * 2);
          });
  auto c = compile(src);
  {
    ir::Design d = c->design.clone();
    sched::DesignSchedule sch = sched::schedule_design(d);
    SimOptions so;
    so.mode = SimMode::kSoftware;
    Simulator sim(d, sch, ext, so);
    sim.feed("f.in", {80});
    RunResult r = sim.run();
    EXPECT_EQ(r.status, RunStatus::kCompleted);  // 80/2 = 40 < 100
  }
  {
    ir::Design d = c->design.clone();
    assertions::synthesize(d, assertions::Options::optimized());
    ir::verify(d);
    sched::DesignSchedule sch = sched::schedule_design(d);
    Simulator sim(d, sch, ext, {});
    sim.feed("f.in", {80});
    RunResult r = sim.run();
    EXPECT_EQ(r.status, RunStatus::kAborted);  // 80*2 = 160 >= 100
  }
}

TEST(Simulator, RomLookups) {
  Harness h = harness(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      const uint32 lut[4] = {7, 11, 13, 17};
      for (uint32 i = 0; i < 4; i++) {
        uint32 k;
        k = stream_read(in);
        stream_write(out, lut[k]);
      }
    }
  )", Options::ndebug());
  Simulator sim = h.make();
  sim.feed("f.in", {3, 0, 1, 2});
  RunResult r = sim.run();
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(sim.received("f.out"), (std::vector<std::uint64_t>{17, 7, 11, 13}));
}

TEST(Simulator, FailureCycleStamped) {
  Harness h = harness(kAssertSrc, Options::unoptimized());
  Simulator sim = h.make();
  sim.feed("f.in", {1, 2, 3, 400});
  RunResult r = sim.run();
  ASSERT_EQ(r.failures.size(), 1u);
  // The fourth element fails; the stamp must be later than three loop
  // iterations' worth of cycles.
  EXPECT_GT(r.failures[0].cycle, 3u);
}

TEST(Simulator, ConvenienceEntryPoint) {
  auto c = compile(kLoopbackSrc);
  ir::Design d = c->design.clone();
  assertions::synthesize(d, Options::ndebug());
  ExternRegistry ext;
  RunResult r = simulate(d, ext, {{"loopback.in", {1, 2, 3, 4}}});
  EXPECT_EQ(r.status, RunStatus::kCompleted);
}

}  // namespace
}  // namespace hlsav::sim
