// TraceEngine: ring wrap-around, filter selection, window merge order
// and the ELA geometry the fpga area model consumes.
#include <gtest/gtest.h>

#include "trace/trace.h"

namespace hlsav::trace {
namespace {

/// Two-process design with enough signal variety to exercise every
/// event class: a 32-bit and a 128-bit register, one stream, one BRAM.
struct Rig {
  ir::Design design;
  ir::Process* a = nullptr;
  ir::Process* b = nullptr;
  ir::RegId ra = ir::kNoReg;
  ir::RegId rwide = ir::kNoReg;
  ir::StreamId s = ir::kNoStream;
  ir::MemId m = ir::kNoMem;

  Rig() {
    design.name = "rig";
    a = &design.add_process("a");
    b = &design.add_process("b");
    ra = a->add_reg("x", 32, false);
    rwide = a->add_reg("wide", 128, false);
    s = design.add_stream("a.out", 32);
    m = design.add_memory("buf", "b", 16, false, 8);
    ir::AssertionRecord rec;
    rec.id = 0;
    rec.process = "a";
    rec.condition_text = "x < 10";
    design.assertions.push_back(rec);
  }
};

TEST(TraceEngine, WindowMergesBuffersInCycleSeqOrder) {
  Rig rig;
  TraceEngine eng(rig.design);
  // Interleave events across both processes out of per-buffer order.
  eng.fsm_state(rig.a, 0, 0);
  eng.fsm_state(rig.b, 0, 0);
  eng.reg_write(rig.a, rig.ra, BitVector::from_u64(32, 7), 3, {});
  eng.bram_write(rig.b, rig.m, 2, BitVector::from_u64(16, 9), 1, {});
  eng.stream_push(rig.a, rig.s, BitVector::from_u64(32, 5), 2, {});

  std::vector<TraceRecord> w = eng.window();
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_TRUE(w[i - 1].cycle < w[i].cycle ||
                (w[i - 1].cycle == w[i].cycle && w[i - 1].seq < w[i].seq));
  }
  // Same-cycle events keep arrival order via seq.
  EXPECT_EQ(w[0].kind, TraceEventKind::kFsmState);
  EXPECT_EQ(w[0].proc, 0u);
  EXPECT_EQ(w[1].kind, TraceEventKind::kFsmState);
  EXPECT_EQ(w[1].proc, 1u);
  EXPECT_EQ(w[2].kind, TraceEventKind::kBramWrite);
  EXPECT_EQ(w[2].aux, 2u);
  EXPECT_EQ(w[4].kind, TraceEventKind::kRegWrite);
  EXPECT_EQ(w[4].value.to_u64(), 7u);
}

TEST(TraceEngine, RingWrapKeepsOnlyTheLastWindow) {
  Rig rig;
  TraceConfig cfg;
  cfg.capacity = 4;
  TraceEngine eng(rig.design, cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    eng.reg_write(rig.a, rig.ra, BitVector::from_u64(32, i), i, {});
  }
  EXPECT_EQ(eng.captured(), 10u);
  EXPECT_EQ(eng.dropped(), 6u);
  std::vector<TraceRecord> w = eng.window();
  ASSERT_EQ(w.size(), 4u);
  // The survivors are the *last* four events, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w[i].cycle, 6u + i);
    EXPECT_EQ(w[i].value.to_u64(), 6u + i);
  }
}

TEST(TraceEngine, EventClassFilterDropsAtCapture) {
  Rig rig;
  TraceConfig cfg;
  cfg.filter.regs = false;
  cfg.filter.bram = false;
  TraceEngine eng(rig.design, cfg);
  eng.reg_write(rig.a, rig.ra, BitVector::from_u64(32, 1), 0, {});
  eng.bram_read(rig.b, rig.m, 0, BitVector::from_u64(16, 1), 0, {});
  eng.assert_verdict(rig.a, 0, true, 1, {});
  EXPECT_EQ(eng.captured(), 1u);
  std::vector<TraceRecord> w = eng.window();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].kind, TraceEventKind::kAssertVerdict);
  EXPECT_EQ(w[0].aux, 1u);  // failed
}

TEST(TraceEngine, ProcessFilterInstantiatesFewerBuffers) {
  Rig rig;
  TraceConfig cfg;
  cfg.filter.processes = {"b"};
  TraceEngine eng(rig.design, cfg);
  EXPECT_EQ(eng.num_buffers(), 1u);
  eng.reg_write(rig.a, rig.ra, BitVector::from_u64(32, 1), 0, {});  // filtered out
  eng.fsm_state(rig.b, 0, 0);
  EXPECT_EQ(eng.captured(), 1u);
  ASSERT_EQ(eng.window().size(), 1u);
  EXPECT_EQ(eng.window()[0].proc, 1u);
}

TEST(TraceEngine, GeometryReflectsWidestTracedSignal) {
  Rig rig;
  TraceEngine all(rig.design);
  EXPECT_EQ(all.num_buffers(), 2u);
  EXPECT_EQ(all.max_value_width(), 128u);  // the wide register
  EXPECT_EQ(all.trigger_count(), 1u);      // one assertion comparator
  // timestamp + kind tag + subject + aux + widest value
  EXPECT_GT(all.record_bits(), 128u);

  // Excluding process "a" removes the 128-bit register from the entry.
  TraceConfig cfg;
  cfg.filter.processes = {"b"};
  cfg.filter.streams = false;
  TraceEngine narrow(rig.design, cfg);
  EXPECT_EQ(narrow.max_value_width(), 16u);  // BRAM word is the widest left
}

TEST(TraceEngine, ClearDropsRecordsButKeepsGeometry) {
  Rig rig;
  TraceEngine eng(rig.design);
  eng.reg_write(rig.a, rig.ra, BitVector::from_u64(32, 1), 0, {});
  ASSERT_EQ(eng.window().size(), 1u);
  eng.clear();
  EXPECT_TRUE(eng.window().empty());
  EXPECT_EQ(eng.num_buffers(), 2u);
  EXPECT_EQ(eng.max_value_width(), 128u);
  // Capture works again after clear.
  eng.fsm_state(rig.a, 0, 0);
  EXPECT_EQ(eng.window().size(), 1u);
}

}  // namespace
}  // namespace hlsav::trace
