// Status-returning trace reader tests: HLTRACE1 files round-trip
// through read_trace_file at the width extremes (1-bit flags, >64-bit
// crypto state), user-level errors arrive as typed Statuses instead of
// InternalError, and validate_window refuses windows whose ids or
// widths drifted from the design they claim to describe.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "trace/binary.h"
#include "trace/reader.h"
#include "trace/trace.h"

namespace hlsav::trace {
namespace {

using hlsav::testing::compile;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

TraceRecord rec(TraceEventKind kind, std::uint16_t proc, std::uint32_t subject,
                BitVector value) {
  TraceRecord r;
  r.kind = kind;
  r.proc = proc;
  r.subject = subject;
  r.value = std::move(value);
  return r;
}

TEST(TraceReader, RoundTripsOneBitAndWiderThan64BitValues) {
  std::vector<TraceRecord> window;
  // 1-bit flag toggles (a condition register).
  window.push_back(rec(TraceEventKind::kRegWrite, 0, 3, BitVector::from_u64(1, 1)));
  window.push_back(rec(TraceEventKind::kRegWrite, 0, 3, BitVector::from_u64(1, 0)));
  // 200-bit crypto-state word with bits set across every u64 limb.
  BitVector wide(200);
  wide.set_bit(0, true);
  wide.set_bit(63, true);
  wide.set_bit(64, true);
  wide.set_bit(128, true);
  wide.set_bit(199, true);
  window.push_back(rec(TraceEventKind::kBramWrite, 1, 0, wide));

  std::string path = temp_path("roundtrip.bin");
  write_binary_trace_file(path, window);
  StatusOr<std::vector<TraceRecord>> back = read_trace_file(path);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  ASSERT_EQ(back->size(), window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ((*back)[i].kind, window[i].kind) << i;
    EXPECT_EQ((*back)[i].value.width(), window[i].value.width()) << i;
    EXPECT_TRUE((*back)[i].value.eq(window[i].value)) << i;
  }
  EXPECT_TRUE((*back)[2].value.bit(199));
  EXPECT_TRUE((*back)[2].value.bit(64));
  EXPECT_FALSE((*back)[2].value.bit(100));
}

TEST(TraceReader, MissingFileIsIoErrorAndCorruptBytesAreInvalid) {
  StatusOr<std::vector<TraceRecord>> gone = read_trace_file(temp_path("never_written.bin"));
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kIoError);

  // A real header followed by torn record bytes: user input, so a typed
  // kInvalidArgument -- never the InternalError the in-process reader
  // throws for impossible streams.
  std::string path = temp_path("corrupt.bin");
  {
    std::vector<TraceRecord> one;
    one.push_back(rec(TraceEventKind::kRegWrite, 0, 0, BitVector::from_u64(32, 5)));
    write_binary_trace_file(path, one);
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - 3);
  }
  StatusOr<std::vector<TraceRecord>> torn = read_trace_file(path);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kInvalidArgument);

  std::string junk = temp_path("junk.bin");
  std::ofstream(junk, std::ios::binary) << "not a trace at all";
  StatusOr<std::vector<TraceRecord>> bad = read_trace_file(junk);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceReader, ValidateWindowAcceptsMatchingWidths) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 a = stream_read(in);
      stream_write(out, a);
    }
  )");
  ir::RegId a = ir::kNoReg;
  ir::RegId one_bit = ir::kNoReg;
  for (const ir::Register& r : c->process("f").regs) {
    if (r.name == "a") a = r.id;
    if (r.width == 1 && one_bit == ir::kNoReg) one_bit = r.id;
  }
  ASSERT_NE(a, ir::kNoReg);

  std::vector<TraceRecord> window;
  window.push_back(rec(TraceEventKind::kRegWrite, 0, a, BitVector::from_u64(32, 7)));
  if (one_bit != ir::kNoReg) {
    window.push_back(rec(TraceEventKind::kRegWrite, 0, one_bit, BitVector::from_u64(1, 1)));
  }
  EXPECT_TRUE(validate_window(c->design, window).ok());
}

TEST(TraceReader, ValidateWindowRejectsDriftedIdsAndWidths) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 a = stream_read(in);
      stream_write(out, a);
    }
  )");
  ir::RegId a = ir::kNoReg;
  for (const ir::Register& r : c->process("f").regs) {
    if (r.name == "a") a = r.id;
  }

  // Width drift: a 16-bit value on a 32-bit register.
  {
    std::vector<TraceRecord> w{rec(TraceEventKind::kRegWrite, 0, a,
                                   BitVector::from_u64(16, 7))};
    Status st = validate_window(c->design, w);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("record 0"), std::string::npos) << st.message();
  }
  // Foreign process index.
  {
    std::vector<TraceRecord> w{rec(TraceEventKind::kRegWrite, 42, a,
                                   BitVector::from_u64(32, 7))};
    EXPECT_FALSE(validate_window(c->design, w).ok());
  }
  // Register id past the process's file.
  {
    std::vector<TraceRecord> w{rec(TraceEventKind::kRegWrite, 0, 10'000,
                                   BitVector::from_u64(32, 7))};
    EXPECT_FALSE(validate_window(c->design, w).ok());
  }
  // Stream id out of range.
  {
    std::vector<TraceRecord> w{rec(TraceEventKind::kStreamPush, 0, 99,
                                   BitVector::from_u64(32, 7))};
    EXPECT_FALSE(validate_window(c->design, w).ok());
  }
  // Assertion id absent from the catalogue.
  {
    std::vector<TraceRecord> w{rec(TraceEventKind::kAssertVerdict, 0, 7,
                                   BitVector::from_u64(1, 1))};
    EXPECT_FALSE(validate_window(c->design, w).ok());
  }
}

}  // namespace
}  // namespace hlsav::trace
