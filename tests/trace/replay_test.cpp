// Source-level replay: a captured window decoded back into HLS-C terms,
// ending with the implicated assertion and stream.
#include <gtest/gtest.h>

#include <limits>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sched/schedule.h"
#include "sim/simulator.h"
#include "trace/replay.h"
#include "trace/trace.h"

namespace hlsav::trace {
namespace {

using hlsav::testing::Compiled;
using hlsav::testing::compile;

constexpr const char* kLoopback = R"(
void f(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 3; i++) {
    uint32 v;
    v = stream_read(in);
    assert(v < 50);
    stream_write(out, v + 1);
  }
}
)";

struct TracedRun {
  std::unique_ptr<Compiled> c;
  sched::DesignSchedule schedule;
  sim::ExternRegistry externs;
  // Constructed after synthesis so the engine sees the checker processes.
  std::unique_ptr<TraceEngine> engine;
  sim::RunResult result;

  TracedRun(std::unique_ptr<Compiled> compiled, const std::vector<std::uint64_t>& feed)
      : c(std::move(compiled)) {
    assertions::synthesize(c->design, assertions::Options::optimized());
    schedule = sched::schedule_design(c->design);
    engine = std::make_unique<TraceEngine>(c->design);
    sim::SimOptions opt;
    opt.mode = sim::SimMode::kHardware;
    opt.ela = engine.get();
    sim::Simulator s(c->design, schedule, externs, opt);
    s.set_failure_sink([](const assertions::Failure&) {});
    s.feed("f.in", feed);
    result = s.run();
  }
};

TEST(Replay, NamesFailingAssertionAndSourceLines) {
  TracedRun r(compile(kLoopback), {1, 99, 3});
  EXPECT_EQ(r.result.status, sim::RunStatus::kAborted);
  std::vector<TraceRecord> w = r.engine->window();
  ASSERT_FALSE(w.empty());

  EXPECT_EQ(implicated_assertion(w), 0u);
  ir::StreamId sid = implicated_stream(w);
  ASSERT_NE(sid, ir::kNoStream);
  EXPECT_FALSE(r.c->design.stream(sid).name.empty());

  ReplayOptions opt;
  opt.sm = &r.c->sm;
  std::string text = render_replay(r.c->design, w, opt);
  EXPECT_NE(text.find("source-level replay:"), std::string::npos);
  EXPECT_NE(text.find("`v < 50' FAILED"), std::string::npos);
  EXPECT_NE(text.find("implicated assertion: #0 `v < 50'"), std::string::npos);
  EXPECT_NE(text.find("implicated stream:"), std::string::npos);
  // Source positions resolve through the SourceManager.
  EXPECT_NE(text.find("[test.c:"), std::string::npos);
  // The failing value's journey is visible: read of 99, no write after.
  EXPECT_NE(text.find("read 'f.in' -> 99"), std::string::npos);
}

TEST(Replay, CleanRunImplicatesNoAssertion) {
  TracedRun r(compile(kLoopback), {1, 2, 3});
  EXPECT_EQ(r.result.status, sim::RunStatus::kCompleted);
  std::vector<TraceRecord> w = r.engine->window();
  ASSERT_FALSE(w.empty());
  EXPECT_EQ(implicated_assertion(w), std::numeric_limits<std::uint32_t>::max());
  std::string text = render_replay(r.c->design, w, {});
  EXPECT_EQ(text.find("FAILED"), std::string::npos);
  EXPECT_EQ(text.find("implicated assertion"), std::string::npos);
  // Verdicts still appear (as passes) and handshakes are narrated.
  EXPECT_NE(text.find("passed"), std::string::npos);
  EXPECT_NE(text.find("write 'f.out' <- 2"), std::string::npos);
}

TEST(Replay, LastCyclesTrimsTheNarration) {
  TracedRun r(compile(kLoopback), {1, 2, 3});
  std::vector<TraceRecord> w = r.engine->window();
  ASSERT_FALSE(w.empty());
  ReplayOptions wide;
  wide.last_cycles = 1'000'000;
  ReplayOptions tight;
  tight.last_cycles = 1;
  std::string all = render_replay(r.c->design, w, wide);
  std::string tail = render_replay(r.c->design, w, tight);
  EXPECT_LT(tail.size(), all.size());
  // The trimmed story still reports the full capture count.
  std::string suffix = " of " + std::to_string(w.size()) + " captured events)";
  EXPECT_NE(tail.find(suffix), std::string::npos);
}

TEST(Replay, EmptyWindowSaysSo) {
  auto c = compile(kLoopback);
  std::string text = render_replay(c->design, {}, {});
  EXPECT_EQ(text, "trace replay: no events captured\n");
}

}  // namespace
}  // namespace hlsav::trace
