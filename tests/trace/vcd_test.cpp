// VCD export validated by a minimal in-tree VCD parser: header
// hierarchy, monotonic timestamps, one-cycle strobes, unknown initial
// values, and vector literals wider than 64 bits.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "trace/vcd.h"

namespace hlsav::trace {
namespace {

// ------------------------------------------------------ tiny VCD parser --
// Enough of IEEE 1364-2005 §18 to validate our own writer: $scope /
// $var / $enddefinitions, $dumpvars, #timestamps, scalar (0!/1!/x!)
// and vector (b101 !) value changes.

struct VcdVar {
  std::string scope;  // dotted path, e.g. "rig.a"
  std::string name;
  std::string id;
  unsigned width = 1;
};

struct ParsedVcd {
  std::vector<VcdVar> vars;
  /// id -> value in the $dumpvars initial block ("x" / "bx").
  std::map<std::string, std::string> initial;
  /// Timestamped changes in document order: (time, id, value). Scalar
  /// values are "0"/"1"/"x"; vectors keep their full bit string.
  struct Change {
    std::uint64_t time = 0;
    std::string id;
    std::string value;
  };
  std::vector<Change> changes;
  bool saw_enddefinitions = false;

  [[nodiscard]] const VcdVar* find(const std::string& scope, const std::string& name) const {
    for (const VcdVar& v : vars) {
      if (v.scope == scope && v.name == name) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] std::vector<Change> changes_of(const std::string& id) const {
    std::vector<Change> out;
    for (const Change& c : changes) {
      if (c.id == id) out.push_back(c);
    }
    return out;
  }
};

ParsedVcd parse_vcd(const std::string& text) {
  ParsedVcd doc;
  std::istringstream is(text);
  std::vector<std::string> scope_stack;
  std::string tok;
  std::uint64_t now = 0;
  bool in_dumpvars = false;
  bool in_defs = true;

  auto parse_change = [&](const std::string& word, std::istringstream& line_rest) {
    char c = word[0];
    if (c == 'b' || c == 'B') {
      std::string id;
      line_rest >> id;
      ASSERT_FALSE(id.empty()) << "vector change without identifier: " << word;
      if (in_dumpvars) {
        doc.initial[id] = word;
      } else {
        doc.changes.push_back({now, id, word.substr(1)});
      }
    } else {
      ASSERT_TRUE(c == '0' || c == '1' || c == 'x' || c == 'z') << "bad change: " << word;
      std::string id = word.substr(1);
      ASSERT_FALSE(id.empty()) << "scalar change without identifier: " << word;
      if (in_dumpvars) {
        doc.initial[id] = std::string(1, c);
      } else {
        doc.changes.push_back({now, id, std::string(1, c)});
      }
    }
  };

  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    if (!(ls >> tok)) continue;
    if (in_defs) {
      if (tok == "$scope") {
        std::string kind, name, end;
        ls >> kind >> name >> end;
        EXPECT_EQ(kind, "module");
        EXPECT_EQ(end, "$end");
        scope_stack.push_back(name);
      } else if (tok == "$upscope") {
        EXPECT_FALSE(scope_stack.empty());
        if (!scope_stack.empty()) scope_stack.pop_back();
      } else if (tok == "$var") {
        std::string type, id, name;
        unsigned width = 0;
        ls >> type >> width >> id >> name;
        EXPECT_EQ(type, "wire");
        EXPECT_GE(width, 1u);
        std::string path;
        for (const std::string& s : scope_stack) path += path.empty() ? s : "." + s;
        doc.vars.push_back({path, name, id, width});
      } else if (tok == "$enddefinitions") {
        doc.saw_enddefinitions = true;
        EXPECT_TRUE(scope_stack.empty()) << "unbalanced $scope at $enddefinitions";
        in_defs = false;
      }
      continue;
    }
    if (tok == "$dumpvars") {
      in_dumpvars = true;
    } else if (tok == "$end") {
      in_dumpvars = false;
    } else if (tok[0] == '#') {
      now = std::stoull(tok.substr(1));
    } else {
      parse_change(tok, ls);
    }
  }
  return doc;
}

// ------------------------------------------------------------- fixtures --

struct Rig {
  ir::Design design;
  ir::Process* a = nullptr;
  ir::RegId rx = ir::kNoReg;
  ir::RegId rwide = ir::kNoReg;
  ir::StreamId s = ir::kNoStream;

  Rig() {
    design.name = "rig";
    a = &design.add_process("a");
    rx = a->add_reg("x", 32, false);
    rwide = a->add_reg("wide", 128, false);
    s = design.add_stream("a.out", 32);
    ir::AssertionRecord rec;
    rec.id = 0;
    rec.process = "a";
    rec.condition_text = "x < 10";
    design.assertions.push_back(rec);
  }
};

std::string dump(const Rig& rig, TraceEngine& eng) {
  VcdWriter w(rig.design, eng.config().filter);
  std::ostringstream os;
  w.write(os, eng.window());
  return os.str();
}

TEST(Vcd, HeaderDeclaresRtlHierarchy) {
  Rig rig;
  TraceEngine eng(rig.design);
  std::string text = dump(rig, eng);
  ParsedVcd doc = parse_vcd(text);
  EXPECT_TRUE(doc.saw_enddefinitions);

  const VcdVar* x = doc.find("rig.a", "x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->width, 32u);
  const VcdVar* data = doc.find("rig.streams", "a_out_data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->width, 32u);
  EXPECT_NE(doc.find("rig.streams", "a_out_push"), nullptr);
  EXPECT_NE(doc.find("rig.streams", "a_out_pop"), nullptr);
  const VcdVar* fail = doc.find("rig.assertions", "assert_0_fail");
  ASSERT_NE(fail, nullptr);
  EXPECT_EQ(fail->width, 1u);

  // Identifier codes are unique.
  for (std::size_t i = 0; i < doc.vars.size(); ++i) {
    for (std::size_t j = i + 1; j < doc.vars.size(); ++j) {
      EXPECT_NE(doc.vars[i].id, doc.vars[j].id);
    }
  }
  // Every net holds 'x' until its first captured change.
  for (const VcdVar& v : doc.vars) {
    ASSERT_TRUE(doc.initial.count(v.id)) << v.name;
    EXPECT_EQ(doc.initial[v.id], v.width == 1 ? "x" : "bx") << v.name;
  }
}

TEST(Vcd, VectorWiderThan64BitsRoundTrips) {
  Rig rig;
  TraceEngine eng(rig.design);
  BitVector wide(128);
  wide.set_bit(0, true);
  wide.set_bit(64, true);
  wide.set_bit(127, true);
  eng.reg_write(rig.a, rig.rwide, wide, 4, {});

  ParsedVcd doc = parse_vcd(dump(rig, eng));
  const VcdVar* v = doc.find("rig.a", "wide");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->width, 128u);
  auto ch = doc.changes_of(v->id);
  ASSERT_EQ(ch.size(), 1u);
  EXPECT_EQ(ch[0].time, 4u);
  ASSERT_EQ(ch[0].value.size(), 128u);  // writer keeps full width
  // MSB-first bit string: bit 127, then ... bit 64 ... then bit 0.
  for (unsigned bit = 0; bit < 128; ++bit) {
    char expect = (bit == 0 || bit == 64 || bit == 127) ? '1' : '0';
    EXPECT_EQ(ch[0].value[127 - bit], expect) << "bit " << bit;
  }
}

TEST(Vcd, HandshakeStrobesPulseForOneCycle) {
  Rig rig;
  TraceEngine eng(rig.design);
  eng.stream_push(rig.a, rig.s, BitVector::from_u64(32, 42), 5, {});

  ParsedVcd doc = parse_vcd(dump(rig, eng));
  const VcdVar* push = doc.find("rig.streams", "a_out_push");
  ASSERT_NE(push, nullptr);
  auto strobes = doc.changes_of(push->id);
  ASSERT_EQ(strobes.size(), 2u);
  EXPECT_EQ(strobes[0].time, 5u);
  EXPECT_EQ(strobes[0].value, "1");
  EXPECT_EQ(strobes[1].time, 6u);
  EXPECT_EQ(strobes[1].value, "0");

  const VcdVar* data = doc.find("rig.streams", "a_out_data");
  ASSERT_NE(data, nullptr);
  auto dch = doc.changes_of(data->id);
  ASSERT_EQ(dch.size(), 1u);
  EXPECT_EQ(std::stoull(dch[0].value, nullptr, 2), 42u);
}

TEST(Vcd, TimestampsAreStrictlyIncreasing) {
  Rig rig;
  TraceEngine eng(rig.design);
  for (std::uint64_t c : {0, 3, 3, 7, 12}) {
    eng.reg_write(rig.a, rig.rx, BitVector::from_u64(32, c), c, {});
  }
  eng.assert_verdict(rig.a, 0, true, 12, {});

  ParsedVcd doc = parse_vcd(dump(rig, eng));
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& c : doc.changes) {
    if (!first) EXPECT_GE(c.time, prev);
    prev = c.time;
    first = false;
  }
  // Same-cycle rewrites collapse to the last value per signal.
  const VcdVar* x = doc.find("rig.a", "x");
  ASSERT_NE(x, nullptr);
  auto ch = doc.changes_of(x->id);
  ASSERT_EQ(ch.size(), 4u);  // cycles 0, 3 (deduped), 7, 12
  EXPECT_EQ(std::stoull(ch[1].value, nullptr, 2), 3u);
  // The failing verdict pulses high then clears.
  const VcdVar* fail = doc.find("rig.assertions", "assert_0_fail");
  ASSERT_NE(fail, nullptr);
  auto f = doc.changes_of(fail->id);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].value, "1");
  EXPECT_EQ(f[1].value, "0");
}

}  // namespace
}  // namespace hlsav::trace
