// Compact binary trace format: exact round-trip (including >64-bit
// values and source locations) and corruption detection.
#include <gtest/gtest.h>

#include <sstream>

#include "support/diagnostics.h"
#include "trace/binary.h"

namespace hlsav::trace {
namespace {

std::vector<TraceRecord> sample_window() {
  std::vector<TraceRecord> w;
  TraceRecord a;
  a.cycle = 3;
  a.kind = TraceEventKind::kRegWrite;
  a.proc = 1;
  a.subject = 7;
  a.value = BitVector::from_u64(32, 0xDEADBEEF);
  a.loc = SourceLoc{2, 14, 5};
  w.push_back(a);

  TraceRecord b;
  b.cycle = 4;
  b.kind = TraceEventKind::kBramWrite;
  b.proc = 0;
  b.subject = 0;
  b.aux = 1023;  // address
  b.value = BitVector::from_u64(16, 0x1234);
  w.push_back(b);

  TraceRecord c;
  c.cycle = 9;
  c.kind = TraceEventKind::kAssertVerdict;
  c.subject = 2;
  c.aux = 1;  // failed
  c.value = BitVector(1);
  w.push_back(c);

  TraceRecord d;
  d.cycle = 12;
  d.kind = TraceEventKind::kStreamPush;
  d.subject = 5;
  d.value = BitVector(200);
  d.value.set_bit(0, true);
  d.value.set_bit(100, true);
  d.value.set_bit(199, true);
  w.push_back(d);
  return w;
}

TEST(BinaryTrace, RoundTripsExactly) {
  std::vector<TraceRecord> w = sample_window();
  std::ostringstream os(std::ios::binary);
  write_binary_trace(os, w);
  std::string bytes = os.str();
  EXPECT_EQ(bytes.substr(0, 8), "HLTRACE1");

  std::istringstream is(bytes, std::ios::binary);
  std::vector<TraceRecord> back = read_binary_trace(is);
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    // seq is regenerated in record order; everything else is exact.
    TraceRecord expect = w[i];
    expect.seq = back[i].seq;
    EXPECT_EQ(back[i], expect) << "record " << i;
    EXPECT_EQ(back[i].seq, i);
  }
  EXPECT_EQ(back[3].value.width(), 200u);
  EXPECT_TRUE(back[3].value.bit(100));
  EXPECT_FALSE(back[3].value.bit(101));
}

TEST(BinaryTrace, EmptyWindowRoundTrips) {
  std::ostringstream os(std::ios::binary);
  write_binary_trace(os, {});
  std::istringstream is(os.str(), std::ios::binary);
  EXPECT_TRUE(read_binary_trace(is).empty());
}

TEST(BinaryTrace, RejectsBadMagic) {
  std::istringstream is(std::string("NOTATRACE\0\0\0", 12), std::ios::binary);
  EXPECT_THROW((void)read_binary_trace(is), InternalError);
}

TEST(BinaryTrace, RejectsTruncatedStream) {
  std::ostringstream os(std::ios::binary);
  write_binary_trace(os, sample_window());
  std::string bytes = os.str();
  std::istringstream is(bytes.substr(0, bytes.size() - 7), std::ios::binary);
  EXPECT_THROW((void)read_binary_trace(is), InternalError);
}

}  // namespace
}  // namespace hlsav::trace
