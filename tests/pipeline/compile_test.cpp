// pipeline::compile_*: every stage failure arrives as a typed Status
// with its diagnostics in the caller's engine -- never an exception.
#include <gtest/gtest.h>

#include <string>

#include "pipeline/compile.h"

namespace hlsav::pipeline {
namespace {

StatusOr<Compiled> compile(const std::string& src, DiagnosticEngine& diags, SourceManager& sm,
                           const CompileOptions& opt = {}) {
  diags.attach(&sm);
  return compile_source(sm, diags, "test.c", src, opt);
}

TEST(PipelineCompile, GoodSourceYieldsDesignAndSchedule) {
  SourceManager sm;
  DiagnosticEngine diags;
  StatusOr<Compiled> c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 3; i++) {
        uint32 v = stream_read(in);
        assert(v < 50);
        stream_write(out, v + 1);
      }
    }
  )", diags, sm);
  ASSERT_TRUE(c.ok()) << c.status().to_string() << "\n" << diags.render();
  EXPECT_NE(c->design.find_process("f"), nullptr);
  EXPECT_EQ(c->synth.assertions_synthesized, 1u);
  EXPECT_FALSE(c->schedule.processes.empty());
  EXPECT_FALSE(diags.has_errors());
}

TEST(PipelineCompile, ParseErrorHasParseCodeAndDiagnostics) {
  SourceManager sm;
  DiagnosticEngine diags;
  StatusOr<Compiled> c = compile("void f(stream_in<32> in) { uint32 x = ; }", diags, sm);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.render().find("test.c:"), std::string::npos);
}

TEST(PipelineCompile, SemaErrorHasSemaCodeAndDiagnostics) {
  SourceManager sm;
  DiagnosticEngine diags;
  // Parses fine; 'y' is undeclared, which sema must reject.
  StatusOr<Compiled> c =
      compile("void f(stream_in<32> in) { uint32 x; x = y + 1; }", diags, sm);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kSemaError);
  EXPECT_TRUE(diags.has_errors());
}

TEST(PipelineCompile, StatusLocationPointsIntoSource) {
  SourceManager sm;
  DiagnosticEngine diags;
  StatusOr<Compiled> c = compile("void f(stream_in<32> in) {\n  uint32 x = ;\n}", diags, sm);
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().loc().valid());
  EXPECT_EQ(c.status().loc().line, 2u);
}

TEST(PipelineCompile, MissingFileIsIoError) {
  SourceManager sm;
  DiagnosticEngine diags;
  diags.attach(&sm);
  StatusOr<Compiled> c = compile_file(sm, diags, "/nonexistent/nope.c", {});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kIoError);
  EXPECT_NE(c.status().message().find("nope.c"), std::string::npos);
}

TEST(PipelineCompile, SynthesisCanBeSkipped) {
  SourceManager sm;
  DiagnosticEngine diags;
  CompileOptions opt;
  opt.synthesize_assertions = false;
  StatusOr<Compiled> c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 v = stream_read(in);
      assert(v < 50);
      stream_write(out, v);
    }
  )", diags, sm, opt);
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  EXPECT_EQ(c->synth.assertions_synthesized, 0u);
}

TEST(PipelineCompile, OptimizeFlagPopulatesReport) {
  SourceManager sm;
  DiagnosticEngine diags;
  CompileOptions opt;
  opt.optimize_ir = true;
  StatusOr<Compiled> c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 v = stream_read(in);
      uint32 dead = 17;
      stream_write(out, v + 0);
    }
  )", diags, sm, opt);
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  EXPECT_GT(c->opt_report.total(), 0u);
}

}  // namespace
}  // namespace hlsav::pipeline
