// Modulo-scheduler tests: initiation intervals must follow the resource
// model (single RAM port, 2-slot stream-write controller occupancy) that
// the paper's Table 4 rates are derived from.
#include <gtest/gtest.h>

#include "common/test_util.h"
#include "sched/schedule.h"

namespace hlsav::sched {
namespace {

using hlsav::testing::compile;

struct PipelineResult {
  LoopPerf perf;
  ProcessSchedule sched;
};

PipelineResult pipeline_of(hlsav::testing::Compiled& c, const std::string& proc_name,
                           const SchedOptions& opts = {}) {
  ir::verify(c.design);
  const ir::Process& p = c.process(proc_name);
  ProcessSchedule s = schedule_process(c.design, p, opts);
  EXPECT_FALSE(p.loops.empty()) << "no pipelined loop in " << proc_name;
  LoopPerf perf = loop_perf(s, p.loops[0].body);
  return PipelineResult{perf, std::move(s)};
}

TEST(PipelineSched, SimpleAccumulatorHasRateOne) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 base;
      base = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 64; i++) {
        acc = acc + base + i;
      }
      stream_write(out, acc);
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  EXPECT_EQ(r.perf.rate, 1u);
  EXPECT_GE(r.perf.latency, 1u);
}

TEST(PipelineSched, StreamWriteForcesRateTwo) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 base;
      base = stream_read(in);
      #pragma HLS pipeline
      for (uint32 i = 0; i < 64; i++) {
        stream_write(out, base + i);
      }
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  EXPECT_EQ(r.perf.rate, 2u);
}

TEST(PipelineSched, StreamWriteOccupancyAblation) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 base;
      base = stream_read(in);
      #pragma HLS pipeline
      for (uint32 i = 0; i < 64; i++) {
        stream_write(out, base + i);
      }
    }
  )");
  SchedOptions opts;
  opts.stream_write_occupancy = 1;
  PipelineResult r = pipeline_of(*c, "f", opts);
  EXPECT_EQ(r.perf.rate, 1u);
}

TEST(PipelineSched, TwoMemoryAccessesForceRateTwo) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[64];
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 63; i++) {
        buf[i] = x + i;
        acc = acc + buf[i];
      }
      stream_write(out, acc);
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  EXPECT_EQ(r.perf.rate, 2u);
}

TEST(PipelineSched, ThreeAccessesForceRateThree) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[64];
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 1; i < 63; i++) {
        buf[i] = x + i;
        acc = acc + buf[i] + buf[i - 1];
      }
      stream_write(out, acc);
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  EXPECT_EQ(r.perf.rate, 3u);
}

TEST(PipelineSched, TwoPortsHalveTheRate) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[64];
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 63; i++) {
        buf[i] = x + i;
        acc = acc + buf[i];
      }
      stream_write(out, acc);
    }
  )");
  SchedOptions opts;
  opts.mem_ports = 2;
  PipelineResult r = pipeline_of(*c, "f", opts);
  EXPECT_EQ(r.perf.rate, 1u);
}

TEST(PipelineSched, LoopCarriedRecurrenceHonoured) {
  // acc feeds itself through a multiply (depth 3): with chain budget 4
  // the mul+add exceed one stage, forcing acc's recurrence across a
  // register; II must still be >= the recurrence length.
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 1;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 16; i++) {
        acc = acc * 23 + x;
      }
      stream_write(out, acc);
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  // mul(d3)+add(d1) chain in one stage (budget 4): recurrence closes in
  // one stage, II can stay 1.
  EXPECT_EQ(r.perf.rate, 1u);
}

TEST(PipelineSched, HeaderAbsorbedIntoPipeline) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 64; i++) {
        acc = acc + i;
      }
      stream_write(out, acc);
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  const ir::Process& p = c->process("f");
  const BlockSchedule& header = r.sched.of(p.loops[0].header);
  EXPECT_EQ(header.num_states, 0u);
  const BlockSchedule& body = r.sched.of(p.loops[0].body);
  EXPECT_TRUE(body.pipelined);
  EXPECT_EQ(body.header_op_state.size(), p.block(p.loops[0].header).ops.size());
}

TEST(PipelineSched, LatencyCountsStages) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[64];
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 63; i++) {
        acc = acc + buf[i];
        buf[i + 1] = x;
      }
      stream_write(out, acc);
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  // The load's data arrives a stage after issue; the accumulate uses it,
  // so the pipeline is at least 2 stages deep.
  EXPECT_GE(r.perf.latency, 2u);
}

TEST(PipelineSched, CrossIterationMemoryDependence) {
  // Load of buf[i] (early) vs store to buf[i+1] (late) across
  // iterations: the scheduler must keep II large enough that iteration
  // k+1's load does not overtake iteration k's store.
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[64];
      uint32 x;
      x = stream_read(in);
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 62; i++) {
        acc = acc + buf[i];
        buf[i + 1] = acc;
      }
      stream_write(out, acc);
    }
  )");
  PipelineResult r = pipeline_of(*c, "f");
  const ir::Process& p = c->process("f");
  const BlockSchedule& body = r.sched.of(p.loops[0].body);
  // Find load and store stages (body ops only).
  const ir::BasicBlock& b = p.block(p.loops[0].body);
  unsigned load_stage = 0;
  unsigned store_stage = 0;
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    if (b.ops[i].kind == ir::OpKind::kLoad) load_stage = body.op_state[i];
    if (b.ops[i].kind == ir::OpKind::kStore) store_stage = body.op_state[i];
  }
  EXPECT_GE(load_stage + body.ii, store_stage + 1);
}

TEST(PipelineSched, InfeasiblePipelineThrows) {
  // An empty options ceiling forces failure.
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[8];
      uint32 x;
      x = stream_read(in);
      #pragma HLS pipeline
      for (uint32 i = 0; i < 7; i++) {
        buf[i] = x;
        stream_write(out, buf[i] + buf[i + 1]);
      }
    }
  )");
  SchedOptions opts;
  opts.max_ii = 1;  // needs more than 1
  ir::verify(c->design);
  EXPECT_THROW(schedule_process(c->design, c->process("f"), opts), InternalError);
}

}  // namespace
}  // namespace hlsav::sched
