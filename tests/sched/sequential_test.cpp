// Sequential-scheduler tests: these pin down the timing model that the
// paper's Table 3 latencies are later derived from (chaining, synchronous
// block-RAM reads, single application port, exclusive stream states, and
// the assert-tag state-sharing rule).
#include <gtest/gtest.h>

#include "common/test_util.h"
#include "sched/schedule.h"

namespace hlsav::sched {
namespace {

using hlsav::testing::compile;

/// Schedules the given process and returns its schedule.
ProcessSchedule sched_of(hlsav::testing::Compiled& c, const std::string& name,
                         const SchedOptions& opts = {}) {
  ir::verify(c.design);
  return schedule_process(c.design, c.process(name), opts);
}

/// Number of states of the block containing the given op kind.
const ir::BasicBlock* find_block_with(const ir::Process& p, ir::OpKind kind) {
  for (const ir::BasicBlock& b : p.blocks) {
    for (const ir::Op& op : b.ops) {
      if (op.kind == kind) return &b;
    }
  }
  return nullptr;
}

TEST(SequentialSched, ChainedAddsShareAState) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 a;
      a = stream_read(in);
      uint32 x;
      x = a + 1 + 2 + 3;
      stream_write(out, x);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  // Entry block: stream read (exclusive state), then the three adds and
  // the copy chain into a single following state, then the write.
  const ir::BasicBlock& entry = p.block(p.entry);
  EXPECT_EQ(s.of(entry.id).num_states, 3u) << print_schedule(c->design, s);
}

TEST(SequentialSched, ChainDepthLimitSplitsStates) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 a;
      a = stream_read(in);
      uint32 x;
      x = a + 1 + 2 + 3 + 4 + 5 + 6;
      stream_write(out, x);
    }
  )");
  SchedOptions opts;
  opts.chain_depth = 3;
  ProcessSchedule s = sched_of(*c, "f", opts);
  const ir::Process& p = c->process("f");
  // 6 chained adds at depth limit 3 -> 2 compute states (+ read + write).
  EXPECT_EQ(s.of(p.entry).num_states, 4u) << print_schedule(c->design, s);
}

TEST(SequentialSched, SynchronousLoadAddsACycle) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[4];
      buf[0] = stream_read(in);
      uint32 y;
      y = buf[1] + 1;
      stream_write(out, y);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  const ir::BasicBlock& entry = p.block(p.entry);
  const BlockSchedule& bs = s.of(entry.id);
  // read(s0), store(s1), load issues s2 (port free only after store),
  // add chains at s3 when data arrives, write s4.
  unsigned load_state = 0;
  unsigned store_state = 0;
  unsigned add_state = 0;
  for (std::size_t i = 0; i < entry.ops.size(); ++i) {
    if (entry.ops[i].kind == ir::OpKind::kLoad) load_state = bs.op_state[i];
    if (entry.ops[i].kind == ir::OpKind::kStore) store_state = bs.op_state[i];
    if (entry.ops[i].kind == ir::OpKind::kBin) add_state = bs.op_state[i];
  }
  EXPECT_GT(load_state, store_state);
  EXPECT_EQ(add_state, load_state + 1);
}

TEST(SequentialSched, PortConflictSerializesLoads) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[4];
      buf[0] = stream_read(in);
      uint32 y;
      y = buf[1] + buf[2];
      stream_write(out, y);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  const ir::BasicBlock& entry = p.block(p.entry);
  const BlockSchedule& bs = s.of(entry.id);
  std::vector<unsigned> load_states;
  for (std::size_t i = 0; i < entry.ops.size(); ++i) {
    if (entry.ops[i].kind == ir::OpKind::kLoad) load_states.push_back(bs.op_state[i]);
  }
  ASSERT_EQ(load_states.size(), 2u);
  EXPECT_NE(load_states[0], load_states[1]);
}

TEST(SequentialSched, TwoPortsAllowParallelLoads) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[4];
      buf[0] = stream_read(in);
      uint32 y;
      y = buf[1] + buf[2];
      stream_write(out, y);
    }
  )");
  SchedOptions opts;
  opts.mem_ports = 2;
  ProcessSchedule s = sched_of(*c, "f", opts);
  const ir::Process& p = c->process("f");
  const ir::BasicBlock& entry = p.block(p.entry);
  const BlockSchedule& bs = s.of(entry.id);
  std::vector<unsigned> load_states;
  for (std::size_t i = 0; i < entry.ops.size(); ++i) {
    if (entry.ops[i].kind == ir::OpKind::kLoad) load_states.push_back(bs.op_state[i]);
  }
  ASSERT_EQ(load_states.size(), 2u);
  EXPECT_EQ(load_states[0], load_states[1]);
}

TEST(SequentialSched, DistinctMemoriesDoNotConflict) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 a[4];
      uint32 b[4];
      uint32 x;
      x = stream_read(in);
      a[0] = x;
      b[0] = x;
      uint32 y;
      y = a[1] + b[1];
      stream_write(out, y);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  const ir::BasicBlock& entry = p.block(p.entry);
  const BlockSchedule& bs = s.of(entry.id);
  std::vector<unsigned> load_states;
  for (std::size_t i = 0; i < entry.ops.size(); ++i) {
    if (entry.ops[i].kind == ir::OpKind::kLoad) load_states.push_back(bs.op_state[i]);
  }
  ASSERT_EQ(load_states.size(), 2u);
  EXPECT_EQ(load_states[0], load_states[1]);
}

TEST(SequentialSched, StreamOpsGetExclusiveStates) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x);
      stream_write(out, x);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  const ir::BasicBlock& entry = p.block(p.entry);
  const BlockSchedule& bs = s.of(entry.id);
  std::vector<unsigned> stream_states;
  for (std::size_t i = 0; i < entry.ops.size(); ++i) {
    if (entry.ops[i].is_stream_access()) stream_states.push_back(bs.op_state[i]);
  }
  ASSERT_EQ(stream_states.size(), 3u);
  EXPECT_NE(stream_states[0], stream_states[1]);
  EXPECT_NE(stream_states[1], stream_states[2]);
}

TEST(SequentialSched, InlineAssertOpsDoNotShareAppStates) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 y;
      y = x + 1;
      assert(x > 0);
      uint32 z;
      z = y + 2;
      stream_write(out, z);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  const ir::BasicBlock& entry = p.block(p.entry);
  const BlockSchedule& bs = s.of(entry.id);
  // No state may contain both tagged (non-load, non-zero-cost) and
  // untagged compute ops.
  std::map<unsigned, int> state_kind;  // 1=app, 2=assert
  for (std::size_t i = 0; i < entry.ops.size(); ++i) {
    const ir::Op& op = entry.ops[i];
    if (op.kind == ir::OpKind::kAssert || op.kind == ir::OpKind::kAssertTap) continue;
    bool tagged = op.assert_tag != ir::kNoAssertTag && op.kind != ir::OpKind::kLoad;
    int kind = tagged ? 2 : 1;
    auto [it, inserted] = state_kind.emplace(bs.op_state[i], kind);
    if (!inserted) EXPECT_EQ(it->second, kind) << print_schedule(c->design, s);
  }
}

TEST(SequentialSched, BranchConditionLatencyExtendsBlock) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[4];
      buf[0] = stream_read(in);
      uint32 x;
      x = 1;
      while (buf[0] > 0) {
        x = x + 1;
        buf[0] = buf[0] - 1;
      }
      stream_write(out, x);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  // The while-header block loads buf[0] (sync, 1 cycle) and compares:
  // at least 2 states.
  for (const ir::BasicBlock& b : p.blocks) {
    if (b.term.kind == ir::TermKind::kBranch) {
      bool has_load = false;
      for (const ir::Op& op : b.ops) has_load |= op.kind == ir::OpKind::kLoad;
      if (has_load) EXPECT_GE(s.of(b.id).num_states, 2u);
    }
  }
}

TEST(SequentialSched, EmptyJumpBlocksTakeNoStates) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      if (x > 0) {
        x = 1;
      }
      stream_write(out, x);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  const ir::Process& p = c->process("f");
  // The merge block (empty, jump-only) must not add a state; total states
  // stays small.
  unsigned empty_jump_states = 0;
  for (const ir::BasicBlock& b : p.blocks) {
    if (b.ops.empty() && b.term.kind != ir::TermKind::kBranch) {
      empty_jump_states += s.of(b.id).num_states;
    }
  }
  EXPECT_EQ(empty_jump_states, 0u);
}

TEST(SequentialSched, TotalStatesSumsBlocks) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x);
    }
  )");
  ProcessSchedule s = sched_of(*c, "f");
  unsigned sum = 0;
  for (const BlockSchedule& b : s.blocks) sum += b.pipelined ? b.latency : b.num_states;
  EXPECT_EQ(sum, s.total_states);
}

}  // namespace
}  // namespace hlsav::sched
