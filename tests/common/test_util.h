// Shared helpers for tests: compile HLS-C source through the full
// frontend (parse -> sema -> lower) into an ir::Design.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ir/ir.h"
#include "ir/lower.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace hlsav::testing {

struct Compiled {
  SourceManager sm;
  DiagnosticEngine diags;
  std::unique_ptr<lang::Program> program;
  lang::SemaResult sema;
  ir::Design design;

  [[nodiscard]] ir::Process& process(std::string_view name) {
    ir::Process* p = design.find_process(name);
    EXPECT_NE(p, nullptr) << "no process " << name;
    return *p;
  }
};

/// Parses, analyzes and lowers `src`. Expects success unless
/// `expect_ok` is false.
inline std::unique_ptr<Compiled> compile(const std::string& src, bool expect_ok = true,
                                         const std::string& file_name = "test.c") {
  auto c = std::make_unique<Compiled>();
  c->diags.attach(&c->sm);
  c->design.name = "test_design";
  c->program = lang::parse_source(c->sm, c->diags, file_name, src);
  if (c->diags.has_errors()) {
    EXPECT_FALSE(expect_ok) << c->diags.render();
    return c;
  }
  c->sema = lang::analyze(*c->program, c->sm, c->diags);
  if (!c->sema.ok) {
    EXPECT_FALSE(expect_ok) << c->diags.render();
    return c;
  }
  Status lowered = ir::lower_all_processes(c->design, *c->program, c->sm, c->diags);
  EXPECT_EQ(lowered.ok(), expect_ok) << c->diags.render();
  return c;
}

}  // namespace hlsav::testing
