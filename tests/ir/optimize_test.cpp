// IR optimizer tests: folding, copy propagation, DCE, and the safety
// rules (side effects, assertion slices, cross-block liveness).
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "ir/optimize.h"
#include "sim/simulator.h"

namespace hlsav::ir {
namespace {

using hlsav::testing::compile;

unsigned count_ops(const Process& p) {
  unsigned n = 0;
  for (const BasicBlock& b : p.blocks) n += static_cast<unsigned>(b.ops.size());
  return n;
}

TEST(Optimize, FoldsConstantArithmetic) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 k;
      k = (4 + 4) * 8 - 1;
      stream_write(out, stream_read(in) + k);
    }
  )");
  OptReport r = optimize(c->design);
  EXPECT_GE(r.folded + r.removed, 1u);
  verify(c->design);
  // k folded all the way into the add feeding the output stream (and
  // the now-dead computation of k was eliminated).
  const Process& p = *c->design.find_process("f");
  bool add_uses_63 = false;
  for (const BasicBlock& b : p.blocks) {
    for (const Op& op : b.ops) {
      if (op.kind != OpKind::kBin || op.bin != BinKind::kAdd) continue;
      for (const Operand& a : op.args) {
        if (a.is_imm() && a.imm.to_u64() == 63u) add_uses_63 = true;
      }
    }
  }
  EXPECT_TRUE(add_uses_63);
}

TEST(Optimize, RemovesDeadComputation) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      uint32 unused;
      unused = x * x + 7;
      stream_write(out, x);
    }
  )");
  const Process& before = *c->design.find_process("f");
  unsigned ops_before = count_ops(before);
  OptReport r = optimize(c->design);
  EXPECT_GE(r.removed, 2u);  // the mul, the add, the copy into `unused`
  EXPECT_LT(count_ops(*c->design.find_process("f")), ops_before);
  verify(c->design);
}

TEST(Optimize, KeepsSideEffects) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 b[4];
      uint32 x;
      x = stream_read(in);
      b[0] = x;
      stream_write(out, x);
    }
  )");
  optimize(c->design);
  const Process& p = *c->design.find_process("f");
  unsigned stores = 0;
  unsigned stream_ops = 0;
  for (const BasicBlock& b : p.blocks) {
    for (const Op& op : b.ops) {
      if (op.kind == OpKind::kStore) ++stores;
      if (op.is_stream_access()) ++stream_ops;
    }
  }
  EXPECT_EQ(stores, 1u);
  EXPECT_EQ(stream_ops, 2u);
}

TEST(Optimize, PreservesAssertionSlices) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      assert(x * 3 > 0);
      stream_write(out, x);
    }
  )");
  optimize(c->design);
  verify(c->design);
  const Process& p = *c->design.find_process("f");
  bool assert_survives = false;
  for (const BasicBlock& b : p.blocks) {
    for (const Op& op : b.ops) assert_survives |= op.kind == OpKind::kAssert;
  }
  EXPECT_TRUE(assert_survives);
}

TEST(Optimize, CopyPropagationShortensChains) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 a;
      a = stream_read(in);
      uint32 bb;
      bb = a;
      uint32 cc;
      cc = bb;
      stream_write(out, cc);
    }
  )");
  OptReport r = optimize(c->design);
  EXPECT_GE(r.propagated, 1u);
  EXPECT_GE(r.removed, 1u);  // intermediate copies die
  verify(c->design);
}

TEST(Optimize, ConstantBranchBecomesJump) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      if (1 > 0) {
        x = x + 1;
      }
      stream_write(out, x);
    }
  )");
  optimize(c->design);
  verify(c->design);
  const Process& p = *c->design.find_process("f");
  for (const BasicBlock& b : p.blocks) {
    if (b.term.kind == TermKind::kBranch) {
      EXPECT_FALSE(b.term.cond.is_imm()) << "constant branch not folded";
    }
  }
}

TEST(Optimize, FixpointTerminates) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      stream_write(out, stream_read(in));
    }
  )");
  OptOptions o;
  o.max_iterations = 100;
  OptReport r = optimize(c->design, o);
  EXPECT_EQ(r.total(), 0u);  // nothing to do, and it stops
}

// Functional equivalence with and without optimization, across assertion
// configurations, on a realistic kernel.
TEST(Optimize, SimulationResultsUnchanged) {
  const char* src = R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 scale;
      scale = 2 + 2;
      for (uint32 i = 0; i < 6; i++) {
        uint32 v;
        v = stream_read(in);
        uint32 t;
        t = v * scale + (3 - 3);
        assert(t >= v);
        stream_write(out, t);
      }
    }
  )";
  auto run = [&](bool opt) {
    auto c = compile(src);
    ir::Design d = c->design.clone();
    if (opt) optimize(d);
    assertions::synthesize(d, assertions::Options::optimized());
    verify(d);
    sched::DesignSchedule sch = sched::schedule_design(d);
    sim::ExternRegistry ext;
    sim::Simulator s(d, sch, ext, {});
    s.feed("f.in", {1, 2, 3, 4, 5, 6});
    sim::RunResult r = s.run();
    EXPECT_EQ(r.status, sim::RunStatus::kCompleted);
    return s.received("f.out");
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Optimize, ReducesScheduledStates) {
  const char* src = R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 dead1;
      dead1 = 11 * 13;
      uint32 dead2;
      dead2 = dead1 + 5;
      uint32 x;
      x = stream_read(in);
      stream_write(out, x);
    }
  )";
  auto states = [&](bool opt) {
    auto c = compile(src);
    if (opt) optimize(c->design);
    verify(c->design);
    sched::ProcessSchedule s =
        sched::schedule_process(c->design, *c->design.find_process("f"), {});
    return s.total_states;
  };
  EXPECT_LE(states(true), states(false));
}

TEST(DoWhile, DesugarsAndRuns) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 v;
      v = stream_read(in);
      uint32 n;
      n = 0;
      do {
        v = v / 2;
        n = n + 1;
      } while (v > 0);
      stream_write(out, n);
    }
  )");
  verify(c->design);
  sched::DesignSchedule sch = sched::schedule_design(c->design);
  sim::ExternRegistry ext;
  sim::Simulator s(c->design, sch, ext, {});
  s.feed("f.in", {9});  // 9 -> 4 -> 2 -> 1 -> 0: four iterations
  sim::RunResult r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::kCompleted);
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{4}));
}

TEST(DoWhile, BodyRunsAtLeastOnce) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 v;
      v = stream_read(in);
      uint32 n;
      n = 0;
      do {
        n = n + 1;
      } while (0);
      stream_write(out, n + v);
    }
  )");
  sched::DesignSchedule sch = sched::schedule_design(c->design);
  sim::ExternRegistry ext;
  sim::Simulator s(c->design, sch, ext, {});
  s.feed("f.in", {10});
  (void)s.run();
  EXPECT_EQ(s.received("f.out"), (std::vector<std::uint64_t>{11}));
}

}  // namespace
}  // namespace hlsav::ir
