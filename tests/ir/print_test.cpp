// IR printer tests: the textual dump is a debugging interface; keep its
// key landmarks stable.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "ir/ir.h"

namespace hlsav::ir {
namespace {

using hlsav::testing::compile;

TEST(Print, ProcessStructure) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      if (x > 2) {
        x = 2;
      }
      stream_write(out, x);
    }
  )");
  std::string s = print_design(c->design);
  EXPECT_NE(s.find("design test_design"), std::string::npos);
  EXPECT_NE(s.find("process f(in<32> in -> f.in, out<32> out -> f.out)"), std::string::npos);
  EXPECT_NE(s.find("stream_read f.in"), std::string::npos);
  EXPECT_NE(s.find("branch"), std::string::npos);
  EXPECT_NE(s.find("jump"), std::string::npos);
  EXPECT_NE(s.find("return"), std::string::npos);
}

TEST(Print, MemoriesAndRoms) {
  auto c = compile(R"(
    void f(stream_in<8> in, stream_out<8> out) {
      const uint8 lut[2] = {1, 2};
      uint8 buf[4];
      uint8 k;
      k = stream_read(in);
      buf[0] = lut[k & 1];
      stream_write(out, buf[0]);
    }
  )");
  std::string s = print_design(c->design);
  EXPECT_NE(s.find("memory f.lut uint8[2] owner=f role=rom"), std::string::npos);
  EXPECT_NE(s.find("memory f.buf uint8[4] owner=f role=data"), std::string::npos);
  EXPECT_NE(s.find("load f.lut["), std::string::npos);
  EXPECT_NE(s.find("store f.buf["), std::string::npos);
}

TEST(Print, AssertionCatalogue) {
  auto c = compile(R"(
    void f(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(x < 7);
    }
  )", true, "demo.c");
  std::string s = print_design(c->design);
  EXPECT_NE(s.find("assert #0"), std::string::npos);
  EXPECT_NE(s.find("assertion #0 in f: demo.c:"), std::string::npos);
  EXPECT_NE(s.find("Assertion `x < 7' failed."), std::string::npos);
}

TEST(Print, SynthesizedArtifacts) {
  auto c = compile(R"(
    void f(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(x < 7);
      assert_cycles(100);
    }
  )");
  ir::Design d = c->design.clone();
  assertions::synthesize(d, assertions::Options::optimized());
  std::string s = print_design(d);
  EXPECT_NE(s.find("assert_checker"), std::string::npos);
  EXPECT_NE(s.find("assert_collector"), std::string::npos);
  EXPECT_NE(s.find("assert_tap #0"), std::string::npos);
  EXPECT_NE(s.find("assert_cycles #1 bound=100"), std::string::npos);
  EXPECT_NE(s.find("role=assert_packed"), std::string::npos);
}

TEST(Print, PipelinedBodyAnnotated) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 4; i++) {
        acc = acc + i;
      }
      stream_write(out, acc);
    }
  )");
  std::string s = print_design(c->design);
  EXPECT_NE(s.find("; pipelined loop body"), std::string::npos);
}

TEST(Print, PredicatedOps) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      uint32 x;
      x = stream_read(in);
      #pragma HLS pipeline
      for (uint32 i = 0; i < 4; i++) {
        acc = acc + x;
        assert(acc < 10000);
      }
      stream_write(out, acc);
    }
  )");
  ir::Design d = c->design.clone();
  assertions::synthesize(d, assertions::Options::unoptimized());
  std::string s = print_design(d);
  EXPECT_NE(s.find("if !%"), std::string::npos);  // predicated failure send
}

}  // namespace
}  // namespace hlsav::ir
