#include <gtest/gtest.h>

#include "common/test_util.h"
#include "ir/ir.h"

namespace hlsav::ir {
namespace {

using hlsav::testing::compile;

/// Builds a minimal valid design by hand for mutation tests.
Design make_valid() {
  Design d;
  d.name = "v";
  Process& p = d.add_process("p");
  StreamId s = d.add_stream("p.in", 32);
  p.ports.push_back(StreamPort{"in", true, 32, s});
  d.stream(s).consumer = StreamEndpoint{StreamEndpoint::Kind::kProcess, "p", "in"};
  d.connect_cpu_producer(s);

  RegId x = p.add_reg("x", 32, false);
  BlockId b = p.add_block("entry");
  p.entry = b;
  Op read;
  read.kind = OpKind::kStreamRead;
  read.stream = s;
  read.dest = x;
  p.block(b).ops.push_back(read);
  p.block(b).term.kind = TermKind::kReturn;
  return d;
}

TEST(Verify, AcceptsValidDesign) {
  Design d = make_valid();
  EXPECT_NO_THROW(verify(d));
}

TEST(Verify, RejectsWidthMismatch) {
  Design d = make_valid();
  // Make the destination register the wrong width for the stream.
  d.processes[0]->regs[0].width = 16;
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsBadBranchTarget) {
  Design d = make_valid();
  Process& p = *d.processes[0];
  p.block(0).term.kind = TermKind::kJump;
  p.block(0).term.on_true = 99;
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsBranchWithoutCondition) {
  Design d = make_valid();
  Process& p = *d.processes[0];
  BlockId b2 = p.add_block("b2");
  p.block(0).term = Terminator{TermKind::kBranch, Operand::none(), b2, b2};
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsStoreIntoRom) {
  Design d = make_valid();
  MemId m = d.add_memory("p.rom", "p", 8, false, 4);
  d.memory(m).role = MemRole::kRom;
  d.memory(m).init.assign(4, BitVector(8));
  Process& p = *d.processes[0];
  RegId v = p.add_reg("v", 8, false);
  Op st;
  st.kind = OpKind::kStore;
  st.mem = m;
  st.args.push_back(Operand::make_imm(BitVector::from_u64(32, 0)));
  st.args.push_back(Operand::make_reg(v));
  p.block(0).ops.push_back(st);
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsRomWithoutContents) {
  Design d = make_valid();
  MemId m = d.add_memory("p.rom", "p", 8, false, 4);
  d.memory(m).role = MemRole::kRom;
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsReplicaShapeMismatch) {
  Design d = make_valid();
  MemId orig = d.add_memory("p.a", "p", 8, false, 4);
  MemId rep = d.add_memory("p.a_rep", "p", 8, false, 8);  // wrong size
  d.memory(rep).role = MemRole::kReplica;
  d.memory(rep).replica_of = orig;
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsUnboundPort) {
  Design d = make_valid();
  d.processes[0]->ports.push_back(StreamPort{"dangling", true, 32, kNoStream});
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsUnknownExternCall) {
  Design d = make_valid();
  Process& p = *d.processes[0];
  RegId r = p.add_reg("r", 32, false);
  Op call;
  call.kind = OpKind::kCallExtern;
  call.callee = "nope";
  call.dest = r;
  p.block(0).ops.push_back(call);
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, RejectsBadAssertId) {
  Design d = make_valid();
  Process& p = *d.processes[0];
  Op a;
  a.kind = OpKind::kAssert;
  a.assert_id = 42;  // not in the catalogue
  a.args.push_back(Operand::make_imm(BitVector::from_bool(true)));
  p.block(0).ops.push_back(a);
  EXPECT_THROW(verify(d), InternalError);
}

TEST(Verify, AcceptsLoweredApplications) {
  auto c = compile(R"(
    extern uint32 myext(uint32 v);
    void a(stream_in<32> in, stream_out<32> out) {
      uint32 buf[16];
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < 16; i++) {
        buf[i] = stream_read(in);
        assert(buf[i] != 0);
        acc = acc + buf[i];
      }
      stream_write(out, myext(acc));
    }
  )");
  EXPECT_NO_THROW(verify(c->design));
}

}  // namespace
}  // namespace hlsav::ir
