#include <gtest/gtest.h>

#include "common/test_util.h"
#include "ir/lower.h"

namespace hlsav::ir {
namespace {

using hlsav::testing::compile;

TEST(Lower, SimpleProcessShape) {
  auto c = compile(R"(
    void loopback(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x);
    }
  )");
  Process& p = c->process("loopback");
  ASSERT_EQ(p.ports.size(), 2u);
  EXPECT_TRUE(p.ports[0].is_input);
  EXPECT_FALSE(p.ports[1].is_input);
  // Every port got a CPU-facing stream.
  ASSERT_EQ(c->design.streams.size(), 2u);
  EXPECT_EQ(c->design.streams[0].producer.kind, StreamEndpoint::Kind::kCpu);
  EXPECT_EQ(c->design.streams[1].consumer.kind, StreamEndpoint::Kind::kCpu);
  verify(c->design);
}

TEST(Lower, ArrayBecomesMemory) {
  auto c = compile(R"(
    void f(stream_in<16> in) {
      uint16 buf[64];
      buf[0] = stream_read(in);
    }
  )");
  ASSERT_EQ(c->design.memories.size(), 1u);
  const Memory& m = c->design.memories[0];
  EXPECT_EQ(m.name, "f.buf");
  EXPECT_EQ(m.size, 64u);
  EXPECT_EQ(m.width, 16u);
  EXPECT_EQ(m.role, MemRole::kData);
  verify(c->design);
}

TEST(Lower, ConstArrayBecomesRom) {
  auto c = compile(R"(
    void f(stream_in<8> in, stream_out<8> out) {
      const uint8 lut[4] = {10, 20, 30, 40};
      uint8 i;
      i = stream_read(in);
      stream_write(out, lut[i]);
    }
  )");
  const Memory& m = c->design.memories[0];
  EXPECT_EQ(m.role, MemRole::kRom);
  ASSERT_EQ(m.init.size(), 4u);
  EXPECT_EQ(m.init[2].to_u64(), 30u);
  verify(c->design);
}

TEST(Lower, ReplicatePragmaRecorded) {
  auto c = compile(R"(
    void f(stream_in<16> in) {
      #pragma HLS replicate
      uint16 buf[8];
      buf[0] = stream_read(in);
    }
  )");
  EXPECT_TRUE(c->design.memories[0].replicate_for_assertions);
}

TEST(Lower, IfProducesDiamond) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      if (x > 10) {
        x = 10;
      } else {
        x = 0;
      }
      stream_write(out, x);
    }
  )");
  Process& p = c->process("f");
  // entry, then, else, merge (at least).
  EXPECT_GE(p.blocks.size(), 4u);
  const BasicBlock& entry = p.block(p.entry);
  EXPECT_EQ(entry.term.kind, TermKind::kBranch);
  verify(c->design);
}

TEST(Lower, ForLoopCanonicalShape) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < 8; i++) {
        acc = acc + i;
      }
      stream_write(out, acc);
    }
  )");
  Process& p = c->process("f");
  // Find the header: a block with a branch whose true target jumps back.
  bool found = false;
  for (const BasicBlock& b : p.blocks) {
    if (b.term.kind != TermKind::kBranch) continue;
    const BasicBlock& body = p.block(b.term.on_true);
    if (body.term.kind == TermKind::kJump && body.term.on_true == b.id) found = true;
  }
  EXPECT_TRUE(found) << print_process(c->design, p);
  verify(c->design);
}

TEST(Lower, PipelinedLoopRecorded) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 8; i++) {
        acc = acc + i;
      }
      stream_write(out, acc);
    }
  )");
  Process& p = c->process("f");
  ASSERT_EQ(p.loops.size(), 1u);
  EXPECT_TRUE(p.loops[0].pipelined);
  const BasicBlock& body = p.block(p.loops[0].body);
  EXPECT_EQ(body.term.kind, TermKind::kJump);
  EXPECT_EQ(body.term.on_true, p.loops[0].header);
}

TEST(Lower, PipelineWithControlFlowWarnsAndFallsBack) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 8; i++) {
        if (i > 4) { acc = acc + i; }
      }
      stream_write(out, acc);
    }
  )");
  Process& p = c->process("f");
  EXPECT_TRUE(p.loops.empty());
  bool warned = false;
  for (const auto& d : c->diags.diagnostics()) {
    if (d.severity == Severity::kWarning) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(Lower, AssertTagsConditionSlice) {
  auto c = compile(R"(
    void f(stream_in<32> in) {
      uint32 a[4];
      uint32 i;
      i = stream_read(in);
      a[0] = i;
      assert(a[0] > 0);
    }
  )");
  Process& p = c->process("f");
  unsigned tagged_loads = 0;
  unsigned tagged_cmps = 0;
  unsigned assert_ops = 0;
  for (const BasicBlock& b : p.blocks) {
    for (const Op& op : b.ops) {
      if (op.assert_tag == kNoAssertTag) continue;
      if (op.kind == OpKind::kLoad) ++tagged_loads;
      if (op.kind == OpKind::kBin) ++tagged_cmps;
      if (op.kind == OpKind::kAssert) ++assert_ops;
    }
  }
  EXPECT_EQ(tagged_loads, 1u);
  EXPECT_EQ(tagged_cmps, 1u);
  EXPECT_EQ(assert_ops, 1u);
  // The app's own store is not tagged.
  ASSERT_EQ(c->design.assertions.size(), 1u);
  EXPECT_EQ(c->design.assertions[0].process, "f");
  EXPECT_EQ(c->design.assertions[0].condition_text, "a[0] > 0");
}

TEST(Lower, BreakAndContinue) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < 100; i++) {
        if (i == 50) { break; }
        if (i % 2 == 0) { continue; }
        acc = acc + i;
      }
      stream_write(out, acc);
    }
  )");
  verify(c->design);
}

TEST(Lower, LogicalOpsNonShortCircuit) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<1> out) {
      uint32 j;
      j = stream_read(in);
      stream_write(out, j > 1 && j < 9);
    }
  )");
  Process& p = c->process("f");
  unsigned and_ops = 0;
  for (const BasicBlock& b : p.blocks) {
    for (const Op& op : b.ops) {
      if (op.kind == OpKind::kBin && op.bin == BinKind::kAnd) ++and_ops;
    }
  }
  EXPECT_EQ(and_ops, 1u);
  verify(c->design);
}

TEST(Lower, ExternRegistered) {
  auto c = compile(R"(
    extern uint32 clz32(uint32 v);
    void f(stream_in<32> in, stream_out<32> out) {
      stream_write(out, clz32(stream_read(in)));
    }
  )");
  ASSERT_EQ(c->design.extern_funcs.size(), 1u);
  EXPECT_EQ(c->design.extern_funcs[0].name, "clz32");
  verify(c->design);
}

TEST(Lower, DuplicateInstantiationRejected) {
  auto c = compile(R"(
    void f(stream_in<32> in) { uint32 x; x = stream_read(in); }
  )");
  DiagnosticEngine diags2(&c->sm);
  Process* again = lower_process(c->design, *c->program, *c->program->functions[0], c->sm, diags2);
  EXPECT_EQ(again, nullptr);
  EXPECT_TRUE(diags2.has_errors());
}

TEST(Lower, ConstEval) {
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  auto prog = lang::parse_source(sm, diags, "t.c", R"(
    void f(stream_in<32> in) {
      const uint32 c = (1 << 4) + 3;
      uint32 x;
      x = c;
    }
  )");
  ASSERT_FALSE(diags.has_errors());
  lang::analyze(*prog, sm, diags);
  const lang::Stmt& decl = *prog->functions[0]->body[0];
  auto v = eval_const_expr(*decl.decl_init[0]);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_u64(), 19u);
}

TEST(Lower, DesignClone) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      stream_write(out, x);
    }
  )");
  Design copy = c->design.clone();
  EXPECT_EQ(copy.processes.size(), c->design.processes.size());
  EXPECT_EQ(copy.assertions.size(), 1u);
  // Mutating the copy leaves the original untouched.
  copy.find_process("f")->regs[0].name = "renamed";
  EXPECT_NE(c->design.find_process("f")->regs[0].name, "renamed");
  verify(copy);
}

}  // namespace
}  // namespace hlsav::ir
