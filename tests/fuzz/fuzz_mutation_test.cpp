// Deterministic mutation fuzzing of the whole compile pipeline.
//
// Every iteration derives a mutant of a known-good corpus program from
// a fixed seed, pushes it through pipeline::compile_source, and -- when
// it still compiles -- through a budgeted simulation. The contract
// under test is the robustness layer's: any input yields either a
// Status/diagnostic or a successful run; nothing throws out of the
// pipeline and nothing aborts the process. A single escaped exception
// or HLSAV_CHECK abort fails (or kills) this test.
//
// The seeds are fixed (kSeedBase + iteration index), so a CI failure
// reproduces locally by running the same gtest filter: no corpus
// files, no clock, no randomness source outside SplitMix64.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "pipeline/compile.h"
#include "sim/simulator.h"
#include "support/status.h"

namespace hlsav {
namespace {

// Known-good corpus: each entry exercises a different frontend/IR
// surface (loops, branches, assertions, memories, multiple processes,
// timing assertions) so mutants probe more than one recovery path.
const char* const kCorpus[] = {
    R"(
void f(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 3; i++) {
    uint32 v;
    v = stream_read(in);
    assert(v < 50);
    stream_write(out, v + 1);
  }
}
)",
    R"(
void clamp(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 6; i++) {
    uint32 v = stream_read(in);
    uint32 y = v;
    if (y > 255) { y = 255; }
    assert(y <= 255);
    stream_write(out, y);
  }
}
)",
    R"(
void acc(stream_in<16> in, stream_out<32> out) {
  uint32 sum = 0;
  for (uint32 i = 0; i < 8; i++) {
    uint16 v = stream_read(in);
    sum = sum + v;
  }
  assert(sum >= 0);
  stream_write(out, sum);
}
)",
    R"(
void mem(stream_in<8> in, stream_out<8> out) {
  uint8 buf[16];
  for (uint32 i = 0; i < 4; i++) {
    buf[i] = stream_read(in);
  }
  for (uint32 j = 0; j < 4; j++) {
    stream_write(out, buf[j]);
  }
}
)",
    R"(
void wide(stream_in<32> a, stream_in<32> b, stream_out<32> out) {
  for (uint32 i = 0; i < 2; i++) {
    uint32 x = stream_read(a);
    uint32 y = stream_read(b);
    if (x < y) {
      stream_write(out, y - x);
    } else {
      stream_write(out, x - y);
    }
  }
}
)",
};

// Keyword swaps produce mutants that lex cleanly but stress the parser
// and sema recovery paths much harder than byte noise does.
const char* const kKeywords[] = {
    "uint32", "uint16", "uint8",       "for",          "if",        "else",
    "assert", "void",   "stream_read", "stream_write", "stream_in", "stream_out",
};

struct SplitMix64 {
  std::uint64_t state;
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

std::string mutate_once(std::string s, SplitMix64& rng) {
  if (s.empty()) return s;
  switch (rng.below(6)) {
    case 0: {  // byte flip: any byte value, not just printable ones
      s[rng.below(s.size())] = static_cast<char>(rng.below(256));
      return s;
    }
    case 1: {  // insertion
      const char* pool = "(){};<>=+-*/,&|!0123456789abcxyz \n\"";
      s.insert(rng.below(s.size() + 1), 1, pool[rng.below(35)]);
      return s;
    }
    case 2: {  // range deletion
      std::size_t at = rng.below(s.size());
      s.erase(at, 1 + rng.below(8));
      return s;
    }
    case 3: {  // range duplication
      std::size_t at = rng.below(s.size());
      std::size_t len = 1 + rng.below(12);
      if (at + len > s.size()) len = s.size() - at;
      s.insert(at, s.substr(at, len));
      return s;
    }
    case 4: {  // truncation (unterminated constructs, torn tokens)
      s.resize(rng.below(s.size() + 1));
      return s;
    }
    default: {  // keyword swap
      const char* from = kKeywords[rng.below(std::size(kKeywords))];
      const char* to = kKeywords[rng.below(std::size(kKeywords))];
      std::size_t at = s.find(from);
      if (at != std::string::npos) s.replace(at, std::string(from).size(), to);
      return s;
    }
  }
}

constexpr std::uint64_t kSeedBase = 0x48'4c'53'41'56'00ull;  // stable across runs
constexpr int kIterations = 500;

TEST(FuzzMutation, PipelineNeverCrashesOnMutatedCorpus) {
  int compiled = 0;
  int diagnosed = 0;
  for (int i = 0; i < kIterations; ++i) {
    SplitMix64 rng(kSeedBase + static_cast<std::uint64_t>(i));
    std::string src = kCorpus[rng.below(std::size(kCorpus))];
    std::size_t rounds = 1 + rng.below(4);
    for (std::size_t m = 0; m < rounds; ++m) src = mutate_once(std::move(src), rng);

    SourceManager sm;
    DiagnosticEngine diags;
    diags.attach(&sm);
    StatusOr<pipeline::Compiled> c = pipeline::compile_source(sm, diags, "fuzz.c", src);
    if (!c.ok()) {
      ++diagnosed;
      // The status must be a documented, renderable error -- and the
      // rendering itself must not throw on mutated (possibly binary)
      // source bytes.
      EXPECT_NE(c.status().code(), StatusCode::kOk) << "iteration " << i;
      EXPECT_FALSE(c.status().to_string().empty()) << "iteration " << i;
      (void)diags.render();
      continue;
    }
    ++compiled;

    // Mutants that survive the frontend get a budgeted run: feed every
    // CPU-facing stream a little data and bound the cycles, so hangs
    // terminate and any escaping exception turns into a test failure.
    Status sim_status = catch_internal([&] {
      sim::SimOptions so;
      so.max_cycles = 2000;
      sim::ExternRegistry externs;
      sim::Simulator simulator(c->design, c->schedule, externs, so);
      for (const ir::Stream& s : c->design.streams) {
        if (s.dead) continue;
        // Non-CPU streams reject the feed with a Status; that is fine.
        (void)simulator.try_feed(s.name, {0, 1, 1, 0});
      }
      (void)simulator.run();
    });
    EXPECT_TRUE(sim_status.ok())
        << "iteration " << i << ": " << sim_status.to_string() << "\nmutant:\n"
        << src;
  }
  // The mutator must exercise both sides of the contract; an all-reject
  // (or all-accept) run means the corpus or mutation mix regressed.
  EXPECT_GT(compiled, 0);
  EXPECT_GT(diagnosed, 0);
  EXPECT_EQ(compiled + diagnosed, kIterations);
}

// Unmutated corpus entries must always compile: guards against the
// corpus rotting as the language evolves (which would silently turn the
// fuzzer into an error-path-only test).
TEST(FuzzMutation, CorpusItselfCompilesClean) {
  for (std::size_t i = 0; i < std::size(kCorpus); ++i) {
    SourceManager sm;
    DiagnosticEngine diags;
    diags.attach(&sm);
    StatusOr<pipeline::Compiled> c =
        pipeline::compile_source(sm, diags, "corpus.c", kCorpus[i]);
    EXPECT_TRUE(c.ok()) << "corpus[" << i << "]: " << c.status().to_string() << "\n"
                        << diags.render();
  }
}

}  // namespace
}  // namespace hlsav
