// Assertion-synthesis tests.
//
// The heart of the reproduction: the Table 3 and Table 4 overheads of the
// paper must *emerge* from assertion synthesis + scheduling of the
// micro-kernels, not be hard-coded anywhere.
#include <gtest/gtest.h>

#include "assertions/notify.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sched/schedule.h"

namespace hlsav::assertions {
namespace {

using hlsav::testing::compile;

/// Compiles `src`, applies `opt`, verifies, schedules, and returns the
/// total FSM state count of process `proc`.
struct Synthesized {
  ir::Design design;
  SynthesisReport report;
  sched::ProcessSchedule sched;
};

Synthesized run(const std::string& src, const Options& opt, const std::string& proc = "k") {
  auto c = compile(src);
  Synthesized out{c->design.clone(), {}, {}};
  out.report = synthesize(out.design, opt);
  ir::verify(out.design);
  out.sched = sched::schedule_process(out.design, *out.design.find_process(proc), {});
  return out;
}

// ------------------------------------------------------------- basics --

TEST(AssertSynth, NdebugStripsEverything) {
  auto s = run(R"(
    void k(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      stream_write(out, x);
    }
  )", Options::ndebug());
  EXPECT_EQ(s.report.assertions_stripped, 1u);
  EXPECT_TRUE(s.design.assertions.empty());
  for (const auto& p : s.design.processes) {
    for (const auto& b : p->blocks) {
      for (const auto& op : b.ops) {
        EXPECT_EQ(op.assert_tag, ir::kNoAssertTag);
        EXPECT_NE(op.kind, ir::OpKind::kAssert);
      }
    }
  }
}

TEST(AssertSynth, UnoptimizedCreatesFailStreamAndBranch) {
  auto s = run(R"(
    void k(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      stream_write(out, x);
    }
  )", Options::unoptimized());
  EXPECT_EQ(s.report.assertions_synthesized, 1u);
  EXPECT_EQ(s.report.fail_streams_created, 1u);
  EXPECT_EQ(s.report.checker_processes, 0u);
  // One kAssertFail stream exists and the record points at it.
  const ir::AssertionRecord& rec = s.design.assertions[0];
  EXPECT_NE(rec.fail_stream, ir::kNoStream);
  EXPECT_EQ(s.design.stream(rec.fail_stream).role, ir::StreamRole::kAssertFail);
  EXPECT_EQ(rec.fail_code, rec.id);
  // The process gained a failure branch.
  const ir::Process& p = *s.design.find_process("k");
  bool has_fail_write = false;
  for (const auto& b : p.blocks) {
    for (const auto& op : b.ops) {
      if (op.kind == ir::OpKind::kStreamWrite && op.stream == rec.fail_stream) {
        has_fail_write = true;
      }
    }
  }
  EXPECT_TRUE(has_fail_write);
}

TEST(AssertSynth, ParallelizedCreatesChecker) {
  Options opt;
  opt.parallelize = true;
  auto s = run(R"(
    void k(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      stream_write(out, x);
    }
  )", opt);
  EXPECT_EQ(s.report.checker_processes, 1u);
  const ir::AssertionRecord& rec = s.design.assertions[0];
  EXPECT_FALSE(rec.checker_process.empty());
  const ir::Process* chk = s.design.find_process(rec.checker_process);
  ASSERT_NE(chk, nullptr);
  EXPECT_EQ(chk->role, ir::ProcessRole::kAssertChecker);
  ASSERT_EQ(rec.checker_inputs.size(), 1u);
  // The app kept a zero-cost tap.
  const ir::Process& p = *s.design.find_process("k");
  unsigned taps = 0;
  for (const auto& b : p.blocks) {
    for (const auto& op : b.ops) {
      if (op.kind == ir::OpKind::kAssertTap) ++taps;
    }
  }
  EXPECT_EQ(taps, 1u);
}

TEST(AssertSynth, SharedChannelsCreateCollectors) {
  Options opt;
  opt.share_channels = true;
  opt.channel_width = 2;  // force multiple collectors with 3 assertions
  auto s = run(R"(
    void k(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      assert(x < 100);
      assert(x != 13);
      stream_write(out, x);
    }
  )", opt);
  EXPECT_EQ(s.report.collector_processes, 2u);
  EXPECT_EQ(s.design.assertions[0].fail_bit, 0u);
  EXPECT_EQ(s.design.assertions[1].fail_bit, 1u);
  EXPECT_EQ(s.design.assertions[2].fail_bit, 0u);
  EXPECT_NE(s.design.assertions[0].fail_stream, s.design.assertions[2].fail_stream);
  EXPECT_EQ(s.design.stream(s.design.assertions[0].fail_stream).role,
            ir::StreamRole::kAssertPacked);
}

TEST(AssertSynth, NabortRecordedOnDesign) {
  Options opt;
  opt.nabort = true;
  auto s = run(R"(
    void k(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(0);
    }
  )", opt);
  EXPECT_TRUE(s.design.continue_on_failure);
}

TEST(AssertSynth, AssertZeroHasNoInputs) {
  Options opt;
  opt.parallelize = true;
  auto s = run(R"(
    void k(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(0);
    }
  )", opt);
  EXPECT_TRUE(s.design.assertions[0].checker_inputs.empty());
}

// --------------------------------------- Table 3: non-pipelined latency --

// Micro-kernels mirroring §5.4. The measured quantity is the total FSM
// state count of the application process; overhead = states(cfg) -
// states(NDEBUG original).

unsigned states_of(const std::string& src, const Options& opt) {
  Synthesized s = run(src, opt);
  // The paper's latency metric: states on the passing path. Failure
  // branches exist in the FSM (they cost area) but never cost the
  // application a cycle unless an assertion actually fires.
  return sched::passing_path_states(*s.design.find_process("k"), s.sched);
}

const char* kScalarKernel = R"(
  void k(stream_in<32> in, stream_out<32> out) {
    uint32 x;
    x = stream_read(in);
    uint32 y;
    y = x + 1;
    assert(x > 0);
    stream_write(out, y);
  }
)";

TEST(AssertSynthTable3, ScalarUnoptimizedAddsOneState) {
  unsigned base = states_of(kScalarKernel, Options::ndebug());
  EXPECT_EQ(states_of(kScalarKernel, Options::unoptimized()), base + 1);
}

TEST(AssertSynthTable3, ScalarOptimizedAddsNothing) {
  unsigned base = states_of(kScalarKernel, Options::ndebug());
  EXPECT_EQ(states_of(kScalarKernel, Options::optimized()), base + 0);
}

// Non-consecutive: the application last touched `b` several statements
// before the assertion, and has a port-free state the extraction load can
// merge into.
const char* kArrayNonConsecutiveKernel = R"(
  void k(stream_in<32> in, stream_out<32> out) {
    uint32 b[8];
    uint32 c[8];
    uint32 x;
    x = stream_read(in);
    b[0] = x;
    c[0] = x;
    uint32 w;
    w = c[0] + 1;
    assert(b[1] > 0);
    stream_write(out, w);
  }
)";

TEST(AssertSynthTable3, ArrayNonConsecutiveUnoptimizedAddsOneState) {
  unsigned base = states_of(kArrayNonConsecutiveKernel, Options::ndebug());
  EXPECT_EQ(states_of(kArrayNonConsecutiveKernel, Options::unoptimized()), base + 1);
}

TEST(AssertSynthTable3, ArrayNonConsecutiveOptimizedAddsNothing) {
  unsigned base = states_of(kArrayNonConsecutiveKernel, Options::ndebug());
  EXPECT_EQ(states_of(kArrayNonConsecutiveKernel, Options::optimized()), base + 0);
}

// Consecutive: the application stores to `b` immediately before the
// assertion reads it, and reads it again right after -- the single
// application port is busy in every adjacent state.
const char* kArrayConsecutiveKernel = R"(
  void k(stream_in<32> in, stream_out<32> out) {
    uint32 b[8];
    uint32 x;
    x = stream_read(in);
    b[0] = x;
    assert(b[0] > 0);
    uint32 y;
    y = b[1];
    stream_write(out, y);
  }
)";

TEST(AssertSynthTable3, ArrayConsecutiveUnoptimizedAddsTwoStates) {
  unsigned base = states_of(kArrayConsecutiveKernel, Options::ndebug());
  EXPECT_EQ(states_of(kArrayConsecutiveKernel, Options::unoptimized()), base + 2);
}

TEST(AssertSynthTable3, ArrayConsecutiveOptimizedAddsOneState) {
  unsigned base = states_of(kArrayConsecutiveKernel, Options::ndebug());
  // Table 3: extraction still needs one state for the port-conflicted
  // block-RAM read. (Replication is not applied outside pipelines unless
  // the pragma asks for it.)
  Options opt;
  opt.parallelize = true;
  EXPECT_EQ(states_of(kArrayConsecutiveKernel, opt), base + 1);
}

// ------------------------------------------ Table 4: pipelined overhead --

sched::LoopPerf perf_of(const std::string& src, const Options& opt) {
  Synthesized s = run(src, opt);
  const ir::Process& p = *s.design.find_process("k");
  EXPECT_EQ(p.loops.size(), 1u);
  return sched::loop_perf(s.sched, p.loops[0].body);
}

const char* kPipelinedScalarKernel = R"(
  void k(stream_in<32> in, stream_out<32> out) {
    uint32 x;
    x = stream_read(in);
    uint32 acc;
    acc = 0;
    #pragma HLS pipeline
    for (uint32 i = 0; i < 64; i++) {
      uint32 t;
      t = x * 23 + i;
      acc = acc + t;
      assert(t > 0);
    }
    stream_write(out, acc);
  }
)";

TEST(AssertSynthTable4, PipelinedScalarOriginal) {
  sched::LoopPerf perf = perf_of(kPipelinedScalarKernel, Options::ndebug());
  EXPECT_EQ(perf.latency, 2u);
  EXPECT_EQ(perf.rate, 1u);
}

TEST(AssertSynthTable4, PipelinedScalarUnoptimized) {
  // Paper: latency 2 -> 3 (+1), rate 1 -> 2 (the failure send's stream
  // call halves the throughput).
  sched::LoopPerf perf = perf_of(kPipelinedScalarKernel, Options::unoptimized());
  EXPECT_EQ(perf.latency, 3u);
  EXPECT_EQ(perf.rate, 2u);
}

TEST(AssertSynthTable4, PipelinedScalarOptimized) {
  // Paper: all overhead eliminated (2x speedup vs unoptimized).
  sched::LoopPerf perf = perf_of(kPipelinedScalarKernel, Options::optimized());
  EXPECT_EQ(perf.latency, 2u);
  EXPECT_EQ(perf.rate, 1u);
}

const char* kPipelinedArrayKernel = R"(
  void k(stream_in<32> in, stream_out<32> out) {
    uint32 x;
    x = stream_read(in);
    uint32 acc;
    acc = 0;
    #pragma HLS replicate
    uint32 b[64];
    #pragma HLS pipeline
    for (uint32 i = 0; i < 64; i++) {
      acc = acc + b[i];
      b[i] = x + i;
      assert(b[i] > 0);
    }
    stream_write(out, acc);
  }
)";

TEST(AssertSynthTable4, PipelinedArrayOriginal) {
  sched::LoopPerf perf = perf_of(kPipelinedArrayKernel, Options::ndebug());
  EXPECT_EQ(perf.latency, 2u);
  EXPECT_EQ(perf.rate, 2u);
}

TEST(AssertSynthTable4, PipelinedArrayUnoptimized) {
  // Paper: latency 2 -> 4, rate 2 -> 3 (third port access).
  sched::LoopPerf perf = perf_of(kPipelinedArrayKernel, Options::unoptimized());
  EXPECT_EQ(perf.latency, 4u);
  EXPECT_EQ(perf.rate, 3u);
}

TEST(AssertSynthTable4, PipelinedArrayOptimizedWithReplication) {
  // Paper: latency 2 -> 3, rate stays 2 (33% throughput recovery).
  sched::LoopPerf perf = perf_of(kPipelinedArrayKernel, Options::optimized());
  EXPECT_EQ(perf.latency, 3u);
  EXPECT_EQ(perf.rate, 2u);
}

TEST(AssertSynthTable4, ReplicationCreatesMirroredStores) {
  Synthesized s = run(kPipelinedArrayKernel, Options::optimized());
  EXPECT_EQ(s.report.replicas_created, 1u);
  // One replica memory exists, same shape as the original.
  const ir::Memory* replica = nullptr;
  for (const ir::Memory& m : s.design.memories) {
    if (m.role == ir::MemRole::kReplica) replica = &m;
  }
  ASSERT_NE(replica, nullptr);
  const ir::Memory& orig = s.design.memory(replica->replica_of);
  EXPECT_EQ(replica->size, orig.size);
  // Every application store to the original has a mirror to the replica.
  const ir::Process& p = *s.design.find_process("k");
  unsigned orig_stores = 0;
  unsigned mirror_stores = 0;
  for (const auto& b : p.blocks) {
    for (const auto& op : b.ops) {
      if (op.kind != ir::OpKind::kStore) continue;
      if (op.mem == orig.id) ++orig_stores;
      if (op.mem == replica->id) ++mirror_stores;
    }
  }
  EXPECT_EQ(orig_stores, mirror_stores);
  EXPECT_GE(orig_stores, 1u);
}

// ----------------------------------------------------- stream book-keeping --

TEST(AssertSynth, OneFailStreamPerProcessUnshared) {
  auto c = compile(R"(
    void p1(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      assert(x < 9);
    }
    void p2(stream_in<32> in) {
      uint32 y;
      y = stream_read(in);
      assert(y > 0);
    }
  )");
  ir::Design d = c->design.clone();
  SynthesisReport rep = synthesize(d, Options::unoptimized());
  EXPECT_EQ(rep.fail_streams_created, 2u);  // one per process
  ir::verify(d);
}

TEST(AssertSynth, SharedChannelsReduceStreams) {
  auto c = compile(R"(
    void p1(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      assert(x < 9);
    }
    void p2(stream_in<32> in) {
      uint32 y;
      y = stream_read(in);
      assert(y > 0);
    }
  )");
  ir::Design d = c->design.clone();
  Options opt;
  opt.share_channels = true;
  SynthesisReport rep = synthesize(d, opt);
  EXPECT_EQ(rep.collector_processes, 1u);  // 3 assertions fit one 32-bit word
  EXPECT_EQ(rep.fail_streams_created, 1u);
  ir::verify(d);
}

}  // namespace
}  // namespace hlsav::assertions
