// Framework-description (Fig. 1 rendering) and trace tests.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/report.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/simulator.h"

namespace hlsav::assertions {
namespace {

using hlsav::testing::compile;

const char* kSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 acc;
    acc = 0;
    #pragma HLS replicate
    uint32 b[8];
    uint32 x;
    x = stream_read(in);
    #pragma HLS pipeline
    for (uint32 i = 0; i < 8; i++) {
      acc = acc + b[i];
      b[i] = x;
      assert(b[i] < 999);
    }
    assert(acc != 1);
    stream_write(out, acc);
  }
)";

TEST(FrameworkReport, ListsAllComponents) {
  auto c = compile(kSrc);
  ir::Design d = c->design.clone();
  synthesize(d, Options::optimized());
  std::string s = describe_framework(d);
  EXPECT_NE(s.find("application tasks:"), std::string::npos);
  EXPECT_NE(s.find("f (2 assertions)"), std::string::npos);
  EXPECT_NE(s.find("assertion checkers"), std::string::npos);
  EXPECT_NE(s.find("failure collectors"), std::string::npos);
  EXPECT_NE(s.find("replicated RAMs"), std::string::npos)
      << s.substr(0, 200);
  EXPECT_NE(s.find("mirrors f.b"), std::string::npos);
  EXPECT_NE(s.find("notification decode table:"), std::string::npos);
  EXPECT_NE(s.find("bit 0"), std::string::npos);
}

TEST(FrameworkReport, StrippedDesignShowsNoChannels) {
  auto c = compile(kSrc);
  ir::Design d = c->design.clone();
  synthesize(d, Options::ndebug());
  std::string s = describe_framework(d);
  EXPECT_NE(s.find("(none"), std::string::npos);
}

TEST(Trace, RecordsExecution) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x + 1);
    }
  )");
  ir::Design d = c->design.clone();
  synthesize(d, Options::ndebug());
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::SimOptions so;
  so.trace = true;
  sim::Simulator s(d, sch, ext, so);
  s.feed("f.in", {1});
  (void)s.run();
  ASSERT_FALSE(s.trace().empty());
  EXPECT_EQ(s.trace().front().process, "f");
  EXPECT_EQ(s.trace().front().kind, ir::OpKind::kStreamRead);
  // Events carry cycles in non-decreasing order per process here.
  EXPECT_LE(s.trace().front().cycle, s.trace().back().cycle);
  std::string rendered = s.render_trace(&c->sm);
  EXPECT_NE(rendered.find("f: stream_read"), std::string::npos);
}

TEST(Trace, RespectsLimit) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      for (uint32 i = 0; i < 100; i++) {
        acc = acc + i;
      }
      stream_write(out, acc + stream_read(in));
    }
  )");
  ir::Design d = c->design.clone();
  synthesize(d, Options::ndebug());
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::SimOptions so;
  so.trace = true;
  so.trace_limit = 10;
  sim::Simulator s(d, sch, ext, so);
  s.feed("f.in", {1});
  (void)s.run();
  EXPECT_EQ(s.trace().size(), 10u);
}

TEST(Trace, OffByDefault) {
  auto c = compile(R"(
    void f(stream_in<32> in, stream_out<32> out) {
      stream_write(out, stream_read(in));
    }
  )");
  ir::Design d = c->design.clone();
  synthesize(d, Options::ndebug());
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("f.in", {1});
  (void)s.run();
  EXPECT_TRUE(s.trace().empty());
}

}  // namespace
}  // namespace hlsav::assertions
