// Grouped checkers: the §3.3 extension the paper leaves as future work.
// One checker process per application process with per-assertion
// sub-blocks, instead of one process per assertion.
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "fpga/area.h"
#include "rtl/netlist.h"
#include "sim/simulator.h"

namespace hlsav::assertions {
namespace {

using hlsav::testing::compile;

const char* kThreeAssertSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    for (uint32 i = 0; i < 4; i++) {
      uint32 v;
      v = stream_read(in);
      assert(v > 0);
      assert(v < 100);
      assert(v != 13);
      stream_write(out, v);
    }
  }
)";

Options grouped() {
  Options o;
  o.parallelize = true;
  o.group_checkers = true;
  return o;
}

Options ungrouped() {
  Options o;
  o.parallelize = true;
  return o;
}

TEST(GroupedCheckers, OneCheckerProcessPerAppProcess) {
  auto c = compile(kThreeAssertSrc);
  ir::Design d = c->design.clone();
  SynthesisReport rep = synthesize(d, grouped());
  EXPECT_EQ(rep.checker_processes, 1u);
  ir::verify(d);
  const ir::Process* chk = d.find_process("chk_f");
  ASSERT_NE(chk, nullptr);
  EXPECT_EQ(chk->blocks.size(), 3u);  // one sub-block per assertion
  // Each record points at its own sub-block of the shared checker.
  EXPECT_NE(d.assertions[0].checker_block, d.assertions[1].checker_block);
  EXPECT_EQ(d.assertions[0].checker_process, "chk_f");
  EXPECT_EQ(d.assertions[2].checker_process, "chk_f");
}

TEST(GroupedCheckers, UngroupedCreatesThree) {
  auto c = compile(kThreeAssertSrc);
  ir::Design d = c->design.clone();
  SynthesisReport rep = synthesize(d, ungrouped());
  EXPECT_EQ(rep.checker_processes, 3u);
}

TEST(GroupedCheckers, FunctionalDetectionUnchanged) {
  auto c = compile(kThreeAssertSrc);
  ir::Design d = c->design.clone();
  synthesize(d, grouped());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  {
    sim::Simulator s(d, sch, ext, {});
    s.feed("f.in", {5, 6, 7, 8});
    sim::RunResult r = s.run();
    EXPECT_EQ(r.status, sim::RunStatus::kCompleted);
    EXPECT_TRUE(r.failures.empty());
  }
  {
    // The third assertion (v != 13) of the shared checker must fire --
    // and only that one, proving per-sub-block evaluation.
    sim::Simulator s(d, sch, ext, {});
    s.feed("f.in", {5, 13, 7, 8});
    sim::RunResult r = s.run();
    EXPECT_EQ(r.status, sim::RunStatus::kAborted);
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].assertion_id, 2u);
    EXPECT_NE(r.failures[0].message.find("v != 13"), std::string::npos);
  }
}

TEST(GroupedCheckers, SavesAreaOverUngrouped) {
  auto c = compile(kThreeAssertSrc);
  auto area_of = [&](const Options& opt) {
    ir::Design d = c->design.clone();
    synthesize(d, opt);
    ir::verify(d);
    sched::DesignSchedule sch = sched::schedule_design(d);
    rtl::Netlist nl = rtl::build_netlist(d, sch);
    return fpga::estimate_area(nl);
  };
  fpga::AreaReport g = area_of(grouped());
  fpga::AreaReport u = area_of(ungrouped());
  EXPECT_LT(g.aluts, u.aluts);
  EXPECT_LT(g.registers, u.registers);
}

TEST(GroupedCheckers, SharesOneFailureStream) {
  auto c = compile(kThreeAssertSrc);
  ir::Design d = c->design.clone();
  SynthesisReport rep = synthesize(d, grouped());
  // One stream for the whole grouped checker (vs three ungrouped).
  EXPECT_EQ(rep.fail_streams_created, 1u);
  EXPECT_EQ(d.assertions[0].fail_stream, d.assertions[2].fail_stream);
}

TEST(GroupedCheckers, ComposesWithSharedChannels) {
  auto c = compile(kThreeAssertSrc);
  ir::Design d = c->design.clone();
  Options o = grouped();
  o.share_channels = true;
  synthesize(d, o);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("f.in", {0, 2, 3, 4});  // first element violates v > 0
  sim::RunResult r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::kAborted);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].assertion_id, 0u);
}

}  // namespace
}  // namespace hlsav::assertions
