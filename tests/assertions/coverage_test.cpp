// CoverageTable: empty-campaign rendering, multi-assertion attribution
// of one fault site, and serialization round-trips.
#include <gtest/gtest.h>

#include "assertions/coverage.h"
#include "common/test_util.h"
#include "support/diagnostics.h"

namespace hlsav::assertions {
namespace {

using hlsav::testing::compile;

constexpr const char* kTwoAsserts = R"(
void f(stream_in<32> in, stream_out<32> out) {
  for (uint32 i = 0; i < 4; i++) {
    uint32 v = stream_read(in);
    assert(v < 100);
    assert(v != 7);
    stream_write(out, v);
  }
}
)";

TEST(Coverage, EmptyCampaignStillListsEveryAssertion) {
  auto c = compile(kTwoAsserts);
  CoverageTable t(c->design);
  ASSERT_EQ(c->design.assertions.size(), 2u);
  EXPECT_EQ(t.detections(0), 0u);
  EXPECT_EQ(t.detections(1), 0u);
  std::string r = t.render();
  // Both assertions appear as coverage holes (0 detections), and the
  // per-kind table renders with no rows rather than crashing.
  EXPECT_NE(r.find("v < 100"), std::string::npos);
  EXPECT_NE(r.find("v != 7"), std::string::npos);
  EXPECT_NE(r.find("Per-assertion fault coverage"), std::string::npos);
  EXPECT_NE(r.find("Fault-kind detection rates"), std::string::npos);
  EXPECT_EQ(t.serialize(), "");
}

TEST(Coverage, MultipleAssertionsDetectingOneSiteAreBothCredited) {
  auto c = compile(kTwoAsserts);
  CoverageTable t(c->design);
  // One injected fault, caught by both assertions (e.g. a stream-corrupt
  // site whose bad word trips both conditions).
  t.record_fault("stream-corrupt", true);
  t.record_detection(0, "stream-corrupt");
  t.record_detection(1, "stream-corrupt");
  EXPECT_EQ(t.detections(0), 1u);
  EXPECT_EQ(t.detections(1), 1u);
  std::string r = t.render();
  EXPECT_NE(r.find("stream-corrupt x1"), std::string::npos);
  // The per-kind row counts the *fault* once, not once per assertion.
  EXPECT_NE(r.find("100.0%"), std::string::npos);
}

TEST(Coverage, SerializeRoundTripsByteExactly) {
  auto c = compile(kTwoAsserts);
  CoverageTable t(c->design);
  t.record_detection(1, "reg-stuck");
  t.record_detection(0, "stream-corrupt");
  t.record_detection(0, "reg-stuck");
  t.record_fault("reg-stuck", true);
  t.record_fault("reg-stuck", false);
  t.record_fault("stream-corrupt", true);
  std::string blob = t.serialize();
  // Line-oriented, sorted, self-describing.
  EXPECT_NE(blob.find("detection 0 reg-stuck 1"), std::string::npos);
  EXPECT_NE(blob.find("fault reg-stuck 2 1"), std::string::npos);

  CoverageTable back(c->design);
  back.deserialize(blob);
  EXPECT_EQ(back.serialize(), blob);
  EXPECT_EQ(back.detections(0), 2u);
  EXPECT_EQ(back.detections(1), 1u);
  EXPECT_EQ(back.render(), t.render());

  // deserialize() merges rather than replaces.
  back.deserialize(blob);
  EXPECT_EQ(back.detections(0), 4u);
}

TEST(Coverage, DeserializeRejectsMalformedLines) {
  auto c = compile(kTwoAsserts);
  CoverageTable t(c->design);
  EXPECT_THROW(t.deserialize("garbage 1 2 3\n"), InternalError);
  EXPECT_THROW(t.deserialize("detection notanumber\n"), InternalError);
}

}  // namespace
}  // namespace hlsav::assertions
