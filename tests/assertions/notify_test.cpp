#include <gtest/gtest.h>

#include "assertions/notify.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"

namespace hlsav::assertions {
namespace {

using hlsav::testing::compile;

const char* kTwoAssertSrc = R"(
  void p(stream_in<32> in) {
    uint32 x;
    x = stream_read(in);
    assert(x > 0);
    assert(x < 100);
  }
)";

TEST(Notify, DecodesFailStreamIds) {
  auto c = compile(kTwoAssertSrc);
  ir::Design d = c->design.clone();
  synthesize(d, Options::unoptimized());
  ir::StreamId fs = d.assertions[0].fail_stream;
  auto ids = decode_failure_word(d, fs, 1);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 1u);
}

TEST(Notify, DecodesPackedWords) {
  auto c = compile(kTwoAssertSrc);
  ir::Design d = c->design.clone();
  Options opt;
  opt.share_channels = true;
  synthesize(d, opt);
  ir::StreamId fs = d.assertions[0].fail_stream;
  // Bits 0 and 1 set: both assertions failed.
  auto ids = decode_failure_word(d, fs, 0b11);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
  // Only bit 1.
  ids = decode_failure_word(d, fs, 0b10);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 1u);
}

TEST(Notify, HaltsOnFirstFailureByDefault) {
  auto c = compile(kTwoAssertSrc);
  ir::Design d = c->design.clone();
  synthesize(d, Options::unoptimized());
  NotificationFunction notify(d);
  bool halt = notify.on_word(d.assertions[0].fail_stream, 0, /*cycle=*/42);
  EXPECT_TRUE(halt);
  EXPECT_TRUE(notify.aborted());
  ASSERT_EQ(notify.failures().size(), 1u);
  EXPECT_EQ(notify.failures()[0].cycle, 42u);
  EXPECT_NE(notify.failures()[0].message.find("Assertion `x > 0' failed."), std::string::npos);
  EXPECT_NE(notify.failures()[0].message.find("test.c:"), std::string::npos);
}

TEST(Notify, NabortKeepsRunning) {
  auto c = compile(kTwoAssertSrc);
  ir::Design d = c->design.clone();
  Options opt;
  opt.nabort = true;
  synthesize(d, opt);
  NotificationFunction notify(d);
  EXPECT_FALSE(notify.on_word(d.assertions[0].fail_stream, 0, 1));
  EXPECT_FALSE(notify.on_word(d.assertions[1].fail_stream, 1, 2));
  EXPECT_FALSE(notify.aborted());
  EXPECT_EQ(notify.failures().size(), 2u);
}

TEST(Notify, SinkInvokedPerFailure) {
  auto c = compile(kTwoAssertSrc);
  ir::Design d = c->design.clone();
  Options opt;
  opt.nabort = true;
  synthesize(d, opt);
  NotificationFunction notify(d);
  std::vector<std::uint32_t> seen;
  notify.set_sink([&seen](const Failure& f) { seen.push_back(f.assertion_id); });
  (void)notify.on_word(d.assertions[1].fail_stream, 1, 5);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 1u);
}

TEST(Notify, RenderListsAllFailures) {
  auto c = compile(kTwoAssertSrc);
  ir::Design d = c->design.clone();
  synthesize(d, Options::unoptimized());
  NotificationFunction notify(d);
  (void)notify.on_word(d.assertions[0].fail_stream, 0, 7);
  std::string out = notify.render();
  EXPECT_NE(out.find("x > 0"), std::string::npos);
  EXPECT_NE(out.find("[cycle 7]"), std::string::npos);
  EXPECT_NE(out.find("aborted"), std::string::npos);
}

}  // namespace
}  // namespace hlsav::assertions
