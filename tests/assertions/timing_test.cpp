// Timing assertions (assert_cycles): the paper's §6 future-work feature.
// Checks parse/sema/lowering, checker synthesis, the NDEBUG path, and
// the cycle-simulator semantics (budget met vs exceeded).
#include <gtest/gtest.h>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "sim/simulator.h"

namespace hlsav::assertions {
namespace {

using hlsav::testing::compile;

const char* kTimedSrc = R"(
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 n;
    n = stream_read(in);
    assert_cycles(2);
    uint32 acc;
    acc = 0;
    for (uint32 i = 0; i < n; i++) {
      acc = acc + i;
    }
    assert_cycles(40);
    stream_write(out, acc);
  }
)";

TEST(TimingAssert, ParsedAndCatalogued) {
  auto c = compile(kTimedSrc);
  ASSERT_EQ(c->sema.assertions.size(), 2u);
  EXPECT_EQ(c->sema.assertions[0].condition_text, "elapsed cycles <= 2");
  ASSERT_EQ(c->design.assertions.size(), 2u);
  EXPECT_NE(c->design.assertions[1].failure_message().find("elapsed cycles <= 40"),
            std::string::npos);
}

TEST(TimingAssert, BoundMustBeConstant) {
  auto c = compile(R"(
    void f(stream_in<32> in) {
      uint32 n;
      n = stream_read(in);
      assert_cycles(n);
    }
  )", /*expect_ok=*/false);
  EXPECT_TRUE(c->diags.has_errors());
}

TEST(TimingAssert, ConstantExpressionBound) {
  auto c = compile(R"(
    void f(stream_in<32> in) {
      uint32 n;
      n = stream_read(in);
      assert_cycles(8 * 4 + 1);
    }
  )");
  const ir::Process& p = *c->design.find_process("f");
  bool found = false;
  for (const auto& b : p.blocks) {
    for (const auto& op : b.ops) {
      if (op.kind == ir::OpKind::kAssertCycles) {
        EXPECT_EQ(op.cycle_bound, 33u);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(TimingAssert, SynthesisCreatesMicroCheckers) {
  auto c = compile(kTimedSrc);
  ir::Design d = c->design.clone();
  SynthesisReport rep = synthesize(d, Options::unoptimized());
  EXPECT_EQ(rep.assertions_synthesized, 2u);
  EXPECT_EQ(rep.checker_processes, 2u);  // one micro-checker per marker
  ir::verify(d);
  const ir::AssertionRecord& rec = d.assertions[0];
  EXPECT_NE(rec.checker_process.find("chk_cyc_"), std::string::npos);
  EXPECT_NE(rec.fail_stream, ir::kNoStream);
}

TEST(TimingAssert, NdebugStripsMarkers) {
  auto c = compile(kTimedSrc);
  ir::Design d = c->design.clone();
  synthesize(d, Options::ndebug());
  for (const auto& p : d.processes) {
    for (const auto& b : p->blocks) {
      for (const auto& op : b.ops) EXPECT_NE(op.kind, ir::OpKind::kAssertCycles);
    }
  }
}

TEST(TimingAssert, MarkerCostsNoApplicationStates) {
  auto c = compile(kTimedSrc);
  ir::Design with = c->design.clone();
  synthesize(with, Options::unoptimized());
  ir::Design without = c->design.clone();
  synthesize(without, Options::ndebug());
  sched::ProcessSchedule sw = sched::schedule_process(with, *with.find_process("f"), {});
  sched::ProcessSchedule so = sched::schedule_process(without, *without.find_process("f"), {});
  EXPECT_EQ(sched::passing_path_states(*with.find_process("f"), sw),
            sched::passing_path_states(*without.find_process("f"), so));
}

struct TimedRun {
  sim::RunResult result;
};

TimedRun run_timed(std::uint64_t n, bool nabort = false) {
  auto c = compile(kTimedSrc);
  ir::Design d = c->design.clone();
  Options opt = Options::unoptimized();
  opt.nabort = nabort;
  synthesize(d, opt);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("f.in", {n});
  return TimedRun{s.run()};
}

TEST(TimingAssert, PassesWhenWithinBudget) {
  // Small loop: the 40-cycle budget between the two markers holds.
  TimedRun r = run_timed(4);
  EXPECT_EQ(r.result.status, sim::RunStatus::kCompleted);
  EXPECT_TRUE(r.result.failures.empty());
}

TEST(TimingAssert, FailsWhenBudgetExceeded) {
  // 64 iterations blow the 40-cycle budget: the timing assertion fires.
  TimedRun r = run_timed(64);
  EXPECT_EQ(r.result.status, sim::RunStatus::kAborted);
  ASSERT_EQ(r.result.failures.size(), 1u);
  EXPECT_NE(r.result.failures[0].message.find("elapsed cycles <= 40"), std::string::npos);
}

TEST(TimingAssert, NabortReportsAndContinues) {
  TimedRun r = run_timed(64, /*nabort=*/true);
  EXPECT_EQ(r.result.status, sim::RunStatus::kCompleted);
  EXPECT_EQ(r.result.failures.size(), 1u);
}

TEST(TimingAssert, SharedChannelEncoding) {
  auto c = compile(kTimedSrc);
  ir::Design d = c->design.clone();
  Options opt;
  opt.share_channels = true;
  synthesize(d, opt);
  ir::verify(d);
  EXPECT_EQ(d.stream(d.assertions[0].fail_stream).role, ir::StreamRole::kAssertPacked);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("f.in", {64});
  sim::RunResult r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::kAborted);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].assertion_id, 1u);
}

}  // namespace
}  // namespace hlsav::assertions
