// Chrome trace-event export: a profiled run round-trips through the
// in-tree validator, and the validator rejects the malformed shapes CI
// must catch.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/loopback.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "metrics/chrometrace.h"
#include "sim/simulator.h"

namespace hlsav::metrics {
namespace {

ProfileReport profiled_loopback(unsigned stages, std::vector<std::uint64_t> data) {
  auto app = apps::loopback::build(stages, static_cast<unsigned>(data.size()));
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::unoptimized());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  Profiler prof(d, sch);
  sim::SimOptions opt;
  opt.profile = &prof;
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, opt);
  s.feed(apps::loopback::input_stream(stages), data);
  (void)s.run();
  return prof.report();
}

TEST(ChromeTrace, ProfiledRunValidates) {
  ProfileReport rep = profiled_loopback(3, {1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_FALSE(rep.spans.empty());
  std::ostringstream os;
  write_chrome_trace(rep, os);
  ChromeTraceCheck check = validate_chrome_trace(os.str());
  EXPECT_TRUE(check.ok) << check.error;
  // Metadata names both tracks of every process, plus one span per
  // recorded Span at minimum.
  EXPECT_GE(check.events, rep.processes.size() * 2 + rep.spans.size());
}

TEST(ChromeTrace, FailureInstantsAppear) {
  // The zero fails stage0's w > 0 assertion: an instant event must land.
  ProfileReport rep = profiled_loopback(2, {3, 0, 4, 5});
  ASSERT_FALSE(rep.instants.empty());
  std::ostringstream os;
  write_chrome_trace(rep, os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("FAIL"), std::string::npos);
  EXPECT_TRUE(validate_chrome_trace(json).ok);
}

TEST(ChromeTrace, FileRoundTrip) {
  ProfileReport rep = profiled_loopback(2, {1, 2, 3, 4});
  std::string path = ::testing::TempDir() + "/hlsav_chrometrace_test.trace.json";
  std::string error;
  ASSERT_TRUE(write_chrome_trace_file(rep, path, &error)) << error;
  ChromeTraceCheck check = validate_chrome_trace_file(path);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.events, 0u);
  std::remove(path.c_str());
}

TEST(ChromeTrace, StallSpansLandOnStallTrack) {
  ProfileReport rep;
  rep.run_cycles = 10;
  ProfileReport::ProcRow row;
  row.process = "p";
  rep.processes.push_back(row);
  rep.spans.push_back(ProfileReport::Span{"p", /*stall=*/true, "stall 'chan'", 2, 5});
  rep.spans.push_back(ProfileReport::Span{"p", /*stall=*/false, "b0", 0, 2});
  std::ostringstream os;
  write_chrome_trace(rep, os);
  std::string json = os.str();
  ASSERT_TRUE(validate_chrome_trace(json).ok);
  // Compute track tid 1, stall track tid 2 (pid 1 throughout).
  EXPECT_NE(json.find("\"tid\": 2, \"name\": \"stall 'chan'\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1, \"name\": \"b0\""), std::string::npos);
}

// ---- validator rejections ----

TEST(ChromeTrace, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\": [").ok);
  EXPECT_FALSE(validate_chrome_trace("not json at all").ok);
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\": []} trailing").ok);
}

TEST(ChromeTrace, ValidatorRejectsMissingTraceEvents) {
  ChromeTraceCheck check = validate_chrome_trace("{\"events\": []}");
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("traceEvents"), std::string::npos);
}

TEST(ChromeTrace, ValidatorRejectsBadEvents) {
  // X event without dur.
  EXPECT_FALSE(validate_chrome_trace(
                   R"({"traceEvents": [{"ph": "X", "name": "a", "ts": 0, "pid": 1, "tid": 1}]})")
                   .ok);
  // Unknown phase.
  EXPECT_FALSE(validate_chrome_trace(
                   R"({"traceEvents": [{"ph": "Q", "name": "a", "ts": 0, "pid": 1, "tid": 1}]})")
                   .ok);
  // Missing name.
  EXPECT_FALSE(
      validate_chrome_trace(R"({"traceEvents": [{"ph": "M", "pid": 1}]})").ok);
  // Negative duration.
  EXPECT_FALSE(validate_chrome_trace(
                   R"({"traceEvents": [{"ph": "X", "name": "a", "ts": 0, "dur": -1,)"
                   R"( "pid": 1, "tid": 1}]})")
                   .ok);
}

TEST(ChromeTrace, ValidatorAcceptsMinimalWellFormed) {
  ChromeTraceCheck check = validate_chrome_trace(
      R"({"traceEvents": [)"
      R"({"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "x"}},)"
      R"({"ph": "X", "name": "blk", "ts": 0, "dur": 4, "pid": 1, "tid": 1},)"
      R"({"ph": "i", "s": "t", "name": "boom", "ts": 2, "pid": 1, "tid": 1}]})");
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 3u);
}

TEST(ChromeTrace, MissingFileReportsError) {
  ChromeTraceCheck check = validate_chrome_trace_file("/nonexistent/definitely.trace.json");
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace hlsav::metrics
