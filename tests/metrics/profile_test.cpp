// Cycle-attribution profiler: the per-process attribution invariant
// (compute + assertion + stall + tail == RunResult::cycles, exactly) on
// the real applications in both assertion configurations, plus fault /
// NABORT / hang runs, occupancy consistency, and the report surfaces.
#include <gtest/gtest.h>

#include "apps/appbuild.h"
#include "apps/des.h"
#include "apps/edge.h"
#include "apps/loopback.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "common/test_util.h"
#include "metrics/profile.h"
#include "sim/simulator.h"

namespace hlsav::metrics {
namespace {

struct Profiled {
  sim::RunResult result;
  ProfileReport report;
  ProfileSummary summary;
};

struct Prepared {
  ir::Design design;
  sched::DesignSchedule schedule;
};

Prepared prepare(const ir::Design& lowered, const assertions::Options& aopt,
                 const sched::SchedOptions& sopt = {}) {
  Prepared p{lowered.clone(), {}};
  assertions::synthesize(p.design, aopt);
  ir::verify(p.design);
  p.schedule = sched::schedule_design(p.design, sopt);
  return p;
}

Profiled profiled_run(const Prepared& p,
                 const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                 sim::SimOptions opt = {}, sim::FaultEngine faults = {}) {
  Profiler prof(p.design, p.schedule);
  opt.profile = &prof;
  opt.faults = std::move(faults);
  sim::ExternRegistry ext;
  sim::Simulator s(p.design, p.schedule, ext, opt);
  for (const auto& [name, values] : feeds) s.feed(name, values);
  Profiled r;
  r.result = s.run();
  r.report = prof.report();
  r.summary = prof.summary();
  return r;
}

void expect_exact(const Profiled& r) {
  EXPECT_EQ(r.report.run_cycles, r.result.cycles);
  EXPECT_TRUE(r.report.attribution_exact());
  for (const ProfileReport::ProcRow& p : r.report.processes) {
    EXPECT_EQ(p.attributed(), r.result.cycles) << "process " << p.process;
    // Occupancy consistency: the state/pipeline cycle counts re-derive
    // the compute + assertion split from an independent tally.
    EXPECT_EQ(p.seq_state_cycles + p.pipe_cycles, p.compute_cycles + p.assert_cycles)
        << "process " << p.process;
  }
  // Cross-check the two summary paths (live profiler vs report).
  EXPECT_EQ(r.summary.compute_cycles, r.report.summary().compute_cycles);
  EXPECT_EQ(r.summary.stall_cycles, r.report.summary().stall_cycles);
  EXPECT_EQ(r.summary.tail_cycles, r.report.summary().tail_cycles);
  EXPECT_EQ(r.summary.assert_failures, r.report.summary().assert_failures);
}

std::vector<std::uint64_t> loopback_data(unsigned words) {
  std::vector<std::uint64_t> data(words);
  for (unsigned i = 0; i < words; ++i) data[i] = i + 1;  // all > 0: no failures
  return data;
}

// ---- the three applications, unoptimized and parallelized ----

class ProfileApps : public ::testing::TestWithParam<bool> {
 protected:
  assertions::Options aopt() const {
    return GetParam() ? assertions::Options::optimized() : assertions::Options::unoptimized();
  }
};

TEST_P(ProfileApps, LoopbackAttributionIsExact) {
  auto app = apps::loopback::build(4, 16);
  Prepared p = prepare(app->design, aopt());
  Profiled r = profiled_run(p, {{apps::loopback::input_stream(4), loopback_data(16)}});
  ASSERT_EQ(r.result.status, sim::RunStatus::kCompleted) << r.result.hang_report;
  expect_exact(r);
  EXPECT_TRUE(r.report.completed);
  EXPECT_EQ(r.summary.discarded_stall_cycles, 0u);
  EXPECT_GT(r.summary.compute_cycles, 0u);
  // The chain's downstream stages start behind the producer: some stall
  // or tail must exist somewhere.
  EXPECT_GT(r.summary.stall_cycles + r.summary.tail_cycles, 0u);
  EXPECT_GT(r.summary.assert_evals, 0u);
  EXPECT_EQ(r.summary.assert_failures, 0u);
}

TEST_P(ProfileApps, TripleDesAttributionIsExact) {
  const std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                             0x456789ABCDEF0123ull};
  auto app = apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(keys));
  sched::SchedOptions sopt;
  sopt.chain_depth = 6;
  Prepared p = prepare(app->design, aopt(), sopt);
  std::vector<std::uint64_t> cipher;
  for (std::uint64_t b : apps::des::pack_text("profile me")) {
    cipher.push_back(apps::des::triple_des_encrypt(b, keys));
  }
  Profiled r = profiled_run(p, {{"des3.in", apps::des::to_word_stream(cipher)}});
  ASSERT_EQ(r.result.status, sim::RunStatus::kCompleted) << r.result.hang_report;
  expect_exact(r);
  EXPECT_EQ(r.summary.discarded_stall_cycles, 0u);
  EXPECT_GT(r.summary.assert_evals, 0u);
}

TEST_P(ProfileApps, EdgeDetectAttributionIsExact) {
  constexpr unsigned kW = 16;
  constexpr unsigned kH = 12;
  auto app = apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(kW, kH));
  sched::SchedOptions sopt;
  sopt.chain_depth = 16;
  Prepared p = prepare(app->design, aopt(), sopt);
  apps::img::Image input = apps::img::synthetic_image(kW, kH, 7);
  Profiled r = profiled_run(p, {{"edge.in", apps::edge::to_word_stream(input)}});
  ASSERT_EQ(r.result.status, sim::RunStatus::kCompleted) << r.result.hang_report;
  expect_exact(r);
  EXPECT_EQ(r.summary.discarded_stall_cycles, 0u);
  // The edge kernel's main loop is pipelined: pipeline cycles must show.
  std::uint64_t pipe = 0;
  for (const ProfileReport::ProcRow& pr : r.report.processes) pipe += pr.pipe_cycles;
  EXPECT_GT(pipe, 0u);
}

INSTANTIATE_TEST_SUITE_P(Configs, ProfileApps, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "parallelized" : "unoptimized";
                         });

// ---- degenerate run modes ----

TEST(Profile, AbortedRunStaysExact) {
  auto app = apps::loopback::build(3, 8);
  Prepared p = prepare(app->design, assertions::Options::unoptimized());
  // The zero violates the per-stage w > 0 assertion and aborts the run.
  Profiled r = profiled_run(p, {{apps::loopback::input_stream(3), {4, 0, 5, 6, 7, 8, 9, 10}}});
  ASSERT_EQ(r.result.status, sim::RunStatus::kAborted);
  expect_exact(r);
  EXPECT_FALSE(r.report.completed);
  EXPECT_GE(r.summary.assert_failures, 1u);
  // At least one failure instant lands on the timeline.
  EXPECT_FALSE(r.report.instants.empty());
}

TEST(Profile, NabortRunCompletesAndCountsFailures) {
  auto app = apps::loopback::build(3, 8);
  assertions::Options aopt = assertions::Options::unoptimized();
  aopt.nabort = true;
  Prepared p = prepare(app->design, aopt);
  Profiled r = profiled_run(p, {{apps::loopback::input_stream(3), {4, 0, 5, 6, 7, 8, 9, 10}}});
  ASSERT_EQ(r.result.status, sim::RunStatus::kCompleted) << r.result.hang_report;
  expect_exact(r);
  EXPECT_EQ(r.summary.discarded_stall_cycles, 0u);
  EXPECT_GE(r.summary.assert_failures, 1u);
}

TEST(Profile, InjectedFaultRunStaysExact) {
  auto app = apps::loopback::build(3, 8);
  Prepared p = prepare(app->design, assertions::Options::optimized());
  // Drop the first word a stage writes downstream: the chain starves.
  ir::StreamId victim = ir::kNoStream;
  for (const ir::Stream& s : p.design.streams) {
    if (s.role == ir::StreamRole::kData &&
        s.producer.kind == ir::StreamEndpoint::Kind::kProcess &&
        s.consumer.kind == ir::StreamEndpoint::Kind::kProcess) {
      victim = s.id;
      break;
    }
  }
  ASSERT_NE(victim, ir::kNoStream);
  sim::FaultEngine faults;
  faults.add(sim::FaultSpec::stream_drop(victim, 0));
  sim::SimOptions opt;
  opt.max_cycles = 20'000;
  Profiled r = profiled_run(p, {{apps::loopback::input_stream(3), loopback_data(8)}}, opt,
                       std::move(faults));
  EXPECT_NE(r.result.status, sim::RunStatus::kCompleted);
  expect_exact(r);
  // Someone must end blocked on a stream (the starvation shows as tail).
  bool any_blocked = false;
  for (const ProfileReport::ProcRow& pr : r.report.processes) {
    any_blocked |= pr.end == EndKind::kBlockedRead || pr.end == EndKind::kBlockedWrite;
  }
  EXPECT_TRUE(any_blocked);
}

TEST(Profile, HungRunAttributesTailToBlockedReaders) {
  // Feed fewer words than the chain expects: every stage eventually
  // starves on its input stream.
  auto app = apps::loopback::build(2, 8);
  Prepared p = prepare(app->design, assertions::Options::unoptimized());
  Profiled r = profiled_run(p, {{apps::loopback::input_stream(2), loopback_data(3)}});
  ASSERT_EQ(r.result.status, sim::RunStatus::kHung);
  expect_exact(r);
  for (const ProfileReport::ProcRow& pr : r.report.processes) {
    if (pr.end == EndKind::kBlockedRead) {
      EXPECT_FALSE(pr.end_stream.empty());
    }
  }
}

// ---- report surfaces ----

TEST(Profile, HottestStatesAreSortedAndCapped) {
  auto app = apps::loopback::build(4, 32);
  Prepared p = prepare(app->design, assertions::Options::unoptimized());
  ProfileConfig cfg;
  cfg.max_hot_states = 5;
  Profiler prof(p.design, p.schedule, cfg);
  sim::SimOptions opt;
  opt.profile = &prof;
  sim::ExternRegistry ext;
  sim::Simulator s(p.design, p.schedule, ext, opt);
  s.feed(apps::loopback::input_stream(4), loopback_data(32));
  ASSERT_EQ(s.run().status, sim::RunStatus::kCompleted);
  ProfileReport rep = prof.report();
  ASSERT_LE(rep.hottest_states.size(), 5u);
  ASSERT_FALSE(rep.hottest_states.empty());
  for (std::size_t i = 1; i < rep.hottest_states.size(); ++i) {
    EXPECT_GE(rep.hottest_states[i - 1].cost(), rep.hottest_states[i].cost());
  }
  for (const ProfileReport::StateRow& sr : rep.hottest_states) {
    EXPECT_GT(sr.occupancy + sr.stall_cycles, 0u);
  }
}

TEST(Profile, UnoptimizedAssertStatesAreAttributed) {
  // Unoptimized synthesis inlines the assertion condition into the
  // application FSM: assertion-only states must show up in the assert
  // bucket. Parallelized synthesis moves the work to checker processes.
  auto app = apps::loopback::build(2, 16);
  Prepared unopt = prepare(app->design, assertions::Options::unoptimized());
  Profiled r = profiled_run(unopt, {{apps::loopback::input_stream(2), loopback_data(16)}});
  ASSERT_EQ(r.result.status, sim::RunStatus::kCompleted);
  EXPECT_GT(r.summary.assert_cycles, 0u);
}

TEST(Profile, TablesAndJsonRender) {
  auto app = apps::loopback::build(2, 8);
  Prepared p = prepare(app->design, assertions::Options::unoptimized());
  Profiled r = profiled_run(p, {{apps::loopback::input_stream(2), loopback_data(8)}});
  std::string table = r.report.render_table();
  EXPECT_NE(table.find("Cycle attribution"), std::string::npos);
  EXPECT_NE(table.find("Hottest FSM states"), std::string::npos);
  std::string json = r.report.to_json();
  EXPECT_NE(json.find("\"attribution_exact\": true"), std::string::npos);
  EXPECT_NE(json.find("\"processes\": ["), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
}

TEST(Profile, RegistryCountsHookTraffic) {
  auto app = apps::loopback::build(2, 8);
  Prepared p = prepare(app->design, assertions::Options::unoptimized());
  Profiler prof(p.design, p.schedule);
  sim::SimOptions opt;
  opt.profile = &prof;
  sim::ExternRegistry ext;
  sim::Simulator s(p.design, p.schedule, ext, opt);
  s.feed(apps::loopback::input_stream(2), loopback_data(8));
  ASSERT_EQ(s.run().status, sim::RunStatus::kCompleted);
  const MetricsRegistry& reg = prof.registry();
  std::uint64_t blocks = 0;
  for (const Counter& c : reg.counters()) {
    if (c.name == "sim.blocks_retired") blocks = c.value;
  }
  EXPECT_GT(blocks, 0u);
}

TEST(Profile, DeltaRendersSignedChanges) {
  ProfileSummary golden;
  golden.run_cycles = 100;
  golden.compute_cycles = 80;
  golden.stall_cycles = 20;
  ProfileSummary faulted = golden;
  faulted.run_cycles = 150;
  faulted.stall_cycles = 60;
  faulted.tail_cycles = 10;
  faulted.hottest_stall_stream = "chan";
  faulted.hottest_stall_cycles = 60;
  std::string delta = render_profile_delta(golden, faulted);
  EXPECT_NE(delta.find("cycles +50"), std::string::npos);
  EXPECT_NE(delta.find("stall +40"), std::string::npos);
  EXPECT_NE(delta.find("'chan'"), std::string::npos);
}

TEST(Profile, SourceLevelHotStatesUseFileNames) {
  auto c = hlsav::testing::compile(R"(
    void hot(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 8; i++) {
        uint32 v = stream_read(in);
        assert(v < 1000);
        stream_write(out, v + 1);
      }
    }
  )");
  Prepared p = prepare(c->design, assertions::Options::unoptimized());
  Profiler prof(p.design, p.schedule);
  sim::SimOptions opt;
  opt.profile = &prof;
  sim::ExternRegistry ext;
  sim::Simulator s(p.design, p.schedule, ext, opt);
  s.feed("hot.in", {1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_EQ(s.run().status, sim::RunStatus::kCompleted);
  ProfileReport rep = prof.report(&c->sm);
  bool any_source = false;
  for (const ProfileReport::StateRow& sr : rep.hottest_states) {
    any_source |= sr.source.find("test.c:") != std::string::npos;
  }
  EXPECT_TRUE(any_source);
}

}  // namespace
}  // namespace hlsav::metrics
