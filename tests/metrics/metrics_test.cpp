// Metrics registry units: pointer stability, log2 histogram bucketing,
// and the JSON / text render formats.
#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace hlsav::metrics {
namespace {

TEST(Metrics, CounterFindOrCreateIsStable) {
  MetricsRegistry reg;
  Counter* a = reg.counter("a");
  Counter* b = reg.counter("b");
  a->add();
  a->add(41);
  EXPECT_EQ(reg.counter("a"), a);  // same name, same pointer
  // Force growth past typical small-buffer sizes; earlier pointers must
  // survive (the hot path caches them).
  for (int i = 0; i < 200; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(a->value, 42u);
  EXPECT_EQ(b->value, 0u);
  EXPECT_EQ(reg.counter("a"), a);
}

TEST(Metrics, RegistrationOrderIsPreserved) {
  MetricsRegistry reg;
  reg.counter("z");
  reg.counter("a");
  reg.counter("m");
  std::vector<std::string> names;
  for (const Counter& c : reg.counters()) names.push_back(c.name);
  EXPECT_EQ(names, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::bucket_le(0), 0u);
  EXPECT_EQ(Histogram::bucket_le(3), 7u);
  EXPECT_EQ(Histogram::bucket_le(64), ~std::uint64_t{0});
}

TEST(Metrics, HistogramSummaryStats) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("lat");
  for (std::uint64_t v : {1u, 2u, 3u, 10u}) h->record(v);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum, 16u);
  EXPECT_EQ(h->max, 10u);
  EXPECT_DOUBLE_EQ(h->mean(), 4.0);
  EXPECT_EQ(h->buckets[1], 1u);  // value 1
  EXPECT_EQ(h->buckets[2], 2u);  // values 2, 3
  EXPECT_EQ(h->buckets[4], 1u);  // value 10
}

TEST(Metrics, JsonFragmentShape) {
  MetricsRegistry reg;
  reg.counter("hits")->add(3);
  reg.histogram("lat")->record(5);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\": {\"hits\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"count\": 1, \"sum\": 5, \"max\": 5"), std::string::npos);
  // Sparse buckets: exactly one entry, for bit width 3 (le 7).
  EXPECT_NE(json.find("{\"le\": 7, \"n\": 1}"), std::string::npos);
}

TEST(Metrics, RenderListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("hits")->add(2);
  reg.histogram("lat")->record(4);
  std::string text = reg.render();
  EXPECT_NE(text.find("hits = 2"), std::string::npos);
  EXPECT_NE(text.find("lat: count 1, sum 4, max 4, mean 4"), std::string::npos);
}

}  // namespace
}  // namespace hlsav::metrics
