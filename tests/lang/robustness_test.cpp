// Frontend robustness: arbitrary malformed input must produce
// diagnostics, never crashes or hangs.
#include <gtest/gtest.h>

#include <string>

#include "lang/parser.h"
#include "lang/sema.h"
#include "support/str.h"

namespace hlsav::lang {
namespace {

void feed_frontend(const std::string& src) {
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  auto prog = parse_source(sm, diags, "fuzz.c", src);
  ASSERT_NE(prog, nullptr);
  if (!diags.has_errors()) {
    (void)analyze(*prog, sm, diags);
  }
}

TEST(Robustness, TokenSoupDoesNotCrash) {
  const char* fragments[] = {
      "void",  "uint32", "(",  ")",  "{",  "}",  "[",  "]",  ";",      "=",
      "for",   "while",  "if", "+",  "<<", ">=", "&&", "!",  "assert", "stream_read",
      "12345", "x",      ",",  "<",  ">",  "#pragma HLS pipeline\n",   "0xff",
      "'a'",   "const",  "do", "break",
  };
  SplitMix64 rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    std::string src;
    unsigned len = 1 + static_cast<unsigned>(rng.next_below(60));
    for (unsigned i = 0; i < len; ++i) {
      src += fragments[rng.next_below(std::size(fragments))];
      src += ' ';
    }
    SCOPED_TRACE(src);
    feed_frontend(src);
  }
}

TEST(Robustness, TruncatedProgramsDoNotCrash) {
  const std::string full = R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 buf[8];
      for (uint32 i = 0; i < 8; i++) {
        buf[i] = stream_read(in);
        assert(buf[i] > 0);
        stream_write(out, buf[i] + 1);
      }
    }
  )";
  for (std::size_t cut = 0; cut < full.size(); cut += 3) {
    SCOPED_TRACE(cut);
    feed_frontend(full.substr(0, cut));
  }
}

TEST(Robustness, DeeplyNestedExpressions) {
  std::string expr = "x";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  feed_frontend("void f(stream_in<32> in) { uint32 x; x = " + expr + "; }");
}

TEST(Robustness, DeeplyNestedBlocks) {
  std::string body = "x = x + 1;";
  for (int i = 0; i < 100; ++i) body = "if (x > 0) { " + body + " }";
  feed_frontend("void f(stream_in<32> in) { uint32 x; x = stream_read(in); " + body + " }");
}

TEST(Robustness, UnterminatedConstructs) {
  feed_frontend("void f(stream_in<32> in) { /* unterminated comment");
  feed_frontend("void f(stream_in<32> in) { uint32 x; x = 'a");
  feed_frontend("void f(stream_in<32> in) { uint32 a[");
  feed_frontend("#pragma HLS");
  feed_frontend("extern uint32");
}

TEST(Robustness, LongIdentifiersAndNumbers) {
  std::string long_id(4096, 'a');
  feed_frontend("void " + long_id + "(stream_in<32> in) {}");
  feed_frontend("void f(stream_in<32> in) { uint64 x; x = 99999999999999999999999999; }");
}

}  // namespace
}  // namespace hlsav::lang
