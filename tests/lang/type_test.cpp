#include <gtest/gtest.h>

#include "lang/type.h"

namespace hlsav::lang {
namespace {

TEST(Type, Constructors) {
  Type v = Type::void_type();
  EXPECT_TRUE(v.is_void());
  Type i = Type::int_type(17, true);
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.width(), 17u);
  EXPECT_TRUE(i.is_signed());
  Type b = Type::bool_type();
  EXPECT_EQ(b.width(), 1u);
  EXPECT_FALSE(b.is_signed());
}

TEST(Type, ArrayType) {
  Type a = Type::array_type(16, false, 64);
  EXPECT_TRUE(a.is_array());
  EXPECT_EQ(a.array_size(), 64u);
  EXPECT_EQ(a.element_type(), Type::int_type(16, false));
}

TEST(Type, StreamType) {
  Type s = Type::stream_type(32, StreamDir::kOut);
  EXPECT_TRUE(s.is_stream());
  EXPECT_EQ(s.stream_dir(), StreamDir::kOut);
  EXPECT_EQ(s.element_type().width(), 32u);
}

TEST(Type, ToString) {
  EXPECT_EQ(Type::void_type().to_string(), "void");
  EXPECT_EQ(Type::int_type(8, true).to_string(), "int8");
  EXPECT_EQ(Type::int_type(32, false).to_string(), "uint32");
  EXPECT_EQ(Type::array_type(16, false, 4).to_string(), "uint16[4]");
  EXPECT_EQ(Type::stream_type(8, StreamDir::kIn).to_string(), "stream_in<8>");
  EXPECT_EQ(Type::stream_type(8, StreamDir::kOut).to_string(), "stream_out<8>");
}

TEST(Type, CommonTypeRules) {
  // Width: the max. Signedness: only if both signed (hardware-style).
  Type ss = common_type(Type::int_type(8, true), Type::int_type(16, true));
  EXPECT_EQ(ss.width(), 16u);
  EXPECT_TRUE(ss.is_signed());
  Type mixed = common_type(Type::int_type(32, true), Type::int_type(8, false));
  EXPECT_EQ(mixed.width(), 32u);
  EXPECT_FALSE(mixed.is_signed());
  Type uu = common_type(Type::int_type(5, false), Type::int_type(64, false));
  EXPECT_EQ(uu.width(), 64u);
  EXPECT_FALSE(uu.is_signed());
}

TEST(Type, Equality) {
  EXPECT_EQ(Type::int_type(8, true), Type::int_type(8, true));
  EXPECT_NE(Type::int_type(8, true), Type::int_type(8, false));
  EXPECT_NE(Type::int_type(8, true), Type::int_type(9, true));
  EXPECT_NE(Type::array_type(8, true, 4), Type::array_type(8, true, 5));
}

}  // namespace
}  // namespace hlsav::lang
