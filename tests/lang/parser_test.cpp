#include <gtest/gtest.h>

#include "lang/parser.h"

namespace hlsav::lang {
namespace {

struct Parsed {
  SourceManager sm;
  DiagnosticEngine diags;
  std::unique_ptr<Program> program;
};

std::unique_ptr<Parsed> parse(const std::string& src, bool expect_ok = true) {
  auto p = std::make_unique<Parsed>();
  p->diags.attach(&p->sm);
  p->program = parse_source(p->sm, p->diags, "test.c", src);
  if (expect_ok) {
    EXPECT_FALSE(p->diags.has_errors()) << p->diags.render();
  }
  return p;
}

TEST(Parser, EmptyProgram) {
  auto p = parse("");
  EXPECT_TRUE(p->program->functions.empty());
}

TEST(Parser, SimpleProcess) {
  auto p = parse(R"(
    void loopback(stream_in<32> in, stream_out<32> out) {
      uint32 x;
      x = stream_read(in);
      stream_write(out, x);
    }
  )");
  ASSERT_EQ(p->program->functions.size(), 1u);
  const Function& f = *p->program->functions[0];
  EXPECT_EQ(f.name, "loopback");
  EXPECT_TRUE(f.is_process());
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_TRUE(f.params[0].type.is_stream());
  EXPECT_EQ(f.params[0].type.stream_dir(), StreamDir::kIn);
  EXPECT_EQ(f.params[1].type.stream_dir(), StreamDir::kOut);
  ASSERT_EQ(f.body.size(), 3u);
  EXPECT_EQ(f.body[0]->kind, StmtKind::kDecl);
  EXPECT_EQ(f.body[1]->kind, StmtKind::kAssign);
  EXPECT_EQ(f.body[2]->kind, StmtKind::kStreamWrite);
}

TEST(Parser, ExternDeclaration) {
  auto p = parse("extern uint32 clz32(uint32 x);");
  ASSERT_EQ(p->program->functions.size(), 1u);
  EXPECT_TRUE(p->program->functions[0]->is_extern_hdl);
  EXPECT_FALSE(p->program->functions[0]->is_process());
}

TEST(Parser, AssertCapturesSourceText) {
  auto p = parse(R"(
    void f(stream_in<8> in) {
      uint8 c;
      c = stream_read(in);
      assert(c >= ' ' && c <= 126);
    }
  )");
  const Function& f = *p->program->functions[0];
  const Stmt& a = *f.body[2];
  ASSERT_EQ(a.kind, StmtKind::kAssert);
  EXPECT_EQ(a.assert_text, "c >= ' ' && c <= 126");
}

TEST(Parser, OperatorPrecedence) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 x;
      x = 1 + 2 * 3;
      x = 1 | 2 & 3;
      x = 1 < 2 == 0;
    }
  )");
  const Function& f = *p->program->functions[0];
  // 1 + 2*3: top node is +, rhs is *.
  const Stmt& s1 = *f.body[1];
  EXPECT_EQ(s1.rhs->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(s1.rhs->operands[1]->binary_op, BinaryOp::kMul);
  // 1 | 2&3: top |, rhs &.
  const Stmt& s2 = *f.body[2];
  EXPECT_EQ(s2.rhs->binary_op, BinaryOp::kOr);
  EXPECT_EQ(s2.rhs->operands[1]->binary_op, BinaryOp::kAnd);
  // 1<2 == 0: top ==, lhs <.
  const Stmt& s3 = *f.body[3];
  EXPECT_EQ(s3.rhs->binary_op, BinaryOp::kEq);
  EXPECT_EQ(s3.rhs->operands[0]->binary_op, BinaryOp::kLt);
}

TEST(Parser, CompoundAssignDesugars) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 x;
      x += 5;
      x <<= 2;
    }
  )");
  const Function& f = *p->program->functions[0];
  const Stmt& s = *f.body[1];
  ASSERT_EQ(s.kind, StmtKind::kAssign);
  EXPECT_EQ(s.rhs->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(s.rhs->operands[0]->name, "x");
  EXPECT_EQ(f.body[2]->rhs->binary_op, BinaryOp::kShl);
}

TEST(Parser, IncrementDesugars) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 i;
      i++;
      i--;
    }
  )");
  const Function& f = *p->program->functions[0];
  EXPECT_EQ(f.body[1]->rhs->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(f.body[2]->rhs->binary_op, BinaryOp::kSub);
}

TEST(Parser, ForLoopPieces) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 s;
      for (uint32 i = 0; i < 10; i++) {
        s = s + i;
      }
    }
  )");
  const Stmt& loop = *p->program->functions[0]->body[1];
  ASSERT_EQ(loop.kind, StmtKind::kFor);
  EXPECT_EQ(loop.for_init->kind, StmtKind::kDecl);
  ASSERT_NE(loop.cond, nullptr);
  EXPECT_EQ(loop.for_step->kind, StmtKind::kAssign);
  ASSERT_EQ(loop.body.size(), 1u);
}

TEST(Parser, PipelinePragmaAttaches) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 s;
      #pragma HLS pipeline
      for (uint32 i = 0; i < 10; i++) {
        s = s + i;
      }
    }
  )");
  const Stmt& loop = *p->program->functions[0]->body[1];
  EXPECT_TRUE(loop.pragmas.pipeline);
}

TEST(Parser, ReplicatePragmaAttaches) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      #pragma HLS replicate
      uint16 buf[64];
    }
  )");
  const Stmt& decl = *p->program->functions[0]->body[0];
  EXPECT_TRUE(decl.pragmas.replicate);
}

TEST(Parser, ArrayDeclWithInitializer) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      const uint8 sbox[4] = {14, 4, 13, 1};
    }
  )");
  const Stmt& d = *p->program->functions[0]->body[0];
  ASSERT_EQ(d.kind, StmtKind::kDecl);
  EXPECT_TRUE(d.decl_is_const);
  EXPECT_TRUE(d.decl_type.is_array());
  EXPECT_EQ(d.decl_type.array_size(), 4u);
  ASSERT_EQ(d.decl_init.size(), 4u);
  EXPECT_EQ(d.decl_init[2]->literal.to_u64(), 13u);
}

TEST(Parser, IfElseChain) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 x;
      if (x > 1) { x = 0; } else if (x > 0) { x = 1; } else { x = 2; }
    }
  )");
  const Stmt& s = *p->program->functions[0]->body[1];
  ASSERT_EQ(s.kind, StmtKind::kIf);
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, StmtKind::kIf);
}

TEST(Parser, WhileAndBreakContinue) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 x;
      while (1) {
        x = x + 1;
        if (x > 5) { break; }
        continue;
      }
    }
  )");
  const Stmt& w = *p->program->functions[0]->body[1];
  ASSERT_EQ(w.kind, StmtKind::kWhile);
}

TEST(Parser, TernaryRejected) {
  auto p = parse("void f(stream_in<32> in) { uint32 x; x = x > 0 ? 1 : 2; }",
                 /*expect_ok=*/false);
  EXPECT_TRUE(p->diags.has_errors());
}

TEST(Parser, ErrorRecoveryFindsLaterFunctions) {
  auto p = parse(R"(
    void broken(stream_in<32> in) { uint32 x = ; }
    void ok(stream_in<32> in) { uint32 y; }
  )", /*expect_ok=*/false);
  EXPECT_TRUE(p->diags.has_errors());
  EXPECT_NE(p->program->find_function("ok"), nullptr);
}

TEST(Parser, StreamWidthValidated) {
  auto p = parse("void f(stream_in<99> in) {}", /*expect_ok=*/false);
  EXPECT_TRUE(p->diags.has_errors());
}

TEST(Parser, CloneRoundTrips) {
  auto p = parse(R"(
    void f(stream_in<32> in) {
      uint32 a[4];
      for (uint32 i = 0; i < 4; i++) {
        a[i] = stream_read(in);
        assert(a[i] > 0);
      }
    }
  )");
  const Function& f = *p->program->functions[0];
  StmtPtr copy = f.body[1]->clone();
  EXPECT_EQ(copy->kind, StmtKind::kFor);
  EXPECT_EQ(copy->body.size(), f.body[1]->body.size());
}

}  // namespace
}  // namespace hlsav::lang
