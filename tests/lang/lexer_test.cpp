#include <gtest/gtest.h>

#include "lang/lexer.h"

namespace hlsav::lang {
namespace {

std::vector<Token> lex(const std::string& src, bool expect_ok = true) {
  static SourceManager sm;  // buffers must outlive returned tokens' locs
  DiagnosticEngine diags(&sm);
  FileId id = sm.add_buffer("test.c", src);
  Lexer lexer(sm, id, diags);
  auto toks = lexer.lex_all();
  if (expect_ok) {
    EXPECT_FALSE(diags.has_errors()) << diags.render();
  }
  return toks;
}

TEST(Lexer, EmptyInput) {
  auto t = lex("");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t[0].is(TokKind::kEof));
}

TEST(Lexer, Keywords) {
  auto t = lex("void if else for while return const assert extern break continue");
  EXPECT_TRUE(t[0].is(TokKind::kKwVoid));
  EXPECT_TRUE(t[1].is(TokKind::kKwIf));
  EXPECT_TRUE(t[2].is(TokKind::kKwElse));
  EXPECT_TRUE(t[3].is(TokKind::kKwFor));
  EXPECT_TRUE(t[4].is(TokKind::kKwWhile));
  EXPECT_TRUE(t[5].is(TokKind::kKwReturn));
  EXPECT_TRUE(t[6].is(TokKind::kKwConst));
  EXPECT_TRUE(t[7].is(TokKind::kKwAssert));
  EXPECT_TRUE(t[8].is(TokKind::kKwExtern));
  EXPECT_TRUE(t[9].is(TokKind::kKwBreak));
  EXPECT_TRUE(t[10].is(TokKind::kKwContinue));
}

TEST(Lexer, IntTypes) {
  auto t = lex("int8 uint8 int32 uint64 int uint5 int17 char bool");
  EXPECT_TRUE(t[0].is(TokKind::kKwIntType));
  EXPECT_EQ(t[0].value, 8u);
  EXPECT_TRUE(t[1].is(TokKind::kKwUintType));
  EXPECT_EQ(t[1].value, 8u);
  EXPECT_EQ(t[2].value, 32u);
  EXPECT_EQ(t[3].value, 64u);
  EXPECT_TRUE(t[4].is(TokKind::kKwIntType));  // int == int32
  EXPECT_EQ(t[4].value, 32u);
  EXPECT_TRUE(t[5].is(TokKind::kKwUintType));
  EXPECT_EQ(t[5].value, 5u);
  EXPECT_EQ(t[6].value, 17u);
  EXPECT_EQ(t[7].value, 8u);   // char == int8
  EXPECT_TRUE(t[8].is(TokKind::kKwUintType));
  EXPECT_EQ(t[8].value, 1u);   // bool == uint1
}

TEST(Lexer, OversizedIntTypeIsIdentifier) {
  auto t = lex("uint65 int0");
  EXPECT_TRUE(t[0].is(TokKind::kIdentifier));
  EXPECT_TRUE(t[1].is(TokKind::kIdentifier));
}

TEST(Lexer, Numbers) {
  auto t = lex("0 42 0xff 0XAB 4294967286 123u 5L");
  EXPECT_EQ(t[0].value, 0u);
  EXPECT_EQ(t[1].value, 42u);
  EXPECT_EQ(t[2].value, 0xffu);
  EXPECT_EQ(t[3].value, 0xabu);
  EXPECT_EQ(t[4].value, 4294967286u);
  EXPECT_EQ(t[5].value, 123u);
  EXPECT_FALSE(t[5].value_signed);
  EXPECT_EQ(t[6].value, 5u);
  EXPECT_TRUE(t[6].value_signed);
}

TEST(Lexer, CharLiterals) {
  auto t = lex("'a' ' ' '\\n' '\\''");
  EXPECT_EQ(t[0].value, static_cast<std::uint64_t>('a'));
  EXPECT_EQ(t[1].value, static_cast<std::uint64_t>(' '));
  EXPECT_EQ(t[2].value, static_cast<std::uint64_t>('\n'));
  EXPECT_EQ(t[3].value, static_cast<std::uint64_t>('\''));
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto t = lex("<< >> <= >= == != && || += <<= >>= ++ --");
  EXPECT_TRUE(t[0].is(TokKind::kShl));
  EXPECT_TRUE(t[1].is(TokKind::kShr));
  EXPECT_TRUE(t[2].is(TokKind::kLessEq));
  EXPECT_TRUE(t[3].is(TokKind::kGreaterEq));
  EXPECT_TRUE(t[4].is(TokKind::kEqEq));
  EXPECT_TRUE(t[5].is(TokKind::kBangEq));
  EXPECT_TRUE(t[6].is(TokKind::kAmpAmp));
  EXPECT_TRUE(t[7].is(TokKind::kPipePipe));
  EXPECT_TRUE(t[8].is(TokKind::kPlusAssign));
  EXPECT_TRUE(t[9].is(TokKind::kShlAssign));
  EXPECT_TRUE(t[10].is(TokKind::kShrAssign));
  EXPECT_TRUE(t[11].is(TokKind::kPlusPlus));
  EXPECT_TRUE(t[12].is(TokKind::kMinusMinus));
}

TEST(Lexer, Comments) {
  auto t = lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(t.size(), 4u);  // a b c eof
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[2].text, "c");
}

TEST(Lexer, PragmaLine) {
  auto t = lex("#pragma HLS pipeline\nx");
  ASSERT_GE(t.size(), 2u);
  EXPECT_TRUE(t[0].is(TokKind::kPragma));
  EXPECT_EQ(t[0].text, "pragma HLS pipeline");
  EXPECT_EQ(t[1].text, "x");
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  auto t = lex("a\n  b");
  EXPECT_EQ(t[0].loc.line, 1u);
  EXPECT_EQ(t[0].loc.column, 1u);
  EXPECT_EQ(t[1].loc.line, 2u);
  EXPECT_EQ(t[1].loc.column, 3u);
}

TEST(Lexer, OffsetsRecorded) {
  auto t = lex("ab cd");
  EXPECT_EQ(t[0].offset, 0u);
  EXPECT_EQ(t[1].offset, 3u);
}

TEST(Lexer, UnknownCharacterReportsError) {
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  FileId id = sm.add_buffer("t", "a @ b");
  Lexer lexer(sm, id, diags);
  (void)lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace hlsav::lang
