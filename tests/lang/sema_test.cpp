#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/sema.h"

namespace hlsav::lang {
namespace {

struct Analyzed {
  SourceManager sm;
  DiagnosticEngine diags;
  std::unique_ptr<Program> program;
  SemaResult result;
};

std::unique_ptr<Analyzed> analyze_src(const std::string& src, bool expect_ok = true) {
  auto a = std::make_unique<Analyzed>();
  a->diags.attach(&a->sm);
  a->program = parse_source(a->sm, a->diags, "test.c", src);
  EXPECT_FALSE(a->diags.has_errors()) << a->diags.render();
  a->result = analyze(*a->program, a->sm, a->diags);
  if (expect_ok) {
    EXPECT_TRUE(a->result.ok) << a->diags.render();
  } else {
    EXPECT_FALSE(a->result.ok);
  }
  return a;
}

TEST(Sema, TypesExpressions) {
  auto a = analyze_src(R"(
    void f(stream_in<16> in) {
      uint16 x;
      int32 y;
      x = stream_read(in);
      y = x + 1;
    }
  )");
  const Function& f = *a->program->functions[0];
  const Stmt& add = *f.body[3];
  // x:uint16 + 1:int32 -> common width 32, unsigned (mixed signedness).
  EXPECT_EQ(add.rhs->type.width(), 32u);
  EXPECT_FALSE(add.rhs->type.is_signed());
}

TEST(Sema, ComparisonIsBool) {
  auto a = analyze_src(R"(
    void f(stream_in<32> in) {
      uint32 x;
      bool b;
      b = x > 10;
    }
  )");
  const Stmt& s = *a->program->functions[0]->body[2];
  EXPECT_EQ(s.rhs->type.width(), 1u);
}

TEST(Sema, ShiftKeepsLhsType) {
  auto a = analyze_src(R"(
    void f(stream_in<32> in) {
      uint8 x;
      uint8 y;
      y = x << 4;
    }
  )");
  const Stmt& s = *a->program->functions[0]->body[2];
  EXPECT_EQ(s.rhs->type.width(), 8u);
}

TEST(Sema, AssertionsCatalogued) {
  auto a = analyze_src(R"(
    void p1(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
      assert(x < 100);
    }
    void p2(stream_in<32> in) {
      uint32 y;
      y = stream_read(in);
      assert(y != 7);
    }
  )");
  ASSERT_EQ(a->result.assertions.size(), 3u);
  EXPECT_EQ(a->result.assertions[0].id, 0u);
  EXPECT_EQ(a->result.assertions[0].function, "p1");
  EXPECT_EQ(a->result.assertions[2].function, "p2");
  EXPECT_EQ(a->result.assertions[1].condition_text, "x < 100");
}

TEST(Sema, FailureMessageFormat) {
  auto a = analyze_src(R"(
    void p(stream_in<32> in) {
      uint32 x;
      x = stream_read(in);
      assert(x > 0);
    }
  )");
  const AssertionInfo& info = a->result.assertions[0];
  EXPECT_EQ(info.failure_message(),
            "test.c:5: p: Assertion `x > 0' failed.");
}

TEST(Sema, UndeclaredIdentifier) {
  analyze_src("void f(stream_in<32> in) { x = 1; }", /*expect_ok=*/false);
}

TEST(Sema, RedeclarationRejected) {
  analyze_src("void f(stream_in<32> in) { uint32 x; uint8 x; }", /*expect_ok=*/false);
}

TEST(Sema, ConstAssignmentRejected) {
  analyze_src("void f(stream_in<32> in) { const uint32 c = 1; c = 2; }", /*expect_ok=*/false);
}

TEST(Sema, ConstRequiresInitializer) {
  analyze_src("void f(stream_in<32> in) { const uint32 c; }", /*expect_ok=*/false);
}

TEST(Sema, StreamDirectionEnforced) {
  analyze_src("void f(stream_in<32> in) { stream_write(in, 1); }", /*expect_ok=*/false);
  analyze_src("void f(stream_out<32> out) { uint32 x; x = stream_read(out); }",
              /*expect_ok=*/false);
}

TEST(Sema, StreamAsValueRejected) {
  analyze_src("void f(stream_in<32> in) { uint32 x; x = in + 1; }", /*expect_ok=*/false);
}

TEST(Sema, ArrayMustBeIndexed) {
  analyze_src("void f(stream_in<32> in) { uint32 a[4]; uint32 x; x = a; }",
              /*expect_ok=*/false);
}

TEST(Sema, WholeArrayAssignmentRejected) {
  analyze_src("void f(stream_in<32> in) { uint32 a[4]; a = 1; }", /*expect_ok=*/false);
}

TEST(Sema, ArrayInitializerSizeChecked) {
  analyze_src("void f(stream_in<32> in) { uint8 a[3] = {1, 2}; }", /*expect_ok=*/false);
}

TEST(Sema, BreakOutsideLoopRejected) {
  analyze_src("void f(stream_in<32> in) { break; }", /*expect_ok=*/false);
}

TEST(Sema, CallNonExternRejected) {
  analyze_src(R"(
    void g(stream_in<32> in) {}
    void f(stream_in<32> in) { uint32 x; x = g(1); }
  )", /*expect_ok=*/false);
}

TEST(Sema, ExternCallArityChecked) {
  analyze_src(R"(
    extern uint32 clz(uint32 v);
    void f(stream_in<32> in) { uint32 x; x = clz(1, 2); }
  )", /*expect_ok=*/false);
}

TEST(Sema, ExternCallWellTyped) {
  auto a = analyze_src(R"(
    extern uint8 popcount(uint32 v);
    void f(stream_in<32> in) {
      uint8 x;
      x = popcount(stream_read(in));
    }
  )");
  const Stmt& s = *a->program->functions[1]->body[1];
  EXPECT_EQ(s.rhs->type.width(), 8u);
}

TEST(Sema, PipelinePragmaOnNonLoopWarns) {
  auto a = std::make_unique<Analyzed>();
  a->diags.attach(&a->sm);
  a->program = parse_source(a->sm, a->diags, "t.c",
                            "void f(stream_in<32> in) {\n#pragma HLS pipeline\nuint32 x;\n}");
  analyze(*a->program, a->sm, a->diags);
  bool warned = false;
  for (const auto& d : a->diags.diagnostics()) {
    if (d.severity == Severity::kWarning) warned = true;
  }
  EXPECT_TRUE(warned);
  // And the pragma was stripped.
  EXPECT_FALSE(a->program->functions[0]->body[0]->pragmas.pipeline);
}

TEST(Sema, RedefinedFunctionRejected) {
  analyze_src(R"(
    void f(stream_in<32> in) {}
    void f(stream_in<32> in) {}
  )", /*expect_ok=*/false);
}

TEST(Sema, ExternMustReturnInteger) {
  analyze_src("extern void nothing(uint32 x);", /*expect_ok=*/false);
}

}  // namespace
}  // namespace hlsav::lang
