// Small string helpers used across the project.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hlsav {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] std::string to_lower(std::string_view s);

/// FNV-1a 64-bit hash; deterministic across runs/platforms.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// SplitMix64: tiny deterministic PRNG for synthetic data and the
/// place-and-route variation model. Never seeded from time.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace hlsav
