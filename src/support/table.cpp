#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hlsav {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::size_t cols = header_.size();
  for (const Row& r : rows_) cols = std::max(cols, r.cells.size());
  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) width[i] = std::max(width[i], cells[i].size());
  };
  measure(header_);
  for (const Row& r : rows_) {
    if (!r.is_separator) measure(r.cells);
  }

  std::ostringstream os;
  auto emit_sep = [&] {
    os << '+';
    for (std::size_t i = 0; i < cols; ++i) os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      std::string c = i < cells.size() ? cells[i] : std::string();
      os << ' ' << c << std::string(width[i] - c.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  emit_sep();
  if (!header_.empty()) {
    emit_row(header_);
    emit_sep();
  }
  for (const Row& r : rows_) {
    if (r.is_separator) {
      emit_sep();
    } else {
      emit_row(r.cells);
    }
  }
  emit_sep();
  return os.str();
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_count_pct(long long count, double pct, int decimals) {
  return std::to_string(count) + " (" + fmt_double(pct, decimals) + "%)";
}

std::string fmt_overhead(long long delta, double pct, int decimals) {
  std::string s = delta >= 0 ? "+" : "";
  std::string p = pct >= 0 ? "+" : "";
  return s + std::to_string(delta) + " (" + p + fmt_double(pct, decimals) + "%)";
}

}  // namespace hlsav
