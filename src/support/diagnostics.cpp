#include "support/diagnostics.h"

#include <sstream>

namespace hlsav {

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message,
                              std::uint32_t length) {
  if (sev == Severity::kError) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, length, std::move(message)});
}

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}
}  // namespace

std::string DiagnosticEngine::render(const Diagnostic& d) const {
  std::ostringstream os;
  if (d.loc.valid() && sm_ != nullptr) {
    os << sm_->name(d.loc.file) << ':' << d.loc.line << ':' << d.loc.column << ": ";
  }
  os << severity_name(d.severity) << ": " << d.message;
  if (d.loc.valid() && sm_ != nullptr) {
    std::string_view line = sm_->line_text(d.loc.file, d.loc.line);
    if (!line.empty()) {
      os << '\n' << "  " << line << '\n' << "  ";
      for (std::uint32_t i = 1; i < d.loc.column; ++i) {
        os << (i - 1 < line.size() && line[i - 1] == '\t' ? '\t' : ' ');
      }
      os << '^';
      // Underline the rest of the range, clipped to the source line
      // (tilde i sits at column loc.column + 1 + i).
      std::uint32_t span = d.length > 1 ? d.length - 1 : 0;
      for (std::uint32_t i = 0; i < span && d.loc.column + i < line.size(); ++i) os << '~';
    }
  }
  return os.str();
}

std::string DiagnosticEngine::render() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << render(d) << '\n';
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

void internal_error(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << "internal error at " << file << ':' << line << ": " << message;
  throw InternalError(os.str());
}

}  // namespace hlsav
