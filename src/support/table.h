// Plain-text table renderer used by the benchmark harnesses to print
// the paper's tables (Tables 1-4) and figure series side by side with
// the measured values.
#pragma once

#include <string>
#include <vector>

namespace hlsav {

class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row.
  void header(std::vector<std::string> cells);
  /// Appends a data row; short rows are padded with empty cells.
  void row(std::vector<std::string> cells);
  /// Appends a horizontal separator.
  void separator();

  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
[[nodiscard]] std::string fmt_double(double v, int decimals = 2);
/// Formats "count (pct%)" like the paper's resource cells.
[[nodiscard]] std::string fmt_count_pct(long long count, double pct, int decimals = 2);
/// Formats a signed overhead like "+174 (+0.12%)".
[[nodiscard]] std::string fmt_overhead(long long delta, double pct, int decimals = 2);

}  // namespace hlsav
