// Hand-rolled single-line JSON ("JSONL") helpers.
//
// Three subsystems speak the same flat one-object-per-line dialect: the
// campaign journal (sim/journal.*), the hlsavd socket protocol
// (serve/protocol.*), and worker heartbeat lines. Every value any of
// them stores is an integer, a double, a short string, or a list of
// integers -- a general JSON library would be a dependency for no
// expressive gain, but the emit/parse primitives must not be
// re-implemented three times, so they live here.
//
// Parsing is by key lookup over the whole line (`"key":`), which is
// exactly right for flat objects with distinct key names and wrong for
// arbitrary nesting -- none of the callers nest more than one level,
// and nested keys are kept globally unique.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlsav::jsonl {

/// Appends `s` as a double-quoted JSON string (escaping `"`, `\` and
/// control bytes).
void append_escaped(std::string& out, std::string_view s);

/// %.17g -- round-trips every finite double through strtod, so values
/// (and fingerprints built from them) survive a disk round trip exactly.
[[nodiscard]] std::string format_double(double v);

/// Locates `"key":` and returns the position just past the colon.
[[nodiscard]] bool find_value(const std::string& line, const char* key, std::size_t& pos);

[[nodiscard]] bool parse_u64(const std::string& line, const char* key, std::uint64_t& out);
[[nodiscard]] bool parse_double(const std::string& line, const char* key, double& out);
[[nodiscard]] bool parse_string(const std::string& line, const char* key, std::string& out);
[[nodiscard]] bool parse_bool(const std::string& line, const char* key, bool& out);
[[nodiscard]] bool parse_u64_list(const std::string& line, const char* key,
                                  std::vector<std::uint64_t>& out);
[[nodiscard]] bool parse_u32_list(const std::string& line, const char* key,
                                  std::vector<std::uint32_t>& out);

/// Emits `[1,2,3]`.
void append_u64_list(std::string& out, const std::vector<std::uint64_t>& values);
void append_u32_list(std::string& out, const std::vector<std::uint32_t>& values);

}  // namespace hlsav::jsonl
