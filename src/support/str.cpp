#include "support/str.h"

#include <algorithm>
#include <cctype>

namespace hlsav {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace hlsav
