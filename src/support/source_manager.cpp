#include "support/source_manager.h"

#include <fstream>
#include <sstream>

namespace hlsav {

FileId SourceManager::add_buffer(std::string name, std::string text) {
  Buffer buf;
  buf.name = std::move(name);
  buf.text = std::move(text);
  buf.line_starts.push_back(0);
  for (std::size_t i = 0; i < buf.text.size(); ++i) {
    if (buf.text[i] == '\n') buf.line_starts.push_back(i + 1);
  }
  buffers_.push_back(std::move(buf));
  return static_cast<FileId>(buffers_.size());  // ids are 1-based
}

FileId SourceManager::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::ostringstream ss;
  ss << in.rdbuf();
  return add_buffer(path, ss.str());
}

const SourceManager::Buffer* SourceManager::get(FileId id) const {
  if (id == 0 || id > buffers_.size()) return nullptr;
  return &buffers_[id - 1];
}

std::string_view SourceManager::name(FileId id) const {
  const Buffer* b = get(id);
  return b ? std::string_view(b->name) : std::string_view("<unknown>");
}

std::string_view SourceManager::text(FileId id) const {
  const Buffer* b = get(id);
  return b ? std::string_view(b->text) : std::string_view();
}

std::string_view SourceManager::line_text(FileId id, std::uint32_t line) const {
  const Buffer* b = get(id);
  if (!b || line == 0 || line > b->line_starts.size()) return {};
  std::size_t start = b->line_starts[line - 1];
  std::size_t end = (line < b->line_starts.size()) ? b->line_starts[line] : b->text.size();
  while (end > start && (b->text[end - 1] == '\n' || b->text[end - 1] == '\r')) --end;
  return std::string_view(b->text).substr(start, end - start);
}

}  // namespace hlsav
