#include "support/socket.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hlsav {

namespace {

Status errno_status(const std::string& what) {
  return Status::io_error(what + ": " + std::strerror(errno));
}

/// sockaddr_un setup shared by listen/connect; sun_path is short.
StatusOr<sockaddr_un> make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::invalid_argument("socket path too long (" + std::to_string(path.size()) +
                                    " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

StatusOr<int> unix_listen(const std::string& path, int backlog) {
  StatusOr<sockaddr_un> addr = make_addr(path);
  if (!addr.ok()) return addr.status();
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket failed");
  ::unlink(path.c_str());  // a stale socket file survives a daemon crash
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) != 0) {
    Status st = errno_status("cannot bind '" + path + "'");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = errno_status("cannot listen on '" + path + "'");
    ::close(fd);
    return st;
  }
  return fd;
}

StatusOr<int> unix_connect(const std::string& path) {
  StatusOr<sockaddr_un> addr = make_addr(path);
  if (!addr.ok()) return addr.status();
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) != 0) {
    Status st = errno_status("cannot connect to '" + path + "'");
    ::close(fd);
    return st;
  }
  return fd;
}

StatusOr<int> unix_accept(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  int n;
  do {
    n = ::poll(&pfd, 1, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return errno_status("poll failed");
  if (n == 0) return -1;  // timeout: the caller polls its shutdown flag
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return errno_status("accept failed");
  int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
  return fd;
}

Status send_bytes(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    // MSG_NOSIGNAL: a vanished client is a Status, never a SIGPIPE.
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::unavailable("peer disconnected");
      }
      return errno_status("send failed");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

Status send_line(int fd, const std::string& line) { return send_bytes(fd, line + "\n"); }

Status send_bytes_interruptible(int fd, std::string_view data, const std::atomic<bool>& stop,
                                int poll_ms) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    if (stop.load(std::memory_order_relaxed)) {
      return Status::cancelled("send aborted by stop flag");
    }
    // MSG_DONTWAIT instead of O_NONBLOCK on the fd: the flag is
    // per-call, so the fd stays blocking for any other user.
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::unavailable("peer disconnected");
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) return errno_status("send failed");
    }
    pollfd pfd{fd, POLLOUT, 0};
    int r;
    do {
      r = ::poll(&pfd, 1, poll_ms);
    } while (r < 0 && errno == EINTR);
    if (r < 0) return errno_status("poll failed");
    // r == 0: the peer's buffer is still full; loop to re-check `stop`.
  }
  return Status::ok_status();
}

Status send_line_interruptible(int fd, const std::string& line, const std::atomic<bool>& stop,
                               int poll_ms) {
  return send_bytes_interruptible(fd, line + "\n", stop, poll_ms);
}

Status LineReader::fill(int timeout_ms) {
  if (eof_) return Status::unavailable("peer closed the connection");
  if (timeout_ms > 0) {
    pollfd pfd{fd_, POLLIN, 0};
    int n;
    do {
      n = ::poll(&pfd, 1, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return errno_status("poll failed");
    if (n == 0) {
      return Status::error(StatusCode::kBudgetExceeded,
                           "timed out after " + std::to_string(timeout_ms) + "ms");
    }
  }
  char chunk[4096];
  ssize_t n;
  do {
    n = ::read(fd_, chunk, sizeof chunk);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return errno_status("read failed");
  if (n == 0) {
    eof_ = true;
    return Status::unavailable("peer closed the connection");
  }
  buf_.append(chunk, static_cast<std::size_t>(n));
  return Status::ok_status();
}

StatusOr<std::string> LineReader::read_line(int timeout_ms) {
  for (;;) {
    std::size_t eol = buf_.find('\n');
    if (eol != std::string::npos) {
      std::string line = buf_.substr(0, eol);
      buf_.erase(0, eol + 1);
      return line;
    }
    Status st = fill(timeout_ms);
    if (!st.ok()) {
      // A half-written frame is a different failure from a clean close
      // or an idle timeout: the peer (or the wire) died mid-sentence.
      // Surface it typed so callers don't mistake a torn frame for an
      // orderly end of stream.
      if (!buf_.empty()) {
        std::string detail =
            " (" + std::to_string(buf_.size()) + " bytes of a partial line buffered)";
        if (st.code() == StatusCode::kUnavailable) {
          return Status::io_error("peer closed mid-line" + detail);
        }
        if (st.code() == StatusCode::kBudgetExceeded) {
          return Status::error(StatusCode::kBudgetExceeded, st.message() + detail);
        }
      }
      return st;
    }
  }
}

StatusOr<std::string> LineReader::read_bytes(std::size_t n, int timeout_ms) {
  while (buf_.size() < n) {
    Status st = fill(timeout_ms);
    if (!st.ok()) {
      if (!buf_.empty() && st.code() == StatusCode::kUnavailable) {
        return Status::io_error("peer closed mid-payload (" + std::to_string(buf_.size()) +
                                " of " + std::to_string(n) + " bytes received)");
      }
      return st;
    }
  }
  std::string out = buf_.substr(0, n);
  buf_.erase(0, n);
  return out;
}

}  // namespace hlsav
