// Diagnostic engine shared by the whole compiler pipeline.
//
// User-facing errors (syntax, type, synthesis constraints) are reported
// through a DiagnosticEngine so tools can collect, count and render them;
// internal invariant violations use HLSAV_CHECK which throws.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/source_manager.h"

namespace hlsav {

enum class Severity { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  /// Columns the diagnostic covers starting at loc.column; rendered as
  /// '^' plus length-1 tildes. 0 and 1 both mean "just the caret".
  std::uint32_t length = 1;
  std::string message;
};

/// Collects diagnostics; never throws on user errors. Rendering includes
/// the offending source line with a caret when a SourceManager is attached.
class DiagnosticEngine {
 public:
  DiagnosticEngine() = default;
  explicit DiagnosticEngine(const SourceManager* sm) : sm_(sm) {}

  void attach(const SourceManager* sm) { sm_ = sm; }

  void report(Severity sev, SourceLoc loc, std::string message, std::uint32_t length = 1);
  void error(SourceLoc loc, std::string message) { report(Severity::kError, loc, std::move(message)); }
  /// Error spanning `length` columns from loc (underlined when rendered).
  void error_range(SourceLoc loc, std::uint32_t length, std::string message) {
    report(Severity::kError, loc, std::move(message), length);
  }
  void warning(SourceLoc loc, std::string message) { report(Severity::kWarning, loc, std::move(message)); }
  void note(SourceLoc loc, std::string message) { report(Severity::kNote, loc, std::move(message)); }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Renders all diagnostics, one per line, with source excerpts.
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string render(const Diagnostic& d) const;

  void clear();

 private:
  const SourceManager* sm_ = nullptr;
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Thrown on internal compiler invariant violations (never on user error).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void internal_error(const char* file, int line, const std::string& message);

}  // namespace hlsav

#define HLSAV_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) ::hlsav::internal_error(__FILE__, __LINE__, (msg));  \
  } while (0)

#define HLSAV_UNREACHABLE(msg) ::hlsav::internal_error(__FILE__, __LINE__, (msg))
