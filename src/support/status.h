// Recoverable error model for the whole toolchain.
//
// The pipeline has two failure families and they must never mix:
//
//  * user errors (bad HLS-C, over-wide literals, inconsistent designs,
//    unwritable output files) are *expected* -- they travel as Status /
//    StatusOr<T> values with an error code and a source location, get
//    rendered through the DiagnosticEngine, and map onto hlsavc's
//    documented exit codes;
//  * internal invariant violations stay HLSAV_CHECK / InternalError,
//    but every boundary the CLI and the fuzz harness cross wraps them
//    (catch_internal) so a bug in one site of a thousand-site campaign
//    degrades into a Status instead of tearing the process down.
//
// A Status is cheap to copy when ok (one enum) and carries its payload
// out-of-line otherwise, so hot paths can return it freely.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace hlsav {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,  // malformed caller input (bad flag value, bad feed)
  kParseError,       // lexer or parser diagnostics
  kSemaError,        // semantic analysis diagnostics
  kLowerError,       // AST -> IR lowering diagnostics
  kSynthesisError,   // assertion synthesis / IR verification
  kScheduleError,    // scheduling
  kSimError,         // simulator construction / feeds
  kIoError,          // file system (open/write/rename/fsync)
  kBudgetExceeded,   // wall-clock or cycle budget fired
  kUnavailable,      // back-pressure: queue full, service draining
  kCancelled,        // interrupted by a signal / cancel flag (resumable)
  kInternal,         // wrapped InternalError / unexpected exception
};

[[nodiscard]] const char* status_code_name(StatusCode c);

class [[nodiscard]] Status {
 public:
  Status() = default;  // ok

  [[nodiscard]] static Status ok_status() { return Status(); }
  [[nodiscard]] static Status error(StatusCode code, std::string message,
                                    SourceLoc loc = {}) {
    Status s;
    s.rep_ = std::make_shared<Rep>(Rep{code, std::move(message), loc});
    return s;
  }
  [[nodiscard]] static Status invalid_argument(std::string message, SourceLoc loc = {}) {
    return error(StatusCode::kInvalidArgument, std::move(message), loc);
  }
  [[nodiscard]] static Status io_error(std::string message) {
    return error(StatusCode::kIoError, std::move(message));
  }
  [[nodiscard]] static Status unavailable(std::string message) {
    return error(StatusCode::kUnavailable, std::move(message));
  }
  [[nodiscard]] static Status cancelled(std::string message) {
    return error(StatusCode::kCancelled, std::move(message));
  }
  [[nodiscard]] static Status internal(std::string message) {
    return error(StatusCode::kInternal, std::move(message));
  }

  /// Summarizes an errored DiagnosticEngine into one Status (the
  /// diagnostics themselves stay in the engine for rendering); `what`
  /// names the failing stage, e.g. "parse".
  [[nodiscard]] static Status from_diagnostics(StatusCode code, const DiagnosticEngine& diags,
                                               std::string_view what);

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  [[nodiscard]] const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }
  [[nodiscard]] SourceLoc loc() const { return rep_ ? rep_->loc : SourceLoc{}; }

  /// "sema-error at 3:7: ..." / "ok"; locations render only when valid.
  [[nodiscard]] std::string to_string() const;

  /// Re-reports this status into a DiagnosticEngine (no-op when ok or
  /// when the status summarizes diagnostics already in the engine).
  void report_to(DiagnosticEngine& diags) const;

 private:
  struct Rep {
    StatusCode code = StatusCode::kInternal;
    std::string message;
    SourceLoc loc;
  };
  // shared_ptr keeps Status copyable (campaign workers hand results
  // across threads) at one word when ok.
  std::shared_ptr<const Rep> rep_;
};

/// A T or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(T value)                              // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }
  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T& operator*() const& { return *value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Runs `fn`, converting an escaping InternalError (or any other
/// std::exception) into a kInternal Status: the boundary between "the
/// toolchain has a bug" and "the process must die" for the CLI, the
/// campaign retry loop, and the fuzz harness.
template <typename Fn>
[[nodiscard]] Status catch_internal(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    return Status::ok_status();
  } catch (const InternalError& e) {
    return Status::internal(e.what());
  } catch (const std::exception& e) {
    return Status::internal(std::string("unexpected exception: ") + e.what());
  }
}

}  // namespace hlsav

/// Early-returns the enclosing function's Status on error.
#define HLSAV_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::hlsav::Status hlsav_status_ = (expr);          \
    if (!hlsav_status_.ok()) return hlsav_status_;   \
  } while (0)
