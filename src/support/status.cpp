#include "support/status.h"

#include <sstream>

namespace hlsav {

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kSemaError: return "sema-error";
    case StatusCode::kLowerError: return "lower-error";
    case StatusCode::kSynthesisError: return "synthesis-error";
    case StatusCode::kScheduleError: return "schedule-error";
    case StatusCode::kSimError: return "sim-error";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kBudgetExceeded: return "budget-exceeded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInternal: return "internal";
  }
  return "internal";
}

Status Status::from_diagnostics(StatusCode code, const DiagnosticEngine& diags,
                                std::string_view what) {
  SourceLoc first;
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.severity == Severity::kError) {
      first = d.loc;
      break;
    }
  }
  std::ostringstream os;
  os << what << " failed with " << diags.error_count() << " error"
     << (diags.error_count() == 1 ? "" : "s");
  Status s = error(code, os.str(), first);
  return s;
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::ostringstream os;
  os << status_code_name(code());
  if (loc().valid()) os << " at " << loc().line << ':' << loc().column;
  os << ": " << message();
  return os.str();
}

void Status::report_to(DiagnosticEngine& diags) const {
  if (ok()) return;
  diags.error(loc(), status_code_name(code()) + std::string(": ") + message());
}

}  // namespace hlsav
