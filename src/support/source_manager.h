// Source buffers and source locations for the HLS-C frontend.
//
// A SourceLoc is a (file, line, column) triple; the SourceManager owns the
// text of every file handed to the compiler and resolves byte offsets into
// human-readable positions for diagnostics and for the assertion failure
// messages the paper requires (file name + line number + function name).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hlsav {

/// Identifies one buffer registered with a SourceManager. 0 is invalid.
using FileId = std::uint32_t;

/// A resolved position inside a source buffer. Lines and columns are
/// 1-based; a default-constructed SourceLoc is "unknown".
struct SourceLoc {
  FileId file = 0;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return file != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Half-open range of positions, used for diagnostics underlining.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  [[nodiscard]] bool valid() const { return begin.valid(); }
};

/// Owns source text. Files are registered once and referenced by FileId.
class SourceManager {
 public:
  /// Registers a buffer under the given (display) name; returns its id.
  FileId add_buffer(std::string name, std::string text);

  /// Loads a file from disk. Returns 0 on failure.
  FileId load_file(const std::string& path);

  [[nodiscard]] std::string_view name(FileId id) const;
  [[nodiscard]] std::string_view text(FileId id) const;

  /// Returns the text of one line (without newline); empty if out of range.
  [[nodiscard]] std::string_view line_text(FileId id, std::uint32_t line) const;

  [[nodiscard]] std::size_t buffer_count() const { return buffers_.size(); }

 private:
  struct Buffer {
    std::string name;
    std::string text;
    std::vector<std::size_t> line_starts;  // byte offset of each line start
  };
  std::vector<Buffer> buffers_;

  [[nodiscard]] const Buffer* get(FileId id) const;
};

}  // namespace hlsav
