#include "support/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace hlsav {

std::string temp_sibling_path(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

Status write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = temp_sibling_path(path);
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::io_error("cannot open '" + tmp + "' for writing: " + std::strerror(errno));
  }
  auto fail = [&](const std::string& what) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::io_error(what + " '" + tmp + "': " + std::strerror(saved));
  };
  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write to");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) return fail("fsync of");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::io_error("close of '" + tmp + "': " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    return Status::io_error("rename '" + tmp + "' -> '" + path +
                            "': " + std::strerror(saved));
  }
  return Status::ok_status();
}

Status fsync_dir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::io_error("cannot open directory '" + dir + "': " + std::strerror(errno));
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int saved = errno;
    ::close(fd);
    return Status::io_error("fsync of directory '" + dir + "': " + std::strerror(saved));
  }
  ::close(fd);
  return Status::ok_status();
}

}  // namespace hlsav
