// Subprocess management with Status plumbing.
//
// The campaign service supervises a pool of worker subprocesses whose
// whole point is that they may die arbitrarily (segfault, OOM-kill,
// kill -9, watchdog overrun). This wrapper keeps the supervisor's view
// simple: spawn with an argv, read the child's stdout through a pipe,
// poll for exit without blocking, and classify every death as a clean
// exit code or a terminating signal -- never an exception.
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

#include "support/status.h"

namespace hlsav {

/// How a child ended: normal exit (signaled == false, `value` is the
/// exit code) or killed by a signal (signaled == true, `value` is the
/// signal number).
struct ExitInfo {
  bool signaled = false;
  int value = 0;

  [[nodiscard]] bool clean() const { return !signaled && value == 0; }
  /// "exit 3" / "signal 9 (Killed)".
  [[nodiscard]] std::string describe() const;
};

/// One spawned child. Movable, not copyable (owns the stdout pipe fd).
/// The destructor never blocks and never kills: a still-running child
/// is the caller's responsibility (the supervisor always reaps).
class Subprocess {
 public:
  /// fork/execvp of `argv` (argv[0] is the binary, PATH-resolved). With
  /// `capture_stdout` the child's stdout is a pipe readable via
  /// stdout_fd() (O_NONBLOCK so a supervisor poll loop never sticks);
  /// stderr always passes through to the parent's. With
  /// `kill_on_parent_death` (Linux) the kernel delivers SIGKILL to the
  /// child when the spawning thread exits -- a daemon killed by -9
  /// cannot leave orphan workers appending to journal shards a restarted
  /// daemon is about to adopt.
  [[nodiscard]] static StatusOr<Subprocess> spawn(const std::vector<std::string>& argv,
                                                  bool capture_stdout,
                                                  bool kill_on_parent_death = false);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  [[nodiscard]] pid_t pid() const { return pid_; }
  /// -1 when stdout was not captured or the pipe was closed.
  [[nodiscard]] int stdout_fd() const { return stdout_fd_; }

  /// Non-blocking reap (waitpid WNOHANG). nullopt while still running;
  /// the ExitInfo once it has ended (cached: safe to call again).
  [[nodiscard]] std::optional<ExitInfo> poll();

  /// Blocking reap.
  [[nodiscard]] ExitInfo wait();

  /// Sends `sig` (default SIGKILL). No-op once the child was reaped.
  void kill(int sig);

  /// Drains whatever is currently readable from the stdout pipe into
  /// `buf` (non-blocking). Returns false once the pipe has reached EOF
  /// and been closed.
  bool read_stdout(std::string& buf);

 private:
  Subprocess() = default;

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::optional<ExitInfo> exit_;
};

}  // namespace hlsav
