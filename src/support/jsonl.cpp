#include "support/jsonl.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace hlsav::jsonl {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool find_value(const std::string& line, const char* key, std::size_t& pos) {
  std::string pat = "\"";
  pat += key;
  pat += "\":";
  std::size_t p = line.find(pat);
  if (p == std::string::npos) return false;
  pos = p + pat.size();
  return true;
}

bool parse_u64(const std::string& line, const char* key, std::uint64_t& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(line.c_str() + pos, &end, 10);
  return end != line.c_str() + pos && errno == 0;
}

bool parse_double(const std::string& line, const char* key, double& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  char* end = nullptr;
  out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

bool parse_string(const std::string& line, const char* key, std::string& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  out.clear();
  for (std::size_t i = pos + 1; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= line.size()) return false;
    char e = line[i];
    if (e == 'u') {
      if (i + 4 >= line.size()) return false;
      out += static_cast<char>(std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16));
      i += 4;
    } else {
      out += e;  // \" and \\ are the only other escapes we emit
    }
  }
  return false;  // unterminated
}

bool parse_bool(const std::string& line, const char* key, bool& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (line.compare(pos, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(pos, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

bool parse_u64_list(const std::string& line, const char* key,
                    std::vector<std::uint64_t>& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '[') return false;
  out.clear();
  std::size_t i = pos + 1;
  while (i < line.size() && line[i] != ']') {
    char* end = nullptr;
    std::uint64_t v = std::strtoull(line.c_str() + i, &end, 10);
    if (end == line.c_str() + i) return false;
    out.push_back(v);
    i = static_cast<std::size_t>(end - line.c_str());
    if (i < line.size() && line[i] == ',') ++i;
  }
  return i < line.size();
}

bool parse_u32_list(const std::string& line, const char* key,
                    std::vector<std::uint32_t>& out) {
  std::vector<std::uint64_t> wide;
  if (!parse_u64_list(line, key, wide)) return false;
  out.clear();
  out.reserve(wide.size());
  for (std::uint64_t v : wide) out.push_back(static_cast<std::uint32_t>(v));
  return true;
}

void append_u64_list(std::string& out, const std::vector<std::uint64_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

void append_u32_list(std::string& out, const std::vector<std::uint32_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace hlsav::jsonl
