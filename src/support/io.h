// Crash-safe file output.
//
// Every artifact the toolchain emits (BENCH_*.json, VCDs, binary
// traces, Chrome traces, campaign journals) goes through these helpers:
// content is written to a pid-unique temp sibling, fsync'd, and renamed
// into place, so a killed run leaves either the old file or the new one
// -- never a torn half-document.
#pragma once

#include <string>
#include <string_view>

#include "support/status.h"

namespace hlsav {

/// "<path>.tmp.<pid>" -- unique per process, same directory (so the
/// rename is atomic: same filesystem).
[[nodiscard]] std::string temp_sibling_path(const std::string& path);

/// Writes `content` to `path` atomically: temp sibling, fsync, rename.
/// The temp file is removed on any failure.
[[nodiscard]] Status write_file_atomic(const std::string& path, std::string_view content);

/// fsyncs the directory itself so a just-renamed entry survives a
/// power loss (rename makes the *data* durable, but the new directory
/// entry needs its own fsync to be on disk).
[[nodiscard]] Status fsync_dir(const std::string& dir);

}  // namespace hlsav
