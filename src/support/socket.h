// Local (unix-domain) stream sockets with line framing.
//
// The hlsavd campaign service speaks a one-JSON-object-per-line
// protocol over a unix socket: a local, file-permission-guarded
// transport with no port allocation or network dependency -- the right
// substrate for a per-host daemon. These helpers wrap the socket
// syscalls in Status (no exceptions, errno detail preserved) and
// provide the newline framing both ends use.
#pragma once

#include <atomic>
#include <string>

#include "support/status.h"

namespace hlsav {

/// Binds and listens on a unix socket at `path`. An existing socket
/// file at `path` is unlinked first (stale sockets survive a daemon
/// crash). Returns the listening fd (CLOEXEC).
[[nodiscard]] StatusOr<int> unix_listen(const std::string& path, int backlog = 16);

/// Connects to the daemon at `path`. Returns the connected fd (CLOEXEC).
[[nodiscard]] StatusOr<int> unix_connect(const std::string& path);

/// Accepts one connection, waiting up to `timeout_ms` (<= 0 blocks
/// indefinitely). Returns the connected fd, or -1 on timeout (ok()
/// status -- a timeout is an answer, so shutdown flags can be polled).
[[nodiscard]] StatusOr<int> unix_accept(int listen_fd, int timeout_ms);

/// Writes `line` plus a trailing newline, retrying short writes.
/// EPIPE/ECONNRESET surface as kUnavailable (the peer went away --
/// routine for a streaming service, not an internal error).
[[nodiscard]] Status send_line(int fd, const std::string& line);

/// Writes `data` verbatim (raw report bytes after a sized header line).
[[nodiscard]] Status send_bytes(int fd, std::string_view data);

/// Like send_bytes, but abortable: sends non-blocking, polls for
/// writability in `poll_ms` slices, and gives up with kCancelled as
/// soon as `*stop` turns true. This is what hlsavd watcher threads use
/// -- a subscriber that stops reading fills its socket buffer, and a
/// daemon shutting down must not wait on it forever.
[[nodiscard]] Status send_bytes_interruptible(int fd, std::string_view data,
                                              const std::atomic<bool>& stop,
                                              int poll_ms = 100);
[[nodiscard]] Status send_line_interruptible(int fd, const std::string& line,
                                             const std::atomic<bool>& stop,
                                             int poll_ms = 100);

/// Buffered line reader for one connection. Reads are blocking with an
/// optional per-call timeout.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next newline-terminated line (newline stripped). kUnavailable on
  /// clean EOF (no partial line buffered), kIoError on read errors or
  /// when the peer closes with a partial line buffered (a torn frame is
  /// not an orderly close), kBudgetExceeded on timeout (`timeout_ms`
  /// <= 0 blocks indefinitely; the message notes any buffered partial
  /// line so a stalled peer is distinguishable from an idle one).
  [[nodiscard]] StatusOr<std::string> read_line(int timeout_ms = -1);

  /// Exactly `n` raw bytes (the sized report payload). kIoError when
  /// the peer closes after delivering only part of the payload.
  [[nodiscard]] StatusOr<std::string> read_bytes(std::size_t n, int timeout_ms = -1);

 private:
  [[nodiscard]] Status fill(int timeout_ms);

  int fd_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace hlsav
