#include "support/bitvector.h"

#include <algorithm>

namespace hlsav {

void BitVector::mask_top() {
  unsigned full = width_ / 64;
  unsigned rem = width_ % 64;
  if (rem != 0) {
    words_[full] &= (~std::uint64_t{0}) >> (64 - rem);
    ++full;
  }
  for (unsigned i = full; i < kWords; ++i) words_[i] = 0;
}

BitVector BitVector::from_i64(unsigned width, std::int64_t value) {
  BitVector v(width);
  std::uint64_t u = static_cast<std::uint64_t>(value);
  if (width <= 64) {
    v.words_[0] = u & v.small_mask();
    return v;
  }
  v.words_[0] = u;
  std::uint64_t fill = value < 0 ? ~std::uint64_t{0} : 0;
  for (unsigned i = 1; i < kWords; ++i) v.words_[i] = fill;
  v.mask_top();
  return v;
}

BitVector BitVector::all_ones(unsigned width) {
  BitVector v(width);
  if (width <= 64) {
    v.words_[0] = v.small_mask();
    return v;
  }
  v.words_.fill(~std::uint64_t{0});
  v.mask_top();
  return v;
}

std::int64_t BitVector::to_i64() const {
  if (width_ >= 64) return static_cast<std::int64_t>(words_[0]);
  std::uint64_t u = words_[0];
  if (sign_bit()) u |= (~std::uint64_t{0}) << width_;
  return static_cast<std::int64_t>(u);
}

bool BitVector::any_wide() const {
  const unsigned n = nwords();
  for (unsigned i = 0; i < n; ++i) {
    if (words_[i] != 0) return true;
  }
  return false;
}

bool BitVector::bit(unsigned i) const {
  HLSAV_CHECK(i < width_, "bit index out of range");
  return (words_[i / 64] >> (i % 64)) & 1;
}

void BitVector::set_bit(unsigned i, bool v) {
  HLSAV_CHECK(i < width_, "bit index out of range");
  std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (v) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

BitVector BitVector::add_wide(const BitVector& rhs) const {
  BitVector out(width_);
  unsigned __int128 carry = 0;
  for (unsigned i = 0; i < kWords; ++i) {
    unsigned __int128 s = static_cast<unsigned __int128>(words_[i]) + rhs.words_[i] + carry;
    out.words_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out.mask_top();
  return out;
}

BitVector BitVector::neg_wide() const { return bnot_wide().add_wide(from_u64(width_, 1)); }

BitVector BitVector::mul_wide(const BitVector& rhs) const {
  BitVector out(width_);
  // Schoolbook multiply over 64-bit limbs, truncated to the result width.
  for (unsigned i = 0; i < kWords; ++i) {
    if (words_[i] == 0) continue;
    unsigned __int128 carry = 0;
    for (unsigned j = 0; i + j < kWords; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(words_[i]) * rhs.words_[j] +
                              out.words_[i + j] + carry;
      out.words_[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  out.mask_top();
  return out;
}

namespace {
// Long division on masked word arrays; quotient/remainder via shift-subtract.
// Only the wide (> 64-bit) path pays for this; small widths divide natively.
struct DivResult {
  BitVector quot;
  BitVector rem;
};

DivResult udivmod(const BitVector& num, const BitVector& den) {
  unsigned w = num.width();
  BitVector q(w);
  BitVector r(w);
  for (int i = static_cast<int>(w) - 1; i >= 0; --i) {
    r = r.shl(1);
    r.set_bit(0, num.bit(static_cast<unsigned>(i)));
    if (!r.ult(den)) {
      r = r.sub(den);
      q.set_bit(static_cast<unsigned>(i), true);
    }
  }
  return {q, r};
}
}  // namespace

BitVector BitVector::udiv(const BitVector& rhs) const {
  check_same(rhs);
  if (rhs.is_zero()) return all_ones(width_);
  if (is_small()) return small(width_, words_[0] / rhs.words_[0]);
  return udivmod(*this, rhs).quot;
}

BitVector BitVector::urem(const BitVector& rhs) const {
  check_same(rhs);
  if (rhs.is_zero()) return *this;
  if (is_small()) return small(width_, words_[0] % rhs.words_[0]);
  return udivmod(*this, rhs).rem;
}

BitVector BitVector::sdiv(const BitVector& rhs) const {
  check_same(rhs);
  if (rhs.is_zero()) return all_ones(width_);
  bool neg_n = sign_bit();
  bool neg_d = rhs.sign_bit();
  if (is_small()) {
    // Unsigned magnitudes at width, then reapply the sign: this wraps
    // INT_MIN / -1 to INT_MIN exactly like the hardware divider (and
    // avoids the native signed-overflow UB at width 64).
    std::uint64_t m = small_mask();
    std::uint64_t n = neg_n ? (0 - words_[0]) & m : words_[0];
    std::uint64_t d = neg_d ? (0 - rhs.words_[0]) & m : rhs.words_[0];
    std::uint64_t q = n / d;
    return small(width_, neg_n != neg_d ? (0 - q) & m : q);
  }
  BitVector n = neg_n ? neg() : *this;
  BitVector d = neg_d ? rhs.neg() : rhs;
  BitVector q = udivmod(n, d).quot;
  return (neg_n != neg_d) ? q.neg() : q;
}

BitVector BitVector::srem(const BitVector& rhs) const {
  check_same(rhs);
  if (rhs.is_zero()) return *this;
  bool neg_n = sign_bit();
  if (is_small()) {
    std::uint64_t m = small_mask();
    std::uint64_t n = neg_n ? (0 - words_[0]) & m : words_[0];
    std::uint64_t d = rhs.sign_bit() ? (0 - rhs.words_[0]) & m : rhs.words_[0];
    std::uint64_t r = n % d;
    return small(width_, neg_n ? (0 - r) & m : r);
  }
  BitVector n = neg_n ? neg() : *this;
  BitVector d = rhs.sign_bit() ? rhs.neg() : rhs;
  BitVector r = udivmod(n, d).rem;
  return neg_n ? r.neg() : r;
}

BitVector BitVector::band_wide(const BitVector& rhs) const {
  BitVector out(width_);
  for (unsigned i = 0; i < kWords; ++i) out.words_[i] = words_[i] & rhs.words_[i];
  return out;
}

BitVector BitVector::bor_wide(const BitVector& rhs) const {
  BitVector out(width_);
  for (unsigned i = 0; i < kWords; ++i) out.words_[i] = words_[i] | rhs.words_[i];
  return out;
}

BitVector BitVector::bxor_wide(const BitVector& rhs) const {
  BitVector out(width_);
  for (unsigned i = 0; i < kWords; ++i) out.words_[i] = words_[i] ^ rhs.words_[i];
  return out;
}

BitVector BitVector::bnot_wide() const {
  BitVector out(width_);
  for (unsigned i = 0; i < kWords; ++i) out.words_[i] = ~words_[i];
  out.mask_top();
  return out;
}

BitVector BitVector::shl_wide(unsigned amount) const {
  BitVector out(width_);
  unsigned word_shift = amount / 64;
  unsigned bit_shift = amount % 64;
  for (int i = kWords - 1; i >= 0; --i) {
    std::uint64_t v = 0;
    int src = i - static_cast<int>(word_shift);
    if (src >= 0) {
      v = words_[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) v |= words_[src - 1] >> (64 - bit_shift);
    }
    out.words_[i] = v;
  }
  out.mask_top();
  return out;
}

BitVector BitVector::lshr_wide(unsigned amount) const {
  BitVector out(width_);
  unsigned word_shift = amount / 64;
  unsigned bit_shift = amount % 64;
  for (unsigned i = 0; i < kWords; ++i) {
    std::uint64_t v = 0;
    unsigned src = i + word_shift;
    if (src < kWords) {
      v = words_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < kWords) v |= words_[src + 1] << (64 - bit_shift);
    }
    out.words_[i] = v;
  }
  return out;
}

BitVector BitVector::ashr(unsigned amount) const {
  bool s = sign_bit();
  if (amount >= width_) return s ? all_ones(width_) : BitVector(width_);
  if (is_small()) {
    std::uint64_t m = small_mask();
    std::uint64_t v = words_[0] >> amount;
    if (s && amount != 0) v |= m ^ (m >> amount);  // sign-fill the vacated bits
    return small(width_, v);
  }
  BitVector out = lshr_wide(amount);
  if (s) {
    for (unsigned i = width_ - amount; i < width_; ++i) out.set_bit(i, true);
  }
  return out;
}

int BitVector::ucmp_wide(const BitVector& rhs) const {
  for (int i = static_cast<int>(nwords()) - 1; i >= 0; --i) {
    if (words_[i] != rhs.words_[i]) return words_[i] < rhs.words_[i] ? -1 : 1;
  }
  return 0;
}

BitVector BitVector::zext(unsigned new_width) const {
  check_width(new_width);
  HLSAV_CHECK(new_width >= width_, "zext must not shrink");
  BitVector out(new_width);
  out.words_ = words_;
  return out;
}

BitVector BitVector::sext(unsigned new_width) const {
  check_width(new_width);
  HLSAV_CHECK(new_width >= width_, "sext must not shrink");
  BitVector out(new_width);
  out.words_ = words_;
  if (sign_bit()) {
    for (unsigned i = width_; i < new_width; ++i) out.set_bit(i, true);
  }
  return out;
}

BitVector BitVector::trunc(unsigned new_width) const {
  check_width(new_width);
  HLSAV_CHECK(new_width <= width_, "trunc must not grow");
  BitVector out(new_width);
  out.words_ = words_;
  out.mask_top();
  return out;
}

BitVector BitVector::resize(unsigned new_width, bool is_signed) const {
  if (new_width == width_) return *this;
  if (new_width < width_) return trunc(new_width);
  return is_signed ? sext(new_width) : zext(new_width);
}

BitVector BitVector::extract(unsigned lo, unsigned w) const {
  HLSAV_CHECK(lo + w <= width_, "extract out of range");
  return lshr(lo).trunc(w);
}

std::string BitVector::to_string_dec(bool is_signed) const {
  if (width_ <= 64) {
    return is_signed ? std::to_string(to_i64()) : std::to_string(to_u64());
  }
  BitVector v = *this;
  bool neg_sign = false;
  if (is_signed && sign_bit()) {
    neg_sign = true;
    v = v.neg();
  }
  std::string digits;
  BitVector ten = from_u64(width_, 10);
  while (v.any()) {
    DivResult dr = udivmod(v, ten);
    digits.push_back(static_cast<char>('0' + dr.rem.to_u64()));
    v = dr.quot;
  }
  if (digits.empty()) digits = "0";
  if (neg_sign) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BitVector::to_string_hex() const {
  static const char* kHex = "0123456789abcdef";
  unsigned nibbles = (width_ + 3) / 4;
  std::string out = "0x";
  for (int i = static_cast<int>(nibbles) - 1; i >= 0; --i) {
    unsigned lo = static_cast<unsigned>(i) * 4;
    unsigned w = std::min(4u, width_ - lo);
    out.push_back(kHex[extract(lo, w).to_u64()]);
  }
  return out;
}

}  // namespace hlsav
