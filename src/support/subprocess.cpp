#include "support/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <cstring>
#include <utility>

namespace hlsav {

std::string ExitInfo::describe() const {
  if (!signaled) return "exit " + std::to_string(value);
  std::string out = "signal " + std::to_string(value);
  const char* name = strsignal(value);
  if (name != nullptr) {
    out += " (";
    out += name;
    out += ')';
  }
  return out;
}

StatusOr<Subprocess> Subprocess::spawn(const std::vector<std::string>& argv,
                                       bool capture_stdout,
                                       bool kill_on_parent_death) {
  if (argv.empty()) return Status::invalid_argument("cannot spawn an empty argv");

  int pipe_fds[2] = {-1, -1};
  if (capture_stdout) {
    if (::pipe(pipe_fds) != 0) {
      return Status::io_error(std::string("pipe failed: ") + std::strerror(errno));
    }
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    Status st = Status::io_error(std::string("fork failed: ") + std::strerror(errno));
    if (capture_stdout) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
    }
    return st;
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls until exec.
#ifdef __linux__
    if (kill_on_parent_death) {
      (void)::prctl(PR_SET_PDEATHSIG, SIGKILL);
      // The parent may already have died between fork and prctl; the
      // death signal only covers deaths *after* the call, so check.
      if (::getppid() == 1) ::_exit(127);
    }
#else
    (void)kill_on_parent_death;
#endif
    if (capture_stdout) {
      ::close(pipe_fds[0]);
      while (::dup2(pipe_fds[1], STDOUT_FILENO) < 0 && errno == EINTR) {
      }
      ::close(pipe_fds[1]);
    }
    ::execvp(cargv[0], cargv.data());
    // exec failed: report on the (possibly piped) stderr and die with a
    // recognizable code.
    const char* msg = "exec failed: ";
    ssize_t ignored = ::write(STDERR_FILENO, msg, ::strlen(msg));
    ignored = ::write(STDERR_FILENO, cargv[0], ::strlen(cargv[0]));
    ignored = ::write(STDERR_FILENO, "\n", 1);
    (void)ignored;
    ::_exit(127);
  }

  Subprocess p;
  p.pid_ = pid;
  if (capture_stdout) {
    ::close(pipe_fds[1]);
    int flags = ::fcntl(pipe_fds[0], F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(pipe_fds[0], F_SETFL, flags | O_NONBLOCK);
    p.stdout_fd_ = pipe_fds[0];
  }
  return p;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)),
      exit_(std::exchange(other.exit_, std::nullopt)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
    pid_ = std::exchange(other.pid_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    exit_ = std::exchange(other.exit_, std::nullopt);
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (stdout_fd_ >= 0) ::close(stdout_fd_);
}

namespace {

ExitInfo decode_wait_status(int status) {
  ExitInfo info;
  if (WIFSIGNALED(status)) {
    info.signaled = true;
    info.value = WTERMSIG(status);
  } else {
    info.value = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
  }
  return info;
}

}  // namespace

std::optional<ExitInfo> Subprocess::poll() {
  if (exit_.has_value()) return exit_;
  if (pid_ < 0) return std::nullopt;
  int status = 0;
  pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) exit_ = decode_wait_status(status);
  return exit_;
}

ExitInfo Subprocess::wait() {
  if (exit_.has_value()) return *exit_;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  exit_ = r == pid_ ? decode_wait_status(status) : ExitInfo{false, 1};
  return *exit_;
}

void Subprocess::kill(int sig) {
  if (pid_ < 0 || exit_.has_value()) return;
  (void)::kill(pid_, sig);
}

bool Subprocess::read_stdout(std::string& buf) {
  if (stdout_fd_ < 0) return false;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::read(stdout_fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // EOF: child closed its end (usually by exiting)
      ::close(stdout_fd_);
      stdout_fd_ = -1;
      return false;
    }
    if (errno == EINTR) continue;
    return errno == EAGAIN || errno == EWOULDBLOCK;  // drained for now
  }
}

}  // namespace hlsav
