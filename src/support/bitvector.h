// Arbitrary-width two's-complement integer value, 1..256 bits.
//
// This is the runtime value type of the HLS-C interpreter, the IR constant
// folder and the cycle-accurate FSMD simulator. Hardware signals have
// explicit bit widths; every operation here models the corresponding
// hardware operator exactly (wrap-around arithmetic, logical/arithmetic
// shifts, signed/unsigned comparisons at the operand width).
//
// Widths of the two operands must match for binary operations; width
// adaptation is explicit via zext/sext/trunc, mirroring the IR.
//
// Performance: almost every signal in the case studies is <= 64 bits
// (the 3DES subkey schedule is the notable exception), so each operation
// has an inline single-word fast path -- one uint64_t plus one mask --
// and falls back to the out-of-line 4-word implementation only for wide
// values. The two paths must agree bit-exactly; a property test in
// tests/support/bitvector_test.cpp pins them against each other.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "support/diagnostics.h"

namespace hlsav {

class BitVector {
 public:
  static constexpr unsigned kMaxWidth = 256;
  static constexpr unsigned kWords = kMaxWidth / 64;
  static constexpr unsigned kSmallWidth = 64;  // widths <= this take the fast path

  /// Zero value of the given width.
  explicit BitVector(unsigned width = 1) : width_(width) { check_width(width); }

  /// Builds from a 64-bit unsigned value, truncating/zero-extending to width.
  static BitVector from_u64(unsigned width, std::uint64_t value) {
    BitVector v(width);
    v.words_[0] = width >= 64 ? value : (value & v.small_mask());
    return v;
  }
  /// Builds from a 64-bit signed value, truncating/sign-extending to width.
  static BitVector from_i64(unsigned width, std::int64_t value);
  /// Builds from a boolean as a width-1 vector.
  static BitVector from_bool(bool b) { return from_u64(1, b ? 1 : 0); }
  /// All-ones value of the given width.
  static BitVector all_ones(unsigned width);

  [[nodiscard]] unsigned width() const { return width_; }

  /// Low 64 bits (zero-extended if the value is narrower).
  [[nodiscard]] std::uint64_t to_u64() const { return words_[0]; }
  /// Value sign-extended to 64 bits (for widths <= 64 this is exact).
  [[nodiscard]] std::int64_t to_i64() const;
  /// True iff any bit is set.
  [[nodiscard]] bool any() const {
    if (is_small()) return words_[0] != 0;
    return any_wide();
  }
  [[nodiscard]] bool is_zero() const { return !any(); }
  /// Most significant (sign) bit.
  [[nodiscard]] bool sign_bit() const { return (words_[(width_ - 1) / 64] >> ((width_ - 1) % 64)) & 1; }
  [[nodiscard]] bool bit(unsigned i) const;
  void set_bit(unsigned i, bool v);

  // Arithmetic (operand widths must match; result has the same width).
  [[nodiscard]] BitVector add(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return small(width_, (words_[0] + rhs.words_[0]) & small_mask());
    return add_wide(rhs);
  }
  [[nodiscard]] BitVector sub(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return small(width_, (words_[0] - rhs.words_[0]) & small_mask());
    return add_wide(rhs.neg());
  }
  [[nodiscard]] BitVector mul(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return small(width_, (words_[0] * rhs.words_[0]) & small_mask());
    return mul_wide(rhs);
  }
  [[nodiscard]] BitVector udiv(const BitVector& rhs) const;  // x/0 == all ones
  [[nodiscard]] BitVector urem(const BitVector& rhs) const;  // x%0 == x
  [[nodiscard]] BitVector sdiv(const BitVector& rhs) const;
  [[nodiscard]] BitVector srem(const BitVector& rhs) const;
  [[nodiscard]] BitVector neg() const {
    if (is_small()) return small(width_, (0 - words_[0]) & small_mask());
    return neg_wide();
  }

  // Bitwise.
  [[nodiscard]] BitVector band(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return small(width_, words_[0] & rhs.words_[0]);
    return band_wide(rhs);
  }
  [[nodiscard]] BitVector bor(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return small(width_, words_[0] | rhs.words_[0]);
    return bor_wide(rhs);
  }
  [[nodiscard]] BitVector bxor(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return small(width_, words_[0] ^ rhs.words_[0]);
    return bxor_wide(rhs);
  }
  [[nodiscard]] BitVector bnot() const {
    if (is_small()) return small(width_, ~words_[0] & small_mask());
    return bnot_wide();
  }

  // Shifts; the shift amount is taken modulo nothing: amounts >= width
  // yield 0 (or all-sign for ashr), matching hardware barrel shifters.
  [[nodiscard]] BitVector shl(unsigned amount) const {
    if (amount >= width_) return BitVector(width_);
    if (is_small()) return small(width_, (words_[0] << amount) & small_mask());
    return shl_wide(amount);
  }
  [[nodiscard]] BitVector lshr(unsigned amount) const {
    if (amount >= width_) return BitVector(width_);
    if (is_small()) return small(width_, words_[0] >> amount);
    return lshr_wide(amount);
  }
  [[nodiscard]] BitVector ashr(unsigned amount) const;

  // Comparisons at operand width. Each is a single pass over the words;
  // in particular ule/sle do NOT decompose into (ult || eq) double scans.
  [[nodiscard]] bool eq(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return words_[0] == rhs.words_[0];
    return words_ == rhs.words_;
  }
  [[nodiscard]] bool ult(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return words_[0] < rhs.words_[0];
    return ucmp_wide(rhs) < 0;
  }
  [[nodiscard]] bool ule(const BitVector& rhs) const {
    check_same(rhs);
    if (is_small()) return words_[0] <= rhs.words_[0];
    return ucmp_wide(rhs) <= 0;
  }
  [[nodiscard]] bool slt(const BitVector& rhs) const {
    check_same(rhs);
    bool sa = sign_bit();
    bool sb = rhs.sign_bit();
    if (sa != sb) return sa;
    if (is_small()) return words_[0] < rhs.words_[0];
    return ucmp_wide(rhs) < 0;
  }
  [[nodiscard]] bool sle(const BitVector& rhs) const {
    check_same(rhs);
    bool sa = sign_bit();
    bool sb = rhs.sign_bit();
    if (sa != sb) return sa;
    if (is_small()) return words_[0] <= rhs.words_[0];
    return ucmp_wide(rhs) <= 0;
  }

  // Width adaptation.
  [[nodiscard]] BitVector zext(unsigned new_width) const;
  [[nodiscard]] BitVector sext(unsigned new_width) const;
  [[nodiscard]] BitVector trunc(unsigned new_width) const;
  /// zext/sext/trunc as needed to reach new_width.
  [[nodiscard]] BitVector resize(unsigned new_width, bool is_signed) const;

  /// Extracts bits [lo, lo+w) as a width-w value.
  [[nodiscard]] BitVector extract(unsigned lo, unsigned w) const;

  [[nodiscard]] std::string to_string_dec(bool is_signed = false) const;
  [[nodiscard]] std::string to_string_hex() const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.width_ == b.width_ && a.words_ == b.words_;
  }

 private:
  unsigned width_;
  std::array<std::uint64_t, kWords> words_{};  // excess bits always zero

  [[nodiscard]] bool is_small() const { return width_ <= kSmallWidth; }
  /// Mask of the valid bits of a <= 64-bit value.
  [[nodiscard]] std::uint64_t small_mask() const {
    return width_ == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width_) - 1;
  }
  /// Wraps an already-masked word as a small value.
  static BitVector small(unsigned width, std::uint64_t masked) {
    BitVector v(width);
    v.words_[0] = masked;
    return v;
  }
  /// Number of 64-bit words holding valid bits.
  [[nodiscard]] unsigned nwords() const { return (width_ + 63) / 64; }

  // Out-of-line multi-word implementations (widths > 64).
  [[nodiscard]] bool any_wide() const;
  [[nodiscard]] BitVector add_wide(const BitVector& rhs) const;
  [[nodiscard]] BitVector mul_wide(const BitVector& rhs) const;
  [[nodiscard]] BitVector neg_wide() const;
  [[nodiscard]] BitVector band_wide(const BitVector& rhs) const;
  [[nodiscard]] BitVector bor_wide(const BitVector& rhs) const;
  [[nodiscard]] BitVector bxor_wide(const BitVector& rhs) const;
  [[nodiscard]] BitVector bnot_wide() const;
  [[nodiscard]] BitVector shl_wide(unsigned amount) const;
  [[nodiscard]] BitVector lshr_wide(unsigned amount) const;
  /// Three-way unsigned compare: <0, 0, >0 -- one scan for ult/ule.
  [[nodiscard]] int ucmp_wide(const BitVector& rhs) const;

  void mask_top();
  static void check_width(unsigned w) {
    HLSAV_CHECK(w >= 1 && w <= kMaxWidth, "BitVector width out of range");
  }
  void check_same(const BitVector& rhs) const {
    HLSAV_CHECK(width_ == rhs.width_, "BitVector width mismatch");
  }
};

}  // namespace hlsav
