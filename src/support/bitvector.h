// Arbitrary-width two's-complement integer value, 1..256 bits.
//
// This is the runtime value type of the HLS-C interpreter, the IR constant
// folder and the cycle-accurate FSMD simulator. Hardware signals have
// explicit bit widths; every operation here models the corresponding
// hardware operator exactly (wrap-around arithmetic, logical/arithmetic
// shifts, signed/unsigned comparisons at the operand width).
//
// Widths of the two operands must match for binary operations; width
// adaptation is explicit via zext/sext/trunc, mirroring the IR.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hlsav {

class BitVector {
 public:
  static constexpr unsigned kMaxWidth = 256;
  static constexpr unsigned kWords = kMaxWidth / 64;

  /// Zero value of the given width.
  explicit BitVector(unsigned width = 1);

  /// Builds from a 64-bit unsigned value, truncating/zero-extending to width.
  static BitVector from_u64(unsigned width, std::uint64_t value);
  /// Builds from a 64-bit signed value, truncating/sign-extending to width.
  static BitVector from_i64(unsigned width, std::int64_t value);
  /// Builds from a boolean as a width-1 vector.
  static BitVector from_bool(bool b) { return from_u64(1, b ? 1 : 0); }
  /// All-ones value of the given width.
  static BitVector all_ones(unsigned width);

  [[nodiscard]] unsigned width() const { return width_; }

  /// Low 64 bits (zero-extended if the value is narrower).
  [[nodiscard]] std::uint64_t to_u64() const { return words_[0]; }
  /// Value sign-extended to 64 bits (for widths <= 64 this is exact).
  [[nodiscard]] std::int64_t to_i64() const;
  /// True iff any bit is set.
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool is_zero() const { return !any(); }
  /// Most significant (sign) bit.
  [[nodiscard]] bool sign_bit() const;
  [[nodiscard]] bool bit(unsigned i) const;
  void set_bit(unsigned i, bool v);

  // Arithmetic (operand widths must match; result has the same width).
  [[nodiscard]] BitVector add(const BitVector& rhs) const;
  [[nodiscard]] BitVector sub(const BitVector& rhs) const;
  [[nodiscard]] BitVector mul(const BitVector& rhs) const;
  [[nodiscard]] BitVector udiv(const BitVector& rhs) const;  // x/0 == all ones
  [[nodiscard]] BitVector urem(const BitVector& rhs) const;  // x%0 == x
  [[nodiscard]] BitVector sdiv(const BitVector& rhs) const;
  [[nodiscard]] BitVector srem(const BitVector& rhs) const;
  [[nodiscard]] BitVector neg() const;

  // Bitwise.
  [[nodiscard]] BitVector band(const BitVector& rhs) const;
  [[nodiscard]] BitVector bor(const BitVector& rhs) const;
  [[nodiscard]] BitVector bxor(const BitVector& rhs) const;
  [[nodiscard]] BitVector bnot() const;

  // Shifts; the shift amount is taken modulo nothing: amounts >= width
  // yield 0 (or all-sign for ashr), matching hardware barrel shifters.
  [[nodiscard]] BitVector shl(unsigned amount) const;
  [[nodiscard]] BitVector lshr(unsigned amount) const;
  [[nodiscard]] BitVector ashr(unsigned amount) const;

  // Comparisons at operand width.
  [[nodiscard]] bool eq(const BitVector& rhs) const;
  [[nodiscard]] bool ult(const BitVector& rhs) const;
  [[nodiscard]] bool ule(const BitVector& rhs) const { return ult(rhs) || eq(rhs); }
  [[nodiscard]] bool slt(const BitVector& rhs) const;
  [[nodiscard]] bool sle(const BitVector& rhs) const { return slt(rhs) || eq(rhs); }

  // Width adaptation.
  [[nodiscard]] BitVector zext(unsigned new_width) const;
  [[nodiscard]] BitVector sext(unsigned new_width) const;
  [[nodiscard]] BitVector trunc(unsigned new_width) const;
  /// zext/sext/trunc as needed to reach new_width.
  [[nodiscard]] BitVector resize(unsigned new_width, bool is_signed) const;

  /// Extracts bits [lo, lo+w) as a width-w value.
  [[nodiscard]] BitVector extract(unsigned lo, unsigned w) const;

  [[nodiscard]] std::string to_string_dec(bool is_signed = false) const;
  [[nodiscard]] std::string to_string_hex() const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.width_ == b.width_ && a.words_ == b.words_;
  }

 private:
  unsigned width_;
  std::array<std::uint64_t, kWords> words_{};  // excess bits always zero

  void mask_top();
  static void check_width(unsigned w);
  void check_same(const BitVector& rhs) const;
};

}  // namespace hlsav
