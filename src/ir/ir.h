// Typed intermediate representation of an HLS design.
//
// A Design is a task graph (Fig. 1 of the paper): hardware Processes
// connected by Streams, plus block-RAM Memories owned by processes and a
// catalogue of assertions. Each process body is a CFG of BasicBlocks
// whose operations read/write a process-local register file, access
// memories through ports, and perform blocking stream I/O.
//
// The representation is deliberately register-based rather than SSA:
// virtual registers map 1:1 onto hardware registers, which keeps the
// scheduler's resource accounting and the area model direct.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/bitvector.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace hlsav::ir {

using RegId = std::uint32_t;
using BlockId = std::uint32_t;
using MemId = std::uint32_t;
using StreamId = std::uint32_t;

inline constexpr RegId kNoReg = std::numeric_limits<RegId>::max();
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();
inline constexpr MemId kNoMem = std::numeric_limits<MemId>::max();
inline constexpr StreamId kNoStream = std::numeric_limits<StreamId>::max();

// ------------------------------------------------------------ Operands --

enum class OperandKind : std::uint8_t { kNone, kReg, kImm };

/// An op input: a virtual register or an immediate.
struct Operand {
  OperandKind kind = OperandKind::kNone;
  RegId reg = kNoReg;
  BitVector imm{1};

  static Operand none() { return {}; }
  static Operand make_reg(RegId r) {
    Operand o;
    o.kind = OperandKind::kReg;
    o.reg = r;
    return o;
  }
  static Operand make_imm(BitVector v) {
    Operand o;
    o.kind = OperandKind::kImm;
    o.imm = std::move(v);
    return o;
  }

  [[nodiscard]] bool is_reg() const { return kind == OperandKind::kReg; }
  [[nodiscard]] bool is_imm() const { return kind == OperandKind::kImm; }
  [[nodiscard]] bool is_none() const { return kind == OperandKind::kNone; }
};

// ----------------------------------------------------------------- Ops --

enum class BinKind : std::uint8_t {
  kAdd, kSub, kMul, kDivU, kDivS, kRemU, kRemS,
  kAnd, kOr, kXor, kShl, kShrL, kShrA,
  kCmpEq, kCmpNe, kCmpLtU, kCmpLtS, kCmpLeU, kCmpLeS,
};

enum class UnKind : std::uint8_t { kNeg, kNot };

enum class ResizeKind : std::uint8_t { kZext, kSext, kTrunc };

enum class OpKind : std::uint8_t {
  kBin,          // dest = bin(args[0], args[1])
  kUn,           // dest = un(args[0])
  kResize,       // dest = resize(args[0])
  kCopy,         // dest = args[0] (same width)
  kLoad,         // dest = mem[args[0]]          (uses one memory port)
  kStore,        // mem[args[0]] = args[1]       (uses one memory port)
  kStreamRead,   // dest = pop(stream)           (blocking)
  kStreamWrite,  // push(stream, args[0])        (blocking)
  kCallExtern,   // dest = extern_fn(args...)
  kAssert,       // check args[0] != 0; synthesized away by assertion pass
  kAssertTap,    // zero-cost register tap feeding a checker process
  kAssertFailWire,  // zero-cost failure wire into a collector (args[0]=cond)
  kAssertCycles,    // timing assertion marker: elapsed cycles <= bound
};

inline constexpr std::uint32_t kNoAssertTag = std::numeric_limits<std::uint32_t>::max();

/// One primitive operation. `pred`, when set, predicates execution on the
/// register being non-zero (used for if-converted bodies of pipelined
/// loops, notably the failure-send of unoptimized in-circuit assertions).
struct Op {
  OpKind kind = OpKind::kCopy;
  SourceLoc loc;
  RegId dest = kNoReg;
  std::vector<Operand> args;
  Operand pred = Operand::none();
  bool pred_negated = false;  // execute when pred == 0 instead

  BinKind bin = BinKind::kAdd;
  UnKind un = UnKind::kNeg;
  ResizeKind resize = ResizeKind::kZext;
  MemId mem = kNoMem;
  StreamId stream = kNoStream;
  std::string callee;
  std::uint32_t assert_id = 0;

  /// kAssertCycles: the cycle budget since the previous marker.
  std::uint64_t cycle_bound = 0;

  /// Ops emitted while lowering an assert condition carry the assertion
  /// id here; the synthesis strategies relocate exactly this slice.
  std::uint32_t assert_tag = kNoAssertTag;
  /// Extraction ops (data fetches the application performs on behalf of
  /// a parallelized assertion) may merge into application states.
  bool is_extraction = false;

  [[nodiscard]] bool is_memory_access() const {
    return kind == OpKind::kLoad || kind == OpKind::kStore;
  }
  [[nodiscard]] bool is_stream_access() const {
    return kind == OpKind::kStreamRead || kind == OpKind::kStreamWrite;
  }
};

// ------------------------------------------------------------- Blocks --

enum class TermKind : std::uint8_t { kJump, kBranch, kReturn };

struct Terminator {
  TermKind kind = TermKind::kReturn;
  Operand cond = Operand::none();  // kBranch
  BlockId on_true = kNoBlock;      // kJump target / branch taken
  BlockId on_false = kNoBlock;     // branch not taken
};

struct BasicBlock {
  BlockId id = kNoBlock;
  std::string name;
  std::vector<Op> ops;
  Terminator term;
};

// ---------------------------------------------------- Loops & pipelines --

/// Canonical loop shape produced by lowering a `for` loop:
///   preheader -> header(cond test) -> body(straight line + step) -> header
///                                  \-> exit
/// Only loops with a single straight-line body block are eligible for
/// pipelining (`#pragma HLS pipeline`).
struct LoopInfo {
  BlockId header = kNoBlock;
  BlockId body = kNoBlock;
  BlockId exit = kNoBlock;
  bool pipelined = false;
  SourceLoc loc;
};

// ------------------------------------------------------------ Registers --

struct Register {
  RegId id = kNoReg;
  std::string name;
  unsigned width = 32;
  bool is_signed = false;
};

// ------------------------------------------------------------ Memories --

enum class MemRole : std::uint8_t {
  kData,     // ordinary application block RAM
  kRom,      // constant-initialized, read-only
  kReplica,  // assertion-read replica created by resource replication
};

/// A block RAM (or ROM). One usable port on the application side: the
/// other physical port of the dual-port RAM is owned by the platform
/// wrapper, which is why simultaneous application + assertion access
/// costs a cycle (paper §3.2). A replica adds a dedicated read port for
/// the assertion checker; its writes mirror the original's.
struct Memory {
  MemId id = kNoMem;
  std::string name;
  std::string owner_process;
  unsigned width = 32;
  bool is_signed = false;
  std::uint64_t size = 0;
  MemRole role = MemRole::kData;
  MemId replica_of = kNoMem;
  bool replicate_for_assertions = false;  // #pragma HLS replicate
  std::vector<BitVector> init;            // ROM contents / initial values
};

// -------------------------------------------------------------- Streams --

/// What a stream carries; drives the area model and the resource-sharing
/// optimization (assertion streams are the ones the paper packs 32-to-1).
enum class StreamRole : std::uint8_t {
  kData,          // application data
  kAssertFail,    // assertion failure ids, one 32-bit id per failure
  kAssertPacked,  // bit-packed failure flags (resource sharing, §4.2)
  kAssertData,    // operand values sent from app to a checker process
};

/// Endpoint naming: processes bind stream ports by name; kCpu endpoints
/// are produced/consumed by software tasks over the multiplexed channel.
struct StreamEndpoint {
  enum class Kind : std::uint8_t { kUnbound, kProcess, kCpu } kind = Kind::kUnbound;
  std::string process;  // for kProcess
  std::string port;     // formal parameter name inside the process
};

struct Stream {
  StreamId id = kNoStream;
  std::string name;
  unsigned width = 32;
  unsigned depth = 16;  // FIFO depth
  StreamRole role = StreamRole::kData;
  StreamEndpoint producer;
  StreamEndpoint consumer;
  /// Lowering binds every port to a fresh CPU-facing stream; rewiring a
  /// port to a process-to-process channel kills the placeholder. Dead
  /// streams are skipped by the verifier, simulator and area model.
  bool dead = false;
};

// ------------------------------------------------------------ Processes --

struct StreamPort {
  std::string name;
  bool is_input = true;
  unsigned width = 32;
  StreamId stream = kNoStream;  // bound channel
};

enum class ProcessRole : std::uint8_t {
  kApplication,
  kAssertChecker,    // generated by assertion parallelization (§3.1)
  kAssertCollector,  // generated by channel resource sharing (§4.2)
};

struct Process {
  std::string name;
  ProcessRole role = ProcessRole::kApplication;
  std::vector<StreamPort> ports;
  std::vector<Register> regs;
  std::vector<BasicBlock> blocks;
  std::vector<LoopInfo> loops;
  BlockId entry = kNoBlock;

  // ---- construction helpers ----
  RegId add_reg(std::string name, unsigned width, bool is_signed);
  BlockId add_block(std::string name);
  [[nodiscard]] BasicBlock& block(BlockId id);
  [[nodiscard]] const BasicBlock& block(BlockId id) const;
  [[nodiscard]] Register& reg(RegId id);
  [[nodiscard]] const Register& reg(RegId id) const;
  [[nodiscard]] const StreamPort* find_port(std::string_view name) const;
  StreamPort* find_port(std::string_view name);
  [[nodiscard]] unsigned operand_width(const Operand& o) const;
  /// The LoopInfo whose body block is `b`, if any.
  [[nodiscard]] const LoopInfo* loop_with_body(BlockId b) const;
};

// ---------------------------------------------------------- Assertions --

/// Assertion catalogue entry carried from sema into the design; the
/// synthesis strategy fills in how the failure is reported.
struct AssertionRecord {
  std::uint32_t id = 0;
  std::string process;       // process containing the assertion
  std::string function;      // HLS-C function name (for the message)
  std::string file;
  std::uint32_t line = 0;
  std::string condition_text;
  // Failure encoding, filled by the assertion synthesis pass:
  StreamId fail_stream = kNoStream;
  std::uint32_t fail_code = 0;  // id sent on kAssertFail streams
  std::uint32_t fail_bit = 0;   // bit index on kAssertPacked streams

  // Parallelized assertions (§3.1): the checker process evaluating this
  // condition, and the checker registers that receive the application's
  // register taps (same order as the kAssertTap op's args).
  std::string checker_process;
  std::vector<RegId> checker_inputs;
  /// Grouped checkers (§3.3 extension): the block inside the shared
  /// checker process that evaluates this assertion (kNoBlock = entry).
  BlockId checker_block = kNoBlock;

  [[nodiscard]] std::string failure_message() const;
};

// --------------------------------------------------------------- Design --

/// External HDL function: the paper's §5.1 second example. The C model
/// (used by software simulation) and the HDL behaviour (used in circuit)
/// may legitimately differ -- that divergence is what in-circuit
/// assertions catch. Bound at simulation time via sim::ExternRegistry.
struct ExternFunc {
  std::string name;
  unsigned result_width = 32;
  bool result_signed = false;
  std::vector<unsigned> param_widths;
};

struct Design {
  std::string name;
  std::vector<std::unique_ptr<Process>> processes;
  std::vector<Stream> streams;
  std::vector<Memory> memories;
  std::vector<ExternFunc> extern_funcs;
  std::vector<AssertionRecord> assertions;
  /// NABORT: keep running after an assertion failure (paper §4.1); used
  /// for hang tracing with assert(0) markers (§5.1).
  bool continue_on_failure = false;

  Process& add_process(std::string name);
  StreamId add_stream(std::string name, unsigned width, unsigned depth = 16,
                      StreamRole role = StreamRole::kData);
  MemId add_memory(std::string name, std::string owner, unsigned width, bool is_signed,
                   std::uint64_t size);

  [[nodiscard]] Process* find_process(std::string_view name);
  [[nodiscard]] const Process* find_process(std::string_view name) const;
  [[nodiscard]] Stream& stream(StreamId id);
  [[nodiscard]] const Stream& stream(StreamId id) const;
  [[nodiscard]] Memory& memory(MemId id);
  [[nodiscard]] const Memory& memory(MemId id) const;
  [[nodiscard]] const ExternFunc* find_extern(std::string_view name) const;
  [[nodiscard]] const AssertionRecord* find_assertion(std::uint32_t id) const;
  /// Ids of all non-dead streams, in id order (fault-site enumeration,
  /// output collection).
  [[nodiscard]] std::vector<StreamId> live_stream_ids() const;
  /// Application processes in declaration order (assertion-synthesis
  /// helpers skip checkers/collectors the same way).
  [[nodiscard]] std::vector<const Process*> application_processes() const;

  /// Binds a process port to a stream and records the endpoint.
  void connect_producer(StreamId s, std::string_view process, std::string_view port);
  void connect_consumer(StreamId s, std::string_view process, std::string_view port);
  void connect_cpu_producer(StreamId s);
  void connect_cpu_consumer(StreamId s);

  /// Deep copy (processes are owned by unique_ptr).
  [[nodiscard]] Design clone() const;
};

// ------------------------------------------------------------ Utilities --

[[nodiscard]] const char* bin_kind_name(BinKind k);
[[nodiscard]] const char* op_kind_name(OpKind k);
[[nodiscard]] bool bin_is_comparison(BinKind k);
/// Result width of a binary op given operand width w.
[[nodiscard]] unsigned bin_result_width(BinKind k, unsigned w);
/// Evaluator function for one BinKind, resolvable once per op via
/// bin_eval_fn for loops that want a cached function pointer.
using BinEvalFn = BitVector (*)(const BitVector&, const BitVector&);
[[nodiscard]] BinEvalFn bin_eval_fn(BinKind k);

/// Shift amounts saturate at 256 (any shift >= the operand width clears
/// or sign-fills anyway, and BitVector caps at 256 bits).
[[nodiscard]] inline unsigned shift_amount(const BitVector& b) {
  std::uint64_t v = b.to_u64();
  return v > 256 ? 256u : static_cast<unsigned>(v);
}

/// Evaluates a binary op on values (widths must match). Inline so
/// interpreter hot loops fold the dispatch and the small-width BitVector
/// fast paths into straight-line code instead of an indirect call.
[[nodiscard]] inline BitVector eval_bin(BinKind k, const BitVector& a, const BitVector& b) {
  switch (k) {
    case BinKind::kAdd: return a.add(b);
    case BinKind::kSub: return a.sub(b);
    case BinKind::kMul: return a.mul(b);
    case BinKind::kDivU: return a.udiv(b);
    case BinKind::kDivS: return a.sdiv(b);
    case BinKind::kRemU: return a.urem(b);
    case BinKind::kRemS: return a.srem(b);
    case BinKind::kAnd: return a.band(b);
    case BinKind::kOr: return a.bor(b);
    case BinKind::kXor: return a.bxor(b);
    case BinKind::kShl: return a.shl(shift_amount(b));
    case BinKind::kShrL: return a.lshr(shift_amount(b));
    case BinKind::kShrA: return a.ashr(shift_amount(b));
    case BinKind::kCmpEq: return BitVector::from_bool(a.eq(b));
    case BinKind::kCmpNe: return BitVector::from_bool(!a.eq(b));
    case BinKind::kCmpLtU: return BitVector::from_bool(a.ult(b));
    case BinKind::kCmpLtS: return BitVector::from_bool(a.slt(b));
    case BinKind::kCmpLeU: return BitVector::from_bool(a.ule(b));
    case BinKind::kCmpLeS: return BitVector::from_bool(a.sle(b));
  }
  HLSAV_UNREACHABLE("bad BinKind");
}

[[nodiscard]] inline BitVector eval_un(UnKind k, const BitVector& a) {
  switch (k) {
    case UnKind::kNeg: return a.neg();
    case UnKind::kNot: return a.bnot();
  }
  HLSAV_UNREACHABLE("bad UnKind");
}

/// Renders the whole design as human-readable text (tests, debugging).
[[nodiscard]] std::string print_design(const Design& design);
[[nodiscard]] std::string print_process(const Design& design, const Process& proc);

/// Structural validity check; throws InternalError with a description of
/// the first violation. Returns normally iff the design is well-formed.
void verify(const Design& design);

}  // namespace hlsav::ir
