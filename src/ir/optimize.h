// Standard HLS cleanup passes over the IR.
//
// Frontend lowering is deliberately naive (one temp per expression node,
// explicit copies into named variables); these passes perform the
// cleanups any HLS tool runs before scheduling:
//
//  * constant folding  -- ops whose inputs are all immediates are
//    evaluated at compile time (block-local, after-def uses rewritten);
//  * copy propagation  -- uses of `dest` after `dest = copy src` read
//    `src` directly while neither register is redefined (block-local);
//  * dead code elimination -- side-effect-free ops whose results are
//    never read anywhere are removed (global use check).
//
// The passes never touch ops with side effects (stores, stream I/O,
// extern calls, assertion markers) and preserve assertion condition
// slices: a tagged op survives as long as the assert/tap/failure op
// consuming it does. Run ir::verify afterwards in tests; functional
// equivalence is enforced by the integration property tests.
#pragma once

#include <string>

#include "ir/ir.h"

namespace hlsav::ir {

struct OptOptions {
  bool constant_fold = true;
  bool copy_propagate = true;
  bool dce = true;
  unsigned max_iterations = 4;  // fixpoint bound
};

struct OptReport {
  unsigned folded = 0;
  unsigned propagated = 0;
  unsigned removed = 0;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] unsigned total() const { return folded + propagated + removed; }
};

/// Optimizes every process in place.
OptReport optimize(Design& design, const OptOptions& options = {});

/// Optimizes a single process in place.
OptReport optimize_process(Design& design, Process& proc, const OptOptions& options = {});

}  // namespace hlsav::ir
