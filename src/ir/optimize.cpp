#include "ir/optimize.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace hlsav::ir {

namespace {

bool has_side_effects(const Op& op) {
  switch (op.kind) {
    case OpKind::kStore:
    case OpKind::kStreamRead:   // consumes a FIFO entry
    case OpKind::kStreamWrite:
    case OpKind::kCallExtern:   // externally visible
    case OpKind::kAssert:
    case OpKind::kAssertTap:
    case OpKind::kAssertFailWire:
    case OpKind::kAssertCycles:
      return true;
    default:
      return false;
  }
}

/// Evaluates a pure op whose inputs are all immediates; returns false if
/// the op is not foldable.
bool fold_op(const Process& proc, const Op& op, BitVector& out) {
  auto imm = [&op](std::size_t i) -> const BitVector& { return op.args[i].imm; };
  for (const Operand& a : op.args) {
    if (!a.is_imm()) return false;
  }
  if (!op.pred.is_none()) return false;  // predicated ops stay dynamic
  switch (op.kind) {
    case OpKind::kBin:
      out = eval_bin(op.bin, imm(0), imm(1));
      return true;
    case OpKind::kUn:
      out = eval_un(op.un, imm(0));
      return true;
    case OpKind::kCopy:
      out = imm(0);
      return true;
    case OpKind::kResize:
      out = imm(0).resize(proc.reg(op.dest).width, op.resize == ResizeKind::kSext);
      return true;
    default:
      return false;
  }
}

class Optimizer {
 public:
  Optimizer(Design& d, Process& p, const OptOptions& opt) : d_(d), p_(p), opt_(opt) {}

  OptReport run() {
    for (unsigned iter = 0; iter < opt_.max_iterations; ++iter) {
      unsigned before = rep_.total();
      if (opt_.constant_fold) fold_pass();
      if (opt_.copy_propagate) copy_pass();
      if (opt_.dce) dce_pass();
      if (rep_.total() == before) break;  // fixpoint
    }
    return rep_;
  }

 private:
  Design& d_;
  Process& p_;
  const OptOptions& opt_;
  OptReport rep_;

  // ---- constant folding (block-local) ----
  void fold_pass() {
    for (BasicBlock& b : p_.blocks) {
      std::unordered_map<RegId, BitVector> consts;
      auto subst = [&consts](Operand& o) {
        if (!o.is_reg()) return;
        if (auto it = consts.find(o.reg); it != consts.end()) {
          o = Operand::make_imm(it->second);
        }
      };
      for (Op& op : b.ops) {
        for (Operand& a : op.args) subst(a);
        subst(op.pred);
        BitVector value{1};
        if (op.dest != kNoReg) {
          if (fold_op(p_, op, value)) {
            // The op becomes a constant copy; record for later uses.
            if (!(op.kind == OpKind::kCopy && op.args[0].is_imm())) ++rep_.folded;
            op.kind = OpKind::kCopy;
            op.args = {Operand::make_imm(value)};
            consts[op.dest] = value;
          } else {
            consts.erase(op.dest);
          }
        }
      }
      subst(b.term.cond);
      // A branch on a constant is a jump -- except on pipelined loop
      // headers, whose branch structure the scheduler relies on.
      if (b.term.kind == TermKind::kBranch && b.term.cond.is_imm() && !is_loop_header(b.id)) {
        BlockId target = b.term.cond.imm.any() ? b.term.on_true : b.term.on_false;
        b.term = Terminator{TermKind::kJump, Operand::none(), target, kNoBlock};
        ++rep_.folded;
      }
    }
  }

  [[nodiscard]] bool is_loop_header(BlockId id) const {
    for (const LoopInfo& l : p_.loops) {
      if (l.header == id) return true;
    }
    return false;
  }

  // ---- copy propagation (block-local) ----
  void copy_pass() {
    for (BasicBlock& b : p_.blocks) {
      std::unordered_map<RegId, RegId> alias;  // dest -> source
      auto invalidate = [&alias](RegId r) {
        alias.erase(r);
        for (auto it = alias.begin(); it != alias.end();) {
          it = it->second == r ? alias.erase(it) : std::next(it);
        }
      };
      auto subst = [&alias, this](Operand& o) {
        if (!o.is_reg()) return;
        if (auto it = alias.find(o.reg); it != alias.end()) {
          o = Operand::make_reg(it->second);
          ++rep_.propagated;
        }
      };
      for (Op& op : b.ops) {
        for (Operand& a : op.args) subst(a);
        subst(op.pred);
        if (op.dest == kNoReg) continue;
        invalidate(op.dest);
        if (op.kind == OpKind::kCopy && op.args[0].is_reg() && op.args[0].reg != op.dest &&
            p_.reg(op.args[0].reg).width == p_.reg(op.dest).width) {
          alias[op.dest] = op.args[0].reg;
        }
      }
      subst(b.term.cond);
    }
  }

  // ---- dead code elimination (global use check) ----
  void dce_pass() {
    std::unordered_set<RegId> used;
    auto mark = [&used](const Operand& o) {
      if (o.is_reg()) used.insert(o.reg);
    };
    for (const BasicBlock& b : p_.blocks) {
      for (const Op& op : b.ops) {
        for (const Operand& a : op.args) mark(a);
        mark(op.pred);
      }
      mark(b.term.cond);
    }
    for (BasicBlock& b : p_.blocks) {
      std::erase_if(b.ops, [&](const Op& op) {
        if (has_side_effects(op)) return false;
        if (op.kind == OpKind::kLoad) {
          // Loads are removable only when the value is dead: reads have
          // no architectural effect, but keep tagged condition loads --
          // their consumer may live in a checker process.
          if (op.assert_tag != kNoAssertTag) return false;
        }
        if (op.dest == kNoReg) return false;
        if (used.contains(op.dest)) return false;
        ++rep_.removed;
        return true;
      });
    }
  }
};

}  // namespace

std::string OptReport::to_string() const {
  std::ostringstream os;
  os << "folded " << folded << ", propagated " << propagated << ", removed " << removed;
  return os.str();
}

OptReport optimize_process(Design& design, Process& proc, const OptOptions& options) {
  Optimizer o(design, proc, options);
  return o.run();
}

OptReport optimize(Design& design, const OptOptions& options) {
  OptReport total;
  for (auto& p : design.processes) {
    OptReport r = optimize_process(design, *p, options);
    total.folded += r.folded;
    total.propagated += r.propagated;
    total.removed += r.removed;
  }
  return total;
}

}  // namespace hlsav::ir
