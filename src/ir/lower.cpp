#include "ir/lower.h"

#include <unordered_map>

namespace hlsav::ir {

using lang::BinaryOp;
using lang::Expr;
using lang::ExprKind;
using lang::Stmt;
using lang::StmtKind;
using lang::UnaryOp;

namespace {

/// Operand plus the language-level type information needed for width
/// adaptation decisions (extension uses the *source* signedness).
struct TypedOperand {
  Operand op;
  unsigned width = 0;
  bool is_signed = false;
};

constexpr unsigned kAddrWidth = 32;

class Lowerer {
 public:
  Lowerer(Design& design, const lang::Program& program, const lang::Function& fn,
          const SourceManager& sm, DiagnosticEngine& diags)
      : design_(design), program_(program), fn_(fn), sm_(sm), diags_(diags) {}

  Process* run() {
    if (!fn_.is_process()) {
      diags_.error(fn_.loc, "function '" + fn_.name + "' is not a process (must be void with "
                            "only stream parameters)");
      return nullptr;
    }
    if (design_.find_process(fn_.name) != nullptr) {
      diags_.error(fn_.loc, "process '" + fn_.name + "' already instantiated in design '" +
                                design_.name + "'");
      return nullptr;
    }
    proc_ = &design_.add_process(fn_.name);

    for (const lang::Param& p : fn_.params) {
      StreamPort port;
      port.name = p.name;
      port.is_input = p.type.stream_dir() == lang::StreamDir::kIn;
      port.width = p.type.width();
      proc_->ports.push_back(port);
      // Bind every port to a fresh CPU-facing stream; callers rewire
      // process-to-process connections afterwards via Design::connect_*.
      StreamId s = design_.add_stream(fn_.name + "." + p.name, port.width);
      proc_->find_port(p.name)->stream = s;
      if (port.is_input) {
        design_.stream(s).consumer = StreamEndpoint{StreamEndpoint::Kind::kProcess, fn_.name,
                                                    p.name};
        design_.connect_cpu_producer(s);
      } else {
        design_.stream(s).producer = StreamEndpoint{StreamEndpoint::Kind::kProcess, fn_.name,
                                                    p.name};
        design_.connect_cpu_consumer(s);
      }
    }

    cur_ = proc_->add_block("entry");
    proc_->entry = cur_;
    lower_stmts(fn_.body);
    block().term.kind = TermKind::kReturn;
    if (failed_) return nullptr;
    return proc_;
  }

 private:
  Design& design_;
  const lang::Program& program_;
  const lang::Function& fn_;
  const SourceManager& sm_;
  DiagnosticEngine& diags_;
  Process* proc_ = nullptr;
  BlockId cur_ = kNoBlock;
  bool failed_ = false;

  std::unordered_map<std::string, RegId> scalars_;
  std::unordered_map<std::string, MemId> arrays_;
  std::uint32_t cur_tag_ = kNoAssertTag;
  unsigned temp_count_ = 0;

  struct LoopCtx {
    BlockId continue_target;
    BlockId break_target;
  };
  std::vector<LoopCtx> loop_stack_;

  BasicBlock& block() { return proc_->block(cur_); }

  void error(SourceLoc loc, const std::string& msg) {
    diags_.error(loc, msg);
    failed_ = true;
  }

  RegId new_temp(unsigned width, bool is_signed) {
    return proc_->add_reg("t" + std::to_string(temp_count_++), width, is_signed);
  }

  Op& emit(Op op) {
    if (cur_tag_ != kNoAssertTag) op.assert_tag = cur_tag_;
    block().ops.push_back(std::move(op));
    return block().ops.back();
  }

  // ------------------------------------------------------- width glue --

  TypedOperand resize_to(TypedOperand v, unsigned width, bool target_signed, SourceLoc loc) {
    if (v.width == width) {
      v.is_signed = target_signed;
      return v;
    }
    if (v.op.is_imm()) {
      TypedOperand out;
      out.op = Operand::make_imm(v.op.imm.resize(width, v.is_signed));
      out.width = width;
      out.is_signed = target_signed;
      return out;
    }
    Op op;
    op.kind = OpKind::kResize;
    op.loc = loc;
    op.resize = width < v.width ? ResizeKind::kTrunc
                : v.is_signed   ? ResizeKind::kSext
                                : ResizeKind::kZext;
    op.args.push_back(v.op);
    op.dest = new_temp(width, target_signed);
    emit(op);
    TypedOperand out;
    out.op = Operand::make_reg(op.dest);
    out.width = width;
    out.is_signed = target_signed;
    return out;
  }

  /// Reduces a value to a 1-bit truth value (x != 0).
  TypedOperand to_bool(TypedOperand v, SourceLoc loc) {
    if (v.width == 1) return v;
    if (v.op.is_imm()) {
      TypedOperand out;
      out.op = Operand::make_imm(BitVector::from_bool(v.op.imm.any()));
      out.width = 1;
      return out;
    }
    Op op;
    op.kind = OpKind::kBin;
    op.loc = loc;
    op.bin = BinKind::kCmpNe;
    op.args.push_back(v.op);
    op.args.push_back(Operand::make_imm(BitVector(v.width)));
    op.dest = new_temp(1, false);
    emit(op);
    return TypedOperand{Operand::make_reg(op.dest), 1, false};
  }

  // ------------------------------------------------------ expressions --

  TypedOperand lower_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return TypedOperand{Operand::make_imm(e.literal), e.literal.width(), e.literal_signed};
      case ExprKind::kVarRef: {
        auto it = scalars_.find(e.name);
        if (it == scalars_.end()) {
          error(e.loc, "internal: unknown scalar '" + e.name + "'");
          return TypedOperand{Operand::make_imm(BitVector(32)), 32, true};
        }
        const Register& r = proc_->reg(it->second);
        return TypedOperand{Operand::make_reg(it->second), r.width, r.is_signed};
      }
      case ExprKind::kArrayIndex: {
        auto it = arrays_.find(e.name);
        if (it == arrays_.end()) {
          error(e.loc, "internal: unknown array '" + e.name + "'");
          return TypedOperand{Operand::make_imm(BitVector(32)), 32, true};
        }
        TypedOperand idx = resize_to(lower_expr(*e.operands[0]), kAddrWidth, false, e.loc);
        const Memory& m = design_.memory(it->second);
        Op op;
        op.kind = OpKind::kLoad;
        op.loc = e.loc;
        op.mem = it->second;
        op.args.push_back(idx.op);
        op.dest = new_temp(m.width, m.is_signed);
        emit(op);
        return TypedOperand{Operand::make_reg(op.dest), m.width, m.is_signed};
      }
      case ExprKind::kUnary: {
        if (e.unary_op == UnaryOp::kLogicalNot) {
          TypedOperand v = lower_expr(*e.operands[0]);
          Op op;
          op.kind = OpKind::kBin;
          op.loc = e.loc;
          op.bin = BinKind::kCmpEq;
          op.args.push_back(v.op);
          op.args.push_back(Operand::make_imm(BitVector(v.width)));
          op.dest = new_temp(1, false);
          emit(op);
          return TypedOperand{Operand::make_reg(op.dest), 1, false};
        }
        TypedOperand v = lower_expr(*e.operands[0]);
        Op op;
        op.kind = OpKind::kUn;
        op.loc = e.loc;
        op.un = e.unary_op == UnaryOp::kNeg ? UnKind::kNeg : UnKind::kNot;
        op.args.push_back(v.op);
        op.dest = new_temp(v.width, v.is_signed);
        emit(op);
        return TypedOperand{Operand::make_reg(op.dest), v.width, v.is_signed};
      }
      case ExprKind::kBinary:
        return lower_binary(e);
      case ExprKind::kCall:
        return lower_call(e);
      case ExprKind::kStreamRead: {
        const StreamPort* port = proc_->find_port(e.name);
        if (port == nullptr) {
          error(e.loc, "internal: unknown stream port '" + e.name + "'");
          return TypedOperand{Operand::make_imm(BitVector(32)), 32, false};
        }
        Op op;
        op.kind = OpKind::kStreamRead;
        op.loc = e.loc;
        op.stream = port->stream;
        op.dest = new_temp(port->width, false);
        emit(op);
        return TypedOperand{Operand::make_reg(op.dest), port->width, false};
      }
    }
    HLSAV_UNREACHABLE("bad expr kind");
  }

  TypedOperand lower_binary(const Expr& e) {
    const Expr& le = *e.operands[0];
    const Expr& re = *e.operands[1];

    if (e.binary_op == BinaryOp::kLogicalAnd || e.binary_op == BinaryOp::kLogicalOr) {
      // Hardware evaluation is non-short-circuit: both sides are wired in.
      TypedOperand a = to_bool(lower_expr(le), e.loc);
      TypedOperand b = to_bool(lower_expr(re), e.loc);
      Op op;
      op.kind = OpKind::kBin;
      op.loc = e.loc;
      op.bin = e.binary_op == BinaryOp::kLogicalAnd ? BinKind::kAnd : BinKind::kOr;
      op.args.push_back(a.op);
      op.args.push_back(b.op);
      op.dest = new_temp(1, false);
      emit(op);
      return TypedOperand{Operand::make_reg(op.dest), 1, false};
    }

    TypedOperand a = lower_expr(le);
    TypedOperand b = lower_expr(re);

    if (e.binary_op == BinaryOp::kShl || e.binary_op == BinaryOp::kShr) {
      Op op;
      op.kind = OpKind::kBin;
      op.loc = e.loc;
      op.bin = e.binary_op == BinaryOp::kShl ? BinKind::kShl
               : a.is_signed                 ? BinKind::kShrA
                                             : BinKind::kShrL;
      op.args.push_back(a.op);
      op.args.push_back(b.op);
      op.dest = new_temp(a.width, a.is_signed);
      emit(op);
      return TypedOperand{Operand::make_reg(op.dest), a.width, a.is_signed};
    }

    unsigned w = std::max(a.width, b.width);
    bool s = a.is_signed && b.is_signed;
    a = resize_to(a, w, s, e.loc);
    b = resize_to(b, w, s, e.loc);

    // Strength reduction: multiplies by constants with few set bits
    // become shifts and adds, as any HLS tool does (DES's index
    // arithmetic must not instantiate DSP multipliers).
    if (e.binary_op == BinaryOp::kMul && (a.op.is_imm() || b.op.is_imm())) {
      TypedOperand var = a.op.is_imm() ? b : a;
      const BitVector& c = (a.op.is_imm() ? a : b).op.imm;
      unsigned ones = 0;
      for (unsigned i = 0; i < c.width(); ++i) ones += c.bit(i) ? 1 : 0;
      if (ones <= 3) {
        TypedOperand sum;
        bool have = false;
        for (unsigned i = 0; i < c.width(); ++i) {
          if (!c.bit(i)) continue;
          TypedOperand term = var;
          if (i > 0) {
            Op sh;
            sh.kind = OpKind::kBin;
            sh.loc = e.loc;
            sh.bin = BinKind::kShl;
            sh.args.push_back(var.op);
            sh.args.push_back(Operand::make_imm(BitVector::from_u64(8, i)));
            sh.dest = new_temp(w, s);
            emit(sh);
            term = TypedOperand{Operand::make_reg(sh.dest), w, s};
          }
          if (!have) {
            sum = term;
            have = true;
            continue;
          }
          Op add;
          add.kind = OpKind::kBin;
          add.loc = e.loc;
          add.bin = BinKind::kAdd;
          add.args.push_back(sum.op);
          add.args.push_back(term.op);
          add.dest = new_temp(w, s);
          emit(add);
          sum = TypedOperand{Operand::make_reg(add.dest), w, s};
        }
        if (!have) {
          return TypedOperand{Operand::make_imm(BitVector(w)), w, s};  // * 0
        }
        return sum;
      }
    }

    BinKind kind;
    bool is_cmp = true;
    switch (e.binary_op) {
      case BinaryOp::kLt: kind = s ? BinKind::kCmpLtS : BinKind::kCmpLtU; break;
      case BinaryOp::kLe: kind = s ? BinKind::kCmpLeS : BinKind::kCmpLeU; break;
      case BinaryOp::kGt: kind = s ? BinKind::kCmpLtS : BinKind::kCmpLtU; std::swap(a, b); break;
      case BinaryOp::kGe: kind = s ? BinKind::kCmpLeS : BinKind::kCmpLeU; std::swap(a, b); break;
      case BinaryOp::kEq: kind = BinKind::kCmpEq; break;
      case BinaryOp::kNe: kind = BinKind::kCmpNe; break;
      default:
        is_cmp = false;
        switch (e.binary_op) {
          case BinaryOp::kAdd: kind = BinKind::kAdd; break;
          case BinaryOp::kSub: kind = BinKind::kSub; break;
          case BinaryOp::kMul: kind = BinKind::kMul; break;
          case BinaryOp::kDiv: kind = s ? BinKind::kDivS : BinKind::kDivU; break;
          case BinaryOp::kRem: kind = s ? BinKind::kRemS : BinKind::kRemU; break;
          case BinaryOp::kAnd: kind = BinKind::kAnd; break;
          case BinaryOp::kOr: kind = BinKind::kOr; break;
          case BinaryOp::kXor: kind = BinKind::kXor; break;
          default: HLSAV_UNREACHABLE("bad binary op");
        }
    }

    Op op;
    op.kind = OpKind::kBin;
    op.loc = e.loc;
    op.bin = kind;
    op.args.push_back(a.op);
    op.args.push_back(b.op);
    unsigned rw = is_cmp ? 1 : w;
    op.dest = new_temp(rw, is_cmp ? false : s);
    emit(op);
    return TypedOperand{Operand::make_reg(op.dest), rw, is_cmp ? false : s};
  }

  TypedOperand lower_call(const Expr& e) {
    const lang::Function* callee = program_.find_function(e.name);
    HLSAV_CHECK(callee != nullptr && callee->is_extern_hdl, "sema guaranteed extern callee");
    if (design_.find_extern(e.name) == nullptr) {
      ExternFunc f;
      f.name = e.name;
      f.result_width = callee->return_type.width();
      f.result_signed = callee->return_type.is_signed();
      for (const lang::Param& p : callee->params) f.param_widths.push_back(p.type.width());
      design_.extern_funcs.push_back(std::move(f));
    }
    Op op;
    op.kind = OpKind::kCallExtern;
    op.loc = e.loc;
    op.callee = e.name;
    for (std::size_t i = 0; i < e.operands.size(); ++i) {
      const lang::Type& pt = callee->params[i].type;
      TypedOperand arg = resize_to(lower_expr(*e.operands[i]), pt.width(), pt.is_signed(), e.loc);
      op.args.push_back(arg.op);
    }
    op.dest = new_temp(callee->return_type.width(), callee->return_type.is_signed());
    emit(op);
    return TypedOperand{Operand::make_reg(op.dest), callee->return_type.width(),
                        callee->return_type.is_signed()};
  }

  // ------------------------------------------------------- statements --

  void lower_stmts(const std::vector<lang::StmtPtr>& stmts) {
    for (const lang::StmtPtr& s : stmts) lower_stmt(*s);
  }

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: lower_stmts(s.body); break;
      case StmtKind::kDecl: lower_decl(s); break;
      case StmtKind::kAssign: lower_assign(s); break;
      case StmtKind::kIf: lower_if(s); break;
      case StmtKind::kWhile: lower_while(s); break;
      case StmtKind::kFor: lower_for(s); break;
      case StmtKind::kAssert: lower_assert(s); break;
      case StmtKind::kAssertCycles: lower_assert_cycles(s); break;
      case StmtKind::kStreamWrite: lower_stream_write(s); break;
      case StmtKind::kReturn:
        block().term.kind = TermKind::kReturn;
        cur_ = proc_->add_block("dead" + std::to_string(proc_->blocks.size()));
        break;
      case StmtKind::kBreak: {
        HLSAV_CHECK(!loop_stack_.empty(), "sema guaranteed break inside loop");
        block().term = Terminator{TermKind::kJump, Operand::none(),
                                  loop_stack_.back().break_target, kNoBlock};
        cur_ = proc_->add_block("dead" + std::to_string(proc_->blocks.size()));
        break;
      }
      case StmtKind::kContinue: {
        HLSAV_CHECK(!loop_stack_.empty(), "sema guaranteed continue inside loop");
        block().term = Terminator{TermKind::kJump, Operand::none(),
                                  loop_stack_.back().continue_target, kNoBlock};
        cur_ = proc_->add_block("dead" + std::to_string(proc_->blocks.size()));
        break;
      }
    }
  }

  void lower_decl(const Stmt& s) {
    if (s.decl_type.is_array()) {
      MemId mid = design_.add_memory(fn_.name + "." + s.decl_name, fn_.name,
                                     s.decl_type.width(), s.decl_type.is_signed(),
                                     s.decl_type.array_size());
      Memory& m = design_.memory(mid);
      m.replicate_for_assertions = s.pragmas.replicate;
      arrays_[s.decl_name] = mid;
      if (!s.decl_init.empty()) {
        bool all_const = true;
        std::vector<BitVector> init;
        init.reserve(s.decl_init.size());
        for (const lang::ExprPtr& e : s.decl_init) {
          std::optional<BitVector> v = eval_const_expr(*e);
          if (!v) {
            all_const = false;
            break;
          }
          init.push_back(v->resize(m.width, e->type.is_signed()));
        }
        if (all_const) {
          m.init = std::move(init);
          if (s.decl_is_const) m.role = MemRole::kRom;
        } else if (s.decl_is_const) {
          error(s.loc, "const array '" + s.decl_name + "' requires constant initializers");
        } else {
          // Dynamic initializers: unrolled stores at the declaration point.
          for (std::size_t i = 0; i < s.decl_init.size(); ++i) {
            TypedOperand v = resize_to(lower_expr(*s.decl_init[i]), m.width, m.is_signed, s.loc);
            Op op;
            op.kind = OpKind::kStore;
            op.loc = s.loc;
            op.mem = mid;
            op.args.push_back(Operand::make_imm(BitVector::from_u64(kAddrWidth, i)));
            op.args.push_back(v.op);
            emit(op);
          }
        }
      } else if (s.decl_is_const) {
        error(s.loc, "const array '" + s.decl_name + "' requires an initializer");
      }
      return;
    }

    RegId r = proc_->add_reg(s.decl_name, s.decl_type.width(), s.decl_type.is_signed());
    scalars_[s.decl_name] = r;
    if (!s.decl_init.empty()) {
      TypedOperand v = resize_to(lower_expr(*s.decl_init[0]), s.decl_type.width(),
                                 s.decl_type.is_signed(), s.loc);
      Op op;
      op.kind = OpKind::kCopy;
      op.loc = s.loc;
      op.args.push_back(v.op);
      op.dest = r;
      emit(op);
    }
  }

  void lower_assign(const Stmt& s) {
    if (s.lhs.is_array_elem()) {
      auto it = arrays_.find(s.lhs.name);
      HLSAV_CHECK(it != arrays_.end(), "sema guaranteed array exists");
      const Memory& m = design_.memory(it->second);
      TypedOperand idx = resize_to(lower_expr(*s.lhs.index), kAddrWidth, false, s.loc);
      TypedOperand v = resize_to(lower_expr(*s.rhs), m.width, m.is_signed, s.loc);
      Op op;
      op.kind = OpKind::kStore;
      op.loc = s.loc;
      op.mem = it->second;
      op.args.push_back(idx.op);
      op.args.push_back(v.op);
      emit(op);
      return;
    }
    auto it = scalars_.find(s.lhs.name);
    HLSAV_CHECK(it != scalars_.end(), "sema guaranteed scalar exists");
    const Register& r = proc_->reg(it->second);
    TypedOperand v = resize_to(lower_expr(*s.rhs), r.width, r.is_signed, s.loc);
    Op op;
    op.kind = OpKind::kCopy;
    op.loc = s.loc;
    op.args.push_back(v.op);
    op.dest = it->second;
    emit(op);
  }

  void lower_if(const Stmt& s) {
    TypedOperand cond = to_bool(lower_expr(*s.cond), s.loc);
    BlockId then_b = proc_->add_block("then" + std::to_string(proc_->blocks.size()));
    BlockId merge_b = kNoBlock;
    BlockId else_b = kNoBlock;
    if (!s.else_body.empty()) {
      else_b = proc_->add_block("else" + std::to_string(proc_->blocks.size()));
    }
    merge_b = proc_->add_block("merge" + std::to_string(proc_->blocks.size()));

    block().term = Terminator{TermKind::kBranch, cond.op, then_b,
                              else_b != kNoBlock ? else_b : merge_b};
    cur_ = then_b;
    lower_stmts(s.body);
    block().term = Terminator{TermKind::kJump, Operand::none(), merge_b, kNoBlock};
    if (else_b != kNoBlock) {
      cur_ = else_b;
      lower_stmts(s.else_body);
      block().term = Terminator{TermKind::kJump, Operand::none(), merge_b, kNoBlock};
    }
    cur_ = merge_b;
  }

  void lower_while(const Stmt& s) {
    BlockId header = proc_->add_block("while_header" + std::to_string(proc_->blocks.size()));
    block().term = Terminator{TermKind::kJump, Operand::none(), header, kNoBlock};
    cur_ = header;
    TypedOperand cond = to_bool(lower_expr(*s.cond), s.loc);
    BlockId body = proc_->add_block("while_body" + std::to_string(proc_->blocks.size()));
    BlockId exit = proc_->add_block("while_exit" + std::to_string(proc_->blocks.size()));
    proc_->block(header).term = Terminator{TermKind::kBranch, cond.op, body, exit};

    loop_stack_.push_back(LoopCtx{header, exit});
    cur_ = body;
    lower_stmts(s.body);
    block().term = Terminator{TermKind::kJump, Operand::none(), header, kNoBlock};
    loop_stack_.pop_back();

    if (s.pragmas.pipeline) {
      maybe_record_pipeline(s, header, body, exit);
    }
    cur_ = exit;
  }

  void lower_for(const Stmt& s) {
    if (s.for_init) lower_stmt(*s.for_init);
    BlockId header = proc_->add_block("for_header" + std::to_string(proc_->blocks.size()));
    block().term = Terminator{TermKind::kJump, Operand::none(), header, kNoBlock};
    cur_ = header;
    Operand cond_op = Operand::make_imm(BitVector::from_bool(true));
    if (s.cond) cond_op = to_bool(lower_expr(*s.cond), s.loc).op;
    BlockId body = proc_->add_block("for_body" + std::to_string(proc_->blocks.size()));
    BlockId exit = proc_->add_block("for_exit" + std::to_string(proc_->blocks.size()));
    proc_->block(header).term = Terminator{TermKind::kBranch, cond_op, body, exit};

    // The step normally lives at the end of the body block so that simple
    // loops have a single straight-line body (pipelineable). break/continue
    // require a dedicated step block to target.
    bool needs_step_block = contains_break_or_continue(s.body);
    BlockId step_block = kNoBlock;
    if (needs_step_block) {
      step_block = proc_->add_block("for_step" + std::to_string(proc_->blocks.size()));
    }

    loop_stack_.push_back(LoopCtx{needs_step_block ? step_block : header, exit});
    cur_ = body;
    lower_stmts(s.body);
    loop_stack_.pop_back();

    if (needs_step_block) {
      block().term = Terminator{TermKind::kJump, Operand::none(), step_block, kNoBlock};
      cur_ = step_block;
    }
    if (s.for_step) lower_stmt(*s.for_step);
    block().term = Terminator{TermKind::kJump, Operand::none(), header, kNoBlock};

    if (s.pragmas.pipeline) {
      maybe_record_pipeline(s, header, body, exit);
    }
    cur_ = exit;
  }

  static bool contains_break_or_continue(const std::vector<lang::StmtPtr>& body) {
    bool found = false;
    for (const lang::StmtPtr& s : body) {
      if (found) break;
      if (s->kind == StmtKind::kBreak || s->kind == StmtKind::kContinue) {
        found = true;
        break;
      }
      // Nested loops own their break/continue; only look through non-loops.
      if (s->kind == StmtKind::kIf || s->kind == StmtKind::kBlock) {
        found = contains_break_or_continue(s->body) || contains_break_or_continue(s->else_body);
      }
    }
    return found;
  }

  void maybe_record_pipeline(const Stmt& s, BlockId header, BlockId body, BlockId exit) {
    // Pipelineable only if the body stayed a single straight-line block
    // that loops directly back to the header.
    const BasicBlock& b = proc_->block(body);
    bool simple = b.term.kind == TermKind::kJump && b.term.on_true == header;
    if (!simple) {
      diags_.warning(s.loc, "loop body is not straight-line; #pragma HLS pipeline ignored");
      return;
    }
    LoopInfo info;
    info.header = header;
    info.body = body;
    info.exit = exit;
    info.pipelined = true;
    info.loc = s.loc;
    proc_->loops.push_back(info);
  }

  void lower_assert(const Stmt& s) {
    HLSAV_CHECK(cur_tag_ == kNoAssertTag, "nested assert lowering");
    cur_tag_ = s.assert_id;
    TypedOperand cond = to_bool(lower_expr(*s.cond), s.loc);
    Op op;
    op.kind = OpKind::kAssert;
    op.loc = s.loc;
    op.assert_id = s.assert_id;
    op.args.push_back(cond.op);
    emit(op);
    cur_tag_ = kNoAssertTag;

    AssertionRecord rec;
    rec.id = s.assert_id;
    rec.process = fn_.name;
    rec.function = s.assert_function;
    rec.file = std::string(sm_.name(s.loc.file));
    rec.line = s.loc.line;
    rec.condition_text = s.assert_text;
    design_.assertions.push_back(std::move(rec));
  }

  void lower_assert_cycles(const Stmt& s) {
    std::optional<BitVector> bound = eval_const_expr(*s.cond);
    if (!bound) {
      error(s.loc, "assert_cycles bound must be a constant expression");
      return;
    }
    Op op;
    op.kind = OpKind::kAssertCycles;
    op.loc = s.loc;
    op.assert_id = s.assert_id;
    op.assert_tag = s.assert_id;
    op.is_extraction = true;  // the counter check never costs app states
    op.cycle_bound = bound->to_u64();
    emit(op);

    AssertionRecord rec;
    rec.id = s.assert_id;
    rec.process = fn_.name;
    rec.function = s.assert_function;
    rec.file = std::string(sm_.name(s.loc.file));
    rec.line = s.loc.line;
    rec.condition_text = "elapsed cycles <= " + s.assert_text;
    design_.assertions.push_back(std::move(rec));
  }

  void lower_stream_write(const Stmt& s) {
    const StreamPort* port = proc_->find_port(s.stream_name);
    HLSAV_CHECK(port != nullptr, "sema guaranteed stream port");
    TypedOperand v = resize_to(lower_expr(*s.rhs), port->width, false, s.loc);
    Op op;
    op.kind = OpKind::kStreamWrite;
    op.loc = s.loc;
    op.stream = port->stream;
    op.args.push_back(v.op);
    emit(op);
  }
};

}  // namespace

std::optional<BitVector> eval_const_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return e.literal;
    case ExprKind::kUnary: {
      std::optional<BitVector> v = eval_const_expr(*e.operands[0]);
      if (!v) return std::nullopt;
      switch (e.unary_op) {
        case UnaryOp::kNeg: return v->neg();
        case UnaryOp::kNot: return v->bnot();
        case UnaryOp::kLogicalNot: return BitVector::from_bool(v->is_zero());
      }
      return std::nullopt;
    }
    case ExprKind::kBinary: {
      std::optional<BitVector> a = eval_const_expr(*e.operands[0]);
      std::optional<BitVector> b = eval_const_expr(*e.operands[1]);
      if (!a || !b) return std::nullopt;
      bool as = e.operands[0]->type.is_signed();
      bool bs = e.operands[1]->type.is_signed();
      unsigned w = std::max(a->width(), b->width());
      bool s = as && bs;
      BitVector av = a->resize(w, as);
      BitVector bv = b->resize(w, bs);
      switch (e.binary_op) {
        case BinaryOp::kAdd: return av.add(bv);
        case BinaryOp::kSub: return av.sub(bv);
        case BinaryOp::kMul: return av.mul(bv);
        case BinaryOp::kDiv: return s ? av.sdiv(bv) : av.udiv(bv);
        case BinaryOp::kRem: return s ? av.srem(bv) : av.urem(bv);
        case BinaryOp::kAnd: return av.band(bv);
        case BinaryOp::kOr: return av.bor(bv);
        case BinaryOp::kXor: return av.bxor(bv);
        case BinaryOp::kShl:
          return a->shl(static_cast<unsigned>(std::min<std::uint64_t>(b->to_u64(), 256)));
        case BinaryOp::kShr: {
          unsigned amt = static_cast<unsigned>(std::min<std::uint64_t>(b->to_u64(), 256));
          return as ? a->ashr(amt) : a->lshr(amt);
        }
        case BinaryOp::kLt: return BitVector::from_bool(s ? av.slt(bv) : av.ult(bv));
        case BinaryOp::kLe: return BitVector::from_bool(s ? av.sle(bv) : av.ule(bv));
        case BinaryOp::kGt: return BitVector::from_bool(s ? bv.slt(av) : bv.ult(av));
        case BinaryOp::kGe: return BitVector::from_bool(s ? bv.sle(av) : bv.ule(av));
        case BinaryOp::kEq: return BitVector::from_bool(av.eq(bv));
        case BinaryOp::kNe: return BitVector::from_bool(!av.eq(bv));
        case BinaryOp::kLogicalAnd: return BitVector::from_bool(a->any() && b->any());
        case BinaryOp::kLogicalOr: return BitVector::from_bool(a->any() || b->any());
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

void register_externs(Design& design, const lang::Program& program) {
  for (const auto& fn : program.functions) {
    if (!fn->is_extern_hdl || design.find_extern(fn->name) != nullptr) continue;
    ExternFunc f;
    f.name = fn->name;
    f.result_width = fn->return_type.width();
    f.result_signed = fn->return_type.is_signed();
    for (const lang::Param& p : fn->params) f.param_widths.push_back(p.type.width());
    design.extern_funcs.push_back(std::move(f));
  }
}

Process* lower_process(Design& design, const lang::Program& program, const lang::Function& fn,
                       const SourceManager& sm, DiagnosticEngine& diags) {
  register_externs(design, program);
  Lowerer lowerer(design, program, fn, sm, diags);
  return lowerer.run();
}

Status lower_all_processes(Design& design, const lang::Program& program, const SourceManager& sm,
                           DiagnosticEngine& diags) {
  bool ok = true;
  for (const auto& fn : program.functions) {
    if (fn->is_extern_hdl || !fn->is_process()) continue;
    ok &= lower_process(design, program, *fn, sm, diags) != nullptr;
  }
  if (!ok) return Status::from_diagnostics(StatusCode::kLowerError, diags, "IR lowering");
  return Status::ok_status();
}

}  // namespace hlsav::ir
