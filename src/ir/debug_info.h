// Shared debug-info table: the one place that knows how scheduled ops
// map onto FSM states and back to source locations.
//
// Three consumers used to re-derive this mapping independently (the
// cycle-attribution profiler scanning op_state per state, the trace
// replay decoder formatting source positions, and the RTL printers);
// the compiled-simulation backend would have been a fourth. They now
// all read this table, so "which state does op i issue in" and "what
// source does state s show" have exactly one definition.
//
// The table lives in ir (not sched) because it is keyed by the IR's
// blocks and ops; the schedule only contributes issue states, passed in
// as borrowed views so ir does not depend on sched. Use
// sched::debug_info() to build one from a ProcessSchedule.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/source_manager.h"

namespace hlsav::ir {

/// Borrowed per-block view of a schedule's issue states. Lifetimes: the
/// vectors must outlive the ProcessDebugInfo (they normally point into
/// a sched::BlockSchedule owned by the caller).
struct BlockStateView {
  /// Issue state of each op (indexed like BasicBlock::ops; may be
  /// shorter -- missing entries issue in state 0).
  const std::vector<unsigned>* op_state = nullptr;
  /// Pipelined loops only: issue state of each merged header op.
  const std::vector<unsigned>* header_op_state = nullptr;
  unsigned num_states = 0;
  bool pipelined = false;
};

/// Op <-> state <-> source mapping for one scheduled process.
class ProcessDebugInfo {
 public:
  ProcessDebugInfo() = default;
  /// `views` is indexed by BlockId and must cover every block of `proc`.
  ProcessDebugInfo(const Process& proc, std::vector<BlockStateView> views);

  [[nodiscard]] const Process& process() const { return *proc_; }

  /// Issue state of op `op_idx` in block `b` (0 when the schedule has
  /// no entry for it -- the same fallback every consumer used).
  [[nodiscard]] unsigned state_of(BlockId b, std::size_t op_idx) const;
  /// Issue state of merged header op `op_idx` of a pipelined loop.
  [[nodiscard]] unsigned header_state_of(BlockId b, std::size_t op_idx) const;

  /// Ops issued in state `s` of block `b`, in program order.
  [[nodiscard]] const std::vector<std::size_t>& ops_in_state(BlockId b, unsigned s) const;

  /// Source position shown for state `s`: the first (program-order) op
  /// issued in `s` that carries a valid location.
  [[nodiscard]] SourceLoc source_of_state(BlockId b, unsigned s) const;
  /// First valid source location in the block, in program order.
  [[nodiscard]] SourceLoc first_source(BlockId b) const;

  [[nodiscard]] unsigned num_states(BlockId b) const { return views_.at(b).num_states; }
  [[nodiscard]] bool pipelined(BlockId b) const { return views_.at(b).pipelined; }

 private:
  const Process* proc_ = nullptr;
  std::vector<BlockStateView> views_;
  /// by_state_[block][state] -> op indices (program order).
  std::vector<std::vector<std::vector<std::size_t>>> by_state_;
};

/// Renders a source location the way every report does: "file:line"
/// when a SourceManager is available ("file" shortened to its basename
/// when `basename`), "line N" otherwise, "" for invalid locations.
[[nodiscard]] std::string format_loc(const SourceLoc& loc, const SourceManager* sm,
                                     bool basename = false);

}  // namespace hlsav::ir
