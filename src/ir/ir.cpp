#include "ir/ir.h"

#include <algorithm>
#include <array>

namespace hlsav::ir {

// ------------------------------------------------------------ Process --

RegId Process::add_reg(std::string reg_name, unsigned width, bool is_signed) {
  Register r;
  r.id = static_cast<RegId>(regs.size());
  r.name = std::move(reg_name);
  r.width = width;
  r.is_signed = is_signed;
  regs.push_back(std::move(r));
  return regs.back().id;
}

BlockId Process::add_block(std::string block_name) {
  BasicBlock b;
  b.id = static_cast<BlockId>(blocks.size());
  b.name = std::move(block_name);
  blocks.push_back(std::move(b));
  return blocks.back().id;
}

BasicBlock& Process::block(BlockId id) {
  HLSAV_CHECK(id < blocks.size(), "bad block id");
  return blocks[id];
}

const BasicBlock& Process::block(BlockId id) const {
  HLSAV_CHECK(id < blocks.size(), "bad block id");
  return blocks[id];
}

Register& Process::reg(RegId id) {
  HLSAV_CHECK(id < regs.size(), "bad register id");
  return regs[id];
}

const Register& Process::reg(RegId id) const {
  HLSAV_CHECK(id < regs.size(), "bad register id");
  return regs[id];
}

const StreamPort* Process::find_port(std::string_view port_name) const {
  for (const StreamPort& p : ports) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

StreamPort* Process::find_port(std::string_view port_name) {
  for (StreamPort& p : ports) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

unsigned Process::operand_width(const Operand& o) const {
  switch (o.kind) {
    case OperandKind::kReg: return reg(o.reg).width;
    case OperandKind::kImm: return o.imm.width();
    case OperandKind::kNone: return 0;
  }
  return 0;
}

const LoopInfo* Process::loop_with_body(BlockId b) const {
  for (const LoopInfo& l : loops) {
    if (l.body == b) return &l;
  }
  return nullptr;
}

// ------------------------------------------------------------- Design --

Process& Design::add_process(std::string proc_name) {
  auto p = std::make_unique<Process>();
  p->name = std::move(proc_name);
  processes.push_back(std::move(p));
  return *processes.back();
}

StreamId Design::add_stream(std::string stream_name, unsigned width, unsigned depth,
                            StreamRole role) {
  Stream s;
  s.id = static_cast<StreamId>(streams.size());
  s.name = std::move(stream_name);
  s.width = width;
  s.depth = depth;
  s.role = role;
  streams.push_back(std::move(s));
  return streams.back().id;
}

MemId Design::add_memory(std::string mem_name, std::string owner, unsigned width, bool is_signed,
                         std::uint64_t size) {
  Memory m;
  m.id = static_cast<MemId>(memories.size());
  m.name = std::move(mem_name);
  m.owner_process = std::move(owner);
  m.width = width;
  m.is_signed = is_signed;
  m.size = size;
  memories.push_back(std::move(m));
  return memories.back().id;
}

Process* Design::find_process(std::string_view proc_name) {
  for (auto& p : processes) {
    if (p->name == proc_name) return p.get();
  }
  return nullptr;
}

const Process* Design::find_process(std::string_view proc_name) const {
  for (const auto& p : processes) {
    if (p->name == proc_name) return p.get();
  }
  return nullptr;
}

Stream& Design::stream(StreamId id) {
  HLSAV_CHECK(id < streams.size(), "bad stream id");
  return streams[id];
}

const Stream& Design::stream(StreamId id) const {
  HLSAV_CHECK(id < streams.size(), "bad stream id");
  return streams[id];
}

Memory& Design::memory(MemId id) {
  HLSAV_CHECK(id < memories.size(), "bad memory id");
  return memories[id];
}

const Memory& Design::memory(MemId id) const {
  HLSAV_CHECK(id < memories.size(), "bad memory id");
  return memories[id];
}

const ExternFunc* Design::find_extern(std::string_view fn_name) const {
  for (const ExternFunc& f : extern_funcs) {
    if (f.name == fn_name) return &f;
  }
  return nullptr;
}

const AssertionRecord* Design::find_assertion(std::uint32_t id) const {
  for (const AssertionRecord& a : assertions) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

std::vector<StreamId> Design::live_stream_ids() const {
  std::vector<StreamId> ids;
  ids.reserve(streams.size());
  for (const Stream& s : streams) {
    if (!s.dead) ids.push_back(s.id);
  }
  return ids;
}

std::vector<const Process*> Design::application_processes() const {
  std::vector<const Process*> out;
  out.reserve(processes.size());
  for (const auto& p : processes) {
    if (p->role == ProcessRole::kApplication) out.push_back(p.get());
  }
  return out;
}

namespace {
// Detaches the stream previously bound to the port: the auto-created
// placeholder dies; ops referencing it are retargeted to the new stream.
void rebind_port(Design& d, Process& p, StreamPort& sp, StreamId s) {
  if (sp.stream != kNoStream && sp.stream != s) {
    Stream& old = d.stream(sp.stream);
    old.dead = true;
    old.producer = StreamEndpoint{};
    old.consumer = StreamEndpoint{};
    for (BasicBlock& b : p.blocks) {
      for (Op& op : b.ops) {
        if (op.is_stream_access() && op.stream == sp.stream) op.stream = s;
      }
    }
  }
  sp.stream = s;
}
}  // namespace

void Design::connect_producer(StreamId s, std::string_view proc_name, std::string_view port) {
  Process* p = find_process(proc_name);
  HLSAV_CHECK(p != nullptr, "connect_producer: unknown process");
  StreamPort* sp = p->find_port(port);
  HLSAV_CHECK(sp != nullptr, "connect_producer: unknown port");
  HLSAV_CHECK(!sp->is_input, "connect_producer: port is an input");
  rebind_port(*this, *p, *sp, s);
  stream(s).producer = StreamEndpoint{StreamEndpoint::Kind::kProcess, std::string(proc_name),
                                      std::string(port)};
}

void Design::connect_consumer(StreamId s, std::string_view proc_name, std::string_view port) {
  Process* p = find_process(proc_name);
  HLSAV_CHECK(p != nullptr, "connect_consumer: unknown process");
  StreamPort* sp = p->find_port(port);
  HLSAV_CHECK(sp != nullptr, "connect_consumer: unknown port");
  HLSAV_CHECK(sp->is_input, "connect_consumer: port is an output");
  rebind_port(*this, *p, *sp, s);
  stream(s).consumer = StreamEndpoint{StreamEndpoint::Kind::kProcess, std::string(proc_name),
                                      std::string(port)};
}

void Design::connect_cpu_producer(StreamId s) {
  stream(s).producer = StreamEndpoint{StreamEndpoint::Kind::kCpu, "", ""};
}

void Design::connect_cpu_consumer(StreamId s) {
  stream(s).consumer = StreamEndpoint{StreamEndpoint::Kind::kCpu, "", ""};
}

Design Design::clone() const {
  Design d;
  d.name = name;
  d.streams = streams;
  d.memories = memories;
  d.extern_funcs = extern_funcs;
  d.assertions = assertions;
  d.continue_on_failure = continue_on_failure;
  d.processes.reserve(processes.size());
  for (const auto& p : processes) {
    d.processes.push_back(std::make_unique<Process>(*p));
  }
  return d;
}

// ---------------------------------------------------------- Assertions --

std::string AssertionRecord::failure_message() const {
  return file + ":" + std::to_string(line) + ": " + function + ": Assertion `" +
         condition_text + "' failed.";
}

// ------------------------------------------------------------ Utilities --

const char* bin_kind_name(BinKind k) {
  switch (k) {
    case BinKind::kAdd: return "add";
    case BinKind::kSub: return "sub";
    case BinKind::kMul: return "mul";
    case BinKind::kDivU: return "divu";
    case BinKind::kDivS: return "divs";
    case BinKind::kRemU: return "remu";
    case BinKind::kRemS: return "rems";
    case BinKind::kAnd: return "and";
    case BinKind::kOr: return "or";
    case BinKind::kXor: return "xor";
    case BinKind::kShl: return "shl";
    case BinKind::kShrL: return "shrl";
    case BinKind::kShrA: return "shra";
    case BinKind::kCmpEq: return "cmpeq";
    case BinKind::kCmpNe: return "cmpne";
    case BinKind::kCmpLtU: return "cmpltu";
    case BinKind::kCmpLtS: return "cmplts";
    case BinKind::kCmpLeU: return "cmpleu";
    case BinKind::kCmpLeS: return "cmples";
  }
  return "?";
}

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kBin: return "bin";
    case OpKind::kUn: return "un";
    case OpKind::kResize: return "resize";
    case OpKind::kCopy: return "copy";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kStreamRead: return "stream_read";
    case OpKind::kStreamWrite: return "stream_write";
    case OpKind::kCallExtern: return "call";
    case OpKind::kAssert: return "assert";
    case OpKind::kAssertTap: return "assert_tap";
    case OpKind::kAssertFailWire: return "assert_fail_wire";
    case OpKind::kAssertCycles: return "assert_cycles";
  }
  return "?";
}

bool bin_is_comparison(BinKind k) {
  switch (k) {
    case BinKind::kCmpEq:
    case BinKind::kCmpNe:
    case BinKind::kCmpLtU:
    case BinKind::kCmpLtS:
    case BinKind::kCmpLeU:
    case BinKind::kCmpLeS:
      return true;
    default:
      return false;
  }
}

unsigned bin_result_width(BinKind k, unsigned w) { return bin_is_comparison(k) ? 1 : w; }

namespace {
// Flat evaluator table indexed by BinKind: a stable function pointer
// hot loops can cache per op (inline eval_bin covers the common path).
constexpr std::size_t kNumBinKinds = static_cast<std::size_t>(BinKind::kCmpLeS) + 1;

template <BinKind K>
BitVector eval_one(const BitVector& a, const BitVector& b) {
  return eval_bin(K, a, b);
}

const std::array<BinEvalFn, kNumBinKinds> kBinEvalTable = {
    eval_one<BinKind::kAdd>,    eval_one<BinKind::kSub>,    eval_one<BinKind::kMul>,
    eval_one<BinKind::kDivU>,   eval_one<BinKind::kDivS>,   eval_one<BinKind::kRemU>,
    eval_one<BinKind::kRemS>,   eval_one<BinKind::kAnd>,    eval_one<BinKind::kOr>,
    eval_one<BinKind::kXor>,    eval_one<BinKind::kShl>,    eval_one<BinKind::kShrL>,
    eval_one<BinKind::kShrA>,   eval_one<BinKind::kCmpEq>,  eval_one<BinKind::kCmpNe>,
    eval_one<BinKind::kCmpLtU>, eval_one<BinKind::kCmpLtS>, eval_one<BinKind::kCmpLeU>,
    eval_one<BinKind::kCmpLeS>,
};
}  // namespace

BinEvalFn bin_eval_fn(BinKind k) {
  std::size_t i = static_cast<std::size_t>(k);
  HLSAV_CHECK(i < kNumBinKinds, "bad BinKind");
  return kBinEvalTable[i];
}

}  // namespace hlsav::ir
