// AST -> IR lowering.
//
// Each HLS-C process function lowers to an ir::Process: scalars become
// registers, arrays become design Memories (const-initialized arrays
// become ROMs), control flow becomes a CFG, and `assert` statements
// lower to a kAssert op whose condition slice is tagged with the
// assertion id (assert_tag) so synthesis strategies can relocate it.
//
// `for` loops with straight-line bodies lower to the canonical
// header/body/exit shape and, when marked `#pragma HLS pipeline`, are
// recorded as pipelineable in Process::loops.
#pragma once

#include "ir/ir.h"
#include "lang/ast.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"
#include "support/status.h"

namespace hlsav::ir {

/// Registers all `extern` HDL function declarations from the program.
void register_externs(Design& design, const lang::Program& program);

/// Lowers one process function into the design. Returns nullptr and
/// reports diagnostics on failure. The process takes the function's name.
Process* lower_process(Design& design, const lang::Program& program, const lang::Function& fn,
                       const SourceManager& sm, DiagnosticEngine& diags);

/// Lowers every process function in the program. On failure returns a
/// kLowerError Status summarizing the diagnostics reported into `diags`.
[[nodiscard]] Status lower_all_processes(Design& design, const lang::Program& program,
                                         const SourceManager& sm, DiagnosticEngine& diags);

/// Evaluates a constant expression (literals, unary/binary ops); returns
/// std::nullopt if the expression references variables, streams or calls.
[[nodiscard]] std::optional<BitVector> eval_const_expr(const lang::Expr& e);

}  // namespace hlsav::ir
