#include <sstream>

#include "ir/ir.h"

namespace hlsav::ir {

namespace {

std::string operand_str(const Process& p, const Operand& o) {
  switch (o.kind) {
    case OperandKind::kReg: {
      const Register& r = p.reg(o.reg);
      return "%" + r.name + ":" + std::to_string(r.width);
    }
    case OperandKind::kImm:
      return o.imm.to_string_dec(false) + ":" + std::to_string(o.imm.width());
    case OperandKind::kNone:
      return "<none>";
  }
  return "?";
}

void print_op(std::ostringstream& os, const Design& d, const Process& p, const Op& op) {
  os << "    ";
  if (!op.pred.is_none()) {
    os << "if " << (op.pred_negated ? "!" : "") << operand_str(p, op.pred) << ": ";
  }
  if (op.dest != kNoReg) os << "%" << p.reg(op.dest).name << " = ";
  switch (op.kind) {
    case OpKind::kBin:
      os << bin_kind_name(op.bin) << ' ' << operand_str(p, op.args[0]) << ", "
         << operand_str(p, op.args[1]);
      break;
    case OpKind::kUn:
      os << (op.un == UnKind::kNeg ? "neg " : "not ") << operand_str(p, op.args[0]);
      break;
    case OpKind::kResize: {
      const char* k = op.resize == ResizeKind::kZext   ? "zext"
                      : op.resize == ResizeKind::kSext ? "sext"
                                                       : "trunc";
      os << k << ' ' << operand_str(p, op.args[0]);
      break;
    }
    case OpKind::kCopy:
      os << "copy " << operand_str(p, op.args[0]);
      break;
    case OpKind::kLoad:
      os << "load " << d.memory(op.mem).name << "[" << operand_str(p, op.args[0]) << "]";
      break;
    case OpKind::kStore:
      os << "store " << d.memory(op.mem).name << "[" << operand_str(p, op.args[0])
         << "] = " << operand_str(p, op.args[1]);
      break;
    case OpKind::kStreamRead:
      os << "stream_read " << d.stream(op.stream).name;
      break;
    case OpKind::kStreamWrite:
      os << "stream_write " << d.stream(op.stream).name << ", " << operand_str(p, op.args[0]);
      break;
    case OpKind::kCallExtern: {
      os << "call " << op.callee << "(";
      for (std::size_t i = 0; i < op.args.size(); ++i) {
        if (i != 0) os << ", ";
        os << operand_str(p, op.args[i]);
      }
      os << ")";
      break;
    }
    case OpKind::kAssert:
      os << "assert #" << op.assert_id << ' ' << operand_str(p, op.args[0]);
      break;
    case OpKind::kAssertTap: {
      os << "assert_tap #" << op.assert_id;
      for (const Operand& a : op.args) os << ' ' << operand_str(p, a);
      break;
    }
    case OpKind::kAssertFailWire:
      os << "assert_fail_wire #" << op.assert_id << ' ' << operand_str(p, op.args[0]);
      break;
    case OpKind::kAssertCycles:
      os << "assert_cycles #" << op.assert_id << " bound=" << op.cycle_bound;
      break;
  }
  os << '\n';
}

}  // namespace

std::string print_process(const Design& d, const Process& proc) {
  std::ostringstream os;
  const char* role = proc.role == ProcessRole::kApplication      ? "process"
                     : proc.role == ProcessRole::kAssertChecker  ? "assert_checker"
                                                                 : "assert_collector";
  os << role << ' ' << proc.name << '(';
  for (std::size_t i = 0; i < proc.ports.size(); ++i) {
    const StreamPort& sp = proc.ports[i];
    if (i != 0) os << ", ";
    os << (sp.is_input ? "in" : "out") << '<' << sp.width << "> " << sp.name;
    if (sp.stream != kNoStream) os << " -> " << d.stream(sp.stream).name;
  }
  os << ") {\n";
  for (const BasicBlock& b : proc.blocks) {
    os << "  " << b.name << ":";
    if (const LoopInfo* loop = proc.loop_with_body(b.id); loop != nullptr && loop->pipelined) {
      os << "  ; pipelined loop body";
    }
    os << '\n';
    for (const Op& op : b.ops) print_op(os, d, proc, op);
    os << "    ";
    switch (b.term.kind) {
      case TermKind::kJump:
        os << "jump " << proc.block(b.term.on_true).name;
        break;
      case TermKind::kBranch:
        os << "branch " << operand_str(proc, b.term.cond) << ", "
           << proc.block(b.term.on_true).name << ", " << proc.block(b.term.on_false).name;
        break;
      case TermKind::kReturn:
        os << "return";
        break;
    }
    os << '\n';
  }
  os << "}\n";
  return os.str();
}

std::string print_design(const Design& d) {
  std::ostringstream os;
  os << "design " << d.name << '\n';
  for (const Stream& s : d.streams) {
    const char* role = s.role == StreamRole::kData          ? "data"
                       : s.role == StreamRole::kAssertFail  ? "assert_fail"
                       : s.role == StreamRole::kAssertPacked ? "assert_packed"
                                                             : "assert_data";
    auto ep = [](const StreamEndpoint& e) -> std::string {
      switch (e.kind) {
        case StreamEndpoint::Kind::kUnbound: return "<unbound>";
        case StreamEndpoint::Kind::kProcess: return e.process + "." + e.port;
        case StreamEndpoint::Kind::kCpu: return "cpu";
      }
      return "?";
    };
    os << "stream " << s.name << " <" << s.width << "> depth=" << s.depth << " role=" << role
       << "  " << ep(s.producer) << " -> " << ep(s.consumer) << '\n';
  }
  for (const Memory& m : d.memories) {
    const char* role = m.role == MemRole::kData ? "data" : m.role == MemRole::kRom ? "rom" : "replica";
    os << "memory " << m.name << " " << (m.is_signed ? "int" : "uint") << m.width << "["
       << m.size << "] owner=" << m.owner_process << " role=" << role;
    if (m.replicate_for_assertions) os << " replicate";
    os << '\n';
  }
  for (const auto& p : d.processes) os << print_process(d, *p);
  for (const AssertionRecord& a : d.assertions) {
    os << "assertion #" << a.id << " in " << a.process << ": " << a.failure_message() << '\n';
  }
  return os.str();
}

}  // namespace hlsav::ir
