#include "ir/debug_info.h"

namespace hlsav::ir {

namespace {
const std::vector<std::size_t> kNoOps;
}  // namespace

ProcessDebugInfo::ProcessDebugInfo(const Process& proc, std::vector<BlockStateView> views)
    : proc_(&proc), views_(std::move(views)) {
  HLSAV_CHECK(views_.size() >= proc.blocks.size(), "debug info: view per block required");
  by_state_.resize(proc.blocks.size());
  for (const BasicBlock& b : proc.blocks) {
    const BlockStateView& v = views_[b.id];
    auto& states = by_state_[b.id];
    states.resize(v.num_states);
    if (v.pipelined) continue;  // pipelined bodies have no per-state FSM walk
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      unsigned s = state_of(b.id, i);
      if (s < states.size()) states[s].push_back(i);
    }
  }
}

unsigned ProcessDebugInfo::state_of(BlockId b, std::size_t op_idx) const {
  const BlockStateView& v = views_.at(b);
  if (v.op_state == nullptr || op_idx >= v.op_state->size()) return 0;
  return (*v.op_state)[op_idx];
}

unsigned ProcessDebugInfo::header_state_of(BlockId b, std::size_t op_idx) const {
  const BlockStateView& v = views_.at(b);
  if (v.header_op_state == nullptr || op_idx >= v.header_op_state->size()) return 0;
  return (*v.header_op_state)[op_idx];
}

const std::vector<std::size_t>& ProcessDebugInfo::ops_in_state(BlockId b, unsigned s) const {
  const auto& states = by_state_.at(b);
  if (s >= states.size()) return kNoOps;
  return states[s];
}

SourceLoc ProcessDebugInfo::source_of_state(BlockId b, unsigned s) const {
  const BasicBlock& blk = proc_->blocks.at(b);
  for (std::size_t i : ops_in_state(b, s)) {
    if (blk.ops[i].loc.valid()) return blk.ops[i].loc;
  }
  return {};
}

SourceLoc ProcessDebugInfo::first_source(BlockId b) const {
  for (const Op& op : proc_->blocks.at(b).ops) {
    if (op.loc.valid()) return op.loc;
  }
  return {};
}

std::string format_loc(const SourceLoc& loc, const SourceManager* sm, bool basename) {
  if (!loc.valid()) return {};
  if (sm == nullptr) return "line " + std::to_string(loc.line);
  std::string_view name = sm->name(loc.file);
  if (basename) {
    std::size_t slash = name.rfind('/');
    if (slash != std::string_view::npos) name = name.substr(slash + 1);
  }
  return std::string(name) + ":" + std::to_string(loc.line);
}

}  // namespace hlsav::ir
