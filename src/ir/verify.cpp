// Structural verifier for the IR. Run after lowering and after every
// transformation pass; catches malformed designs early with a precise
// description instead of letting the scheduler or simulator misbehave.
#include "ir/ir.h"

namespace hlsav::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const Design& d) : d_(d) {}

  void run() {
    for (const Stream& s : d_.streams) check_stream(s);
    for (const Memory& m : d_.memories) check_memory(m);
    for (const auto& p : d_.processes) check_process(*p);
  }

 private:
  const Design& d_;
  const Process* proc_ = nullptr;

  [[noreturn]] void fail(const std::string& what) const {
    std::string ctx = proc_ != nullptr ? " (in process '" + proc_->name + "')" : "";
    internal_error("ir/verify", 0, "IR verification failed: " + what + ctx);
  }

  void check_stream(const Stream& s) const {
    if (s.dead) return;
    if (s.width < 1 || s.width > 64) fail("stream '" + s.name + "' has bad width");
    if (s.depth == 0) fail("stream '" + s.name + "' has zero depth");
    auto check_ep = [&](const StreamEndpoint& e, bool want_input) {
      if (e.kind != StreamEndpoint::Kind::kProcess) return;
      const Process* p = d_.find_process(e.process);
      if (p == nullptr) fail("stream '" + s.name + "' references unknown process " + e.process);
      const StreamPort* port = p->find_port(e.port);
      if (port == nullptr) fail("stream '" + s.name + "' references unknown port " + e.port);
      if (port->is_input != want_input) fail("stream '" + s.name + "' endpoint direction mismatch");
      if (port->stream != s.id) fail("stream '" + s.name + "' port binding mismatch");
      if (port->width != s.width) fail("stream '" + s.name + "' width mismatch at " + e.port);
    };
    check_ep(s.producer, /*want_input=*/false);
    check_ep(s.consumer, /*want_input=*/true);
  }

  void check_memory(const Memory& m) const {
    if (m.size == 0) fail("memory '" + m.name + "' has zero size");
    if (m.width < 1 || m.width > 64) fail("memory '" + m.name + "' has bad width");
    if (!m.init.empty() && m.init.size() != m.size) {
      fail("memory '" + m.name + "' init size mismatch");
    }
    if (m.role == MemRole::kReplica) {
      if (m.replica_of == kNoMem || m.replica_of >= d_.memories.size()) {
        fail("replica '" + m.name + "' has no original");
      }
      const Memory& orig = d_.memory(m.replica_of);
      if (orig.size != m.size || orig.width != m.width) {
        fail("replica '" + m.name + "' shape mismatch with original");
      }
    }
    if (m.role == MemRole::kRom && m.init.empty()) fail("ROM '" + m.name + "' has no contents");
  }

  void check_operand(const Operand& o) const {
    if (o.is_reg() && o.reg >= proc_->regs.size()) fail("operand references bad register");
  }

  void check_width_eq(const Operand& a, const Operand& b, const char* what) const {
    if (proc_->operand_width(a) != proc_->operand_width(b)) {
      fail(std::string("width mismatch in ") + what);
    }
  }

  void check_dest_width(const Op& op, unsigned expect) const {
    if (op.dest == kNoReg) fail(std::string(op_kind_name(op.kind)) + " without destination");
    if (proc_->reg(op.dest).width != expect) {
      fail(std::string(op_kind_name(op.kind)) + " destination width mismatch: reg '" +
           proc_->reg(op.dest).name + "' is " + std::to_string(proc_->reg(op.dest).width) +
           " bits, expected " + std::to_string(expect));
    }
  }

  void check_op(const Op& op) const {
    for (const Operand& a : op.args) check_operand(a);
    if (!op.pred.is_none()) check_operand(op.pred);
    switch (op.kind) {
      case OpKind::kBin: {
        if (op.args.size() != 2) fail("bin op needs 2 args");
        // Shift amounts may be narrower than the shifted value.
        bool is_shift = op.bin == BinKind::kShl || op.bin == BinKind::kShrL ||
                        op.bin == BinKind::kShrA;
        if (!is_shift) check_width_eq(op.args[0], op.args[1], bin_kind_name(op.bin));
        check_dest_width(op, bin_result_width(op.bin, proc_->operand_width(op.args[0])));
        break;
      }
      case OpKind::kUn:
        if (op.args.size() != 1) fail("un op needs 1 arg");
        check_dest_width(op, proc_->operand_width(op.args[0]));
        break;
      case OpKind::kResize: {
        if (op.args.size() != 1) fail("resize needs 1 arg");
        unsigned src = proc_->operand_width(op.args[0]);
        unsigned dst = proc_->reg(op.dest).width;
        if (op.resize == ResizeKind::kTrunc && dst > src) fail("trunc grows width");
        if (op.resize != ResizeKind::kTrunc && dst < src) fail("ext shrinks width");
        break;
      }
      case OpKind::kCopy:
        if (op.args.size() != 1) fail("copy needs 1 arg");
        check_dest_width(op, proc_->operand_width(op.args[0]));
        break;
      case OpKind::kLoad: {
        if (op.args.size() != 1) fail("load needs 1 arg (index)");
        if (op.mem >= d_.memories.size()) fail("load from bad memory");
        check_dest_width(op, d_.memory(op.mem).width);
        break;
      }
      case OpKind::kStore: {
        if (op.args.size() != 2) fail("store needs 2 args (index, value)");
        if (op.mem >= d_.memories.size()) fail("store to bad memory");
        if (proc_->operand_width(op.args[1]) != d_.memory(op.mem).width) {
          fail("store width mismatch into '" + d_.memory(op.mem).name + "'");
        }
        if (d_.memory(op.mem).role == MemRole::kRom) fail("store into ROM");
        break;
      }
      case OpKind::kStreamRead: {
        if (op.stream >= d_.streams.size()) fail("stream_read from bad stream");
        check_dest_width(op, d_.stream(op.stream).width);
        break;
      }
      case OpKind::kStreamWrite: {
        if (op.args.size() != 1) fail("stream_write needs 1 arg");
        if (op.stream >= d_.streams.size()) fail("stream_write to bad stream");
        if (proc_->operand_width(op.args[0]) != d_.stream(op.stream).width) {
          fail("stream_write width mismatch into '" + d_.stream(op.stream).name + "'");
        }
        break;
      }
      case OpKind::kCallExtern: {
        const ExternFunc* f = d_.find_extern(op.callee);
        if (f == nullptr) fail("call to unknown extern '" + op.callee + "'");
        if (op.args.size() != f->param_widths.size()) fail("extern call arity mismatch");
        for (std::size_t i = 0; i < op.args.size(); ++i) {
          if (proc_->operand_width(op.args[i]) != f->param_widths[i]) {
            fail("extern call argument width mismatch");
          }
        }
        check_dest_width(op, f->result_width);
        break;
      }
      case OpKind::kAssert: {
        if (op.args.size() != 1) fail("assert needs 1 arg");
        if (d_.find_assertion(op.assert_id) == nullptr) {
          fail("assert references unknown assertion id " + std::to_string(op.assert_id));
        }
        break;
      }
      case OpKind::kAssertTap: {
        if (d_.find_assertion(op.assert_id) == nullptr) {
          fail("assert_tap references unknown assertion id " + std::to_string(op.assert_id));
        }
        break;
      }
      case OpKind::kAssertFailWire: {
        if (op.args.size() != 1) fail("assert_fail_wire needs 1 arg");
        if (d_.find_assertion(op.assert_id) == nullptr) {
          fail("assert_fail_wire references unknown assertion id " +
               std::to_string(op.assert_id));
        }
        break;
      }
      case OpKind::kAssertCycles: {
        if (d_.find_assertion(op.assert_id) == nullptr) {
          fail("assert_cycles references unknown assertion id " +
               std::to_string(op.assert_id));
        }
        break;
      }
    }
  }

  void check_process(const Process& p) {
    proc_ = &p;
    if (p.blocks.empty()) fail("process has no blocks");
    if (p.entry >= p.blocks.size()) fail("bad entry block");
    for (const StreamPort& sp : p.ports) {
      if (sp.stream == kNoStream) fail("port '" + sp.name + "' is unbound");
      if (sp.stream >= d_.streams.size()) fail("port '" + sp.name + "' bound to bad stream");
    }
    for (const BasicBlock& b : p.blocks) {
      for (const Op& op : b.ops) check_op(op);
      switch (b.term.kind) {
        case TermKind::kJump:
          if (b.term.on_true >= p.blocks.size()) fail("jump to bad block");
          break;
        case TermKind::kBranch:
          if (b.term.on_true >= p.blocks.size() || b.term.on_false >= p.blocks.size()) {
            fail("branch to bad block");
          }
          if (b.term.cond.is_none()) fail("branch without condition");
          check_operand(b.term.cond);
          break;
        case TermKind::kReturn:
          break;
      }
    }
    for (const LoopInfo& l : p.loops) {
      if (l.header >= p.blocks.size() || l.body >= p.blocks.size() || l.exit >= p.blocks.size()) {
        fail("loop references bad block");
      }
    }
    proc_ = nullptr;
  }
};

}  // namespace

void verify(const Design& design) {
  Verifier v(design);
  v.run();
}

}  // namespace hlsav::ir
