// VCD (Value Change Dump) export of a captured trace window.
//
// Emits IEEE 1364-2005 §18 four-state VCD so any off-the-shelf waveform
// viewer (GTKWave, Surfer) can open an in-circuit capture. The signal
// map mirrors the generated RTL hierarchy:
//
//   $scope module <design>
//     $scope module <process>          one per traced process
//       fsm_state                      FSM state register
//       <reg>...                       traced datapath registers
//       <mem>_addr/_wdata/_rdata/_we/_re   BRAM port (owner process)
//     $upscope
//     $scope module streams            stream handshakes
//       <stream>_data/_push/_pop
//     $upscope
//     $scope module assertions         checker verdicts
//       assert_<id>_fail
//     $upscope
//   $upscope
//
// Net names and identifier codes come from rtl/names.h, so the waveform
// names match the emitted Verilog. Signals with no captured event hold
// 'x' for the whole dump (exactly what a real ELA that never latched
// the net would show). Handshake/verdict strobes pulse for one cycle.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "trace/trace.h"

namespace hlsav::trace {

struct VcdOptions {
  std::string timescale = "1 ns";
  /// Comment recorded in the $version section.
  std::string version = "hlsav in-circuit trace";
};

class VcdWriter {
 public:
  /// Builds the signal map for every net the filter admits.
  VcdWriter(const ir::Design& design, const TraceFilter& filter);

  /// Writes one complete VCD document for a captured window.
  void write(std::ostream& os, const std::vector<TraceRecord>& window,
             const VcdOptions& opt = {}) const;

  /// Convenience: write() to a file. Throws InternalError on I/O failure.
  void write_file(const std::string& path, const std::vector<TraceRecord>& window,
                  const VcdOptions& opt = {}) const;

  /// Number of nets in the signal map (tests, ELA reporting).
  [[nodiscard]] std::size_t signal_count() const { return signals_.size(); }

 private:
  struct Signal {
    std::string scope;  // process name, "streams", or "assertions"
    std::string name;   // sanitized net name
    std::string id;     // VCD identifier code
    unsigned width = 1;
  };

  /// Key for event -> signal lookup: (kind-class, proc, subject, port).
  struct SignalRef {
    int data = -1;    // value-carrying net
    int strobe = -1;  // 1-bit pulse net (push/pop/we/re/fail)
    int addr = -1;    // BRAM address net
  };

  const ir::Design* design_;
  TraceFilter filter_;
  std::vector<Signal> signals_;
  // Lookup tables, indexed the same way the trace records refer to
  // subjects. Missing entries stay {-1,-1,-1} (filtered out).
  std::vector<int> fsm_of_proc_;                 // proc index -> signal
  std::vector<std::vector<int>> reg_of_proc_;    // proc index -> reg id -> signal
  std::vector<SignalRef> stream_sig_;            // stream id -> data/push/pop
  std::vector<SignalRef> mem_read_sig_;          // mem id -> rdata/re/addr
  std::vector<SignalRef> mem_write_sig_;         // mem id -> wdata/we/addr
  std::vector<int> assert_sig_;                  // dense index -> signal
  std::vector<std::uint32_t> assert_ids_;        // dense index -> assertion id

  int add_signal(std::string scope, std::string name, unsigned width);
  [[nodiscard]] int find_assert_signal(std::uint32_t assertion_id) const;
};

}  // namespace hlsav::trace
