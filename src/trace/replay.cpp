#include "trace/replay.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "ir/debug_info.h"
#include "trace/signals.h"

namespace hlsav::trace {

namespace {

std::string loc_text(const SourceLoc& loc, const SourceManager* sm) {
  std::string inner = ir::format_loc(loc, sm, /*basename=*/true);
  if (inner.empty()) return {};
  return "[" + inner + "]";
}

std::string value_text(const BitVector& v) {
  // Small values read best in decimal; wide ones in hex.
  if (v.width() <= 64) return v.to_string_dec(false);
  return v.to_string_hex();
}

}  // namespace

std::uint32_t implicated_assertion(const std::vector<TraceRecord>& window) {
  for (auto it = window.rbegin(); it != window.rend(); ++it) {
    if (it->kind == TraceEventKind::kAssertVerdict && it->aux != 0) return it->subject;
  }
  return std::numeric_limits<std::uint32_t>::max();
}

ir::StreamId implicated_stream(const std::vector<TraceRecord>& window) {
  for (auto it = window.rbegin(); it != window.rend(); ++it) {
    if (it->kind == TraceEventKind::kStreamPush || it->kind == TraceEventKind::kStreamPop) {
      return it->subject;
    }
  }
  return ir::kNoStream;
}

std::string render_replay(const ir::Design& design, const std::vector<TraceRecord>& window,
                          const ReplayOptions& opt) {
  std::ostringstream os;
  if (window.empty()) {
    os << "trace replay: no events captured\n";
    return os.str();
  }

  const std::uint64_t last_cycle = window.back().cycle;
  const std::uint64_t lo =
      opt.last_cycles != 0 && last_cycle >= opt.last_cycles ? last_cycle - opt.last_cycles + 1 : 0;
  auto first =
      std::find_if(window.begin(), window.end(),
                   [lo](const TraceRecord& r) { return r.cycle >= lo; });
  const std::size_t shown = static_cast<std::size_t>(window.end() - first);

  os << "source-level replay: cycles " << lo << ".." << last_cycle << " (" << shown << " of "
     << window.size() << " captured events)\n";

  SignalCatalog names(design);

  std::uint64_t current = std::numeric_limits<std::uint64_t>::max();
  for (auto it = first; it != window.end(); ++it) {
    const TraceRecord& r = *it;
    if (r.cycle != current) {
      current = r.cycle;
      os << "cycle " << current << ":\n";
    }
    os << "  " << names.process_name(r.proc) << ": ";
    switch (r.kind) {
      case TraceEventKind::kFsmState:
        os << "enter state '" << names.block_name(r.proc, r.subject) << "'";
        break;
      case TraceEventKind::kRegWrite:
        os << names.reg_name(r.proc, r.subject) << " <= " << value_text(r.value);
        break;
      case TraceEventKind::kStreamPush:
        os << "write '" << names.stream_name(r.subject) << "' <- " << value_text(r.value);
        break;
      case TraceEventKind::kStreamPop:
        os << "read '" << names.stream_name(r.subject) << "' -> " << value_text(r.value);
        break;
      case TraceEventKind::kBramRead:
        os << names.memory_name(r.subject) << "[" << r.aux << "] -> " << value_text(r.value);
        break;
      case TraceEventKind::kBramWrite:
        os << names.memory_name(r.subject) << "[" << r.aux << "] <= " << value_text(r.value);
        break;
      case TraceEventKind::kAssertVerdict: {
        const ir::AssertionRecord* rec = design.find_assertion(r.subject);
        os << "assertion #" << r.subject;
        if (rec != nullptr && !rec->condition_text.empty()) {
          os << " `" << rec->condition_text << "'";
        }
        os << (r.aux != 0 ? " FAILED" : " passed");
        break;
      }
    }
    std::string lt = loc_text(r.loc, opt.sm);
    if (!lt.empty()) os << "  " << lt;
    os << "\n";
  }

  // ---- implication summary ----
  std::uint32_t aid = implicated_assertion(window);
  if (aid != std::numeric_limits<std::uint32_t>::max()) {
    const ir::AssertionRecord* rec = design.find_assertion(aid);
    os << "implicated assertion: #" << aid;
    if (rec != nullptr) {
      if (!rec->condition_text.empty()) os << " `" << rec->condition_text << "'";
      os << " (process " << rec->process;
      if (rec->line != 0) os << ", " << rec->file << ":" << rec->line;
      os << ")";
    }
    os << "\n";
  }
  ir::StreamId sid = implicated_stream(window);
  if (sid != ir::kNoStream) {
    os << "implicated stream: '" << design.stream(sid).name << "' (last handshake in window)\n";
  }
  return os.str();
}

}  // namespace hlsav::trace
