// Source-level decode of a captured trace window.
//
// A VCD shows nets; the developer wrote C. This decoder replays the
// last N cycles of a capture back into HLS-C terms: variable names from
// the register file, `file:line` positions from the ops' source
// locations, assertion conditions from the design's assertion catalogue
// (the text assertions/synthesize preserved through synthesis), and
// stream names for every handshake. The rendered story ends with the
// implicated assertion -- the last failing verdict in the window --
// and the last stream the failing neighborhood touched, which is the
// information the paper's §5.1 debugging sessions had to reconstruct
// from assert(0)/NABORT markers by hand.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/source_manager.h"
#include "trace/trace.h"

namespace hlsav::trace {

struct ReplayOptions {
  /// How many trailing cycles of the window to narrate.
  std::size_t last_cycles = 16;
  /// Resolves SourceLoc file ids to names; may be null.
  const SourceManager* sm = nullptr;
};

/// Renders the annotated last-N-cycles story for a captured window.
[[nodiscard]] std::string render_replay(const ir::Design& design,
                                        const std::vector<TraceRecord>& window,
                                        const ReplayOptions& opt = {});

/// The assertion id of the last failing kAssertVerdict in the window,
/// or ir-catalogue-invalid (UINT32_MAX) if none failed.
[[nodiscard]] std::uint32_t implicated_assertion(const std::vector<TraceRecord>& window);

/// The stream id of the last handshake event in the window, or
/// ir::kNoStream when the window holds none.
[[nodiscard]] ir::StreamId implicated_stream(const std::vector<TraceRecord>& window);

}  // namespace hlsav::trace
