// In-circuit trace capture: embedded-logic-analyzer (ELA) style ring
// buffers recording per-cycle design events.
//
// The paper observes assertion failures *in circuit*, where visibility
// is scarce: the notification function reports that an assertion fired,
// but nothing shows how the design reached the failing state. Debug
// overlays for HLS (Goeders & Wilton) answer this with on-chip trace
// buffers -- fixed-capacity BRAMs that continuously record selected
// signals and retain the last N entries when a trigger fires. This
// module models exactly that layer on top of the cycle simulator:
//
//  * One ring buffer per hardware process (the per-FSM ELA core),
//    `TraceConfig::capacity` entries deep. When a buffer is full the
//    oldest entries are overwritten -- what survives a run is always
//    the *last* window, which is the window that explains a failure.
//  * A TraceRecord is one captured event: FSM state transition,
//    register write, stream handshake (push/pop), BRAM port access, or
//    assertion checker verdict.
//  * TraceFilter is the ELA's signal-selection mux: capture cost (and
//    the modeled BRAM cost, fpga/ela.h) is opt-in per event class and
//    per process.
//
// The engine is passive: the simulator invokes the hook methods when a
// TraceEngine is armed via SimOptions::ela; with no engine armed the
// simulator's hot loop pays a single pointer test.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/ir.h"
#include "support/bitvector.h"
#include "support/source_manager.h"

namespace hlsav::trace {

enum class TraceEventKind : std::uint8_t {
  kFsmState,       // process entered a block: subject = BlockId
  kRegWrite,       // subject = RegId, value = new contents
  kStreamPush,     // subject = StreamId, value = word written
  kStreamPop,      // subject = StreamId, value = word read
  kBramRead,       // subject = MemId, aux = address, value = data
  kBramWrite,      // subject = MemId, aux = address, value = data
  kAssertVerdict,  // subject = assertion id, aux = 1 if failed
};

[[nodiscard]] const char* trace_event_kind_name(TraceEventKind k);

/// One captured event. `proc` indexes ir::Design::processes; `seq` is
/// the global arrival order, which makes the merged window a stable
/// sort even when several events share a cycle.
struct TraceRecord {
  std::uint64_t cycle = 0;
  TraceEventKind kind = TraceEventKind::kFsmState;
  std::uint16_t proc = 0;
  std::uint32_t subject = 0;
  std::uint64_t aux = 0;
  BitVector value{1};
  SourceLoc loc;
  std::uint64_t seq = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// The ELA's signal-selection mux: which event classes and which
/// processes are wired into the capture buffers.
struct TraceFilter {
  bool fsm = true;
  bool regs = true;
  bool streams = true;
  bool bram = true;
  bool asserts = true;
  /// Empty = every process; otherwise only the named ones.
  std::vector<std::string> processes;

  [[nodiscard]] bool allows_process(std::string_view name) const;
};

struct TraceConfig {
  /// Ring-buffer depth, entries per process buffer. This is the ELA
  /// BRAM the area model (fpga/ela.h) costs.
  std::size_t capacity = 1024;
  /// Width of the cycle-counter field stored per entry (the hardware
  /// timestamp; 32 bits covers ~4G cycles before wrap).
  unsigned timestamp_bits = 32;
  TraceFilter filter;
};

/// The capture engine. Construct, arm via sim::SimOptions::ela, run,
/// then read `window()` back.
class TraceEngine {
 public:
  /// Hard ceiling on TraceConfig::capacity (entries per process ring).
  /// A request above it is clamped, not honoured -- the host's memory
  /// is a budget too -- and capacity_clamped() reports the truncation.
  static constexpr std::size_t kMaxCapacity = 1u << 20;

  explicit TraceEngine(const ir::Design& design, TraceConfig cfg = {});

  // ---- simulator hooks (only called while armed) ----
  void fsm_state(const ir::Process* p, ir::BlockId block, std::uint64_t cycle);
  void reg_write(const ir::Process* p, ir::RegId reg, const BitVector& v, std::uint64_t cycle,
                 SourceLoc loc);
  void stream_push(const ir::Process* p, ir::StreamId s, const BitVector& v, std::uint64_t cycle,
                   SourceLoc loc);
  void stream_pop(const ir::Process* p, ir::StreamId s, const BitVector& v, std::uint64_t cycle,
                  SourceLoc loc);
  void bram_read(const ir::Process* p, ir::MemId m, std::uint64_t addr, const BitVector& v,
                 std::uint64_t cycle, SourceLoc loc);
  void bram_write(const ir::Process* p, ir::MemId m, std::uint64_t addr, const BitVector& v,
                  std::uint64_t cycle, SourceLoc loc);
  void assert_verdict(const ir::Process* p, std::uint32_t assertion_id, bool failed,
                      std::uint64_t cycle, SourceLoc loc);

  /// The surviving capture window: every buffer's retained records,
  /// merged and ordered by (cycle, seq) -- oldest first.
  [[nodiscard]] std::vector<TraceRecord> window() const;

  /// Events offered to the buffers (and accepted by the filter).
  [[nodiscard]] std::uint64_t captured() const { return captured_; }
  /// Events overwritten by ring wrap-around (captured - retained).
  [[nodiscard]] std::uint64_t dropped() const;
  /// True when the requested capacity exceeded kMaxCapacity and the
  /// rings were instantiated shallower than asked.
  [[nodiscard]] bool capacity_clamped() const { return capacity_clamped_; }

  [[nodiscard]] const TraceConfig& config() const { return cfg_; }
  [[nodiscard]] const ir::Design& design() const { return *design_; }

  // ---- ELA geometry, consumed by the fpga area model ----
  /// Buffers actually instantiated (traced processes).
  [[nodiscard]] std::size_t num_buffers() const;
  /// Widest data value any traced signal can carry.
  [[nodiscard]] unsigned max_value_width() const { return max_value_width_; }
  /// Raw bits per ring-buffer entry: timestamp + kind tag + subject id
  /// + address/aux + the widest captured value.
  [[nodiscard]] unsigned record_bits() const;
  /// Distinct trigger comparators (one per traced assertion).
  [[nodiscard]] unsigned trigger_count() const { return trigger_count_; }

  /// Drops every captured record (buffers keep their geometry).
  void clear();

 private:
  struct Ring {
    std::vector<TraceRecord> slots;  // grows up to capacity, then wraps
    std::size_t head = 0;            // next slot to overwrite once full
    std::uint64_t written = 0;       // total records ever pushed
  };

  const ir::Design* design_;
  TraceConfig cfg_;
  std::vector<Ring> rings_;  // parallel to traced processes
  /// Design process index -> ring index, or -1 for filtered-out procs.
  std::vector<int> ring_of_proc_;
  std::unordered_map<const ir::Process*, std::uint16_t> proc_index_;
  std::uint64_t seq_ = 0;
  std::uint64_t captured_ = 0;
  unsigned max_value_width_ = 1;
  unsigned trigger_count_ = 0;
  bool capacity_clamped_ = false;

  /// Ring for this process, or nullptr when the filter excludes it.
  Ring* ring_for(const ir::Process* p, std::uint16_t& proc_out);
  void push(Ring& ring, TraceRecord rec);
};

}  // namespace hlsav::trace
