// Compact binary trace format for large campaigns.
//
// VCD is for humans with a waveform viewer; a thousand-site campaign
// with tracing armed wants something cheaper. This is a dense
// little-endian record stream with a magic/version header:
//
//   "HLTRACE1"                       8-byte magic
//   u32 record_count
//   per record:
//     u64 cycle, u8 kind, u16 proc, u32 subject, u64 aux,
//     u32 loc_file, u32 loc_line, u32 loc_column,
//     u16 value_width, ceil(width/8) value bytes (LSB first)
//
// Round-trips exactly (modulo the engine-assigned `seq`, which is
// regenerated on read in record order -- the stream is already the
// merged window).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace hlsav::trace {

void write_binary_trace(std::ostream& os, const std::vector<TraceRecord>& window);
void write_binary_trace_file(const std::string& path, const std::vector<TraceRecord>& window);

/// Throws InternalError on a truncated or corrupt stream.
[[nodiscard]] std::vector<TraceRecord> read_binary_trace(std::istream& is);
[[nodiscard]] std::vector<TraceRecord> read_binary_trace_file(const std::string& path);

}  // namespace hlsav::trace
