#include "trace/trace.h"

#include <algorithm>

namespace hlsav::trace {

const char* trace_event_kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kFsmState: return "fsm-state";
    case TraceEventKind::kRegWrite: return "reg-write";
    case TraceEventKind::kStreamPush: return "stream-push";
    case TraceEventKind::kStreamPop: return "stream-pop";
    case TraceEventKind::kBramRead: return "bram-read";
    case TraceEventKind::kBramWrite: return "bram-write";
    case TraceEventKind::kAssertVerdict: return "assert-verdict";
  }
  HLSAV_UNREACHABLE("bad TraceEventKind");
}

bool TraceFilter::allows_process(std::string_view name) const {
  if (processes.empty()) return true;
  return std::find(processes.begin(), processes.end(), name) != processes.end();
}

TraceEngine::TraceEngine(const ir::Design& design, TraceConfig cfg)
    : design_(&design), cfg_(std::move(cfg)) {
  HLSAV_CHECK(cfg_.capacity > 0, "trace ring-buffer capacity must be positive");
  // Hard memory cap: a runaway --ela-capacity (or a fuzzed config) must
  // not ask the host for unbounded per-process buffers. Clamp and flag
  // rather than abort -- the window is still valid, just shallower.
  if (cfg_.capacity > kMaxCapacity) {
    cfg_.capacity = kMaxCapacity;
    capacity_clamped_ = true;
  }
  ring_of_proc_.assign(design.processes.size(), -1);
  proc_index_.reserve(design.processes.size());
  for (std::size_t i = 0; i < design.processes.size(); ++i) {
    const ir::Process& p = *design.processes[i];
    proc_index_.emplace(&p, static_cast<std::uint16_t>(i));
    if (!cfg_.filter.allows_process(p.name)) continue;
    ring_of_proc_[i] = static_cast<int>(rings_.size());
    rings_.emplace_back();
    // The widest value this process's buffer may have to latch decides
    // the ELA entry width (registers, plus stream/BRAM data it touches).
    if (cfg_.filter.regs || cfg_.filter.fsm) {
      for (const ir::Register& r : p.regs) max_value_width_ = std::max(max_value_width_, r.width);
    }
  }
  if (cfg_.filter.streams) {
    for (const ir::Stream& s : design.streams) {
      if (!s.dead) max_value_width_ = std::max(max_value_width_, s.width);
    }
  }
  if (cfg_.filter.bram) {
    for (const ir::Memory& m : design.memories) {
      max_value_width_ = std::max(max_value_width_, m.width);
    }
  }
  if (cfg_.filter.asserts) {
    trigger_count_ = static_cast<unsigned>(design.assertions.size());
  }
}

TraceEngine::Ring* TraceEngine::ring_for(const ir::Process* p, std::uint16_t& proc_out) {
  auto it = proc_index_.find(p);
  if (it == proc_index_.end()) return nullptr;
  proc_out = it->second;
  int r = ring_of_proc_[it->second];
  return r < 0 ? nullptr : &rings_[static_cast<std::size_t>(r)];
}

void TraceEngine::push(Ring& ring, TraceRecord rec) {
  rec.seq = seq_++;
  ++captured_;
  if (ring.slots.size() < cfg_.capacity) {
    ring.slots.push_back(std::move(rec));
  } else {
    ring.slots[ring.head] = std::move(rec);
    ring.head = (ring.head + 1) % cfg_.capacity;
  }
  ++ring.written;
}

void TraceEngine::fsm_state(const ir::Process* p, ir::BlockId block, std::uint64_t cycle) {
  if (!cfg_.filter.fsm) return;
  std::uint16_t pi = 0;
  Ring* ring = ring_for(p, pi);
  if (ring == nullptr) return;
  TraceRecord rec;
  rec.cycle = cycle;
  rec.kind = TraceEventKind::kFsmState;
  rec.proc = pi;
  rec.subject = block;
  rec.value = BitVector::from_u64(32, block);
  push(*ring, std::move(rec));
}

void TraceEngine::reg_write(const ir::Process* p, ir::RegId reg, const BitVector& v,
                            std::uint64_t cycle, SourceLoc loc) {
  if (!cfg_.filter.regs) return;
  std::uint16_t pi = 0;
  Ring* ring = ring_for(p, pi);
  if (ring == nullptr) return;
  TraceRecord rec;
  rec.cycle = cycle;
  rec.kind = TraceEventKind::kRegWrite;
  rec.proc = pi;
  rec.subject = reg;
  rec.value = v;
  rec.loc = loc;
  push(*ring, std::move(rec));
}

void TraceEngine::stream_push(const ir::Process* p, ir::StreamId s, const BitVector& v,
                              std::uint64_t cycle, SourceLoc loc) {
  if (!cfg_.filter.streams) return;
  std::uint16_t pi = 0;
  Ring* ring = ring_for(p, pi);
  if (ring == nullptr) return;
  TraceRecord rec;
  rec.cycle = cycle;
  rec.kind = TraceEventKind::kStreamPush;
  rec.proc = pi;
  rec.subject = s;
  rec.value = v;
  rec.loc = loc;
  push(*ring, std::move(rec));
}

void TraceEngine::stream_pop(const ir::Process* p, ir::StreamId s, const BitVector& v,
                             std::uint64_t cycle, SourceLoc loc) {
  if (!cfg_.filter.streams) return;
  std::uint16_t pi = 0;
  Ring* ring = ring_for(p, pi);
  if (ring == nullptr) return;
  TraceRecord rec;
  rec.cycle = cycle;
  rec.kind = TraceEventKind::kStreamPop;
  rec.proc = pi;
  rec.subject = s;
  rec.value = v;
  rec.loc = loc;
  push(*ring, std::move(rec));
}

void TraceEngine::bram_read(const ir::Process* p, ir::MemId m, std::uint64_t addr,
                            const BitVector& v, std::uint64_t cycle, SourceLoc loc) {
  if (!cfg_.filter.bram) return;
  std::uint16_t pi = 0;
  Ring* ring = ring_for(p, pi);
  if (ring == nullptr) return;
  TraceRecord rec;
  rec.cycle = cycle;
  rec.kind = TraceEventKind::kBramRead;
  rec.proc = pi;
  rec.subject = m;
  rec.aux = addr;
  rec.value = v;
  rec.loc = loc;
  push(*ring, std::move(rec));
}

void TraceEngine::bram_write(const ir::Process* p, ir::MemId m, std::uint64_t addr,
                             const BitVector& v, std::uint64_t cycle, SourceLoc loc) {
  if (!cfg_.filter.bram) return;
  std::uint16_t pi = 0;
  Ring* ring = ring_for(p, pi);
  if (ring == nullptr) return;
  TraceRecord rec;
  rec.cycle = cycle;
  rec.kind = TraceEventKind::kBramWrite;
  rec.proc = pi;
  rec.subject = m;
  rec.aux = addr;
  rec.value = v;
  rec.loc = loc;
  push(*ring, std::move(rec));
}

void TraceEngine::assert_verdict(const ir::Process* p, std::uint32_t assertion_id, bool failed,
                                 std::uint64_t cycle, SourceLoc loc) {
  if (!cfg_.filter.asserts) return;
  std::uint16_t pi = 0;
  Ring* ring = ring_for(p, pi);
  if (ring == nullptr) return;
  TraceRecord rec;
  rec.cycle = cycle;
  rec.kind = TraceEventKind::kAssertVerdict;
  rec.proc = pi;
  rec.subject = assertion_id;
  rec.aux = failed ? 1 : 0;
  rec.value = BitVector::from_bool(failed);
  rec.loc = loc;
  push(*ring, std::move(rec));
}

std::vector<TraceRecord> TraceEngine::window() const {
  std::vector<TraceRecord> out;
  std::size_t total = 0;
  for (const Ring& r : rings_) total += r.slots.size();
  out.reserve(total);
  for (const Ring& r : rings_) {
    // head..end are the oldest retained entries once the ring wrapped.
    for (std::size_t i = 0; i < r.slots.size(); ++i) {
      out.push_back(r.slots[(r.head + i) % r.slots.size()]);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceRecord& a, const TraceRecord& b) {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq;
  });
  return out;
}

std::uint64_t TraceEngine::dropped() const {
  std::uint64_t d = 0;
  for (const Ring& r : rings_) d += r.written - r.slots.size();
  return d;
}

std::size_t TraceEngine::num_buffers() const { return rings_.size(); }

unsigned TraceEngine::record_bits() const {
  // timestamp + 3-bit kind tag + 16-bit subject id + 16-bit aux
  // (address / verdict) + widest captured value. This is what one ring
  // entry costs in ELA BRAM before M4K column rounding.
  return cfg_.timestamp_bits + 3 + 16 + 16 + max_value_width_;
}

void TraceEngine::clear() {
  for (Ring& r : rings_) {
    r.slots.clear();
    r.head = 0;
    r.written = 0;
  }
  seq_ = 0;
  captured_ = 0;
}

}  // namespace hlsav::trace
