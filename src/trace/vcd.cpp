#include "trace/vcd.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "rtl/names.h"
#include "support/io.h"

namespace hlsav::trace {

namespace {

/// Four-state vector literal: "b<bits>" MSB-first, no leading-zero
/// compression beyond the VCD-permitted one (we keep full width so the
/// parser test can check widths exactly; spec allows both).
std::string vector_literal(const BitVector& v) {
  std::string s = "b";
  for (unsigned i = v.width(); i-- > 0;) s.push_back(v.bit(i) ? '1' : '0');
  return s;
}

}  // namespace

int VcdWriter::add_signal(std::string scope, std::string name, unsigned width) {
  Signal s;
  s.scope = std::move(scope);
  s.name = rtl::sanitize_net_name(name);
  s.id = rtl::vcd_identifier(signals_.size());
  s.width = width;
  signals_.push_back(std::move(s));
  return static_cast<int>(signals_.size()) - 1;
}

VcdWriter::VcdWriter(const ir::Design& design, const TraceFilter& filter)
    : design_(&design), filter_(filter) {
  const std::size_t nprocs = design.processes.size();
  fsm_of_proc_.assign(nprocs, -1);
  reg_of_proc_.resize(nprocs);

  for (std::size_t pi = 0; pi < nprocs; ++pi) {
    const ir::Process& p = *design.processes[pi];
    if (!filter_.allows_process(p.name)) continue;
    if (filter_.fsm) {
      fsm_of_proc_[pi] =
          add_signal(p.name, "fsm_state", rtl::bits_for(std::max<std::size_t>(p.blocks.size(), 2)));
    }
    if (filter_.regs) {
      reg_of_proc_[pi].assign(p.regs.size(), -1);
      for (const ir::Register& r : p.regs) {
        std::string name = r.name.empty() ? "r" + std::to_string(r.id) : r.name;
        reg_of_proc_[pi][r.id] = add_signal(p.name, name, r.width);
      }
    }
  }

  if (filter_.bram) {
    mem_read_sig_.assign(design.memories.size(), {});
    mem_write_sig_.assign(design.memories.size(), {});
    for (const ir::Memory& m : design.memories) {
      if (!filter_.allows_process(m.owner_process)) continue;
      unsigned abits = rtl::bits_for(std::max<std::uint64_t>(m.size, 2));
      int addr = add_signal(m.owner_process, m.name + "_addr", abits);
      SignalRef rd;
      rd.addr = addr;
      rd.data = add_signal(m.owner_process, m.name + "_rdata", m.width);
      rd.strobe = add_signal(m.owner_process, m.name + "_re", 1);
      mem_read_sig_[m.id] = rd;
      SignalRef wr;
      wr.addr = addr;
      wr.data = add_signal(m.owner_process, m.name + "_wdata", m.width);
      wr.strobe = add_signal(m.owner_process, m.name + "_we", 1);
      mem_write_sig_[m.id] = wr;
    }
  }

  if (filter_.streams) {
    stream_sig_.assign(design.streams.size(), {});
    for (const ir::Stream& s : design.streams) {
      if (s.dead) continue;
      SignalRef sr;
      sr.data = add_signal("streams", s.name + "_data", s.width);
      sr.strobe = add_signal("streams", s.name + "_push", 1);
      sr.addr = add_signal("streams", s.name + "_pop", 1);  // pop strobe
      stream_sig_[s.id] = sr;
    }
  }

  if (filter_.asserts) {
    for (const ir::AssertionRecord& rec : design.assertions) {
      assert_ids_.push_back(rec.id);
      assert_sig_.push_back(
          add_signal("assertions", "assert_" + std::to_string(rec.id) + "_fail", 1));
    }
  }
}

int VcdWriter::find_assert_signal(std::uint32_t assertion_id) const {
  for (std::size_t i = 0; i < assert_ids_.size(); ++i) {
    if (assert_ids_[i] == assertion_id) return assert_sig_[i];
  }
  return -1;
}

void VcdWriter::write(std::ostream& os, const std::vector<TraceRecord>& window,
                      const VcdOptions& opt) const {
  // ---- header & variable definitions ----
  os << "$date\n  (deterministic build)\n$end\n";
  os << "$version\n  " << opt.version << "\n$end\n";
  os << "$timescale " << opt.timescale << " $end\n";
  os << "$scope module " << rtl::sanitize_net_name(design_->name.empty() ? "design"
                                                                         : design_->name)
     << " $end\n";
  // Group signals by scope, preserving first-seen scope order.
  std::vector<std::string> scope_order;
  for (const Signal& s : signals_) {
    if (std::find(scope_order.begin(), scope_order.end(), s.scope) == scope_order.end()) {
      scope_order.push_back(s.scope);
    }
  }
  for (const std::string& scope : scope_order) {
    os << "$scope module " << rtl::sanitize_net_name(scope) << " $end\n";
    for (const Signal& s : signals_) {
      if (s.scope != scope) continue;
      os << "$var wire " << s.width << " " << s.id << " " << s.name;
      if (s.width > 1) os << " [" << (s.width - 1) << ":0]";
      os << " $end\n";
    }
    os << "$upscope $end\n";
  }
  os << "$upscope $end\n";
  os << "$enddefinitions $end\n";

  // ---- change list: per-timestamp ordered value changes ----
  // Strobes (push/pop/we/re/fail) are one-cycle pulses: set at the event
  // cycle, cleared one cycle later. Later writes to the same signal at
  // the same timestamp win (map insertion order preserved per cycle).
  std::map<std::uint64_t, std::vector<std::pair<int, std::string>>> changes;
  auto emit = [&changes, this](std::uint64_t cycle, int sig, std::string value) {
    if (sig < 0) return;
    const Signal& s = signals_[static_cast<std::size_t>(sig)];
    std::string text =
        s.width == 1 ? value + s.id : value + " " + s.id;  // scalar: no space before id
    changes[cycle].emplace_back(sig, std::move(text));
  };
  auto emit_vec = [&emit, this](std::uint64_t cycle, int sig, const BitVector& v) {
    if (sig < 0) return;
    const Signal& s = signals_[static_cast<std::size_t>(sig)];
    if (s.width == 1) {
      emit(cycle, sig, v.any() ? "1" : "0");
    } else {
      // Adapt to the declared net width (subjects always match, but a
      // defensive resize keeps the document well-formed regardless).
      emit(cycle, sig, vector_literal(v.width() == s.width ? v : v.resize(s.width, false)) + "");
    }
  };
  auto pulse = [&emit](std::uint64_t cycle, int sig) {
    if (sig < 0) return;
    emit(cycle, sig, "1");
    emit(cycle + 1, sig, "0");
  };

  for (const TraceRecord& r : window) {
    switch (r.kind) {
      case TraceEventKind::kFsmState: {
        int sig = r.proc < fsm_of_proc_.size() ? fsm_of_proc_[r.proc] : -1;
        if (sig >= 0) {
          unsigned w = signals_[static_cast<std::size_t>(sig)].width;
          emit_vec(r.cycle, sig, BitVector::from_u64(w, r.subject));
        }
        break;
      }
      case TraceEventKind::kRegWrite: {
        const auto& regs = r.proc < reg_of_proc_.size() ? reg_of_proc_[r.proc] : std::vector<int>{};
        int sig = r.subject < regs.size() ? regs[r.subject] : -1;
        emit_vec(r.cycle, sig, r.value);
        break;
      }
      case TraceEventKind::kStreamPush: {
        if (r.subject >= stream_sig_.size()) break;
        const SignalRef& sr = stream_sig_[r.subject];
        emit_vec(r.cycle, sr.data, r.value);
        pulse(r.cycle, sr.strobe);
        break;
      }
      case TraceEventKind::kStreamPop: {
        if (r.subject >= stream_sig_.size()) break;
        const SignalRef& sr = stream_sig_[r.subject];
        emit_vec(r.cycle, sr.data, r.value);
        pulse(r.cycle, sr.addr);  // pop strobe
        break;
      }
      case TraceEventKind::kBramRead: {
        if (r.subject >= mem_read_sig_.size()) break;
        const SignalRef& sr = mem_read_sig_[r.subject];
        if (sr.addr >= 0) {
          unsigned w = signals_[static_cast<std::size_t>(sr.addr)].width;
          emit_vec(r.cycle, sr.addr, BitVector::from_u64(w, r.aux));
        }
        emit_vec(r.cycle, sr.data, r.value);
        pulse(r.cycle, sr.strobe);
        break;
      }
      case TraceEventKind::kBramWrite: {
        if (r.subject >= mem_write_sig_.size()) break;
        const SignalRef& sr = mem_write_sig_[r.subject];
        if (sr.addr >= 0) {
          unsigned w = signals_[static_cast<std::size_t>(sr.addr)].width;
          emit_vec(r.cycle, sr.addr, BitVector::from_u64(w, r.aux));
        }
        emit_vec(r.cycle, sr.data, r.value);
        pulse(r.cycle, sr.strobe);
        break;
      }
      case TraceEventKind::kAssertVerdict: {
        int sig = find_assert_signal(r.subject);
        if (r.aux != 0) {
          pulse(r.cycle, sig);
        } else {
          emit(r.cycle, sig, "0");
        }
        break;
      }
    }
  }

  // ---- initial values: everything unknown until first captured change.
  os << "$dumpvars\n";
  for (const Signal& s : signals_) {
    if (s.width == 1) {
      os << "x" << s.id << "\n";
    } else {
      os << "bx " << s.id << "\n";
    }
  }
  os << "$end\n";

  // ---- timestamped changes; later same-cycle writes override earlier
  // ones for the same signal (keep only the last per (cycle, signal)).
  std::vector<int> last_index(signals_.size(), -1);
  for (const auto& [cycle, list] : changes) {
    os << "#" << cycle << "\n";
    last_index.assign(signals_.size(), -1);
    for (std::size_t i = 0; i < list.size(); ++i) {
      last_index[static_cast<std::size_t>(list[i].first)] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (last_index[static_cast<std::size_t>(list[i].first)] != static_cast<int>(i)) continue;
      os << list[i].second << "\n";
    }
  }
}

void VcdWriter::write_file(const std::string& path, const std::vector<TraceRecord>& window,
                           const VcdOptions& opt) const {
  // Buffer + atomic rename (support/io.h): a run killed mid-export
  // leaves the previous VCD intact, never a torn one.
  std::ostringstream os;
  write(os, window, opt);
  Status st = write_file_atomic(path, os.str());
  HLSAV_CHECK(st.ok(), "error writing VCD output file: " + st.to_string());
}

}  // namespace hlsav::trace
