// Status-returning trace reader: the miner's front door for recorded
// HLTRACE1 windows.
//
// read_binary_trace_file throws InternalError on corrupt bytes, which is
// the right contract for "this cannot happen" internal streams but the
// wrong one for user-supplied --trace-in files. read_trace_file wraps it
// into the Status error model, and validate_window checks a window
// against the design it claims to describe before any invariant is
// mined from it: process/register/stream/memory ids must resolve and
// every carried value must match the declared signal width exactly
// (1-bit flags and >64-bit crypto state included -- width drift here
// would silently corrupt mined bounds).
#pragma once

#include <string>
#include <vector>

#include "support/status.h"
#include "trace/trace.h"

namespace hlsav::trace {

/// Reads an HLTRACE1 file. kIoError when the file cannot be opened,
/// kInvalidArgument when the bytes are truncated or corrupt.
[[nodiscard]] StatusOr<std::vector<TraceRecord>> read_trace_file(const std::string& path);

/// Checks every record against the design: ids in range, value widths
/// equal to the declared signal widths, assertion ids present in the
/// catalogue. Returns the first violation (with record index) or ok.
[[nodiscard]] Status validate_window(const ir::Design& design,
                                     const std::vector<TraceRecord>& window);

}  // namespace hlsav::trace
