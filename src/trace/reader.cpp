#include "trace/reader.h"

#include <fstream>

#include "support/diagnostics.h"
#include "trace/binary.h"
#include "trace/signals.h"

namespace hlsav::trace {

StatusOr<std::vector<TraceRecord>> read_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::io_error("cannot open trace file: " + path);
  try {
    return read_binary_trace(is);
  } catch (const InternalError& e) {
    return Status::invalid_argument("corrupt trace file '" + path + "': " + e.what());
  }
}

Status validate_window(const ir::Design& design, const std::vector<TraceRecord>& window) {
  SignalCatalog names(design);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const TraceRecord& r = window[i];
    auto bad = [&](const std::string& why) {
      return Status::invalid_argument("trace record " + std::to_string(i) + ": " + why);
    };
    switch (r.kind) {
      case TraceEventKind::kFsmState:
      case TraceEventKind::kRegWrite:
        if (r.proc >= design.processes.size()) {
          return bad("process index " + std::to_string(r.proc) + " out of range for design '" +
                     design.name + "'");
        }
        break;
      case TraceEventKind::kStreamPush:
      case TraceEventKind::kStreamPop:
      case TraceEventKind::kBramRead:
      case TraceEventKind::kBramWrite:
      case TraceEventKind::kAssertVerdict:
        break;
    }
    switch (r.kind) {
      case TraceEventKind::kFsmState: {
        const ir::Process& p = *design.processes[r.proc];
        if (r.subject >= p.blocks.size()) {
          return bad("block " + std::to_string(r.subject) + " out of range in process '" + p.name +
                     "'");
        }
        break;
      }
      case TraceEventKind::kRegWrite: {
        const ir::Process& p = *design.processes[r.proc];
        if (r.subject >= p.regs.size()) {
          return bad("register " + std::to_string(r.subject) + " out of range in process '" +
                     p.name + "'");
        }
        if (r.value.width() != p.regs[r.subject].width) {
          return bad("register '" + names.record_signal(r) + "' is " +
                     std::to_string(p.regs[r.subject].width) + "-bit but the record carries " +
                     std::to_string(r.value.width()) + " bits");
        }
        break;
      }
      case TraceEventKind::kStreamPush:
      case TraceEventKind::kStreamPop: {
        if (r.subject >= design.streams.size()) {
          return bad("stream " + std::to_string(r.subject) + " out of range");
        }
        const ir::Stream& s = design.streams[r.subject];
        if (r.value.width() != s.width) {
          return bad("stream '" + s.name + "' is " + std::to_string(s.width) +
                     "-bit but the record carries " + std::to_string(r.value.width()) + " bits");
        }
        break;
      }
      case TraceEventKind::kBramRead:
      case TraceEventKind::kBramWrite: {
        if (r.subject >= design.memories.size()) {
          return bad("memory " + std::to_string(r.subject) + " out of range");
        }
        const ir::Memory& m = design.memories[r.subject];
        if (r.value.width() != m.width) {
          return bad("memory '" + m.name + "' is " + std::to_string(m.width) +
                     "-bit but the record carries " + std::to_string(r.value.width()) + " bits");
        }
        if (m.size != 0 && r.aux >= m.size) {
          return bad("memory '" + m.name + "' address " + std::to_string(r.aux) +
                     " out of range (size " + std::to_string(m.size) + ")");
        }
        break;
      }
      case TraceEventKind::kAssertVerdict:
        if (design.find_assertion(r.subject) == nullptr) {
          return bad("assertion #" + std::to_string(r.subject) + " not in the design catalogue");
        }
        break;
    }
  }
  return Status::ok_status();
}

}  // namespace hlsav::trace
