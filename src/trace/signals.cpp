#include "trace/signals.h"

namespace hlsav::trace {

SignalCatalog::SignalCatalog(const ir::Design& design) : design_(&design) {
  def_locs_.resize(design.processes.size());
  for (std::size_t pi = 0; pi < design.processes.size(); ++pi) {
    const ir::Process& p = *design.processes[pi];
    std::vector<SourceLoc>& locs = def_locs_[pi];
    locs.resize(p.regs.size());
    // Blocks in id order, ops in program order: the first write wins, so
    // the anchor is stable across re-runs of the same compile.
    for (const ir::BasicBlock& b : p.blocks) {
      for (const ir::Op& op : b.ops) {
        if (op.dest != ir::kNoReg && op.dest < locs.size() && !locs[op.dest].valid()) {
          locs[op.dest] = op.loc;
        }
      }
    }
  }
}

std::string SignalCatalog::process_name(std::uint16_t proc) const {
  return proc < design_->processes.size() ? design_->processes[proc]->name : "?";
}

std::string SignalCatalog::block_name(std::uint16_t proc, std::uint32_t block) const {
  if (proc < design_->processes.size()) {
    const ir::Process& p = *design_->processes[proc];
    if (block < p.blocks.size() && !p.blocks[block].name.empty()) return p.blocks[block].name;
  }
  return std::to_string(block);
}

std::string SignalCatalog::reg_name(std::uint16_t proc, ir::RegId reg) const {
  if (proc < design_->processes.size()) {
    const ir::Process& p = *design_->processes[proc];
    if (reg < p.regs.size() && !p.regs[reg].name.empty()) return p.regs[reg].name;
  }
  return "r" + std::to_string(reg);
}

std::string SignalCatalog::stream_name(ir::StreamId s) const {
  return s < design_->streams.size() ? design_->streams[s].name : "s" + std::to_string(s);
}

std::string SignalCatalog::memory_name(ir::MemId m) const {
  return m < design_->memories.size() ? design_->memories[m].name : "m" + std::to_string(m);
}

std::string SignalCatalog::record_signal(const TraceRecord& r) const {
  switch (r.kind) {
    case TraceEventKind::kFsmState:
      return process_name(r.proc) + "." + block_name(r.proc, r.subject);
    case TraceEventKind::kRegWrite:
      return process_name(r.proc) + "." + reg_name(r.proc, r.subject);
    case TraceEventKind::kStreamPush:
    case TraceEventKind::kStreamPop:
      return stream_name(r.subject);
    case TraceEventKind::kBramRead:
    case TraceEventKind::kBramWrite:
      return memory_name(r.subject);
    case TraceEventKind::kAssertVerdict:
      return "assert#" + std::to_string(r.subject);
  }
  return "?";
}

SourceLoc SignalCatalog::reg_def_loc(std::uint16_t proc, ir::RegId reg) const {
  if (proc < def_locs_.size() && reg < def_locs_[proc].size()) return def_locs_[proc][reg];
  return {};
}

unsigned SignalCatalog::record_width(const TraceRecord& r) const {
  switch (r.kind) {
    case TraceEventKind::kRegWrite:
      if (r.proc < design_->processes.size()) {
        const ir::Process& p = *design_->processes[r.proc];
        if (r.subject < p.regs.size()) return p.regs[r.subject].width;
      }
      return 0;
    case TraceEventKind::kStreamPush:
    case TraceEventKind::kStreamPop:
      return r.subject < design_->streams.size() ? design_->streams[r.subject].width : 0;
    case TraceEventKind::kBramRead:
    case TraceEventKind::kBramWrite:
      return r.subject < design_->memories.size() ? design_->memories[r.subject].width : 0;
    case TraceEventKind::kFsmState:
    case TraceEventKind::kAssertVerdict:
      return 1;  // carries no data value
  }
  return 0;
}

}  // namespace hlsav::trace
