#include "trace/binary.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/io.h"

namespace hlsav::trace {

namespace {

constexpr char kMagic[8] = {'H', 'L', 'T', 'R', 'A', 'C', 'E', '1'};

template <typename T>
void put(std::ostream& os, T v) {
  // Serialize little-endian regardless of host order.
  std::array<unsigned char, sizeof(T)> bytes{};
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<unsigned char>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF);
  }
  os.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(sizeof(T)));
}

template <typename T>
T get(std::istream& is) {
  std::array<unsigned char, sizeof(T)> bytes{};
  is.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(sizeof(T)));
  HLSAV_CHECK(is.gcount() == static_cast<std::streamsize>(sizeof(T)),
              "truncated binary trace stream");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace

void write_binary_trace(std::ostream& os, const std::vector<TraceRecord>& window) {
  os.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(os, static_cast<std::uint32_t>(window.size()));
  for (const TraceRecord& r : window) {
    put<std::uint64_t>(os, r.cycle);
    put<std::uint8_t>(os, static_cast<std::uint8_t>(r.kind));
    put<std::uint16_t>(os, r.proc);
    put<std::uint32_t>(os, r.subject);
    put<std::uint64_t>(os, r.aux);
    put<std::uint32_t>(os, r.loc.file);
    put<std::uint32_t>(os, r.loc.line);
    put<std::uint32_t>(os, r.loc.column);
    put<std::uint16_t>(os, static_cast<std::uint16_t>(r.value.width()));
    const unsigned nbytes = (r.value.width() + 7) / 8;
    for (unsigned i = 0; i < nbytes; ++i) {
      std::uint8_t b = 0;
      for (unsigned j = 0; j < 8 && i * 8 + j < r.value.width(); ++j) {
        if (r.value.bit(i * 8 + j)) b |= static_cast<std::uint8_t>(1u << j);
      }
      put<std::uint8_t>(os, b);
    }
  }
}

std::vector<TraceRecord> read_binary_trace(std::istream& is) {
  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(kMagic));
  HLSAV_CHECK(is.gcount() == static_cast<std::streamsize>(sizeof(kMagic)) &&
                  std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "bad binary trace magic");
  const std::uint32_t count = get<std::uint32_t>(is);
  std::vector<TraceRecord> out;
  out.reserve(count);
  for (std::uint32_t n = 0; n < count; ++n) {
    TraceRecord r;
    r.cycle = get<std::uint64_t>(is);
    const std::uint8_t kind = get<std::uint8_t>(is);
    HLSAV_CHECK(kind <= static_cast<std::uint8_t>(TraceEventKind::kAssertVerdict),
                "bad trace event kind in binary stream");
    r.kind = static_cast<TraceEventKind>(kind);
    r.proc = get<std::uint16_t>(is);
    r.subject = get<std::uint32_t>(is);
    r.aux = get<std::uint64_t>(is);
    r.loc.file = get<std::uint32_t>(is);
    r.loc.line = get<std::uint32_t>(is);
    r.loc.column = get<std::uint32_t>(is);
    const std::uint16_t width = get<std::uint16_t>(is);
    HLSAV_CHECK(width >= 1 && width <= BitVector::kMaxWidth,
                "bad value width in binary trace stream");
    BitVector v(width);
    const unsigned nbytes = (width + 7u) / 8;
    for (unsigned i = 0; i < nbytes; ++i) {
      std::uint8_t b = get<std::uint8_t>(is);
      for (unsigned j = 0; j < 8 && i * 8 + j < width; ++j) {
        if ((b >> j) & 1) v.set_bit(i * 8 + j, true);
      }
    }
    r.value = std::move(v);
    r.seq = n;
    out.push_back(std::move(r));
  }
  return out;
}

void write_binary_trace_file(const std::string& path, const std::vector<TraceRecord>& window) {
  std::ostringstream os(std::ios::binary);
  write_binary_trace(os, window);
  Status st = write_file_atomic(path, os.str());
  HLSAV_CHECK(st.ok(), "error writing binary trace file: " + st.to_string());
}

std::vector<TraceRecord> read_binary_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HLSAV_CHECK(is.good(), "cannot open binary trace file '" + path + "'");
  return read_binary_trace(is);
}

}  // namespace hlsav::trace
