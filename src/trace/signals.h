// Shared signal-name and source-location resolution for trace windows.
//
// Three consumers need to turn a TraceRecord's (proc, subject) pair back
// into design-level names: the replay decoder (replay.cpp), the trace
// filter / CLI surface, and the invariant miner (src/mine). They used to
// each re-derive the mapping inline; SignalCatalog is the single shared
// helper, and the first step toward the debug-info table the roadmap
// wants for source-level debugging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace hlsav::trace {

/// Name + defining-location lookup over one design. Construction walks
/// the design once; lookups are O(1) and never throw -- out-of-range
/// subjects resolve to the same placeholder names the replay decoder
/// has always printed ("?", "r<N>", numeric block ids).
class SignalCatalog {
 public:
  explicit SignalCatalog(const ir::Design& design);

  [[nodiscard]] const ir::Design& design() const { return *design_; }

  /// Process name, or "?" when the index is out of range.
  [[nodiscard]] std::string process_name(std::uint16_t proc) const;
  /// Block name, or the numeric id when unnamed/out of range.
  [[nodiscard]] std::string block_name(std::uint16_t proc, std::uint32_t block) const;
  /// Register name, with the classic "r<N>" fallback for unnamed or
  /// out-of-range registers.
  [[nodiscard]] std::string reg_name(std::uint16_t proc, ir::RegId reg) const;
  [[nodiscard]] std::string stream_name(ir::StreamId s) const;
  [[nodiscard]] std::string memory_name(ir::MemId m) const;

  /// The record's subject rendered as a design-level signal name
  /// ("proc.reg" for register writes, stream/memory names otherwise).
  [[nodiscard]] std::string record_signal(const TraceRecord& r) const;

  /// Source location of the first op that writes this register, or an
  /// invalid SourceLoc when the register is never written (port inputs,
  /// out-of-range ids). This is the anchor the miner instruments at.
  [[nodiscard]] SourceLoc reg_def_loc(std::uint16_t proc, ir::RegId reg) const;

  /// Declared width of the signal a record refers to, or 0 when the
  /// subject does not resolve (used by the trace reader's validation).
  [[nodiscard]] unsigned record_width(const TraceRecord& r) const;

 private:
  const ir::Design* design_;
  /// def_locs_[proc][reg] = loc of the first write, parallel to
  /// Process::regs; processes beyond the design's size are absent.
  std::vector<std::vector<SourceLoc>> def_locs_;
};

}  // namespace hlsav::trace
