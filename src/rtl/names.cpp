#include "rtl/names.h"

#include <cctype>

namespace hlsav::rtl {

std::string sanitize_net_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') ? c : '_');
  }
  if (out.empty() || (std::isdigit(static_cast<unsigned char>(out.front())) != 0)) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string vcd_identifier(std::size_t index) {
  // Identifier codes are any string of printable ASCII 33..126 (IEEE
  // 1364-2005 §18.2.1); enumerate shortest-first in base 94.
  constexpr std::size_t kBase = 94;
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % kBase));
    index /= kBase;
  } while (index-- > 0);  // the -- makes longer codes start at "!!", not "\"!"
  return id;
}

std::string hierarchical_name(std::string_view scope, std::string_view local) {
  return sanitize_net_name(scope) + "." + sanitize_net_name(local);
}

unsigned bits_for(std::size_t n) {
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace hlsav::rtl
