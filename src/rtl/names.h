// Net-name metadata shared by the RTL emitters and the trace subsystem.
//
// Everything that prints a hardware view of the design -- the Verilog
// emitter, the VCD waveform writer, the ELA trace decoder -- needs the
// same two facts about a signal: a sanitized net name (HLS-C identifiers
// may collide with HDL/VCD lexical rules) and, for VCD, a compact
// identifier code. Keeping both here guarantees the waveform a user
// opens next to the generated Verilog names the same nets.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace hlsav::rtl {

/// Replaces every character outside [A-Za-z0-9_] with '_' and prefixes
/// a '_' if the name would start with a digit (or is empty). The result
/// is a legal Verilog identifier and a legal VCD reference name.
[[nodiscard]] std::string sanitize_net_name(std::string_view name);

/// The nth VCD identifier code: a base-94 string over the printable
/// ASCII range '!'..'~', shortest-first ("!", "\"", ..., "~", "!!", ...).
/// Deterministic; index 0 is "!".
[[nodiscard]] std::string vcd_identifier(std::size_t index);

/// "<scope>.<local>" hierarchical display name (both parts sanitized).
[[nodiscard]] std::string hierarchical_name(std::string_view scope, std::string_view local);

/// Bits needed to represent values 0..n-1 (>= 1).
[[nodiscard]] unsigned bits_for(std::size_t n);

}  // namespace hlsav::rtl
