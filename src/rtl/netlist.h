// FSMD netlist: the structural view of a scheduled design.
//
// The netlist is what the area/timing models cost and what the Verilog
// emitter prints. Each process becomes an FSM (state register + next-
// state logic) plus a datapath of functional units, registers with input
// muxes, block-RAM ports and stream interfaces. Each scheduled op
// instantiates its own functional unit (Impulse-C-style: no cross-op FU
// sharing inside a process), which is exactly why the paper's §3.3
// resource-sharing discussion matters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "sched/schedule.h"

namespace hlsav::rtl {

/// One datapath functional unit.
struct FuInst {
  ir::OpKind kind = ir::OpKind::kBin;
  ir::BinKind bin = ir::BinKind::kAdd;
  ir::UnKind un = ir::UnKind::kNeg;
  unsigned width = 32;        // operand width
  unsigned chain_depth = 0;   // accumulated depth within its state
  bool in_pipeline = false;
  bool for_assertion = false; // carries an assert tag
};

/// One datapath register with its input mux.
struct RegInst {
  std::string name;
  unsigned width = 32;
  unsigned fanin = 1;  // distinct writers (mux inputs)
};

struct FsmInst {
  unsigned states = 0;
  unsigned transitions = 0;
};

struct ProcessNetlist {
  std::string name;
  ir::ProcessRole role = ir::ProcessRole::kApplication;
  FsmInst fsm;
  std::vector<FuInst> fus;
  std::vector<RegInst> regs;
  /// Register bits added by pipeline stage balancing (modulo variable
  /// expansion copies of values live across stages).
  std::uint64_t pipeline_stage_reg_bits = 0;
  /// Widest arithmetic carry chain in any single state (timing model).
  unsigned max_carry_width = 0;
  /// Deepest combinational chain in any single state (timing model).
  unsigned max_chain_depth = 0;
  bool has_multiplier = false;
};

struct MemInst {
  std::string name;
  unsigned width = 0;        // element width (before M4K column rounding)
  std::uint64_t size = 0;    // elements
  std::uint64_t bits = 0;    // width * size (raw data bits)
  bool is_rom = false;
  bool is_replica = false;
};

struct StreamInst {
  std::string name;
  unsigned width = 32;
  unsigned depth = 16;
  ir::StreamRole role = ir::StreamRole::kData;
  bool cpu_facing = false;
};

struct Netlist {
  std::string design_name;
  std::vector<ProcessNetlist> processes;
  std::vector<MemInst> memories;
  std::vector<StreamInst> streams;

  [[nodiscard]] const ProcessNetlist* find_process(std::string_view name) const;
};

/// Builds the netlist for a scheduled design.
[[nodiscard]] Netlist build_netlist(const ir::Design& design,
                                    const sched::DesignSchedule& schedule);

/// Summary string (tests, debugging).
[[nodiscard]] std::string describe(const Netlist& n);

}  // namespace hlsav::rtl
