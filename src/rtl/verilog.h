// Verilog-2001 emission of a scheduled design.
//
// The emitter prints the structural design the HLS flow produced: one
// module per process (FSM + datapath), inferred block-RAM modules, FIFO
// modules for streams, and a top-level that wires everything together.
// This is the artifact a designer would hand to Quartus; in this
// repository it exists for inspection and for the area model's
// ground truth (the netlist and the emitted code come from the same
// structures).
#pragma once

#include <string>

#include "ir/ir.h"
#include "sched/schedule.h"

namespace hlsav::rtl {

/// Emits the complete design as a single Verilog source string.
[[nodiscard]] std::string emit_verilog(const ir::Design& design,
                                       const sched::DesignSchedule& schedule);

/// Emits one process module.
[[nodiscard]] std::string emit_process(const ir::Design& design, const ir::Process& proc,
                                       const sched::ProcessSchedule& schedule);

}  // namespace hlsav::rtl
