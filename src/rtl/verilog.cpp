#include "rtl/verilog.h"

#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "rtl/names.h"

namespace hlsav::rtl {

namespace {

std::string sanitize(std::string_view name) { return sanitize_net_name(name); }

std::string operand_v(const ir::Process& p, const ir::Operand& o) {
  switch (o.kind) {
    case ir::OperandKind::kReg:
      return sanitize(p.reg(o.reg).name);
    case ir::OperandKind::kImm:
      return std::to_string(o.imm.width()) + "'d" + o.imm.to_string_dec(false);
    case ir::OperandKind::kNone:
      return "/*none*/";
  }
  return "?";
}

const char* bin_v(ir::BinKind k) {
  switch (k) {
    case ir::BinKind::kAdd: return "+";
    case ir::BinKind::kSub: return "-";
    case ir::BinKind::kMul: return "*";
    case ir::BinKind::kDivU:
    case ir::BinKind::kDivS: return "/";
    case ir::BinKind::kRemU:
    case ir::BinKind::kRemS: return "%";
    case ir::BinKind::kAnd: return "&";
    case ir::BinKind::kOr: return "|";
    case ir::BinKind::kXor: return "^";
    case ir::BinKind::kShl: return "<<";
    case ir::BinKind::kShrL: return ">>";
    case ir::BinKind::kShrA: return ">>>";
    case ir::BinKind::kCmpEq: return "==";
    case ir::BinKind::kCmpNe: return "!=";
    case ir::BinKind::kCmpLtU:
    case ir::BinKind::kCmpLtS: return "<";
    case ir::BinKind::kCmpLeU:
    case ir::BinKind::kCmpLeS: return "<=";
  }
  return "?";
}

bool bin_signed(ir::BinKind k) {
  switch (k) {
    case ir::BinKind::kDivS:
    case ir::BinKind::kRemS:
    case ir::BinKind::kCmpLtS:
    case ir::BinKind::kCmpLeS:
      return true;
    default:
      return false;
  }
}

void emit_op(std::ostringstream& os, const ir::Design& d, const ir::Process& p,
             const ir::Op& op) {
  std::string guard;
  if (!op.pred.is_none()) {
    guard = std::string("if (") + (op.pred_negated ? "!" : "") + operand_v(p, op.pred) + ") ";
  }
  auto dest = [&]() { return sanitize(p.reg(op.dest).name); };
  os << "          " << guard;
  switch (op.kind) {
    case ir::OpKind::kBin: {
      std::string a = operand_v(p, op.args[0]);
      std::string b = operand_v(p, op.args[1]);
      if (bin_signed(op.bin)) {
        a = "$signed(" + a + ")";
        b = "$signed(" + b + ")";
      }
      os << dest() << " <= " << a << ' ' << bin_v(op.bin) << ' ' << b << ";\n";
      break;
    }
    case ir::OpKind::kUn:
      os << dest() << " <= " << (op.un == ir::UnKind::kNeg ? "-" : "~")
         << operand_v(p, op.args[0]) << ";\n";
      break;
    case ir::OpKind::kResize:
      if (op.resize == ir::ResizeKind::kSext) {
        os << dest() << " <= $signed(" << operand_v(p, op.args[0]) << ");\n";
      } else {
        os << dest() << " <= " << operand_v(p, op.args[0]) << ";\n";
      }
      break;
    case ir::OpKind::kCopy:
      os << dest() << " <= " << operand_v(p, op.args[0]) << ";\n";
      break;
    case ir::OpKind::kLoad:
      os << dest() << " <= " << sanitize(d.memory(op.mem).name) << "_q; "
         << "/* addr <= " << operand_v(p, op.args[0]) << " */\n";
      break;
    case ir::OpKind::kStore:
      os << sanitize(d.memory(op.mem).name) << "_wr(" << operand_v(p, op.args[0]) << ", "
         << operand_v(p, op.args[1]) << ");\n";
      break;
    case ir::OpKind::kStreamRead:
      os << dest() << " <= " << sanitize(d.stream(op.stream).name)
         << "_data; // blocking pop\n";
      break;
    case ir::OpKind::kStreamWrite:
      os << sanitize(d.stream(op.stream).name) << "_push(" << operand_v(p, op.args[0])
         << ");\n";
      break;
    case ir::OpKind::kCallExtern:
      os << dest() << " <= " << sanitize(op.callee) << "_result;\n";
      break;
    case ir::OpKind::kAssert:
      os << "// assert #" << op.assert_id << " (unsynthesized)\n";
      break;
    case ir::OpKind::kAssertTap:
      os << "// assertion tap #" << op.assert_id << " -> checker (wires)\n";
      break;
    case ir::OpKind::kAssertFailWire:
      os << "// assertion fail wire #" << op.assert_id << " -> collector\n";
      break;
    case ir::OpKind::kAssertCycles:
      os << "// timing assertion #" << op.assert_id << ": elapsed <= " << op.cycle_bound
         << " cycles (counter in checker)\n";
      break;
  }
}

}  // namespace

std::string emit_process(const ir::Design& d, const ir::Process& p,
                         const sched::ProcessSchedule& sched) {
  std::ostringstream os;
  os << "module " << sanitize(p.name) << " (\n  input wire clk,\n  input wire rst";
  for (const ir::StreamPort& sp : p.ports) {
    // Data flows in on input ports; the read/write-enable handshake is
    // always driven by this process.
    os << ",\n  " << (sp.is_input ? "input" : "output") << " wire [" << sp.width - 1 << ":0] "
       << sanitize(sp.name) << "_data,\n  output wire " << sanitize(sp.name)
       << (sp.is_input ? "_ren" : "_wen");
  }
  os << "\n);\n\n";

  // Global FSM state numbering: each block occupies a contiguous range.
  std::vector<unsigned> block_state_base(p.blocks.size(), 0);
  {
    unsigned base = 0;
    for (const ir::BasicBlock& b : p.blocks) {
      const sched::BlockSchedule& bs = sched.of(b.id);
      block_state_base[b.id] = base;
      base += bs.pipelined ? bs.latency : bs.num_states;
    }
  }
  // Empty (zero-state) blocks alias the first state of their jump
  // target so transitions always land on a real state.
  std::function<unsigned(ir::BlockId)> entry_state = [&](ir::BlockId id) {
    const sched::BlockSchedule& bs = sched.of(id);
    unsigned n = bs.pipelined ? bs.latency : bs.num_states;
    if (n == 0 && p.block(id).term.kind == ir::TermKind::kJump) {
      return entry_state(p.block(id).term.on_true);
    }
    return block_state_base[id];
  };

  for (const ir::Register& r : p.regs) {
    os << "  reg " << (r.is_signed ? "signed " : "") << "[" << r.width - 1 << ":0] "
       << sanitize(r.name) << ";\n";
  }
  unsigned total_states = std::max(1u, sched.total_states);
  unsigned state_bits = 1;
  while ((1u << state_bits) < total_states) ++state_bits;
  os << "  reg [" << state_bits - 1 << ":0] state;\n\n";

  os << "  always @(posedge clk) begin\n    if (rst) begin\n      state <= 0;\n"
     << "    end else begin\n      case (state)\n";

  unsigned state_base = 0;
  for (const ir::BasicBlock& b : p.blocks) {
    const sched::BlockSchedule& bs = sched.of(b.id);
    unsigned nstates = bs.pipelined ? bs.latency : bs.num_states;
    if (nstates == 0) continue;
    os << "        // block " << b.name << (bs.pipelined ? "  (pipelined, II=" : "")
       << (bs.pipelined ? std::to_string(bs.ii) + ")" : "") << "\n";
    for (unsigned s = 0; s < nstates; ++s) {
      os << "        " << state_base + s << ": begin\n";
      for (std::size_t i = 0; i < b.ops.size(); ++i) {
        unsigned op_state = i < bs.op_state.size() ? bs.op_state[i] : 0;
        if (op_state != s) continue;
        emit_op(os, d, p, b.ops[i]);
      }
      if (s + 1 < nstates) {
        os << "          state <= " << state_base + s + 1 << ";\n";
      } else {
        switch (b.term.kind) {
          case ir::TermKind::kJump:
            os << "          state <= " << entry_state(b.term.on_true) << "; // "
               << p.block(b.term.on_true).name << "\n";
            break;
          case ir::TermKind::kBranch:
            os << "          state <= " << operand_v(p, b.term.cond) << " ? "
               << entry_state(b.term.on_true) << " : " << entry_state(b.term.on_false)
               << "; // " << p.block(b.term.on_true).name << " : "
               << p.block(b.term.on_false).name << "\n";
            break;
          case ir::TermKind::kReturn:
            os << "          state <= state; // done\n";
            break;
        }
      }
      os << "        end\n";
    }
    state_base += nstates;
  }
  os << "      endcase\n    end\n  end\n\nendmodule\n";
  return os.str();
}

std::string emit_verilog(const ir::Design& d, const sched::DesignSchedule& schedule) {
  std::ostringstream os;
  os << "// Generated by hlsav for design '" << d.name << "'\n"
     << "// Processes: " << d.processes.size() << ", streams: " << d.streams.size()
     << ", memories: " << d.memories.size() << "\n\n";

  // Memories as inferred-RAM modules.
  for (const ir::Memory& m : d.memories) {
    os << "module " << sanitize(m.name) << "_mem (\n"
       << "  input wire clk,\n  input wire [" << 31 << ":0] addr,\n"
       << "  input wire [" << m.width - 1 << ":0] wdata,\n  input wire wen,\n"
       << "  output reg [" << m.width - 1 << ":0] q\n);\n"
       << "  reg [" << m.width - 1 << ":0] mem [0:" << m.size - 1 << "];\n";
    if (!m.init.empty()) {
      os << "  initial begin\n";
      for (std::size_t i = 0; i < m.init.size(); ++i) {
        os << "    mem[" << i << "] = " << m.width << "'d" << m.init[i].to_string_dec(false)
           << ";\n";
      }
      os << "  end\n";
    }
    os << "  always @(posedge clk) begin\n"
       << "    if (wen) mem[addr] <= wdata;\n    q <= mem[addr];\n  end\nendmodule\n\n";
  }

  // Stream FIFOs.
  for (const ir::Stream& s : d.streams) {
    if (s.dead) continue;
    os << "module " << sanitize(s.name) << "_fifo (\n  input wire clk,\n  input wire rst,\n"
       << "  input wire [" << s.width - 1 << ":0] din,\n  input wire wen,\n"
       << "  output wire [" << s.width - 1 << ":0] dout,\n  input wire ren,\n"
       << "  output wire empty,\n  output wire full\n);\n"
       << "  // depth " << s.depth << ", role "
       << (s.role == ir::StreamRole::kData ? "data" : "assertion") << "\n"
       << "endmodule\n\n";
  }

  for (const auto& p : d.processes) {
    const sched::ProcessSchedule* ps = schedule.find(p->name);
    HLSAV_CHECK(ps != nullptr, "emit: missing schedule");
    os << emit_process(d, *p, *ps) << "\n";
  }

  // Top level.
  os << "module " << sanitize(d.name) << "_top (\n  input wire clk,\n  input wire rst\n);\n";
  for (const auto& p : d.processes) {
    os << "  " << sanitize(p->name) << " u_" << sanitize(p->name) << " (.clk(clk), .rst(rst));\n";
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace hlsav::rtl
