#include "rtl/netlist.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace hlsav::rtl {

namespace {

/// True for ops that synthesize to pure wiring (no LUTs).
bool is_wiring(const ir::Op& op) {
  switch (op.kind) {
    case ir::OpKind::kCopy:
    case ir::OpKind::kResize:
    case ir::OpKind::kAssert:
    case ir::OpKind::kAssertTap:
    case ir::OpKind::kAssertFailWire:
    case ir::OpKind::kAssertCycles:
      return true;
    default:
      return false;
  }
}

unsigned operand_width(const ir::Process& p, const ir::Op& op) {
  if (!op.args.empty()) {
    unsigned w = 0;
    for (const ir::Operand& a : op.args) w = std::max(w, p.operand_width(a));
    return w;
  }
  return op.dest != ir::kNoReg ? p.reg(op.dest).width : 1;
}

void add_block_ops(const ir::Design& design, const ir::Process& p, const ir::BasicBlock& b,
                   const sched::BlockSchedule& bs, ProcessNetlist& out,
                   std::map<ir::RegId, unsigned>& writers) {
  // Group ops per state to find carry widths and chain depths.
  std::map<unsigned, unsigned> state_carry;
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const ir::Op& op = b.ops[i];
    if (op.dest != ir::kNoReg) ++writers[op.dest];
    if (is_wiring(op)) continue;

    FuInst fu;
    fu.kind = op.kind;
    fu.bin = op.bin;
    fu.un = op.un;
    fu.width = operand_width(p, op);
    fu.chain_depth = i < bs.op_chain_depth.size() ? bs.op_chain_depth[i] : 0;
    fu.in_pipeline = bs.pipelined;
    fu.for_assertion = op.assert_tag != ir::kNoAssertTag;
    out.fus.push_back(fu);

    out.max_chain_depth = std::max(out.max_chain_depth, fu.chain_depth);
    if (op.kind == ir::OpKind::kBin) {
      switch (op.bin) {
        case ir::BinKind::kAdd:
        case ir::BinKind::kSub:
        case ir::BinKind::kCmpLtU:
        case ir::BinKind::kCmpLtS:
        case ir::BinKind::kCmpLeU:
        case ir::BinKind::kCmpLeS: {
          // Carry chains in one state do not concatenate their ripple
          // delays (each settles in parallel off its own inputs); the
          // state's carry delay is the widest single chain.
          unsigned s = i < bs.op_state.size() ? bs.op_state[i] : 0;
          state_carry[s] = std::max(state_carry[s], fu.width);
          break;
        }
        case ir::BinKind::kMul:
          out.has_multiplier = true;
          break;
        default:
          break;
      }
    }
    (void)design;
  }
  for (const auto& [state, carry] : state_carry) {
    out.max_carry_width = std::max(out.max_carry_width, carry);
  }
}

std::uint64_t pipeline_stage_regs(const ir::Process& p, const ir::BasicBlock& header,
                                  const ir::BasicBlock& body, const sched::BlockSchedule& bs) {
  // Modulo variable expansion: every value produced at stage s and
  // consumed at stage s' > s needs (s' - s) pipeline copies of its width.
  std::uint64_t bits = 0;
  std::map<ir::RegId, unsigned> def_stage;
  auto state_of = [&](std::size_t i) -> unsigned {
    std::size_t h = header.ops.size();
    if (i < h) return i < bs.header_op_state.size() ? bs.header_op_state[i] : 0;
    std::size_t j = i - h;
    return j < bs.op_state.size() ? bs.op_state[j] : 0;
  };
  auto op_at = [&](std::size_t i) -> const ir::Op& {
    std::size_t h = header.ops.size();
    return i < h ? header.ops[i] : body.ops[i - h];
  };
  std::size_t total = header.ops.size() + body.ops.size();
  for (std::size_t i = 0; i < total; ++i) {
    const ir::Op& op = op_at(i);
    auto visit = [&](const ir::Operand& o) {
      if (!o.is_reg()) return;
      auto it = def_stage.find(o.reg);
      if (it == def_stage.end()) return;
      unsigned use = state_of(i);
      if (use > it->second) {
        bits += static_cast<std::uint64_t>(use - it->second) * p.reg(o.reg).width;
      }
    };
    for (const ir::Operand& a : op.args) visit(a);
    if (!op.pred.is_none()) visit(op.pred);
    if (op.dest != ir::kNoReg) def_stage[op.dest] = state_of(i);
  }
  return bits;
}

}  // namespace

const ProcessNetlist* Netlist::find_process(std::string_view name) const {
  for (const ProcessNetlist& p : processes) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Netlist build_netlist(const ir::Design& design, const sched::DesignSchedule& schedule) {
  Netlist n;
  n.design_name = design.name;

  for (const auto& pp : design.processes) {
    const ir::Process& p = *pp;
    const sched::ProcessSchedule* ps = schedule.find(p.name);
    HLSAV_CHECK(ps != nullptr, "netlist: no schedule for " + p.name);

    ProcessNetlist out;
    out.name = p.name;
    out.role = p.role;
    out.fsm.states = std::max(1u, ps->total_states);
    for (const ir::BasicBlock& b : p.blocks) {
      out.fsm.transitions += b.term.kind == ir::TermKind::kBranch ? 2 : 1;
    }

    std::map<ir::RegId, unsigned> writers;
    for (const ir::BasicBlock& b : p.blocks) {
      const sched::BlockSchedule& bs = ps->of(b.id);
      add_block_ops(design, p, b, bs, out, writers);
      if (bs.pipelined) {
        const ir::LoopInfo* loop = p.loop_with_body(b.id);
        HLSAV_CHECK(loop != nullptr, "pipelined block without loop info");
        out.pipeline_stage_reg_bits += pipeline_stage_regs(p, p.block(loop->header), b, bs);
      }
    }

    for (const ir::Register& r : p.regs) {
      RegInst reg;
      reg.name = r.name;
      reg.width = r.width;
      reg.fanin = std::max(1u, writers.contains(r.id) ? writers[r.id] : 0u);
      out.regs.push_back(std::move(reg));
    }
    n.processes.push_back(std::move(out));
  }

  for (const ir::Memory& m : design.memories) {
    MemInst mi;
    mi.name = m.name;
    mi.width = m.width;
    mi.size = m.size;
    mi.bits = static_cast<std::uint64_t>(m.width) * m.size;
    mi.is_rom = m.role == ir::MemRole::kRom;
    mi.is_replica = m.role == ir::MemRole::kReplica;
    n.memories.push_back(std::move(mi));
  }

  for (const ir::Stream& s : design.streams) {
    if (s.dead) continue;
    StreamInst si;
    si.name = s.name;
    si.width = s.width;
    si.depth = s.depth;
    si.role = s.role;
    si.cpu_facing = s.producer.kind == ir::StreamEndpoint::Kind::kCpu ||
                    s.consumer.kind == ir::StreamEndpoint::Kind::kCpu;
    n.streams.push_back(std::move(si));
  }
  return n;
}

std::string describe(const Netlist& n) {
  std::ostringstream os;
  os << "netlist " << n.design_name << ": " << n.processes.size() << " processes, "
     << n.memories.size() << " memories, " << n.streams.size() << " streams\n";
  for (const ProcessNetlist& p : n.processes) {
    std::uint64_t reg_bits = 0;
    for (const RegInst& r : p.regs) reg_bits += r.width;
    os << "  " << p.name << ": states=" << p.fsm.states << " fus=" << p.fus.size()
       << " reg_bits=" << reg_bits << " stage_reg_bits=" << p.pipeline_stage_reg_bits
       << " depth=" << p.max_chain_depth << " carry=" << p.max_carry_width << '\n';
  }
  return os.str();
}

}  // namespace hlsav::rtl
