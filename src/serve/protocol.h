// hlsavd wire protocol: one flat JSON object per line.
//
// A client connects to the daemon's unix socket, sends exactly one
// request line, and reads reply lines until "done" (submit) or a
// single reply (status/shutdown). The only non-line payload is the
// final report: a sized header line ({"type":"report","bytes":N})
// followed by N raw bytes, so report text never needs escaping and the
// byte-identity contract survives the wire untouched.
//
//   client -> daemon:
//     {"type":"submit","design":...,"feeds":...,...}
//     {"type":"status"}
//     {"type":"shutdown"}
//   daemon -> client (submit):
//     {"type":"accepted","job":N}
//   | {"type":"rejected","code":"unavailable","message":...}
//     {"type":"progress","job":N,"done":D,"total":T}*
//     {"type":"worker-crashed","job":N,"site":S,"worker":W,"detail":...}*
//     {"type":"quarantined","job":N,"site":S}*
//     {"type":"report","job":N,"bytes":N} + N raw bytes
//     {"type":"done","job":N,"status":"ok"|"drained"}
//
// Worker heartbeat lines (worker stdout -> supervisor) share the
// dialect: {"type":"starting","site":N} before a site runs and
// {"type":"site","site":N,"outcome":...} once it is journaled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/status.h"

namespace hlsav::serve {

/// Everything a campaign job needs, as submitted over the wire. The
/// design travels as a *path* (daemon and client share a filesystem --
/// it is a unix socket) and feeds as the CLI's spec string, so the
/// daemon compiles exactly what hlsavc would.
struct CampaignSpec {
  std::string design_path;
  /// "in=1,2,3;other=4,5" -- same values --feed takes, ';'-joined.
  std::string feeds;
  /// Assertion synthesis mode: ndebug | unoptimized | optimized.
  std::string assertions = "optimized";
  std::uint64_t seed = 1;
  std::uint64_t max_faults = 0;
  std::uint64_t max_cycles = 0;
  double site_wall_ms = 0.0;
  /// Worker subprocesses to shard the site list across; 0 = service
  /// default.
  unsigned workers = 0;
  /// Higher runs first; equal priorities stay FIFO.
  int priority = 0;
  /// Test-only fault schedule: sites whose worker dies by SIGKILL the
  /// moment the site starts (once per site, see --crash-limit).
  std::vector<std::uint32_t> crash_at;
  /// How many times each crash_at site kills its worker before running
  /// normally; >= the quarantine cap exercises quarantine.
  std::uint32_t crash_limit = 1;
  /// Test-only: sites whose worker stalls forever (heartbeat watchdog
  /// fodder), once per site.
  std::vector<std::uint32_t> stall_at;
  /// Idempotency key. Empty = daemon assigns one. Two submits with the
  /// same key are the same job: the daemon spools it once and replays
  /// the original job id (and result) to any resubmit, so a client may
  /// blindly retry across daemon restarts.
  std::string key;
  /// Per-job TTL in milliseconds (0 = none). A job still *queued* when
  /// its deadline passes ends in the terminal "deadline-expired" state
  /// -- reported, never silently dropped.
  std::uint64_t deadline_ms = 0;
};

/// Serializes `spec` as the submit request line (no trailing newline).
[[nodiscard]] std::string encode_submit(const CampaignSpec& spec);

/// Parses a submit request line. kInvalidArgument when the design path
/// is missing or a field is malformed.
[[nodiscard]] StatusOr<CampaignSpec> decode_submit(const std::string& line);

/// Parses the CLI/wire feed spec ("in=1,2,3;other=4") into the map the
/// simulator feeds from. Empty spec = no feeds.
[[nodiscard]] StatusOr<std::map<std::string, std::vector<std::uint64_t>>> parse_feed_spec(
    const std::string& spec);

// --------------------------------------------------- daemon -> client --

/// `duplicate` marks a resubmit that attached to an already-spooled job
/// instead of creating a new one (idempotency-key hit).
[[nodiscard]] std::string encode_accepted(std::uint64_t job, bool duplicate = false);
[[nodiscard]] std::string encode_rejected(const Status& status);
[[nodiscard]] std::string encode_progress(std::uint64_t job, std::uint64_t done,
                                          std::uint64_t total);
[[nodiscard]] std::string encode_worker_crashed(std::uint64_t job, std::uint32_t site, int worker,
                                                const std::string& detail);
[[nodiscard]] std::string encode_quarantined(std::uint64_t job, std::uint32_t site);
[[nodiscard]] std::string encode_report_header(std::uint64_t job, std::size_t bytes);
/// `status` is "ok", "drained" (graceful degradation kept a partial
/// result) or "error" (`message` says why).
[[nodiscard]] std::string encode_done(std::uint64_t job, const std::string& status,
                                      const std::string& message = "");

// ----------------------------------------------- watch (observability) --
//
// A watcher sends {"type":"watch","job":N} and receives snapshot-then-
// tail: one snapshot line with the job's current state, then the frame
// stream (state transitions, progress, per-site heartbeats, crashes,
// the sized report, done). Under back-pressure progress/site frames
// coalesce (latest wins); critical frames never do.

struct JobView;  // serve/hub.h

[[nodiscard]] std::string encode_watch(std::uint64_t job);
[[nodiscard]] std::string encode_snapshot(const JobView& view);
/// `state` is queued | running | merging | done | drained | error |
/// aborted -- the job-lifecycle transitions watchers never lose.
[[nodiscard]] std::string encode_state(std::uint64_t job, const std::string& state);
[[nodiscard]] std::string encode_site_started(std::uint64_t job, std::uint32_t site, int worker);
[[nodiscard]] std::string encode_site_done(std::uint64_t job, std::uint32_t site, int worker,
                                           const std::string& outcome);

// ------------------------------------------------ worker -> supervisor --

[[nodiscard]] std::string encode_worker_starting(std::uint32_t site);
[[nodiscard]] std::string encode_worker_site(std::uint32_t site, const char* outcome);

}  // namespace hlsav::serve
