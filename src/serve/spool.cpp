#include "serve/spool.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/io.h"
#include "support/jsonl.h"

namespace hlsav::serve {

namespace {

Status errno_status(const std::string& what, const std::string& path) {
  return Status::io_error(what + " '" + path + "': " + std::strerror(errno));
}

Status make_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::ok_status();
  return errno_status("cannot create directory", dir);
}

/// Parses the spool header line into `e`. False on any malformed or
/// missing field -- the caller quarantines the whole entry.
bool parse_header(const std::string& line, SpoolEntry& e) {
  std::string type;
  if (!jsonl::parse_string(line, "type", type) || type != "spool") return false;
  if (!jsonl::parse_u64(line, "job", e.job)) return false;
  if (!jsonl::parse_string(line, "key", e.key) || e.key.empty()) return false;
  if (!jsonl::parse_string(line, "submit", e.submit_line) || e.submit_line.empty()) return false;
  double prio = 0.0;
  if (!jsonl::parse_double(line, "priority", prio)) return false;
  e.priority = static_cast<int>(prio);
  if (!jsonl::parse_u64(line, "deadline_ms", e.deadline_ms)) return false;
  if (!jsonl::parse_u64(line, "submitted_unix_ms", e.submitted_unix_ms)) return false;
  return true;
}

/// Parses one state record. False = torn/corrupt: stop and truncate.
bool parse_state_record(const std::string& line, SpoolEntry& e) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::string type;
  if (!jsonl::parse_string(line, "type", type) || type != "st") return false;
  std::string state;
  if (!jsonl::parse_string(line, "state", state) || state.empty()) return false;
  e.state = std::move(state);
  e.detail.clear();
  (void)jsonl::parse_string(line, "detail", e.detail);
  return true;
}

/// Moves an unreadable entry into <dir>/quarantine/ with a sibling
/// .reason file. Best-effort by design: the scan must never fail boot.
void quarantine_entry(const std::string& dir, const std::string& path,
                      const std::string& reason) {
  std::string qdir = dir + "/quarantine";
  (void)make_dir(qdir);
  std::string name = path.substr(path.find_last_of('/') + 1);
  std::string dest = qdir + "/" + name;
  if (std::rename(path.c_str(), dest.c_str()) != 0) {
    (void)::unlink(path.c_str());  // cannot even move it: get it out of the scan
    return;
  }
  (void)write_file_atomic(dest + ".reason", reason + "\n");
}

}  // namespace

bool SpoolEntry::terminal() const { return JobSpool::state_terminal(state); }

bool JobSpool::state_terminal(const std::string& state) {
  return state == "done" || state == "error" || state == "aborted" || state == "drained" ||
         state == "deadline-expired";
}

StatusOr<JobSpool> JobSpool::open(std::string dir) {
  if (dir.empty()) return Status::invalid_argument("spool directory path is empty");
  HLSAV_RETURN_IF_ERROR(make_dir(dir));
  return JobSpool(std::move(dir));
}

std::string JobSpool::entry_path(std::uint64_t job) const {
  char name[32];
  std::snprintf(name, sizeof name, "job_%08llu.spool", static_cast<unsigned long long>(job));
  return dir_ + "/" + name;
}

Status JobSpool::record_accepted(const SpoolEntry& entry) const {
  std::string line = "{\"type\":\"spool\",\"v\":1,\"job\":" + std::to_string(entry.job);
  line += ",\"key\":";
  jsonl::append_escaped(line, entry.key);
  line += ",\"priority\":" + std::to_string(entry.priority);
  line += ",\"deadline_ms\":" + std::to_string(entry.deadline_ms);
  line += ",\"submitted_unix_ms\":" + std::to_string(entry.submitted_unix_ms);
  // The submit line nests as an escaped string: every quote inside is
  // backslash-prefixed, so flat key lookup over this line stays
  // unambiguous.
  line += ",\"submit\":";
  jsonl::append_escaped(line, entry.submit_line);
  line += "}\n";
  HLSAV_RETURN_IF_ERROR(write_file_atomic(entry_path(entry.job), line));
  // The rename made the header durable; the directory entry needs its
  // own fsync before the accept promise goes out.
  return fsync_dir(dir_);
}

Status JobSpool::record_state(std::uint64_t job, const std::string& state,
                              const std::string& detail) const {
  std::string line = "{\"type\":\"st\",\"state\":";
  jsonl::append_escaped(line, state);
  if (!detail.empty()) {
    line += ",\"detail\":";
    jsonl::append_escaped(line, detail);
  }
  line += "}\n";
  const std::string path = entry_path(job);
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return errno_status("cannot open spool entry", path);
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = errno_status("spool write failed", path);
      ::close(fd);
      return st;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // Durable before anyone acts on the transition: recovery trusts
  // every complete record.
  if (::fsync(fd) != 0) {
    Status st = errno_status("spool fsync failed", path);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::ok_status();
}

StatusOr<SpoolScan> JobSpool::scan() const {
  SpoolScan out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return Status::io_error("cannot scan spool directory '" + dir_ + "': " + ec.message());
  for (const auto& dirent : it) {
    if (!dirent.is_regular_file(ec)) continue;
    std::string path = dirent.path().string();
    std::string name = dirent.path().filename().string();
    // Only committed entries count: temp siblings from an interrupted
    // atomic write are leftovers, not jobs.
    if (name.size() < 7 || name.compare(name.size() - 6, 6, ".spool") != 0) continue;

    std::ifstream is(path, std::ios::binary);
    if (!is) {
      quarantine_entry(dir_, path, "cannot read spool entry");
      ++out.quarantined;
      continue;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string data = buf.str();
    is.close();

    std::size_t eol = data.find('\n');
    if (eol == std::string::npos) {
      quarantine_entry(dir_, path, "no complete header line");
      ++out.quarantined;
      continue;
    }
    SpoolEntry entry;
    if (!parse_header(data.substr(0, eol), entry)) {
      quarantine_entry(dir_, path, "unparseable spool header");
      ++out.quarantined;
      continue;
    }
    entry.path = path;

    // State records: stop at the first torn/corrupt one. Only the last
    // record can be torn (single writer, fsync per record), so
    // everything before the stop point is real.
    std::size_t valid = eol + 1;
    std::size_t pos = valid;
    while (pos < data.size()) {
      std::size_t next = data.find('\n', pos);
      if (next == std::string::npos) break;
      if (!parse_state_record(data.substr(pos, next - pos), entry)) break;
      pos = next + 1;
      valid = pos;
    }
    if (valid < data.size()) {
      // Drop the torn tail now so the next record_state appends cleanly.
      int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd >= 0) {
        (void)::ftruncate(fd, static_cast<off_t>(valid));
        ::close(fd);
      }
      ++out.torn_tails;
    }
    out.entries.push_back(std::move(entry));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const SpoolEntry& a, const SpoolEntry& b) { return a.job < b.job; });
  return out;
}

}  // namespace hlsav::serve
