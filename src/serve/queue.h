// Bounded priority job queue with typed back-pressure.
//
// hlsavd accepts campaign jobs faster than it can run them; the queue
// is where overload becomes an *answer* instead of an outage. A full
// queue rejects the push with kUnavailable (the client gets a typed
// "rejected" reply and exit code, never a hang or a dropped socket),
// higher-priority jobs run first, and equal priorities stay FIFO.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "support/status.h"

namespace hlsav::serve {

/// One accepted campaign submission. The client fd travels with the
/// job: whichever executor runs it streams progress and the final
/// report back over that connection.
struct Job {
  std::uint64_t id = 0;
  CampaignSpec spec;
  /// Connected client socket; the executor owns (and closes) it. -1
  /// for a job re-adopted at boot: it runs with no one watching (the
  /// spool and retained hub frames serve any later resubmit).
  int client_fd = -1;
  /// Queue-assigned arrival number; ties within a priority stay FIFO.
  std::uint64_t seq = 0;
  /// Absolute wall-clock deadline (unix ms); 0 = none. Checked when
  /// the job is dequeued: expired jobs end as "deadline-expired".
  std::uint64_t deadline_unix_ms = 0;
};

/// Thread-safe bounded priority queue. push() never blocks -- a full or
/// closed queue is a Status, which is the whole point.
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// kUnavailable when full ("queue full (cap N)") or closed ("shutting
  /// down") -- the service forwards the message verbatim as the typed
  /// rejection. With `force`, the capacity check is skipped (never the
  /// closed check): boot-time recovery re-adopts every spooled job --
  /// they were already accepted once, so the cap cannot bounce them.
  [[nodiscard]] Status push(Job job, bool force = false);

  /// Blocks until a job is available; highest priority first, FIFO
  /// within a priority. nullopt once the queue is closed (close()
  /// drains pending jobs, so there is nothing left to hand out).
  [[nodiscard]] std::optional<Job> pop();

  /// Closes the queue: every blocked pop() wakes and returns nullopt,
  /// every later push() is rejected. Returns the jobs still queued so
  /// the service can send each waiting client a typed abort.
  [[nodiscard]] std::vector<Job> close();

  [[nodiscard]] std::size_t size() const;

  /// Waiting jobs per priority, highest priority first (observability:
  /// `hlsavd status` and the metrics snapshot report queue shape, not
  /// just a total).
  [[nodiscard]] std::vector<std::pair<int, std::size_t>> depth_by_priority() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Job> jobs_;  // unsorted; pop() selects best
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace hlsav::serve
