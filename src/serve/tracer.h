// ServiceTracer: job-lifecycle spans on the daemon's wall clock.
//
// Every job gets a span tree -- queued -> run (compile / shard / merge)
// on a lifecycle track, per-site execution spans on one track per
// worker, and instant events for respawns and quarantines -- all
// timestamped in microseconds since the daemon started, so a whole
// fleet of jobs renders on one shared Perfetto timeline.
//
// Mapping: trace pid = job id (Perfetto groups each job as a process),
// tid 1 = the lifecycle track, tid 10+w = worker w's site track.
// Export is Chrome trace-event JSON via metrics::write_trace_events,
// which the in-tree `hlsavc checktrace` validator accepts.
//
// "Lock-free-enough": recording takes one mutex for a push_back --
// microseconds of critical section against events that are milliseconds
// apart (site completions, state transitions). No allocation-free
// heroics are warranted at this event rate; the lock never covers I/O.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/chrometrace.h"
#include "support/status.h"

namespace hlsav::serve {

class ServiceTracer {
 public:
  /// Track ids within one job's trace process.
  static constexpr std::uint64_t kLifecycleTid = 1;
  static constexpr std::uint64_t kWorkerTidBase = 10;

  ServiceTracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since the daemon started (the shared trace timeline).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Names the job's trace process ("job 3 clamp.c"); emitted as
  /// metadata on export.
  void name_job(std::uint64_t job, const std::string& label);

  /// Opens a span; closed by end_span with the same (job, tid, name) or
  /// force-closed at export time. A second begin_span on a worker track
  /// while one is open first closes the open span (a worker runs one
  /// site at a time; a crash can eat the matching end).
  void begin_span(std::uint64_t job, std::uint64_t tid, const std::string& name);
  void end_span(std::uint64_t job, std::uint64_t tid, const std::string& name);
  void instant(std::uint64_t job, std::uint64_t tid, const std::string& name);

  /// Chrome trace-event JSON for one job, or every job when `job` == 0.
  /// Open spans render as running up to now. kInvalidArgument when the
  /// job id is unknown (never recorded anything).
  [[nodiscard]] StatusOr<std::string> export_json(std::uint64_t job) const;

  [[nodiscard]] std::size_t span_count() const;

 private:
  struct Span {
    std::uint64_t job = 0;
    std::uint64_t tid = 0;
    std::string name;
    std::uint64_t start_us = 0;
    std::uint64_t end_us = 0;
    bool open = true;
  };
  struct Instant {
    std::uint64_t job = 0;
    std::uint64_t tid = 0;
    std::string name;
    std::uint64_t ts_us = 0;
  };

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<std::pair<std::uint64_t, std::string>> job_labels_;
};

}  // namespace hlsav::serve
