#include "serve/protocol.h"

#include <cstdlib>

#include "serve/hub.h"
#include "support/jsonl.h"
#include "support/str.h"

namespace hlsav::serve {

std::string encode_submit(const CampaignSpec& spec) {
  std::string out = "{\"type\":\"submit\",\"design\":";
  jsonl::append_escaped(out, spec.design_path);
  out += ",\"feeds\":";
  jsonl::append_escaped(out, spec.feeds);
  out += ",\"assertions\":";
  jsonl::append_escaped(out, spec.assertions);
  out += ",\"seed\":" + std::to_string(spec.seed);
  out += ",\"max_faults\":" + std::to_string(spec.max_faults);
  out += ",\"max_cycles\":" + std::to_string(spec.max_cycles);
  out += ",\"site_wall_ms\":" + jsonl::format_double(spec.site_wall_ms);
  out += ",\"workers\":" + std::to_string(spec.workers);
  out += ",\"priority\":" + std::to_string(spec.priority);
  out += ",\"crash_at\":";
  jsonl::append_u32_list(out, spec.crash_at);
  out += ",\"crash_limit\":" + std::to_string(spec.crash_limit);
  out += ",\"stall_at\":";
  jsonl::append_u32_list(out, spec.stall_at);
  out += ",\"key\":";
  jsonl::append_escaped(out, spec.key);
  out += ",\"deadline_ms\":" + std::to_string(spec.deadline_ms);
  out += '}';
  return out;
}

StatusOr<CampaignSpec> decode_submit(const std::string& line) {
  CampaignSpec spec;
  if (!jsonl::parse_string(line, "design", spec.design_path) || spec.design_path.empty()) {
    return Status::invalid_argument("submit request has no design path");
  }
  (void)jsonl::parse_string(line, "feeds", spec.feeds);
  (void)jsonl::parse_string(line, "assertions", spec.assertions);
  if (spec.assertions != "ndebug" && spec.assertions != "unoptimized" &&
      spec.assertions != "optimized") {
    return Status::invalid_argument("unknown assertions mode '" + spec.assertions + "'");
  }
  (void)jsonl::parse_u64(line, "seed", spec.seed);
  (void)jsonl::parse_u64(line, "max_faults", spec.max_faults);
  (void)jsonl::parse_u64(line, "max_cycles", spec.max_cycles);
  (void)jsonl::parse_double(line, "site_wall_ms", spec.site_wall_ms);
  std::uint64_t v = 0;
  if (jsonl::parse_u64(line, "workers", v)) spec.workers = static_cast<unsigned>(v);
  double prio = 0.0;
  if (jsonl::parse_double(line, "priority", prio)) spec.priority = static_cast<int>(prio);
  (void)jsonl::parse_u32_list(line, "crash_at", spec.crash_at);
  if (jsonl::parse_u64(line, "crash_limit", v)) {
    spec.crash_limit = static_cast<std::uint32_t>(v);
  }
  (void)jsonl::parse_u32_list(line, "stall_at", spec.stall_at);
  (void)jsonl::parse_string(line, "key", spec.key);
  (void)jsonl::parse_u64(line, "deadline_ms", spec.deadline_ms);
  return spec;
}

StatusOr<std::map<std::string, std::vector<std::uint64_t>>> parse_feed_spec(
    const std::string& spec) {
  std::map<std::string, std::vector<std::uint64_t>> feeds;
  if (spec.empty()) return feeds;
  for (const std::string& part : split(spec, ';')) {
    std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::invalid_argument("bad feed spec '" + part + "' (want stream=v1,v2,...)");
    }
    std::vector<std::uint64_t> values;
    for (const std::string& tok : split(part.substr(eq + 1), ',')) {
      if (tok.empty()) continue;
      errno = 0;
      char* end = nullptr;
      std::uint64_t value = std::strtoull(tok.c_str(), &end, 10);
      if (end != tok.c_str() + tok.size() || errno != 0) {
        return Status::invalid_argument("bad feed value '" + tok + "' in '" + part + "'");
      }
      values.push_back(value);
    }
    feeds[part.substr(0, eq)] = std::move(values);
  }
  return feeds;
}

std::string encode_accepted(std::uint64_t job, bool duplicate) {
  std::string out = "{\"type\":\"accepted\",\"job\":" + std::to_string(job);
  if (duplicate) out += ",\"duplicate\":true";
  out += '}';
  return out;
}

std::string encode_rejected(const Status& status) {
  std::string out = "{\"type\":\"rejected\",\"code\":";
  jsonl::append_escaped(out, status_code_name(status.code()));
  out += ",\"message\":";
  jsonl::append_escaped(out, status.message());
  out += '}';
  return out;
}

std::string encode_progress(std::uint64_t job, std::uint64_t done, std::uint64_t total) {
  return "{\"type\":\"progress\",\"job\":" + std::to_string(job) +
         ",\"done\":" + std::to_string(done) + ",\"total\":" + std::to_string(total) + "}";
}

std::string encode_worker_crashed(std::uint64_t job, std::uint32_t site, int worker,
                                  const std::string& detail) {
  std::string out = "{\"type\":\"worker-crashed\",\"job\":" + std::to_string(job) +
                    ",\"site\":" + std::to_string(site) +
                    ",\"worker\":" + std::to_string(worker) + ",\"detail\":";
  jsonl::append_escaped(out, detail);
  out += '}';
  return out;
}

std::string encode_quarantined(std::uint64_t job, std::uint32_t site) {
  return "{\"type\":\"quarantined\",\"job\":" + std::to_string(job) +
         ",\"site\":" + std::to_string(site) + "}";
}

std::string encode_report_header(std::uint64_t job, std::size_t bytes) {
  return "{\"type\":\"report\",\"job\":" + std::to_string(job) +
         ",\"bytes\":" + std::to_string(bytes) + "}";
}

std::string encode_done(std::uint64_t job, const std::string& status,
                        const std::string& message) {
  std::string out = "{\"type\":\"done\",\"job\":" + std::to_string(job) + ",\"status\":";
  jsonl::append_escaped(out, status);
  if (!message.empty()) {
    out += ",\"message\":";
    jsonl::append_escaped(out, message);
  }
  out += '}';
  return out;
}

std::string encode_watch(std::uint64_t job) {
  return "{\"type\":\"watch\",\"job\":" + std::to_string(job) + "}";
}

std::string encode_snapshot(const JobView& view) {
  std::string out = "{\"type\":\"snapshot\",\"job\":" + std::to_string(view.id) + ",\"state\":";
  jsonl::append_escaped(out, view.state);
  out += ",\"design\":";
  jsonl::append_escaped(out, view.design);
  out += ",\"priority\":" + std::to_string(view.priority);
  out += ",\"done\":" + std::to_string(view.done);
  out += ",\"total\":" + std::to_string(view.total);
  out += ",\"respawns\":" + std::to_string(view.respawns);
  out += ",\"quarantined\":" + std::to_string(view.quarantined);
  out += '}';
  return out;
}

std::string encode_state(std::uint64_t job, const std::string& state) {
  std::string out = "{\"type\":\"state\",\"job\":" + std::to_string(job) + ",\"state\":";
  jsonl::append_escaped(out, state);
  out += '}';
  return out;
}

std::string encode_site_started(std::uint64_t job, std::uint32_t site, int worker) {
  return "{\"type\":\"site-started\",\"job\":" + std::to_string(job) +
         ",\"site\":" + std::to_string(site) + ",\"worker\":" + std::to_string(worker) + "}";
}

std::string encode_site_done(std::uint64_t job, std::uint32_t site, int worker,
                             const std::string& outcome) {
  std::string out = "{\"type\":\"site-done\",\"job\":" + std::to_string(job) +
                    ",\"site\":" + std::to_string(site) +
                    ",\"worker\":" + std::to_string(worker) + ",\"outcome\":";
  jsonl::append_escaped(out, outcome);
  out += '}';
  return out;
}

std::string encode_worker_starting(std::uint32_t site) {
  return "{\"type\":\"starting\",\"site\":" + std::to_string(site) + "}";
}

std::string encode_worker_site(std::uint32_t site, const char* outcome) {
  std::string out = "{\"type\":\"site\",\"site\":" + std::to_string(site) + ",\"outcome\":";
  jsonl::append_escaped(out, outcome);
  out += '}';
  return out;
}

}  // namespace hlsav::serve
