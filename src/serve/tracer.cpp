#include "serve/tracer.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace hlsav::serve {

std::uint64_t ServiceTracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            epoch_)
          .count());
}

void ServiceTracer::name_job(std::uint64_t job, const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, l] : job_labels_) {
    if (id == job) {
      l = label;
      return;
    }
  }
  job_labels_.emplace_back(job, label);
}

void ServiceTracer::begin_span(std::uint64_t job, std::uint64_t tid, const std::string& name) {
  std::uint64_t now = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  if (tid >= kWorkerTidBase) {
    // One site at a time per worker: an open span on this track means a
    // crash ate the end event -- close it at the new span's start.
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
      if (it->open && it->job == job && it->tid == tid) {
        it->open = false;
        it->end_us = now;
        break;
      }
    }
  }
  Span s;
  s.job = job;
  s.tid = tid;
  s.name = name;
  s.start_us = now;
  spans_.push_back(std::move(s));
}

void ServiceTracer::end_span(std::uint64_t job, std::uint64_t tid, const std::string& name) {
  std::uint64_t now = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->open && it->job == job && it->tid == tid && it->name == name) {
      it->open = false;
      it->end_us = now;
      return;
    }
  }
}

void ServiceTracer::instant(std::uint64_t job, std::uint64_t tid, const std::string& name) {
  std::uint64_t now = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  Instant in;
  in.job = job;
  in.tid = tid;
  in.name = name;
  in.ts_us = now;
  instants_.push_back(std::move(in));
}

StatusOr<std::string> ServiceTracer::export_json(std::uint64_t job) const {
  std::uint64_t now = now_us();
  std::vector<metrics::TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto wanted = [&](std::uint64_t j) { return job == 0 || j == job; };
    bool known = false;
    std::set<std::pair<std::uint64_t, std::uint64_t>> tracks;
    for (const auto& [id, label] : job_labels_) {
      if (!wanted(id)) continue;
      known = true;
      metrics::TraceEvent m;
      m.ph = 'M';
      m.pid = id;
      m.tid = kLifecycleTid;
      m.name = "process_name";
      m.label = label;
      events.push_back(std::move(m));
    }
    for (const Span& s : spans_) {
      if (!wanted(s.job)) continue;
      known = true;
      tracks.insert({s.job, s.tid});
      metrics::TraceEvent e;
      e.ph = 'X';
      e.pid = s.job;
      e.tid = s.tid;
      e.name = s.name;
      e.ts_us = s.start_us;
      e.dur_us = (s.open ? now : s.end_us) - s.start_us;
      events.push_back(std::move(e));
    }
    for (const Instant& in : instants_) {
      if (!wanted(in.job)) continue;
      known = true;
      tracks.insert({in.job, in.tid});
      metrics::TraceEvent e;
      e.ph = 'i';
      e.pid = in.job;
      e.tid = in.tid;
      e.name = in.name;
      e.ts_us = in.ts_us;
      events.push_back(std::move(e));
    }
    if (!known) {
      return Status::invalid_argument("no trace recorded for job " + std::to_string(job));
    }
    for (const auto& [j, tid] : tracks) {
      metrics::TraceEvent m;
      m.ph = 'M';
      m.pid = j;
      m.tid = tid;
      m.name = "thread_name";
      m.label = tid == kLifecycleTid
                    ? "lifecycle"
                    : "worker " + std::to_string(tid - kWorkerTidBase);
      events.push_back(std::move(m));
    }
  }
  std::ostringstream os;
  metrics::write_trace_events(events, os);
  return os.str();
}

std::size_t ServiceTracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

}  // namespace hlsav::serve
