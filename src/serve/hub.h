// ProgressHub: fan-out of per-job progress frames to N watchers.
//
// Every accepted job gets a channel. The supervisor's executor thread
// *publishes* frames (progress, site heartbeats, crashes, state
// transitions, the final report, done) into the channel; any number of
// watcher threads *subscribe* and drain their own bounded buffer.
// The contract that makes watchers safe to attach to a production
// campaign:
//
//  * publish() never blocks and never does I/O -- a watcher that stops
//    reading can never stall the campaign (sends happen on the watcher
//    thread, against its own buffer).
//  * Per-subscriber buffers are bounded: once a buffer holds
//    `coalesce_after` frames, a new kProgress/kSite frame *replaces*
//    the newest queued frame of the same class instead of growing the
//    buffer (progress is a level, not an edge -- the latest value is
//    the only one that matters).
//  * kCritical frames (state transitions, worker-crashed, quarantined,
//    the report, done) always append and are never coalesced: their
//    count per job is bounded, and a slow watcher still sees every one
//    of them byte-identically.
//  * Late subscribers get snapshot-then-tail: the channel's current
//    JobView as a snapshot frame, then -- if the job already finished --
//    the retained terminal frames (report + done), then whatever is
//    published next.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/status.h"

namespace hlsav::serve {

/// What a late subscriber learns about a job the moment it attaches.
struct JobView {
  std::uint64_t id = 0;
  int priority = 0;
  std::string design;
  /// queued | running | merging | done | drained | error | aborted.
  std::string state = "queued";
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  unsigned respawns = 0;
  std::uint64_t quarantined = 0;
};

/// One frame a watcher receives: a protocol line, plus raw payload
/// bytes for the sized report frame (sent verbatim after the line).
struct WatchFrame {
  enum class Cls : std::uint8_t {
    kCritical,  // state/crash/quarantine/report/done: never coalesced
    kProgress,  // done/total tick: latest value wins under back-pressure
    kSite,      // per-site start/finish heartbeat: same coalescing rule
  };
  Cls cls = Cls::kCritical;
  std::string line;
  std::string payload;  // non-empty only for the report frame
};

class ProgressHub {
 public:
  /// Buffer size at which kProgress/kSite frames start coalescing.
  explicit ProgressHub(std::size_t coalesce_after = 64)
      : coalesce_after_(coalesce_after) {}

  /// Registers a job the moment it is accepted (state "queued").
  void open_job(const JobView& view);
  /// Re-arms a finished job's channel for another run (idempotent
  /// resubmit of a terminally-failed job): fresh view, closed flag and
  /// retained terminal frames cleared, stale subscribers detached.
  void reset_job(const JobView& view);
  /// Read-modify-write of a job's snapshot view under the hub lock;
  /// no-op for unknown jobs.
  void update_job(std::uint64_t job, const std::function<void(JobView&)>& mutate);
  [[nodiscard]] std::optional<JobView> view_of(std::uint64_t job) const;

  /// Fans `frame` out to every subscriber of `job` and -- for critical
  /// report/done frames -- retains it for late subscribers. Never
  /// blocks on subscriber I/O (there is none here by construction).
  void publish(std::uint64_t job, WatchFrame frame);
  /// Marks the job finished: subscribers drain their buffers and then
  /// see end-of-stream; later subscribers get snapshot + retained
  /// terminal frames. The channel itself is kept until the hub dies so
  /// `watch` on a completed job keeps working.
  void close_job(std::uint64_t job);

  class Subscription;
  /// Attaches to a job; kInvalidArgument for ids never opened.
  [[nodiscard]] StatusOr<std::shared_ptr<Subscription>> subscribe(std::uint64_t job);
  /// Next frame for `sub`, waiting up to `timeout_ms`. nullopt +
  /// finished()==true: the stream ended. nullopt + finished()==false:
  /// timeout, poll your stop flag and call again.
  [[nodiscard]] std::optional<WatchFrame> next(const std::shared_ptr<Subscription>& sub,
                                               int timeout_ms);
  void unsubscribe(const std::shared_ptr<Subscription>& sub);

  /// Daemon shutdown: closes every channel so blocked next() calls wake
  /// and watcher threads can exit.
  void shutdown();

  /// Total frames replaced by coalescing across all subscribers so far.
  [[nodiscard]] std::uint64_t coalesced_total() const;
  [[nodiscard]] std::uint64_t published_total() const;
  [[nodiscard]] std::size_t subscriber_count() const;

  class Subscription {
   public:
    [[nodiscard]] bool finished() const { return finished_; }
    /// Frames this subscriber lost to coalescing (each replacement is
    /// one overwritten frame).
    [[nodiscard]] std::uint64_t coalesced() const { return coalesced_; }

   private:
    friend class ProgressHub;
    std::uint64_t job = 0;
    std::deque<WatchFrame> buf;
    std::uint64_t coalesced_ = 0;
    bool detached = false;
    bool finished_ = false;  // channel closed and buffer drained
  };

 private:
  struct Channel {
    JobView view;
    bool closed = false;
    std::vector<std::shared_ptr<Subscription>> subs;
    /// Terminal critical frames replayed to late subscribers.
    std::vector<WatchFrame> retained;
  };

  void push_frame(Channel& ch, Subscription& sub, WatchFrame frame);

  const std::size_t coalesce_after_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Channel> channels_;
  std::uint64_t coalesced_total_ = 0;
  std::uint64_t published_total_ = 0;
};

}  // namespace hlsav::serve
