// Client side of the hlsavd protocol (the `hlsavd submit/status/
// shutdown` subcommands live on top of these).
#pragma once

#include <string>

#include "serve/protocol.h"
#include "support/status.h"

namespace hlsav::serve {

struct SubmitOptions {
  /// Where the final report bytes go; empty = stdout.
  std::string out_path;
  /// Suppress progress narration on stderr.
  bool quiet = false;
  /// Extra attempts after the first on retryable failures (connect
  /// refused, typed kUnavailable rejection, connection lost
  /// mid-stream). 0 = single shot. Retrying auto-assigns an
  /// idempotency key when the spec has none, so a blind resubmit can
  /// never double-run the job.
  int retries = 0;
  /// Capped exponential backoff between attempts: the delay before
  /// attempt k is min(retry_base_ms << (k-1), retry_cap_ms), jittered
  /// to the upper half of the window so simultaneous retriers spread.
  std::uint64_t retry_base_ms = 200;
  std::uint64_t retry_cap_ms = 5000;
};

/// Submits `spec` and streams the job to completion: progress lines go
/// to stderr (unless quiet), the final report's bytes to out_path
/// (empty = stdout). Returns the process exit code:
///   0 = done ok;  1 = job or transport error;  6 = drained (daemon
///   shut down mid-job; journals are resumable);  7 = rejected by
///   back-pressure or validation (typed, resubmit later);  8 = the
///   job's --deadline-ms passed while it was still queued.
[[nodiscard]] int submit_job(const std::string& socket_path, CampaignSpec spec,
                             const SubmitOptions& opt);

/// Single-shot convenience overload (the historic signature).
[[nodiscard]] int submit_job(const std::string& socket_path, const CampaignSpec& spec,
                             const std::string& out_path, bool quiet);

/// Daemon status. The first line keeps the historic aggregate form
/// ("queued=N running=N completed=N rejected=N"); when the daemon has
/// per-priority queue depth or per-worker respawn/quarantine tallies,
/// they follow as indented lines.
[[nodiscard]] StatusOr<std::string> query_status(const std::string& socket_path);

/// Asks the daemon to shut down gracefully.
[[nodiscard]] Status request_shutdown(const std::string& socket_path);

// ----------------------------------------------------- observability --

struct WatchOptions {
  /// Keep retrying an unknown job id for this long (a watcher racing
  /// its own submit); 0 = fail immediately.
  int wait_ms = 0;
  /// Test hook: sleep this long before reading any frame -- a
  /// deliberately slow subscriber for back-pressure coverage.
  int stall_reads_ms = 0;
  /// Where the job's final report bytes go; empty = stdout.
  std::string out_path;
  /// Suppress per-frame stderr narration.
  bool quiet = false;
};

/// Attaches to a running (or finished) job and streams its frames:
/// snapshot, state transitions, progress, per-site heartbeats, worker
/// crashes, the final report, done. Exit codes match submit_job:
///   0 done ok; 1 error/unknown job; 6 job drained; 7 rejected.
[[nodiscard]] int watch_job(const std::string& socket_path, std::uint64_t job,
                            const WatchOptions& opt);

/// One-shot metrics snapshot: the daemon's raw one-line JSON
/// ({"type":"metrics",...,"counters":{...},"histograms":{...}}).
[[nodiscard]] StatusOr<std::string> query_metrics(const std::string& socket_path);

/// Chrome trace-event JSON of one job's span tree (job 0 = every job).
[[nodiscard]] StatusOr<std::string> fetch_trace(const std::string& socket_path,
                                                std::uint64_t job);

}  // namespace hlsav::serve
