// Client side of the hlsavd protocol (the `hlsavd submit/status/
// shutdown` subcommands live on top of these).
#pragma once

#include <string>

#include "serve/protocol.h"
#include "support/status.h"

namespace hlsav::serve {

/// Submits `spec` and streams the job to completion: progress lines go
/// to stderr (unless `quiet`), the final report's bytes to `out_path`
/// (empty = stdout). Returns the process exit code:
///   0 = done ok;  1 = job or transport error;  6 = drained (daemon
///   shut down mid-job; journals are resumable);  7 = rejected by
///   back-pressure or validation (typed, resubmit later).
[[nodiscard]] int submit_job(const std::string& socket_path, const CampaignSpec& spec,
                             const std::string& out_path, bool quiet);

/// One-line daemon status ("queued=N running=N completed=N rejected=N").
[[nodiscard]] StatusOr<std::string> query_status(const std::string& socket_path);

/// Asks the daemon to shut down gracefully.
[[nodiscard]] Status request_shutdown(const std::string& socket_path);

}  // namespace hlsav::serve
