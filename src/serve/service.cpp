#include "serve/service.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

#include "serve/shard.h"
#include "support/jsonl.h"
#include "support/socket.h"

namespace hlsav::serve {

namespace {

Status ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::ok_status();
  return Status::io_error("cannot create directory '" + path + "'");
}

}  // namespace

StatusOr<std::unique_ptr<Service>> Service::start(ServiceOptions opt) {
  if (opt.worker_binary.empty()) {
    return Status::invalid_argument("service needs the hlsavd binary path for workers");
  }
  HLSAV_RETURN_IF_ERROR(ensure_dir(opt.work_dir));
  StatusOr<int> listen_fd = unix_listen(opt.socket_path);
  HLSAV_RETURN_IF_ERROR(listen_fd.status());
  return std::unique_ptr<Service>(new Service(std::move(opt), *listen_fd));
}

Service::~Service() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Service::serve() {
  executors_.reserve(opt_.executors);
  for (unsigned i = 0; i < opt_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }

  Status accept_status;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    StatusOr<int> fd = unix_accept(listen_fd_, /*timeout_ms=*/100);
    if (!fd.ok()) {
      accept_status = fd.status();
      break;
    }
    if (*fd < 0) continue;  // timeout: poll the shutdown flag again
    handle_connection(*fd);
  }

  // Graceful degradation: running jobs drain (workers flush journals
  // and exit; clients get a "drained" result), queued jobs get a typed
  // abort so no client is left hanging on a silent close.
  drain_.store(true, std::memory_order_relaxed);
  for (Job& job : queue_.close()) {
    (void)send_line(job.client_fd, encode_rejected(Status::unavailable(
                                       "service shutting down before the job started; "
                                       "resubmit when it is back")));
    ::close(job.client_fd);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_sub(1, std::memory_order_relaxed);
  }
  for (std::thread& t : executors_) t.join();
  executors_.clear();
  ::unlink(opt_.socket_path.c_str());
  return accept_status;
}

void Service::handle_connection(int fd) {
  LineReader reader(fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/2000);
  if (!line.ok()) {
    ::close(fd);
    return;
  }
  std::string type;
  if (!jsonl::parse_string(*line, "type", type)) {
    (void)send_line(fd, encode_rejected(Status::invalid_argument("request has no type")));
    ::close(fd);
    return;
  }
  if (type == "status") {
    std::string reply = "{\"type\":\"status\",\"queued\":" +
                        std::to_string(queued_.load(std::memory_order_relaxed)) +
                        ",\"running\":" +
                        std::to_string(running_.load(std::memory_order_relaxed)) +
                        ",\"completed\":" +
                        std::to_string(completed_.load(std::memory_order_relaxed)) +
                        ",\"rejected\":" +
                        std::to_string(rejected_.load(std::memory_order_relaxed)) + "}";
    (void)send_line(fd, reply);
    ::close(fd);
    return;
  }
  if (type == "shutdown") {
    (void)send_line(fd, "{\"type\":\"ok\"}");
    ::close(fd);
    shutdown_.store(true, std::memory_order_relaxed);
    return;
  }
  if (type != "submit") {
    (void)send_line(fd, encode_rejected(Status::invalid_argument("unknown request type '" +
                                                                 type + "'")));
    ::close(fd);
    return;
  }
  StatusOr<CampaignSpec> spec = decode_submit(*line);
  if (!spec.ok()) {
    (void)send_line(fd, encode_rejected(spec.status()));
    ::close(fd);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Job job;
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job.spec = std::move(*spec);
  job.client_fd = fd;
  std::uint64_t id = job.id;
  Status pushed = queue_.push(std::move(job));
  if (!pushed.ok()) {
    // Typed back-pressure: the client learns *why* (queue full vs
    // shutting down) and can retry later; nothing is silently dropped.
    (void)send_line(fd, encode_rejected(pushed));
    ::close(fd);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  (void)send_line(fd, encode_accepted(id));
}

void Service::executor_loop() {
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job.has_value()) return;
    queued_.fetch_sub(1, std::memory_order_relaxed);
    running_.fetch_add(1, std::memory_order_relaxed);
    run_job(std::move(*job));
  }
}

void Service::run_job(Job job) {
  // Counters move *before* the done line goes out: a client that reads
  // "done" and immediately queries status must see itself counted.
  auto finish = [&](const std::string& done_line) {
    running_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    (void)send_line(job.client_fd, done_line);
    ::close(job.client_fd);
  };

  std::string job_dir = opt_.work_dir + "/job_" + std::to_string(job.id);
  Status dir_ok = ensure_dir(job_dir);
  if (!dir_ok.ok()) {
    finish(encode_done(job.id, "error", dir_ok.to_string()));
    return;
  }

  SupervisorOptions sup;
  sup.worker_binary = opt_.worker_binary;
  sup.job_dir = job_dir;
  sup.workers = job.spec.workers != 0 ? job.spec.workers : opt_.default_workers;
  sup.quarantine_cap = opt_.quarantine_cap;
  sup.backoff_base_ms = opt_.backoff_base_ms;
  sup.backoff_cap_ms = opt_.backoff_cap_ms;
  sup.heartbeat_timeout_ms = opt_.heartbeat_timeout_ms;
  sup.drain = &drain_;
  // A client that vanished mid-job must not kill the job (its journals
  // are still valuable); sends just stop.
  bool client_gone = false;
  auto send = [&](const std::string& line) {
    if (client_gone) return;
    if (!send_line(job.client_fd, line).ok()) client_gone = true;
  };
  sup.event_sink = [&](const SupervisorEvent& e) {
    switch (e.kind) {
      case SupervisorEvent::Kind::kProgress:
        send(encode_progress(job.id, e.done, e.total));
        break;
      case SupervisorEvent::Kind::kWorkerCrashed:
        send(encode_worker_crashed(job.id, e.site, e.worker, e.detail));
        break;
      case SupervisorEvent::Kind::kQuarantined:
        send(encode_quarantined(job.id, e.site));
        break;
    }
  };

  StatusOr<SupervisedResult> result = run_sharded_campaign(job.spec, sup);
  if (!result.ok()) {
    finish(encode_done(job.id, "error", result.status().to_string()));
    return;
  }
  if (!result->rendered.empty()) {
    send(encode_report_header(job.id, result->rendered.size()));
    if (!client_gone && !send_bytes(job.client_fd, result->rendered).ok()) client_gone = true;
  }
  finish(encode_done(job.id, result->drained ? "drained" : "ok"));
}

}  // namespace hlsav::serve
