#include "serve/service.h"

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <fstream>
#include <iterator>

#include "serve/shard.h"
#include "support/io.h"
#include "support/jsonl.h"
#include "support/socket.h"

namespace hlsav::serve {

namespace {

Status ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::ok_status();
  return Status::io_error("cannot create directory '" + path + "'");
}

std::string basename_of(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::uint64_t unix_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

StatusOr<std::unique_ptr<Service>> Service::start(ServiceOptions opt) {
  if (opt.worker_binary.empty()) {
    return Status::invalid_argument("service needs the hlsavd binary path for workers");
  }
  HLSAV_RETURN_IF_ERROR(ensure_dir(opt.work_dir));
  StatusOr<int> listen_fd = unix_listen(opt.socket_path);
  HLSAV_RETURN_IF_ERROR(listen_fd.status());
  auto service = std::unique_ptr<Service>(new Service(std::move(opt), *listen_fd));
  service->started_unix_ms_ = unix_ms();
  service->incarnation_ = std::to_string(service->started_unix_ms_) + "-" +
                          std::to_string(static_cast<long>(::getpid()));
  if (!service->opt_.spool_dir.empty()) {
    StatusOr<JobSpool> spool = JobSpool::open(service->opt_.spool_dir);
    if (!spool.ok()) {
      ::close(service->listen_fd_);
      service->listen_fd_ = -1;
      ::unlink(service->opt_.socket_path.c_str());
      return spool.status();
    }
    service->spool_.emplace(std::move(*spool));
  }
  if (!service->opt_.events_out.empty()) {
    Status opened = service->events_.open(service->opt_.events_out);
    if (!opened.ok()) {
      ::close(service->listen_fd_);
      service->listen_fd_ = -1;
      ::unlink(service->opt_.socket_path.c_str());
      return opened;
    }
  }
  return service;
}

Service::~Service() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Service::init_metrics() {
  counters_.jobs_submitted = registry_.counter("jobs_submitted");
  counters_.jobs_rejected = registry_.counter("jobs_rejected");
  counters_.jobs_completed = registry_.counter("jobs_completed");
  counters_.jobs_drained = registry_.counter("jobs_drained");
  counters_.jobs_failed = registry_.counter("jobs_failed");
  counters_.worker_respawns = registry_.counter("worker_respawns");
  counters_.sites_quarantined = registry_.counter("sites_quarantined");
  counters_.sites_done = registry_.counter("sites_done");
  counters_.journal_bytes = registry_.counter("journal_bytes");
  counters_.watch_subscribers = registry_.counter("watch_subscribers");
  counters_.watch_frames_sent = registry_.counter("watch_frames_sent");
  counters_.watch_frames_coalesced = registry_.counter("watch_frames_coalesced");
  counters_.jobs_recovered = registry_.counter("jobs_recovered");
  counters_.jobs_duplicate = registry_.counter("jobs_duplicate");
  counters_.jobs_deadline_expired = registry_.counter("jobs_deadline_expired");
  counters_.spool_quarantined = registry_.counter("spool_quarantined");
  counters_.job_wall_ms = registry_.histogram("job_wall_ms");
}

void Service::log_event(const std::string& name, const std::vector<EventLog::Field>& fields) {
  events_.record(tracer_.now_us(), name, fields);
}

std::string Service::depths_field() {
  std::string out;
  for (const auto& [priority, depth] : queue_.depth_by_priority()) {
    if (!out.empty()) out += ';';
    out += std::to_string(priority) + ":" + std::to_string(depth);
  }
  return out;
}

std::string Service::workers_field() {
  std::string out;
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (std::size_t w = 0; w < worker_stats_.size(); ++w) {
    if (!out.empty()) out += ';';
    out += std::to_string(w) + ":" + std::to_string(worker_stats_[w].first) + "/" +
           std::to_string(worker_stats_[w].second);
  }
  return out;
}

std::string Service::status_reply() {
  std::string reply = "{\"type\":\"status\",\"queued\":" +
                      std::to_string(queued_.load(std::memory_order_relaxed)) +
                      ",\"running\":" +
                      std::to_string(running_.load(std::memory_order_relaxed)) +
                      ",\"completed\":" +
                      std::to_string(completed_.load(std::memory_order_relaxed)) +
                      ",\"rejected\":" +
                      std::to_string(rejected_.load(std::memory_order_relaxed)) +
                      ",\"incarnation\":";
  jsonl::append_escaped(reply, incarnation_);
  reply += ",\"started_unix_ms\":" + std::to_string(started_unix_ms_);
  reply += ",\"uptime_ms\":" +
           jsonl::format_double(static_cast<double>(tracer_.now_us()) / 1000.0);
  reply += ",\"recovered\":" + std::to_string(recovered_.load(std::memory_order_relaxed));
  reply += ",\"depths\":";
  jsonl::append_escaped(reply, depths_field());
  reply += ",\"workers\":";
  jsonl::append_escaped(reply, workers_field());
  reply += '}';
  return reply;
}

std::string Service::metrics_snapshot() {
  std::uint64_t uptime_us = tracer_.now_us();
  std::string out = "{\"type\":\"metrics\",\"uptime_ms\":" +
                    jsonl::format_double(static_cast<double>(uptime_us) / 1000.0);
  out += ",\"jobs_queued_now\":" + std::to_string(queued_.load(std::memory_order_relaxed));
  out += ",\"jobs_running_now\":" + std::to_string(running_.load(std::memory_order_relaxed));
  out += ",\"queue_depths\":";
  jsonl::append_escaped(out, depths_field());
  out += ",\"worker_tallies\":";
  jsonl::append_escaped(out, workers_field());
  out += ",\"watch_subscribers_now\":" + std::to_string(hub_.subscriber_count());
  out += ",\"events_logged\":" + std::to_string(events_.sequence());
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    double uptime_s = static_cast<double>(uptime_us) / 1e6;
    double rate = uptime_s > 0
                      ? static_cast<double>(counters_.sites_done->value) / uptime_s
                      : 0.0;
    out += ",\"sites_per_sec\":" + jsonl::format_double(rate);
    out += "," + registry_.to_json();
  }
  out += '}';
  return out;
}

Status Service::serve() {
  log_event("daemon-start", {EventLog::Field::str("socket", opt_.socket_path),
                             EventLog::Field::str("incarnation", incarnation_)});
  // Re-adopt spooled jobs *before* the executors start: recovered work
  // is already in the queue when the first pop happens, so boot order
  // (recovered first, FIFO within priority) is deterministic.
  HLSAV_RETURN_IF_ERROR(recover_jobs());
  executors_.reserve(opt_.executors);
  for (unsigned i = 0; i < opt_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }

  Status accept_status;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    StatusOr<int> fd = unix_accept(listen_fd_, /*timeout_ms=*/100);
    if (!fd.ok()) {
      accept_status = fd.status();
      break;
    }
    if (*fd < 0) continue;  // timeout: poll the shutdown flag again
    handle_connection(*fd);
  }

  // Graceful degradation: running jobs drain (workers flush journals
  // and exit; clients get a "drained" result), queued jobs get a typed
  // abort so no client is left hanging on a silent close.
  drain_.store(true, std::memory_order_relaxed);
  for (Job& job : queue_.close()) {
    // The spool remembers the abort: a restarted daemon will not
    // re-run the job unprompted, but a resubmit with the same key
    // requeues it (resuming any journaled progress).
    record_terminal(job, "aborted", "daemon shutdown before the job started");
    if (job.client_fd >= 0) {
      (void)send_line(job.client_fd, encode_rejected(Status::unavailable(
                                         "service shutting down before the job started; "
                                         "resubmit when it is back")));
      ::close(job.client_fd);
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      counters_.jobs_rejected->add();
    }
    // Watchers of the aborted job see the transition and end-of-stream
    // rather than a silent hang.
    hub_.update_job(job.id, [](JobView& v) { v.state = "aborted"; });
    WatchFrame f;
    f.cls = WatchFrame::Cls::kCritical;
    f.line = encode_state(job.id, "aborted");
    hub_.publish(job.id, std::move(f));
    WatchFrame d;
    d.cls = WatchFrame::Cls::kCritical;
    d.line = encode_done(job.id, "error", "aborted by daemon shutdown before starting");
    hub_.publish(job.id, std::move(d));
    hub_.close_job(job.id);
    tracer_.end_span(job.id, ServiceTracer::kLifecycleTid, "queued");
    log_event("job-aborted", {EventLog::Field::num("job", job.id)});
  }
  for (std::thread& t : executors_) t.join();
  executors_.clear();

  // Wake every watcher (hub close + stop flag interrupts in-flight
  // sends to stalled readers) and join their threads.
  stopping_.store(true, std::memory_order_relaxed);
  hub_.shutdown();
  {
    std::lock_guard<std::mutex> lock(watchers_mu_);
    for (std::thread& t : watchers_) t.join();
    watchers_.clear();
  }
  log_event("daemon-stop",
            {EventLog::Field::num("jobs_completed", completed_.load(std::memory_order_relaxed)),
             EventLog::Field::num("jobs_rejected", rejected_.load(std::memory_order_relaxed))});
  events_.close();
  ::unlink(opt_.socket_path.c_str());
  return accept_status;
}

void Service::handle_connection(int fd) {
  LineReader reader(fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/2000);
  if (!line.ok()) {
    ::close(fd);
    return;
  }
  std::string type;
  if (!jsonl::parse_string(*line, "type", type)) {
    (void)send_line(fd, encode_rejected(Status::invalid_argument("request has no type")));
    ::close(fd);
    return;
  }
  if (type == "status") {
    (void)send_line(fd, status_reply());
    ::close(fd);
    return;
  }
  if (type == "metrics") {
    (void)send_line(fd, metrics_snapshot());
    ::close(fd);
    return;
  }
  if (type == "trace") {
    std::uint64_t job = 0;
    (void)jsonl::parse_u64(*line, "job", job);
    StatusOr<std::string> json = tracer_.export_json(job);
    if (!json.ok()) {
      (void)send_line(fd, encode_rejected(json.status()));
    } else {
      std::string header = "{\"type\":\"trace\",\"job\":" + std::to_string(job) +
                           ",\"bytes\":" + std::to_string(json->size()) + "}";
      if (send_line(fd, header).ok()) (void)send_bytes(fd, *json);
    }
    ::close(fd);
    return;
  }
  if (type == "watch") {
    std::uint64_t job = 0;
    if (!jsonl::parse_u64(*line, "job", job)) {
      (void)send_line(fd, encode_rejected(Status::invalid_argument("watch request has no job")));
      ::close(fd);
      return;
    }
    // The subscription lives on its own thread: the accept loop must
    // never block behind one watcher's socket buffer.
    std::lock_guard<std::mutex> lock(watchers_mu_);
    watchers_.emplace_back([this, fd, job] { watch_connection(fd, job); });
    return;
  }
  if (type == "shutdown") {
    (void)send_line(fd, "{\"type\":\"ok\"}");
    ::close(fd);
    shutdown_.store(true, std::memory_order_relaxed);
    return;
  }
  if (type != "submit") {
    (void)send_line(fd, encode_rejected(Status::invalid_argument("unknown request type '" +
                                                                 type + "'")));
    ::close(fd);
    return;
  }
  handle_submit(fd, *line);
}

void Service::maybe_die_at(const std::string& phase) {
  if (opt_.die_at.empty() || opt_.die_at != phase) return;
  std::string token = opt_.work_dir + "/die_" + phase + ".token";
  // The token is the memory of having died: present means this
  // incarnation already paid the crash, so it sails through.
  if (::access(token.c_str(), F_OK) == 0) return;
  (void)write_file_atomic(token, "died\n");
  (void)::raise(SIGKILL);
}

void Service::note_state(const std::string& key, const std::string& state) {
  if (key.empty()) return;
  std::lock_guard<std::mutex> lock(keys_mu_);
  auto it = keys_.find(key);
  if (it != keys_.end()) it->second.state = state;
}

void Service::record_terminal(const Job& job, const std::string& state,
                              const std::string& detail) {
  if (spool_.has_value() && !job.spec.key.empty()) {
    (void)spool_->record_state(job.id, state, detail);
  }
  note_state(job.spec.key, state);
}

void Service::replay_done(int fd, std::uint64_t job_id, const std::string& final_state) {
  (void)send_line(fd, encode_accepted(job_id, /*duplicate=*/true));
  std::string report =
      slurp_file(opt_.work_dir + "/job_" + std::to_string(job_id) + "/report.txt");
  if (!report.empty()) {
    if (send_line(fd, encode_report_header(job_id, report.size())).ok()) {
      (void)send_bytes(fd, report);
    }
  }
  (void)send_line(fd, encode_done(job_id, final_state == "done" ? "ok" : final_state));
  ::close(fd);
}

Status Service::recover_jobs() {
  if (!spool_.has_value()) return Status::ok_status();
  StatusOr<SpoolScan> scan = spool_->scan();
  HLSAV_RETURN_IF_ERROR(scan.status());
  tracer_.name_job(0, "daemon");
  tracer_.begin_span(0, ServiceTracer::kLifecycleTid, "recovery");
  std::uint64_t max_id = 0;
  std::uint64_t requeued = 0;
  std::uint64_t expired = 0;
  for (const SpoolEntry& e : scan->entries) {
    max_id = std::max(max_id, e.job);
    {
      std::lock_guard<std::mutex> lock(keys_mu_);
      auto [it, inserted] = keys_.emplace(e.key, KeyInfo{e.job, e.submit_line, e.state});
      (void)it;
      if (!inserted) {
        // The same key in two entries (an interrupted incarnation's
        // near-miss): the earliest job owns the key, the other entry
        // stays on disk but is never re-adopted.
        log_event("spool-duplicate-key", {EventLog::Field::num("job", e.job),
                                          EventLog::Field::str("key", e.key)});
        continue;
      }
    }
    if (e.terminal()) continue;
    StatusOr<CampaignSpec> spec = decode_submit(e.submit_line);
    if (!spec.ok()) {
      (void)spool_->record_state(e.job, "error",
                                 "unreadable spooled spec: " + spec.status().message());
      note_state(e.key, "error");
      continue;
    }
    if (e.deadline_ms > 0 && unix_ms() > e.submitted_unix_ms + e.deadline_ms) {
      // Expired while the daemon was down: typed terminal state, never
      // a silent drop -- a resubmit with the key learns what happened.
      (void)spool_->record_state(e.job, "deadline-expired",
                                 "deadline passed while the daemon was down");
      note_state(e.key, "deadline-expired");
      {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        counters_.jobs_deadline_expired->add();
      }
      log_event("job-deadline-expired", {EventLog::Field::num("job", e.job)});
      ++expired;
      continue;
    }
    Job job;
    job.id = e.job;
    job.spec = std::move(*spec);
    job.client_fd = -1;
    if (e.deadline_ms > 0) job.deadline_unix_ms = e.submitted_unix_ms + e.deadline_ms;
    JobView view;
    view.id = e.job;
    view.priority = job.spec.priority;
    view.design = job.spec.design_path;
    view.state = "queued";
    hub_.open_job(view);
    tracer_.name_job(e.job, "job " + std::to_string(e.job) + " " +
                                basename_of(job.spec.design_path));
    tracer_.instant(e.job, ServiceTracer::kLifecycleTid, "re-adopt");
    tracer_.begin_span(e.job, ServiceTracer::kLifecycleTid, "queued");
    (void)spool_->record_state(e.job, "queued", "re-adopted at boot");
    std::string key = e.key;
    Status pushed = queue_.push(std::move(job), /*force=*/true);
    if (!pushed.ok()) break;  // queue already closed: shutting down
    queued_.fetch_add(1, std::memory_order_relaxed);
    recovered_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      counters_.jobs_recovered->add();
    }
    log_event("job-requeued",
              {EventLog::Field::num("job", e.job), EventLog::Field::str("key", key)});
    ++requeued;
  }
  if (max_id != 0) {
    std::uint64_t expect = next_job_id_.load(std::memory_order_relaxed);
    while (expect <= max_id &&
           !next_job_id_.compare_exchange_weak(expect, max_id + 1, std::memory_order_relaxed)) {
    }
  }
  if (scan->quarantined > 0) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    counters_.spool_quarantined->add(scan->quarantined);
  }
  tracer_.end_span(0, ServiceTracer::kLifecycleTid, "recovery");
  log_event("daemon-recovered",
            {EventLog::Field::str("incarnation", incarnation_),
             EventLog::Field::num("requeued", requeued),
             EventLog::Field::num("expired", expired),
             EventLog::Field::num("quarantined", scan->quarantined),
             EventLog::Field::num("torn_tails", scan->torn_tails)});
  return Status::ok_status();
}

void Service::handle_submit(int fd, const std::string& line) {
  auto reject = [&](const Status& st, std::uint64_t job_id) {
    (void)send_line(fd, encode_rejected(st));
    ::close(fd);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      counters_.jobs_rejected->add();
    }
    std::vector<EventLog::Field> fields;
    if (job_id != 0) fields.push_back(EventLog::Field::num("job", job_id));
    fields.push_back(EventLog::Field::str("reason", st.message()));
    log_event("job-rejected", fields);
  };

  StatusOr<CampaignSpec> spec = decode_submit(line);
  if (!spec.ok()) {
    reject(spec.status(), 0);
    return;
  }
  maybe_die_at("accept");

  // Idempotency: with the spool on, every job has a key (the daemon
  // assigns one when the client does not). Without the spool, keyless
  // submits skip the whole key path -- the historic behavior.
  if (spec->key.empty() && spool_.has_value()) {
    spec->key = "d" + incarnation_ + "-" +
                std::to_string(next_job_id_.load(std::memory_order_relaxed)) + "-" +
                std::to_string(tracer_.now_us());
  }
  const std::string canonical = encode_submit(*spec);

  if (!spec->key.empty()) {
    std::unique_lock<std::mutex> lock(keys_mu_);
    auto it = keys_.find(spec->key);
    if (it != keys_.end()) {
      KeyInfo info = it->second;
      lock.unlock();
      if (info.submit_line != canonical) {
        reject(Status::invalid_argument("idempotency key '" + spec->key +
                                        "' was already used with a different spec"),
               info.job);
        return;
      }
      {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        counters_.jobs_duplicate->add();
      }
      log_event("job-duplicate", {EventLog::Field::num("job", info.job),
                                  EventLog::Field::str("key", spec->key),
                                  EventLog::Field::str("state", info.state)});
      if (info.state == "done") {
        // Completed (possibly in a previous incarnation): replay the
        // persisted report -- byte-identical, never a re-run.
        std::lock_guard<std::mutex> wlock(watchers_mu_);
        std::uint64_t job_id = info.job;
        watchers_.emplace_back([this, fd, job_id] { replay_done(fd, job_id, "done"); });
        return;
      }
      if (!JobSpool::state_terminal(info.state)) {
        // Still queued or running: attach this client to the live
        // stream. The submit client ignores watch-only frame types, so
        // the terminal frames it cares about arrive byte-identical.
        (void)send_line(fd, encode_accepted(info.job, /*duplicate=*/true));
        std::lock_guard<std::mutex> wlock(watchers_mu_);
        std::uint64_t job_id = info.job;
        watchers_.emplace_back([this, fd, job_id] { watch_connection(fd, job_id); });
        return;
      }
      // Terminal failure (error/aborted/drained/deadline-expired):
      // requeue the *same* job id -- its job_dir and journal shards
      // resume byte-identically behind the fingerprint gate.
      Job job;
      job.id = info.job;
      job.spec = *spec;
      job.client_fd = fd;
      if (spec->deadline_ms > 0) job.deadline_unix_ms = unix_ms() + spec->deadline_ms;
      JobView view;
      view.id = job.id;
      view.priority = job.spec.priority;
      view.design = job.spec.design_path;
      view.state = "queued";
      hub_.reset_job(view);
      if (spool_.has_value()) (void)spool_->record_state(job.id, "queued", "resubmitted");
      note_state(spec->key, "queued");
      std::uint64_t id = job.id;
      Status pushed = queue_.push(std::move(job));
      if (!pushed.ok()) {
        if (spool_.has_value()) (void)spool_->record_state(id, info.state, "requeue bounced");
        note_state(spec->key, info.state);
        reject(pushed, id);
        return;
      }
      queued_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        counters_.jobs_submitted->add();
      }
      tracer_.instant(id, ServiceTracer::kLifecycleTid, "resubmit");
      tracer_.begin_span(id, ServiceTracer::kLifecycleTid, "queued");
      log_event("job-requeued", {EventLog::Field::num("job", id),
                                 EventLog::Field::str("key", spec->key)});
      (void)send_line(fd, encode_accepted(id, /*duplicate=*/true));
      return;
    }
    lock.unlock();
  }

  Job job;
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job.spec = std::move(*spec);
  job.client_fd = fd;
  std::uint64_t now_ms = unix_ms();
  if (job.spec.deadline_ms > 0) job.deadline_unix_ms = now_ms + job.spec.deadline_ms;
  std::uint64_t id = job.id;
  int priority = job.spec.priority;
  std::string design = job.spec.design_path;
  std::string key = job.spec.key;

  if (spool_.has_value()) {
    // Write-ahead rule: the job is on disk (entry fsync'd, directory
    // fsync'd) before the accept promise goes out or an executor can
    // see it.
    SpoolEntry entry;
    entry.job = id;
    entry.key = key;
    entry.submit_line = canonical;
    entry.priority = priority;
    entry.deadline_ms = job.spec.deadline_ms;
    entry.submitted_unix_ms = now_ms;
    Status spooled = spool_->record_accepted(entry);
    if (!spooled.ok()) {
      reject(spooled, id);
      return;
    }
  }
  if (!key.empty()) {
    std::lock_guard<std::mutex> lock(keys_mu_);
    keys_[key] = KeyInfo{id, canonical, "queued"};
  }
  maybe_die_at("spooled");

  // The hub channel opens before the queue push: an executor that pops
  // instantly must find the channel (frames to a non-existent channel
  // are dropped).
  JobView view;
  view.id = id;
  view.priority = priority;
  view.design = design;
  view.state = "queued";
  hub_.open_job(view);
  Status pushed = queue_.push(std::move(job));
  if (!pushed.ok()) {
    // Typed back-pressure: the client learns *why* (queue full vs
    // shutting down) and can retry later; nothing is silently dropped.
    if (spool_.has_value() && !key.empty()) {
      (void)spool_->record_state(id, "aborted", pushed.message());
    }
    note_state(key, "aborted");
    hub_.close_job(id);
    reject(pushed, id);
    return;
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    counters_.jobs_submitted->add();
  }
  tracer_.name_job(id, "job " + std::to_string(id) + " " + basename_of(design));
  tracer_.instant(id, ServiceTracer::kLifecycleTid, "submit");
  tracer_.begin_span(id, ServiceTracer::kLifecycleTid, "queued");
  log_event("job-submitted",
            {EventLog::Field::num("job", id),
             EventLog::Field{"priority", std::to_string(priority), /*raw=*/true},
             EventLog::Field::str("design", design)});
  (void)send_line(fd, encode_accepted(id));
}

void Service::executor_loop() {
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job.has_value()) return;
    queued_.fetch_sub(1, std::memory_order_relaxed);
    running_.fetch_add(1, std::memory_order_relaxed);
    run_job(std::move(*job));
  }
}

void Service::run_job(Job job) {
  std::uint64_t start_us = tracer_.now_us();
  tracer_.end_span(job.id, ServiceTracer::kLifecycleTid, "queued");
  tracer_.begin_span(job.id, ServiceTracer::kLifecycleTid, "run");
  hub_.update_job(job.id, [](JobView& v) { v.state = "running"; });
  {
    WatchFrame f;
    f.cls = WatchFrame::Cls::kCritical;
    f.line = encode_state(job.id, "running");
    hub_.publish(job.id, std::move(f));
  }
  log_event("job-started", {EventLog::Field::num("job", job.id)});

  // Counters move *before* the done line goes out: a client that reads
  // "done" and immediately queries status must see itself counted.
  auto finish = [&](const std::string& done_line, const std::string& final_state) {
    running_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    tracer_.end_span(job.id, ServiceTracer::kLifecycleTid, "run");
    hub_.update_job(job.id, [&](JobView& v) { v.state = final_state; });
    {
      WatchFrame f;
      f.cls = WatchFrame::Cls::kCritical;
      f.line = encode_state(job.id, final_state);
      hub_.publish(job.id, std::move(f));
    }
    {
      WatchFrame f;
      f.cls = WatchFrame::Cls::kCritical;
      f.line = done_line;
      hub_.publish(job.id, std::move(f));
    }
    hub_.close_job(job.id);
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      if (final_state == "done") {
        counters_.jobs_completed->add();
      } else if (final_state == "drained") {
        counters_.jobs_drained->add();
      } else {
        counters_.jobs_failed->add();
      }
      counters_.job_wall_ms->record((tracer_.now_us() - start_us) / 1000);
    }
    std::optional<JobView> v = hub_.view_of(job.id);
    log_event("job-completed",
              {EventLog::Field::num("job", job.id),
               EventLog::Field::str("status", final_state),
               EventLog::Field::num("done", v.has_value() ? v->done : 0),
               EventLog::Field::num("total", v.has_value() ? v->total : 0)});
    // Terminal spool record *before* the done line: once a client has
    // read "done", a restarted daemon must agree the job is over.
    record_terminal(job, final_state, final_state == "done" ? "" : done_line);
    if (job.client_fd >= 0) {
      (void)send_line(job.client_fd, done_line);
      ::close(job.client_fd);
    }
  };

  // A deadline that passed while the job sat in the queue is a typed
  // terminal outcome, never a silent drop: the client (and the spool)
  // see "deadline-expired".
  if (job.deadline_unix_ms > 0 && unix_ms() > job.deadline_unix_ms) {
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      counters_.jobs_deadline_expired->add();
    }
    finish(encode_done(job.id, "deadline-expired",
                       "deadline of " + std::to_string(job.spec.deadline_ms) +
                           "ms passed while the job was queued"),
           "deadline-expired");
    return;
  }
  if (spool_.has_value() && !job.spec.key.empty()) {
    (void)spool_->record_state(job.id, "running");
  }
  note_state(job.spec.key, "running");

  std::string job_dir = opt_.work_dir + "/job_" + std::to_string(job.id);
  Status dir_ok = ensure_dir(job_dir);
  if (!dir_ok.ok()) {
    finish(encode_done(job.id, "error", dir_ok.to_string()), "error");
    return;
  }

  SupervisorOptions sup;
  sup.worker_binary = opt_.worker_binary;
  sup.job_dir = job_dir;
  sup.workers = job.spec.workers != 0 ? job.spec.workers : opt_.default_workers;
  sup.quarantine_cap = opt_.quarantine_cap;
  sup.backoff_base_ms = opt_.backoff_base_ms;
  sup.backoff_cap_ms = opt_.backoff_cap_ms;
  sup.heartbeat_timeout_ms = opt_.heartbeat_timeout_ms;
  sup.drain = &drain_;
  // A client that vanished mid-job must not kill the job (its journals
  // are still valuable); sends just stop. A job re-adopted at boot has
  // no client at all (fd -1).
  bool client_gone = job.client_fd < 0;
  auto send = [&](const std::string& line) {
    if (client_gone) return;
    if (!send_line(job.client_fd, line).ok()) client_gone = true;
  };
  auto fanout = [&](WatchFrame::Cls cls, std::string line) {
    WatchFrame f;
    f.cls = cls;
    f.line = std::move(line);
    hub_.publish(job.id, std::move(f));
  };
  auto bump_worker_stat = [&](int worker, bool quarantine) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (worker < 0) return;
    auto w = static_cast<std::size_t>(worker);
    if (worker_stats_.size() <= w) worker_stats_.resize(w + 1, {0, 0});
    if (quarantine) {
      ++worker_stats_[w].second;
    } else {
      ++worker_stats_[w].first;
    }
  };
  sup.event_sink = [&](const SupervisorEvent& e) {
    std::uint64_t wtid = ServiceTracer::kWorkerTidBase +
                         static_cast<std::uint64_t>(e.worker < 0 ? 0 : e.worker);
    switch (e.kind) {
      case SupervisorEvent::Kind::kProgress: {
        std::string line = encode_progress(job.id, e.done, e.total);
        send(line);
        hub_.update_job(job.id, [&](JobView& v) {
          v.done = e.done;
          v.total = e.total;
        });
        fanout(WatchFrame::Cls::kProgress, std::move(line));
        break;
      }
      case SupervisorEvent::Kind::kWorkerCrashed: {
        std::string line = encode_worker_crashed(job.id, e.site, e.worker, e.detail);
        send(line);
        hub_.update_job(job.id, [](JobView& v) { ++v.respawns; });
        fanout(WatchFrame::Cls::kCritical, std::move(line));
        tracer_.instant(job.id, wtid, "respawn site s" + std::to_string(e.site));
        bump_worker_stat(e.worker, /*quarantine=*/false);
        {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          counters_.worker_respawns->add();
        }
        log_event("worker-crashed", {EventLog::Field::num("job", job.id),
                                     EventLog::Field::num("site", e.site),
                                     EventLog::Field::num("worker", static_cast<std::uint64_t>(
                                                                        e.worker < 0 ? 0
                                                                                     : e.worker)),
                                     EventLog::Field::str("detail", e.detail)});
        break;
      }
      case SupervisorEvent::Kind::kQuarantined: {
        std::string line = encode_quarantined(job.id, e.site);
        send(line);
        hub_.update_job(job.id, [](JobView& v) { ++v.quarantined; });
        fanout(WatchFrame::Cls::kCritical, std::move(line));
        tracer_.instant(job.id, wtid, "quarantine site s" + std::to_string(e.site));
        bump_worker_stat(e.worker, /*quarantine=*/true);
        {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          counters_.sites_quarantined->add();
        }
        log_event("site-quarantined", {EventLog::Field::num("job", job.id),
                                       EventLog::Field::num("site", e.site)});
        break;
      }
      case SupervisorEvent::Kind::kSiteStarted:
        // Crash injection: the first site heartbeat proves worker
        // shards exist on disk -- the daemon dying *here* leaves
        // half-swept journals for the restart to resume.
        maybe_die_at("shard-spawned");
        // Watch-only frames: the submit stream stays byte-compatible
        // with the pre-observability protocol.
        fanout(WatchFrame::Cls::kSite, encode_site_started(job.id, e.site, e.worker));
        tracer_.begin_span(job.id, wtid, "s" + std::to_string(e.site));
        break;
      case SupervisorEvent::Kind::kSiteDone:
        fanout(WatchFrame::Cls::kSite, encode_site_done(job.id, e.site, e.worker, e.detail));
        tracer_.end_span(job.id, wtid, "s" + std::to_string(e.site));
        {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          counters_.sites_done->add();
        }
        break;
      case SupervisorEvent::Kind::kPhaseBegin:
        if (e.detail == "merge") maybe_die_at("pre-merge");
        tracer_.begin_span(job.id, ServiceTracer::kLifecycleTid, e.detail);
        if (e.detail == "merge") {
          hub_.update_job(job.id, [](JobView& v) { v.state = "merging"; });
          fanout(WatchFrame::Cls::kCritical, encode_state(job.id, "merging"));
        }
        break;
      case SupervisorEvent::Kind::kPhaseEnd:
        tracer_.end_span(job.id, ServiceTracer::kLifecycleTid, e.detail);
        break;
    }
  };

  StatusOr<SupervisedResult> result = run_sharded_campaign(job.spec, sup);
  if (!result.ok()) {
    finish(encode_done(job.id, "error", result.status().to_string()), "error");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    counters_.journal_bytes->add(result->journal_bytes);
  }
  // Persist the report before the terminal spool record can say "done":
  // a duplicate resubmit of a finished job replays these exact bytes,
  // and "done" in the spool must imply the report is on disk.
  if (spool_.has_value() && !job.spec.key.empty() && !result->rendered.empty() &&
      !result->drained) {
    Status saved = write_file_atomic(job_dir + "/report.txt", result->rendered);
    if (!saved.ok()) {
      finish(encode_done(job.id, "error", saved.to_string()), "error");
      return;
    }
  }
  maybe_die_at("pre-done");
  if (!result->rendered.empty()) {
    std::string header = encode_report_header(job.id, result->rendered.size());
    send(header);
    if (!client_gone && !send_bytes(job.client_fd, result->rendered).ok()) client_gone = true;
    // Watchers receive the identical sized report frame: terminal
    // frames are byte-identical across every subscriber and the
    // submitting client.
    WatchFrame f;
    f.cls = WatchFrame::Cls::kCritical;
    f.line = std::move(header);
    f.payload = result->rendered;
    hub_.publish(job.id, std::move(f));
  }
  finish(encode_done(job.id, result->drained ? "drained" : "ok"),
         result->drained ? "drained" : "done");
}

void Service::watch_connection(int fd, std::uint64_t job_id) {
  StatusOr<std::shared_ptr<ProgressHub::Subscription>> sub = hub_.subscribe(job_id);
  if (!sub.ok()) {
    (void)send_line(fd, encode_rejected(sub.status()));
    ::close(fd);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    counters_.watch_subscribers->add();
  }
  log_event("watch-subscribed", {EventLog::Field::num("job", job_id)});
  std::uint64_t sent = 0;
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) break;
    std::optional<WatchFrame> frame = hub_.next(*sub, /*timeout_ms=*/200);
    if (!frame.has_value()) {
      if ((*sub)->finished()) break;
      continue;  // timeout: poll the stop flag again
    }
    // Count the frame before writing it so a client that acts on a
    // received frame (e.g. queries metrics right after the done frame)
    // observes a counter that already includes it.
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      counters_.watch_frames_sent->add();
    }
    Status st = send_line_interruptible(fd, frame->line, stopping_);
    if (st.ok() && !frame->payload.empty()) {
      st = send_bytes_interruptible(fd, frame->payload, stopping_);
    }
    if (!st.ok()) break;  // client vanished or daemon stopping
    ++sent;
  }
  std::uint64_t coalesced = (*sub)->coalesced();
  hub_.unsubscribe(*sub);
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    counters_.watch_frames_coalesced->add(coalesced);
  }
  log_event("watch-closed", {EventLog::Field::num("job", job_id),
                             EventLog::Field::num("frames", sent),
                             EventLog::Field::num("coalesced", coalesced)});
}

}  // namespace hlsav::serve
