#include "serve/queue.h"

#include <algorithm>

namespace hlsav::serve {

Status JobQueue::push(Job job, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::unavailable("shutting down");
  if (!force && jobs_.size() >= capacity_) {
    return Status::unavailable("queue full (cap " + std::to_string(capacity_) + ")");
  }
  job.seq = next_seq_++;
  jobs_.push_back(std::move(job));
  cv_.notify_one();
  return Status::ok_status();
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (closed_) return std::nullopt;  // close() already drained the backlog
  auto best = std::min_element(jobs_.begin(), jobs_.end(), [](const Job& a, const Job& b) {
    if (a.spec.priority != b.spec.priority) return a.spec.priority > b.spec.priority;
    return a.seq < b.seq;
  });
  Job job = std::move(*best);
  jobs_.erase(best);
  return job;
}

std::vector<Job> JobQueue::close() {
  std::vector<Job> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    drained = std::move(jobs_);
    jobs_.clear();
  }
  cv_.notify_all();
  // Aborted jobs go back in submission order, not priority order.
  std::sort(drained.begin(), drained.end(),
            [](const Job& a, const Job& b) { return a.seq < b.seq; });
  return drained;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

std::vector<std::pair<int, std::size_t>> JobQueue::depth_by_priority() const {
  std::vector<std::pair<int, std::size_t>> depths;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Job& job : jobs_) {
      auto it = std::find_if(depths.begin(), depths.end(),
                             [&](const auto& p) { return p.first == job.spec.priority; });
      if (it == depths.end()) {
        depths.emplace_back(job.spec.priority, 1);
      } else {
        ++it->second;
      }
    }
  }
  std::sort(depths.begin(), depths.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return depths;
}

}  // namespace hlsav::serve
