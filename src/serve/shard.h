// Sharded campaign supervisor: crash containment for fault sweeps.
//
// One campaign, W worker subprocesses, one journal shard per worker.
// The supervisor compiles the design, samples the site list exactly as
// the in-process runner would, deals the selected sites round-robin
// across the workers, and then watches them:
//
//  * A worker that segfaults, gets OOM-killed, is kill -9'ed, or
//    overruns its heartbeat watchdog is *contained*: the supervisor
//    reloads its journal shard (the loader drops any torn tail),
//    blames the in-flight site, and respawns the worker on the
//    remaining sites after a capped exponential backoff.
//  * A site that keeps killing workers is quarantined after
//    `quarantine_cap` crashes and classified worker-crashed -- one
//    poisonous site can never pin a campaign or respawn forever.
//  * Every worker journal shard carries the *full campaign's* header
//    fingerprint, so shards can be merged -- and individually resumed
//    -- with the same identity check the single-process path uses.
//
// The merged report renders byte-identically to an uninterrupted
// single-process sweep: CampaignReport::render depends only on
// seed/site outcomes, never on worker count or completion order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "sim/campaign.h"
#include "support/status.h"

namespace hlsav::serve {

/// What the supervisor tells the outside world while a job runs. The
/// service encodes these as protocol lines to the submitting client.
struct SupervisorEvent {
  enum class Kind {
    kProgress,       // done/total changed
    kWorkerCrashed,  // a worker died; `site` is the blamed in-flight site
    kQuarantined,    // `site` hit the crash cap and was classified worker-crashed
    kSiteStarted,    // worker `worker` announced "starting" for `site`
    kSiteDone,       // `site` journaled; `detail` is the outcome name
    kPhaseBegin,     // `detail` names the phase: compile | shard | merge
    kPhaseEnd,       // matching end of the named phase
  };
  Kind kind = Kind::kProgress;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint32_t site = 0;
  int worker = -1;
  std::string detail;  // ExitInfo::describe() / outcome name / phase name
};

struct SupervisorOptions {
  /// The hlsavd binary (workers are `hlsavd worker ...` of the same
  /// build, so simulation determinism is guaranteed by construction).
  std::string worker_binary;
  /// Directory for this job's shard journals and fault-token files;
  /// must exist and be writable.
  std::string job_dir;
  unsigned workers = 2;
  /// Crashes a single site may cause before it is quarantined.
  unsigned quarantine_cap = 3;
  /// Respawn backoff: base * 2^attempt, capped. Keeps a crash-looping
  /// worker from busy-spinning the host while staying fast in tests.
  std::uint64_t backoff_base_ms = 25;
  std::uint64_t backoff_cap_ms = 1000;
  /// SIGKILL a worker silent for this long; 0 disables the watchdog.
  double heartbeat_timeout_ms = 0.0;
  /// Event stream (progress, crashes, quarantines); may be null.
  std::function<void(const SupervisorEvent&)> event_sink;
  /// Graceful-degradation flag: when it turns true the supervisor
  /// SIGTERMs its workers (they flush + exit 21), stops respawning,
  /// and returns what was durably journaled.
  const std::atomic<bool>* drain = nullptr;
};

struct SupervisedResult {
  sim::CampaignReport report;
  /// report.render(design) -- computed here because the caller has no
  /// compiled design; this is the byte-identity artifact.
  std::string rendered;
  /// Workers respawned after a crash (0 on an uneventful run).
  unsigned respawns = 0;
  /// Sites classified worker-crashed, ascending.
  std::vector<std::uint32_t> quarantined;
  /// True when the drain flag stopped the job early; `report` carries
  /// interrupted=true and only the journaled sites.
  bool drained = false;
  /// Bytes of shard journal written on disk at merge time (the durable
  /// footprint the metrics plane reports).
  std::uint64_t journal_bytes = 0;
};

/// Runs one campaign sharded across worker subprocesses. Compile
/// errors, unusable specs and supervision failures come back as
/// Status; worker deaths do not -- those are contained and classified.
[[nodiscard]] StatusOr<SupervisedResult> run_sharded_campaign(const CampaignSpec& spec,
                                                              const SupervisorOptions& opt);

}  // namespace hlsav::serve
