#include "serve/hub.h"

#include <algorithm>
#include <chrono>

#include "serve/protocol.h"

namespace hlsav::serve {

void ProgressHub::open_job(const JobView& view) {
  std::lock_guard<std::mutex> lock(mu_);
  Channel& ch = channels_[view.id];
  ch.view = view;
}

void ProgressHub::reset_job(const JobView& view) {
  std::lock_guard<std::mutex> lock(mu_);
  Channel& ch = channels_[view.id];
  ch.view = view;
  ch.closed = false;
  ch.retained.clear();
  for (auto& sub : ch.subs) sub->detached = true;
  ch.subs.clear();
  cv_.notify_all();
}

void ProgressHub::update_job(std::uint64_t job,
                             const std::function<void(JobView&)>& mutate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(job);
  if (it == channels_.end()) return;
  mutate(it->second.view);
}

std::optional<JobView> ProgressHub::view_of(std::uint64_t job) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(job);
  if (it == channels_.end()) return std::nullopt;
  return it->second.view;
}

void ProgressHub::push_frame(Channel& ch, Subscription& sub, WatchFrame frame) {
  (void)ch;
  if (frame.cls != WatchFrame::Cls::kCritical && sub.buf.size() >= coalesce_after_) {
    // Back-pressure: replace the newest queued frame of the same class
    // so the buffer stops growing but the latest level is preserved.
    for (auto it = sub.buf.rbegin(); it != sub.buf.rend(); ++it) {
      if (it->cls == frame.cls) {
        *it = std::move(frame);
        ++sub.coalesced_;
        ++coalesced_total_;
        return;
      }
    }
  }
  sub.buf.push_back(std::move(frame));
}

void ProgressHub::publish(std::uint64_t job, WatchFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(job);
  if (it == channels_.end()) return;
  Channel& ch = it->second;
  ++published_total_;
  // Report/done frames outlive the job: they are what a late subscriber
  // of a finished job needs after its snapshot.
  if (frame.cls == WatchFrame::Cls::kCritical &&
      (!frame.payload.empty() ||
       frame.line.find("\"type\":\"done\"") != std::string::npos)) {
    ch.retained.push_back(frame);
  }
  for (auto& sub : ch.subs) {
    if (sub->detached) continue;
    push_frame(ch, *sub, frame);
  }
  cv_.notify_all();
}

void ProgressHub::close_job(std::uint64_t job) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(job);
  if (it == channels_.end()) return;
  it->second.closed = true;
  cv_.notify_all();
}

StatusOr<std::shared_ptr<ProgressHub::Subscription>> ProgressHub::subscribe(std::uint64_t job) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(job);
  if (it == channels_.end()) {
    return Status::invalid_argument("unknown job " + std::to_string(job));
  }
  Channel& ch = it->second;
  auto sub = std::make_shared<Subscription>();
  sub->job = job;
  WatchFrame snap;
  snap.cls = WatchFrame::Cls::kCritical;
  snap.line = encode_snapshot(ch.view);
  sub->buf.push_back(std::move(snap));
  if (ch.closed) {
    // Snapshot-then-tail for a finished job: replay the retained
    // terminal frames so `watch` still yields the report and done line.
    for (const WatchFrame& f : ch.retained) sub->buf.push_back(f);
  } else {
    ch.subs.push_back(sub);
  }
  return sub;
}

std::optional<WatchFrame> ProgressHub::next(const std::shared_ptr<Subscription>& sub,
                                            int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!sub->buf.empty()) {
      WatchFrame f = std::move(sub->buf.front());
      sub->buf.pop_front();
      return f;
    }
    auto it = channels_.find(sub->job);
    bool closed = it == channels_.end() || it->second.closed || sub->detached;
    if (closed) {
      sub->finished_ = true;
      return std::nullopt;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        sub->buf.empty()) {
      auto it2 = channels_.find(sub->job);
      if (it2 == channels_.end() || it2->second.closed) {
        sub->finished_ = true;
      }
      return std::nullopt;
    }
  }
}

void ProgressHub::unsubscribe(const std::shared_ptr<Subscription>& sub) {
  std::lock_guard<std::mutex> lock(mu_);
  sub->detached = true;
  auto it = channels_.find(sub->job);
  if (it == channels_.end()) return;
  auto& subs = it->second.subs;
  subs.erase(std::remove(subs.begin(), subs.end(), sub), subs.end());
}

void ProgressHub::shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, ch] : channels_) ch.closed = true;
  cv_.notify_all();
}

std::uint64_t ProgressHub::coalesced_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_total_;
}

std::uint64_t ProgressHub::published_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_total_;
}

std::size_t ProgressHub::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, ch] : channels_) {
    for (const auto& sub : ch.subs) {
      if (!sub->detached) ++n;
    }
  }
  return n;
}

}  // namespace hlsav::serve
