#include "serve/events.h"

#include <unistd.h>

#include <cstdio>

#include "support/jsonl.h"

namespace hlsav::serve {

EventLog::~EventLog() { close(); }

Status EventLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::invalid_argument("event log already open");
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) return Status::io_error("cannot open event log '" + path + "'");
  return Status::ok_status();
}

void EventLog::record(std::uint64_t ts_us, const std::string& name,
                      const std::vector<Field>& fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  // Millisecond timestamps with exact microsecond fractions: integer
  // arithmetic, so the JSON never grows double round-trip noise.
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                static_cast<unsigned long long>(ts_us / 1000),
                static_cast<unsigned long long>(ts_us % 1000));
  std::string line = "{\"seq\":" + std::to_string(++seq_) + ",\"ts_ms\":" + ts + ",\"event\":";
  jsonl::append_escaped(line, name);
  for (const Field& f : fields) {
    line += ",\"" + f.key + "\":";
    if (f.raw) {
      line += f.value;
    } else {
      jsonl::append_escaped(line, f.value);
    }
  }
  line += "}\n";
  std::fputs(line.c_str(), file_);
  std::fflush(file_);
}

std::uint64_t EventLog::sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void EventLog::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  (void)::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace hlsav::serve
