// The hlsavd campaign service: accept loop, executors, shutdown.
//
// One thread accepts connections on the unix socket and turns submit
// requests into queued jobs (or typed rejections when the bounded
// queue pushes back); `executors` threads pop jobs and run the sharded
// supervisor (serve/shard.h), streaming progress and the final report
// to the submitting client over its own connection.
//
// Graceful shutdown (SIGTERM or a shutdown request): the accept loop
// stops, queued-but-unstarted jobs get a typed abort reply, running
// jobs drain -- workers flush their journals and exit, the client gets
// whatever was durably classified plus status "drained", and every
// journal shard is resumable by a later submission of the same spec.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.h"
#include "support/status.h"

namespace hlsav::serve {

struct ServiceOptions {
  std::string socket_path;
  /// Jobs that may wait beyond the running ones; a full queue rejects.
  std::size_t queue_cap = 4;
  /// Concurrent jobs (each runs its own worker pool).
  unsigned executors = 1;
  /// Worker subprocesses per job when the client does not say.
  unsigned default_workers = 2;
  unsigned quarantine_cap = 3;
  /// Worker silence tolerated before the SIGKILL watchdog; 0 = off.
  double heartbeat_timeout_ms = 10'000.0;
  std::uint64_t backoff_base_ms = 25;
  std::uint64_t backoff_cap_ms = 1000;
  /// The hlsavd binary itself (workers are `hlsavd worker ...`).
  std::string worker_binary;
  /// Per-job shard journals land in `<work_dir>/job_<id>/`.
  std::string work_dir = ".";
};

class Service {
 public:
  /// Binds the socket and prepares the queue; serve() starts the loop.
  [[nodiscard]] static StatusOr<std::unique_ptr<Service>> start(ServiceOptions opt);
  ~Service();

  /// Runs accept loop + executors until shutdown_flag() turns true (a
  /// signal handler may set it) or a shutdown request arrives. Returns
  /// once every executor has drained and the socket is unlinked.
  [[nodiscard]] Status serve();

  /// The flag a SIGTERM/SIGINT handler sets: only an atomic store, so
  /// it is async-signal-safe.
  [[nodiscard]] std::atomic<bool>& shutdown_flag() { return shutdown_; }

 private:
  explicit Service(ServiceOptions opt, int listen_fd)
      : opt_(std::move(opt)), listen_fd_(listen_fd), queue_(opt_.queue_cap) {}

  void handle_connection(int fd);
  void executor_loop();
  void run_job(Job job);

  ServiceOptions opt_;
  int listen_fd_ = -1;
  JobQueue queue_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> drain_{false};  // handed to running supervisors
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> running_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::vector<std::thread> executors_;
};

}  // namespace hlsav::serve
