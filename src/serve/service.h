// The hlsavd campaign service: accept loop, executors, shutdown, and
// the observability plane.
//
// One thread accepts connections on the unix socket and turns submit
// requests into queued jobs (or typed rejections when the bounded
// queue pushes back); `executors` threads pop jobs and run the sharded
// supervisor (serve/shard.h), streaming progress and the final report
// to the submitting client over its own connection.
//
// Observability (DESIGN.md §3.7): every job's frames also flow into a
// ProgressHub that fans them out to any number of `watch` subscribers
// (each on its own thread, with a bounded coalescing buffer -- a slow
// watcher can never stall a campaign); a ServiceTracer records the
// job-lifecycle span tree (queued -> run{compile,shard,merge}, per-site
// worker spans, respawn/quarantine instants) exportable as Chrome
// trace JSON; a MetricsRegistry + append-only JSONL event log make the
// daemon's behaviour queryable (`hlsavd metrics`) and auditable
// (`--events-out`).
//
// Graceful shutdown (SIGTERM or a shutdown request): the accept loop
// stops, queued-but-unstarted jobs get a typed abort reply, running
// jobs drain -- workers flush their journals and exit, the client gets
// whatever was durably classified plus status "drained", watcher
// threads are woken and joined, and every journal shard is resumable
// by a later submission of the same spec.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.h"
#include "serve/events.h"
#include "serve/hub.h"
#include "serve/queue.h"
#include "serve/spool.h"
#include "serve/tracer.h"
#include "support/status.h"

namespace hlsav::serve {

struct ServiceOptions {
  std::string socket_path;
  /// Jobs that may wait beyond the running ones; a full queue rejects.
  std::size_t queue_cap = 4;
  /// Concurrent jobs (each runs its own worker pool).
  unsigned executors = 1;
  /// Worker subprocesses per job when the client does not say.
  unsigned default_workers = 2;
  unsigned quarantine_cap = 3;
  /// Worker silence tolerated before the SIGKILL watchdog; 0 = off.
  double heartbeat_timeout_ms = 10'000.0;
  std::uint64_t backoff_base_ms = 25;
  std::uint64_t backoff_cap_ms = 1000;
  /// The hlsavd binary itself (workers are `hlsavd worker ...`).
  std::string worker_binary;
  /// Per-job shard journals land in `<work_dir>/job_<id>/`.
  std::string work_dir = ".";
  /// Append-only JSONL structured event log; empty = no log.
  std::string events_out;
  /// Write-ahead job spool directory; empty = spool disabled (jobs are
  /// in-memory only, exactly the pre-spool behavior).
  std::string spool_dir;
  /// Crash-injection hook (test-only): SIGKILL the daemon the first
  /// time it reaches this phase (accept | spooled | shard-spawned |
  /// pre-merge | pre-done). A durable token in work_dir suppresses the
  /// second pass, so a restarted daemon sails through.
  std::string die_at;
};

class Service {
 public:
  /// Binds the socket and prepares the queue; serve() starts the loop.
  [[nodiscard]] static StatusOr<std::unique_ptr<Service>> start(ServiceOptions opt);
  ~Service();

  /// Runs accept loop + executors until shutdown_flag() turns true (a
  /// signal handler may set it) or a shutdown request arrives. Returns
  /// once every executor and watcher has drained and the socket is
  /// unlinked.
  [[nodiscard]] Status serve();

  /// The flag a SIGTERM/SIGINT handler sets: only an atomic store, so
  /// it is async-signal-safe.
  [[nodiscard]] std::atomic<bool>& shutdown_flag() { return shutdown_; }

 private:
  explicit Service(ServiceOptions opt, int listen_fd)
      : opt_(std::move(opt)), listen_fd_(listen_fd), queue_(opt_.queue_cap) {
    init_metrics();
  }

  void init_metrics();
  void handle_connection(int fd);
  void handle_submit(int fd, const std::string& line);
  void executor_loop();
  void run_job(Job job);
  void watch_connection(int fd, std::uint64_t job_id);
  /// Boot-time spool recovery: re-adopts every non-terminal spooled job
  /// (force-pushed past the queue cap -- they were already accepted
  /// once), registers every idempotency key, expires overdue queued
  /// jobs, and emits the daemon-recovered event.
  [[nodiscard]] Status recover_jobs();
  /// Durable-token crash injection: first pass through the configured
  /// phase writes a token and raises SIGKILL; the token makes the
  /// restarted daemon immune.
  void maybe_die_at(const std::string& phase);
  /// Replays a previously completed job (accept/report/done) from its
  /// persisted report to a duplicate submitter. Runs on its own thread.
  void replay_done(int fd, std::uint64_t job_id, const std::string& final_state);
  /// Updates the in-memory key table's view of a job's state.
  void note_state(const std::string& key, const std::string& state);
  /// Terminal spool/key bookkeeping shared by run_job and the drain
  /// path.
  void record_terminal(const Job& job, const std::string& state, const std::string& detail);
  /// One-line status reply JSON (aggregate counts + per-priority queue
  /// depths + per-worker respawn/quarantine tallies).
  [[nodiscard]] std::string status_reply();
  /// One-line metrics snapshot JSON ({"type":"metrics",...}).
  [[nodiscard]] std::string metrics_snapshot();
  void log_event(const std::string& name, const std::vector<EventLog::Field>& fields);
  /// Compact "P:D;P:D" / "W:R/Q;W:R/Q" renderings for the flat-JSON
  /// status + metrics replies (jsonl parsing keeps keys unique, so
  /// repeated-key arrays are off the table by design).
  [[nodiscard]] std::string depths_field();
  [[nodiscard]] std::string workers_field();

  ServiceOptions opt_;
  int listen_fd_ = -1;
  JobQueue queue_;
  /// Write-ahead spool; nullopt when disabled.
  std::optional<JobSpool> spool_;
  /// "<boot unix ms>-<pid>": names this daemon process across restarts
  /// sharing a socket path.
  std::string incarnation_;
  std::uint64_t started_unix_ms_ = 0;
  std::atomic<std::uint64_t> recovered_{0};
  /// Idempotency-key table (rebuilt from the spool at boot).
  struct KeyInfo {
    std::uint64_t job = 0;
    /// Canonical submit line (encode_submit of the decoded spec):
    /// byte-compared against duplicate submits.
    std::string submit_line;
    /// Mirrors the job's spool state.
    std::string state;
  };
  std::mutex keys_mu_;
  std::map<std::string, KeyInfo> keys_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> drain_{false};     // handed to running supervisors
  std::atomic<bool> stopping_{false};  // watcher threads: abort sends, exit
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> running_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::vector<std::thread> executors_;

  // ---- observability plane ----
  ProgressHub hub_;
  ServiceTracer tracer_;
  EventLog events_;
  /// Registry + every mutation guarded by metrics_mu_ (MetricsRegistry
  /// itself is single-threaded by design; the event rate here is far
  /// too low for the lock to matter).
  mutable std::mutex metrics_mu_;
  metrics::MetricsRegistry registry_;
  struct {
    metrics::Counter* jobs_submitted = nullptr;
    metrics::Counter* jobs_rejected = nullptr;
    metrics::Counter* jobs_completed = nullptr;
    metrics::Counter* jobs_drained = nullptr;
    metrics::Counter* jobs_failed = nullptr;
    metrics::Counter* worker_respawns = nullptr;
    metrics::Counter* sites_quarantined = nullptr;
    metrics::Counter* sites_done = nullptr;
    metrics::Counter* journal_bytes = nullptr;
    metrics::Counter* watch_subscribers = nullptr;
    metrics::Counter* watch_frames_sent = nullptr;
    metrics::Counter* watch_frames_coalesced = nullptr;
    metrics::Counter* jobs_recovered = nullptr;
    metrics::Counter* jobs_duplicate = nullptr;
    metrics::Counter* jobs_deadline_expired = nullptr;
    metrics::Counter* spool_quarantined = nullptr;
    metrics::Histogram* job_wall_ms = nullptr;
  } counters_;
  /// Per-worker-index respawn/quarantine tallies across all jobs
  /// (guarded by metrics_mu_).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> worker_stats_;

  std::mutex watchers_mu_;
  std::vector<std::thread> watchers_;
};

}  // namespace hlsav::serve
