// Append-only structured event log for the hlsavd daemon.
//
// One flat JSON object per line (the journal/protocol jsonl dialect),
// each stamped with a monotonic sequence number and milliseconds since
// the daemon started:
//
//   {"seq":12,"ts_ms":8410.2,"event":"job-completed","job":3,
//    "status":"ok","done":24,"total":24}
//
// The log is the daemon's durable flight recorder: every submit,
// rejection, state transition, worker crash, quarantine, and watcher
// attach/detach lands here, flushed per line so a crashed daemon loses
// at most the line being written. `hlsavd serve --events-out=FILE`
// opens it in append mode -- restarts extend the same file and the
// sequence restarts, so (seq, ts_ms) pairs identify daemon incarnations.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/status.h"

namespace hlsav::serve {

class EventLog {
 public:
  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens `path` for appending; kIoError when it cannot be created.
  [[nodiscard]] Status open(const std::string& path);
  [[nodiscard]] bool is_open() const { return file_ != nullptr; }

  /// One event field: string values are JSON-escaped, raw values
  /// (numbers, pre-encoded fragments) are emitted verbatim.
  struct Field {
    std::string key;
    std::string value;
    bool raw = false;

    static Field str(std::string k, std::string v) { return {std::move(k), std::move(v), false}; }
    static Field num(std::string k, std::uint64_t v) {
      return {std::move(k), std::to_string(v), true};
    }
  };

  /// Appends {"seq":N,"ts_ms":T,"event":name,...fields} and flushes.
  /// A closed log ignores the record (the daemon runs fine without one).
  void record(std::uint64_t ts_us, const std::string& name, const std::vector<Field>& fields);

  /// Events recorded (== the last line's seq) this incarnation.
  [[nodiscard]] std::uint64_t sequence() const;

  /// fsyncs and closes; further record() calls are ignored.
  void close();

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::uint64_t seq_ = 0;
};

}  // namespace hlsav::serve
