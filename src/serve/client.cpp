#include "serve/client.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>

#include "support/jsonl.h"
#include "support/socket.h"

namespace hlsav::serve {

namespace {

/// RAII socket close for the three entry points below.
struct FdCloser {
  int fd;
  ~FdCloser() { ::close(fd); }
};

}  // namespace

int submit_job(const std::string& socket_path, const CampaignSpec& spec,
               const std::string& out_path, bool quiet) {
  StatusOr<int> fd = unix_connect(socket_path);
  if (!fd.ok()) {
    std::cerr << "hlsavd: " << fd.status().to_string() << "\n";
    return 1;
  }
  FdCloser closer{*fd};
  Status sent = send_line(*fd, encode_submit(spec));
  if (!sent.ok()) {
    std::cerr << "hlsavd: " << sent.to_string() << "\n";
    return 1;
  }
  LineReader reader(*fd);
  std::string report;
  bool have_report = false;
  for (;;) {
    StatusOr<std::string> line = reader.read_line();
    if (!line.ok()) {
      std::cerr << "hlsavd: connection lost: " << line.status().to_string() << "\n";
      return 1;
    }
    std::string type;
    if (!jsonl::parse_string(*line, "type", type)) continue;
    if (type == "accepted") continue;
    if (type == "rejected") {
      std::string code, message;
      (void)jsonl::parse_string(*line, "code", code);
      (void)jsonl::parse_string(*line, "message", message);
      std::cerr << "hlsavd: rejected (" << code << "): " << message << "\n";
      return 7;
    }
    if (type == "progress") {
      std::uint64_t done = 0, total = 0;
      (void)jsonl::parse_u64(*line, "done", done);
      (void)jsonl::parse_u64(*line, "total", total);
      if (!quiet) std::cerr << "hlsavd: " << done << "/" << total << " sites\n";
      continue;
    }
    if (type == "worker-crashed") {
      std::uint64_t site = 0;
      std::string detail;
      (void)jsonl::parse_u64(*line, "site", site);
      (void)jsonl::parse_string(*line, "detail", detail);
      if (!quiet) {
        std::cerr << "hlsavd: worker crashed on site s" << site << " (" << detail
                  << "); contained, respawning\n";
      }
      continue;
    }
    if (type == "quarantined") {
      std::uint64_t site = 0;
      (void)jsonl::parse_u64(*line, "site", site);
      if (!quiet) std::cerr << "hlsavd: site s" << site << " quarantined (worker-crashed)\n";
      continue;
    }
    if (type == "report") {
      std::uint64_t bytes = 0;
      (void)jsonl::parse_u64(*line, "bytes", bytes);
      StatusOr<std::string> payload = reader.read_bytes(bytes);
      if (!payload.ok()) {
        std::cerr << "hlsavd: truncated report: " << payload.status().to_string() << "\n";
        return 1;
      }
      report = std::move(*payload);
      have_report = true;
      continue;
    }
    if (type == "done") {
      std::string status, message;
      (void)jsonl::parse_string(*line, "status", status);
      (void)jsonl::parse_string(*line, "message", message);
      if (status == "error") {
        std::cerr << "hlsavd: job failed: " << message << "\n";
        return 1;
      }
      if (have_report) {
        if (out_path.empty()) {
          std::cout << report;
        } else {
          std::ofstream os(out_path, std::ios::binary);
          os << report;
          if (!os) {
            std::cerr << "hlsavd: cannot write '" << out_path << "'\n";
            return 1;
          }
        }
      }
      if (status == "drained") {
        std::cerr << "hlsavd: daemon drained mid-job; partial result written, shard "
                     "journals are resumable\n";
        return 6;
      }
      return 0;
    }
  }
}

StatusOr<std::string> query_status(const std::string& socket_path) {
  StatusOr<int> fd = unix_connect(socket_path);
  HLSAV_RETURN_IF_ERROR(fd.status());
  FdCloser closer{*fd};
  HLSAV_RETURN_IF_ERROR(send_line(*fd, "{\"type\":\"status\"}"));
  LineReader reader(*fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/5000);
  HLSAV_RETURN_IF_ERROR(line.status());
  std::uint64_t queued = 0, running = 0, completed = 0, rejected = 0;
  (void)jsonl::parse_u64(*line, "queued", queued);
  (void)jsonl::parse_u64(*line, "running", running);
  (void)jsonl::parse_u64(*line, "completed", completed);
  (void)jsonl::parse_u64(*line, "rejected", rejected);
  return "queued=" + std::to_string(queued) + " running=" + std::to_string(running) +
         " completed=" + std::to_string(completed) + " rejected=" + std::to_string(rejected);
}

Status request_shutdown(const std::string& socket_path) {
  StatusOr<int> fd = unix_connect(socket_path);
  HLSAV_RETURN_IF_ERROR(fd.status());
  FdCloser closer{*fd};
  HLSAV_RETURN_IF_ERROR(send_line(*fd, "{\"type\":\"shutdown\"}"));
  LineReader reader(*fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/5000);
  HLSAV_RETURN_IF_ERROR(line.status());
  return Status::ok_status();
}

}  // namespace hlsav::serve
