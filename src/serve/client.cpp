#include "serve/client.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <thread>

#include "support/jsonl.h"
#include "support/socket.h"
#include "support/str.h"

namespace hlsav::serve {

namespace {

/// RAII socket close for the three entry points below.
struct FdCloser {
  int fd;
  ~FdCloser() { ::close(fd); }
};

}  // namespace

namespace {

/// One submit attempt. Sets `retryable` for the failure classes a
/// keyed resubmit can safely repeat: connect refused (daemon down or
/// restarting), a typed kUnavailable rejection (back-pressure,
/// drain), and a connection lost mid-stream (daemon killed; the spool
/// has the job).
int submit_once(const std::string& socket_path, const CampaignSpec& spec,
                const std::string& out_path, bool quiet, bool& retryable) {
  retryable = false;
  StatusOr<int> fd = unix_connect(socket_path);
  if (!fd.ok()) {
    std::cerr << "hlsavd: " << fd.status().to_string() << "\n";
    retryable = true;
    return 1;
  }
  FdCloser closer{*fd};
  Status sent = send_line(*fd, encode_submit(spec));
  if (!sent.ok()) {
    std::cerr << "hlsavd: " << sent.to_string() << "\n";
    retryable = true;
    return 1;
  }
  LineReader reader(*fd);
  std::string report;
  bool have_report = false;
  for (;;) {
    StatusOr<std::string> line = reader.read_line();
    if (!line.ok()) {
      std::cerr << "hlsavd: connection lost: " << line.status().to_string() << "\n";
      retryable = true;
      return 1;
    }
    std::string type;
    if (!jsonl::parse_string(*line, "type", type)) continue;
    if (type == "accepted") continue;
    if (type == "rejected") {
      std::string code, message;
      (void)jsonl::parse_string(*line, "code", code);
      (void)jsonl::parse_string(*line, "message", message);
      std::cerr << "hlsavd: rejected (" << code << "): " << message << "\n";
      retryable = code == "unavailable";
      return 7;
    }
    if (type == "progress") {
      std::uint64_t done = 0, total = 0;
      (void)jsonl::parse_u64(*line, "done", done);
      (void)jsonl::parse_u64(*line, "total", total);
      if (!quiet) std::cerr << "hlsavd: " << done << "/" << total << " sites\n";
      continue;
    }
    if (type == "worker-crashed") {
      std::uint64_t site = 0;
      std::string detail;
      (void)jsonl::parse_u64(*line, "site", site);
      (void)jsonl::parse_string(*line, "detail", detail);
      if (!quiet) {
        std::cerr << "hlsavd: worker crashed on site s" << site << " (" << detail
                  << "); contained, respawning\n";
      }
      continue;
    }
    if (type == "quarantined") {
      std::uint64_t site = 0;
      (void)jsonl::parse_u64(*line, "site", site);
      if (!quiet) std::cerr << "hlsavd: site s" << site << " quarantined (worker-crashed)\n";
      continue;
    }
    if (type == "report") {
      std::uint64_t bytes = 0;
      (void)jsonl::parse_u64(*line, "bytes", bytes);
      StatusOr<std::string> payload = reader.read_bytes(bytes);
      if (!payload.ok()) {
        std::cerr << "hlsavd: truncated report: " << payload.status().to_string() << "\n";
        return 1;
      }
      report = std::move(*payload);
      have_report = true;
      continue;
    }
    if (type == "done") {
      std::string status, message;
      (void)jsonl::parse_string(*line, "status", status);
      (void)jsonl::parse_string(*line, "message", message);
      if (status == "error") {
        std::cerr << "hlsavd: job failed: " << message << "\n";
        return 1;
      }
      if (status == "deadline-expired") {
        std::cerr << "hlsavd: job deadline expired before it ran"
                  << (message.empty() ? "" : ": " + message) << "\n";
        return 8;
      }
      if (have_report) {
        if (out_path.empty()) {
          std::cout << report;
        } else {
          std::ofstream os(out_path, std::ios::binary);
          os << report;
          if (!os) {
            std::cerr << "hlsavd: cannot write '" << out_path << "'\n";
            return 1;
          }
        }
      }
      if (status == "drained") {
        std::cerr << "hlsavd: daemon drained mid-job; partial result written, shard "
                     "journals are resumable\n";
        return 6;
      }
      return 0;
    }
  }
}

/// A process-unique idempotency key for auto-keyed retries.
std::string generate_key() {
  std::random_device rd;
  std::uint64_t a = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  char buf[64];
  std::snprintf(buf, sizeof buf, "k%016llx%08lx%llx", static_cast<unsigned long long>(a),
                static_cast<unsigned long>(::getpid()), static_cast<unsigned long long>(now));
  return buf;
}

}  // namespace

int submit_job(const std::string& socket_path, CampaignSpec spec, const SubmitOptions& opt) {
  // Retrying without a key could double-run the job; assign one so
  // every attempt names the same spooled job.
  if (opt.retries > 0 && spec.key.empty()) spec.key = generate_key();
  std::mt19937_64 rng(std::random_device{}() ^ static_cast<std::uint64_t>(::getpid()));
  for (int attempt = 0;; ++attempt) {
    bool retryable = false;
    int rc = submit_once(socket_path, spec, opt.out_path, opt.quiet, retryable);
    if (!retryable || attempt >= opt.retries) return rc;
    std::uint64_t base = opt.retry_base_ms == 0 ? 1 : opt.retry_base_ms;
    std::uint64_t delay = attempt < 63 ? base << attempt : opt.retry_cap_ms;
    if (delay > opt.retry_cap_ms || delay < base) delay = opt.retry_cap_ms;
    // Jitter into the upper half of the window: simultaneous retriers
    // spread instead of stampeding the restarted daemon together.
    std::uint64_t jittered = delay / 2 + rng() % (delay / 2 + 1);
    if (!opt.quiet) {
      std::cerr << "hlsavd: retrying in " << jittered << "ms (attempt " << (attempt + 2) << "/"
                << (opt.retries + 1) << ", key " << spec.key << ")\n";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
  }
}

int submit_job(const std::string& socket_path, const CampaignSpec& spec,
               const std::string& out_path, bool quiet) {
  SubmitOptions opt;
  opt.out_path = out_path;
  opt.quiet = quiet;
  return submit_job(socket_path, spec, opt);
}

StatusOr<std::string> query_status(const std::string& socket_path) {
  StatusOr<int> fd = unix_connect(socket_path);
  HLSAV_RETURN_IF_ERROR(fd.status());
  FdCloser closer{*fd};
  HLSAV_RETURN_IF_ERROR(send_line(*fd, "{\"type\":\"status\"}"));
  LineReader reader(*fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/5000);
  HLSAV_RETURN_IF_ERROR(line.status());
  std::uint64_t queued = 0, running = 0, completed = 0, rejected = 0;
  (void)jsonl::parse_u64(*line, "queued", queued);
  (void)jsonl::parse_u64(*line, "running", running);
  (void)jsonl::parse_u64(*line, "completed", completed);
  (void)jsonl::parse_u64(*line, "rejected", rejected);
  std::string out = "queued=" + std::to_string(queued) + " running=" + std::to_string(running) +
                    " completed=" + std::to_string(completed) +
                    " rejected=" + std::to_string(rejected);
  // Which daemon is this, how long has it been up, and did it recover
  // spooled jobs at boot? The restart story in one line.
  std::string incarnation;
  if (jsonl::parse_string(*line, "incarnation", incarnation) && !incarnation.empty()) {
    double uptime_ms = 0.0;
    std::uint64_t recovered = 0;
    (void)jsonl::parse_double(*line, "uptime_ms", uptime_ms);
    (void)jsonl::parse_u64(*line, "recovered", recovered);
    out += "\n  incarnation " + incarnation + ": up " +
           std::to_string(static_cast<std::uint64_t>(uptime_ms)) + "ms, recovered " +
           std::to_string(recovered) + " job(s) at boot";
  }
  // Compact "P:D;P:D" / "W:R/Q;W:R/Q" wire fields -> one line each.
  std::string depths, workers;
  (void)jsonl::parse_string(*line, "depths", depths);
  (void)jsonl::parse_string(*line, "workers", workers);
  for (const std::string& part : split(depths, ';')) {
    std::size_t colon = part.find(':');
    if (colon == std::string::npos) continue;
    out += "\n  priority " + part.substr(0, colon) + ": depth " + part.substr(colon + 1);
  }
  for (const std::string& part : split(workers, ';')) {
    std::size_t colon = part.find(':');
    std::size_t slash = part.find('/', colon);
    if (colon == std::string::npos || slash == std::string::npos) continue;
    out += "\n  worker " + part.substr(0, colon) + ": respawns=" +
           part.substr(colon + 1, slash - colon - 1) + " quarantines=" + part.substr(slash + 1);
  }
  return out;
}

namespace {

/// One watch attempt: connect, subscribe, stream frames. `retry` turns
/// true (instead of an error return) when the job id is not known yet.
int watch_once(const std::string& socket_path, std::uint64_t job, const WatchOptions& opt,
               bool& retry) {
  retry = false;
  StatusOr<int> fd = unix_connect(socket_path);
  if (!fd.ok()) {
    std::cerr << "hlsavd: " << fd.status().to_string() << "\n";
    return 1;
  }
  FdCloser closer{*fd};
  Status sent = send_line(*fd, encode_watch(job));
  if (!sent.ok()) {
    std::cerr << "hlsavd: " << sent.to_string() << "\n";
    return 1;
  }
  if (opt.stall_reads_ms > 0) {
    // Deliberate slow reader: the daemon's coalescing buffers (and the
    // campaign's immunity to them) are what this hook exists to test.
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.stall_reads_ms));
  }
  LineReader reader(*fd);
  std::string report;
  bool have_report = false;
  for (;;) {
    StatusOr<std::string> line = reader.read_line();
    if (!line.ok()) {
      std::cerr << "hlsavd: connection lost: " << line.status().to_string() << "\n";
      return 1;
    }
    std::string type;
    if (!jsonl::parse_string(*line, "type", type)) continue;
    if (type == "rejected") {
      std::string code, message;
      (void)jsonl::parse_string(*line, "code", code);
      (void)jsonl::parse_string(*line, "message", message);
      if (message.rfind("unknown job", 0) == 0) {
        retry = true;
        return 1;
      }
      std::cerr << "hlsavd: rejected (" << code << "): " << message << "\n";
      return 7;
    }
    if (type == "snapshot") {
      if (!opt.quiet) {
        std::string state, design;
        std::uint64_t done = 0, total = 0;
        (void)jsonl::parse_string(*line, "state", state);
        (void)jsonl::parse_string(*line, "design", design);
        (void)jsonl::parse_u64(*line, "done", done);
        (void)jsonl::parse_u64(*line, "total", total);
        std::cerr << "hlsavd: watching job " << job << " (" << design << "): " << state << ", "
                  << done << "/" << total << " sites\n";
      }
      continue;
    }
    if (type == "state") {
      std::string state;
      (void)jsonl::parse_string(*line, "state", state);
      if (!opt.quiet) std::cerr << "hlsavd: job " << job << " -> " << state << "\n";
      continue;
    }
    if (type == "progress") {
      std::uint64_t done = 0, total = 0;
      (void)jsonl::parse_u64(*line, "done", done);
      (void)jsonl::parse_u64(*line, "total", total);
      if (!opt.quiet) std::cerr << "hlsavd: " << done << "/" << total << " sites\n";
      continue;
    }
    if (type == "site-started" || type == "site-done") {
      if (!opt.quiet) {
        std::uint64_t site = 0, worker = 0;
        std::string outcome;
        (void)jsonl::parse_u64(*line, "site", site);
        (void)jsonl::parse_u64(*line, "worker", worker);
        (void)jsonl::parse_string(*line, "outcome", outcome);
        std::cerr << "hlsavd: w" << worker << " s" << site
                  << (type == "site-started" ? " started" : " " + outcome) << "\n";
      }
      continue;
    }
    if (type == "worker-crashed") {
      std::uint64_t site = 0;
      std::string detail;
      (void)jsonl::parse_u64(*line, "site", site);
      (void)jsonl::parse_string(*line, "detail", detail);
      if (!opt.quiet) {
        std::cerr << "hlsavd: worker crashed on site s" << site << " (" << detail
                  << "); contained, respawning\n";
      }
      continue;
    }
    if (type == "quarantined") {
      std::uint64_t site = 0;
      (void)jsonl::parse_u64(*line, "site", site);
      if (!opt.quiet) std::cerr << "hlsavd: site s" << site << " quarantined (worker-crashed)\n";
      continue;
    }
    if (type == "report") {
      std::uint64_t bytes = 0;
      (void)jsonl::parse_u64(*line, "bytes", bytes);
      StatusOr<std::string> payload = reader.read_bytes(bytes);
      if (!payload.ok()) {
        std::cerr << "hlsavd: truncated report: " << payload.status().to_string() << "\n";
        return 1;
      }
      report = std::move(*payload);
      have_report = true;
      continue;
    }
    if (type == "done") {
      std::string status, message;
      (void)jsonl::parse_string(*line, "status", status);
      (void)jsonl::parse_string(*line, "message", message);
      if (status == "error") {
        std::cerr << "hlsavd: job failed: " << message << "\n";
        return 1;
      }
      if (status == "deadline-expired") {
        std::cerr << "hlsavd: job deadline expired before it ran"
                  << (message.empty() ? "" : ": " + message) << "\n";
        return 8;
      }
      if (have_report) {
        if (opt.out_path.empty()) {
          std::cout << report;
        } else {
          std::ofstream os(opt.out_path, std::ios::binary);
          os << report;
          if (!os) {
            std::cerr << "hlsavd: cannot write '" << opt.out_path << "'\n";
            return 1;
          }
        }
      }
      return status == "drained" ? 6 : 0;
    }
  }
}

}  // namespace

int watch_job(const std::string& socket_path, std::uint64_t job, const WatchOptions& opt) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opt.wait_ms);
  for (;;) {
    bool retry = false;
    int rc = watch_once(socket_path, job, opt, retry);
    if (!retry) return rc;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::cerr << "hlsavd: unknown job " << job << "\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

StatusOr<std::string> query_metrics(const std::string& socket_path) {
  StatusOr<int> fd = unix_connect(socket_path);
  HLSAV_RETURN_IF_ERROR(fd.status());
  FdCloser closer{*fd};
  HLSAV_RETURN_IF_ERROR(send_line(*fd, "{\"type\":\"metrics\"}"));
  LineReader reader(*fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/5000);
  HLSAV_RETURN_IF_ERROR(line.status());
  return *line;
}

StatusOr<std::string> fetch_trace(const std::string& socket_path, std::uint64_t job) {
  StatusOr<int> fd = unix_connect(socket_path);
  HLSAV_RETURN_IF_ERROR(fd.status());
  FdCloser closer{*fd};
  HLSAV_RETURN_IF_ERROR(
      send_line(*fd, "{\"type\":\"trace\",\"job\":" + std::to_string(job) + "}"));
  LineReader reader(*fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/5000);
  HLSAV_RETURN_IF_ERROR(line.status());
  std::string type;
  (void)jsonl::parse_string(*line, "type", type);
  if (type == "rejected") {
    std::string message;
    (void)jsonl::parse_string(*line, "message", message);
    return Status::invalid_argument(message.empty() ? "trace request rejected" : message);
  }
  std::uint64_t bytes = 0;
  (void)jsonl::parse_u64(*line, "bytes", bytes);
  return reader.read_bytes(bytes, /*timeout_ms=*/10000);
}

Status request_shutdown(const std::string& socket_path) {
  StatusOr<int> fd = unix_connect(socket_path);
  HLSAV_RETURN_IF_ERROR(fd.status());
  FdCloser closer{*fd};
  HLSAV_RETURN_IF_ERROR(send_line(*fd, "{\"type\":\"shutdown\"}"));
  LineReader reader(*fd);
  StatusOr<std::string> line = reader.read_line(/*timeout_ms=*/5000);
  HLSAV_RETURN_IF_ERROR(line.status());
  return Status::ok_status();
}

}  // namespace hlsav::serve
