#include "serve/shard.h"

#include <signal.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <thread>

#include "pipeline/compile.h"
#include "sim/fault.h"
#include "sim/journal.h"
#include "support/jsonl.h"
#include "support/str.h"
#include "support/subprocess.h"

namespace hlsav::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Worker exit code for "SIGTERM received, journal flushed, exiting
/// cleanly mid-shard" (tools/hlsavd.cpp worker mode).
constexpr int kWorkerDrainedExit = 21;

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

struct WorkerState {
  int index = 0;
  std::vector<std::uint32_t> assigned;  // site ids, ascending
  std::string journal_path;
  std::optional<Subprocess> proc;
  std::string stdout_buf;
  Clock::time_point last_heartbeat;
  Clock::time_point respawn_at;
  unsigned attempts = 0;  // consecutive crash respawns (backoff exponent)
  bool pending_respawn = false;
  bool complete = false;
  /// Site the worker last announced "starting" and has not journaled;
  /// -1 when idle. The blame target when the worker dies.
  std::int64_t inflight = -1;
};

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

StatusOr<SupervisedResult> run_sharded_campaign(const CampaignSpec& spec,
                                                const SupervisorOptions& opt) {
  if (opt.worker_binary.empty()) {
    return Status::invalid_argument("supervisor needs a worker binary path");
  }
  if (opt.job_dir.empty()) return Status::invalid_argument("supervisor needs a job directory");

  auto emit = [&](const SupervisorEvent& e) {
    if (opt.event_sink) opt.event_sink(e);
  };
  auto emit_phase = [&](SupervisorEvent::Kind kind, const char* name) {
    SupervisorEvent e;
    e.kind = kind;
    e.detail = name;
    emit(e);
  };

  emit_phase(SupervisorEvent::Kind::kPhaseBegin, "compile");
  // Compile and golden-run exactly as the worker will: the supervisor's
  // sampled selection and golden cycle count must match the workers'
  // byte for byte, or the shard fingerprints would disagree.
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  pipeline::CompileOptions copts;
  if (spec.assertions == "ndebug") {
    copts.assert_opts = assertions::Options::ndebug();
  } else if (spec.assertions == "unoptimized") {
    copts.assert_opts = assertions::Options::unoptimized();
  } else if (spec.assertions == "optimized") {
    copts.assert_opts = assertions::Options::optimized();
  } else {
    return Status::invalid_argument("unknown assertions mode '" + spec.assertions + "'");
  }
  StatusOr<pipeline::Compiled> compiled = pipeline::compile_file(sm, diags, spec.design_path, copts);
  if (!compiled.ok()) {
    return Status::error(compiled.status().code(), "cannot compile '" + spec.design_path +
                                                       "': " + compiled.status().message() +
                                                       "\n" + diags.render());
  }
  const ir::Design& design = compiled->design;
  const sched::DesignSchedule& schedule = compiled->schedule;

  StatusOr<std::map<std::string, std::vector<std::uint64_t>>> feeds =
      parse_feed_spec(spec.feeds);
  if (!feeds.ok()) return feeds.status();

  sim::ExternRegistry externs;
  sim::GoldenRef golden;
  try {
    golden = sim::golden_run(design, schedule, externs, *feeds, sim::SimOptions{});
  } catch (const InternalError& e) {
    return Status::error(StatusCode::kSimError, e.what());
  }
  std::uint64_t max_cycles = spec.max_cycles != 0
                                 ? spec.max_cycles
                                 : std::max<std::uint64_t>(10'000, 16 * golden.cycles);

  // Same sampling as sim::run_campaign_st: the supervisor and every
  // worker must agree on which sites the campaign contains.
  std::vector<sim::FaultSpec> sites = sim::enumerate_fault_sites(design, schedule);
  std::vector<std::size_t> order(sites.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (spec.max_faults != 0 && spec.max_faults < sites.size()) {
    std::mt19937_64 rng(spec.seed);
    std::shuffle(order.begin(), order.end(), rng);
    order.resize(spec.max_faults);
    std::sort(order.begin(), order.end());
  }
  std::vector<std::uint32_t> selected;
  std::map<std::uint32_t, const sim::FaultSpec*> spec_by_id;
  for (std::size_t idx : order) {
    selected.push_back(sites[idx].id);
    spec_by_id[sites[idx].id] = &sites[idx];
  }
  if (selected.empty()) return Status::invalid_argument("campaign selects no fault sites");
  emit_phase(SupervisorEvent::Kind::kPhaseEnd, "compile");

  unsigned workers = std::max(1u, opt.workers);
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, selected.size()));

  // Round-robin deal. Sites stay ascending within a shard, so "first
  // assigned-but-not-journaled" is a meaningful fallback blame target.
  std::vector<WorkerState> pool(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool[w].index = static_cast<int>(w);
    pool[w].journal_path = opt.job_dir + "/shard_" + std::to_string(w) + ".jsonl";
  }
  for (std::size_t i = 0; i < selected.size(); ++i) {
    pool[i % workers].assigned.push_back(selected[i]);
  }

  SupervisedResult result;
  std::set<std::uint32_t> quarantined;
  std::map<std::uint32_t, unsigned> crash_counts;
  std::set<std::uint32_t> done_sites;  // journaled (from heartbeats) + quarantined
  std::uint64_t last_reported_done = ~0ull;
  bool draining = false;

  auto emit_progress = [&] {
    std::uint64_t done = done_sites.size();
    if (done == last_reported_done) return;
    last_reported_done = done;
    SupervisorEvent e;
    e.kind = SupervisorEvent::Kind::kProgress;
    e.done = done;
    e.total = selected.size();
    emit(e);
  };

  auto remaining_sites = [&](const WorkerState& w,
                             const std::set<std::uint32_t>& journaled) {
    std::vector<std::uint32_t> rem;
    for (std::uint32_t id : w.assigned) {
      if (journaled.count(id) == 0 && quarantined.count(id) == 0) rem.push_back(id);
    }
    return rem;
  };

  /// Authoritative journaled set for one worker: reload its shard from
  /// disk (heartbeat lines can be lost with the pipe; fsync'd journal
  /// lines cannot).
  auto journaled_on_disk = [&](const WorkerState& w) {
    std::set<std::uint32_t> ids;
    if (!file_exists(w.journal_path)) return ids;
    StatusOr<sim::JournalContents> loaded = sim::load_journal(w.journal_path);
    if (!loaded.ok()) return ids;
    for (const auto& [id, r] : loaded->results) {
      if (std::binary_search(w.assigned.begin(), w.assigned.end(), id)) ids.insert(id);
    }
    return ids;
  };

  auto spawn_worker = [&](WorkerState& w, const std::vector<std::uint32_t>& site_ids) -> Status {
    std::vector<std::string> argv = {
        opt.worker_binary,
        "worker",
        "--design=" + spec.design_path,
        "--journal=" + w.journal_path,
        "--sites=" + [&] {
          std::string s;
          for (std::uint32_t id : site_ids) {
            if (!s.empty()) s += ',';
            s += std::to_string(id);
          }
          return s;
        }(),
        "--seed=" + std::to_string(spec.seed),
        "--max-faults=" + std::to_string(spec.max_faults),
        "--max-cycles=" + std::to_string(max_cycles),
        "--golden-cycles=" + std::to_string(golden.cycles),
        "--assertions=" + spec.assertions,
    };
    if (spec.site_wall_ms > 0.0) {
      argv.push_back("--site-wall-ms=" + std::to_string(spec.site_wall_ms));
    }
    if (!spec.feeds.empty()) argv.push_back("--feed=" + spec.feeds);
    if (!spec.crash_at.empty() || !spec.stall_at.empty()) {
      argv.push_back("--fault-token-dir=" + opt.job_dir);
      argv.push_back("--crash-limit=" + std::to_string(spec.crash_limit));
      for (std::uint32_t id : spec.crash_at) {
        argv.push_back("--crash-at-site=" + std::to_string(id));
      }
      for (std::uint32_t id : spec.stall_at) {
        argv.push_back("--stall-at-site=" + std::to_string(id));
      }
    }
    // kill_on_parent_death: if the daemon itself dies (kill -9), its
    // workers must not keep appending to journal shards that a
    // restarted daemon is about to re-adopt.
    StatusOr<Subprocess> proc =
        Subprocess::spawn(argv, /*capture_stdout=*/true, /*kill_on_parent_death=*/true);
    HLSAV_RETURN_IF_ERROR(proc.status());
    w.proc.emplace(std::move(*proc));
    w.stdout_buf.clear();
    w.inflight = -1;
    w.last_heartbeat = Clock::now();
    w.pending_respawn = false;
    return Status::ok_status();
  };

  /// One worker death (or clean-but-incomplete exit): blame the
  /// in-flight site, maybe quarantine it, schedule a respawn.
  auto contain_death = [&](WorkerState& w, const ExitInfo& info) {
    std::set<std::uint32_t> journaled = journaled_on_disk(w);
    for (std::uint32_t id : journaled) done_sites.insert(id);
    std::vector<std::uint32_t> rem = remaining_sites(w, journaled);
    if (rem.empty()) {
      w.complete = true;
      return;
    }
    // Blame: the announced in-flight site if it is still owed;
    // otherwise the first remaining one (a worker that died before its
    // first "starting" line -- exec failure, early OOM -- still blames
    // *something*, so crash loops always converge on quarantine).
    std::uint32_t blamed = rem.front();
    if (w.inflight >= 0) {
      auto id = static_cast<std::uint32_t>(w.inflight);
      if (std::find(rem.begin(), rem.end(), id) != rem.end()) blamed = id;
    }
    w.inflight = -1;
    result.respawns++;
    unsigned& crashes = crash_counts[blamed];
    crashes++;
    {
      SupervisorEvent e;
      e.kind = SupervisorEvent::Kind::kWorkerCrashed;
      e.site = blamed;
      e.worker = w.index;
      e.detail = info.describe();
      e.done = done_sites.size();
      e.total = selected.size();
      emit(e);
    }
    if (crashes >= opt.quarantine_cap) {
      quarantined.insert(blamed);
      done_sites.insert(blamed);
      result.quarantined.push_back(blamed);
      SupervisorEvent e;
      e.kind = SupervisorEvent::Kind::kQuarantined;
      e.site = blamed;
      e.worker = w.index;
      emit(e);
      rem = remaining_sites(w, journaled);
      if (rem.empty()) {
        w.complete = true;
        return;
      }
    }
    std::uint64_t backoff = opt.backoff_base_ms << std::min(w.attempts, 20u);
    backoff = std::min(backoff, opt.backoff_cap_ms);
    w.attempts++;
    w.pending_respawn = true;
    w.respawn_at = Clock::now() + std::chrono::milliseconds(backoff);
  };

  auto parse_heartbeats = [&](WorkerState& w) {
    for (;;) {
      std::size_t eol = w.stdout_buf.find('\n');
      if (eol == std::string::npos) return;
      std::string line = w.stdout_buf.substr(0, eol);
      w.stdout_buf.erase(0, eol + 1);
      std::string type;
      if (!jsonl::parse_string(line, "type", type)) continue;
      std::uint64_t site = 0;
      if (!jsonl::parse_u64(line, "site", site)) continue;
      w.last_heartbeat = Clock::now();
      if (type == "starting") {
        w.inflight = static_cast<std::int64_t>(site);
        SupervisorEvent e;
        e.kind = SupervisorEvent::Kind::kSiteStarted;
        e.site = static_cast<std::uint32_t>(site);
        e.worker = w.index;
        emit(e);
      } else if (type == "site") {
        done_sites.insert(static_cast<std::uint32_t>(site));
        if (w.inflight == static_cast<std::int64_t>(site)) w.inflight = -1;
        SupervisorEvent e;
        e.kind = SupervisorEvent::Kind::kSiteDone;
        e.site = static_cast<std::uint32_t>(site);
        e.worker = w.index;
        (void)jsonl::parse_string(line, "outcome", e.detail);
        emit(e);
      }
    }
  };

  emit_progress();
  emit_phase(SupervisorEvent::Kind::kPhaseBegin, "shard");
  for (WorkerState& w : pool) {
    HLSAV_RETURN_IF_ERROR(spawn_worker(w, w.assigned));
  }

  for (;;) {
    if (!draining && opt.drain != nullptr && opt.drain->load(std::memory_order_relaxed)) {
      draining = true;
      result.drained = true;
      for (WorkerState& w : pool) {
        if (w.proc.has_value() && !w.complete) w.proc->kill(SIGTERM);
      }
    }
    bool all_complete = true;
    for (WorkerState& w : pool) {
      if (w.complete) continue;
      if (w.pending_respawn) {
        if (draining) {
          w.complete = true;  // degrade: keep what's journaled, stop retrying
          continue;
        }
        if (Clock::now() >= w.respawn_at) {
          std::vector<std::uint32_t> rem = remaining_sites(w, journaled_on_disk(w));
          if (rem.empty()) {
            w.complete = true;
            continue;
          }
          HLSAV_RETURN_IF_ERROR(spawn_worker(w, rem));
        }
        all_complete = false;
        continue;
      }
      if (!w.proc.has_value()) {
        w.complete = true;  // defensive: no process and nothing pending
        continue;
      }
      (void)w.proc->read_stdout(w.stdout_buf);
      parse_heartbeats(w);
      std::optional<ExitInfo> ended = w.proc->poll();
      if (!ended.has_value()) {
        // Heartbeat watchdog: a silent worker (stalled site, livelock
        // the in-process backstops missed) dies by SIGKILL and takes
        // the normal contained-crash path on the next poll.
        if (opt.heartbeat_timeout_ms > 0.0 &&
            ms_since(w.last_heartbeat) > opt.heartbeat_timeout_ms) {
          w.proc->kill(SIGKILL);
          w.last_heartbeat = Clock::now();  // one kill per overrun
        }
        all_complete = false;
        continue;
      }
      (void)w.proc->read_stdout(w.stdout_buf);  // the pipe outlives the child
      parse_heartbeats(w);
      if (ended->clean() || (!ended->signaled && ended->value == kWorkerDrainedExit)) {
        std::set<std::uint32_t> journaled = journaled_on_disk(w);
        for (std::uint32_t id : journaled) done_sites.insert(id);
        if (remaining_sites(w, journaled).empty() || draining) {
          w.complete = true;
        } else {
          // Clean exit with sites still owed is a broken worker; the
          // contained-crash path bounds it via quarantine like any
          // other repeated failure.
          contain_death(w, *ended);
          all_complete = false;
        }
        continue;
      }
      contain_death(w, *ended);
      if (!w.complete) all_complete = false;
    }
    emit_progress();
    if (all_complete) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  emit_phase(SupervisorEvent::Kind::kPhaseEnd, "shard");

  // ---- merge: shard journals -> one site-ordered report ----
  emit_phase(SupervisorEvent::Kind::kPhaseBegin, "merge");
  std::vector<std::string> shard_paths;
  for (const WorkerState& w : pool) {
    if (!file_exists(w.journal_path)) continue;
    shard_paths.push_back(w.journal_path);
    struct stat st{};
    if (::stat(w.journal_path.c_str(), &st) == 0) {
      result.journal_bytes += static_cast<std::uint64_t>(st.st_size);
    }
  }
  if (shard_paths.empty()) {
    if (result.drained) {
      result.report.seed = spec.seed;
      result.report.sites_total = sites.size();
      result.report.golden_cycles = golden.cycles;
      result.report.interrupted = true;
      emit_phase(SupervisorEvent::Kind::kPhaseEnd, "merge");
      return result;
    }
    return Status::internal("no shard journal was ever written");
  }
  StatusOr<sim::ShardMergeResult> merged = sim::merge_journal_shards(shard_paths);
  HLSAV_RETURN_IF_ERROR(merged.status());
  for (std::uint32_t id : quarantined) {
    sim::FaultResult r;
    r.site = *spec_by_id.at(id);
    r.outcome = sim::FaultOutcome::kWorkerCrashed;
    merged->results.insert_or_assign(id, std::move(r));
  }

  sim::CampaignReport& report = result.report;
  report.seed = spec.seed;
  report.sites_total = sites.size();
  report.golden_cycles = golden.cycles;
  report.threads = 1;
  report.interrupted = result.drained;
  for (std::uint32_t id : selected) {
    auto it = merged->results.find(id);
    if (it == merged->results.end()) {
      if (result.drained) continue;  // degraded: only journaled sites survive
      return Status::internal("site " + std::to_string(id) +
                              " missing after shard merge -- supervisor bug");
    }
    sim::FaultResult r = std::move(it->second);
    r.site = *spec_by_id.at(id);  // journals only carry the id
    report.results.push_back(std::move(r));
  }
  result.rendered = report.render(design);
  emit_phase(SupervisorEvent::Kind::kPhaseEnd, "merge");
  return result;
}

}  // namespace hlsav::serve
