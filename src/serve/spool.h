// Write-ahead job spool: the daemon's durable memory of accepted work.
//
// Every job hlsavd accepts is recorded here *before* the accept line
// reaches the client, so the accept is a promise that survives the
// daemon: one file per job holding an atomically-written header (the
// canonical submit line, idempotency key, priority, deadline) followed
// by fsync'd append records for each state transition
// (queued -> running -> done/error/aborted/drained/deadline-expired).
// The format deliberately mirrors the campaign journal
// (sim/journal.*): a crash can only tear the last record, so a loader
// that stops at the first unparseable line -- and truncates it away --
// recovers exactly what was durable. A restarted daemon scans the
// spool, re-adopts every unfinished job (their journal shards resume
// byte-identically behind the fingerprint gate), and answers duplicate
// idempotency keys with the original job id so clients can blindly
// resubmit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace hlsav::serve {

/// One spooled job as recovered from disk (or about to be written).
struct SpoolEntry {
  std::uint64_t job = 0;
  /// Idempotency key: the client's handle for "this exact job".
  std::string key;
  /// Canonical submit request line (encode_submit of the decoded spec):
  /// re-decoded on recovery, byte-compared on duplicate submits.
  std::string submit_line;
  int priority = 0;
  /// TTL relative to submitted_unix_ms; 0 = none.
  std::uint64_t deadline_ms = 0;
  std::uint64_t submitted_unix_ms = 0;
  /// queued | running | done | error | aborted | drained |
  /// deadline-expired. Header-only entries are "queued": the daemon
  /// died after spooling but before (or during) the run.
  std::string state = "queued";
  /// Free-text detail from the last state record (error messages).
  std::string detail;
  /// On-disk path of this entry (filled by scan()).
  std::string path;

  /// True for states no restart should re-adopt automatically.
  [[nodiscard]] bool terminal() const;
};

/// What a boot-time scan found.
struct SpoolScan {
  /// All readable entries, sorted by job id.
  std::vector<SpoolEntry> entries;
  /// Unreadable entries moved to <dir>/quarantine/ with a .reason file
  /// -- counted, never a boot failure.
  std::size_t quarantined = 0;
  /// Entries whose torn tail record was truncated away.
  std::size_t torn_tails = 0;
};

/// The spool directory. The daemon is the sole writer, so loads may
/// truncate torn tails in place (exactly like CampaignJournal).
class JobSpool {
 public:
  /// Opens `dir`, creating it if needed.
  [[nodiscard]] static StatusOr<JobSpool> open(std::string dir);

  /// Scans every *.spool entry. See SpoolScan for the contract.
  [[nodiscard]] StatusOr<SpoolScan> scan() const;

  /// Durably records a newly accepted job: atomic header write, then a
  /// directory fsync so the entry itself survives power loss. Must
  /// complete before the accept line is sent -- the write-ahead rule.
  [[nodiscard]] Status record_accepted(const SpoolEntry& entry) const;

  /// Appends one fsync'd state-transition record to the job's entry.
  [[nodiscard]] Status record_state(std::uint64_t job, const std::string& state,
                                    const std::string& detail = "") const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  [[nodiscard]] static bool state_terminal(const std::string& state);

 private:
  explicit JobSpool(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] std::string entry_path(std::uint64_t job) const;

  std::string dir_;
};

}  // namespace hlsav::serve
