// Design simulator.
//
// Two modes sharing one interpreter core:
//
//  * kSoftware -- the paper's "software simulation": source semantics,
//    C models for external HDL functions, no translation faults, assert
//    statements evaluated directly. Run it on the design *before*
//    assertion synthesis.
//
//  * kHardware -- in-circuit execution: the synthesized design (after
//    assertions::synthesize), HDL behaviours for external functions,
//    translation-fault injection active, and cycle accounting driven by
//    the schedule (sequential blocks charge their FSM states; pipelined
//    loops charge latency + (n-1) * rate; blocking stream handshakes
//    stall with timestamped FIFO entries).
//
// Processes run cooperatively: each has a local clock; a blocked stream
// op suspends the process until the peer makes progress. If no process
// can make progress and the application has not completed, the run is
// reported as a hang together with each stuck process's source position
// -- this is what the paper's §5.1 assert(0)/NABORT tracing example
// diagnoses.
//
// Failure streams are drained into the assertions::NotificationFunction,
// which renders the ANSI-C message and halts the run unless NABORT.
// Checker processes are evaluated reactively when the application
// executes their kAssertTap (their latency only delays notification,
// exactly as the paper argues), and collector processes forward packed
// failure words.
//
// Hot-path design: every linear lookup the execute loop would otherwise
// perform (assertion records, checker processes, stream names) is
// resolved once in init_state() into O(1) caches; checker evaluations
// reuse a preallocated register scratch buffer; CPU-bound stream
// draining is event-driven off a dirty list instead of scanning every
// stream after every process step.
#pragma once

#include <array>
#include <chrono>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "assertions/notify.h"
#include "ir/ir.h"
#include "sched/schedule.h"
#include "sim/compiled.h"
#include "sim/extern_registry.h"
#include "sim/fault.h"
#include "support/status.h"

namespace hlsav::trace {
class TraceEngine;
}

namespace hlsav::metrics {
class Profiler;
}

namespace hlsav::sim {

enum class SimMode { kSoftware, kHardware };

/// Wall-clock watchdog budget. The simulator polls it cooperatively
/// (counter-masked, so the hot loop pays an increment-and-mask, not a
/// clock read, per poll site) and stops with RunStatus::kDeadline once
/// it expires. An already-expired deadline stops the run before the
/// first cycle -- that determinism is what the watchdog tests key on.
struct Deadline {
  std::chrono::steady_clock::time_point at{};

  [[nodiscard]] bool expired() const { return std::chrono::steady_clock::now() >= at; }

  /// A deadline `ms` milliseconds from now (non-positive: already expired).
  [[nodiscard]] static Deadline in_ms(double ms) {
    auto delta = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
    return Deadline{std::chrono::steady_clock::now() + delta};
  }
};

struct SimOptions {
  SimMode mode = SimMode::kHardware;
  /// Stop and report a hang after this many cycles on any local clock.
  std::uint64_t max_cycles = 50'000'000;
  /// Model the paper's single time-multiplexed physical CPU channel:
  /// words bound for the CPU deliver one per cycle, in arrival order,
  /// so a failure notification can be delayed behind data traffic (the
  /// paper argues this never stalls the application -- and it doesn't:
  /// only CPU-side delivery stamps shift).
  bool model_channel_mux = true;
  /// Record an execution trace (per-op events, capped at trace_limit).
  bool trace = false;
  std::size_t trace_limit = 100'000;
  /// Armed ELA capture engine (borrowed; may be null). When set, the
  /// simulator feeds per-cycle events -- FSM transitions, register
  /// writes, stream handshakes, BRAM ports, assertion verdicts -- into
  /// its ring buffers. Disabled costs one pointer test per block run.
  trace::TraceEngine* ela = nullptr;
  /// Armed cycle-attribution profiler (borrowed; may be null). Fed at
  /// block/pipeline retire, stream stalls and assertion evaluations --
  /// never per op, so the fast path stays on. Disabled costs one
  /// pointer test per hook site.
  metrics::Profiler* profile = nullptr;
  /// Wall-clock watchdog (borrowed; may be null). Polled at block-step
  /// and pipeline-iteration boundaries behind the same one-pointer-test
  /// pattern as `ela`/`profile`: disabled costs one branch per site.
  const Deadline* deadline = nullptr;
  FaultEngine faults;
  /// Execution engine. kCompiled/kAuto use the functions in `compiled`
  /// for the processes they cover and interpret the rest; the simulator
  /// itself falls back to full interpretation (and says why in
  /// engine_note()) when no handle is attached or when an armed
  /// observability feature -- trace, ELA, profiler, fault injection --
  /// needs the interpreter's per-op hooks. Cycle counts, RunResults and
  /// received words are bit-identical across engines; the differential
  /// suite (tests/codegen) enforces that.
  SimEngine engine = SimEngine::kInterpreter;
  /// Borrowed compiled design (see codegen::compile_design). Must
  /// outlive the simulator. Ignored when engine == kInterpreter.
  const CompiledDesignHandle* compiled = nullptr;
};

/// One traced op execution (trace mode). The closest thing the flow has
/// to a waveform: which process executed what, when, and from which
/// source line.
struct TraceEvent {
  std::uint64_t cycle = 0;
  std::string process;
  ir::OpKind kind = ir::OpKind::kCopy;
  SourceLoc loc;
};

enum class RunStatus : std::uint8_t {
  kCompleted,  // every application process returned
  kAborted,    // halted by an assertion failure (NABORT off)
  kHung,       // deadlock or cycle limit: some process never finished
  kDeadline,   // SimOptions::deadline expired (wall-clock watchdog)
};

/// Why a process is suspended. The scheduler loop branches on this (a
/// cycle-limited process is never re-stepped); the human-readable text
/// is rendered lazily, only for hang reports.
enum class BlockReason : std::uint8_t {
  kNone,
  kStreamEmpty,          // stream_read on an empty FIFO
  kStreamFull,           // stream_write on a full FIFO
  kCycleLimit,           // local clock passed SimOptions::max_cycles
  kCycleLimitPipelined,  // ditto, inside a pipelined loop
};

/// How a hang was diagnosed. A deadlock cycle and starvation are both
/// *proven* the moment no process can step (O(cycles-to-block)); the
/// cycle limit is only the livelock backstop for processes that never
/// stop making local progress.
enum class HangKind : std::uint8_t {
  kDeadlockCycle,  // circular wait over stream empty/full edges
  kStarvation,     // blocked on a peer that finished / CPU data that never came
  kCycleLimit,     // SimOptions::max_cycles backstop (livelock)
};

/// One stuck process in a hang diagnosis.
struct HangWaiter {
  std::string process;
  BlockReason reason = BlockReason::kNone;
  std::string stream;  // blocked stream's name (kStream* reasons only)
  SourceLoc loc;
  std::uint64_t cycle = 0;
  /// The process this one waits on (the blocked stream's peer endpoint);
  /// empty when the peer is the CPU or already finished.
  std::string waits_on;
};

/// Structured hang diagnosis: every stuck process, plus -- when a
/// circular wait exists -- the proven cycle. This is what the paper's
/// §5.1 assert(0)/NABORT tracing had to reconstruct by hand.
struct HangInfo {
  HangKind kind = HangKind::kStarvation;
  std::vector<HangWaiter> waiters;
  /// Indices into `waiters` forming the deadlock cycle in wait order
  /// (cycle[i] waits on cycle[i+1], the last waits on the first). Empty
  /// unless kind == kDeadlockCycle.
  std::vector<std::size_t> cycle;

  /// Renders the report (the RunResult::hang_report text).
  [[nodiscard]] std::string render() const;
};

struct RunResult {
  RunStatus status = RunStatus::kCompleted;
  std::uint64_t cycles = 0;  // max local clock over application processes
  std::vector<assertions::Failure> failures;
  std::string hang_report;  // rendered from `hang` when kHung
  std::optional<HangInfo> hang;
  /// Trace mode hit SimOptions::trace_limit: `trace()` holds a prefix
  /// of the run, not the whole run. Explicit so consumers never mistake
  /// a capped capture for a short one.
  bool trace_truncated = false;

  [[nodiscard]] bool completed() const { return status == RunStatus::kCompleted; }
};

class Simulator {
 public:
  Simulator(const ir::Design& design, const sched::DesignSchedule& schedule,
            const ExternRegistry& externs, SimOptions options = {});

  /// Feeds CPU-producer data into the named stream. Values must fit the
  /// stream width: a harness bug that silently truncated its input would
  /// masquerade as a hardware fault, so it throws InternalError instead.
  void feed(std::string_view stream_name, const std::vector<std::uint64_t>& values);
  void feed(ir::StreamId stream, const std::vector<std::uint64_t>& values);

  /// Status-returning feed for callers driving untrusted input (the
  /// fuzz harness, the CLI): unknown stream / over-wide value comes
  /// back as kInvalidArgument instead of a thrown InternalError.
  [[nodiscard]] Status try_feed(std::string_view stream_name,
                                const std::vector<std::uint64_t>& values);

  /// Runs to completion / abort / hang.
  [[nodiscard]] RunResult run();

  /// Values received by the CPU on the named data stream (valid after run).
  [[nodiscard]] std::vector<std::uint64_t> received(std::string_view stream_name) const;

  /// Sink invoked on each assertion failure as it is decoded.
  void set_failure_sink(assertions::NotificationFunction::Sink sink) {
    notify_.set_sink(std::move(sink));
  }

  /// Execution trace (only populated with SimOptions::trace).
  [[nodiscard]] const std::vector<TraceEvent>& trace() const { return trace_; }
  /// Renders the trace, one event per line.
  [[nodiscard]] std::string render_trace(const SourceManager* sm = nullptr) const;

  /// True when at least one process runs through a compiled function.
  [[nodiscard]] bool engine_active() const { return engine_active_; }
  /// Why a requested compiled engine fell back to the interpreter
  /// (empty when active or when the interpreter was requested). The
  /// fallback contract: a compiled request never fails the run -- it
  /// interprets and reports the reason here for the driver to log.
  [[nodiscard]] const std::string& engine_note() const { return engine_note_; }

 private:
  struct FifoEntry {
    BitVector value;
    std::uint64_t time = 0;
  };

  struct StreamState {
    std::deque<FifoEntry> fifo;
    std::vector<BitVector> cpu_received;
    unsigned depth = 0;  // cached ir::Stream::depth (writer backpressure)
    bool cpu_producer = false;
    bool cpu_consumer = false;
    bool dirty = false;  // on the dirty-drain list (cpu_consumer only)
  };

  struct PipeCtx {
    const ir::LoopInfo* loop = nullptr;
    std::uint64_t iter = 0;
    std::uint64_t start_cycle = 0;
    // Resolved once on loop entry (advance_to_block).
    const ir::BasicBlock* header = nullptr;
    const ir::BasicBlock* body = nullptr;
    const sched::BlockSchedule* bs = nullptr;
  };

  struct ProcState {
    const ir::Process* proc = nullptr;
    const sched::ProcessSchedule* sched = nullptr;
    ir::BlockId cur = ir::kNoBlock;
    // Current block and its schedule, resolved at each block transition
    // so the execute loop never re-fetches them per retry.
    const ir::BasicBlock* cur_block = nullptr;
    const sched::BlockSchedule* cur_sched = nullptr;
    std::size_t op_idx = 0;
    std::uint64_t cycle = 0;             // local clock
    std::uint64_t block_entry_cycle = 0; // local clock at block entry
    std::vector<BitVector> regs;
    std::optional<PipeCtx> pipe;
    /// Compiled engine (when non-null the interpreter never runs this
    /// process): the AOT function, its u64 register file, and the state
    /// words it communicates through (sim/compiled.h layout).
    CompiledProcFn cfn = nullptr;
    std::vector<std::uint64_t> regs64;
    std::array<std::uint64_t, kStWords> st{};
    /// Local time of the last assert_cycles marker (timing assertions).
    std::uint64_t cycle_marker = 0;
    /// Profiler slot (metrics::Profiler::index_of), 0 when unarmed.
    std::size_t prof_idx = 0;
    bool done = false;
    bool blocked = false;
    SourceLoc blocked_at;
    BlockReason block_reason = BlockReason::kNone;
    ir::StreamId blocked_stream = ir::kNoStream;  // for the kStream* reasons

    [[nodiscard]] bool cycle_limited() const {
      return blocked && (block_reason == BlockReason::kCycleLimit ||
                         block_reason == BlockReason::kCycleLimitPipelined);
    }
  };

  /// Per-checker evaluation cache: the resolved process/block and a
  /// preallocated register file. `fresh` holds the zero values at the
  /// declared widths; `scratch` is the live file, equal to `fresh`
  /// everywhere except the `touched` registers (inputs and block
  /// destinations), which each evaluation restores -- no per-tap heap
  /// allocation and no full-file copy.
  struct CheckerCache {
    const ir::Process* proc = nullptr;
    const ir::BasicBlock* block = nullptr;
    std::vector<BitVector> fresh;
    std::vector<BitVector> scratch;
    std::vector<ir::RegId> touched;
  };

  /// What an assertion-carrying op resolves to: its record, plus (for
  /// kAssertTap) the checker evaluation cache, so a tap costs a single
  /// hash lookup. Checker pointers stay valid across rehashing because
  /// unordered_map is node-based.
  struct OpAssertInfo {
    const ir::AssertionRecord* rec = nullptr;
    CheckerCache* checker = nullptr;
  };

  struct TransparentStringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  const ir::Design& design_;
  const sched::DesignSchedule& schedule_;
  const ExternRegistry& externs_;
  SimOptions opt_;
  assertions::NotificationFunction notify_;

  std::vector<StreamState> streams_;
  std::vector<std::vector<BitVector>> memories_;
  std::vector<ProcState> procs_;
  bool halt_ = false;
  /// Last delivery slot used on the multiplexed physical CPU channel.
  std::uint64_t channel_busy_until_ = 0;
  /// Per-stream count of process-issued writes (fault injection only;
  /// left empty when the FaultEngine is, so no-fault runs pay nothing).
  std::vector<std::uint64_t> stream_write_seq_;
  /// Count of words delivered over the CPU channel (fault injection only).
  std::uint64_t channel_word_seq_ = 0;
  std::vector<TraceEvent> trace_;

  // ---- init_state() resolution caches (the design is immutable while
  // ---- the simulator lives, so raw pointers into it are stable).
  std::unordered_map<std::string, ir::StreamId, TransparentStringHash, std::equal_to<>>
      stream_ids_;
  std::unordered_map<const ir::Op*, OpAssertInfo> op_assertions_;
  std::unordered_map<const ir::AssertionRecord*, CheckerCache> checkers_;
  /// CPU-consumer streams with undelivered words, drained in id order.
  std::vector<ir::StreamId> dirty_cpu_streams_;
  /// Reusable argument buffer (externs cannot nest).
  std::vector<BitVector> extern_args_;
  bool tracing_ = false;        // flips off once trace_limit is reached
  bool inject_faults_ = false;  // kHardware with a non-empty fault list
  trace::TraceEngine* ela_ = nullptr;  // cached opt_.ela
  metrics::Profiler* prof_ = nullptr;  // cached opt_.profile
  const Deadline* deadline_ = nullptr;  // cached opt_.deadline
  std::uint32_t deadline_poll_ = 0;     // counter-masked clock-read throttle
  bool deadline_hit_ = false;

  // ---- compiled engine (sim/compiled.h ABI) ----
  bool engine_active_ = false;
  std::string engine_note_;  // fallback reason when a compiled run interprets
  /// u64 memory images: when the engine is active *all* memories live
  /// here (compiled code indexes them directly; interpreted processes
  /// and checker evaluations branch to them) so both engines see one
  /// coherent memory. memories_ is the BitVector image used otherwise.
  std::vector<std::vector<std::uint64_t>> mem64_;
  std::vector<std::uint64_t*> mem64_ptrs_;
  std::array<const void*, kCbCount> cb_table_{};

  /// Throttled deadline poll: reads the clock once per 256 calls.
  /// Sets deadline_hit_ + halt_ and returns true when expired.
  bool poll_deadline() {
    if ((++deadline_poll_ & 255u) != 0 || !deadline_->expired()) return false;
    deadline_hit_ = true;
    halt_ = true;
    return true;
  }

  [[nodiscard]] ir::StreamId stream_by_name(std::string_view name) const;
  void init_state();

  /// Cached design_.find_assertion(op.assert_id) for assertion-carrying ops.
  [[nodiscard]] const ir::AssertionRecord* assertion_of(const ir::Op& op) const;
  /// Builds the structured hang diagnosis: every stuck process, the
  /// wait-for edges over BlockReason::kStreamEmpty/kStreamFull, and the
  /// proven deadlock cycle if one exists.
  [[nodiscard]] HangInfo diagnose_hang() const;

  /// Runs one process until it blocks, finishes or the design halts.
  /// Returns true if it made progress.
  bool step_process(ProcState& ps);
  /// Compiled-engine variant: one call into ps.cfn, then maps the
  /// returned action onto the interpreter's blocked/done bookkeeping.
  bool step_process_compiled(ProcState& ps);
  /// Attaches SimOptions::compiled if the engine can run this
  /// configuration; records the fallback reason otherwise.
  void init_engine();
  /// Callback surface for compiled code (cb_table_ slots). The generated
  /// function has already evaluated the op's predicate and timestamp.
  std::uint32_t compiled_exec_op(std::uint32_t pidx, std::uint32_t block, std::uint32_t op_idx,
                                 std::uint64_t at);
  static std::uint32_t cb_exec_trampoline(void* sim, std::uint32_t pidx, std::uint32_t block,
                                          std::uint32_t op, std::uint64_t at);
  static std::uint32_t cb_poll_trampoline(void* sim);
  /// Operand value for a compiled process (regs64 at declared width).
  [[nodiscard]] BitVector value64_of(const ProcState& ps, const ir::Operand& o) const;
  [[nodiscard]] bool value64_any(const ProcState& ps, const ir::Operand& o) const;
  /// Executes ops of a sequential block starting at ps.op_idx; returns
  /// false if blocked.
  bool run_sequential_block(ProcState& ps);
  bool run_pipelined_loop(ProcState& ps);
  void advance_to_block(ProcState& ps, ir::BlockId next);

  /// Executes one op functionally at local time `at`. Returns false if
  /// blocked on a stream (state untouched).
  bool exec_op(ProcState& ps, const ir::Op& op, std::uint64_t at);
  void record_trace(const ProcState& ps, const ir::Op& op, std::uint64_t at);

  /// Operand value as a reference into the register file (kReg) or the
  /// op's stored immediate (kImm) -- no BitVector copy on the hot path.
  [[nodiscard]] const BitVector& value_of(const ProcState& ps, const ir::Operand& o) const;
  [[nodiscard]] bool pred_active(const ProcState& ps, const ir::Op& op) const;
  [[nodiscard]] BitVector eval_bin_op(const ProcState& ps, const ir::Op& op) const;

  bool try_stream_read(ProcState& ps, const ir::Op& op, std::uint64_t at);
  bool try_stream_write(ProcState& ps, const ir::Op& op, std::uint64_t at);
  void push_stream(ir::StreamId id, BitVector value, std::uint64_t at);
  /// Flags a CPU-bound stream for the next drain_cpu_streams() pass.
  void mark_cpu_dirty(ir::StreamId id);

  void direct_assert_failure(std::uint32_t id, std::uint64_t at);
  /// Evaluates rec's checker block in `cc`, wiring the tap op's operand
  /// values (read from `ps`) into the checker input registers.
  void eval_checker(const ir::AssertionRecord& rec, CheckerCache& cc, const ProcState& ps,
                    const ir::Op& tap, std::uint64_t at);
  void fail_wire(const ir::AssertionRecord* rec, std::uint64_t at);
  void drain_cpu_streams();

  [[nodiscard]] const ExternRegistry::Fn* extern_fn(const std::string& name) const;
};

/// Convenience: schedule + simulate in one call.
[[nodiscard]] RunResult simulate(const ir::Design& design, const ExternRegistry& externs,
                                 const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                                 SimOptions options = {});

}  // namespace hlsav::sim
