// Fault-injection campaign runner.
//
// Sweeps the enumerated fault-site list of a design (sim/fault.h), runs
// each single-fault variant against the golden un-faulted run, and
// classifies the outcome:
//
//   benign            -- same outputs, no assertion fired (the fault was
//                        masked: e.g. a flipped bit the application never
//                        reads back).
//   detected          -- an assertion failure reached the notification
//                        function (attributed to the AssertionRecord).
//   silent-corruption -- the run completed with different CPU-visible
//                        outputs and no assertion noticed: the paper's
//                        argument for *more* in-circuit assertions.
//   hang-detected     -- the wait-for-graph detector proved a deadlock
//                        (or starvation) the moment progress stopped.
//   hang-timeout      -- only the max_cycles livelock backstop fired.
//   budget-exceeded   -- the per-site wall-clock watchdog
//                        (CampaignOptions::site_wall_ms) stopped the run.
//
// Determinism: the site list depends only on the design; the seed only
// chooses which sites a sampled campaign runs. Same seed + same design
// => byte-identical report.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "metrics/profile.h"
#include "sched/schedule.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hlsav::sim {

enum class FaultOutcome : std::uint8_t {
  kBenign,
  kDetected,
  kSilentCorruption,
  kHangDetected,
  kHangTimeout,
  kBudgetExceeded,  // per-site wall-clock watchdog fired (site_wall_ms)
  /// The site killed its worker subprocess repeatedly (segfault,
  /// OOM-kill, watchdog SIGKILL) and was quarantined by the sharded
  /// campaign supervisor after the retry cap. Only the service path
  /// (serve/shard.h) produces this; in-process sweeps never do.
  kWorkerCrashed,
};

/// Number of FaultOutcome values (tally arrays, serialization).
inline constexpr std::size_t kNumFaultOutcomes = 7;

[[nodiscard]] const char* fault_outcome_name(FaultOutcome o);

/// Renders one progress-heartbeat line ("campaign: D/T sites, R sites/s,
/// ETA Es; benign ..., detected ..."). The rate/ETA clause is always
/// present; when the rate is still zero (first tick, elapsed ~0) or the
/// ETA would be non-finite, the ETA renders as "--:--" instead of inf.
/// `tally` is indexed by FaultOutcome (kNumFaultOutcomes entries).
[[nodiscard]] std::string format_campaign_heartbeat(std::size_t done, std::size_t total,
                                                    double elapsed_s,
                                                    const std::size_t tally[kNumFaultOutcomes]);

struct FaultResult {
  FaultSpec site;
  FaultOutcome outcome = FaultOutcome::kBenign;
  std::vector<std::uint32_t> detected_by;  // assertion ids, sorted, deduped
  std::uint64_t cycles = 0;                // RunResult::cycles of the faulted run
  /// Cycle-attribution totals of the faulted run; only populated when
  /// CampaignOptions::profile is set (timelines stay off in campaigns).
  std::optional<metrics::ProfileSummary> profile;
};

struct CampaignOptions {
  std::uint64_t seed = 1;
  /// 0 = run every enumerated site; otherwise a seeded sample.
  std::size_t max_faults = 0;
  /// Livelock backstop per faulted run; 0 = max(10'000, 16 * golden).
  std::uint64_t max_cycles = 0;
  /// Worker threads running fault sites concurrently (one Simulator per
  /// worker; results land in site order either way). 0 = one per
  /// hardware thread; 1 = the serial loop.
  unsigned threads = 1;
  /// Emit a stderr heartbeat while the sweep runs (sites/sec, ETA,
  /// classification tallies). Off by default so machine-readable output
  /// and tests stay quiet.
  bool progress = false;
  /// Seconds between heartbeats; <= 0 emits one line per completed site
  /// (deterministic, used by tests).
  double progress_interval_s = 2.0;
  /// Where heartbeat lines go; null means stderr.
  std::function<void(const std::string&)> progress_sink;
  /// Attribute every faulted run's cycles (compute / assert / stall /
  /// tail) and report per-site deltas vs the golden profile. Each run
  /// owns its Profiler, so the parallel sweep stays race-free.
  bool profile = false;
  /// Per-site wall-clock budget in milliseconds; 0 = unlimited. A site
  /// that exceeds it is classified budget-exceeded (an answer, not an
  /// error) and the sweep moves on -- one pathological site can no
  /// longer pin the whole campaign.
  double site_wall_ms = 0.0;
  /// Bounded retries (with exponential backoff) when a site run throws
  /// a transient failure; after the last attempt the error propagates.
  unsigned site_retries = 2;
  /// Path of the append-only crash-recovery journal (sim/journal.h);
  /// empty = no journal.
  std::string journal;
  /// With `journal` set: load it first and skip sites it already
  /// classified, provided its header fingerprint matches this campaign.
  bool resume = false;
  /// Restrict the sweep to these site ids (a shard of the sampled
  /// list); empty = run everything. Ids must belong to the campaign's
  /// sampled selection -- the worker entrypoint gets its shard this
  /// way while the journal header keeps the full-campaign identity, so
  /// every shard journal carries the same resume fingerprint.
  std::vector<std::uint32_t> only_sites;
  /// Cooperative cancellation (SIGINT/SIGTERM): when the pointee turns
  /// true no further site starts; already-journaled work is kept and
  /// the report comes back with `interrupted` set. Null = never.
  const std::atomic<bool>* cancel = nullptr;
  /// Called after each freshly-run site is classified AND durably
  /// journaled (restored sites are skipped): the worker entrypoint's
  /// per-site heartbeat. Serialized by the journal append order.
  std::function<void(const FaultResult&)> site_sink;
  /// Called just before each freshly-run site starts. Test-only crash
  /// flags (--crash-at-site) hook here so crash-containment paths are
  /// deterministically exercisable.
  std::function<void(std::uint32_t site_id)> site_start_hook;
  /// Base simulation options (mode, channel mux) shared by every run.
  SimOptions sim;
};

/// The golden (un-faulted) reference: completion cycles plus every
/// CPU-visible data word, per output stream in id order.
struct GoldenRef {
  std::uint64_t cycles = 0;
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> outputs;
};

struct CampaignReport {
  std::uint64_t seed = 0;
  std::size_t sites_total = 0;  // enumerated, before sampling
  std::uint64_t golden_cycles = 0;
  unsigned threads = 1;              // workers the campaign actually used
  std::vector<FaultResult> results;  // in site-id order
  /// True when CampaignOptions::cancel stopped the sweep early: only
  /// the completed (journaled) sites are in `results`, and a journaled
  /// campaign resumes byte-identically with --resume.
  bool interrupted = false;
  /// Attribution of the un-faulted reference run; set iff
  /// CampaignOptions::profile was on.
  std::optional<metrics::ProfileSummary> golden_profile;

  [[nodiscard]] std::size_t count(FaultOutcome o) const;
  /// Detected / (everything that was not benign).
  [[nodiscard]] double detection_rate() const;
  /// Full campaign table + summary + per-assertion coverage attribution.
  [[nodiscard]] std::string render(const ir::Design& design) const;
};

/// Runs the design un-faulted and records the reference outputs. Throws
/// InternalError if the golden run itself does not complete cleanly.
/// When `profile_out` is non-null the run is profiled (timeline off)
/// and its attribution summary stored there.
[[nodiscard]] GoldenRef golden_run(const ir::Design& design,
                                   const sched::DesignSchedule& schedule,
                                   const ExternRegistry& externs,
                                   const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                                   const SimOptions& base,
                                   metrics::ProfileSummary* profile_out = nullptr);

/// Runs one fault variant and classifies it against `golden`. When
/// `profile_out` is non-null the run is profiled (timeline off) and its
/// attribution summary stored there. A positive `site_wall_ms` arms the
/// simulator's wall-clock watchdog; an expired budget classifies as
/// FaultOutcome::kBudgetExceeded.
[[nodiscard]] FaultResult run_fault(const ir::Design& design,
                                    const sched::DesignSchedule& schedule,
                                    const ExternRegistry& externs,
                                    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                                    const GoldenRef& golden, const FaultSpec& fault,
                                    const SimOptions& base, std::uint64_t max_cycles,
                                    metrics::ProfileSummary* profile_out = nullptr,
                                    double site_wall_ms = 0.0);

/// The full campaign: enumerate sites, (optionally sample,) run each,
/// classify every one -- no fault is ever left unclassified. Journal
/// open/write/fsync failures (ENOSPC, EIO, unwritable directory) come
/// back as a Status naming the journal path -- a record is never
/// silently dropped; a cooperative cancel returns an ok report with
/// `interrupted` set.
[[nodiscard]] StatusOr<CampaignReport> run_campaign_st(
    const ir::Design& design, const sched::DesignSchedule& schedule,
    const ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const CampaignOptions& opt = {});

/// Throwing convenience wrapper around run_campaign_st (library tests
/// and benches that treat any failure as fatal).
[[nodiscard]] CampaignReport run_campaign(
    const ir::Design& design, const sched::DesignSchedule& schedule,
    const ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const CampaignOptions& opt = {});

// ------------------------------------------------- trace & replay reruns --

/// How to re-run non-benign sites with the ELA armed (see
/// trace_nonbenign_sites).
struct TraceRerunOptions {
  trace::TraceConfig config;
  /// Output directory for .vcd/.bin artifacts (must already exist, or be
  /// creatable); files are named "<stem>_s<site>.vcd".
  std::string dir = ".";
  std::string stem = "fault";
  /// Cycles of the window the replay narrates.
  std::size_t last_cycles = 16;
  /// Cap on re-traced sites, in site order; 0 = every non-benign site.
  std::size_t max_sites = 0;
  /// Also write the compact binary trace next to each VCD.
  bool write_binary = false;
  /// Resolves source file ids in the replay text; may be null.
  const SourceManager* sm = nullptr;
};

/// One re-traced site: where its artifacts went and the rendered
/// source-level replay (which names the implicated assertion/stream,
/// the first divergent output stream for silent corruption, and the
/// hang diagnosis for hangs).
struct TraceArtifact {
  FaultSpec site;
  FaultOutcome outcome = FaultOutcome::kBenign;
  std::string vcd_path;
  std::string bin_path;  // empty unless write_binary
  std::string replay;
};

/// Re-runs every non-benign site of `report` with a TraceEngine armed
/// and exports the surviving capture window: the campaign sweep stays
/// cheap (tracing off), and only the interesting sites pay for capture.
[[nodiscard]] std::vector<TraceArtifact> trace_nonbenign_sites(
    const ir::Design& design, const sched::DesignSchedule& schedule,
    const ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const CampaignReport& report, const CampaignOptions& opt,
    const TraceRerunOptions& trace_opt = {});

}  // namespace hlsav::sim
