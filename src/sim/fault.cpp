#include "sim/fault.h"

#include <sstream>

namespace hlsav::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNarrowCompare: return "narrow-compare";
    case FaultKind::kStreamDrop: return "stream-drop";
    case FaultKind::kStreamDup: return "stream-dup";
    case FaultKind::kStreamStuck: return "stream-stuck";
    case FaultKind::kBramBitFlip: return "bram-bit-flip";
    case FaultKind::kBramStuckAt: return "bram-stuck-at";
    case FaultKind::kFsmStuckBranch: return "fsm-stuck-branch";
    case FaultKind::kFsmSkipBlock: return "fsm-skip-block";
    case FaultKind::kExternCorrupt: return "extern-corrupt";
    case FaultKind::kChannelCorrupt: return "channel-corrupt";
  }
  HLSAV_UNREACHABLE("bad FaultKind");
}

// ------------------------------------------------------------ factories --

FaultSpec FaultSpec::narrow_compare(std::string process, std::uint32_t line, unsigned width) {
  FaultSpec f;
  f.kind = FaultKind::kNarrowCompare;
  f.process = std::move(process);
  f.line = line;
  f.width = width;
  return f;
}

FaultSpec FaultSpec::stream_drop(ir::StreamId s, std::uint64_t word_index) {
  FaultSpec f;
  f.kind = FaultKind::kStreamDrop;
  f.stream = s;
  f.word_index = word_index;
  return f;
}

FaultSpec FaultSpec::stream_dup(ir::StreamId s, std::uint64_t word_index) {
  FaultSpec f;
  f.kind = FaultKind::kStreamDup;
  f.stream = s;
  f.word_index = word_index;
  return f;
}

FaultSpec FaultSpec::stream_stuck(ir::StreamId s, std::uint64_t from_word, std::uint64_t value) {
  FaultSpec f;
  f.kind = FaultKind::kStreamStuck;
  f.stream = s;
  f.word_index = from_word;
  f.stuck_value = value;
  return f;
}

FaultSpec FaultSpec::bram_bit_flip(ir::MemId m, unsigned bit) {
  FaultSpec f;
  f.kind = FaultKind::kBramBitFlip;
  f.mem = m;
  f.bit = bit;
  return f;
}

FaultSpec FaultSpec::bram_stuck_at(ir::MemId m, unsigned bit, bool level) {
  FaultSpec f;
  f.kind = FaultKind::kBramStuckAt;
  f.mem = m;
  f.bit = bit;
  f.stuck_one = level;
  return f;
}

FaultSpec FaultSpec::fsm_stuck_branch(std::string process, ir::BlockId block, bool taken) {
  FaultSpec f;
  f.kind = FaultKind::kFsmStuckBranch;
  f.process = std::move(process);
  f.block = block;
  f.branch_taken = taken;
  return f;
}

FaultSpec FaultSpec::fsm_skip_block(std::string process, ir::BlockId block) {
  FaultSpec f;
  f.kind = FaultKind::kFsmSkipBlock;
  f.process = std::move(process);
  f.block = block;
  return f;
}

FaultSpec FaultSpec::extern_corrupt(std::string callee, std::uint64_t xor_mask) {
  FaultSpec f;
  f.kind = FaultKind::kExternCorrupt;
  f.callee = std::move(callee);
  f.xor_mask = xor_mask;
  return f;
}

FaultSpec FaultSpec::channel_corrupt(std::uint64_t word_index, unsigned bit) {
  FaultSpec f;
  f.kind = FaultKind::kChannelCorrupt;
  f.word_index = word_index;
  f.bit = bit;
  return f;
}

std::string FaultSpec::describe(const ir::Design& design) const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kNarrowCompare:
      os << "narrow compare in '" << process << "'";
      if (line != 0) os << " line " << line;
      os << " to " << width << " bits";
      break;
    case FaultKind::kStreamDrop:
      os << "drop word " << word_index << " written to '" << design.stream(stream).name << "'";
      break;
    case FaultKind::kStreamDup:
      os << "duplicate word " << word_index << " written to '" << design.stream(stream).name
         << "'";
      break;
    case FaultKind::kStreamStuck:
      os << "stuck value " << stuck_value << " on '" << design.stream(stream).name
         << "' from word " << word_index;
      break;
    case FaultKind::kBramBitFlip:
      os << "flip bit " << bit << " of writes to RAM '" << design.memory(mem).name << "'";
      break;
    case FaultKind::kBramStuckAt:
      os << "bit " << bit << " stuck-at-" << (stuck_one ? 1 : 0) << " on writes to RAM '"
         << design.memory(mem).name << "'";
      break;
    case FaultKind::kFsmStuckBranch: {
      const ir::Process* p = design.find_process(process);
      os << "branch stuck " << (branch_taken ? "taken" : "not-taken") << " in '" << process
         << "' block '" << (p != nullptr ? p->block(block).name : std::to_string(block)) << "'";
      break;
    }
    case FaultKind::kFsmSkipBlock: {
      const ir::Process* p = design.find_process(process);
      os << "skip block '" << (p != nullptr ? p->block(block).name : std::to_string(block))
         << "' in '" << process << "'";
      break;
    }
    case FaultKind::kExternCorrupt:
      os << "corrupt extern '" << callee << "' result (xor 0x" << std::hex << xor_mask
         << std::dec << ")";
      break;
    case FaultKind::kChannelCorrupt:
      os << "corrupt CPU channel word " << word_index << " (flip bit " << bit << ")";
      break;
  }
  return os.str();
}

// --------------------------------------------------------- engine hooks --

unsigned FaultEngine::narrow_width(const std::string& process, const ir::Op& op) const {
  if (op.kind != ir::OpKind::kBin || !ir::bin_is_comparison(op.bin)) return 0;
  for (const FaultSpec& f : faults_) {
    if (f.kind != FaultKind::kNarrowCompare) continue;
    if (!f.process.empty() && f.process != process) continue;
    if (f.line != 0 && f.line != op.loc.line) continue;
    return f.width;
  }
  return 0;
}

FaultEngine::StreamAction FaultEngine::on_stream_write(ir::StreamId s, std::uint64_t index,
                                                       BitVector& value) const {
  StreamAction action = StreamAction::kPass;
  for (const FaultSpec& f : faults_) {
    switch (f.kind) {
      case FaultKind::kStreamDrop:
        if (f.stream == s && f.word_index == index) action = StreamAction::kDrop;
        break;
      case FaultKind::kStreamDup:
        if (f.stream == s && f.word_index == index) action = StreamAction::kDup;
        break;
      case FaultKind::kStreamStuck:
        if (f.stream == s && index >= f.word_index) {
          value = BitVector::from_u64(value.width(), f.stuck_value);
        }
        break;
      default:
        break;
    }
  }
  return action;
}

void FaultEngine::on_bram_write(ir::MemId m, std::uint64_t addr, BitVector& value) const {
  for (const FaultSpec& f : faults_) {
    if (f.mem != m || addr < f.addr_lo || addr > f.addr_hi) continue;
    if (f.bit >= value.width()) continue;
    if (f.kind == FaultKind::kBramBitFlip) {
      value.set_bit(f.bit, !value.bit(f.bit));
    } else if (f.kind == FaultKind::kBramStuckAt) {
      value.set_bit(f.bit, f.stuck_one);
    }
  }
}

bool FaultEngine::skip_block(const std::string& process, ir::BlockId b) const {
  for (const FaultSpec& f : faults_) {
    if (f.kind == FaultKind::kFsmSkipBlock && f.block == b && f.process == process) return true;
  }
  return false;
}

const bool* FaultEngine::forced_branch(const std::string& process, ir::BlockId b) const {
  for (const FaultSpec& f : faults_) {
    if (f.kind == FaultKind::kFsmStuckBranch && f.block == b && f.process == process) {
      return &f.branch_taken;
    }
  }
  return nullptr;
}

void FaultEngine::on_extern_result(const std::string& callee, BitVector& value) const {
  for (const FaultSpec& f : faults_) {
    if (f.kind != FaultKind::kExternCorrupt || f.callee != callee) continue;
    value = value.bxor(BitVector::from_u64(value.width(), f.xor_mask));
  }
}

void FaultEngine::on_channel_word(std::uint64_t index, BitVector& value) const {
  for (const FaultSpec& f : faults_) {
    if (f.kind != FaultKind::kChannelCorrupt || f.word_index != index) continue;
    if (f.bit >= value.width()) continue;
    value.set_bit(f.bit, !value.bit(f.bit));
  }
}

// ------------------------------------------------------ site enumeration --

namespace {

/// True if block `b` of `proc` participates in a pipelined loop (the
/// pipelined interpreter path executes those; skip-block sites would be
/// silently inert there, so they are not enumerated).
bool in_pipelined_loop(const ir::Process& proc, ir::BlockId b) {
  for (const ir::LoopInfo& l : proc.loops) {
    if (l.pipelined && (l.header == b || l.body == b)) return true;
  }
  return false;
}

bool is_pipelined_body(const ir::Process& proc, ir::BlockId b) {
  for (const ir::LoopInfo& l : proc.loops) {
    if (l.pipelined && l.body == b) return true;
  }
  return false;
}

}  // namespace

std::vector<FaultSpec> enumerate_fault_sites(const ir::Design& design,
                                             const sched::DesignSchedule& schedule) {
  std::vector<FaultSpec> sites;
  auto emit = [&sites](FaultSpec f) {
    f.id = static_cast<std::uint32_t>(sites.size());
    sites.push_back(std::move(f));
  };

  // 1. Translation faults: one narrowed-compare site per (process,
  //    source line) carrying a comparison wider than the narrow width.
  for (const ir::Process* p : design.application_processes()) {
    std::uint32_t last_line = 0;
    for (const ir::BasicBlock& b : p->blocks) {
      for (const ir::Op& op : b.ops) {
        if (op.kind != ir::OpKind::kBin || !ir::bin_is_comparison(op.bin)) continue;
        unsigned w = p->operand_width(op.args[0]);
        unsigned narrow = w > 5 ? 5u : (w > 1 ? w - 1 : 0u);
        if (narrow == 0 || op.loc.line == 0 || op.loc.line == last_line) continue;
        last_line = op.loc.line;
        emit(FaultSpec::narrow_compare(p->name, op.loc.line, narrow));
      }
    }
  }

  // 2. Stream handshake faults on every hardware-written FIFO.
  for (ir::StreamId id : design.live_stream_ids()) {
    const ir::Stream& s = design.stream(id);
    if (s.producer.kind != ir::StreamEndpoint::Kind::kProcess) continue;
    emit(FaultSpec::stream_drop(id, 0));
    emit(FaultSpec::stream_dup(id, 0));
    emit(FaultSpec::stream_stuck(id, 0, 0));
  }

  // 3. BRAM cell faults on every writable memory (ROMs are never
  //    written; replicas mirror application writes and are covered by
  //    faulting the original's store path).
  for (const ir::Memory& m : design.memories) {
    if (m.role != ir::MemRole::kData || m.size == 0) continue;
    emit(FaultSpec::bram_bit_flip(m.id, 0));
    if (m.width > 1) emit(FaultSpec::bram_bit_flip(m.id, m.width - 1));
    emit(FaultSpec::bram_stuck_at(m.id, 0, true));
  }

  // 4. FSM control faults on scheduled application blocks.
  for (const ir::Process* p : design.application_processes()) {
    const sched::ProcessSchedule* ps = schedule.find(p->name);
    for (const ir::BasicBlock& b : p->blocks) {
      bool scheduled = ps != nullptr && b.id < ps->blocks.size() &&
                       (ps->of(b.id).num_states > 0 || ps->of(b.id).pipelined);
      if (!scheduled) continue;
      if (!b.ops.empty() && !in_pipelined_loop(*p, b.id)) {
        emit(FaultSpec::fsm_skip_block(p->name, b.id));
      }
      // Pipelined bodies jump back unconditionally; their loop test
      // lives in the header, which the pipelined path does evaluate.
      if (b.term.kind == ir::TermKind::kBranch && !is_pipelined_body(*p, b.id)) {
        emit(FaultSpec::fsm_stuck_branch(p->name, b.id, true));
        emit(FaultSpec::fsm_stuck_branch(p->name, b.id, false));
      }
    }
  }

  // 5. External HDL cores returning wrong results.
  for (const ir::ExternFunc& fn : design.extern_funcs) {
    emit(FaultSpec::extern_corrupt(fn.name, 1));
  }

  // 6. The multiplexed CPU channel corrupting a delivered word.
  bool any_cpu_consumer = false;
  for (ir::StreamId id : design.live_stream_ids()) {
    if (design.stream(id).consumer.kind == ir::StreamEndpoint::Kind::kCpu) {
      any_cpu_consumer = true;
      break;
    }
  }
  if (any_cpu_consumer) {
    emit(FaultSpec::channel_corrupt(0, 0));
    emit(FaultSpec::channel_corrupt(1, 0));
  }

  return sites;
}

}  // namespace hlsav::sim
