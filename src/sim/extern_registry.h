// Behaviours for external HDL functions (paper §5.1, second example).
//
// Impulse-C lets designers call hand-written HDL cores from C; during
// software simulation a C-source model substitutes for the core. The two
// may legitimately disagree -- that divergence is one of the bug classes
// in-circuit assertions catch. Each registered function therefore has a
// C model (used in software simulation) and an HDL behaviour (used by
// the cycle simulator); by default they are identical.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/bitvector.h"

namespace hlsav::sim {

class ExternRegistry {
 public:
  using Fn = std::function<BitVector(const std::vector<BitVector>&)>;

  /// Registers both models; `hdl` defaults to the C model.
  void add(const std::string& name, Fn c_model, Fn hdl_model = nullptr) {
    Entry e;
    e.c_model = std::move(c_model);
    e.hdl_model = hdl_model ? std::move(hdl_model) : e.c_model;
    funcs_[name] = std::move(e);
  }

  [[nodiscard]] const Fn* c_model(const std::string& name) const {
    auto it = funcs_.find(name);
    return it == funcs_.end() ? nullptr : &it->second.c_model;
  }
  [[nodiscard]] const Fn* hdl_model(const std::string& name) const {
    auto it = funcs_.find(name);
    return it == funcs_.end() ? nullptr : &it->second.hdl_model;
  }

 private:
  struct Entry {
    Fn c_model;
    Fn hdl_model;
  };
  std::unordered_map<std::string, Entry> funcs_;
};

}  // namespace hlsav::sim
