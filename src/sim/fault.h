// Translation-fault injection (paper §5.1, first example).
//
// The paper's in-circuit verification case study hinges on a real
// Impulse-C bug: a 64-bit comparison was erroneously narrowed to 5 bits
// in the generated HDL, so 4294967286 > 4294967296 (false in source
// semantics) became 22 > 0 (true in circuit). Software simulation
// executes source semantics and never sees it. We model this class of
// bug as an injection the cycle simulator applies to specific
// comparison ops, identified by process name and source line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace hlsav::sim {

struct NarrowCompareFault {
  std::string process;    // empty = any process
  std::uint32_t line = 0; // 0 = any line
  unsigned width = 5;     // comparison performed at this width
};

struct FaultInjection {
  std::vector<NarrowCompareFault> narrow_compares;

  [[nodiscard]] bool empty() const { return narrow_compares.empty(); }

  /// Width to narrow this comparison to, or 0 for no fault.
  [[nodiscard]] unsigned narrow_width(const std::string& process, const ir::Op& op) const {
    if (op.kind != ir::OpKind::kBin || !ir::bin_is_comparison(op.bin)) return 0;
    for (const NarrowCompareFault& f : narrow_compares) {
      if (!f.process.empty() && f.process != process) continue;
      if (f.line != 0 && f.line != op.loc.line) continue;
      return f.width;
    }
    return 0;
  }
};

}  // namespace hlsav::sim
