// Fault injection engine (paper §5.1, generalized).
//
// The paper's in-circuit verification case studies hinge on real bugs
// that software simulation cannot see: a 64-bit comparison erroneously
// narrowed to 5 bits in the generated HDL, an external HDL core whose C
// simulation model diverges, and a hang traced with assert(0)/NABORT
// markers. We generalize that anecdotal fault set into an engine that
// can inject any of a catalogue of single faults into the cycle
// simulator, so a seeded campaign can sweep the whole space and measure
// how much of it the synthesized assertions actually detect:
//
//  * kNarrowCompare  -- a comparison evaluated at an erroneously
//    narrowed width (the paper's Fig. 3 translation fault).
//  * kStreamDrop/Dup/Stuck -- FIFO handshake faults: the nth word a
//    process writes to a stream is dropped, duplicated, or every word
//    from the nth on is replaced by a stuck data-bus value.
//  * kBramBitFlip/StuckAt -- a memory cell fault applied on write: one
//    bit flips, or is stuck at a level, within an address range.
//  * kFsmStuckBranch/SkipBlock -- control faults: a block's branch
//    condition is stuck at taken/not-taken (a corrupted next-state
//    register), or a block's datapath ops are skipped entirely.
//  * kExternCorrupt  -- an external HDL core returning wrong results
//    (the §5.1-b divergence, as a bit-mask corruption).
//  * kChannelCorrupt -- the time-multiplexed CPU channel delivering a
//    corrupted word.
//
// Every fault is a FaultSpec; enumerate_fault_sites() derives the full
// deterministic site list from an ir::Design + sched::DesignSchedule so
// campaigns are reproducible by construction (sites depend only on the
// design, never on a seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "sched/schedule.h"
#include "support/bitvector.h"

namespace hlsav::sim {

enum class FaultKind : std::uint8_t {
  kNarrowCompare,
  kStreamDrop,
  kStreamDup,
  kStreamStuck,
  kBramBitFlip,
  kBramStuckAt,
  kFsmStuckBranch,
  kFsmSkipBlock,
  kExternCorrupt,
  kChannelCorrupt,
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One injectable fault, fully parameterized. Doubles as the campaign's
/// site record: `id` is the stable index in enumerate_fault_sites()
/// order (kNoSite for hand-built specs).
struct FaultSpec {
  static constexpr std::uint32_t kNoSite = std::numeric_limits<std::uint32_t>::max();

  FaultKind kind = FaultKind::kNarrowCompare;
  std::uint32_t id = kNoSite;

  // kNarrowCompare / FSM faults: which process (empty = any).
  std::string process;
  std::uint32_t line = 0;  // kNarrowCompare: source line (0 = any)
  unsigned width = 5;      // kNarrowCompare: narrowed comparison width

  ir::StreamId stream = ir::kNoStream;  // stream faults
  std::uint64_t word_index = 0;         // stream faults / kChannelCorrupt: nth word
  std::uint64_t stuck_value = 0;        // kStreamStuck replacement payload

  ir::MemId mem = ir::kNoMem;  // BRAM faults
  unsigned bit = 0;            // BRAM faults / kChannelCorrupt: bit position
  bool stuck_one = false;      // kBramStuckAt level
  std::uint64_t addr_lo = 0;
  std::uint64_t addr_hi = std::numeric_limits<std::uint64_t>::max();

  ir::BlockId block = ir::kNoBlock;  // FSM faults
  bool branch_taken = true;          // kFsmStuckBranch forced direction

  std::string callee;            // kExternCorrupt: extern function name
  std::uint64_t xor_mask = 1;    // kExternCorrupt corruption mask

  // ---- factories ----
  static FaultSpec narrow_compare(std::string process, std::uint32_t line, unsigned width);
  static FaultSpec stream_drop(ir::StreamId s, std::uint64_t word_index);
  static FaultSpec stream_dup(ir::StreamId s, std::uint64_t word_index);
  static FaultSpec stream_stuck(ir::StreamId s, std::uint64_t from_word, std::uint64_t value);
  static FaultSpec bram_bit_flip(ir::MemId m, unsigned bit);
  static FaultSpec bram_stuck_at(ir::MemId m, unsigned bit, bool level);
  static FaultSpec fsm_stuck_branch(std::string process, ir::BlockId block, bool taken);
  static FaultSpec fsm_skip_block(std::string process, ir::BlockId block);
  static FaultSpec extern_corrupt(std::string callee, std::uint64_t xor_mask);
  static FaultSpec channel_corrupt(std::uint64_t word_index, unsigned bit);

  /// One-line human-readable description ("s3: drop word 1 written to
  /// 'stage0.b'"), deterministic, used by site listings and reports.
  [[nodiscard]] std::string describe(const ir::Design& design) const;
};

/// The set of faults active in one simulation run (a campaign injects
/// exactly one; the engine supports any number). All queries are only
/// reached when the simulator already knows the engine is non-empty, so
/// an empty engine costs a single bool on the hot path.
class FaultEngine {
 public:
  FaultEngine() = default;

  void add(FaultSpec f) { faults_.push_back(std::move(f)); }
  void add_narrow_compare(std::string process, std::uint32_t line, unsigned width) {
    add(FaultSpec::narrow_compare(std::move(process), line, width));
  }

  [[nodiscard]] bool empty() const { return faults_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& faults() const { return faults_; }

  /// Width to narrow this comparison to, or 0 for no fault.
  [[nodiscard]] unsigned narrow_width(const std::string& process, const ir::Op& op) const;

  /// Stream-write fault outcome. `value` may be replaced in place
  /// (kStreamStuck); the index is the 0-based count of words this
  /// process has written to the stream so far.
  enum class StreamAction : std::uint8_t { kPass, kDrop, kDup };
  [[nodiscard]] StreamAction on_stream_write(ir::StreamId s, std::uint64_t index,
                                             BitVector& value) const;

  /// Applies BRAM cell faults to a value being stored at `addr`.
  void on_bram_write(ir::MemId m, std::uint64_t addr, BitVector& value) const;

  /// True if the block's datapath ops should be skipped (kFsmSkipBlock).
  [[nodiscard]] bool skip_block(const std::string& process, ir::BlockId b) const;

  /// Forced branch direction at this block, or nullptr for no fault.
  [[nodiscard]] const bool* forced_branch(const std::string& process, ir::BlockId b) const;

  /// Applies extern-HDL corruption to a call result.
  void on_extern_result(const std::string& callee, BitVector& value) const;

  /// Applies CPU-channel corruption to the nth delivered word.
  void on_channel_word(std::uint64_t index, BitVector& value) const;

 private:
  std::vector<FaultSpec> faults_;
};

/// Derives the complete, deterministic fault-site list of a design:
/// narrowable comparisons, process-written streams, writable BRAMs,
/// scheduled FSM blocks, extern functions and the CPU channel. The
/// schedule gates FSM sites to blocks that actually own FSM states.
/// Order (and therefore site ids) depends only on the design.
[[nodiscard]] std::vector<FaultSpec> enumerate_fault_sites(const ir::Design& design,
                                                           const sched::DesignSchedule& schedule);

}  // namespace hlsav::sim
