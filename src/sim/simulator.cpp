#include "sim/simulator.h"

#include <algorithm>
#include <sstream>

#include "metrics/profile.h"
#include "trace/trace.h"

namespace hlsav::sim {

using ir::BasicBlock;
using ir::Op;
using ir::OpKind;
using ir::Operand;

Simulator::Simulator(const ir::Design& design, const sched::DesignSchedule& schedule,
                     const ExternRegistry& externs, SimOptions options)
    : design_(design), schedule_(schedule), externs_(externs), opt_(options), notify_(design) {
  init_state();
}

void Simulator::init_state() {
  tracing_ = opt_.trace;
  ela_ = opt_.ela;
  prof_ = opt_.profile;
  deadline_ = opt_.deadline;
  inject_faults_ = opt_.mode == SimMode::kHardware && !opt_.faults.empty();
  if (inject_faults_) stream_write_seq_.assign(design_.streams.size(), 0);

  streams_.resize(design_.streams.size());
  stream_ids_.reserve(design_.streams.size());
  for (const ir::Stream& s : design_.streams) {
    streams_[s.id].depth = s.depth;
    streams_[s.id].cpu_producer = s.producer.kind == ir::StreamEndpoint::Kind::kCpu;
    streams_[s.id].cpu_consumer = s.consumer.kind == ir::StreamEndpoint::Kind::kCpu;
    stream_ids_.emplace(s.name, s.id);  // first name wins, as in a linear scan
  }
  dirty_cpu_streams_.reserve(streams_.size());

  memories_.resize(design_.memories.size());
  for (const ir::Memory& m : design_.memories) {
    auto& mem = memories_[m.id];
    mem.assign(m.size, BitVector(m.width));
    for (std::size_t i = 0; i < m.init.size(); ++i) mem[i] = m.init[i];
  }

  // Resolve every per-op linear lookup once: assertion-carrying ops map
  // to their records, checker processes to a preallocated register file.
  // Both indices below keep the first match, like the linear scans in
  // Design::find_assertion / find_process.
  std::unordered_map<std::uint32_t, const ir::AssertionRecord*> records_by_id;
  records_by_id.reserve(design_.assertions.size());
  for (const ir::AssertionRecord& rec : design_.assertions) {
    records_by_id.emplace(rec.id, &rec);
  }
  std::unordered_map<std::string_view, const ir::Process*> procs_by_name;
  procs_by_name.reserve(design_.processes.size());
  for (const auto& p : design_.processes) procs_by_name.emplace(p->name, p.get());
  std::unordered_map<std::string_view, const sched::ProcessSchedule*> scheds_by_name;
  scheds_by_name.reserve(schedule_.processes.size());
  for (const sched::ProcessSchedule& s : schedule_.processes) {
    scheds_by_name.emplace(s.process, &s);
  }

  checkers_.reserve(design_.assertions.size());
  for (const ir::AssertionRecord& rec : design_.assertions) {
    if (rec.checker_process.empty()) continue;
    auto pit = procs_by_name.find(rec.checker_process);
    const ir::Process* chk = pit == procs_by_name.end() ? nullptr : pit->second;
    if (chk == nullptr) continue;  // exec_op reports this if ever tapped
    CheckerCache cc;
    cc.proc = chk;
    cc.block = &chk->block(rec.checker_block != ir::kNoBlock ? rec.checker_block : chk->entry);
    cc.fresh.reserve(chk->regs.size());
    for (const ir::Register& r : chk->regs) cc.fresh.emplace_back(r.width);
    cc.scratch = cc.fresh;
    cc.touched.assign(rec.checker_inputs.begin(), rec.checker_inputs.end());
    for (const Op& op : cc.block->ops) {
      switch (op.kind) {
        case OpKind::kBin:
        case OpKind::kUn:
        case OpKind::kCopy:
        case OpKind::kResize:
        case OpKind::kLoad:
        case OpKind::kCallExtern:
          cc.touched.push_back(op.dest);
          break;
        default:
          break;
      }
    }
    std::sort(cc.touched.begin(), cc.touched.end());
    cc.touched.erase(std::unique(cc.touched.begin(), cc.touched.end()), cc.touched.end());
    checkers_.emplace(&rec, std::move(cc));
  }
  op_assertions_.reserve(design_.assertions.size() * 2);
  for (const auto& p : design_.processes) {
    for (const BasicBlock& b : p->blocks) {
      for (const Op& op : b.ops) {
        switch (op.kind) {
          case OpKind::kAssertTap:
          case OpKind::kAssertFailWire:
          case OpKind::kAssertCycles: {
            auto it = records_by_id.find(op.assert_id);
            OpAssertInfo info;
            info.rec = it == records_by_id.end() ? nullptr : it->second;
            if (info.rec != nullptr) {
              auto cit = checkers_.find(info.rec);
              if (cit != checkers_.end()) info.checker = &cit->second;
            }
            op_assertions_.emplace(&op, info);
            break;
          }
          default:
            break;
        }
      }
    }
  }

  procs_.reserve(design_.processes.size());
  for (const auto& p : design_.processes) {
    if (p->role != ir::ProcessRole::kApplication) continue;
    ProcState ps;
    ps.proc = p.get();
    auto sit = scheds_by_name.find(p->name);
    ps.sched = sit == scheds_by_name.end() ? nullptr : sit->second;
    HLSAV_CHECK(ps.sched != nullptr, "no schedule for process " + p->name);
    ps.cur = p->entry;
    ps.cur_block = &p->block(p->entry);
    ps.cur_sched = &ps.sched->of(p->entry);
    ps.regs.reserve(p->regs.size());
    for (const ir::Register& r : p->regs) ps.regs.emplace_back(r.width);
    if (prof_ != nullptr) ps.prof_idx = prof_->index_of(p.get());
    procs_.push_back(std::move(ps));
  }

  init_engine();
}

void Simulator::init_engine() {
  if (opt_.engine == SimEngine::kInterpreter) return;
  // Fallback contract: a compiled request downgrades to interpretation
  // (never an error) whenever the configuration needs interpreter-only
  // machinery; the reason is reported through engine_note().
  if (opt_.compiled == nullptr || opt_.compiled->procs.empty()) {
    engine_note_ = "no compiled design attached";
    return;
  }
  if (opt_.trace) {
    engine_note_ = "trace capture armed; compiled engine declines, interpreting";
    return;
  }
  if (opt_.ela != nullptr) {
    engine_note_ = "ELA capture armed; compiled engine declines, interpreting";
    return;
  }
  if (opt_.profile != nullptr) {
    engine_note_ = "profiler armed; compiled engine declines, interpreting";
    return;
  }
  if (!opt_.faults.empty()) {
    engine_note_ = "fault injection armed; compiled engine declines, interpreting";
    return;
  }
  for (const ir::Memory& m : design_.memories) {
    if (m.width > 64) {
      engine_note_ = "memory '" + m.name + "' wider than 64 bits; interpreting";
      return;
    }
  }

  std::size_t attached = 0;
  for (ProcState& ps : procs_) {
    const CompiledProc* match = nullptr;
    for (const CompiledProc& cp : opt_.compiled->procs) {
      if (cp.process == ps.proc->name && cp.fn != nullptr) {
        match = &cp;
        break;
      }
    }
    if (match == nullptr) continue;
    ps.cfn = match->fn;
    ps.regs64.assign(ps.proc->regs.size(), 0);
    ps.st.fill(0);
    ps.st[kStMaxCycles] = opt_.max_cycles;
    ps.st[kStResumeBlock] = ps.proc->entry;
    if (deadline_ != nullptr) ps.st[kStFlags] |= kStFlagDeadline;
    ++attached;
  }
  if (attached == 0) {
    engine_note_ = "compiled design covers no process of this design; interpreting";
    return;
  }
  engine_active_ = true;

  // One coherent memory image for both engines: compiled code indexes
  // raw u64 arrays, interpreted processes and checkers branch to them.
  mem64_.resize(design_.memories.size());
  mem64_ptrs_.resize(design_.memories.size());
  for (const ir::Memory& m : design_.memories) {
    auto& mem = mem64_[m.id];
    mem.assign(m.size, 0);
    for (std::size_t i = 0; i < m.init.size() && i < mem.size(); ++i) {
      mem[i] = m.init[i].to_u64();
    }
    mem64_ptrs_[m.id] = mem.data();
  }
  cb_table_[kCbStreamRead] = reinterpret_cast<const void*>(&Simulator::cb_exec_trampoline);
  cb_table_[kCbStreamWrite] = reinterpret_cast<const void*>(&Simulator::cb_exec_trampoline);
  cb_table_[kCbExtern] = reinterpret_cast<const void*>(&Simulator::cb_exec_trampoline);
  cb_table_[kCbAssert] = reinterpret_cast<const void*>(&Simulator::cb_exec_trampoline);
  cb_table_[kCbPoll] = reinterpret_cast<const void*>(&Simulator::cb_poll_trampoline);
}

ir::StreamId Simulator::stream_by_name(std::string_view name) const {
  auto it = stream_ids_.find(name);
  if (it == stream_ids_.end()) {
    internal_error("sim", 0, "unknown stream '" + std::string(name) + "'");
  }
  return it->second;
}

const ir::AssertionRecord* Simulator::assertion_of(const Op& op) const {
  auto it = op_assertions_.find(&op);
  return it == op_assertions_.end() ? design_.find_assertion(op.assert_id) : it->second.rec;
}

void Simulator::feed(std::string_view stream_name, const std::vector<std::uint64_t>& values) {
  feed(stream_by_name(stream_name), values);
}

void Simulator::feed(ir::StreamId stream, const std::vector<std::uint64_t>& values) {
  const ir::Stream& s = design_.stream(stream);
  HLSAV_CHECK(streams_[stream].cpu_producer, "feed into a non-CPU-fed stream");
  for (std::uint64_t v : values) {
    // Silent truncation here would make a bad harness input look exactly
    // like an injected hardware fault; reject it loudly instead.
    HLSAV_CHECK(s.width >= 64 || (v >> s.width) == 0,
                "feed value " + std::to_string(v) + " does not fit stream '" + s.name + "' (" +
                    std::to_string(s.width) + " bits)");
    streams_[stream].fifo.push_back(FifoEntry{BitVector::from_u64(s.width, v), 0});
  }
  mark_cpu_dirty(stream);  // a CPU->CPU stream delivers on the next drain
}

Status Simulator::try_feed(std::string_view stream_name,
                           const std::vector<std::uint64_t>& values) {
  auto it = stream_ids_.find(stream_name);
  if (it == stream_ids_.end()) {
    return Status::invalid_argument("unknown stream '" + std::string(stream_name) + "'");
  }
  const ir::Stream& s = design_.stream(it->second);
  if (!streams_[it->second].cpu_producer) {
    return Status::invalid_argument("stream '" + s.name + "' is not CPU-fed");
  }
  for (std::uint64_t v : values) {
    if (s.width < 64 && (v >> s.width) != 0) {
      return Status::invalid_argument("feed value " + std::to_string(v) +
                                      " does not fit stream '" + s.name + "' (" +
                                      std::to_string(s.width) + " bits)");
    }
  }
  feed(it->second, values);
  return Status::ok_status();
}

std::vector<std::uint64_t> Simulator::received(std::string_view stream_name) const {
  ir::StreamId id = stream_by_name(stream_name);
  std::vector<std::uint64_t> out;
  for (const BitVector& v : streams_[id].cpu_received) out.push_back(v.to_u64());
  return out;
}

// ----------------------------------------------------------- operands --

const BitVector& Simulator::value_of(const ProcState& ps, const Operand& o) const {
  switch (o.kind) {
    case ir::OperandKind::kReg:
      return ps.regs[o.reg];
    case ir::OperandKind::kImm:
      return o.imm;
    case ir::OperandKind::kNone:
      break;
  }
  HLSAV_UNREACHABLE("value_of on empty operand");
}

bool Simulator::pred_active(const ProcState& ps, const Op& op) const {
  if (op.pred.is_none()) return true;
  bool v = value_of(ps, op.pred).any();
  return op.pred_negated ? !v : v;
}

BitVector Simulator::eval_bin_op(const ProcState& ps, const Op& op) const {
  const BitVector& a = value_of(ps, op.args[0]);
  const BitVector& b = value_of(ps, op.args[1]);
  if (inject_faults_) {
    // Translation-fault injection: erroneously narrowed comparison
    // (unsigned, as in the Impulse-C bug the paper reports).
    unsigned w = opt_.faults.narrow_width(ps.proc->name, op);
    if (w != 0 && w < a.width()) {
      BitVector na = a.trunc(w);
      BitVector nb = b.trunc(w);
      ir::BinKind k = op.bin;
      switch (k) {  // signed compares degrade to unsigned at the narrow width
        case ir::BinKind::kCmpLtS: k = ir::BinKind::kCmpLtU; break;
        case ir::BinKind::kCmpLeS: k = ir::BinKind::kCmpLeU; break;
        default: break;
      }
      return ir::eval_bin(k, na, nb);
    }
  }
  return ir::eval_bin(op.bin, a, b);
}

// ------------------------------------------------------------ streams --

bool Simulator::try_stream_read(ProcState& ps, const Op& op, std::uint64_t at) {
  StreamState& st = streams_[op.stream];
  if (st.fifo.empty()) {
    ps.blocked = true;
    ps.blocked_at = op.loc;
    ps.block_reason = BlockReason::kStreamEmpty;
    ps.blocked_stream = op.stream;
    if (prof_ != nullptr) prof_->blocked_poll(ps.prof_idx, op.stream, /*write=*/false);
    return false;
  }
  FifoEntry e = std::move(st.fifo.front());
  st.fifo.pop_front();
  if (e.time > at) {
    // The producer delivered later than this process's clock: stall.
    std::uint64_t stall = e.time - at;
    if (prof_ != nullptr) {
      // Charge the stall to the FSM state issuing the read (its offset
      // from the block/iteration entry, pre-bump).
      ir::BlockId pb = ps.pipe ? ps.pipe->loop->body : ps.cur;
      std::uint64_t base = ps.pipe ? ps.pipe->start_cycle + ps.pipe->iter * ps.pipe->bs->ii
                                   : ps.block_entry_cycle;
      prof_->read_stall(ps.prof_idx, pb, static_cast<unsigned>(at - base), op.stream, at,
                        stall);
    }
    ps.block_entry_cycle += stall;
    if (ps.pipe) ps.pipe->start_cycle += stall;
  }
  ps.regs[op.dest] = std::move(e.value);
  if (ela_ != nullptr) ela_->stream_pop(ps.proc, op.stream, ps.regs[op.dest], at, op.loc);
  return true;
}

bool Simulator::try_stream_write(ProcState& ps, const Op& op, std::uint64_t at) {
  StreamState& st = streams_[op.stream];
  if (!st.cpu_consumer && st.fifo.size() >= st.depth) {
    ps.blocked = true;
    ps.blocked_at = op.loc;
    ps.block_reason = BlockReason::kStreamFull;
    ps.blocked_stream = op.stream;
    if (prof_ != nullptr) prof_->blocked_poll(ps.prof_idx, op.stream, /*write=*/true);
    return false;
  }
  if (inject_faults_) {
    // Handshake faults: the word is counted as sent by the process even
    // when the FIFO drops it (that is the fault being modelled).
    BitVector v = value_of(ps, op.args[0]);
    FaultEngine::StreamAction act =
        opt_.faults.on_stream_write(op.stream, stream_write_seq_[op.stream]++, v);
    // The process-side handshake happens even for a dropped word; the
    // trace records the (possibly corrupted) value the FIFO saw.
    if (ela_ != nullptr) ela_->stream_push(ps.proc, op.stream, v, at, op.loc);
    if (act == FaultEngine::StreamAction::kDrop) return true;
    st.fifo.push_back(FifoEntry{v, at + 1});
    if (act == FaultEngine::StreamAction::kDup) st.fifo.push_back(FifoEntry{std::move(v), at + 1});
    mark_cpu_dirty(op.stream);
    return true;
  }
  // Data crosses the channel one cycle after the send issues.
  st.fifo.push_back(FifoEntry{value_of(ps, op.args[0]), at + 1});
  if (ela_ != nullptr) ela_->stream_push(ps.proc, op.stream, st.fifo.back().value, at, op.loc);
  mark_cpu_dirty(op.stream);
  return true;
}

void Simulator::push_stream(ir::StreamId id, BitVector value, std::uint64_t at) {
  streams_[id].fifo.push_back(FifoEntry{std::move(value), at});
  mark_cpu_dirty(id);
}

void Simulator::mark_cpu_dirty(ir::StreamId id) {
  StreamState& st = streams_[id];
  if (!st.cpu_consumer || st.dirty) return;
  st.dirty = true;
  dirty_cpu_streams_.push_back(id);
}

// --------------------------------------------------------- assertions --

void Simulator::direct_assert_failure(std::uint32_t id, std::uint64_t at) {
  if (notify_.on_direct(id, at)) halt_ = true;
}

void Simulator::fail_wire(const ir::AssertionRecord* rec, std::uint64_t at) {
  HLSAV_CHECK(rec != nullptr && rec->fail_stream != ir::kNoStream,
              "fail wire without a collector stream");
  std::uint64_t word = std::uint64_t{1} << rec->fail_bit;
  const ir::Stream& s = design_.stream(rec->fail_stream);
  push_stream(rec->fail_stream, BitVector::from_u64(s.width, word), at);
}

void Simulator::eval_checker(const ir::AssertionRecord& rec, CheckerCache& cc,
                             const ProcState& ps, const Op& tap, std::uint64_t at) {
  const ir::Process* chk = cc.proc;

  // Fresh register file per evaluation: scratch only ever diverges from
  // the template at the touched registers, so restore just those, then
  // wire in the tapped values straight from the application's registers.
  std::vector<BitVector>& regs = cc.scratch;
  for (ir::RegId r : cc.touched) regs[r] = cc.fresh[r];
  HLSAV_CHECK(tap.args.size() == rec.checker_inputs.size(), "tap arity mismatch");
  for (std::size_t i = 0; i < tap.args.size(); ++i) {
    regs[rec.checker_inputs[i]] = value_of(ps, tap.args[i]);
  }

  auto val = [&regs](const Operand& o) -> const BitVector& {
    return o.is_reg() ? regs[o.reg] : o.imm;
  };

  // Grouped checkers evaluate only this assertion's sub-block.
  bool failed = false;
  const BasicBlock& b = *cc.block;
  for (const Op& op : b.ops) {
    switch (op.kind) {
      case OpKind::kBin:
        regs[op.dest] = ir::eval_bin(op.bin, val(op.args[0]), val(op.args[1]));
        break;
      case OpKind::kUn:
        regs[op.dest] = ir::eval_un(op.un, val(op.args[0]));
        break;
      case OpKind::kCopy:
        regs[op.dest] = val(op.args[0]);
        break;
      case OpKind::kResize: {
        bool sgn = op.resize == ir::ResizeKind::kSext;
        regs[op.dest] = val(op.args[0]).resize(chk->reg(op.dest).width, sgn);
        break;
      }
      case OpKind::kLoad: {
        std::uint64_t idx = val(op.args[0]).to_u64();
        const unsigned w = design_.memory(op.mem).width;
        if (engine_active_) {
          // Checker loads see the same u64 image the compiled engine does.
          const auto& mem = mem64_[op.mem];
          regs[op.dest] = idx < mem.size() ? BitVector::from_u64(w, mem[idx]) : BitVector(w);
        } else {
          const auto& mem = memories_[op.mem];
          regs[op.dest] = idx < mem.size() ? mem[idx] : BitVector(w);
        }
        break;
      }
      case OpKind::kCallExtern: {
        const ExternRegistry::Fn* fn = extern_fn(op.callee);
        HLSAV_CHECK(fn != nullptr, "unbound extern function '" + op.callee + "'");
        extern_args_.clear();
        for (const Operand& a : op.args) extern_args_.push_back(val(a));
        regs[op.dest] = (*fn)(extern_args_).resize(chk->reg(op.dest).width, false);
        break;
      }
      case OpKind::kStreamWrite: {
        // The checker's failure send: predicated on the (negated)
        // condition. The +1 models the checker's notification latency,
        // which never stalls the application (paper §3.3).
        bool active = true;
        if (!op.pred.is_none()) {
          bool v = val(op.pred).any();
          active = op.pred_negated ? !v : v;
        }
        if (active) {
          push_stream(op.stream, val(op.args[0]), at + 1);
          failed = true;
        }
        break;
      }
      case OpKind::kAssertFailWire: {
        if (!val(op.args[0]).any()) {
          fail_wire(assertion_of(op), at + 1);
          failed = true;
        }
        break;
      }
      default:
        internal_error("sim", 0, "unexpected op in checker process");
    }
  }
  // The checker's verdict, attributed to the checker process (it owns
  // the failure wire) at the tap's source position.
  if (ela_ != nullptr) ela_->assert_verdict(chk, rec.id, failed, at, tap.loc);
  if (prof_ != nullptr) prof_->assert_eval(ps.prof_idx, rec.id, failed, at);
}

// ------------------------------------------------------------ op exec --

void Simulator::record_trace(const ProcState& ps, const Op& op, std::uint64_t at) {
  if (trace_.size() >= opt_.trace_limit) {
    tracing_ = false;
    return;
  }
  trace_.push_back(TraceEvent{at, ps.proc->name, op.kind, op.loc});
}

bool Simulator::exec_op(ProcState& ps, const Op& op, std::uint64_t at) {
  if (!pred_active(ps, op)) return true;
  if (tracing_) record_trace(ps, op, at);
  switch (op.kind) {
    case OpKind::kBin:
      ps.regs[op.dest] = eval_bin_op(ps, op);
      if (ela_ != nullptr) ela_->reg_write(ps.proc, op.dest, ps.regs[op.dest], at, op.loc);
      return true;
    case OpKind::kUn:
      ps.regs[op.dest] = ir::eval_un(op.un, value_of(ps, op.args[0]));
      if (ela_ != nullptr) ela_->reg_write(ps.proc, op.dest, ps.regs[op.dest], at, op.loc);
      return true;
    case OpKind::kCopy:
      ps.regs[op.dest] = value_of(ps, op.args[0]);
      if (ela_ != nullptr) ela_->reg_write(ps.proc, op.dest, ps.regs[op.dest], at, op.loc);
      return true;
    case OpKind::kResize: {
      bool sgn = op.resize == ir::ResizeKind::kSext;
      ps.regs[op.dest] = value_of(ps, op.args[0]).resize(ps.proc->reg(op.dest).width, sgn);
      if (ela_ != nullptr) ela_->reg_write(ps.proc, op.dest, ps.regs[op.dest], at, op.loc);
      return true;
    }
    case OpKind::kLoad: {
      std::uint64_t idx = value_of(ps, op.args[0]).to_u64();
      const unsigned w = design_.memory(op.mem).width;
      if (engine_active_) {
        // Engine-active runs keep memories as u64 images shared with
        // compiled processes (see init_engine).
        const auto& mem = mem64_[op.mem];
        ps.regs[op.dest] = idx < mem.size() ? BitVector::from_u64(w, mem[idx]) : BitVector(w);
        return true;
      }
      const auto& mem = memories_[op.mem];
      // Out-of-range addresses read X in hardware; model as zero.
      ps.regs[op.dest] = idx < mem.size() ? mem[idx] : BitVector(w);
      if (ela_ != nullptr) {
        ela_->bram_read(ps.proc, op.mem, idx, ps.regs[op.dest], at, op.loc);
        ela_->reg_write(ps.proc, op.dest, ps.regs[op.dest], at, op.loc);
      }
      return true;
    }
    case OpKind::kStore: {
      std::uint64_t idx = value_of(ps, op.args[0]).to_u64();
      if (engine_active_) {
        auto& mem = mem64_[op.mem];
        if (idx < mem.size()) mem[idx] = value_of(ps, op.args[1]).to_u64();
        return true;
      }
      auto& mem = memories_[op.mem];
      if (idx < mem.size()) {
        if (inject_faults_) {
          BitVector v = value_of(ps, op.args[1]);
          opt_.faults.on_bram_write(op.mem, idx, v);
          mem[idx] = std::move(v);
        } else {
          mem[idx] = value_of(ps, op.args[1]);
        }
        // mem[idx] holds what the port actually wrote, faults included.
        if (ela_ != nullptr) ela_->bram_write(ps.proc, op.mem, idx, mem[idx], at, op.loc);
      }
      return true;
    }
    case OpKind::kStreamRead:
      return try_stream_read(ps, op, at);
    case OpKind::kStreamWrite:
      return try_stream_write(ps, op, at);
    case OpKind::kCallExtern: {
      const ExternRegistry::Fn* fn = extern_fn(op.callee);
      HLSAV_CHECK(fn != nullptr, "unbound extern function '" + op.callee + "'");
      extern_args_.clear();
      for (const Operand& a : op.args) extern_args_.push_back(value_of(ps, a));
      ps.regs[op.dest] = (*fn)(extern_args_).resize(ps.proc->reg(op.dest).width, false);
      if (inject_faults_) opt_.faults.on_extern_result(op.callee, ps.regs[op.dest]);
      if (ela_ != nullptr) ela_->reg_write(ps.proc, op.dest, ps.regs[op.dest], at, op.loc);
      return true;
    }
    case OpKind::kAssert: {
      // Direct evaluation: software simulation / pre-synthesis designs.
      bool failed = !value_of(ps, op.args[0]).any();
      if (ela_ != nullptr) ela_->assert_verdict(ps.proc, op.assert_id, failed, at, op.loc);
      if (prof_ != nullptr) prof_->assert_eval(ps.prof_idx, op.assert_id, failed, at);
      if (failed) direct_assert_failure(op.assert_id, at);
      return true;
    }
    case OpKind::kAssertTap: {
      auto it = op_assertions_.find(&op);
      const ir::AssertionRecord* rec =
          it != op_assertions_.end() ? it->second.rec : design_.find_assertion(op.assert_id);
      HLSAV_CHECK(rec != nullptr, "tap without assertion record");
      CheckerCache* cc = it != op_assertions_.end() ? it->second.checker : nullptr;
      HLSAV_CHECK(cc != nullptr, "missing checker process " + rec->checker_process);
      eval_checker(*rec, *cc, ps, op, at);
      return true;
    }
    case OpKind::kAssertFailWire: {
      bool failed = !value_of(ps, op.args[0]).any();
      if (ela_ != nullptr) ela_->assert_verdict(ps.proc, op.assert_id, failed, at, op.loc);
      if (prof_ != nullptr) prof_->assert_eval(ps.prof_idx, op.assert_id, failed, at);
      if (failed) fail_wire(assertion_of(op), at + 1);
      return true;
    }
    case OpKind::kAssertCycles: {
      // Timing assertion: cycles elapsed since the previous marker in
      // this process (or process start) must not exceed the budget.
      std::uint64_t elapsed = at >= ps.cycle_marker ? at - ps.cycle_marker : 0;
      ps.cycle_marker = at;
      if (ela_ != nullptr) {
        ela_->assert_verdict(ps.proc, op.assert_id, elapsed > op.cycle_bound, at, op.loc);
      }
      if (prof_ != nullptr) {
        prof_->assert_eval(ps.prof_idx, op.assert_id, elapsed > op.cycle_bound, at);
      }
      if (elapsed > op.cycle_bound) {
        const ir::AssertionRecord* rec = assertion_of(op);
        if (rec != nullptr && rec->fail_stream != ir::kNoStream &&
            design_.stream(rec->fail_stream).role == ir::StreamRole::kAssertPacked) {
          fail_wire(rec, at + 1);
        } else if (rec != nullptr && rec->fail_stream != ir::kNoStream) {
          push_stream(rec->fail_stream,
                      BitVector::from_u64(design_.stream(rec->fail_stream).width,
                                          rec->fail_code),
                      at + 1);
        } else {
          direct_assert_failure(op.assert_id, at);
        }
      }
      return true;
    }
  }
  HLSAV_UNREACHABLE("bad op kind");
}

// -------------------------------------------------------- block stepping --

void Simulator::advance_to_block(ProcState& ps, ir::BlockId next) {
  if (ela_ != nullptr) ela_->fsm_state(ps.proc, next, ps.cycle);
  ps.cur = next;
  ps.op_idx = 0;
  ps.block_entry_cycle = ps.cycle;
  ps.cur_block = &ps.proc->block(next);
  ps.cur_sched = &ps.sched->of(next);
  // Entering the header of a pipelined loop switches to pipeline mode.
  for (const ir::LoopInfo& l : ps.proc->loops) {
    if (l.pipelined && l.header == next) {
      ps.pipe = PipeCtx{&l,
                        0,
                        ps.cycle,
                        &ps.proc->block(l.header),
                        &ps.proc->block(l.body),
                        &ps.sched->of(l.body)};
      return;
    }
  }
  ps.pipe.reset();
}

bool Simulator::run_sequential_block(ProcState& ps) {
  const BasicBlock& b = *ps.cur_block;
  const sched::BlockSchedule& bs = *ps.cur_sched;
  // FSM skip fault: the block's datapath ops never execute; control
  // falls straight through to the terminator on stale register values.
  if (inject_faults_ && ps.op_idx == 0 && opt_.faults.skip_block(ps.proc->name, ps.cur)) {
    ps.op_idx = b.ops.size();
  }
  // Pure register ops with no predicate need neither a timestamp nor the
  // full dispatch; folding them here inlines the small-width BitVector
  // fast paths into the loop. Tracing or fault injection disables the
  // shortcut (both need the exec_op path); tracing_ can only flip *off*
  // mid-run, so a stale false just keeps the slow-but-equivalent path.
  // An armed ELA needs every register write, so it too takes exec_op.
  const bool fast = !tracing_ && !inject_faults_ && ela_ == nullptr;
  bool progress = false;
  while (ps.op_idx < b.ops.size()) {
    const Op& op = b.ops[ps.op_idx];
    if (fast && op.pred.is_none()) {
      bool took_fast = true;
      switch (op.kind) {
        case OpKind::kBin:
          ps.regs[op.dest] = ir::eval_bin(op.bin, value_of(ps, op.args[0]),
                                          value_of(ps, op.args[1]));
          break;
        case OpKind::kUn:
          ps.regs[op.dest] = ir::eval_un(op.un, value_of(ps, op.args[0]));
          break;
        case OpKind::kCopy:
          ps.regs[op.dest] = value_of(ps, op.args[0]);
          break;
        case OpKind::kResize:
          ps.regs[op.dest] = value_of(ps, op.args[0])
                                 .resize(ps.proc->reg(op.dest).width,
                                         op.resize == ir::ResizeKind::kSext);
          break;
        default:
          took_fast = false;
          break;
      }
      if (took_fast) {
        ++ps.op_idx;
        progress = true;
        continue;
      }
    }
    std::uint64_t at = ps.block_entry_cycle +
                       (ps.op_idx < bs.op_state.size() ? bs.op_state[ps.op_idx] : 0);
    if (!exec_op(ps, op, at)) return progress;
    ++ps.op_idx;
    progress = true;
  }
  ps.cycle = ps.block_entry_cycle + bs.num_states;
  // Retire hook before the terminator switch: advance_to_block rewrites
  // ps.cur, and the profiler's timing check wants the block that ran.
  if (prof_ != nullptr) prof_->block_retired(ps.prof_idx, ps.cur, ps.cycle);
  switch (b.term.kind) {
    case ir::TermKind::kJump:
      advance_to_block(ps, b.term.on_true);
      break;
    case ir::TermKind::kBranch: {
      bool taken = value_of(ps, b.term.cond).any();
      if (inject_faults_) {
        // FSM stuck-branch fault: a corrupted next-state register always
        // selects one successor, regardless of the condition.
        const bool* forced = opt_.faults.forced_branch(ps.proc->name, ps.cur);
        if (forced != nullptr) taken = *forced;
      }
      advance_to_block(ps, taken ? b.term.on_true : b.term.on_false);
      break;
    }
    case ir::TermKind::kReturn:
      ps.done = true;
      break;
  }
  return true;
}

bool Simulator::run_pipelined_loop(ProcState& ps) {
  PipeCtx& pc = *ps.pipe;
  const ir::LoopInfo& loop = *pc.loop;
  const BasicBlock& header = *pc.header;
  const BasicBlock& body = *pc.body;
  const sched::BlockSchedule& bs = *pc.bs;
  const std::size_t h = header.ops.size();
  const bool fast =
      !tracing_ && !inject_faults_ && ela_ == nullptr;  // see run_sequential_block
  bool progress = false;

  while (true) {
    std::uint64_t iter_base = pc.start_cycle + pc.iter * bs.ii;
    if (iter_base > opt_.max_cycles) {
      ps.blocked = true;
      ps.blocked_at = loop.loc;
      ps.block_reason = BlockReason::kCycleLimitPipelined;
      return progress;
    }
    // Header ops, then the loop test.
    while (ps.op_idx < h) {
      std::uint64_t at = iter_base + (ps.op_idx < bs.header_op_state.size()
                                          ? bs.header_op_state[ps.op_idx]
                                          : 0);
      if (!exec_op(ps, header.ops[ps.op_idx], at)) return progress;
      ++ps.op_idx;
      progress = true;
    }
    if (ps.op_idx == h) {
      bool taken = value_of(ps, header.term.cond).any();
      if (inject_faults_) {
        const bool* forced = opt_.faults.forced_branch(ps.proc->name, loop.header);
        if (forced != nullptr) taken = *forced;
      }
      if (!taken) {
        std::uint64_t n = pc.iter;
        ps.cycle = n == 0 ? pc.start_cycle + 1 : pc.start_cycle + bs.latency + (n - 1) * bs.ii;
        if (prof_ != nullptr) prof_->pipe_retired(ps.prof_idx, loop.body, ps.cycle, n);
        ps.pipe.reset();
        advance_to_block(ps, loop.exit);
        return true;
      }
      ++ps.op_idx;  // proceed into the body
      progress = true;
    }
    while (ps.op_idx - h - 1 < body.ops.size()) {
      std::size_t j = ps.op_idx - h - 1;
      const Op& op = body.ops[j];
      if (fast && op.pred.is_none() &&
          (op.kind == OpKind::kBin || op.kind == OpKind::kCopy)) {
        ps.regs[op.dest] = op.kind == OpKind::kBin
                               ? ir::eval_bin(op.bin, value_of(ps, op.args[0]),
                                              value_of(ps, op.args[1]))
                               : value_of(ps, op.args[0]);
        ++ps.op_idx;
        progress = true;
        continue;
      }
      std::uint64_t at = iter_base + (j < bs.op_state.size() ? bs.op_state[j] : 0);
      if (!exec_op(ps, op, at)) return progress;
      ++ps.op_idx;
      progress = true;
    }
    ++pc.iter;
    ps.op_idx = 0;
    if (halt_) return true;
    if (deadline_ != nullptr && poll_deadline()) return true;
  }
}

bool Simulator::step_process(ProcState& ps) {
  bool progress = false;
  while (!ps.done && !ps.blocked && !halt_) {
    if (deadline_ != nullptr && poll_deadline()) return progress;
    if (ps.cycle > opt_.max_cycles) {
      ps.blocked = true;
      ps.blocked_at = {};
      ps.block_reason = BlockReason::kCycleLimit;
      return progress;
    }
    bool p = ps.pipe ? run_pipelined_loop(ps) : run_sequential_block(ps);
    progress |= p;
    if (!p) break;
  }
  return progress;
}

// ------------------------------------------------- compiled engine --

bool Simulator::step_process_compiled(ProcState& ps) {
  ps.st[kStProgress] = 0;
  ps.st[kStHalt] = halt_ ? 1 : 0;
  std::uint64_t r = ps.cfn(ps.regs64.data(), ps.st.data(), mem64_ptrs_.data(), this,
                           cb_table_.data());
  ps.cycle = ps.st[kStCycle];
  switch (ret_tag(r)) {
    case kRetDone:
      ps.done = true;
      break;
    case kRetBlocked:
    case kRetHalted:
      break;  // blocked fields were set by the callback / halt_ is up
    case kRetCycleLimit:
      ps.blocked = true;
      ps.blocked_at = {};
      ps.block_reason = BlockReason::kCycleLimit;
      break;
    case kRetCycleLimitPipe:
      ps.blocked = true;
      ps.blocked_at = ps.proc->loops.at(ret_payload(r)).loc;
      ps.block_reason = BlockReason::kCycleLimitPipelined;
      break;
    default:
      internal_error("sim", 0, "compiled process returned unknown action");
  }
  return ps.st[kStProgress] != 0;
}

std::uint32_t Simulator::cb_exec_trampoline(void* sim, std::uint32_t pidx, std::uint32_t block,
                                            std::uint32_t op, std::uint64_t at) {
  return static_cast<Simulator*>(sim)->compiled_exec_op(pidx, block, op, at);
}

std::uint32_t Simulator::cb_poll_trampoline(void* sim) {
  auto* s = static_cast<Simulator*>(sim);
  return s->poll_deadline() ? 1u : 0u;
}

BitVector Simulator::value64_of(const ProcState& ps, const Operand& o) const {
  if (o.is_reg()) return BitVector::from_u64(ps.proc->reg(o.reg).width, ps.regs64[o.reg]);
  return o.imm;
}

bool Simulator::value64_any(const ProcState& ps, const Operand& o) const {
  if (o.is_reg()) return ps.regs64[o.reg] != 0;
  return o.imm.any();
}

std::uint32_t Simulator::compiled_exec_op(std::uint32_t pidx, std::uint32_t block,
                                          std::uint32_t op_idx, std::uint64_t at) {
  ProcState& ps = procs_[pidx];
  const BasicBlock& b = ps.proc->blocks[block];
  const Op& op = b.ops[op_idx];
  // The generated code already evaluated the op's predicate and
  // timestamp; this executes the shared-state side exactly as exec_op
  // would with trace/ELA/profiler/faults unarmed (the engine declines
  // those configurations).
  switch (op.kind) {
    case OpKind::kStreamRead: {
      StreamState& st = streams_[op.stream];
      if (st.fifo.empty()) {
        ps.blocked = true;
        ps.blocked_at = op.loc;
        ps.block_reason = BlockReason::kStreamEmpty;
        ps.blocked_stream = op.stream;
        return kCbBlocked;
      }
      FifoEntry e = std::move(st.fifo.front());
      st.fifo.pop_front();
      if (e.time > at) {
        // Producer delivered later than this clock: stall the block (and
        // a pipelined loop's start cycle) exactly like try_stream_read.
        std::uint64_t stall = e.time - at;
        ps.st[kStBlockEntry] += stall;
        ps.st[kStPipeStart] += stall;
      }
      ps.regs64[op.dest] = e.value.to_u64();
      break;
    }
    case OpKind::kStreamWrite: {
      StreamState& st = streams_[op.stream];
      if (!st.cpu_consumer && st.fifo.size() >= st.depth) {
        ps.blocked = true;
        ps.blocked_at = op.loc;
        ps.block_reason = BlockReason::kStreamFull;
        ps.blocked_stream = op.stream;
        return kCbBlocked;
      }
      st.fifo.push_back(FifoEntry{value64_of(ps, op.args[0]), at + 1});
      mark_cpu_dirty(op.stream);
      break;
    }
    case OpKind::kCallExtern: {
      const ExternRegistry::Fn* fn = extern_fn(op.callee);
      HLSAV_CHECK(fn != nullptr, "unbound extern function '" + op.callee + "'");
      extern_args_.clear();
      for (const Operand& a : op.args) extern_args_.push_back(value64_of(ps, a));
      ps.regs64[op.dest] =
          (*fn)(extern_args_).resize(ps.proc->reg(op.dest).width, false).to_u64();
      break;
    }
    case OpKind::kAssert: {
      if (!value64_any(ps, op.args[0])) direct_assert_failure(op.assert_id, at);
      break;
    }
    case OpKind::kAssertTap: {
      auto it = op_assertions_.find(&op);
      const ir::AssertionRecord* rec =
          it != op_assertions_.end() ? it->second.rec : design_.find_assertion(op.assert_id);
      HLSAV_CHECK(rec != nullptr, "tap without assertion record");
      CheckerCache* cc = it != op_assertions_.end() ? it->second.checker : nullptr;
      HLSAV_CHECK(cc != nullptr, "missing checker process " + rec->checker_process);
      // eval_checker reads tap operands through ps.regs; materialize the
      // tapped registers from the u64 file first (a tap has few args).
      for (const Operand& a : op.args) {
        if (a.is_reg()) {
          ps.regs[a.reg] = BitVector::from_u64(ps.proc->reg(a.reg).width, ps.regs64[a.reg]);
        }
      }
      eval_checker(*rec, *cc, ps, op, at);
      break;
    }
    case OpKind::kAssertFailWire: {
      if (!value64_any(ps, op.args[0])) fail_wire(assertion_of(op), at + 1);
      break;
    }
    case OpKind::kAssertCycles: {
      std::uint64_t elapsed = at >= ps.cycle_marker ? at - ps.cycle_marker : 0;
      ps.cycle_marker = at;
      if (elapsed > op.cycle_bound) {
        const ir::AssertionRecord* rec = assertion_of(op);
        if (rec != nullptr && rec->fail_stream != ir::kNoStream &&
            design_.stream(rec->fail_stream).role == ir::StreamRole::kAssertPacked) {
          fail_wire(rec, at + 1);
        } else if (rec != nullptr && rec->fail_stream != ir::kNoStream) {
          push_stream(rec->fail_stream,
                      BitVector::from_u64(design_.stream(rec->fail_stream).width,
                                          rec->fail_code),
                      at + 1);
        } else {
          direct_assert_failure(op.assert_id, at);
        }
      }
      break;
    }
    default:
      internal_error("sim", 0, "compiled callback on a pure op");
  }
  ps.st[kStProgress] = 1;
  return halt_ ? kCbHalt : kCbOk;
}

namespace {

std::string reason_text(BlockReason reason, const std::string& stream) {
  switch (reason) {
    case BlockReason::kNone:
      return {};
    case BlockReason::kStreamEmpty:
      return "stream_read on '" + stream + "' (empty)";
    case BlockReason::kStreamFull:
      return "stream_write on '" + stream + "' (full)";
    case BlockReason::kCycleLimit:
      return "cycle limit exceeded";
    case BlockReason::kCycleLimitPipelined:
      return "cycle limit exceeded in pipelined loop";
  }
  return {};
}

}  // namespace

std::string HangInfo::render() const {
  std::ostringstream os;
  os << "application hang: no process can make progress\n";
  for (const HangWaiter& w : waiters) {
    os << "  process '" << w.process << "' stuck";
    if (w.loc.valid()) os << " at line " << w.loc.line;
    std::string why = reason_text(w.reason, w.stream);
    if (!why.empty()) os << ": " << why;
    os << " (cycle " << w.cycle << ")\n";
  }
  if (kind == HangKind::kDeadlockCycle && !cycle.empty()) {
    os << "  deadlock cycle: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const HangWaiter& w = waiters[cycle[i]];
      if (i != 0) os << " <- ";
      os << w.process << " waits "
         << (w.reason == BlockReason::kStreamEmpty ? "read" : "write") << "('" << w.stream
         << "')";
    }
    os << " <- " << waiters[cycle.front()].process << "\n";
  }
  return os.str();
}

HangInfo Simulator::diagnose_hang() const {
  HangInfo info;
  // Waiter list in process order (matches the scheduler's step order).
  std::vector<std::size_t> proc_to_waiter(procs_.size(), SIZE_MAX);
  std::unordered_map<std::string_view, std::size_t> waiter_by_name;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const ProcState& ps = procs_[i];
    if (ps.done) continue;
    HangWaiter w;
    w.process = ps.proc->name;
    w.reason = ps.block_reason;
    if (ps.blocked_stream != ir::kNoStream &&
        (w.reason == BlockReason::kStreamEmpty || w.reason == BlockReason::kStreamFull)) {
      w.stream = design_.stream(ps.blocked_stream).name;
    }
    w.loc = ps.blocked_at;
    w.cycle = ps.cycle;
    proc_to_waiter[i] = info.waiters.size();
    waiter_by_name.emplace(ps.proc->name, info.waiters.size());
    info.waiters.push_back(std::move(w));
  }

  // Wait-for edges: a reader waits on the blocked stream's producer, a
  // writer on its consumer. Edges only exist between stuck hardware
  // processes -- a finished peer or the CPU means starvation, not
  // deadlock.
  bool any_cycle_limited = false;
  std::vector<std::size_t> succ(info.waiters.size(), SIZE_MAX);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const ProcState& ps = procs_[i];
    if (ps.done) continue;
    std::size_t wi = proc_to_waiter[i];
    if (ps.cycle_limited()) {
      any_cycle_limited = true;
      continue;
    }
    if (ps.blocked_stream == ir::kNoStream) continue;
    const ir::Stream& s = design_.stream(ps.blocked_stream);
    const ir::StreamEndpoint& peer =
        ps.block_reason == BlockReason::kStreamEmpty ? s.producer : s.consumer;
    if (peer.kind != ir::StreamEndpoint::Kind::kProcess) continue;
    auto it = waiter_by_name.find(peer.process);
    if (it == waiter_by_name.end()) continue;  // peer finished (or is not stepped)
    succ[wi] = it->second;
    info.waiters[wi].waits_on = peer.process;
  }

  // Cycle detection in the functional wait-for graph (each node has at
  // most one outgoing edge): walk successors until a repeat.
  std::vector<std::uint8_t> color(info.waiters.size(), 0);  // 0 white, 1 on path, 2 done
  for (std::size_t start = 0; start < succ.size() && info.cycle.empty(); ++start) {
    std::vector<std::size_t> path;
    std::size_t v = start;
    while (v != SIZE_MAX && color[v] == 0) {
      color[v] = 1;
      path.push_back(v);
      v = succ[v];
    }
    if (v != SIZE_MAX && color[v] == 1) {
      auto cyc_start = std::find(path.begin(), path.end(), v);
      info.cycle.assign(cyc_start, path.end());
    }
    for (std::size_t n : path) color[n] = 2;
  }

  if (any_cycle_limited) {
    info.kind = HangKind::kCycleLimit;
  } else if (!info.cycle.empty()) {
    info.kind = HangKind::kDeadlockCycle;
  } else {
    info.kind = HangKind::kStarvation;
  }
  return info;
}

RunResult Simulator::run() {
  if (ela_ != nullptr) {
    // Initial FSM states: every process sits in its entry block at t=0
    // (advance_to_block only fires on transitions).
    for (const ProcState& ps : procs_) ela_->fsm_state(ps.proc, ps.cur, 0);
  }
  // An already-expired budget stops the run before the first cycle --
  // unconditionally, so an elapsed deadline is deterministic for tests
  // regardless of where the masked polls would have landed.
  if (deadline_ != nullptr && deadline_->expired()) {
    deadline_hit_ = true;
    halt_ = true;
  }
  bool progress = true;
  while (progress && !halt_) {
    progress = false;
    for (ProcState& ps : procs_) {
      if (ps.done) continue;
      if (ps.cycle_limited()) continue;  // never re-step a limited process
      ps.blocked = false;
      progress |= ps.cfn != nullptr ? step_process_compiled(ps) : step_process(ps);
      drain_cpu_streams();
      if (halt_) break;
    }
  }
  drain_cpu_streams();

  RunResult result;
  result.failures = notify_.failures();
  for (const ProcState& ps : procs_) result.cycles = std::max(result.cycles, ps.cycle);
  bool all_done = std::all_of(procs_.begin(), procs_.end(),
                              [](const ProcState& p) { return p.done; });
  if (deadline_hit_) {
    result.status = RunStatus::kDeadline;
  } else if (halt_) {
    result.status = RunStatus::kAborted;
  } else if (all_done) {
    result.status = RunStatus::kCompleted;
  } else {
    result.status = RunStatus::kHung;
    result.hang = diagnose_hang();
    result.hang_report = result.hang->render();
  }
  result.trace_truncated = opt_.trace && !tracing_;

  if (prof_ != nullptr) {
    for (const ProcState& ps : procs_) {
      metrics::EndKind ek = metrics::EndKind::kHalted;
      if (ps.done) {
        ek = metrics::EndKind::kFinished;
      } else if (ps.blocked && ps.block_reason == BlockReason::kStreamEmpty) {
        ek = metrics::EndKind::kBlockedRead;
      } else if (ps.blocked && ps.block_reason == BlockReason::kStreamFull) {
        ek = metrics::EndKind::kBlockedWrite;
      } else if (ps.cycle_limited()) {
        ek = metrics::EndKind::kCycleLimit;
      }
      ir::StreamId blocked = ek == metrics::EndKind::kBlockedRead ||
                                     ek == metrics::EndKind::kBlockedWrite
                                 ? ps.blocked_stream
                                 : ir::kNoStream;
      prof_->process_end(ps.prof_idx, ps.cycle, ek, blocked);
    }
    prof_->run_end(result.cycles, result.status == RunStatus::kCompleted);
  }
  return result;
}

void Simulator::drain_cpu_streams() {
  if (dirty_cpu_streams_.empty()) return;
  // Deliver in stream-id order so the multiplexed-channel slots match a
  // full scan over design_.streams exactly.
  std::sort(dirty_cpu_streams_.begin(), dirty_cpu_streams_.end());
  for (std::size_t i = 0; i < dirty_cpu_streams_.size(); ++i) {
    ir::StreamId id = dirty_cpu_streams_[i];
    StreamState& st = streams_[id];
    const ir::Stream& s = design_.stream(id);
    while (!st.fifo.empty()) {
      if (halt_) {
        // The abort stops the channel; later words stay queued (and the
        // streams stay dirty) but are never delivered.
        dirty_cpu_streams_.erase(dirty_cpu_streams_.begin(),
                                 dirty_cpu_streams_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
      FifoEntry e = std::move(st.fifo.front());
      st.fifo.pop_front();
      // Channel corruption faults hit the word in flight, whatever it
      // carries -- data or an assertion failure notification.
      if (inject_faults_) opt_.faults.on_channel_word(channel_word_seq_++, e.value);
      // All CPU-bound words share one physical channel (paper §3):
      // serialize delivery slots.
      std::uint64_t delivered = e.time;
      if (opt_.model_channel_mux) {
        delivered = std::max(e.time, channel_busy_until_ + 1);
        channel_busy_until_ = delivered;
      }
      bool is_assert_stream = s.role == ir::StreamRole::kAssertFail ||
                              s.role == ir::StreamRole::kAssertPacked;
      if (is_assert_stream) {
        if (notify_.on_word(s.id, e.value.to_u64(), delivered)) halt_ = true;
      } else {
        st.cpu_received.push_back(std::move(e.value));
      }
    }
    st.dirty = false;
  }
  dirty_cpu_streams_.clear();
}

std::string Simulator::render_trace(const SourceManager* sm) const {
  std::ostringstream os;
  for (const TraceEvent& e : trace_) {
    os << "[" << e.cycle << "] " << e.process << ": " << ir::op_kind_name(e.kind);
    if (e.loc.valid()) {
      os << " @ ";
      if (sm != nullptr) os << sm->name(e.loc.file) << ":";
      os << "line " << e.loc.line;
    }
    os << '\n';
  }
  return os.str();
}

const ExternRegistry::Fn* Simulator::extern_fn(const std::string& name) const {
  return opt_.mode == SimMode::kSoftware ? externs_.c_model(name) : externs_.hdl_model(name);
}

RunResult simulate(const ir::Design& design, const ExternRegistry& externs,
                   const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                   SimOptions options) {
  sched::DesignSchedule schedule = sched::schedule_design(design);
  Simulator sim(design, schedule, externs, options);
  for (const auto& [name, values] : feeds) sim.feed(name, values);
  return sim.run();
}

}  // namespace hlsav::sim
