#include "sim/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/io.h"

namespace hlsav::sim {

namespace {

// ------------------------------------------------------- serialization --
// Hand-rolled JSONL: every value the journal stores is an integer, a
// double, a short name string, or a list of assertion ids. A general
// JSON library would be a dependency for no expressive gain.

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

std::string format_double(double v) {
  // %.17g round-trips every finite double through strtod, so the
  // fingerprint comparison survives a disk round trip exactly.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Locates `"key":` and returns the position just past the colon.
bool find_value(const std::string& line, const char* key, std::size_t& pos) {
  std::string pat = "\"";
  pat += key;
  pat += "\":";
  std::size_t p = line.find(pat);
  if (p == std::string::npos) return false;
  pos = p + pat.size();
  return true;
}

bool parse_u64(const std::string& line, const char* key, std::uint64_t& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(line.c_str() + pos, &end, 10);
  return end != line.c_str() + pos && errno == 0;
}

bool parse_double(const std::string& line, const char* key, double& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  char* end = nullptr;
  out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

bool parse_string(const std::string& line, const char* key, std::string& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  out.clear();
  for (std::size_t i = pos + 1; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= line.size()) return false;
    char e = line[i];
    if (e == 'u') {
      if (i + 4 >= line.size()) return false;
      out += static_cast<char>(std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16));
      i += 4;
    } else {
      out += e;  // \" and \\ are the only other escapes we emit
    }
  }
  return false;  // unterminated
}

bool parse_id_list(const std::string& line, const char* key, std::vector<std::uint32_t>& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '[') return false;
  out.clear();
  std::size_t i = pos + 1;
  while (i < line.size() && line[i] != ']') {
    char* end = nullptr;
    std::uint64_t v = std::strtoull(line.c_str() + i, &end, 10);
    if (end == line.c_str() + i) return false;
    out.push_back(static_cast<std::uint32_t>(v));
    i = static_cast<std::size_t>(end - line.c_str());
    if (i < line.size() && line[i] == ',') ++i;
  }
  return i < line.size();
}

bool parse_outcome(const std::string& line, FaultOutcome& out) {
  std::string name;
  if (!parse_string(line, "outcome", name)) return false;
  for (std::size_t i = 0; i < kNumFaultOutcomes; ++i) {
    auto o = static_cast<FaultOutcome>(i);
    if (name == fault_outcome_name(o)) {
      out = o;
      return true;
    }
  }
  return false;
}

/// Parses one site line into `r` (site carries only the id). False on
/// any malformed field: the caller treats the line -- and everything
/// after it -- as a torn tail.
bool parse_result_line(const std::string& line, FaultResult& r) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::uint64_t site = 0;
  if (!parse_u64(line, "site", site)) return false;
  r.site = FaultSpec{};
  r.site.id = static_cast<std::uint32_t>(site);
  if (!parse_outcome(line, r.outcome)) return false;
  if (!parse_id_list(line, "detected_by", r.detected_by)) return false;
  if (!parse_u64(line, "cycles", r.cycles)) return false;
  r.profile.reset();
  std::size_t ppos = 0;
  if (find_value(line, "profile", ppos)) {
    metrics::ProfileSummary p;
    bool ok = parse_u64(line, "run_cycles", p.run_cycles) &&
              parse_u64(line, "compute_cycles", p.compute_cycles) &&
              parse_u64(line, "assert_cycles", p.assert_cycles) &&
              parse_u64(line, "stall_cycles", p.stall_cycles) &&
              parse_u64(line, "tail_cycles", p.tail_cycles) &&
              parse_u64(line, "discarded_stall_cycles", p.discarded_stall_cycles) &&
              parse_u64(line, "blocked_polls", p.blocked_polls) &&
              parse_u64(line, "assert_evals", p.assert_evals) &&
              parse_u64(line, "assert_failures", p.assert_failures) &&
              parse_string(line, "hottest_stall_stream", p.hottest_stall_stream) &&
              parse_u64(line, "hottest_stall_cycles", p.hottest_stall_cycles);
    if (!ok) return false;
    r.profile = std::move(p);
  }
  return true;
}

Status errno_status(const std::string& what, const std::string& path) {
  return Status::io_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::string JournalHeader::fingerprint() const {
  std::string out = "{\"type\":\"header\",\"design\":";
  append_escaped(out, design);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"sites_total\":" + std::to_string(sites_total);
  out += ",\"max_faults\":" + std::to_string(max_faults);
  out += ",\"max_cycles\":" + std::to_string(max_cycles);
  out += ",\"golden_cycles\":" + std::to_string(golden_cycles);
  out += ",\"site_wall_ms\":" + format_double(site_wall_ms);
  out += ",\"profile\":";
  out += profile ? "true" : "false";
  out += '}';
  return out;
}

std::string journal_line(const FaultResult& r) {
  std::string out = "{\"site\":" + std::to_string(r.site.id);
  out += ",\"outcome\":";
  append_escaped(out, fault_outcome_name(r.outcome));
  out += ",\"detected_by\":[";
  for (std::size_t i = 0; i < r.detected_by.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(r.detected_by[i]);
  }
  out += "],\"cycles\":" + std::to_string(r.cycles);
  if (r.profile.has_value()) {
    const metrics::ProfileSummary& p = *r.profile;
    out += ",\"profile\":{\"run_cycles\":" + std::to_string(p.run_cycles);
    out += ",\"compute_cycles\":" + std::to_string(p.compute_cycles);
    out += ",\"assert_cycles\":" + std::to_string(p.assert_cycles);
    out += ",\"stall_cycles\":" + std::to_string(p.stall_cycles);
    out += ",\"tail_cycles\":" + std::to_string(p.tail_cycles);
    out += ",\"discarded_stall_cycles\":" + std::to_string(p.discarded_stall_cycles);
    out += ",\"blocked_polls\":" + std::to_string(p.blocked_polls);
    out += ",\"assert_evals\":" + std::to_string(p.assert_evals);
    out += ",\"assert_failures\":" + std::to_string(p.assert_failures);
    out += ",\"hottest_stall_stream\":";
    append_escaped(out, p.hottest_stall_stream);
    out += ",\"hottest_stall_cycles\":" + std::to_string(p.hottest_stall_cycles);
    out += '}';
  }
  out += '}';
  return out;
}

StatusOr<JournalContents> load_journal(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::io_error("cannot read journal '" + path + "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string data = buf.str();

  JournalContents out;
  std::size_t eol = data.find('\n');
  if (eol == std::string::npos) {
    return Status::invalid_argument("journal '" + path + "' has no complete header line");
  }
  std::string header_line = data.substr(0, eol);
  bool header_ok = parse_string(header_line, "design", out.header.design) &&
                   parse_u64(header_line, "seed", out.header.seed) &&
                   parse_u64(header_line, "sites_total", out.header.sites_total) &&
                   parse_u64(header_line, "max_faults", out.header.max_faults) &&
                   parse_u64(header_line, "max_cycles", out.header.max_cycles) &&
                   parse_u64(header_line, "golden_cycles", out.header.golden_cycles) &&
                   parse_double(header_line, "site_wall_ms", out.header.site_wall_ms);
  std::size_t ppos = 0;
  if (find_value(header_line, "profile", ppos)) {
    out.header.profile = header_line.compare(ppos, 4, "true") == 0;
  } else {
    header_ok = false;
  }
  if (!header_ok) {
    return Status::invalid_argument("journal '" + path + "' has an unparseable header");
  }
  out.valid_bytes = eol + 1;

  // Site lines: stop at the first torn/corrupt one. A crash can only
  // tear the *last* line, so everything before the stop point is real.
  std::size_t pos = eol + 1;
  while (pos < data.size()) {
    std::size_t next = data.find('\n', pos);
    if (next == std::string::npos) break;  // no newline: torn tail
    FaultResult r;
    if (!parse_result_line(data.substr(pos, next - pos), r)) break;
    out.results.insert_or_assign(r.site.id, std::move(r));
    pos = next + 1;
    out.valid_bytes = pos;
  }
  return out;
}

StatusOr<std::unique_ptr<CampaignJournal>> CampaignJournal::create(std::string path,
                                                                   const JournalHeader& header) {
  Status st = write_file_atomic(path, header.fingerprint() + "\n");
  HLSAV_RETURN_IF_ERROR(st);
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return errno_status("cannot reopen journal", path);
  return std::unique_ptr<CampaignJournal>(new CampaignJournal(std::move(path), fd));
}

StatusOr<std::unique_ptr<CampaignJournal>> CampaignJournal::append_to(std::string path,
                                                                      std::uint64_t valid_bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return errno_status("cannot open journal", path);
  // Drop the torn tail (if any) before the first new append lands.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    Status st = errno_status("cannot truncate journal", path);
    ::close(fd);
    return st;
  }
  return std::unique_ptr<CampaignJournal>(new CampaignJournal(std::move(path), fd));
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status CampaignJournal::append(const FaultResult& r) {
  std::string line = journal_line(r) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("journal write failed", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // Durable before the site counts as done: resume trusts every line.
  if (::fsync(fd_) != 0) return errno_status("journal fsync failed", path_);
  return Status::ok_status();
}

}  // namespace hlsav::sim
