#include "sim/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/io.h"
#include "support/jsonl.h"

namespace hlsav::sim {

namespace {

// Serialization uses the shared flat-JSONL dialect (support/jsonl.h);
// this file only supplies the journal's field layout.

bool parse_outcome(const std::string& line, FaultOutcome& out) {
  std::string name;
  if (!jsonl::parse_string(line, "outcome", name)) return false;
  for (std::size_t i = 0; i < kNumFaultOutcomes; ++i) {
    auto o = static_cast<FaultOutcome>(i);
    if (name == fault_outcome_name(o)) {
      out = o;
      return true;
    }
  }
  return false;
}

/// Parses one site line into `r` (site carries only the id). False on
/// any malformed field: the caller treats the line -- and everything
/// after it -- as a torn tail.
bool parse_result_line(const std::string& line, FaultResult& r) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::uint64_t site = 0;
  if (!jsonl::parse_u64(line, "site", site)) return false;
  r.site = FaultSpec{};
  r.site.id = static_cast<std::uint32_t>(site);
  if (!parse_outcome(line, r.outcome)) return false;
  if (!jsonl::parse_u32_list(line, "detected_by", r.detected_by)) return false;
  if (!jsonl::parse_u64(line, "cycles", r.cycles)) return false;
  r.profile.reset();
  std::size_t ppos = 0;
  if (jsonl::find_value(line, "profile", ppos)) {
    metrics::ProfileSummary p;
    bool ok = jsonl::parse_u64(line, "run_cycles", p.run_cycles) &&
              jsonl::parse_u64(line, "compute_cycles", p.compute_cycles) &&
              jsonl::parse_u64(line, "assert_cycles", p.assert_cycles) &&
              jsonl::parse_u64(line, "stall_cycles", p.stall_cycles) &&
              jsonl::parse_u64(line, "tail_cycles", p.tail_cycles) &&
              jsonl::parse_u64(line, "discarded_stall_cycles", p.discarded_stall_cycles) &&
              jsonl::parse_u64(line, "blocked_polls", p.blocked_polls) &&
              jsonl::parse_u64(line, "assert_evals", p.assert_evals) &&
              jsonl::parse_u64(line, "assert_failures", p.assert_failures) &&
              jsonl::parse_string(line, "hottest_stall_stream", p.hottest_stall_stream) &&
              jsonl::parse_u64(line, "hottest_stall_cycles", p.hottest_stall_cycles);
    if (!ok) return false;
    r.profile = std::move(p);
  }
  return true;
}

Status errno_status(const std::string& what, const std::string& path) {
  return Status::io_error(what + " '" + path + "': " + std::strerror(errno));
}

// Test-injectable write/fsync (set_journal_io_hooks_for_test). The
// indirection only exists so fault-injection tests can fail an append
// with a chosen errno on a healthy filesystem.
const JournalIoHooks* g_io_hooks = nullptr;

ssize_t journal_write(int fd, const void* buf, std::size_t count) {
  if (g_io_hooks != nullptr && g_io_hooks->write_fn != nullptr) {
    return g_io_hooks->write_fn(fd, buf, count);
  }
  return ::write(fd, buf, count);
}

int journal_fsync(int fd) {
  if (g_io_hooks != nullptr && g_io_hooks->fsync_fn != nullptr) {
    return g_io_hooks->fsync_fn(fd);
  }
  return ::fsync(fd);
}

}  // namespace

void set_journal_io_hooks_for_test(const JournalIoHooks* hooks) { g_io_hooks = hooks; }

std::string JournalHeader::fingerprint() const {
  std::string out = "{\"type\":\"header\",\"design\":";
  jsonl::append_escaped(out, design);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"sites_total\":" + std::to_string(sites_total);
  out += ",\"max_faults\":" + std::to_string(max_faults);
  out += ",\"max_cycles\":" + std::to_string(max_cycles);
  out += ",\"golden_cycles\":" + std::to_string(golden_cycles);
  out += ",\"site_wall_ms\":" + jsonl::format_double(site_wall_ms);
  out += ",\"profile\":";
  out += profile ? "true" : "false";
  out += '}';
  return out;
}

std::string journal_line(const FaultResult& r) {
  std::string out = "{\"site\":" + std::to_string(r.site.id);
  out += ",\"outcome\":";
  jsonl::append_escaped(out, fault_outcome_name(r.outcome));
  out += ",\"detected_by\":";
  jsonl::append_u32_list(out, r.detected_by);
  out += ",\"cycles\":" + std::to_string(r.cycles);
  if (r.profile.has_value()) {
    const metrics::ProfileSummary& p = *r.profile;
    out += ",\"profile\":{\"run_cycles\":" + std::to_string(p.run_cycles);
    out += ",\"compute_cycles\":" + std::to_string(p.compute_cycles);
    out += ",\"assert_cycles\":" + std::to_string(p.assert_cycles);
    out += ",\"stall_cycles\":" + std::to_string(p.stall_cycles);
    out += ",\"tail_cycles\":" + std::to_string(p.tail_cycles);
    out += ",\"discarded_stall_cycles\":" + std::to_string(p.discarded_stall_cycles);
    out += ",\"blocked_polls\":" + std::to_string(p.blocked_polls);
    out += ",\"assert_evals\":" + std::to_string(p.assert_evals);
    out += ",\"assert_failures\":" + std::to_string(p.assert_failures);
    out += ",\"hottest_stall_stream\":";
    jsonl::append_escaped(out, p.hottest_stall_stream);
    out += ",\"hottest_stall_cycles\":" + std::to_string(p.hottest_stall_cycles);
    out += '}';
  }
  out += '}';
  return out;
}

StatusOr<JournalContents> load_journal(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::io_error("cannot read journal '" + path + "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string data = buf.str();

  JournalContents out;
  out.total_bytes = data.size();
  std::size_t eol = data.find('\n');
  if (eol == std::string::npos) {
    return Status::invalid_argument("journal '" + path + "' has no complete header line");
  }
  std::string header_line = data.substr(0, eol);
  bool header_ok = jsonl::parse_string(header_line, "design", out.header.design) &&
                   jsonl::parse_u64(header_line, "seed", out.header.seed) &&
                   jsonl::parse_u64(header_line, "sites_total", out.header.sites_total) &&
                   jsonl::parse_u64(header_line, "max_faults", out.header.max_faults) &&
                   jsonl::parse_u64(header_line, "max_cycles", out.header.max_cycles) &&
                   jsonl::parse_u64(header_line, "golden_cycles", out.header.golden_cycles) &&
                   jsonl::parse_double(header_line, "site_wall_ms", out.header.site_wall_ms) &&
                   jsonl::parse_bool(header_line, "profile", out.header.profile);
  if (!header_ok) {
    return Status::invalid_argument("journal '" + path + "' has an unparseable header");
  }
  out.valid_bytes = eol + 1;

  // Site lines: stop at the first torn/corrupt one. A crash can only
  // tear the *last* line, so everything before the stop point is real.
  std::size_t pos = eol + 1;
  while (pos < data.size()) {
    std::size_t next = data.find('\n', pos);
    if (next == std::string::npos) break;  // no newline: torn tail
    FaultResult r;
    if (!parse_result_line(data.substr(pos, next - pos), r)) break;
    out.results.insert_or_assign(r.site.id, std::move(r));
    pos = next + 1;
    out.valid_bytes = pos;
  }
  return out;
}

StatusOr<std::unique_ptr<CampaignJournal>> CampaignJournal::create(std::string path,
                                                                   const JournalHeader& header) {
  Status st = write_file_atomic(path, header.fingerprint() + "\n");
  HLSAV_RETURN_IF_ERROR(st);
  // The rename made the header durable; the *directory entry* needs its
  // own fsync or a power loss can forget the journal existed at all.
  std::size_t slash = path.find_last_of('/');
  st = fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
  HLSAV_RETURN_IF_ERROR(st);
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return errno_status("cannot reopen journal", path);
  return std::unique_ptr<CampaignJournal>(new CampaignJournal(std::move(path), fd));
}

StatusOr<std::unique_ptr<CampaignJournal>> CampaignJournal::append_to(std::string path,
                                                                      std::uint64_t valid_bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return errno_status("cannot open journal", path);
  // Drop the torn tail (if any) before the first new append lands.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    Status st = errno_status("cannot truncate journal", path);
    ::close(fd);
    return st;
  }
  return std::unique_ptr<CampaignJournal>(new CampaignJournal(std::move(path), fd));
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status CampaignJournal::append(const FaultResult& r) {
  std::string line = journal_line(r) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    ssize_t n = journal_write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("journal write failed", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // Durable before the site counts as done: resume trusts every line.
  if (journal_fsync(fd_) != 0) return errno_status("journal fsync failed", path_);
  return Status::ok_status();
}

StatusOr<ShardMergeResult> merge_journal_shards(const std::vector<std::string>& paths) {
  if (paths.empty()) return Status::invalid_argument("no journal shards to merge");
  ShardMergeResult out;
  std::string fingerprint;
  for (const std::string& path : paths) {
    StatusOr<JournalContents> shard = load_journal(path);
    if (!shard.ok()) {
      return Status::error(shard.status().code(),
                           "shard merge: " + shard.status().message());
    }
    std::string fp = shard->header.fingerprint();
    if (fingerprint.empty()) {
      fingerprint = fp;
      out.header = shard->header;
    } else if (fp != fingerprint) {
      return Status::invalid_argument("shard '" + path +
                                      "' belongs to a different campaign (header fingerprint "
                                      "mismatch); shards cannot be mixed");
    }
    for (auto& [id, result] : shard->results) {
      auto it = out.results.find(id);
      if (it == out.results.end()) {
        out.results.emplace(id, std::move(result));
        continue;
      }
      // Duplicate: a site journaled by one worker, then reassigned after
      // that worker died before the supervisor observed the append. The
      // sweep is deterministic, so both classifications must agree.
      if (journal_line(it->second) != journal_line(result)) {
        return Status::invalid_argument("shards disagree on site " + std::to_string(id) +
                                        " ('" + path + "' conflicts with an earlier shard)");
      }
    }
    out.shards_loaded++;
    if (shard->torn_tail()) out.torn_shards++;
  }
  // Every shard crashed mid-append and nothing parseable survived:
  // an "ok, 0 sites" answer here would silently discard the campaign.
  if (out.results.empty() && out.torn_shards == out.shards_loaded && out.torn_shards > 0) {
    return Status::io_error(
        "all " + std::to_string(out.shards_loaded) +
        " shard(s) end in torn tails with no classified sites recovered; refusing to merge "
        "an empty result from crashed workers");
  }
  return out;
}

}  // namespace hlsav::sim
